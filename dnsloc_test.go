package dnsloc_test

import (
	"testing"
	"time"

	dnsloc "github.com/dnswatch/dnsloc"
)

// TestPublicAPIQuickstart is the package documentation's quick start,
// verified: a simulated XB6 home is detected as CPE-intercepted.
func TestPublicAPIQuickstart(t *testing.T) {
	lab := dnsloc.NewSimHome(dnsloc.ScenarioXB6)
	report := lab.Detector().Run()
	if report.Verdict != dnsloc.VerdictCPE {
		t.Fatalf("verdict = %s, want %s", report.Verdict, dnsloc.VerdictCPE)
	}
	if !report.Intercepted() {
		t.Error("Intercepted() = false")
	}
}

func TestPublicAPIScenariosAgree(t *testing.T) {
	for _, s := range dnsloc.AllScenarios {
		s := s
		t.Run(string(s), func(t *testing.T) {
			report := dnsloc.NewSimHome(s).Detector().Run()
			if report.Verdict != dnsloc.ExpectedVerdict(s) {
				t.Errorf("verdict = %s, want %s", report.Verdict, dnsloc.ExpectedVerdict(s))
			}
		})
	}
}

func TestPublicAPIResolverSet(t *testing.T) {
	if len(dnsloc.AllResolvers) != 4 {
		t.Fatalf("AllResolvers = %v", dnsloc.AllResolvers)
	}
	lab := dnsloc.NewSimHome(dnsloc.ScenarioClean)
	d := lab.Detector()
	d.Resolvers = []dnsloc.ResolverID{dnsloc.Cloudflare, dnsloc.Quad9}
	r := d.Run()
	if len(r.Location) != 8 { // 2 operators x 2 addrs x 2 families
		t.Errorf("len(Location) = %d, want 8", len(r.Location))
	}
}

// TestUDPClientAgainstLocalServer exercises the real-network transport
// against a loopback DNS server built from the same wire codec.
func TestUDPClientAgainstLocalServer(t *testing.T) {
	srv := startLoopbackDNS(t)
	defer srv.close()

	c := dnsloc.NewUDPClient(2 * time.Second)
	c.Window = 50 * time.Millisecond

	q := dnsloc.NewVersionBindQuery(7)
	resps, err := c.Exchange(srv.addrPort, q)
	if err != nil {
		t.Fatalf("exchange: %v", err)
	}
	if s, _ := resps[0].FirstTXT(); s != "loopback-test-server" {
		t.Errorf("answer = %q", s)
	}
}

func TestUDPClientTimeout(t *testing.T) {
	// A port with (almost certainly) nothing listening on loopback.
	c := dnsloc.NewUDPClient(300 * time.Millisecond)
	q := dnsloc.NewVersionBindQuery(8)
	_, err := c.Exchange(mustAddrPort("127.0.0.1:59953"), q)
	if err == nil {
		t.Fatal("expected timeout error")
	}
}
