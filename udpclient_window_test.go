package dnsloc_test

import (
	"errors"
	"net"
	"net/netip"
	"testing"
	"time"

	dnsloc "github.com/dnswatch/dnsloc"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// Retry/replication-window interplay tests. The UDPClient keeps two
// overlapping mechanisms on one socket — per-attempt retransmission
// (Retry) and the post-answer replication window (Window) — and their
// interaction around refusals and deadlines is where a stub resolver's
// behaviour gets subtle. Run with -race: the client shares its fixtures
// with server goroutines.

// TestUDPClientRefusalThenAnswerReturnsAnswer: an attempt that lands on
// a closed port surfaces ECONNREFUSED (the kernel's ICMP port
// unreachable) on the connected socket; when a later attempt is
// answered, the recorded refusal must not override the answer — the
// refusal sentinel is only the verdict when the exchange ends with
// nothing collected.
func TestUDPClientRefusalThenAnswerReturnsAnswer(t *testing.T) {
	// Reserve a loopback port, then close it so the first attempt's
	// datagram draws a port-unreachable.
	rsv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := rsv.LocalAddr().(*net.UDPAddr)
	rsv.Close()
	addrPort := netip.AddrPortFrom(netip.MustParseAddr("127.0.0.1"), uint16(addr.Port))

	// Bind the real server on that port mid-backoff, so a later attempt
	// is answered.
	serverUp := make(chan *net.UDPConn, 1)
	go func() {
		time.Sleep(300 * time.Millisecond)
		conn, err := net.ListenUDP("udp", addr)
		if err != nil {
			serverUp <- nil
			return
		}
		serverUp <- conn
		buf := make([]byte, 4096)
		for {
			n, from, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			query, err := dnswire.Unpack(buf[:n])
			if err != nil {
				continue
			}
			resp := dnswire.NewTXTResponse(query, "late-bind")
			if payload, err := resp.Pack(); err == nil {
				conn.WriteToUDP(payload, from) //nolint:errcheck
			}
		}
	}()
	t.Cleanup(func() {
		if conn := <-serverUp; conn != nil {
			conn.Close()
		}
	})

	c := dnsloc.NewUDPClient(5 * time.Second) // default 150ms replication window
	c.Retry = &core.RetryPolicy{
		MaxAttempts:    6,
		AttemptTimeout: 250 * time.Millisecond,
		Backoff:        100 * time.Millisecond,
		BackoffMax:     250 * time.Millisecond,
		JitterSeed:     7,
	}
	q := dnsloc.NewVersionBindQuery(41)
	resps, _, err := c.ExchangeRTT(addrPort, q)
	if err != nil {
		t.Fatalf("refusal before answer leaked out as the verdict: %v", err)
	}
	if txt, ok := resps[0].FirstTXT(); !ok || txt != "late-bind" {
		t.Errorf("answer = %q, want the late-bound server's", txt)
	}
}

// TestUDPClientRefusedOnlyIsErrRefused: the complement — when every
// attempt draws port-unreachable and nothing is ever collected, the
// exchange must classify as ErrRefused, not ErrTimeout.
func TestUDPClientRefusedOnlyIsErrRefused(t *testing.T) {
	rsv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addrPort := rsv.LocalAddr().(*net.UDPAddr).AddrPort()
	rsv.Close()

	c := dnsloc.NewUDPClient(500 * time.Millisecond)
	c.Retry = &core.RetryPolicy{MaxAttempts: 2, AttemptTimeout: 150 * time.Millisecond,
		Backoff: 10 * time.Millisecond, JitterSeed: 7}
	_, _, err = c.ExchangeRTT(addrPort, dnsloc.NewVersionBindQuery(42))
	if !errors.Is(err, core.ErrRefused) {
		t.Errorf("all-refused exchange = %v, want core.ErrRefused", err)
	}
}

// TestUDPClientAttemptClippedAtOverallDeadline: an AttemptTimeout far
// longer than the overall Timeout must be clipped — the exchange ends
// at the overall deadline after a single send, instead of letting one
// attempt overstay.
func TestUDPClientAttemptClippedAtOverallDeadline(t *testing.T) {
	srv := startDroppyDNS(t, 1<<30) // swallow everything
	defer srv.close()

	c := dnsloc.NewUDPClient(300 * time.Millisecond)
	c.Window = 0
	c.Retry = &core.RetryPolicy{
		MaxAttempts:    3,
		AttemptTimeout: 5 * time.Second, // would blow way past Timeout unclipped
		Backoff:        5 * time.Millisecond,
		JitterSeed:     7,
	}
	start := time.Now()
	_, _, err := c.ExchangeRTT(srv.addrPort, dnsloc.NewVersionBindQuery(43))
	elapsed := time.Since(start)
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("silent server = %v, want core.ErrTimeout", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("exchange took %v; the 5s AttemptTimeout was not clipped to the 300ms overall deadline", elapsed)
	}
	if got := srv.datagrams(); got != 1 {
		t.Errorf("server saw %d datagrams, want 1 — the overall deadline expired during attempt 1", got)
	}
}

// TestUDPClientWindowCollectsReplicasAfterRetransmit: the replication
// window still collects duplicate answers when the answered attempt was
// a retransmission — retry and window compose rather than exclude each
// other.
func TestUDPClientWindowCollectsReplicasAfterRetransmit(t *testing.T) {
	srv := startDropReplicatingDNS(t, 1, 2) // drop first datagram, then answer twice
	defer srv.close()

	c := dnsloc.NewUDPClient(2 * time.Second)
	c.Window = 250 * time.Millisecond
	c.Retry = &core.RetryPolicy{
		MaxAttempts:    3,
		AttemptTimeout: 200 * time.Millisecond,
		Backoff:        5 * time.Millisecond,
		JitterSeed:     7,
	}
	resps, _, err := c.ExchangeRTT(srv.addrPort, dnsloc.NewVersionBindQuery(44))
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 {
		t.Errorf("collected %d responses, want 2 — the window must stay open after a retransmitted attempt", len(resps))
	}
	if got := srv.datagrams(); got != 2 {
		t.Errorf("server saw %d datagrams, want 2 (original + retransmission)", got)
	}
}

// TestUDPClientWindowOutlivesAttemptDeadline is the regression for the
// window-clipping bug: the post-answer replication window used to be
// capped at the current attempt's deadline, so a replica arriving
// inside the window but after that deadline was silently dropped. The
// window must extend listening to min(overall timeout, now+Window).
func TestUDPClientWindowOutlivesAttemptDeadline(t *testing.T) {
	srv := startDelayedReplicaDNS(t, 400*time.Millisecond)
	defer srv.close()

	c := dnsloc.NewUDPClient(2 * time.Second)
	c.Window = 500 * time.Millisecond
	c.Retry = &core.RetryPolicy{
		MaxAttempts:    2,
		AttemptTimeout: 300 * time.Millisecond, // expires before the replica lands
		Backoff:        5 * time.Millisecond,
		JitterSeed:     7,
	}
	resps, _, err := c.ExchangeRTT(srv.addrPort, dnsloc.NewVersionBindQuery(45))
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 {
		t.Errorf("collected %d responses, want 2 — the replica arrived inside the window but past the attempt deadline", len(resps))
	}
	if got := srv.datagrams(); got != 1 {
		t.Errorf("server saw %d datagrams, want 1 — the first answer must suppress retransmission", got)
	}
}

// delayedReplicaDNS answers each query immediately, then sends an
// identical replica after a fixed delay — the shape of an interceptor
// racing a distant genuine resolver.
type delayedReplicaDNS struct {
	*droppyDNS
}

func startDelayedReplicaDNS(t *testing.T, delay time.Duration) *delayedReplicaDNS {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &delayedReplicaDNS{droppyDNS: &droppyDNS{
		conn:     conn,
		addrPort: conn.LocalAddr().(*net.UDPAddr).AddrPort(),
		done:     make(chan struct{}),
	}}
	go s.serveDelayed(delay)
	return s
}

func (s *delayedReplicaDNS) serveDelayed(delay time.Duration) {
	defer close(s.done)
	buf := make([]byte, 4096)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		s.mu.Lock()
		s.arrived++
		s.mu.Unlock()
		query, err := dnswire.Unpack(buf[:n])
		if err != nil {
			continue
		}
		resp := dnswire.NewTXTResponse(query, "delayed-replica")
		payload, err := resp.Pack()
		if err != nil {
			continue
		}
		s.conn.WriteToUDP(payload, from) //nolint:errcheck
		go func(p []byte, dst *net.UDPAddr) {
			time.Sleep(delay)
			s.conn.WriteToUDP(p, dst) //nolint:errcheck
		}(append([]byte(nil), payload...), from)
	}
}

// dropReplicatingDNS swallows the first drop datagrams, then answers
// each query replicas times — loss in front of a replicated-answer path
// (the combination replication_test.go's fixture doesn't cover), over a
// real socket.
type dropReplicatingDNS struct {
	*droppyDNS
}

func startDropReplicatingDNS(t *testing.T, drop, replicas int) *dropReplicatingDNS {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &dropReplicatingDNS{droppyDNS: &droppyDNS{
		conn:     conn,
		addrPort: conn.LocalAddr().(*net.UDPAddr).AddrPort(),
		done:     make(chan struct{}),
		drop:     drop,
	}}
	go s.serveReplicating(replicas)
	return s
}

func (s *dropReplicatingDNS) serveReplicating(replicas int) {
	defer close(s.done)
	buf := make([]byte, 4096)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		s.mu.Lock()
		s.arrived++
		swallow := s.arrived <= s.drop
		s.mu.Unlock()
		if swallow {
			continue
		}
		query, err := dnswire.Unpack(buf[:n])
		if err != nil {
			continue
		}
		resp := dnswire.NewTXTResponse(query, "replicated")
		payload, err := resp.Pack()
		if err != nil {
			continue
		}
		for i := 0; i < replicas; i++ {
			s.conn.WriteToUDP(payload, from) //nolint:errcheck
		}
	}
}
