// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices DESIGN.md calls out
// and microbenchmarks of the substrates.
//
//	go test -bench=. -benchmem            # everything at default scale
//	go test -bench=Table4 -v              # regenerate + print Table 4
//
// Each TableN/FigureN benchmark measures the cost of regenerating that
// artifact and logs the rendered rows under -v. Absolute counts at
// bench scale (0.25 by default, for iteration speed) are proportional
// to the paper-scale numbers asserted in internal/study's tests.
package dnsloc_test

import (
	"fmt"
	"io"
	iofs "io/fs"
	"net/netip"
	"runtime"
	"sync"
	"testing"

	dnsloc "github.com/dnswatch/dnsloc"
	"github.com/dnswatch/dnsloc/internal/analysis"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnssec"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/dotsim"
	"github.com/dnswatch/dnsloc/internal/faultfs"
	"github.com/dnswatch/dnsloc/internal/homelab"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/study"
	"github.com/dnswatch/dnsloc/internal/ttlprobe"
)

// benchScale keeps the shared study world fast enough to build inside
// the bench binary while preserving every behaviour class.
const benchScale = 0.25

var shared struct {
	once sync.Once
	res  *study.Results
}

// sharedStudy builds the bench-scale study once per bench binary.
func sharedStudy(b *testing.B) *study.Results {
	b.Helper()
	shared.once.Do(func() {
		spec := study.PaperSpec().Scale(benchScale)
		shared.res = study.Run(study.BuildWorld(spec))
	})
	return shared.res
}

// --- Table 1: location queries per operator -------------------------

// BenchmarkTable1LocationQueries measures step 1 of the technique — the
// full location-query sweep (4 operators x primary+secondary x v4+v6)
// from a clean simulated home — and prints Table 1.
func BenchmarkTable1LocationQueries(b *testing.B) {
	lab := homelab.New(homelab.Clean)
	det := lab.Detector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report := det.Run()
		if report.Intercepted() {
			b.Fatal("clean home reported interception")
		}
	}
	b.StopTimer()
	b.Log("\n" + analysis.FormatTable1())
}

// --- Tables 2 and 3: the worked example ------------------------------

// BenchmarkTable2ExampleLocation regenerates the three-probe worked
// example of §3.4 and prints Table 2.
func BenchmarkTable2ExampleLocation(b *testing.B) {
	var rows []study.ExampleRow
	for i := 0; i < b.N; i++ {
		rows = study.ExampleScenario()
	}
	b.StopTimer()
	b.Log("\n" + analysis.FormatTable2(rows))
}

// BenchmarkTable3ExampleVersionBind regenerates the worked example and
// prints Table 3 (the version.bind rows).
func BenchmarkTable3ExampleVersionBind(b *testing.B) {
	var rows []study.ExampleRow
	for i := 0; i < b.N; i++ {
		rows = study.ExampleScenario()
	}
	b.StopTimer()
	b.Log("\n" + analysis.FormatTable3(rows))
}

// --- Table 4: intercepted probes per resolver ------------------------

// BenchmarkTable4PerResolver aggregates the study into Table 4.
func BenchmarkTable4PerResolver(b *testing.B) {
	res := sharedStudy(b)
	var t4 analysis.Table4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t4 = analysis.BuildTable4(res)
	}
	b.StopTimer()
	if t4.AllInterceptedV6 != 0 {
		b.Fatalf("all-four v6 = %d, want 0", t4.AllInterceptedV6)
	}
	b.ReportMetric(float64(t4.DistinctIntercepted), "intercepted")
	b.Log("\n" + analysis.FormatTable4(t4))
}

// --- Table 5: version.bind strings of CPE interceptors ---------------

// BenchmarkTable5VersionStrings aggregates the study into Table 5.
func BenchmarkTable5VersionStrings(b *testing.B) {
	res := sharedStudy(b)
	var t5 analysis.Table5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t5 = analysis.BuildTable5(res)
	}
	b.StopTimer()
	b.ReportMetric(float64(t5.CPETotal), "cpe_probes")
	b.Log("\n" + analysis.FormatTable5(t5))
}

// --- Figure 3: transparency per organization -------------------------

// BenchmarkFigure3Transparency aggregates the study into Figure 3.
func BenchmarkFigure3Transparency(b *testing.B) {
	res := sharedStudy(b)
	var f3 analysis.Figure3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f3 = analysis.BuildFigure3(res, 15)
	}
	b.StopTimer()
	if len(f3.Rows) > 0 && f3.Rows[0].ASN != 7922 {
		b.Logf("note: top org is %s, not Comcast, at scale %.2f", f3.Rows[0].Org, benchScale)
	}
	b.Log("\n" + analysis.FormatFigure3(f3))
}

// --- Figure 4: interception location ---------------------------------

// BenchmarkFigure4Location aggregates the study into Figure 4.
func BenchmarkFigure4Location(b *testing.B) {
	res := sharedStudy(b)
	var f4 analysis.Figure4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f4 = analysis.BuildFigure4(res, 15)
	}
	b.StopTimer()
	b.ReportMetric(float64(f4.CPE), "cpe")
	b.ReportMetric(float64(f4.ISP), "isp")
	b.ReportMetric(float64(f4.Unknown), "unknown")
	b.Log("\n" + analysis.FormatFigure4(f4))
}

// --- The harness itself ----------------------------------------------

// BenchmarkPilotStudyBuildAndRun measures a complete regeneration: world
// build plus running the technique from every responding probe, at 5%
// scale per iteration.
func BenchmarkPilotStudyBuildAndRun(b *testing.B) {
	spec := study.PaperSpec().Scale(0.05)
	for i := 0; i < b.N; i++ {
		res := study.Run(study.BuildWorld(spec))
		if len(res.Intercepted()) == 0 {
			b.Fatal("no interception found")
		}
	}
	b.ReportMetric(float64(spec.TotalProbes), "probes/op")
}

// BenchmarkPilotParallel measures the sharded study engine at 1, 2, 4,
// and GOMAXPROCS workers over a 1,000-probe world (build + availability
// pre-draw + detector sweep + merge per iteration). Output is
// byte-identical at every worker count; only the wall clock moves. Run
// with -benchmem and compare against BENCH_pilot.json.
func BenchmarkPilotParallel(b *testing.B) {
	spec := study.PaperSpec().Scale(0.1)
	seen := map[int]bool{}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := study.RunSharded(spec, study.EngineOptions{Workers: workers})
				if len(res.Intercepted()) == 0 {
					b.Fatal("no interception found")
				}
			}
			b.ReportMetric(float64(spec.TotalProbes), "probes/op")
		})
	}
}

// BenchmarkPilotLanes measures the probe-lane axis of the sharded
// engine: the same 1,000-probe sweep with each shard's owned probes
// split across concurrent per-probe event loops over the shared
// immutable world core (routing tables, zones, packed CHAOS answers).
// Output is byte-identical at every (workers, lanes) grid point —
// TestLaneEngineDeterministic pins that — so only wall clock and
// allocation totals may move. On a single-core host lanes > 1 pay
// lane-world build overhead without a parallelism win; the interesting
// rows are multi-core, where lanes absorb the cores a low worker count
// leaves idle. Compare against BENCH_pilot.json.
func BenchmarkPilotLanes(b *testing.B) {
	spec := study.PaperSpec().Scale(0.1)
	for _, g := range []struct{ workers, lanes int }{{1, 1}, {1, 2}, {1, 4}, {2, 2}} {
		g := g
		b.Run(fmt.Sprintf("workers=%d-lanes=%d", g.workers, g.lanes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := study.RunSharded(spec, study.EngineOptions{Workers: g.workers, Lanes: g.lanes})
				if len(res.Intercepted()) == 0 {
					b.Fatal("no interception found")
				}
			}
			b.ReportMetric(float64(spec.TotalProbes), "probes/op")
		})
	}
}

// nosyncFile/nosyncFS strip the fsync calls from the checkpoint write
// protocol while keeping every other byte of work identical — the
// control arm for measuring what durability itself costs.
type nosyncFile struct{ faultfs.File }

func (nosyncFile) Sync() error { return nil }

type nosyncFS struct{ faultfs.OS }

func (fs nosyncFS) OpenFile(name string, flag int, perm iofs.FileMode) (faultfs.File, error) {
	f, err := fs.OS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return nosyncFile{f}, nil
}

func (nosyncFS) SyncDir(string) error { return nil }

// BenchmarkPilotStreamedCheckpointed is BenchmarkPilotStreamed at one
// worker with checkpoints every 250 records — each a sink flush plus
// the A/B slot write protocol. The fsync=on/fsync=off pair isolates
// the cost of the durability calls themselves (file fsync + directory
// fsync per checkpoint) from the rest of the checkpoint work; the
// acceptance bar for that delta is < 3%.
func BenchmarkPilotStreamedCheckpointed(b *testing.B) {
	spec := study.PaperSpec().Scale(0.1)
	for _, bc := range []struct {
		name string
		fs   faultfs.FS
	}{
		{"fsync=on", faultfs.OS{}},
		{"fsync=off", nosyncFS{}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			dir := b.TempDir()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := study.RunStreamed(spec, study.StreamOptions{
					Workers: 1,
					NewAccumulator: func(int) study.Accumulator {
						return analysis.NewAccumulator()
					},
					NewSink: func(int, int, int) (study.RecordSink, error) {
						return study.NewJSONLSink(io.Discard), nil
					},
					CheckpointDir:   dir,
					CheckpointEvery: 250,
					FS:              bc.fs,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Errors) != 0 {
					b.Fatalf("stream errors: %v", res.Errors)
				}
			}
			b.ReportMetric(float64(spec.TotalProbes), "probes/op")
		})
	}
}

// BenchmarkPilotStreamed is BenchmarkPilotParallel's bounded-memory
// twin: the same 1,000-probe sweep through the streaming pipeline —
// per-record accumulator folds plus a JSONL sink write per probe,
// retaining no record slice — at 1 and 4 workers. The delta against
// BenchmarkPilotParallel at the same worker count is the whole cost of
// streaming; BENCH_pilot.json records both so the streamed/in-memory
// ratio is tracked release over release.
func BenchmarkPilotStreamed(b *testing.B) {
	spec := study.PaperSpec().Scale(0.1)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := study.RunStreamed(spec, study.StreamOptions{
					Workers: workers,
					NewAccumulator: func(int) study.Accumulator {
						return analysis.NewAccumulator()
					},
					NewSink: func(int, int, int) (study.RecordSink, error) {
						return study.NewJSONLSink(io.Discard), nil
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Errors) != 0 {
					b.Fatalf("stream errors: %v", res.Errors)
				}
			}
			b.ReportMetric(float64(spec.TotalProbes), "probes/op")
		})
	}
}

// BenchmarkPilotMetricsOff is the A/B partner of BenchmarkPilotParallel:
// the same 1,000-probe sweep with Spec.DisableMetrics set, so the delta
// between the two is the whole cost of the metrics plane (registry
// builds, atomic increments, and the final shard merge). EXPERIMENTS.md
// records the measured overhead.
func BenchmarkPilotMetricsOff(b *testing.B) {
	spec := study.PaperSpec().Scale(0.1)
	spec.DisableMetrics = true
	seen := map[int]bool{}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := study.RunSharded(spec, study.EngineOptions{Workers: workers})
				if len(res.Intercepted()) == 0 {
					b.Fatal("no interception found")
				}
			}
			b.ReportMetric(float64(spec.TotalProbes), "probes/op")
		})
	}
}

// --- §5 case study ----------------------------------------------------

// BenchmarkXB6CaseStudy measures one full detection run against the XB6
// home of the case study.
func BenchmarkXB6CaseStudy(b *testing.B) {
	lab := homelab.New(homelab.XB6)
	det := lab.Detector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report := det.Run()
		if report.Verdict != core.VerdictCPE {
			b.Fatalf("verdict = %s", report.Verdict)
		}
	}
}

// BenchmarkDetectorRetry measures a full detection run against the XB6
// home through a badly impaired path (PresetFault at level 0.5) with a
// three-attempt retry policy — the marginal cost of the resilience
// machinery over BenchmarkXB6CaseStudy's clean path. Fault state (burst
// chains, rate buckets) persists across iterations, so individual runs
// differ; the metrics report how often retries and degradation fired.
func BenchmarkDetectorRetry(b *testing.B) {
	lab := homelab.New(homelab.XB6)
	lab.Net.SetDefaultFault(netsim.PresetFault(0.5, 42))
	det := lab.Detector()
	det.Retry = &core.RetryPolicy{MaxAttempts: 3}
	retried, degraded := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report := det.Run()
		if report.Verdict == core.VerdictISP {
			b.Fatal("CPE interception misattributed to the ISP under faults")
		}
		for _, p := range report.Location {
			if p.Attempts > 1 {
				retried++
			}
		}
		if len(report.Faults) > 0 {
			degraded++
		}
	}
	b.ReportMetric(float64(retried)/float64(b.N), "retried/op")
	b.ReportMetric(float64(degraded)/float64(b.N), "degraded/op")
}

// --- Ablations ---------------------------------------------------------

// BenchmarkAblationARecordVsVersionBind reruns Appendix A's argument:
// against an open-forwarder CPE behind an ISP interceptor, the A-record
// comparison misclassifies (metric misclassify=1) while version.bind
// comparison stays sound on the open-forwarder-only home (metric 0).
func BenchmarkAblationARecordVsVersionBind(b *testing.B) {
	b.Run("a-record", func(b *testing.B) {
		lab := homelab.New(homelab.OpenForwarder) // clean home, open port
		det := lab.Detector()
		wrong := 0
		for i := 0; i < b.N; i++ {
			if det.CPETestWithARecord(publicdns.CanaryDomain, []publicdns.ID{publicdns.Google}) {
				wrong++ // blames the CPE though nothing is intercepted
			}
		}
		b.ReportMetric(float64(wrong)/float64(b.N), "misclassify")
	})
	b.Run("version-bind", func(b *testing.B) {
		lab := homelab.New(homelab.OpenForwarder)
		det := lab.Detector()
		wrong := 0
		for i := 0; i < b.N; i++ {
			report := det.Run()
			if report.Verdict == core.VerdictCPE {
				wrong++
			}
		}
		b.ReportMetric(float64(wrong)/float64(b.N), "misclassify")
	})
}

// BenchmarkAblationResolverCount measures detection recall as the
// location-query sweep shrinks from four operators to one: selective
// interceptors (here: a Google-only CPE) escape narrow sweeps.
func BenchmarkAblationResolverCount(b *testing.B) {
	sets := map[string][]publicdns.ID{
		"1-resolver":  {publicdns.Cloudflare},
		"2-resolvers": {publicdns.Cloudflare, publicdns.Quad9},
		"4-resolvers": publicdns.All,
	}
	for name, set := range sets {
		set := set
		b.Run(name, func(b *testing.B) {
			labs := []*homelab.Lab{
				homelab.New(homelab.XB6),          // intercepts everything
				homelab.New(homelab.CPESelective), // intercepts Google only
			}
			detected := 0
			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, lab := range labs {
					det := lab.Detector()
					det.Resolvers = set
					if det.Run().Intercepted() {
						detected++
					}
					total++
				}
			}
			b.ReportMetric(float64(detected)/float64(total), "recall")
		})
	}
}

// BenchmarkAblationBogonChoice shows why step 3 must use a *bogon*
// destination: with a routable-but-dead canary destination, a transit
// interceptor beyond the AS answers it and the technique wrongly
// concludes "within ISP" (metric misattribute=1). The bogon query is
// dropped at the AS border, keeping the conclusion sound.
func BenchmarkAblationBogonChoice(b *testing.B) {
	b.Run("bogon", func(b *testing.B) {
		lab := homelab.New(homelab.BeyondISP)
		det := lab.Detector()
		wrong := 0
		for i := 0; i < b.N; i++ {
			if det.Run().Verdict == core.VerdictISP {
				wrong++
			}
		}
		b.ReportMetric(float64(wrong)/float64(b.N), "misattribute")
	})
	b.Run("routable-dead", func(b *testing.B) {
		lab := homelab.New(homelab.BeyondISP)
		det := lab.Detector()
		det.BogonV4 = netip.MustParseAddr("64.87.0.1") // routable, unowned
		wrong := 0
		for i := 0; i < b.N; i++ {
			if det.Run().Verdict == core.VerdictISP {
				wrong++
			}
		}
		b.ReportMetric(float64(wrong)/float64(b.N), "misattribute")
	})
}

// --- §6 extensions ------------------------------------------------------

// BenchmarkTTLLadder measures the TTL-ladder hop localization against
// the XB6 home (the interceptor answers at hop 1).
func BenchmarkTTLLadder(b *testing.B) {
	lab := homelab.New(homelab.XB6)
	c := &ttlprobe.SimTTLClient{Net: lab.Net, Host: lab.Probe}
	server := netip.AddrPortFrom(publicdns.Lookup(publicdns.Google).V4[0], 53)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ttlprobe.Ladder(c, server, publicdns.CanaryDomain, 10)
		if err != nil || res.FirstTTL != 1 {
			b.Fatalf("ladder: %v first=%d", err, res.FirstTTL)
		}
	}
}

// BenchmarkDNSSECValidation measures a full validating-stub resolution
// (answer + DNSKEY/DS chain walk to the root) through a clean path, and
// checks that the same stub sees broken DNSSEC through an interceptor.
func BenchmarkDNSSECValidation(b *testing.B) {
	clean := homelab.New(homelab.Clean)
	stub := &dnssec.Stub{
		Client:      clean.Client(),
		Resolver:    netip.AddrPortFrom(publicdns.Lookup(publicdns.Cloudflare).V4[0], 53),
		TrustAnchor: clean.Backbone.TrustAnchor,
	}
	intercepted := homelab.New(homelab.XB6)
	badStub := &dnssec.Stub{
		Client:      intercepted.Client(),
		Resolver:    netip.AddrPortFrom(publicdns.Lookup(publicdns.Cloudflare).V4[0], 53),
		TrustAnchor: intercepted.Backbone.TrustAnchor,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := stub.Resolve(publicdns.CanaryDomain, dnswire.TypeA); !res.Secure {
			b.Fatalf("clean path insecure: %v", res.Err)
		}
		if res := badStub.Resolve(publicdns.CanaryDomain, dnswire.TypeA); res.Secure {
			b.Fatal("intercepted path validated")
		}
	}
}

// BenchmarkDoTInterception measures the DoT interception-detection
// matrix (strict blocks, opportunistic detects).
func BenchmarkDoTInterception(b *testing.B) {
	target := &dotsim.Server{
		Addr:     netip.MustParseAddr("1.1.1.1"),
		Cert:     dotsim.Certificate{Subject: netip.MustParseAddr("1.1.1.1"), Trusted: true},
		Identity: "IAD",
	}
	mitm := &dotsim.Interceptor{
		Cert:    dotsim.Certificate{Subject: netip.MustParseAddr("1.1.1.1"), Trusted: false},
		Backend: &dotsim.Server{Identity: "unbound"},
	}
	validate := func(s string) bool { return len(s) == 3 }
	for i := 0; i < b.N; i++ {
		detected, connected := dotsim.DetectInterception(
			dotsim.Path{Target: target, Interceptor: mitm}, dotsim.Opportunistic, validate)
		if !detected || !connected {
			b.Fatal("opportunistic DoT interception not detected")
		}
		if _, connected := dotsim.DetectInterception(
			dotsim.Path{Target: target, Interceptor: mitm}, dotsim.Strict, validate); connected {
			b.Fatal("strict DoT connected through a MITM")
		}
	}
}

// --- Substrate microbenchmarks -----------------------------------------

// BenchmarkWirePack measures DNS message encoding.
func BenchmarkWirePack(b *testing.B) {
	m := dnswire.NewTXTResponse(dnswire.NewChaosTXTQuery(1, "version.bind"), "dnsmasq-2.85")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireUnpack measures DNS message decoding.
func BenchmarkWireUnpack(b *testing.B) {
	buf := dnswire.MustPack(dnswire.NewTXTResponse(dnswire.NewChaosTXTQuery(1, "version.bind"), "dnsmasq-2.85"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dnswire.Unpack(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimExchange measures one end-to-end simulated DNS exchange
// (host -> CPE NAT -> ISP -> transit -> anycast resolver and back).
func BenchmarkSimExchange(b *testing.B) {
	lab := homelab.New(homelab.Clean)
	client := lab.Client()
	q := dnsloc.NewLocationQuery(dnsloc.Cloudflare, 1)
	server := netip.AddrPortFrom(netip.MustParseAddr("1.1.1.1"), 53)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Exchange(server, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecursiveResolution measures a full iterative resolution
// (root -> TLD -> authoritative) through an ISP resolver, cache flushed
// each iteration.
func BenchmarkRecursiveResolution(b *testing.B) {
	lab := homelab.New(homelab.Clean)
	client := lab.Client()
	server := lab.ISP.ResolverAddrPort()
	q := dnsloc.NewAQuery(9, string(publicdns.WhoamiDomain))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lab.ISP.Resolver.FlushCache()
		resps, err := client.Exchange(server, q)
		if err != nil || len(resps[0].Answers) == 0 {
			b.Fatalf("resolution failed: %v", err)
		}
	}
}

// BenchmarkDNSSECSignVerify measures one Ed25519 RRset signature and its
// verification.
func BenchmarkDNSSECSignVerify(b *testing.B) {
	key := dnssec.GenerateKey("dnsloc.com", "bench")
	rrs := []dnswire.Record{{
		Name: "canary.dnsloc.com", Class: dnswire.ClassINET, TTL: 300,
		Data: dnswire.ARData{Addr: netip.MustParseAddr("45.33.7.7")},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sigRec, err := dnssec.SignRRset(rrs, key)
		if err != nil {
			b.Fatal(err)
		}
		sig := sigRec.Data.(dnswire.RRSIGRData)
		if err := dnssec.VerifyRRset(rrs, sig, []dnswire.DNSKEYRData{key.Public}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForwarderCacheHit measures a LAN lookup served from the CPE
// forwarder's cache versus the full upstream path.
func BenchmarkForwarderCacheHit(b *testing.B) {
	lab := homelab.New(homelab.Clean)
	client := lab.Client()
	// DHCP-style stub use: query the CPE LAN address.
	server := netip.AddrPortFrom(lab.CPE.Config.LANAddr, 53)
	warm := dnsloc.NewAQuery(71, string(publicdns.CanaryDomain))
	if _, err := client.Exchange(server, warm); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Exchange(server, warm); err != nil {
			b.Fatal(err)
		}
	}
}
