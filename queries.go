package dnsloc

import (
	"net/netip"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// Message is a DNS message; the Client interface exchanges them.
type Message = dnswire.Message

// NewVersionBindQuery builds the CHAOS TXT version.bind query of the
// CPE test (§3.2).
func NewVersionBindQuery(id uint16) *Message {
	return dnswire.NewChaosTXTQuery(id, "version.bind")
}

// NewLocationQuery builds an operator's location query (Table 1).
func NewLocationQuery(r ResolverID, id uint16) *Message {
	return publicdns.Lookup(r).Location.Message(id)
}

// NewAQuery builds an ordinary recursive A query.
func NewAQuery(id uint16, name string) *Message {
	return dnswire.NewQuery(id, dnswire.Name(name), dnswire.TypeA, dnswire.ClassINET)
}

// ResolverAddrs returns an operator's anycast service addresses,
// primary first, IPv4 then IPv6.
func ResolverAddrs(r ResolverID) (v4, v6 []netip.Addr) {
	c := publicdns.Lookup(r)
	return append([]netip.Addr(nil), c.V4...), append([]netip.Addr(nil), c.V6...)
}

// ValidateLocationAnswer reports whether an answer matches the
// operator's standard location-query format (§3.1).
func ValidateLocationAnswer(r ResolverID, answer string) bool {
	return publicdns.Lookup(r).ValidateLocationAnswer(answer)
}
