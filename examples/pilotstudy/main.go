// Pilotstudy: run a reduced-scale version of the paper's RIPE Atlas
// pilot study (§4) and print its tables and figures.
//
// The full harness lives in cmd/pilotstudy; this example shows the
// public API: one call builds a ~1,000-probe world across dozens of
// ISPs and countries, runs the technique from every responding probe,
// and renders the paper's evaluation artifacts.
//
//	go run ./examples/pilotstudy
package main

import (
	"fmt"

	dnsloc "github.com/dnswatch/dnsloc"
)

func main() {
	out := dnsloc.RunPilotStudy(dnsloc.PilotOptions{Scale: 0.1})

	fmt.Printf("probes: %d   intercepted: %d\n\n", out.Probes, out.Intercepted)
	fmt.Println(out.Table4)
	fmt.Println(out.Table5)
	fmt.Println(out.Figure4)
	fmt.Println(out.Accuracy)
}
