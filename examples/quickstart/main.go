// Quickstart: detect and localize DNS interception in a simulated home.
//
// The home behind this probe is an XB6 router with the XDNS bug from the
// paper's §5 case study: every LAN DNS query is silently DNATed to the
// ISP resolver. Three steps of queries are enough to (1) notice the
// interception, (2) pin it on the CPE, and (3) read off the forwarder's
// fingerprint.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	dnsloc "github.com/dnswatch/dnsloc"
)

func main() {
	// Build a simulated home — probe, CPE, ISP, and the public Internet
	// with all four resolver operators.
	lab := dnsloc.NewSimHome(dnsloc.ScenarioXB6)

	// The detector gets a transport and the probe's public address
	// (which a measurement platform like RIPE Atlas provides as
	// metadata) and runs the full three-step technique.
	report := lab.Detector().Run()

	fmt.Println(report)

	switch report.Verdict {
	case dnsloc.VerdictNotIntercepted:
		fmt.Println("quickstart: this home is clean")
	case dnsloc.VerdictCPE:
		fmt.Printf("quickstart: your own router is hijacking DNS (forwarder: %q)\n", report.CPEString)
	case dnsloc.VerdictISP:
		fmt.Println("quickstart: your ISP intercepts DNS before it leaves the network")
	default:
		fmt.Println("quickstart: DNS is intercepted somewhere beyond the ISP")
	}
}
