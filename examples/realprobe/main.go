// Realprobe: run the technique against the actual network this machine
// is connected to, using plain UDP sockets — the paper's point is that
// no root access or measurement infrastructure is needed.
//
//	go run ./examples/realprobe                      # steps 1 and 3 only
//	go run ./examples/realprobe -cpe-ip 203.0.113.7  # all three steps
//
// Without Internet access every query times out, which the technique
// conservatively treats as "not intercepted" (§3.1) — so this example
// is safe to run anywhere.
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"time"

	dnsloc "github.com/dnswatch/dnsloc"
)

func main() {
	cpeIP := flag.String("cpe-ip", "", "your router's public IPv4 address (from its admin UI, or your probe platform's metadata)")
	timeout := flag.Duration("timeout", 3*time.Second, "per-query timeout")
	flag.Parse()

	det := &dnsloc.Detector{
		Client:  dnsloc.NewUDPClient(*timeout),
		QueryV6: true,
	}
	if *cpeIP != "" {
		addr, err := netip.ParseAddr(*cpeIP)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -cpe-ip: %v\n", err)
			os.Exit(2)
		}
		det.CPEPublicV4 = addr
	} else {
		fmt.Println("no -cpe-ip given: step 2 (the CPE test) will be skipped;")
		fmt.Println("interception can still be detected and localized to the ISP.")
		fmt.Println()
	}

	report := det.Run()
	fmt.Print(report)
}
