// Extensions: a tour of the measurements the paper proposes as future
// work (§6) or mentions in passing (§1, §2), all runnable in the
// simulator:
//
//   - TTL-ladder hop localization of the interceptor
//
//   - DNS-over-TLS interception (strict vs. opportunistic profiles)
//
//   - DNSSEC breakage behind a DNSSEC-oblivious interceptor
//
//   - NXDOMAIN wildcarding (redirection, as distinct from interception)
//
//     go run ./examples/extensions
package main

import (
	"fmt"
	"net/netip"

	"github.com/dnswatch/dnsloc/internal/dnssec"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/dotsim"
	"github.com/dnswatch/dnsloc/internal/homelab"
	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/redirect"
	"github.com/dnswatch/dnsloc/internal/ttlprobe"
)

// splitLines is a tiny helper for indented printing.
func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func main() {
	google := netip.AddrPortFrom(publicdns.Lookup(publicdns.Google).V4[0], 53)
	cloudflare := netip.AddrPortFrom(publicdns.Lookup(publicdns.Cloudflare).V4[0], 53)

	fmt.Println("== TTL-ladder hop localization (§6) ==")
	for _, s := range []homelab.Scenario{homelab.Clean, homelab.XB6, homelab.ISPMiddlebox, homelab.BeyondISP} {
		lab := homelab.New(s)
		c := &ttlprobe.SimTTLClient{Net: lab.Net, Host: lab.Probe}
		res, err := ttlprobe.Ladder(c, google, publicdns.CanaryDomain, 10)
		if err != nil {
			fmt.Printf("  %-22s ladder failed: %v\n", s, err)
			continue
		}
		fmt.Printf("  %-22s first answer at TTL %d — %s\n", s, res.FirstTTL, ttlprobe.Classify(res, 5))
	}

	fmt.Println()
	fmt.Println("== DNS traceroute (ICMP Time Exceeded) ==")
	for _, s := range []homelab.Scenario{homelab.Clean, homelab.ISPMiddlebox} {
		lab := homelab.New(s)
		c := &ttlprobe.SimTTLClient{Net: lab.Net, Host: lab.Probe}
		tr, err := ttlprobe.Traceroute(c, google, publicdns.CanaryDomain, 10)
		if err != nil {
			fmt.Printf("  %s: %v\n", s, err)
			continue
		}
		fmt.Printf("  scenario %s:\n", s)
		for _, line := range splitLines(tr.String()) {
			fmt.Println("    " + line)
		}
	}

	fmt.Println()
	fmt.Println("== DNS-over-TLS interception (§6) ==")
	target := &dotsim.Server{
		Addr:     cloudflare.Addr(),
		Cert:     dotsim.Certificate{Subject: cloudflare.Addr(), Trusted: true},
		Identity: "IAD",
	}
	mitm := &dotsim.Interceptor{
		Cert:    dotsim.Certificate{Subject: cloudflare.Addr(), Trusted: false},
		Backend: &dotsim.Server{Identity: "unbound"},
	}
	validate := func(s string) bool { return publicdns.Lookup(publicdns.Cloudflare).ValidateLocationAnswer(s) }
	for _, profile := range []dotsim.Profile{dotsim.Strict, dotsim.Opportunistic} {
		detected, connected := dotsim.DetectInterception(
			dotsim.Path{Target: target, Interceptor: mitm}, profile, validate)
		fmt.Printf("  %-14s connected=%-5t interception detected=%t\n", profile, connected, detected)
	}

	fmt.Println()
	fmt.Println("== DNSSEC behind an interceptor (§1) ==")
	for _, s := range []homelab.Scenario{homelab.Clean, homelab.XB6} {
		lab := homelab.New(s)
		stub := &dnssec.Stub{
			Client:      lab.Client(),
			Resolver:    cloudflare,
			TrustAnchor: lab.Backbone.TrustAnchor,
		}
		res := stub.Resolve(publicdns.CanaryDomain, dnswire.TypeA)
		status := "SECURE"
		if !res.Secure {
			status = fmt.Sprintf("INSECURE (%v)", res.Err)
		}
		fmt.Printf("  %-22s %s\n", s, status)
	}

	fmt.Println()
	fmt.Println("== NXDOMAIN wildcarding (redirection, §2) ==")
	lab := homelab.New(homelab.Clean)
	lab.ISP.Resolver.NXDomainWildcard = netip.MustParseAddr("96.120.0.80")
	det := &redirect.Detector{Client: lab.Client(), Resolver: lab.ISP.ResolverAddrPort()}
	res, err := det.Run()
	if err != nil {
		fmt.Printf("  detection failed: %v\n", err)
		return
	}
	fmt.Printf("  ISP resolver wildcarded=%t ad servers=%v\n", res.Wildcarded, res.AdServers)
	pub := &redirect.Detector{Client: lab.Client(), Resolver: cloudflare}
	if pres, err := pub.Run(); err == nil {
		fmt.Printf("  cloudflare    wildcarded=%t (honest)\n", pres.Wildcarded)
	}
}
