// Homescan: sweep every simulated home configuration and show what the
// technique concludes for each — the decision matrix of Figure 2.
//
// This is the "diagnosing a misbehaving home network" workload the
// paper's introduction motivates: the same handful of queries separates
// a hijacking router from a hijacking ISP from a clean path, including
// the corner cases (§6): interceptors that drop bogon queries, and the
// open-forwarder CPE that can be misclassified.
//
//	go run ./examples/homescan
package main

import (
	"fmt"

	dnsloc "github.com/dnswatch/dnsloc"
)

func main() {
	fmt.Printf("%-24s %-30s %-16s %s\n", "scenario", "verdict", "transparency", "intercepted resolvers")
	fmt.Println(divider(100))
	for _, scenario := range dnsloc.AllScenarios {
		lab := dnsloc.NewSimHome(scenario)
		report := lab.Detector().Run()

		resolvers := "-"
		if report.Intercepted() {
			resolvers = fmt.Sprint(report.InterceptedSet())
		}
		fmt.Printf("%-24s %-30s %-16s %s\n",
			scenario, report.Verdict, report.Transparency, resolvers)

		if report.Verdict != dnsloc.ExpectedVerdict(scenario) {
			fmt.Printf("  !! unexpected verdict (expected %s)\n", dnsloc.ExpectedVerdict(scenario))
		}
	}
	fmt.Println()
	fmt.Println("note: scenario", dnsloc.ScenarioCPEChaosRelay, "is the paper's §6 misclassification —")
	fmt.Println("an open-forwarder CPE relaying version.bind to the ISP's interceptor resolver is")
	fmt.Println("indistinguishable from a CPE interceptor, and the technique (correctly per its")
	fmt.Println("design, wrongly per ground truth) blames the CPE.")
}

func divider(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}
