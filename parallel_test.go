package dnsloc_test

import (
	"testing"
	"time"

	dnsloc "github.com/dnswatch/dnsloc"
)

// TestParallelDetectorOverRealSockets exercises Detector.Parallel with
// the real UDP transport against a loopback server: all 16 location
// queries run concurrently. (Run with -race; the transport must be
// state-free per exchange.)
func TestParallelDetectorOverRealSockets(t *testing.T) {
	srv := startLoopbackDNS(t)
	defer srv.close()

	c := dnsloc.NewUDPClient(500 * time.Millisecond)
	c.Window = 0
	det := &dnsloc.Detector{
		Client:   c,
		Parallel: true,
		QueryV6:  false,
	}
	// The queries go to the real anycast addresses; what answers (or
	// doesn't) depends on the build environment — some sandboxes run
	// their own transparent DNS proxy, which this detector correctly
	// flags. The test therefore asserts only structure and concurrency
	// safety, not the verdict.
	report := det.Run()
	if len(report.Location) != 8 {
		t.Errorf("location probes = %d, want 8", len(report.Location))
	}
	for _, p := range report.Location {
		if p.Family != dnsloc.FamilyV4 {
			t.Errorf("unexpected family %s", p.Family)
		}
	}
}

// TestParallelUDPExchangesConcurrently hammers the loopback server from
// many goroutines through one shared client.
func TestParallelUDPExchangesConcurrently(t *testing.T) {
	srv := startLoopbackDNS(t)
	defer srv.close()

	c := dnsloc.NewUDPClient(2 * time.Second)
	c.Window = 0
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		go func(id uint16) {
			q := dnsloc.NewVersionBindQuery(id)
			resps, _, err := c.ExchangeRTT(srv.addrPort, q)
			if err == nil && len(resps) == 0 {
				err = dnsloc.ErrTimeout
			}
			errs <- err
		}(uint16(100 + i))
	}
	for i := 0; i < 32; i++ {
		if err := <-errs; err != nil {
			t.Errorf("concurrent exchange: %v", err)
		}
	}
}
