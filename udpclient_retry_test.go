package dnsloc_test

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	dnsloc "github.com/dnswatch/dnsloc"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// droppyDNS is a real UDP server that swallows the first drop datagrams
// of every run, then answers — the retransmission case.
type droppyDNS struct {
	conn     *net.UDPConn
	addrPort netip.AddrPort
	done     chan struct{}

	mu      sync.Mutex
	drop    int
	arrived int
}

func startDroppyDNS(t *testing.T, drop int) *droppyDNS {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &droppyDNS{
		conn:     conn,
		addrPort: conn.LocalAddr().(*net.UDPAddr).AddrPort(),
		done:     make(chan struct{}),
		drop:     drop,
	}
	go s.serve()
	return s
}

func (s *droppyDNS) serve() {
	defer close(s.done)
	buf := make([]byte, 4096)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		s.mu.Lock()
		s.arrived++
		swallow := s.arrived <= s.drop
		s.mu.Unlock()
		if swallow {
			continue
		}
		query, err := dnswire.Unpack(buf[:n])
		if err != nil {
			continue
		}
		resp := dnswire.NewTXTResponse(query, "droppy")
		payload, err := resp.Pack()
		if err != nil {
			continue
		}
		s.conn.WriteToUDP(payload, from) //nolint:errcheck
	}
}

func (s *droppyDNS) datagrams() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.arrived
}

func (s *droppyDNS) close() {
	s.conn.Close()
	<-s.done
}

func TestUDPClientRetransmitsWithinDeadline(t *testing.T) {
	srv := startDroppyDNS(t, 1)
	defer srv.close()

	c := dnsloc.NewUDPClient(2 * time.Second)
	c.Window = 0
	c.Retry = &core.RetryPolicy{
		MaxAttempts:    3,
		AttemptTimeout: 150 * time.Millisecond,
		Backoff:        5 * time.Millisecond,
		JitterSeed:     3,
	}
	q := dnsloc.NewVersionBindQuery(31)
	resps, rtt, err := c.ExchangeRTT(srv.addrPort, q)
	if err != nil {
		t.Fatalf("exchange with retransmission: %v", err)
	}
	if txt, ok := resps[0].FirstTXT(); !ok || txt != "droppy" {
		t.Errorf("answer = %q", txt)
	}
	if rtt <= 0 || rtt > 150*time.Millisecond {
		t.Errorf("rtt = %v, want the last attempt's timing, not the whole exchange", rtt)
	}
	if got := srv.datagrams(); got != 2 {
		t.Errorf("server saw %d datagrams, want 2 (original + one retransmission)", got)
	}
}

func TestUDPClientWithoutRetryTimesOutOnLoss(t *testing.T) {
	srv := startDroppyDNS(t, 1)
	defer srv.close()

	c := dnsloc.NewUDPClient(200 * time.Millisecond)
	c.Window = 0
	q := dnsloc.NewVersionBindQuery(32)
	_, err := c.Exchange(srv.addrPort, q)
	if !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout without a retry policy", err)
	}
	if got := srv.datagrams(); got != 1 {
		t.Errorf("server saw %d datagrams, want 1", got)
	}
}
