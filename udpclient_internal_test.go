package dnsloc

import (
	"errors"
	"net"
	"os"
	"syscall"
	"testing"

	"github.com/dnswatch/dnsloc/internal/core"
)

// udpOpErr wraps a syscall errno the way the net package surfaces it on
// a connected UDP socket, so the classifier sees realistic error chains.
func udpOpErr(op string, errno syscall.Errno) error {
	return &net.OpError{Op: op, Net: "udp", Err: os.NewSyscallError(op, errno)}
}

// TestClassifyUDPError pins the UDP socket-error classification the
// retry policy depends on. The regression it guards: unreachable
// networks and hosts used to fall through the refusal check and either
// collapse into ErrTimeout (read path) or escape raw (write path), so
// the detector retried a path that could never work and callers saw
// unclassified syscall errors.
func TestClassifyUDPError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"refused", udpOpErr("write", syscall.ECONNREFUSED), core.ErrRefused},
		{"refused-on-read", udpOpErr("read", syscall.ECONNREFUSED), core.ErrRefused},
		{"net-unreachable", udpOpErr("write", syscall.ENETUNREACH), core.ErrNoRoute},
		{"host-unreachable", udpOpErr("write", syscall.EHOSTUNREACH), core.ErrNoRoute},
		{"addr-not-avail", udpOpErr("write", syscall.EADDRNOTAVAIL), core.ErrNoRoute},
		{"net-unreachable-on-read", udpOpErr("read", syscall.ENETUNREACH), core.ErrNoRoute},
		{"deadline", &net.OpError{Op: "read", Net: "udp", Err: os.ErrDeadlineExceeded}, core.ErrTimeout},
		{"unknown", errors.New("socket: too many open files"), core.ErrNoRoute},
	}
	for _, tc := range cases {
		if got := classifyUDPError(tc.err); !errors.Is(got, tc.want) {
			t.Errorf("%s: classifyUDPError(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}
