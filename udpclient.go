package dnsloc

import (
	"net"
	"net/netip"
	"time"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// UDPClient is a real-network transport for the Detector built on
// net.DialUDP — no root, no raw sockets, exactly the privilege level
// the paper's technique requires ("any device that can make DNS
// queries"). It collects every response that arrives within the window
// so query replication is observable.
type UDPClient struct {
	// Timeout bounds each exchange; responses after it are a timeout.
	Timeout time.Duration
	// Window extends listening after the first response to catch
	// replicated answers. Zero means return after the first response.
	Window time.Duration
}

// NewUDPClient builds a client with the given per-query timeout.
func NewUDPClient(timeout time.Duration) *UDPClient {
	return &UDPClient{Timeout: timeout, Window: 150 * time.Millisecond}
}

// Exchange implements Client over a real UDP socket.
func (c *UDPClient) Exchange(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, error) {
	resps, _, err := c.ExchangeRTT(server, query)
	return resps, err
}

// ExchangeRTT implements core.RTTExchanger with wall-clock timing. The
// client keeps no per-exchange state, so it is safe for the detector's
// Parallel mode.
func (c *UDPClient) ExchangeRTT(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, time.Duration, error) {
	payload, err := query.Pack()
	if err != nil {
		return nil, 0, err
	}
	conn, err := net.DialUDP("udp", nil, net.UDPAddrFromAddrPort(server))
	if err != nil {
		// No route / no address in this family.
		return nil, 0, core.ErrNoRoute
	}
	defer conn.Close()

	timeout := c.Timeout
	if timeout == 0 {
		timeout = 3 * time.Second
	}
	deadline := time.Now().Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, 0, err
	}
	if _, err := conn.Write(payload); err != nil {
		return nil, 0, err
	}

	var out []*dnswire.Message
	var rtt time.Duration
	buf := make([]byte, 4096)
	start := time.Now()
	for {
		n, err := conn.Read(buf)
		if err != nil {
			if len(out) > 0 {
				return out, rtt, nil
			}
			return nil, 0, core.ErrTimeout
		}
		m, err := dnswire.Unpack(buf[:n])
		if err != nil || m.Header.ID != query.Header.ID {
			continue // not our answer; keep listening
		}
		if len(out) == 0 {
			rtt = time.Since(start)
		}
		out = append(out, m)
		if c.Window == 0 {
			return out, rtt, nil
		}
		// Shrink the deadline to the replication window.
		w := time.Now().Add(c.Window)
		if w.Before(deadline) {
			if err := conn.SetDeadline(w); err != nil {
				return out, rtt, nil
			}
		}
	}
}
