package dnsloc

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"syscall"
	"time"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// readBufPool recycles the per-exchange 4 KiB response buffers. The
// detector's Parallel mode runs many exchanges at once, and each used
// to allocate its own buffer; Unpack deep-copies out of the buffer, so
// returning it at the end of the exchange is safe even while the parsed
// responses live on.
var readBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 4096)
		return &b
	},
}

// UDPClient is a real-network transport for the Detector built on
// net.DialUDP — no root, no raw sockets, exactly the privilege level
// the paper's technique requires ("any device that can make DNS
// queries"). It collects every response that arrives within the window
// so query replication is observable.
type UDPClient struct {
	// Timeout bounds each exchange; responses after it are a timeout.
	Timeout time.Duration
	// Window extends listening after the first response to catch
	// replicated answers. Zero means return after the first response.
	Window time.Duration
	// Retry, when non-nil, enables in-socket retransmission: the overall
	// Timeout is divided into Retry.Attempts() tries (or AttemptTimeout
	// each, when set), the query datagram is re-sent at each attempt, and
	// Retry's backoff paces the re-sends. This is a stub resolver's
	// standard defence against one-off datagram loss.
	Retry *core.RetryPolicy
	// Metrics, when non-nil, records every attempt — not just the one
	// that was finally answered. A dropped-then-answered exchange shows
	// two attempts and two duration samples.
	Metrics *ClientMetrics
}

// NewUDPClient builds a client with the given per-query timeout.
func NewUDPClient(timeout time.Duration) *UDPClient {
	return &UDPClient{Timeout: timeout, Window: 150 * time.Millisecond}
}

// classifyUDPError maps a UDP socket error onto the detector's error
// taxonomy. Refusal (ICMP port-unreachable) and deadline expiry are
// the transient cases retry logic cares about; unreachable networks
// and hosts — and any other hard socket error — mean the path itself
// is gone, which retrying the same socket cannot fix.
func classifyUDPError(err error) error {
	switch {
	case errors.Is(err, syscall.ECONNREFUSED):
		return core.ErrRefused
	case errors.Is(err, syscall.ENETUNREACH),
		errors.Is(err, syscall.EHOSTUNREACH),
		errors.Is(err, syscall.EADDRNOTAVAIL):
		return core.ErrNoRoute
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return core.ErrTimeout
	}
	return core.ErrNoRoute
}

// Exchange implements Client over a real UDP socket.
func (c *UDPClient) Exchange(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, error) {
	resps, _, err := c.ExchangeRTT(server, query)
	return resps, err
}

// ExchangeRTT implements core.RTTExchanger with wall-clock timing. The
// client keeps no per-exchange state, so it is safe for the detector's
// Parallel mode.
func (c *UDPClient) ExchangeRTT(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, time.Duration, error) {
	payload, err := query.PackTo(dnswire.GetPackBuf())
	if err != nil {
		return nil, 0, err
	}
	// The payload is only referenced until the last conn.Write; returning
	// it when the exchange ends is safe on every path.
	defer dnswire.PutPackBuf(payload)
	c.Metrics.noteExchange()
	conn, err := net.DialUDP("udp", nil, net.UDPAddrFromAddrPort(server))
	if err != nil {
		// No route / no address in this family.
		return nil, 0, core.ErrNoRoute
	}
	defer conn.Close()

	timeout := c.Timeout
	if timeout == 0 {
		timeout = 3 * time.Second
	}
	var pol core.RetryPolicy
	if c.Retry != nil {
		pol = *c.Retry
	}
	attempts := pol.Attempts()
	perAttempt := pol.AttemptTimeout
	if perAttempt <= 0 {
		perAttempt = timeout / time.Duration(attempts)
	}
	overall := time.Now().Add(timeout)
	salt := core.QuerySalt(server, query.Header.ID)

	var out []*dnswire.Message
	var rtt time.Duration
	sawGarbage := false
	sawRefused := false
	bufp := readBufPool.Get().(*[]byte)
	defer readBufPool.Put(bufp)
	buf := *bufp
	for attempt := 1; attempt <= attempts; attempt++ {
		attemptEnd := time.Now().Add(perAttempt)
		if attemptEnd.After(overall) {
			attemptEnd = overall
		}
		if err := conn.SetDeadline(attemptEnd); err != nil {
			return nil, 0, err
		}
		start := time.Now()
		if _, err := conn.Write(payload); err != nil {
			switch cerr := classifyUDPError(err); cerr {
			case core.ErrRefused:
				// A prior attempt's ICMP port-unreachable surfaces on the
				// connected socket: transient, worth the remaining tries.
				sawRefused = true
			case core.ErrTimeout:
				// Deadline already spent; the read below ends the attempt.
			default:
				return nil, 0, cerr
			}
		}
	readLoop:
		for {
			n, err := conn.Read(buf)
			if err != nil {
				switch classifyUDPError(err) {
				case core.ErrRefused:
					sawRefused = true
				case core.ErrTimeout:
					// Attempt deadline; fall through to the retry logic.
				default:
					// Hard path failure (network/host unreachable): no
					// further attempt on this socket can succeed.
					if len(out) == 0 {
						c.Metrics.noteAttempt(time.Since(start))
						return nil, 0, core.ErrNoRoute
					}
				}
				break readLoop // attempt over: deadline or refusal
			}
			m, perr := dnswire.Unpack(buf[:n])
			if perr != nil || m.Header.ID != query.Header.ID {
				sawGarbage = true
				continue // not our answer; keep listening
			}
			if len(out) == 0 {
				rtt = time.Since(start)
			}
			out = append(out, m)
			if c.Window == 0 {
				c.Metrics.noteAttempt(rtt)
				return out, rtt, nil
			}
			// Re-aim the deadline at the replication window: a replica is
			// due within Window of the first answer even when that falls
			// past the attempt deadline — only the overall timeout caps
			// the wait. (Clipping the window to the attempt deadline used
			// to silently drop late replicas.)
			w := time.Now().Add(c.Window)
			if w.After(overall) {
				w = overall
			}
			if err := conn.SetDeadline(w); err != nil {
				c.Metrics.noteAttempt(rtt)
				return out, rtt, nil
			}
		}
		if len(out) > 0 {
			c.Metrics.noteAttempt(rtt)
			return out, rtt, nil
		}
		// The attempt went unanswered; record the time it burned so the
		// attempt histogram reflects every send, not just the happy one.
		c.Metrics.noteAttempt(time.Since(start))
		if attempt < attempts {
			delay := pol.BackoffFor(attempt, salt)
			if remaining := time.Until(overall); delay > remaining {
				delay = remaining
			}
			if delay > 0 {
				time.Sleep(delay)
			}
			if !time.Now().Before(overall) {
				break
			}
		}
	}
	switch {
	case sawRefused:
		return nil, 0, core.ErrRefused
	case sawGarbage:
		return nil, 0, core.ErrGarbage
	default:
		return nil, 0, core.ErrTimeout
	}
}
