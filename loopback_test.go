package dnsloc_test

import (
	"net"
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// loopbackDNS is a minimal real UDP DNS server for transport tests.
type loopbackDNS struct {
	conn     *net.UDPConn
	addrPort netip.AddrPort
	done     chan struct{}
}

func mustAddrPort(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }

// startLoopbackDNS serves CHAOS version.bind on an ephemeral loopback
// port until closed.
func startLoopbackDNS(t *testing.T) *loopbackDNS {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &loopbackDNS{
		conn:     conn,
		addrPort: conn.LocalAddr().(*net.UDPAddr).AddrPort(),
		done:     make(chan struct{}),
	}
	go s.serve()
	return s
}

func (s *loopbackDNS) serve() {
	defer close(s.done)
	buf := make([]byte, 4096)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		query, err := dnswire.Unpack(buf[:n])
		if err != nil || query.Header.Response {
			continue
		}
		var resp *dnswire.Message
		if q := query.Question(); q.Class == dnswire.ClassCHAOS && q.Name.Equal("version.bind") {
			resp = dnswire.NewTXTResponse(query, "loopback-test-server")
		} else {
			resp = dnswire.NewErrorResponse(query, dnswire.RCodeRefused)
		}
		payload, err := resp.Pack()
		if err != nil {
			continue
		}
		s.conn.WriteToUDP(payload, from) //nolint:errcheck
	}
}

func (s *loopbackDNS) close() {
	s.conn.Close()
	<-s.done
}
