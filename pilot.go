package dnsloc

import (
	"github.com/dnswatch/dnsloc/internal/analysis"
	"github.com/dnswatch/dnsloc/internal/study"
)

// PilotOptions configure a pilot-study run.
type PilotOptions struct {
	// Scale shrinks or grows the ~10,000-probe world; 0 means 1.0.
	Scale float64
	// Seed overrides the deterministic default when nonzero.
	Seed int64
	// Workers shards the run across this many parallel worlds; 0 means
	// GOMAXPROCS. Output is byte-identical at any worker count.
	Workers int
}

// PilotOutput carries the rendered tables and figures of the paper's
// evaluation, regenerated from a fresh simulated study.
type PilotOutput struct {
	// Probes and Intercepted summarize the run.
	Probes      int
	Intercepted int

	Table1   string // location queries per operator
	Table2   string // worked example: location-query responses
	Table3   string // worked example: version.bind responses
	Table4   string // intercepted probes per resolver
	Table5   string // version.bind strings of CPE interceptors
	Figure3  string // transparency per organization
	Figure4  string // interception location per country/organization
	Accuracy string // ground-truth scoring (simulator-only bonus)
}

// RunPilotStudy builds the simulated RIPE-Atlas-like world, runs the
// localization technique from every responding probe, and renders every
// table and figure of the paper's §4.
func RunPilotStudy(opts PilotOptions) PilotOutput {
	spec := study.PaperSpec()
	if opts.Scale != 0 && opts.Scale != 1.0 {
		spec = spec.Scale(opts.Scale)
	}
	if opts.Seed != 0 {
		spec.Seed = opts.Seed
	}
	results := study.RunSharded(spec, study.EngineOptions{Workers: opts.Workers})
	exampleRows := study.ExampleScenario()

	t4 := analysis.BuildTable4(results)
	return PilotOutput{
		Probes:      len(results.Records),
		Intercepted: t4.DistinctIntercepted,
		Table1:      analysis.FormatTable1(),
		Table2:      analysis.FormatTable2(exampleRows),
		Table3:      analysis.FormatTable3(exampleRows),
		Table4:      analysis.FormatTable4(t4),
		Table5:      analysis.FormatTable5(analysis.BuildTable5(results)),
		Figure3:     analysis.FormatFigure3(analysis.BuildFigure3(results, 15)),
		Figure4:     analysis.FormatFigure4(analysis.BuildFigure4(results, 15)),
		Accuracy:    analysis.FormatAccuracy(analysis.BuildAccuracy(results)),
	}
}
