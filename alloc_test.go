// Pooling-safety and allocation-budget tests for the zero-copy wire
// hot path. The budget tests pin the steady-state allocation counts the
// buffer pools bought; CI runs them so a regression that quietly
// reintroduces per-exchange allocations fails loudly. The safety tests
// assert the no-alias discipline: parsed responses stay valid after the
// pooled buffers behind them are recycled and reused.
package dnsloc_test

import (
	"fmt"
	"net/netip"
	"reflect"
	"sync"
	"testing"

	dnsloc "github.com/dnswatch/dnsloc"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/homelab"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// simExchangeAllocBudget is the acceptance gate for one end-to-end
// simulated exchange. The pre-pooling baseline was 76 allocs/op; the
// calendar-queue scheduler and the router lookup cache brought the
// measured steady state to ~23, and the shared routing core kept the
// merged local+core LPM walk allocation-free (~22 measured), so the
// budget tightened 57 → 32 → 26 — headroom for toolchain drift without
// letting the pools, the scheduler fast path, or the core-table merge
// silently start allocating.
const simExchangeAllocBudget = 26

// forwarderCacheHitAllocBudget bounds a CPE-forwarder cache hit, served
// by copying pre-packed wire bytes into a recycled buffer. Measured
// steady state is ~18 (was ~19 before the scheduler rework; unchanged
// by the sync.Map packed-answer cache, whose hit path is a lock-free
// Load); budget tightened 30 → 24 → 21.
const forwarderCacheHitAllocBudget = 21

func TestSimExchangeAllocBudget(t *testing.T) {
	lab := homelab.New(homelab.Clean)
	client := lab.Client()
	q := dnsloc.NewLocationQuery(dnsloc.Cloudflare, 1)
	server := netip.AddrPortFrom(netip.MustParseAddr("1.1.1.1"), 53)
	// Warm the resolver caches and the payload/packet freelists.
	for i := 0; i < 5; i++ {
		if _, err := client.Exchange(server, q); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := client.Exchange(server, q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > simExchangeAllocBudget {
		t.Errorf("SimExchange allocates %.1f/op, budget %d", allocs, simExchangeAllocBudget)
	}
}

func TestForwarderCacheHitAllocBudget(t *testing.T) {
	lab := homelab.New(homelab.Clean)
	client := lab.Client()
	server := netip.AddrPortFrom(lab.CPE.Config.LANAddr, 53)
	warm := dnsloc.NewAQuery(71, string(publicdns.CanaryDomain))
	for i := 0; i < 5; i++ {
		if _, err := client.Exchange(server, warm); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := client.Exchange(server, warm); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > forwarderCacheHitAllocBudget {
		t.Errorf("forwarder cache hit allocates %.1f/op, budget %d", allocs, forwarderCacheHitAllocBudget)
	}
}

// TestPooledResponsesSurviveRecycling asserts the no-alias discipline
// end to end: a parsed response must stay intact while later exchanges
// recycle and overwrite every pooled buffer that carried it. The CHAOS
// query additionally exercises the forwarder's packed-answer cache
// (shared wire bytes + per-query ID patch).
func TestPooledResponsesSurviveRecycling(t *testing.T) {
	lab := homelab.New(homelab.XB6)
	client := lab.Client()
	cpeAddr := netip.AddrPortFrom(lab.CPE.Config.LANAddr, 53)

	queries := []*dnswire.Message{
		dnswire.NewChaosTXTQuery(100, "version.bind"),
		dnsloc.NewAQuery(101, string(publicdns.CanaryDomain)),
		dnsloc.NewLocationQuery(dnsloc.Cloudflare, 102),
	}
	var held [][]*dnswire.Message
	var snaps [][]string
	for _, q := range queries {
		resps, err := client.Exchange(cpeAddr, q)
		if err != nil {
			t.Fatalf("exchange %d: %v", q.Header.ID, err)
		}
		held = append(held, resps)
		snaps = append(snaps, snapshot(resps))
	}

	// Churn the pools: many further exchanges, each taking and recycling
	// payload buffers and packet slices the held responses once rode in.
	for i := 0; i < 50; i++ {
		q := dnswire.NewChaosTXTQuery(uint16(1000+i), "version.bind")
		if _, err := client.Exchange(cpeAddr, q); err != nil {
			t.Fatalf("churn %d: %v", i, err)
		}
	}

	for i, resps := range held {
		if got := snapshot(resps); !reflect.DeepEqual(got, snaps[i]) {
			t.Errorf("response %d mutated after pool reuse:\n got %v\nwant %v", i, got, snaps[i])
		}
	}
}

// TestPackedAnswerCacheIDPatch asserts that cache-served CHAOS answers
// are byte-stable across queries: same wire, only the ID differs.
func TestPackedAnswerCacheIDPatch(t *testing.T) {
	lab := homelab.New(homelab.XB6)
	client := lab.Client()
	cpeAddr := netip.AddrPortFrom(lab.CPE.Config.LANAddr, 53)

	var wires [][]byte
	for _, id := range []uint16{21, 22, 23} {
		resps, err := client.Exchange(cpeAddr, dnswire.NewChaosTXTQuery(id, "version.bind"))
		if err != nil || len(resps) == 0 {
			t.Fatalf("id %d: %v", id, err)
		}
		if resps[0].Header.ID != id {
			t.Fatalf("id %d: got response ID %d", id, resps[0].Header.ID)
		}
		w, err := resps[0].Pack()
		if err != nil {
			t.Fatal(err)
		}
		wires = append(wires, w)
	}
	for i := 1; i < len(wires); i++ {
		if len(wires[i]) != len(wires[0]) {
			t.Fatalf("wire %d length %d != %d", i, len(wires[i]), len(wires[0]))
		}
		for j := 2; j < len(wires[0]); j++ { // bytes 0-1 are the ID
			if wires[i][j] != wires[0][j] {
				t.Fatalf("wire %d differs beyond the ID at offset %d", i, j)
			}
		}
	}
}

// TestUDPClientConcurrentPooledBuffers hammers the real-socket client
// from many goroutines against a local UDP server; under -race this
// verifies the shared pack-buffer and read-buffer pools never hand the
// same storage to two exchanges at once.
func TestUDPClientConcurrentPooledBuffers(t *testing.T) {
	srv := startDroppyDNS(t, 0)
	defer srv.close()

	client := dnsloc.NewUDPClient(2e9)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				id := uint16(g*100 + i + 1)
				q := dnswire.NewChaosTXTQuery(id, "version.bind")
				resps, err := client.Exchange(srv.addrPort, q)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d query %d: %w", g, i, err)
					return
				}
				if len(resps) == 0 || resps[0].Header.ID != id {
					errs <- fmt.Errorf("goroutine %d query %d: bad response", g, i)
					return
				}
				if got := txtString(resps[0]); got != "droppy" {
					errs <- fmt.Errorf("goroutine %d query %d: TXT %q", g, i, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// snapshot renders messages to comparable strings via a fresh pack.
func snapshot(msgs []*dnswire.Message) []string {
	out := make([]string, len(msgs))
	for i, m := range msgs {
		w, err := m.Pack()
		if err != nil {
			out[i] = "packerr: " + err.Error()
			continue
		}
		out[i] = fmt.Sprintf("%x", w)
	}
	return out
}

// txtString extracts the first TXT string of a response.
func txtString(m *dnswire.Message) string {
	for _, rr := range m.Answers {
		if txt, ok := rr.Data.(dnswire.TXTRData); ok && len(txt.Strings) > 0 {
			return txt.Strings[0]
		}
	}
	return ""
}
