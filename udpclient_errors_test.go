package dnsloc_test

import (
	"errors"
	"net"
	"net/netip"
	"testing"
	"time"

	dnsloc "github.com/dnswatch/dnsloc"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// Live-socket error-classification matrix: the same failure scenarios
// exercised through every real transport (UDP, TCP, and the
// truncation-fallback composite), pinning that each classifies into
// the detector's taxonomy instead of leaking raw syscall errors or
// collapsing into ErrTimeout. All servers are real kernel sockets.

// garbageUDPServer answers every query with bytes that are not DNS.
func garbageUDPServer(t *testing.T) netip.AddrPort {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 4096)
		for {
			_, from, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			conn.WriteToUDP([]byte{0xde, 0xad, 0xbe}, from) //nolint:errcheck
		}
	}()
	return conn.LocalAddr().(*net.UDPAddr).AddrPort()
}

// truncatingUDPServer answers with the query echoed back, TC bit set,
// and no answers — the "retry over TCP" signal.
func truncatingUDPServer(t *testing.T) netip.AddrPort {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 4096)
		for {
			n, from, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			query, perr := dnswire.Unpack(buf[:n])
			if perr != nil {
				continue
			}
			resp := dnswire.NewResponse(query, dnswire.RCodeSuccess)
			resp.Header.Truncated = true
			if wire, err := resp.Pack(); err == nil {
				conn.WriteToUDP(wire, from) //nolint:errcheck
			}
		}
	}()
	return conn.LocalAddr().(*net.UDPAddr).AddrPort()
}

// closedUDPPort reserves a loopback UDP port and closes it so datagrams
// draw an ICMP port-unreachable.
func closedUDPPort(t *testing.T) netip.AddrPort {
	t.Helper()
	rsv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addrPort := rsv.LocalAddr().(*net.UDPAddr).AddrPort()
	rsv.Close()
	return addrPort
}

// TestTransportErrorMatrix runs the refused / garbage / silent-timeout
// scenarios through each real transport. Truncation rows assert the
// transport-specific contract: the raw UDP client surfaces the TC bit,
// the fallback client must not (it retries over TCP, and with no TCP
// listener behind this server the composite classifies as refused).
func TestTransportErrorMatrix(t *testing.T) {
	const timeout = 500 * time.Millisecond
	newUDP := func() core.Client { return dnsloc.NewUDPClient(timeout) }
	newTCP := func() core.Client { return &dnsloc.TCPClient{Timeout: timeout} }
	newFB := func() core.Client { return dnsloc.NewFallbackClient(timeout) }

	cases := []struct {
		name   string
		client func() core.Client
		server func(*testing.T) netip.AddrPort
		want   error
	}{
		{"udp/refused", newUDP, closedUDPPort, core.ErrRefused},
		{"udp/garbage", newUDP, garbageUDPServer, core.ErrGarbage},
		{"udp/timeout", newUDP, func(t *testing.T) netip.AddrPort {
			srv := startDroppyDNS(t, 1<<30)
			t.Cleanup(srv.close)
			return srv.addrPort
		}, core.ErrTimeout},
		{"tcp/refused", newTCP, closedLoopbackPort, core.ErrRefused},
		{"tcp/garbage", newTCP, func(t *testing.T) netip.AddrPort {
			return misbehavingTCP(t, func(conn net.Conn) {
				defer conn.Close()
				buf := make([]byte, 512)
				conn.Read(buf)                             //nolint:errcheck
				conn.Write([]byte{0x00, 0x03, 0xde, 0xad}) //nolint:errcheck
			})
		}, core.ErrGarbage},
		{"tcp/timeout", newTCP, func(t *testing.T) netip.AddrPort {
			block := make(chan struct{})
			t.Cleanup(func() { close(block) })
			return misbehavingTCP(t, func(conn net.Conn) {
				defer conn.Close()
				<-block
			})
		}, core.ErrTimeout},
		{"fallback/refused", newFB, closedUDPPort, core.ErrRefused},
		{"fallback/garbage", newFB, garbageUDPServer, core.ErrGarbage},
		{"fallback/timeout", newFB, func(t *testing.T) netip.AddrPort {
			srv := startDroppyDNS(t, 1<<30)
			t.Cleanup(srv.close)
			return srv.addrPort
		}, core.ErrTimeout},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			addr := tc.server(t)
			_, err := tc.client().Exchange(addr, dnsloc.NewVersionBindQuery(51))
			if !errors.Is(err, tc.want) {
				t.Errorf("%s = %v, want %v", tc.name, err, tc.want)
			}
		})
	}
}

// TestUDPClientTruncatedAnswerSurfacesTCBit: the raw UDP client hands
// back the truncated answer rather than classifying it as an error —
// deciding to fall back is the FallbackClient's job.
func TestUDPClientTruncatedAnswerSurfacesTCBit(t *testing.T) {
	addr := truncatingUDPServer(t)
	c := dnsloc.NewUDPClient(500 * time.Millisecond)
	c.Window = 0
	resps, err := c.Exchange(addr, dnsloc.NewVersionBindQuery(52))
	if err != nil {
		t.Fatal(err)
	}
	if !resps[0].Header.Truncated {
		t.Error("truncated answer lost its TC bit")
	}
}

// TestUDPClientUnreachableIsNoRouteNotRetried: a destination the kernel
// has no route to must classify as core.ErrNoRoute — permanent — and
// fail the exchange on the first attempt instead of burning the retry
// schedule on a path that cannot work. (The regression: unreachable
// errors on the read path collapsed into ErrTimeout and were retried.)
// The scenario needs a kernel that actually refuses the destination, so
// it skips on hosts that route the IPv6 discard prefix.
func TestUDPClientUnreachableIsNoRouteNotRetried(t *testing.T) {
	target := netip.AddrPortFrom(netip.MustParseAddr("100::1"), 53)
	if probe, err := net.DialUDP("udp", nil, net.UDPAddrFromAddrPort(target)); err == nil {
		_, werr := probe.Write([]byte{0})
		probe.Close()
		if werr == nil {
			t.Skip("kernel routes the IPv6 discard prefix; no unreachable error to classify")
		}
	}

	c := dnsloc.NewUDPClient(5 * time.Second)
	c.Retry = &core.RetryPolicy{
		MaxAttempts:    4,
		AttemptTimeout: time.Second,
		Backoff:        500 * time.Millisecond,
		JitterSeed:     7,
	}
	start := time.Now()
	_, _, err := c.ExchangeRTT(target, dnsloc.NewVersionBindQuery(53))
	elapsed := time.Since(start)
	if !errors.Is(err, core.ErrNoRoute) {
		t.Fatalf("unreachable destination = %v, want core.ErrNoRoute", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("exchange took %v; a permanent no-route error must not consume the retry schedule", elapsed)
	}
}
