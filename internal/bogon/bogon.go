// Package bogon classifies IP addresses as bogons — addresses that must
// never appear as routable destinations on the public Internet (RFC 1918
// private space, documentation prefixes, and friends).
//
// The localization technique's third step (§3.3 of the paper) sends DNS
// queries to bogon destinations: such packets cannot leave the client's
// AS, so any answer proves an interceptor inside the AS. This package
// provides the prefix sets, the classification predicate, and the two
// canonical probe addresses the study uses.
package bogon

import (
	"net/netip"
)

// Entry is one bogon prefix with its provenance.
type Entry struct {
	Prefix netip.Prefix
	Source string // the defining RFC or registry note
}

// table is the full bogon list, assembled from the IANA special-purpose
// registries for IPv4 and IPv6.
var table = []Entry{
	// IPv4
	{netip.MustParsePrefix("0.0.0.0/8"), "RFC 1122 'this network'"},
	{netip.MustParsePrefix("10.0.0.0/8"), "RFC 1918 private"},
	{netip.MustParsePrefix("100.64.0.0/10"), "RFC 6598 shared CGN"},
	{netip.MustParsePrefix("127.0.0.0/8"), "RFC 1122 loopback"},
	{netip.MustParsePrefix("169.254.0.0/16"), "RFC 3927 link-local"},
	{netip.MustParsePrefix("172.16.0.0/12"), "RFC 1918 private"},
	{netip.MustParsePrefix("192.0.0.0/24"), "RFC 6890 protocol assignments"},
	{netip.MustParsePrefix("192.0.2.0/24"), "RFC 5737 TEST-NET-1"},
	{netip.MustParsePrefix("192.168.0.0/16"), "RFC 1918 private"},
	{netip.MustParsePrefix("198.18.0.0/15"), "RFC 2544 benchmarking"},
	{netip.MustParsePrefix("198.51.100.0/24"), "RFC 5737 TEST-NET-2"},
	{netip.MustParsePrefix("203.0.113.0/24"), "RFC 5737 TEST-NET-3"},
	{netip.MustParsePrefix("224.0.0.0/4"), "RFC 5771 multicast"},
	{netip.MustParsePrefix("240.0.0.0/4"), "RFC 1112 reserved"},
	// IPv6
	{netip.MustParsePrefix("::/128"), "RFC 4291 unspecified"},
	{netip.MustParsePrefix("::1/128"), "RFC 4291 loopback"},
	{netip.MustParsePrefix("::ffff:0:0/96"), "RFC 4291 v4-mapped"},
	{netip.MustParsePrefix("100::/64"), "RFC 6666 discard-only"},
	{netip.MustParsePrefix("2001:db8::/32"), "RFC 3849 documentation"},
	{netip.MustParsePrefix("3fff::/20"), "RFC 9637 documentation"},
	{netip.MustParsePrefix("fc00::/7"), "RFC 4193 unique local"},
	{netip.MustParsePrefix("fe80::/10"), "RFC 4291 link-local"},
	{netip.MustParsePrefix("ff00::/8"), "RFC 4291 multicast"},
}

// Probe addresses used by the study: one unroutable destination per
// family, drawn from documentation space so no real host can own them.
var (
	// ProbeV4 is the IPv4 bogon destination for bogon queries.
	ProbeV4 = netip.MustParseAddr("192.0.2.53")
	// ProbeV6 is the IPv6 bogon destination for bogon queries.
	ProbeV6 = netip.MustParseAddr("2001:db8:5353::53")
)

// Is reports whether addr falls in any bogon prefix. v4-mapped v6
// addresses are classified by their embedded IPv4 address.
func Is(addr netip.Addr) bool {
	return Match(addr) != nil
}

// Match returns the entry whose prefix contains addr, or nil.
func Match(addr netip.Addr) *Entry {
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	for i := range table {
		if table[i].Prefix.Contains(addr) {
			return &table[i]
		}
	}
	return nil
}

// Table returns a copy of the full bogon list.
func Table() []Entry {
	return append([]Entry(nil), table...)
}

// IsPrivate reports whether addr is RFC 1918 / RFC 4193 private space —
// the space CPE LANs live in. All private space is bogon space, but not
// vice versa.
func IsPrivate(addr netip.Addr) bool {
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	return addr.IsPrivate()
}
