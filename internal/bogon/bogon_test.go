package bogon

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestKnownBogons(t *testing.T) {
	for _, s := range []string{
		"10.1.2.3", "172.16.0.1", "172.31.255.255", "192.168.1.1",
		"192.0.2.53", "198.51.100.1", "203.0.113.200", "100.64.0.1",
		"127.0.0.1", "169.254.9.9", "198.18.0.5", "224.0.0.251", "255.255.255.255",
		"::1", "2001:db8::1", "fe80::1", "fd00::1", "ff02::1", "100::9",
	} {
		if !Is(netip.MustParseAddr(s)) {
			t.Errorf("Is(%s) = false, want true", s)
		}
	}
}

func TestKnownRoutables(t *testing.T) {
	for _, s := range []string{
		"8.8.8.8", "1.1.1.1", "9.9.9.9", "208.67.222.222",
		"96.120.0.1",   // Comcast space
		"172.15.0.1",   // just below 172.16/12
		"172.32.0.1",   // just above 172.16/12
		"100.63.255.1", // just below CGN space
		"100.128.0.1",  // just above CGN space
		"2001:4860:4860::8888", "2606:4700:4700::1111", "2620:fe::fe",
	} {
		if Is(netip.MustParseAddr(s)) {
			t.Errorf("Is(%s) = true, want false", s)
		}
	}
}

func TestProbeAddressesAreBogons(t *testing.T) {
	if !Is(ProbeV4) {
		t.Error("ProbeV4 is not a bogon")
	}
	if !Is(ProbeV6) {
		t.Error("ProbeV6 is not a bogon")
	}
	if !ProbeV4.Is4() || !ProbeV6.Is6() {
		t.Error("probe address families wrong")
	}
}

func TestMatchProvenance(t *testing.T) {
	e := Match(netip.MustParseAddr("10.0.0.1"))
	if e == nil || e.Source != "RFC 1918 private" {
		t.Errorf("Match(10.0.0.1) = %+v", e)
	}
	if Match(netip.MustParseAddr("8.8.8.8")) != nil {
		t.Error("Match(8.8.8.8) != nil")
	}
}

func TestV4MappedClassifiedAsV4(t *testing.T) {
	mapped := netip.AddrFrom16(netip.MustParseAddr("::ffff:10.0.0.1").As16())
	if !Is(mapped) {
		t.Error("v4-mapped private address not classified as bogon")
	}
}

func TestIsPrivate(t *testing.T) {
	if !IsPrivate(netip.MustParseAddr("192.168.100.1")) || !IsPrivate(netip.MustParseAddr("fd12::1")) {
		t.Error("private addresses misclassified")
	}
	if IsPrivate(netip.MustParseAddr("192.0.2.53")) {
		t.Error("TEST-NET-1 wrongly reported private")
	}
}

func TestTableCopyIsolated(t *testing.T) {
	tab := Table()
	if len(tab) == 0 {
		t.Fatal("empty table")
	}
	tab[0].Source = "mutated"
	if Table()[0].Source == "mutated" {
		t.Error("Table() returns aliased storage")
	}
}

func TestPropertyPrivateImpliesBogon(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		var b [4]byte
		r.Read(b[:])
		a := netip.AddrFrom4(b)
		if IsPrivate(a) && !Is(a) {
			return false
		}
		var b6 [16]byte
		r.Read(b6[:])
		a6 := netip.AddrFrom16(b6)
		return !IsPrivate(a6) || Is(a6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
