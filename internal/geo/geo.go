// Package geo holds the reference tables of countries and organizations
// (ISPs / ASes) used to synthesize a RIPE-Atlas-like probe population.
//
// The weights encode the platform biases the paper warns about (§4):
// far more probes in Europe and North America than elsewhere, and a
// heavy Comcast presence. They are relative units, not probe counts —
// the population generator normalizes them.
package geo

import "sort"

// Country is one probe-hosting country.
type Country struct {
	Code   string // ISO 3166-1 alpha-2
	Name   string
	Weight int // relative share of the probe population
}

// Org is one probe-hosting organization (an ISP, identified by its
// principal ASN as RIPE Atlas does).
type Org struct {
	ASN     int
	Name    string
	Country string // ISO code of the org's principal market
	Weight  int    // relative share of the country's probes
}

// countries mirrors the Atlas geographic skew: EU- and NA-heavy.
var countries = []Country{
	{"US", "United States", 1750},
	{"DE", "Germany", 1450},
	{"FR", "France", 820},
	{"GB", "United Kingdom", 760},
	{"NL", "Netherlands", 700},
	{"RU", "Russia", 540},
	{"IT", "Italy", 380},
	{"CA", "Canada", 330},
	{"BE", "Belgium", 300},
	{"CH", "Switzerland", 290},
	{"SE", "Sweden", 270},
	{"ES", "Spain", 260},
	{"FI", "Finland", 230},
	{"AT", "Austria", 220},
	{"PL", "Poland", 210},
	{"CZ", "Czechia", 205},
	{"AU", "Australia", 190},
	{"JP", "Japan", 150},
	{"UA", "Ukraine", 140},
	{"NO", "Norway", 135},
	{"DK", "Denmark", 130},
	{"IE", "Ireland", 120},
	{"BR", "Brazil", 115},
	{"GR", "Greece", 105},
	{"RO", "Romania", 100},
	{"IN", "India", 95},
	{"TR", "Turkey", 85},
	{"ZA", "South Africa", 75},
	{"MX", "Mexico", 60},
	{"ID", "Indonesia", 55},
}

// orgs lists the ISPs probes attach to. ASNs are the real ones for
// recognizability; weights are within-country shares.
var orgs = []Org{
	// United States
	{7922, "Comcast", "US", 420},
	{7018, "AT&T", "US", 180},
	{701, "Verizon", "US", 150},
	{20115, "Charter Spectrum", "US", 160},
	{22773, "Cox", "US", 90},
	{209, "CenturyLink", "US", 80},
	// Germany
	{3320, "Deutsche Telekom", "DE", 380},
	{6830, "Liberty Global (DE)", "DE", 260},
	{3209, "Vodafone DE", "DE", 250},
	{8881, "1&1 Versatel", "DE", 140},
	{31334, "Vodafone Kabel", "DE", 120},
	// France
	{12322, "Free SAS", "FR", 300},
	{3215, "Orange", "FR", 260},
	{15557, "SFR", "FR", 130},
	{5410, "Bouygues", "FR", 110},
	// United Kingdom
	{2856, "BT", "GB", 230},
	{5089, "Virgin Media", "GB", 200},
	{5607, "Sky UK", "GB", 150},
	{13285, "TalkTalk", "GB", 90},
	// Netherlands
	{33915, "Ziggo", "NL", 250},
	{1136, "KPN", "NL", 230},
	{50266, "Odido", "NL", 80},
	// Russia
	{12389, "Rostelecom", "RU", 240},
	{8402, "Vimpelcom", "RU", 120},
	{25513, "MGTS", "RU", 80},
	// Italy
	{3269, "Telecom Italia", "IT", 190},
	{30722, "Vodafone IT", "IT", 90},
	{12874, "Fastweb", "IT", 70},
	// Canada
	{6327, "Shaw Communications", "CA", 140},
	{812, "Rogers", "CA", 100},
	{577, "Bell Canada", "CA", 80},
	// Belgium
	{5432, "Proximus", "BE", 150},
	{6848, "Telenet", "BE", 130},
	// Switzerland
	{3303, "Swisscom", "CH", 160},
	{6730, "Sunrise", "CH", 90},
	// Sweden
	{3301, "Telia", "SE", 150},
	{39651, "Comhem", "SE", 80},
	// Spain
	{3352, "Telefonica", "ES", 150},
	{12479, "Orange ES", "ES", 80},
	// Finland
	{1759, "Elisa", "FI", 120},
	{719, "Telia FI", "FI", 80},
	// Austria
	{8447, "A1 Telekom", "AT", 130},
	{8412, "Magenta AT", "AT", 70},
	// Poland
	{5617, "Orange PL", "PL", 120},
	{12741, "Netia", "PL", 60},
	// Czechia
	{5610, "O2 CZ", "CZ", 110},
	{16019, "Vodafone CZ", "CZ", 70},
	// Australia
	{1221, "Telstra", "AU", 110},
	{4804, "Optus", "AU", 60},
	// Japan
	{2516, "KDDI", "JP", 80},
	{4713, "NTT OCN", "JP", 60},
	// Ukraine
	{13188, "Triolan", "UA", 70},
	{6849, "Ukrtelecom", "UA", 60},
	// Norway
	{2119, "Telenor", "NO", 120},
	// Denmark
	{3292, "TDC", "DK", 110},
	// Ireland
	{6830 + 1000000, "Virgin Media IE", "IE", 60}, // disambiguated pseudo-ASN
	{5466, "Eir", "IE", 60},
	// Brazil
	{28573, "Claro BR", "BR", 60},
	{18881, "Vivo", "BR", 50},
	// Greece
	{1241, "OTE", "GR", 90},
	// Romania
	{8708, "RCS & RDS", "RO", 90},
	// India
	{24560, "Airtel", "IN", 50},
	{17488, "Hathway", "IN", 40},
	// Turkey
	{9121, "Turk Telekom", "TR", 70},
	// South Africa
	{3741, "IS", "ZA", 60},
	// Mexico
	{8151, "Telmex", "MX", 50},
	// Indonesia
	{7713, "Telkom Indonesia", "ID", 45},
}

// Countries returns the country table ordered by descending weight.
func Countries() []Country {
	out := append([]Country(nil), countries...)
	sort.Slice(out, func(i, j int) bool { return out[i].Weight > out[j].Weight })
	return out
}

// Orgs returns the org table ordered by descending weight.
func Orgs() []Org {
	out := append([]Org(nil), orgs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Weight > out[j].Weight })
	return out
}

// OrgsIn returns the orgs of one country, descending by weight.
func OrgsIn(countryCode string) []Org {
	var out []Org
	for _, o := range orgs {
		if o.Country == countryCode {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Weight > out[j].Weight })
	return out
}

// CountryByCode looks up a country.
func CountryByCode(code string) (Country, bool) {
	for _, c := range countries {
		if c.Code == code {
			return c, true
		}
	}
	return Country{}, false
}

// OrgByASN looks up an org.
func OrgByASN(asn int) (Org, bool) {
	for _, o := range orgs {
		if o.ASN == asn {
			return o, true
		}
	}
	return Org{}, false
}

// TotalWeight sums all country weights; the population generator uses it
// to normalize.
func TotalWeight() int {
	t := 0
	for _, c := range countries {
		t += c.Weight
	}
	return t
}
