package geo

import "testing"

func TestCountriesSortedAndNonEmpty(t *testing.T) {
	cs := Countries()
	if len(cs) < 20 {
		t.Fatalf("only %d countries", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i].Weight > cs[i-1].Weight {
			t.Fatalf("countries not sorted at %d", i)
		}
	}
	if cs[0].Code != "US" {
		t.Errorf("heaviest country = %s, want US (Atlas NA bias)", cs[0].Code)
	}
}

func TestEveryOrgHasAKnownCountry(t *testing.T) {
	for _, o := range Orgs() {
		if _, ok := CountryByCode(o.Country); !ok {
			t.Errorf("org %s references unknown country %q", o.Name, o.Country)
		}
	}
}

func TestEveryCountryHasAnOrg(t *testing.T) {
	for _, c := range Countries() {
		if len(OrgsIn(c.Code)) == 0 {
			t.Errorf("country %s has no orgs", c.Code)
		}
	}
}

func TestComcastPresent(t *testing.T) {
	o, ok := OrgByASN(7922)
	if !ok || o.Name != "Comcast" || o.Country != "US" {
		t.Fatalf("OrgByASN(7922) = %+v, %t", o, ok)
	}
	// Comcast must be the single heaviest org: Figure 3's top bar.
	if Orgs()[0].ASN != 7922 {
		t.Errorf("heaviest org = %+v, want Comcast", Orgs()[0])
	}
}

func TestASNsUnique(t *testing.T) {
	seen := map[int]string{}
	for _, o := range Orgs() {
		if prev, dup := seen[o.ASN]; dup {
			t.Errorf("ASN %d used by both %q and %q", o.ASN, prev, o.Name)
		}
		seen[o.ASN] = o.Name
	}
}

func TestLookupMisses(t *testing.T) {
	if _, ok := CountryByCode("XX"); ok {
		t.Error("CountryByCode(XX) found")
	}
	if _, ok := OrgByASN(1); ok {
		t.Error("OrgByASN(1) found")
	}
}

func TestTotalWeightPositive(t *testing.T) {
	if TotalWeight() <= 0 {
		t.Error("TotalWeight <= 0")
	}
}

func TestReturnedSlicesAreCopies(t *testing.T) {
	Countries()[0].Weight = -1
	if Countries()[0].Weight == -1 {
		t.Error("Countries() aliases internal storage")
	}
	Orgs()[0].Weight = -1
	if Orgs()[0].Weight == -1 {
		t.Error("Orgs() aliases internal storage")
	}
}
