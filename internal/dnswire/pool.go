package dnswire

import "sync"

// Buffer pooling for the pack hot path. Two pools live here:
//
//   - compression maps, used internally by every PackTo call so the
//     offset table is not rebuilt from scratch per message;
//   - pack buffers, for real-socket transports (udpclient/tcpclient)
//     that pack a query, write it to the wire, and are immediately done
//     with the bytes.
//
// Ownership discipline: a pooled buffer is only ever returned by the
// code that took it, after the bytes have left the process (or the
// simulator). Unpack always deep-copies out of its input, so parsed
// Messages never alias pooled storage and stay valid across reuse.

// cmpPool recycles compression maps between PackTo calls. Maps are
// pointer-shaped, so boxing them in an interface does not allocate.
var cmpPool = sync.Pool{
	New: func() any { return make(compressionMap, 16) },
}

func getCompressionMap() compressionMap {
	return cmpPool.Get().(compressionMap)
}

func putCompressionMap(cmp compressionMap) {
	clear(cmp)
	cmpPool.Put(cmp)
}

// packBufPool recycles transport pack buffers. Stored as *[]byte so the
// slice header itself is not re-boxed on every Put.
var packBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, maxUDPPayload)
		return &b
	},
}

// GetPackBuf returns an empty buffer suitable for PackTo. Pair it with
// PutPackBuf once the packed bytes are no longer referenced.
func GetPackBuf() []byte {
	return (*packBufPool.Get().(*[]byte))[:0]
}

// PutPackBuf returns a buffer obtained from GetPackBuf (possibly regrown
// by PackTo) to the pool. The caller must not touch the bytes afterwards.
func PutPackBuf(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	packBufPool.Put(&buf)
}
