package dnswire

import (
	"strings"
)

// maxNameWire is the maximum length of an encoded name (RFC 1035 §3.1).
const maxNameWire = 255

// maxLabel is the maximum length of a single label.
const maxLabel = 63

// Name is a fully-qualified domain name in presentation format without a
// trailing dot (the root name is the empty string). Comparison is
// case-insensitive per RFC 1035 §2.3.3; use Canonical for map keys.
type Name string

// Canonical lower-cases the name for case-insensitive comparison.
func (n Name) Canonical() Name { return Name(strings.ToLower(string(n))) }

// Equal reports whether two names are equal under DNS case-folding.
func (n Name) Equal(m Name) bool { return strings.EqualFold(string(n), string(m)) }

// Labels splits the name into its labels, most-specific first.
// The root name yields no labels.
func (n Name) Labels() []string {
	if n == "" || n == "." {
		return nil
	}
	return strings.Split(strings.TrimSuffix(string(n), "."), ".")
}

// Parent returns the name with its leftmost label removed, and true if a
// label was removed. The root name returns itself and false.
func (n Name) Parent() (Name, bool) {
	s := strings.TrimSuffix(string(n), ".")
	if s == "" {
		return "", false
	}
	i := strings.IndexByte(s, '.')
	if i < 0 {
		return "", true
	}
	return Name(s[i+1:]), true
}

// IsSubdomainOf reports whether n is equal to or underneath zone.
func (n Name) IsSubdomainOf(zone Name) bool {
	nn := strings.ToLower(strings.TrimSuffix(string(n), "."))
	zz := strings.ToLower(strings.TrimSuffix(string(zone), "."))
	if zz == "" {
		return true
	}
	if nn == zz {
		return true
	}
	return strings.HasSuffix(nn, "."+zz)
}

// validateName checks presentation-format constraints before encoding.
// It runs on every name pack, so it scans bytes in place rather than
// splitting into a label slice.
func validateName(n Name) error {
	s := strings.TrimSuffix(string(n), ".")
	if s == "" {
		return nil // root
	}
	labelLen := 0
	for i := 0; i < len(s); i++ {
		if s[i] != '.' {
			labelLen++
			continue
		}
		if labelLen == 0 {
			return ErrEmptyName
		}
		if labelLen > maxLabel {
			return ErrLabelTooLong
		}
		labelLen = 0
	}
	if labelLen == 0 {
		return ErrEmptyName
	}
	if labelLen > maxLabel {
		return ErrLabelTooLong
	}
	// Each label encodes as 1+len bytes (dots become length bytes, plus
	// one leading length byte), then the terminal root byte: len(s)+2.
	if len(s)+2 > maxNameWire {
		return ErrNameTooLong
	}
	return nil
}

// compressionMap tracks name suffixes already emitted into a message so
// later occurrences can be replaced by 14-bit pointers (RFC 1035 §4.1.4).
type compressionMap map[string]int

// packName appends the wire encoding of n to buf, using and updating cmp
// for compression. Pass a nil cmp to disable compression (required inside
// RDATA of types whose RDATA must not be compressed, e.g. in TXT there are
// no names, but SOA/NS/CNAME historically compress; modern practice for
// unknown types forbids it). base is the buffer offset where the message
// header starts: compression offsets are message-relative, so appending a
// message to a non-empty buffer must subtract the prefix. The nil-cmp path
// allocates nothing; the compressing path allocates only when a suffix
// actually contains uppercase (strings.ToLower returns lowercase ASCII
// input unchanged).
func packName(buf []byte, n Name, cmp compressionMap, base int) ([]byte, error) {
	if err := validateName(n); err != nil {
		return buf, err
	}
	s := strings.TrimSuffix(string(n), ".")
	if s == "" {
		return append(buf, 0), nil
	}
	for pos := 0; ; {
		if cmp != nil {
			suffix := strings.ToLower(s[pos:])
			if off, ok := cmp[suffix]; ok && off < 0x4000 {
				return append(buf, byte(0xC0|off>>8), byte(off)), nil
			}
			if off := len(buf) - base; off < 0x4000 {
				cmp[suffix] = off
			}
		}
		end := strings.IndexByte(s[pos:], '.')
		if end < 0 {
			end = len(s)
		} else {
			end += pos
		}
		buf = append(buf, byte(end-pos))
		buf = append(buf, s[pos:end]...)
		if end == len(s) {
			break
		}
		pos = end + 1
	}
	return append(buf, 0), nil
}

// unpackName decodes a possibly-compressed name starting at off within
// msg. It returns the name and the offset of the first byte after the
// name's encoding at its original position (i.e. after the pointer if one
// was followed).
func unpackName(msg []byte, off int) (Name, int, error) {
	var sb strings.Builder
	seen := 0      // decoded octets, to bound the loop
	ptrBudget := 0 // pointers followed, to detect loops cheaply
	end := -1      // resume offset after the first pointer
	for {
		if off >= len(msg) {
			return "", 0, ErrShortMessage
		}
		b := msg[off]
		switch {
		case b == 0:
			if end < 0 {
				end = off + 1
			}
			return Name(sb.String()), end, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrShortMessage
			}
			target := int(b&0x3F)<<8 | int(msg[off+1])
			if end < 0 {
				end = off + 2
			}
			if target >= off {
				// Forward or self pointers are malformed and would loop.
				return "", 0, ErrBadPointer
			}
			ptrBudget++
			if ptrBudget > 127 {
				return "", 0, ErrCompressionLoop
			}
			off = target
		case b&0xC0 != 0:
			// 0x40 and 0x80 label types were never standardized.
			return "", 0, ErrBadRData
		default:
			l := int(b)
			if off+1+l > len(msg) {
				return "", 0, ErrShortMessage
			}
			seen += l + 1
			if seen > maxNameWire {
				return "", 0, ErrNameTooLong
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(msg[off+1 : off+1+l])
			off += 1 + l
		}
	}
}
