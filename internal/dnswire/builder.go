package dnswire

import (
	"net/netip"
)

// NewQuery builds a standard recursive query for one question.
func NewQuery(id uint16, name Name, typ Type, class Class) *Message {
	return &Message{
		Header: Header{
			ID:               id,
			Opcode:           OpcodeQuery,
			RecursionDesired: true,
		},
		Questions: []Question{{Name: name, Type: typ, Class: class}},
	}
}

// NewChaosTXTQuery builds a CHAOS-class TXT query, the shape of every
// server-identity debugging query (id.server, version.bind,
// hostname.bind — RFC 4892).
func NewChaosTXTQuery(id uint16, name Name) *Message {
	// CHAOS queries are conventionally sent without RD; BIND ignores the
	// bit for CH TXT, and forwarders answer regardless.
	m := NewQuery(id, name, TypeTXT, ClassCHAOS)
	m.Header.RecursionDesired = false
	return m
}

// NewResponse builds a response skeleton echoing the query's ID, first
// question, opcode, and RD bit, as a well-behaved server must.
func NewResponse(query *Message, rcode RCode) *Message {
	resp := &Message{
		Header: Header{
			ID:               query.Header.ID,
			Opcode:           query.Header.Opcode,
			Response:         true,
			RecursionDesired: query.Header.RecursionDesired,
			RCode:            rcode,
		},
	}
	if len(query.Questions) > 0 {
		resp.Questions = append(resp.Questions, query.Questions[0])
	}
	return resp
}

// NewTXTResponse answers a (usually CHAOS) TXT query with the given
// strings, TTL 0 as BIND does for CH TXT.
func NewTXTResponse(query *Message, strings ...string) *Message {
	resp := NewResponse(query, RCodeSuccess)
	resp.Header.Authoritative = true
	q := query.Question()
	resp.Answers = append(resp.Answers, Record{
		Name:  q.Name,
		Class: q.Class,
		TTL:   0,
		Data:  TXTRData{Strings: strings},
	})
	return resp
}

// NewAddrResponse answers an A or AAAA query with the given addresses.
// Addresses of the wrong family for the question type are skipped.
func NewAddrResponse(query *Message, ttl uint32, addrs ...netip.Addr) *Message {
	resp := NewResponse(query, RCodeSuccess)
	resp.Header.RecursionAvailable = true
	q := query.Question()
	for _, a := range addrs {
		var data RData
		switch {
		case q.Type == TypeA && a.Is4():
			data = ARData{Addr: a}
		case q.Type == TypeAAAA && a.Is6() && !a.Is4In6():
			data = AAAARData{Addr: a}
		default:
			continue
		}
		resp.Answers = append(resp.Answers, Record{
			Name:  q.Name,
			Class: ClassINET,
			TTL:   ttl,
			Data:  data,
		})
	}
	return resp
}

// NewErrorResponse answers with an error rcode and no records.
func NewErrorResponse(query *Message, rcode RCode) *Message {
	resp := NewResponse(query, rcode)
	resp.Header.RecursionAvailable = true
	return resp
}

// MustPack packs a message and panics on error. For use in tests and
// static configuration where the message is known-valid.
func MustPack(m *Message) []byte {
	b, err := m.Pack()
	if err != nil {
		panic(err)
	}
	return b
}
