package dnswire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// EDNS Client Subnet (RFC 7871): an OPT option carrying the client's
// subnet so that geo-aware authoritative servers can answer precisely.
// Google's o-o.myaddr.l.google.com echoes it back with an
// "edns0-client-subnet" TXT string — measurement tooling uses that to
// see what subnet a resolver claims to speak for.

// ednsOptionECS is the option code.
const ednsOptionECS = 8

// ECS is a decoded client-subnet option.
type ECS struct {
	// Prefix is the client subnet.
	Prefix netip.Prefix
	// Scope is the server-signalled scope prefix length (0 in queries).
	Scope uint8
}

// String renders the option the way Google's echo does.
func (e ECS) String() string {
	return fmt.Sprintf("%s/%d", e.Prefix.Addr(), e.Prefix.Bits())
}

// packECS encodes the option body.
func packECS(e ECS) []byte {
	addrLen := (e.Prefix.Bits() + 7) / 8
	var family uint16
	var addrBytes []byte
	if e.Prefix.Addr().Is6() && !e.Prefix.Addr().Is4In6() {
		family = 2
		addr16 := e.Prefix.Addr().As16()
		addrBytes = addr16[:addrLen]
	} else {
		family = 1
		addr4 := e.Prefix.Addr().As4()
		addrBytes = addr4[:addrLen]
	}
	body := make([]byte, 0, 8+addrLen)
	body = binary.BigEndian.AppendUint16(body, ednsOptionECS)
	body = binary.BigEndian.AppendUint16(body, uint16(4+addrLen))
	body = binary.BigEndian.AppendUint16(body, family)
	body = append(body, uint8(e.Prefix.Bits()), e.Scope)
	body = append(body, addrBytes...)
	return body
}

// parseECS walks OPT option TLVs for a client-subnet option.
func parseECS(options []byte) (ECS, bool) {
	for off := 0; off+4 <= len(options); {
		code := binary.BigEndian.Uint16(options[off : off+2])
		length := int(binary.BigEndian.Uint16(options[off+2 : off+4]))
		off += 4
		if off+length > len(options) {
			return ECS{}, false
		}
		body := options[off : off+length]
		off += length
		if code != ednsOptionECS || len(body) < 4 {
			continue
		}
		family := binary.BigEndian.Uint16(body[0:2])
		srcLen := int(body[2])
		scope := body[3]
		addrBytes := body[4:]
		var addr netip.Addr
		switch family {
		case 1:
			var a [4]byte
			copy(a[:], addrBytes)
			addr = netip.AddrFrom4(a)
			if srcLen > 32 {
				return ECS{}, false
			}
		case 2:
			var a [16]byte
			copy(a[:], addrBytes)
			addr = netip.AddrFrom16(a)
			if srcLen > 128 {
				return ECS{}, false
			}
		default:
			continue
		}
		return ECS{Prefix: netip.PrefixFrom(addr, srcLen).Masked(), Scope: scope}, true
	}
	return ECS{}, false
}

// SetECS attaches a client-subnet option, creating the OPT record if
// the message has none.
func (m *Message) SetECS(prefix netip.Prefix) {
	opt := m.findOPT()
	if opt == nil {
		m.SetEDNS(4096, false)
		opt = m.findOPT()
	}
	data := opt.Data.(OPTRData)
	data.Options = append(data.Options, packECS(ECS{Prefix: prefix.Masked()})...)
	opt.Data = data
}

// ClientSubnet returns the message's ECS option, if present.
func (m *Message) ClientSubnet() (ECS, bool) {
	opt := m.findOPT()
	if opt == nil {
		return ECS{}, false
	}
	return parseECS(opt.Data.(OPTRData).Options)
}

// findOPT locates the OPT record in the additional section.
func (m *Message) findOPT() *Record {
	for i := range m.Additional {
		if m.Additional[i].Type() == TypeOPT {
			return &m.Additional[i]
		}
	}
	return nil
}
