package dnswire

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
)

func bigMessage() *Message {
	m := &Message{Header: Header{ID: 9, Response: true}}
	m.Questions = []Question{{Name: "big.example.com", Type: TypeTXT, Class: ClassINET}}
	for i := 0; i < 8; i++ {
		m.Answers = append(m.Answers, Record{
			Name: "big.example.com", Class: ClassINET, TTL: 60,
			Data: TXTRData{Strings: []string{strings.Repeat("x", 200)}},
		})
	}
	return m
}

func TestTCPFrameRoundTrip(t *testing.T) {
	m := bigMessage() // too big for UDP, fine for TCP
	var buf bytes.Buffer
	if err := WriteTCP(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTCP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != len(m.Answers) {
		t.Errorf("answers = %d, want %d", len(got.Answers), len(m.Answers))
	}
	if buf.Len() != 0 {
		t.Errorf("%d bytes left after one frame", buf.Len())
	}
}

func TestTCPMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	q1 := NewQuery(1, "a.example", TypeA, ClassINET)
	q2 := NewQuery(2, "b.example", TypeA, ClassINET)
	if err := WriteTCP(&buf, q1); err != nil {
		t.Fatal(err)
	}
	if err := WriteTCP(&buf, q2); err != nil {
		t.Fatal(err)
	}
	m1, err := ReadTCP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ReadTCP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Header.ID != 1 || m2.Header.ID != 2 {
		t.Errorf("ids = %d, %d", m1.Header.ID, m2.Header.ID)
	}
}

func TestReadTCPTruncatedStream(t *testing.T) {
	buf, err := PackTCP(NewQuery(3, "c.example", TypeA, ClassINET))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := ReadTCP(bytes.NewReader(buf[:cut])); err == nil {
			t.Errorf("cut at %d: no error", cut)
		}
	}
}

func TestPackWithTruncationSetsTC(t *testing.T) {
	m := bigMessage()
	wire, err := PackWithTruncation(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) > 512 {
		t.Fatalf("truncated encoding is %d bytes", len(wire))
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Header.Truncated {
		t.Error("TC not set")
	}
	if len(got.Answers) != 0 {
		t.Errorf("truncated message kept %d answers", len(got.Answers))
	}
	if got.Question().Name != "big.example.com" {
		t.Error("question missing from truncated message")
	}
}

func TestPackWithTruncationPassesSmall(t *testing.T) {
	m := NewAddrResponse(NewQuery(4, "s.example", TypeA, ClassINET), 60, netip.MustParseAddr("192.0.2.1"))
	wire, err := PackWithTruncation(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Truncated || len(got.Answers) != 1 {
		t.Errorf("small message altered: %s", got)
	}
}
