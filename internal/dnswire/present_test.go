package dnswire

import (
	"net/netip"
	"reflect"
	"strings"
	"testing"
)

func TestParseRecordTypes(t *testing.T) {
	cases := []struct {
		line string
		want RData
	}{
		{"www.example.com. 300 IN A 192.0.2.80", ARData{Addr: netip.MustParseAddr("192.0.2.80")}},
		{"www.example.com 300 IN AAAA 2001:db8::1", AAAARData{Addr: netip.MustParseAddr("2001:db8::1")}},
		{`t.example.com. 60 IN TXT "hello world" "second"`, TXTRData{Strings: []string{"hello world", "second"}}},
		{"t.example.com. 60 IN TXT bare", TXTRData{Strings: []string{"bare"}}},
		{"a.example.com. 60 IN CNAME www.example.com.", CNAMERData{Target: "www.example.com"}},
		{"example.com. 60 IN NS ns1.example.com.", NSRData{Host: "ns1.example.com"}},
		{"9.2.0.192.in-addr.arpa. 60 IN PTR host.example.com.", PTRRData{Target: "host.example.com"}},
		{"example.com. 60 IN MX 10 mx.example.com.", MXRData{Preference: 10, Host: "mx.example.com"}},
		{"example.com. 60 IN SOA ns1.example.com. hostmaster.example.com. 1 7200 3600 1209600 300",
			SOARData{MName: "ns1.example.com", RName: "hostmaster.example.com",
				Serial: 1, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300}},
	}
	for _, c := range cases {
		rr, err := ParseRecord(c.line)
		if err != nil {
			t.Errorf("ParseRecord(%q): %v", c.line, err)
			continue
		}
		if !reflect.DeepEqual(rr.Data, c.want) {
			t.Errorf("ParseRecord(%q) = %#v, want %#v", c.line, rr.Data, c.want)
		}
		if rr.TTL != 300 && rr.TTL != 60 {
			t.Errorf("ParseRecord(%q) ttl = %d", c.line, rr.TTL)
		}
	}
}

func TestParseRecordErrors(t *testing.T) {
	for _, line := range []string{
		"",
		"www.example.com. 300 IN",
		"www.example.com. x IN A 192.0.2.1",
		"www.example.com. 300 CH A 192.0.2.1",
		"www.example.com. 300 IN A not-an-ip",
		"www.example.com. 300 IN A 2001:db8::1",    // v6 addr in A
		"www.example.com. 300 IN AAAA 192.0.2.1",   // v4 addr in AAAA
		"www.example.com. 300 IN SRV 0 0 443 x.y.", // unsupported type
		"www.example.com. 300 IN MX ten mx.example.com.",
		`t.example.com. 60 IN TXT "unterminated`,
		"bad..name. 300 IN A 192.0.2.1",
	} {
		if _, err := ParseRecord(line); err == nil {
			t.Errorf("ParseRecord(%q) succeeded", line)
		}
	}
}

func TestParseRecordsSkipsCommentsAndBlanks(t *testing.T) {
	rrs, err := ParseRecords(`
; the zone for testing
www.example.com. 300 IN A 192.0.2.80   ; web server

mail.example.com. 300 IN A 192.0.2.25
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rrs) != 2 {
		t.Fatalf("records = %d, want 2", len(rrs))
	}
	if !rrs[0].Name.Equal("www.example.com") || !rrs[1].Name.Equal("mail.example.com") {
		t.Errorf("names = %s, %s", rrs[0].Name, rrs[1].Name)
	}
}

func TestParseRecordsReportsLineNumbers(t *testing.T) {
	_, err := ParseRecords("www.example.com. 300 IN A 192.0.2.80\nbroken line here\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line-2 context", err)
	}
}

func TestParsedRecordsRoundTripWire(t *testing.T) {
	rrs, err := ParseRecords(`www.example.com. 300 IN A 192.0.2.80
t.example.com. 60 IN TXT "hello"`)
	if err != nil {
		t.Fatal(err)
	}
	m := &Message{Header: Header{ID: 1, Response: true}, Answers: rrs}
	got, err := Unpack(MustPack(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != 2 {
		t.Errorf("answers = %d", len(got.Answers))
	}
}
