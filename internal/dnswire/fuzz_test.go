package dnswire

import (
	"bytes"
	"testing"
)

// seedMessages builds a corpus of valid packets so the fuzzer starts
// from interesting shapes.
func seedMessages() [][]byte {
	var seeds [][]byte
	add := func(m *Message) {
		if b, err := m.Pack(); err == nil {
			seeds = append(seeds, b)
		}
	}
	add(NewQuery(1, "example.com", TypeA, ClassINET))
	add(NewChaosTXTQuery(2, "version.bind"))
	add(NewTXTResponse(NewChaosTXTQuery(3, "id.server"), "IAD"))
	add(NewErrorResponse(NewQuery(4, "x.test", TypeAAAA, ClassINET), RCodeRefused))
	q := NewQuery(5, "o-o.myaddr.l.google.com", TypeTXT, ClassINET)
	q.SetEDNS(4096, true)
	add(q)
	// Adversarial interceptor wire shapes (dnsserver.Adversary): forged
	// per-target personas for each resolver family, a replayed genuine
	// CHAOS identity, and the starved-budget NOTIMP a rate-limiting
	// interceptor answers with.
	add(NewTXTResponse(NewChaosTXTQuery(6, "id.server"), "res104.gru.rrdns.pch.net"))
	add(NewTXTResponse(NewChaosTXTQuery(7, "version.bind"), "Q9-P-7.3"))
	add(NewTXTResponse(NewChaosTXTQuery(8, "id.server"), "QJX"))
	add(NewErrorResponse(NewChaosTXTQuery(9, "hostname.bind"), RCodeNotImplemented))
	// The property suite's corner shapes (max label, max wire name,
	// EDNS/ECS, every RData, compression with mixed case) make good
	// starting points too.
	for _, m := range cornerMessages() {
		add(m)
	}
	return seeds
}

// FuzzUnpack asserts the decoder's core contract on arbitrary bytes:
// never panic, never loop, and — when a message decodes — re-encoding
// and re-decoding is stable (the canonical-encoder property).
func FuzzUnpack(f *testing.F) {
	for _, s := range seedMessages() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		repacked, err := m.Pack()
		if err != nil {
			// Legal: a decoded message can exceed the UDP encoding limit
			// after decompression.
			return
		}
		m2, err := Unpack(repacked)
		if err != nil {
			t.Fatalf("repacked message does not decode: %v", err)
		}
		again, err := m2.Pack()
		if err != nil {
			t.Fatalf("second pack failed: %v", err)
		}
		if !bytes.Equal(repacked, again) {
			t.Fatalf("encoder not canonical:\n%x\n%x", repacked, again)
		}
	})
}

// FuzzUnpackName asserts the name decoder's bounds on raw fragments.
func FuzzUnpackName(f *testing.F) {
	f.Add([]byte{7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0}, 0)
	f.Add([]byte{0xC0, 0x00}, 0)
	f.Add([]byte{1, 'a', 0xC0, 0x00}, 2)
	f.Fuzz(func(t *testing.T, data []byte, off int) {
		if off < 0 || off > len(data) {
			return
		}
		name, end, err := unpackName(data, off)
		if err != nil {
			return
		}
		if end < off || end > len(data) {
			t.Fatalf("end %d outside [%d,%d]", end, off, len(data))
		}
		if len(name) > 4*maxNameWire {
			t.Fatalf("decoded name absurdly long: %d", len(name))
		}
	})
}
