package dnswire

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// ParseRecord parses one zone-file-style resource record line:
//
//	www.example.com. 300 IN A 192.0.2.80
//	example.com.     300 IN TXT "hello world" "second string"
//	alias.example.com. 60 IN CNAME www.example.com.
//
// Supported types: A, AAAA, TXT, CNAME, NS, PTR, MX, SOA. The trailing
// dot on names is optional. Quotes group TXT strings; an unquoted TXT
// body is a single string. This is a pragmatic subset of RFC 1035
// master-file syntax — enough to express test zones readably — not a
// full parser ($ directives, parentheses, and escapes are not
// supported).
func ParseRecord(line string) (Record, error) {
	fields, err := splitQuoted(line)
	if err != nil {
		return Record{}, err
	}
	if len(fields) < 4 {
		return Record{}, fmt.Errorf("dnswire: record %q needs name, ttl, class, type", line)
	}
	name := Name(strings.TrimSuffix(fields[0], "."))
	ttl64, err := strconv.ParseUint(fields[1], 10, 32)
	if err != nil {
		return Record{}, fmt.Errorf("dnswire: bad ttl %q: %v", fields[1], err)
	}
	if !strings.EqualFold(fields[2], "IN") {
		return Record{}, fmt.Errorf("dnswire: only class IN is supported, got %q", fields[2])
	}
	typ := strings.ToUpper(fields[3])
	body := fields[4:]

	rr := Record{Name: name, Class: ClassINET, TTL: uint32(ttl64)}
	switch typ {
	case "A", "AAAA":
		if len(body) != 1 {
			return Record{}, fmt.Errorf("dnswire: %s needs one address", typ)
		}
		a, err := netip.ParseAddr(body[0])
		if err != nil {
			return Record{}, fmt.Errorf("dnswire: bad address %q: %v", body[0], err)
		}
		if typ == "A" {
			if !a.Is4() {
				return Record{}, fmt.Errorf("dnswire: %q is not IPv4", body[0])
			}
			rr.Data = ARData{Addr: a}
		} else {
			if !a.Is6() || a.Is4In6() {
				return Record{}, fmt.Errorf("dnswire: %q is not IPv6", body[0])
			}
			rr.Data = AAAARData{Addr: a}
		}
	case "TXT":
		if len(body) == 0 {
			return Record{}, fmt.Errorf("dnswire: TXT needs at least one string")
		}
		rr.Data = TXTRData{Strings: body}
	case "CNAME":
		if len(body) != 1 {
			return Record{}, fmt.Errorf("dnswire: CNAME needs one target")
		}
		rr.Data = CNAMERData{Target: Name(strings.TrimSuffix(body[0], "."))}
	case "NS":
		if len(body) != 1 {
			return Record{}, fmt.Errorf("dnswire: NS needs one host")
		}
		rr.Data = NSRData{Host: Name(strings.TrimSuffix(body[0], "."))}
	case "PTR":
		if len(body) != 1 {
			return Record{}, fmt.Errorf("dnswire: PTR needs one target")
		}
		rr.Data = PTRRData{Target: Name(strings.TrimSuffix(body[0], "."))}
	case "MX":
		if len(body) != 2 {
			return Record{}, fmt.Errorf("dnswire: MX needs preference and host")
		}
		pref, err := strconv.ParseUint(body[0], 10, 16)
		if err != nil {
			return Record{}, fmt.Errorf("dnswire: bad MX preference %q", body[0])
		}
		rr.Data = MXRData{Preference: uint16(pref), Host: Name(strings.TrimSuffix(body[1], "."))}
	case "SOA":
		if len(body) != 7 {
			return Record{}, fmt.Errorf("dnswire: SOA needs mname, rname and five numbers")
		}
		nums := make([]uint32, 5)
		for i, f := range body[2:] {
			v, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return Record{}, fmt.Errorf("dnswire: bad SOA field %q", f)
			}
			nums[i] = uint32(v)
		}
		rr.Data = SOARData{
			MName: Name(strings.TrimSuffix(body[0], ".")), RName: Name(strings.TrimSuffix(body[1], ".")),
			Serial: nums[0], Refresh: nums[1], Retry: nums[2], Expire: nums[3], Minimum: nums[4],
		}
	default:
		return Record{}, fmt.Errorf("dnswire: unsupported type %q", typ)
	}
	if err := validateName(rr.Name); err != nil {
		return Record{}, err
	}
	return rr, nil
}

// ParseRecords parses multiple lines, skipping blanks and ';' comments.
func ParseRecords(text string) ([]Record, error) {
	var out []Record
	for i, line := range strings.Split(text, "\n") {
		if idx := strings.IndexByte(line, ';'); idx >= 0 && !strings.Contains(line[:idx], `"`) {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		rr, err := ParseRecord(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		out = append(out, rr)
	}
	return out, nil
}

// splitQuoted splits on whitespace, keeping double-quoted spans intact.
func splitQuoted(line string) ([]string, error) {
	var fields []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			fields = append(fields, cur.String())
			cur.Reset()
		}
	}
	for _, r := range line {
		switch {
		case r == '"':
			if inQuote {
				fields = append(fields, cur.String())
				cur.Reset()
			} else {
				flush()
			}
			inQuote = !inQuote
		case !inQuote && (r == ' ' || r == '\t'):
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("dnswire: unterminated quote in %q", line)
	}
	flush()
	return fields, nil
}
