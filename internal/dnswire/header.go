package dnswire

import (
	"encoding/binary"
	"fmt"
)

// headerLen is the fixed size of the DNS message header.
const headerLen = 12

// Header is the 12-byte DNS message header (RFC 1035 §4.1.1) with the
// flags word broken out into named fields.
type Header struct {
	ID     uint16
	Opcode Opcode
	RCode  RCode

	Response           bool // QR
	Authoritative      bool // AA
	Truncated          bool // TC
	RecursionDesired   bool // RD
	RecursionAvailable bool // RA
	AuthenticData      bool // AD (RFC 4035)
	CheckingDisabled   bool // CD (RFC 4035)

	QDCount uint16
	ANCount uint16
	NSCount uint16
	ARCount uint16
}

// flags assembles the 16-bit flags word.
func (h *Header) flags() uint16 {
	var f uint16
	if h.Response {
		f |= 1 << 15
	}
	f |= uint16(h.Opcode&0xF) << 11
	if h.Authoritative {
		f |= 1 << 10
	}
	if h.Truncated {
		f |= 1 << 9
	}
	if h.RecursionDesired {
		f |= 1 << 8
	}
	if h.RecursionAvailable {
		f |= 1 << 7
	}
	if h.AuthenticData {
		f |= 1 << 5
	}
	if h.CheckingDisabled {
		f |= 1 << 4
	}
	f |= uint16(h.RCode & 0xF)
	return f
}

// setFlags splits a 16-bit flags word into the named fields.
func (h *Header) setFlags(f uint16) {
	h.Response = f&(1<<15) != 0
	h.Opcode = Opcode(f >> 11 & 0xF)
	h.Authoritative = f&(1<<10) != 0
	h.Truncated = f&(1<<9) != 0
	h.RecursionDesired = f&(1<<8) != 0
	h.RecursionAvailable = f&(1<<7) != 0
	h.AuthenticData = f&(1<<5) != 0
	h.CheckingDisabled = f&(1<<4) != 0
	h.RCode = RCode(f & 0xF)
}

// pack appends the wire encoding of the header.
func (h *Header) pack(buf []byte) []byte {
	var w [headerLen]byte
	binary.BigEndian.PutUint16(w[0:2], h.ID)
	binary.BigEndian.PutUint16(w[2:4], h.flags())
	binary.BigEndian.PutUint16(w[4:6], h.QDCount)
	binary.BigEndian.PutUint16(w[6:8], h.ANCount)
	binary.BigEndian.PutUint16(w[8:10], h.NSCount)
	binary.BigEndian.PutUint16(w[10:12], h.ARCount)
	return append(buf, w[:]...)
}

// unpack reads the header from the start of msg.
func (h *Header) unpack(msg []byte) error {
	if len(msg) < headerLen {
		return ErrShortMessage
	}
	h.ID = binary.BigEndian.Uint16(msg[0:2])
	h.setFlags(binary.BigEndian.Uint16(msg[2:4]))
	h.QDCount = binary.BigEndian.Uint16(msg[4:6])
	h.ANCount = binary.BigEndian.Uint16(msg[6:8])
	h.NSCount = binary.BigEndian.Uint16(msg[8:10])
	h.ARCount = binary.BigEndian.Uint16(msg[10:12])
	return nil
}

// String renders the header in dig-like form for debugging and traces.
func (h *Header) String() string {
	qr := "query"
	if h.Response {
		qr = "response"
	}
	return fmt.Sprintf("id=%d %s op=%s rcode=%s rd=%t ra=%t qd=%d an=%d ns=%d ar=%d",
		h.ID, qr, h.Opcode, h.RCode, h.RecursionDesired, h.RecursionAvailable,
		h.QDCount, h.ANCount, h.NSCount, h.ARCount)
}
