package dnswire

import (
	"encoding/binary"
	"fmt"
)

// DNSSEC resource record types (RFC 4034).
const (
	TypeDS     Type = 43
	TypeRRSIG  Type = 46
	TypeDNSKEY Type = 48
)

// DNSSEC algorithm numbers.
const (
	// AlgoEd25519 is Ed25519 (RFC 8080), the algorithm the simulated
	// zones sign with — small keys, stdlib support.
	AlgoEd25519 uint8 = 15
)

// DNSKEY flags.
const (
	// DNSKEYFlagZone marks a zone key.
	DNSKEYFlagZone uint16 = 0x0100
	// DNSKEYFlagSEP marks a key-signing key (secure entry point).
	DNSKEYFlagSEP uint16 = 0x0001
)

// DNSKEYRData is a DNSKEY record body (RFC 4034 §2).
type DNSKEYRData struct {
	Flags     uint16
	Protocol  uint8 // always 3
	Algorithm uint8
	PublicKey []byte
}

// Type implements RData.
func (DNSKEYRData) Type() Type { return TypeDNSKEY }

func (r DNSKEYRData) packRData(buf []byte) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, r.Flags)
	buf = append(buf, r.Protocol, r.Algorithm)
	return append(buf, r.PublicKey...), nil
}

func (r DNSKEYRData) String() string {
	return fmt.Sprintf("%d %d %d (%d-byte key)", r.Flags, r.Protocol, r.Algorithm, len(r.PublicKey))
}

// KeyTag computes the RFC 4034 Appendix B key tag over the RDATA.
func (r DNSKEYRData) KeyTag() uint16 {
	rdata, _ := r.packRData(nil)
	var acc uint32
	for i, b := range rdata {
		if i&1 == 1 {
			acc += uint32(b)
		} else {
			acc += uint32(b) << 8
		}
	}
	acc += acc >> 16 & 0xFFFF
	return uint16(acc & 0xFFFF)
}

// RRSIGRData is an RRSIG record body (RFC 4034 §3).
type RRSIGRData struct {
	TypeCovered Type
	Algorithm   uint8
	Labels      uint8
	OrigTTL     uint32
	Expiration  uint32
	Inception   uint32
	KeyTag      uint16
	SignerName  Name
	Signature   []byte
}

// Type implements RData.
func (RRSIGRData) Type() Type { return TypeRRSIG }

func (r RRSIGRData) packRData(buf []byte) ([]byte, error) {
	var err error
	buf = binary.BigEndian.AppendUint16(buf, uint16(r.TypeCovered))
	buf = append(buf, r.Algorithm, r.Labels)
	buf = binary.BigEndian.AppendUint32(buf, r.OrigTTL)
	buf = binary.BigEndian.AppendUint32(buf, r.Expiration)
	buf = binary.BigEndian.AppendUint32(buf, r.Inception)
	buf = binary.BigEndian.AppendUint16(buf, r.KeyTag)
	// Signer name is never compressed (RFC 4034 §3.1.7) and is
	// lower-cased into canonical form.
	if buf, err = packName(buf, r.SignerName.Canonical(), nil, 0); err != nil {
		return buf, err
	}
	return append(buf, r.Signature...), nil
}

// PackPresig packs the RDATA with an empty signature — the prefix of
// the data a signer signs (RFC 4034 §3.1.8.1).
func (r RRSIGRData) PackPresig() ([]byte, error) {
	presig := r
	presig.Signature = nil
	return presig.packRData(nil)
}

func (r RRSIGRData) String() string {
	return fmt.Sprintf("%s %d %d %d sig-by %s. tag=%d (%d-byte sig)",
		r.TypeCovered, r.Algorithm, r.Labels, r.OrigTTL, r.SignerName, r.KeyTag, len(r.Signature))
}

// DSRData is a delegation-signer record body (RFC 4034 §5).
type DSRData struct {
	KeyTag     uint16
	Algorithm  uint8
	DigestType uint8 // 2 = SHA-256
	Digest     []byte
}

// Type implements RData.
func (DSRData) Type() Type { return TypeDS }

func (r DSRData) packRData(buf []byte) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, r.KeyTag)
	buf = append(buf, r.Algorithm, r.DigestType)
	return append(buf, r.Digest...), nil
}

func (r DSRData) String() string {
	return fmt.Sprintf("%d %d %d %x", r.KeyTag, r.Algorithm, r.DigestType, r.Digest)
}

// unpackDNSSECRData handles the DNSSEC types inside unpackRData.
func unpackDNSSECRData(msg []byte, off, rdlen int, typ Type) (RData, error) {
	body := msg[off : off+rdlen]
	switch typ {
	case TypeDNSKEY:
		if rdlen < 4 {
			return nil, fmt.Errorf("%w: DNSKEY rdlength %d", ErrBadRData, rdlen)
		}
		return DNSKEYRData{
			Flags:     binary.BigEndian.Uint16(body[0:2]),
			Protocol:  body[2],
			Algorithm: body[3],
			PublicKey: append([]byte(nil), body[4:]...),
		}, nil
	case TypeDS:
		if rdlen < 4 {
			return nil, fmt.Errorf("%w: DS rdlength %d", ErrBadRData, rdlen)
		}
		return DSRData{
			KeyTag:     binary.BigEndian.Uint16(body[0:2]),
			Algorithm:  body[2],
			DigestType: body[3],
			Digest:     append([]byte(nil), body[4:]...),
		}, nil
	case TypeRRSIG:
		if rdlen < 18 {
			return nil, fmt.Errorf("%w: RRSIG rdlength %d", ErrBadRData, rdlen)
		}
		signer, end, err := unpackName(msg, off+18)
		if err != nil {
			return nil, err
		}
		if end > off+rdlen {
			return nil, fmt.Errorf("%w: RRSIG signer overruns rdata", ErrBadRData)
		}
		return RRSIGRData{
			TypeCovered: Type(binary.BigEndian.Uint16(body[0:2])),
			Algorithm:   body[2],
			Labels:      body[3],
			OrigTTL:     binary.BigEndian.Uint32(body[4:8]),
			Expiration:  binary.BigEndian.Uint32(body[8:12]),
			Inception:   binary.BigEndian.Uint32(body[12:16]),
			KeyTag:      binary.BigEndian.Uint16(body[16:18]),
			SignerName:  signer,
			Signature:   append([]byte(nil), msg[end:off+rdlen]...),
		}, nil
	default:
		return nil, fmt.Errorf("%w: not a DNSSEC type %s", ErrBadRData, typ)
	}
}

// EDNS0 support: the OPT pseudo-record's class carries the UDP payload
// size and the top bit of its TTL is the DO ("DNSSEC OK") flag
// (RFC 6891, RFC 3225).

// ednsDOBit is the DO flag inside the OPT TTL field.
const ednsDOBit uint32 = 1 << 15

// SetEDNS attaches an OPT record advertising size and the DO bit.
func (m *Message) SetEDNS(udpSize uint16, do bool) {
	var ttl uint32
	if do {
		ttl = ednsDOBit
	}
	// Replace any existing OPT.
	m.RemoveEDNS()
	m.Additional = append(m.Additional, Record{
		Name:  "",
		Class: Class(udpSize),
		TTL:   ttl,
		Data:  OPTRData{},
	})
}

// RemoveEDNS strips OPT records.
func (m *Message) RemoveEDNS() {
	out := m.Additional[:0]
	for _, rr := range m.Additional {
		if rr.Type() != TypeOPT {
			out = append(out, rr)
		}
	}
	m.Additional = out
}

// DO reports whether the message requests DNSSEC records.
func (m *Message) DO() bool {
	for _, rr := range m.Additional {
		if rr.Type() == TypeOPT && rr.TTL&ednsDOBit != 0 {
			return true
		}
	}
	return false
}
