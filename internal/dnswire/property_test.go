package dnswire

import (
	"bytes"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
)

// This file holds the property-based round-trip suite. The invariant
// under test is canonical encoding: for any message m that Pack accepts,
//
//	Pack(Unpack(Pack(m))) == Pack(m)   (byte equality)
//
// Byte equality, not structural equality, is deliberate: a few encodings
// are many-to-one (a nil TXT Strings slice decodes as [""], mixed-case
// compressed suffixes decode with the first occurrence's case), and the
// wire bytes are what the simulator's caches, traces, and golden files
// actually compare.

// propSeed fixes the generator so failures reproduce.
const propSeed = 0x1035

// labelAlphabet holds the characters random labels draw from; hyphens
// and digits included, since validateName allows them anywhere.
const labelAlphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-"

// genLabel emits a random label of 1..n characters.
func genLabel(r *rand.Rand, n int) string {
	var sb strings.Builder
	l := 1 + r.Intn(n)
	for i := 0; i < l; i++ {
		sb.WriteByte(labelAlphabet[r.Intn(len(labelAlphabet))])
	}
	return sb.String()
}

// genName emits a random valid name: usually a short 1-4 label name,
// occasionally a corner case (root, max label, max wire length).
func genName(r *rand.Rand) Name {
	switch r.Intn(10) {
	case 0:
		return "" // root
	case 1:
		return Name(genLabel(r, 1) + "." + strings.Repeat("x", maxLabel) + ".example")
	case 2:
		return maxWireName()
	}
	labels := make([]string, 1+r.Intn(4))
	for i := range labels {
		labels[i] = genLabel(r, 12)
	}
	return Name(strings.Join(labels, "."))
}

// maxWireName builds a name whose encoding is exactly maxNameWire (255)
// bytes: three 63-character labels (64 wire bytes each) plus one
// 61-character label (62 wire bytes) plus the terminal root byte.
func maxWireName() Name {
	return Name(strings.Repeat("a", maxLabel) + "." +
		strings.Repeat("b", maxLabel) + "." +
		strings.Repeat("c", maxLabel) + "." +
		strings.Repeat("d", maxLabel-2))
}

// genAddr4 / genAddr6 emit random, always-valid addresses.
func genAddr4(r *rand.Rand) netip.Addr {
	var b [4]byte
	r.Read(b[:]) //nolint:errcheck
	return netip.AddrFrom4(b)
}

func genAddr6(r *rand.Rand) netip.Addr {
	var b [16]byte
	r.Read(b[:]) //nolint:errcheck
	return netip.AddrFrom16(b)
}

// genRData emits one of every record body the package knows how to
// build, including an RFC 3597 opaque blob under a private-use type.
func genRData(r *rand.Rand) RData {
	switch r.Intn(9) {
	case 0:
		return ARData{Addr: genAddr4(r)}
	case 1:
		return AAAARData{Addr: genAddr6(r)}
	case 2:
		n := r.Intn(3) // 0 strings is the canonical many-to-one case
		ss := make([]string, 0, n)
		for i := 0; i < n; i++ {
			ss = append(ss, genLabel(r, 20))
		}
		return TXTRData{Strings: ss}
	case 3:
		return CNAMERData{Target: genName(r)}
	case 4:
		return NSRData{Host: genName(r)}
	case 5:
		return PTRRData{Target: genName(r)}
	case 6:
		return MXRData{Preference: uint16(r.Uint32()), Host: genName(r)}
	case 7:
		return SOARData{
			MName:   genName(r),
			RName:   genName(r),
			Serial:  r.Uint32(),
			Refresh: r.Uint32(),
			Retry:   r.Uint32(),
			Expire:  r.Uint32(),
			Minimum: r.Uint32(),
		}
	default:
		data := make([]byte, r.Intn(24))
		r.Read(data) //nolint:errcheck
		return RawRData{RRType: Type(0xFF00 + uint16(r.Intn(16))), Data: data}
	}
}

func genRecord(r *rand.Rand) Record {
	classes := []Class{ClassINET, ClassINET, ClassINET, ClassCHAOS}
	return Record{
		Name:  genName(r),
		Class: classes[r.Intn(len(classes))],
		TTL:   r.Uint32(),
		Data:  genRData(r),
	}
}

// genMessage emits a random message with every header flag, section, and
// EDNS/ECS decoration in play.
func genMessage(r *rand.Rand) *Message {
	m := &Message{Header: Header{
		ID:                 uint16(r.Uint32()),
		Opcode:             Opcode(r.Intn(16)),
		RCode:              RCode(r.Intn(16)),
		Response:           r.Intn(2) == 0,
		Authoritative:      r.Intn(2) == 0,
		Truncated:          r.Intn(4) == 0,
		RecursionDesired:   r.Intn(2) == 0,
		RecursionAvailable: r.Intn(2) == 0,
		AuthenticData:      r.Intn(4) == 0,
		CheckingDisabled:   r.Intn(4) == 0,
	}}
	qTypes := []Type{TypeA, TypeAAAA, TypeTXT, TypeNS, TypePTR, TypeANY}
	for i, n := 0, 1+r.Intn(2); i < n; i++ {
		m.Questions = append(m.Questions, Question{
			Name:  genName(r),
			Type:  qTypes[r.Intn(len(qTypes))],
			Class: ClassINET,
		})
	}
	for i, n := 0, r.Intn(4); i < n; i++ {
		m.Answers = append(m.Answers, genRecord(r))
	}
	for i, n := 0, r.Intn(2); i < n; i++ {
		m.Authority = append(m.Authority, genRecord(r))
	}
	for i, n := 0, r.Intn(2); i < n; i++ {
		m.Additional = append(m.Additional, genRecord(r))
	}
	if r.Intn(3) == 0 {
		sizes := []uint16{512, 1232, 4096}
		m.SetEDNS(sizes[r.Intn(len(sizes))], r.Intn(2) == 0)
	}
	if r.Intn(4) == 0 {
		if r.Intn(2) == 0 {
			m.SetECS(netip.PrefixFrom(genAddr4(r), r.Intn(33)))
		} else {
			m.SetECS(netip.PrefixFrom(genAddr6(r), r.Intn(129)))
		}
	}
	return m
}

// roundtrip asserts the canonical-encoding property on one message. It
// returns false when the first Pack legally refuses the message (e.g. it
// overflows the 512-byte UDP payload), which is a skip, not a failure.
func roundtrip(t *testing.T, m *Message) bool {
	t.Helper()
	b1, err := m.Pack()
	if err != nil {
		return false
	}
	m2, err := Unpack(b1)
	if err != nil {
		t.Fatalf("own encoding does not decode: %v\nmessage:\n%s", err, m)
	}
	b2, err := m2.Pack()
	if err != nil {
		t.Fatalf("decoded message does not re-encode: %v\nmessage:\n%s", err, m2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("encoder not canonical:\n first: %x\nsecond: %x\nmessage:\n%s", b1, b2, m)
	}
	return true
}

// TestPackUnpackPackRandom drives the round-trip property over a few
// thousand generated messages.
func TestPackUnpackPackRandom(t *testing.T) {
	r := rand.New(rand.NewSource(propSeed))
	const iterations = 3000
	packed := 0
	for i := 0; i < iterations; i++ {
		if roundtrip(t, genMessage(r)) {
			packed++
		}
	}
	// Most generated messages fit in a UDP payload; if the generator
	// drifted into producing mostly-oversized messages the property
	// would be vacuous.
	if packed < iterations/2 {
		t.Fatalf("only %d/%d messages packed; generator is producing mostly invalid input", packed, iterations)
	}
	t.Logf("round-tripped %d/%d generated messages", packed, iterations)
}

// cornerMessages enumerates the hand-picked shapes the random generator
// only hits probabilistically. fuzz_test.go also feeds these to the
// fuzzer as seeds.
func cornerMessages() []*Message {
	maxLabelName := Name(strings.Repeat("m", maxLabel) + ".example")

	all := &Message{Header: Header{ID: 7, Response: true, Authoritative: true}}
	all.Questions = []Question{{Name: "all.example", Type: TypeANY, Class: ClassINET}}
	all.Answers = []Record{
		{Name: "all.example", Class: ClassINET, TTL: 60, Data: ARData{Addr: netip.MustParseAddr("192.0.2.1")}},
		{Name: "all.example", Class: ClassINET, TTL: 60, Data: AAAARData{Addr: netip.MustParseAddr("2001:db8::1")}},
		{Name: "all.example", Class: ClassINET, TTL: 60, Data: TXTRData{Strings: []string{"one", "two"}}},
		{Name: "alias.example", Class: ClassINET, TTL: 60, Data: CNAMERData{Target: "all.example"}},
		{Name: "all.example", Class: ClassINET, TTL: 60, Data: MXRData{Preference: 10, Host: "mx.all.example"}},
	}
	all.Authority = []Record{
		{Name: "example", Class: ClassINET, TTL: 300, Data: NSRData{Host: "ns.example"}},
		{Name: "example", Class: ClassINET, TTL: 300, Data: SOARData{
			MName: "ns.example", RName: "hostmaster.example",
			Serial: 2024010101, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
		}},
	}
	all.Additional = []Record{
		{Name: "ptr.example", Class: ClassINET, TTL: 60, Data: PTRRData{Target: "target.example"}},
		{Name: "raw.example", Class: ClassINET, TTL: 60, Data: RawRData{RRType: Type(0xFF42), Data: []byte{1, 2, 3}}},
	}

	flags := NewQuery(9, "flags.example", TypeA, ClassINET)
	flags.Header.Opcode = OpcodeStatus
	flags.Header.RCode = RCodeRefused
	flags.Header.Response = true
	flags.Header.Truncated = true
	flags.Header.AuthenticData = true
	flags.Header.CheckingDisabled = true

	edns := NewQuery(10, "edns.example", TypeTXT, ClassINET)
	edns.SetEDNS(1232, true)

	ecs4 := NewQuery(11, "ecs4.example", TypeA, ClassINET)
	ecs4.SetECS(netip.MustParsePrefix("192.0.2.0/24"))
	ecs6 := NewQuery(12, "ecs6.example", TypeAAAA, ClassINET)
	ecs6.SetECS(netip.MustParsePrefix("2001:db8::/56"))

	compress := NewQuery(13, "Sub.Example.COM", TypeA, ClassINET)
	compress.Answers = []Record{
		{Name: "sub.example.com", Class: ClassINET, TTL: 1, Data: CNAMERData{Target: "other.EXAMPLE.com"}},
		{Name: "SUB.example.com", Class: ClassINET, TTL: 1, Data: ARData{Addr: netip.MustParseAddr("198.51.100.7")}},
	}

	return []*Message{
		NewQuery(1, "", TypeA, ClassINET),           // root name
		NewQuery(2, maxLabelName, TypeA, ClassINET), // 63-char label
		NewQuery(3, maxWireName(), TypeA, ClassINET),
		NewChaosTXTQuery(4, "version.bind"),
		NewTXTResponse(NewChaosTXTQuery(5, "id.server"), ""), // empty TXT string
		{
			Header:    Header{ID: 6, Response: true},
			Questions: []Question{{Name: "t.example", Type: TypeTXT, Class: ClassINET}},
			Answers:   []Record{{Name: "t.example", Class: ClassINET, TTL: 5, Data: TXTRData{}}}, // nil Strings
		},
		all, flags, edns, ecs4, ecs6, compress,
	}
}

// TestPackUnpackPackCorners pins every corner shape, and additionally
// checks the decorations survive structurally (the byte property alone
// would pass if, say, ECS silently vanished on both sides).
func TestPackUnpackPackCorners(t *testing.T) {
	for i, m := range cornerMessages() {
		if !roundtrip(t, m) {
			t.Errorf("corner %d did not pack:\n%s", i, m)
		}
	}

	edns := NewQuery(20, "edns.example", TypeTXT, ClassINET)
	edns.SetEDNS(1232, true)
	b := MustPack(edns)
	back, err := Unpack(b)
	if err != nil {
		t.Fatalf("edns corner: %v", err)
	}
	if !back.DO() {
		t.Error("DO bit lost in round trip")
	}
	if opt := back.findOPT(); opt == nil || uint16(opt.Class) != 1232 {
		t.Errorf("advertised UDP size lost: %v", back.findOPT())
	}

	ecs := NewQuery(21, "ecs.example", TypeA, ClassINET)
	ecs.SetECS(netip.MustParsePrefix("203.0.113.64/26"))
	back, err = Unpack(MustPack(ecs))
	if err != nil {
		t.Fatalf("ecs corner: %v", err)
	}
	got, ok := back.ClientSubnet()
	if !ok || got.Prefix != netip.MustParsePrefix("203.0.113.64/26") {
		t.Errorf("ECS lost in round trip: %+v ok=%v", got, ok)
	}

	long := NewQuery(22, maxWireName(), TypeA, ClassINET)
	back, err = Unpack(MustPack(long))
	if err != nil {
		t.Fatalf("max-name corner: %v", err)
	}
	if !back.Question().Name.Equal(maxWireName()) {
		t.Errorf("max-wire name mangled: %q", back.Question().Name)
	}
	over := NewQuery(23, Name(strings.Repeat("z", maxLabel+1)+".example"), TypeA, ClassINET)
	if _, err := over.Pack(); err == nil {
		t.Error("64-char label packed; want ErrLabelTooLong")
	}
}
