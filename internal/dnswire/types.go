// Package dnswire implements the DNS wire format (RFC 1035 and friends)
// from scratch on top of the standard library only.
//
// It supports everything the interception-localization technique needs:
// the CHAOS class used by id.server / version.bind debugging queries
// (RFC 4892), TXT records, address records for both IP families, name
// compression on both the encode and decode paths, and EDNS0 OPT
// pseudo-records. Messages packed by this package are byte-for-byte valid
// DNS packets; the simulator and the real-network client share this codec.
package dnswire

import "strconv"

// Type is a DNS resource record type (RFC 1035 §3.2.2 and successors).
type Type uint16

// Resource record types used by the detector and its substrates.
const (
	TypeNone  Type = 0
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	TypeANY   Type = 255
)

var typeNames = map[Type]string{
	TypeNone:   "NONE",
	TypeA:      "A",
	TypeNS:     "NS",
	TypeCNAME:  "CNAME",
	TypeSOA:    "SOA",
	TypePTR:    "PTR",
	TypeMX:     "MX",
	TypeTXT:    "TXT",
	TypeAAAA:   "AAAA",
	TypeOPT:    "OPT",
	TypeANY:    "ANY",
	TypeDS:     "DS",
	TypeRRSIG:  "RRSIG",
	TypeDNSKEY: "DNSKEY",
}

// String returns the conventional mnemonic, or TYPEn per RFC 3597 for
// unknown types.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return "TYPE" + strconv.Itoa(int(t))
}

// Class is a DNS class. The interception technique leans on the CHAOS
// class, which public resolvers use for server-identity debugging queries.
type Class uint16

// DNS classes.
const (
	ClassINET  Class = 1
	ClassCHAOS Class = 3
	ClassHS    Class = 4
	ClassNONE  Class = 254
	ClassANY   Class = 255
)

var classNames = map[Class]string{
	ClassINET:  "IN",
	ClassCHAOS: "CH",
	ClassHS:    "HS",
	ClassNONE:  "NONE",
	ClassANY:   "ANY",
}

// String returns the conventional mnemonic, or CLASSn for unknown classes.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return "CLASS" + strconv.Itoa(int(c))
}

// Opcode is the 4-bit DNS operation code.
type Opcode uint8

// Opcodes.
const (
	OpcodeQuery  Opcode = 0
	OpcodeIQuery Opcode = 1
	OpcodeStatus Opcode = 2
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

var opcodeNames = map[Opcode]string{
	OpcodeQuery:  "QUERY",
	OpcodeIQuery: "IQUERY",
	OpcodeStatus: "STATUS",
	OpcodeNotify: "NOTIFY",
	OpcodeUpdate: "UPDATE",
}

// String returns the conventional mnemonic.
func (o Opcode) String() string {
	if s, ok := opcodeNames[o]; ok {
		return s
	}
	return "OPCODE" + strconv.Itoa(int(o))
}

// RCode is the DNS response code. The paper's transparency analysis
// (§4.1.2) distinguishes NOERROR answers from deliberate SERVFAIL /
// NOTIMP / REFUSED blocking by alternate resolvers.
type RCode uint8

// Response codes.
const (
	RCodeSuccess        RCode = 0 // NOERROR
	RCodeFormatError    RCode = 1 // FORMERR
	RCodeServerFailure  RCode = 2 // SERVFAIL
	RCodeNameError      RCode = 3 // NXDOMAIN
	RCodeNotImplemented RCode = 4 // NOTIMP
	RCodeRefused        RCode = 5 // REFUSED
)

var rcodeNames = map[RCode]string{
	RCodeSuccess:        "NOERROR",
	RCodeFormatError:    "FORMERR",
	RCodeServerFailure:  "SERVFAIL",
	RCodeNameError:      "NXDOMAIN",
	RCodeNotImplemented: "NOTIMP",
	RCodeRefused:        "REFUSED",
}

// String returns the conventional mnemonic.
func (r RCode) String() string {
	if s, ok := rcodeNames[r]; ok {
		return s
	}
	return "RCODE" + strconv.Itoa(int(r))
}

// IsError reports whether the rcode indicates the server deliberately
// declined or failed to answer. NXDOMAIN is an error rcode in the wire
// sense but represents a successful resolution of a nonexistent name, so
// the transparency analysis treats it separately.
func (r RCode) IsError() bool { return r != RCodeSuccess }
