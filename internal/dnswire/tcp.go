package dnswire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// DNS over TCP frames each message with a 2-octet big-endian length
// prefix (RFC 1035 §4.2.2). Real resolvers fall back to TCP when a UDP
// answer arrives truncated; the real-network client in the root package
// does the same.

// maxTCPMessage bounds a framed message.
const maxTCPMessage = 0xFFFF

// PackTCP encodes a message with its TCP length prefix. The body is
// packed in place after a reserved prefix — no assemble-then-copy pass.
func PackTCP(m *Message) ([]byte, error) {
	out, err := m.appendPacked(make([]byte, 2, 2+m.wireEstimate()))
	if err != nil {
		return nil, err
	}
	body := len(out) - 2
	if body > maxTCPMessage {
		return nil, fmt.Errorf("dnswire: message is %d bytes, exceeds TCP frame limit", body)
	}
	binary.BigEndian.PutUint16(out[:2], uint16(body))
	return out, nil
}

// WriteTCP frames and writes one message.
func WriteTCP(w io.Writer, m *Message) error {
	buf, err := PackTCP(m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadTCP reads one framed message.
func ReadTCP(r io.Reader) (*Message, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenBuf[:])
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return Unpack(body)
}

// AppendTCPFrame appends body to dst with the RFC 1035 §4.2.2 2-octet
// length prefix. The encrypted-transport plane (netsim streams) reuses
// this framing for the DNS messages it carries, exactly as RFC 7858 DoT
// sessions carry TCP-framed messages inside TLS records.
func AppendTCPFrame(dst, body []byte) ([]byte, error) {
	if len(body) > maxTCPMessage {
		return nil, fmt.Errorf("dnswire: message is %d bytes, exceeds TCP frame limit", len(body))
	}
	var pfx [2]byte
	binary.BigEndian.PutUint16(pfx[:], uint16(len(body)))
	return append(append(dst, pfx[:]...), body...), nil
}

// SplitTCPFrame splits one length-prefixed message off the front of b,
// returning the message body and any remaining bytes.
func SplitTCPFrame(b []byte) (body, rest []byte, err error) {
	if len(b) < 2 {
		return nil, nil, fmt.Errorf("dnswire: short TCP frame: %d bytes", len(b))
	}
	n := int(binary.BigEndian.Uint16(b[:2]))
	if len(b) < 2+n {
		return nil, nil, fmt.Errorf("dnswire: TCP frame truncated: have %d of %d bytes", len(b)-2, n)
	}
	return b[2 : 2+n], b[2+n:], nil
}

// packUnbounded packs without the UDP size ceiling; TCP has its own
// 64 KiB frame limit, checked by the callers.
func (m *Message) packUnbounded() ([]byte, error) {
	return m.appendPacked(nil)
}

// PackWithTruncation packs for UDP; if the full message does not fit in
// maxSize octets it returns a truncated response (TC set, answer
// sections dropped), as a real server would, prompting the client to
// retry over TCP.
func PackWithTruncation(m *Message, maxSize int) ([]byte, error) {
	if maxSize <= 0 || maxSize > maxUDPPayload {
		maxSize = maxUDPPayload
	}
	full, err := m.packUnbounded()
	if err != nil {
		return nil, err
	}
	if len(full) <= maxSize {
		return full, nil
	}
	tr := &Message{Header: m.Header, Questions: m.Questions}
	tr.Header.Truncated = true
	return tr.packUnbounded()
}
