package dnswire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// DNS over TCP frames each message with a 2-octet big-endian length
// prefix (RFC 1035 §4.2.2). Real resolvers fall back to TCP when a UDP
// answer arrives truncated; the real-network client in the root package
// does the same.

// maxTCPMessage bounds a framed message.
const maxTCPMessage = 0xFFFF

// PackTCP encodes a message with its TCP length prefix.
func PackTCP(m *Message) ([]byte, error) {
	body, err := m.packUnbounded()
	if err != nil {
		return nil, err
	}
	if len(body) > maxTCPMessage {
		return nil, fmt.Errorf("dnswire: message is %d bytes, exceeds TCP frame limit", len(body))
	}
	out := make([]byte, 2+len(body))
	binary.BigEndian.PutUint16(out[:2], uint16(len(body)))
	copy(out[2:], body)
	return out, nil
}

// WriteTCP frames and writes one message.
func WriteTCP(w io.Writer, m *Message) error {
	buf, err := PackTCP(m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadTCP reads one framed message.
func ReadTCP(r io.Reader) (*Message, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenBuf[:])
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return Unpack(body)
}

// packUnbounded packs without the UDP size ceiling; TCP has its own
// 64 KiB frame limit, checked by the callers.
func (m *Message) packUnbounded() ([]byte, error) {
	h := m.Header
	h.QDCount = uint16(len(m.Questions))
	h.ANCount = uint16(len(m.Answers))
	h.NSCount = uint16(len(m.Authority))
	h.ARCount = uint16(len(m.Additional))
	buf := make([]byte, 0, 512)
	buf = h.pack(buf)
	cmp := compressionMap{}
	var err error
	for _, q := range m.Questions {
		if buf, err = packName(buf, q.Name, cmp); err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, section := range [][]Record{m.Answers, m.Authority, m.Additional} {
		for _, rr := range section {
			if buf, err = packRecord(buf, rr, cmp); err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

// PackWithTruncation packs for UDP; if the full message does not fit in
// maxSize octets it returns a truncated response (TC set, answer
// sections dropped), as a real server would, prompting the client to
// retry over TCP.
func PackWithTruncation(m *Message, maxSize int) ([]byte, error) {
	if maxSize <= 0 || maxSize > maxUDPPayload {
		maxSize = maxUDPPayload
	}
	full, err := m.packUnbounded()
	if err != nil {
		return nil, err
	}
	if len(full) <= maxSize {
		return full, nil
	}
	tr := &Message{Header: m.Header, Questions: m.Questions}
	tr.Header.Truncated = true
	return tr.packUnbounded()
}
