package dnswire

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNameLabels(t *testing.T) {
	cases := []struct {
		in   Name
		want []string
	}{
		{"", nil},
		{".", nil},
		{"com", []string{"com"}},
		{"example.com", []string{"example", "com"}},
		{"example.com.", []string{"example", "com"}},
		{"a.b.c.d", []string{"a", "b", "c", "d"}},
	}
	for _, c := range cases {
		if got := c.in.Labels(); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Labels(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNameParent(t *testing.T) {
	cases := []struct {
		in     Name
		want   Name
		wantOK bool
	}{
		{"", "", false},
		{"com", "", true},
		{"example.com", "com", true},
		{"www.example.com", "example.com", true},
	}
	for _, c := range cases {
		got, ok := c.in.Parent()
		if got != c.want || ok != c.wantOK {
			t.Errorf("Parent(%q) = %q,%t, want %q,%t", c.in, got, ok, c.want, c.wantOK)
		}
	}
}

func TestNameIsSubdomainOf(t *testing.T) {
	cases := []struct {
		name, zone Name
		want       bool
	}{
		{"example.com", "com", true},
		{"example.com", "example.com", true},
		{"Example.COM", "example.com", true},
		{"example.com", "", true},
		{"example.com", "org", false},
		{"notexample.com", "example.com", false},
		{"a.example.com", "example.com", true},
		{"com", "example.com", false},
	}
	for _, c := range cases {
		if got := c.name.IsSubdomainOf(c.zone); got != c.want {
			t.Errorf("IsSubdomainOf(%q, %q) = %t, want %t", c.name, c.zone, got, c.want)
		}
	}
}

func TestPackNameRoot(t *testing.T) {
	buf, err := packName(nil, "", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 1 || buf[0] != 0 {
		t.Fatalf("root name encoded as %v, want [0]", buf)
	}
}

func TestPackNameRejectsBadNames(t *testing.T) {
	long := strings.Repeat("a", 64)
	if _, err := packName(nil, Name(long+".com"), nil, 0); !errors.Is(err, ErrLabelTooLong) {
		t.Errorf("oversized label: err = %v, want ErrLabelTooLong", err)
	}
	if _, err := packName(nil, "a..b", nil, 0); !errors.Is(err, ErrEmptyName) {
		t.Errorf("empty label: err = %v, want ErrEmptyName", err)
	}
	var parts []string
	for i := 0; i < 60; i++ {
		parts = append(parts, "abcd")
	}
	if _, err := packName(nil, Name(strings.Join(parts, ".")), nil, 0); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("oversized name: err = %v, want ErrNameTooLong", err)
	}
}

func TestNameRoundTrip(t *testing.T) {
	names := []Name{
		"",
		"com",
		"example.com",
		"www.example.com",
		"id.server",
		"o-o.myaddr.l.google.com",
		"debug.opendns.com",
		"version.bind",
		"whoami.akamai.com",
		"xn--nxasmq6b.example",
	}
	for _, n := range names {
		buf, err := packName(nil, n, nil, 0)
		if err != nil {
			t.Fatalf("pack %q: %v", n, err)
		}
		got, end, err := unpackName(buf, 0)
		if err != nil {
			t.Fatalf("unpack %q: %v", n, err)
		}
		if end != len(buf) {
			t.Errorf("unpack %q consumed %d of %d bytes", n, end, len(buf))
		}
		if !got.Equal(n) {
			t.Errorf("round trip %q = %q", n, got)
		}
	}
}

func TestCompressionPointerRoundTrip(t *testing.T) {
	// Pack two names sharing a suffix into one buffer; the second must be
	// shorter than its uncompressed form and still decode correctly.
	cmp := compressionMap{}
	buf, err := packName(nil, "www.example.com", cmp, 0)
	if err != nil {
		t.Fatal(err)
	}
	first := len(buf)
	buf, err = packName(buf, "mail.example.com", cmp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf)-first >= len("mail.example.com")+2 {
		t.Errorf("second name not compressed: %d bytes", len(buf)-first)
	}
	n1, end1, err := unpackName(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !n1.Equal("www.example.com") || end1 != first {
		t.Errorf("first name = %q end=%d", n1, end1)
	}
	n2, end2, err := unpackName(buf, first)
	if err != nil {
		t.Fatal(err)
	}
	if !n2.Equal("mail.example.com") || end2 != len(buf) {
		t.Errorf("second name = %q end=%d", n2, end2)
	}
}

func TestCompressionIdenticalName(t *testing.T) {
	cmp := compressionMap{}
	buf, _ := packName(nil, "a.example.com", cmp, 0)
	n := len(buf)
	buf, _ = packName(buf, "a.example.com", cmp, 0)
	if len(buf)-n != 2 {
		t.Errorf("identical repeat encoded as %d bytes, want 2 (pure pointer)", len(buf)-n)
	}
}

func TestUnpackNameMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrShortMessage},
		{"truncated label", []byte{5, 'a', 'b'}, ErrShortMessage},
		{"missing terminator", []byte{1, 'a'}, ErrShortMessage},
		{"self pointer", []byte{0xC0, 0x00}, ErrBadPointer},
		{"forward pointer", []byte{0xC0, 0x10, 0}, ErrBadPointer},
		{"truncated pointer", []byte{0xC0}, ErrShortMessage},
		{"reserved label type", []byte{0x40, 0}, ErrBadRData},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := unpackName(c.in, 0)
			if !errors.Is(err, c.want) {
				t.Errorf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestUnpackNamePointerChainBounded(t *testing.T) {
	// A long backward pointer chain must terminate with an error rather
	// than hang: each pointer at offset 2i points to offset 2(i-1), and
	// offset 0 holds another pointer to... offset 0 is a self-pointer,
	// so build: [0]=label 'a' terminator chain start.
	buf := []byte{1, 'a', 0} // name at 0
	off := len(buf)
	prev := 0
	for i := 0; i < 200; i++ {
		buf = append(buf, 0xC0|byte(prev>>8), byte(prev))
		prev = off
		off += 2
	}
	// Decoding the final pointer walks 200 pointers back to the label.
	n, _, err := unpackName(buf, len(buf)-2)
	if err == nil {
		// Chain longer than budget must error; budget is 127.
		t.Fatalf("200-pointer chain decoded to %q, want error", n)
	}
	if !errors.Is(err, ErrCompressionLoop) {
		t.Errorf("err = %v, want ErrCompressionLoop", err)
	}
}

// randomName generates a valid random name for property tests.
func randomName(r *rand.Rand) Name {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-"
	nlabels := 1 + r.Intn(5)
	labels := make([]string, nlabels)
	for i := range labels {
		l := 1 + r.Intn(12)
		b := make([]byte, l)
		for j := range b {
			b[j] = alphabet[r.Intn(len(alphabet)-1)] // avoid '-' edge for simplicity
		}
		labels[i] = string(b)
	}
	return Name(strings.Join(labels, "."))
}

func TestPropertyNameRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		n := randomName(r)
		buf, err := packName(nil, n, nil, 0)
		if err != nil {
			return false
		}
		got, end, err := unpackName(buf, 0)
		return err == nil && end == len(buf) && got.Equal(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCompressedRoundTrip(t *testing.T) {
	// Packing k random names with a shared compression map and decoding
	// each from its recorded offset must reproduce every name.
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		k := 2 + r.Intn(6)
		cmp := compressionMap{}
		var buf []byte
		offs := make([]int, k)
		names := make([]Name, k)
		for i := 0; i < k; i++ {
			names[i] = randomName(r)
			if r.Intn(2) == 0 && i > 0 {
				// Force suffix sharing half the time.
				names[i] = Name("x" + string(rune('a'+i)) + "." + string(names[i-1]))
			}
			offs[i] = len(buf)
			var err error
			buf, err = packName(buf, names[i], cmp, 0)
			if err != nil {
				return false
			}
		}
		for i := 0; i < k; i++ {
			got, _, err := unpackName(buf, offs[i])
			if err != nil || !got.Equal(names[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnpackNameFuzzNoPanics(t *testing.T) {
	// Random byte soup must never panic or loop, only return errors or names.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		n := r.Intn(64)
		buf := make([]byte, n)
		r.Read(buf)
		unpackName(buf, 0) //nolint:errcheck // only checking for panics/hangs
	}
}
