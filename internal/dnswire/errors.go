package dnswire

import "errors"

// Codec errors. Unpack functions wrap these with positional context where
// useful; callers test them with errors.Is.
var (
	// ErrShortMessage means the buffer ended before a fixed-size field
	// or counted section could be read.
	ErrShortMessage = errors.New("dnswire: message too short")

	// ErrNameTooLong means an encoded or decoded domain name exceeds the
	// 255-octet limit of RFC 1035 §3.1.
	ErrNameTooLong = errors.New("dnswire: name exceeds 255 octets")

	// ErrLabelTooLong means a single label exceeds 63 octets.
	ErrLabelTooLong = errors.New("dnswire: label exceeds 63 octets")

	// ErrCompressionLoop means compression pointers form a cycle or point
	// forward, which RFC 1035 forbids.
	ErrCompressionLoop = errors.New("dnswire: compression pointer loop")

	// ErrBadPointer means a compression pointer refers outside the message.
	ErrBadPointer = errors.New("dnswire: compression pointer out of range")

	// ErrBadRData means a resource record's RDATA did not match its
	// declared RDLENGTH or its type-specific layout.
	ErrBadRData = errors.New("dnswire: malformed rdata")

	// ErrTrailingBytes means bytes remained after all counted sections
	// were consumed. Strict parsers reject such messages.
	ErrTrailingBytes = errors.New("dnswire: trailing bytes after message")

	// ErrEmptyName means a name contained an empty non-root label,
	// e.g. "a..b".
	ErrEmptyName = errors.New("dnswire: empty label in name")

	// ErrTXTTooLong means a TXT character-string exceeds 255 octets.
	ErrTXTTooLong = errors.New("dnswire: txt string exceeds 255 octets")
)
