package dnswire

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// maxUDPPayload is the classic 512-byte UDP limit; the simulator keeps
// messages under it, and Pack refuses to emit larger ones unless the
// message carries an OPT record advertising a bigger size.
const maxUDPPayload = 512

// Question is a single entry of the question section.
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

// String renders the question in dig-like form.
func (q Question) String() string {
	return fmt.Sprintf("%s. %s %s", q.Name, q.Class, q.Type)
}

// Record is one resource record of an answer/authority/additional section.
type Record struct {
	Name  Name
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the record's RR type, taken from its body.
func (r Record) Type() Type {
	if r.Data == nil {
		return TypeNone
	}
	return r.Data.Type()
}

// String renders the record in zone-file-like form.
func (r Record) String() string {
	return fmt.Sprintf("%s. %d %s %s %s", r.Name, r.TTL, r.Class, r.Type(), r.Data)
}

// Message is a whole DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []Record
	Authority  []Record
	Additional []Record
}

// Question returns the first question, or a zero Question if none.
func (m *Message) Question() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// FirstTXT returns the joined strings of the first TXT answer, and
// whether one was present. Identity-query clients use this.
func (m *Message) FirstTXT() (string, bool) {
	for _, rr := range m.Answers {
		if txt, ok := rr.Data.(TXTRData); ok {
			return txt.Joined(), true
		}
	}
	return "", false
}

// AnswerAddrs collects all A/AAAA answer addresses in order.
func (m *Message) AnswerAddrs() []string {
	var out []string
	for _, rr := range m.Answers {
		switch d := rr.Data.(type) {
		case ARData:
			out = append(out, d.Addr.String())
		case AAAARData:
			out = append(out, d.Addr.String())
		}
	}
	return out
}

// Pack encodes the message into wire format with name compression across
// owner names. It refuses to emit messages that overflow the UDP payload
// limit rather than silently truncating; servers that need truncation set
// Header.Truncated and trim sections themselves first.
func (m *Message) Pack() ([]byte, error) { return m.PackTo(nil) }

// PackTo appends the message's wire encoding to buf and returns the
// extended slice (possibly reallocated, like append). A nil buf packs
// into a fresh slice pre-sized from a wire-length estimate. Transports
// use PackTo with recycled buffers to keep steady-state packing
// allocation-free; the returned slice aliases buf, so the usual append
// ownership rules apply.
func (m *Message) PackTo(buf []byte) ([]byte, error) {
	start := len(buf)
	buf, err := m.appendPacked(buf)
	if err != nil {
		return nil, err
	}
	if len(buf)-start > maxUDPPayload {
		return nil, fmt.Errorf("dnswire: message is %d bytes, exceeds %d-byte UDP payload", len(buf)-start, maxUDPPayload)
	}
	return buf, nil
}

// appendPacked is the shared pack core: header, questions, and sections
// appended to buf with compression offsets relative to the message start.
// No size ceiling — PackTo enforces the UDP limit, packUnbounded (TCP)
// does not.
func (m *Message) appendPacked(buf []byte) ([]byte, error) {
	h := m.Header
	h.QDCount = uint16(len(m.Questions))
	h.ANCount = uint16(len(m.Answers))
	h.NSCount = uint16(len(m.Authority))
	h.ARCount = uint16(len(m.Additional))

	if buf == nil {
		buf = make([]byte, 0, m.wireEstimate())
	}
	start := len(buf)
	buf = h.pack(buf)
	cmp := getCompressionMap()
	defer putCompressionMap(cmp)
	var err error
	for _, q := range m.Questions {
		if buf, err = packName(buf, q.Name, cmp, start); err != nil {
			return nil, fmt.Errorf("packing question %q: %w", q.Name, err)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, section := range [][]Record{m.Answers, m.Authority, m.Additional} {
		for _, rr := range section {
			if buf, err = packRecord(buf, rr, cmp, start); err != nil {
				return nil, fmt.Errorf("packing record %q: %w", rr.Name, err)
			}
		}
	}
	return buf, nil
}

// wireEstimate upper-bounds the uncompressed wire size so PackTo's fresh
// allocations are single-shot in the common case. Names cost at most
// len+2 octets uncompressed; fixed RDATA shapes are exact and the rest
// falls back to a generous constant.
func (m *Message) wireEstimate() int {
	n := headerLen
	for _, q := range m.Questions {
		n += len(q.Name) + 2 + 4
	}
	for _, section := range [][]Record{m.Answers, m.Authority, m.Additional} {
		for _, rr := range section {
			n += len(rr.Name) + 2 + 10 + rdataEstimate(rr.Data)
		}
	}
	return n
}

// rdataEstimate upper-bounds one record body's wire size.
func rdataEstimate(d RData) int {
	switch d := d.(type) {
	case ARData:
		return 4
	case AAAARData:
		return 16
	case TXTRData:
		n := 0
		for _, s := range d.Strings {
			n += 1 + len(s)
		}
		return n
	case CNAMERData:
		return len(d.Target) + 2
	case NSRData:
		return len(d.Host) + 2
	case PTRRData:
		return len(d.Target) + 2
	case MXRData:
		return 2 + len(d.Host) + 2
	case SOARData:
		return len(d.MName) + 2 + len(d.RName) + 2 + 20
	case OPTRData:
		return len(d.Options)
	case RawRData:
		return len(d.Data)
	case DNSKEYRData:
		return 4 + len(d.PublicKey)
	case DSRData:
		return 4 + len(d.Digest)
	case RRSIGRData:
		return 18 + len(d.SignerName) + 2 + len(d.Signature)
	default:
		return 64
	}
}

// packRecord appends one resource record. base is the message start
// within buf (see packName).
func packRecord(buf []byte, rr Record, cmp compressionMap, base int) ([]byte, error) {
	if rr.Data == nil {
		return buf, fmt.Errorf("%w: record %q has no rdata", ErrBadRData, rr.Name)
	}
	var err error
	if buf, err = packName(buf, rr.Name, cmp, base); err != nil {
		return buf, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Data.Type()))
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)
	lenAt := len(buf)
	buf = append(buf, 0, 0) // RDLENGTH placeholder
	if buf, err = rr.Data.packRData(buf); err != nil {
		return buf, err
	}
	rdlen := len(buf) - lenAt - 2
	if rdlen > 0xFFFF {
		return buf, fmt.Errorf("%w: rdata of %q is %d bytes", ErrBadRData, rr.Name, rdlen)
	}
	binary.BigEndian.PutUint16(buf[lenAt:lenAt+2], uint16(rdlen))
	return buf, nil
}

// Unpack decodes a wire-format message. It is strict: counted sections
// must be fully present, and trailing bytes are rejected.
func Unpack(msg []byte) (*Message, error) {
	var m Message
	if err := m.Header.unpack(msg); err != nil {
		return nil, err
	}
	off := headerLen
	var err error
	for i := 0; i < int(m.Header.QDCount); i++ {
		var q Question
		q, off, err = unpackQuestion(msg, off)
		if err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		m.Questions = append(m.Questions, q)
	}
	sections := []struct {
		count int
		dst   *[]Record
		name  string
	}{
		{int(m.Header.ANCount), &m.Answers, "answer"},
		{int(m.Header.NSCount), &m.Authority, "authority"},
		{int(m.Header.ARCount), &m.Additional, "additional"},
	}
	for _, sec := range sections {
		for i := 0; i < sec.count; i++ {
			var rr Record
			rr, off, err = unpackRecord(msg, off)
			if err != nil {
				return nil, fmt.Errorf("%s record %d: %w", sec.name, i, err)
			}
			*sec.dst = append(*sec.dst, rr)
		}
	}
	if off != len(msg) {
		return nil, ErrTrailingBytes
	}
	return &m, nil
}

// unpackQuestion decodes one question entry starting at off.
func unpackQuestion(msg []byte, off int) (Question, int, error) {
	n, off, err := unpackName(msg, off)
	if err != nil {
		return Question{}, 0, err
	}
	if off+4 > len(msg) {
		return Question{}, 0, ErrShortMessage
	}
	q := Question{
		Name:  n,
		Type:  Type(binary.BigEndian.Uint16(msg[off : off+2])),
		Class: Class(binary.BigEndian.Uint16(msg[off+2 : off+4])),
	}
	return q, off + 4, nil
}

// unpackRecord decodes one resource record starting at off.
func unpackRecord(msg []byte, off int) (Record, int, error) {
	n, off, err := unpackName(msg, off)
	if err != nil {
		return Record{}, 0, err
	}
	if off+10 > len(msg) {
		return Record{}, 0, ErrShortMessage
	}
	typ := Type(binary.BigEndian.Uint16(msg[off : off+2]))
	class := Class(binary.BigEndian.Uint16(msg[off+2 : off+4]))
	ttl := binary.BigEndian.Uint32(msg[off+4 : off+8])
	rdlen := int(binary.BigEndian.Uint16(msg[off+8 : off+10]))
	off += 10
	data, err := unpackRData(msg, off, rdlen, typ)
	if err != nil {
		return Record{}, 0, err
	}
	return Record{Name: n, Class: class, TTL: ttl, Data: data}, off + rdlen, nil
}

// String renders the whole message in dig-like form for traces.
func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; %s\n", m.Header.String())
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";; question: %s\n", q)
	}
	for _, rr := range m.Answers {
		fmt.Fprintf(&sb, ";; answer: %s\n", rr)
	}
	for _, rr := range m.Authority {
		fmt.Fprintf(&sb, ";; authority: %s\n", rr)
	}
	for _, rr := range m.Additional {
		fmt.Fprintf(&sb, ";; additional: %s\n", rr)
	}
	return sb.String()
}
