package dnswire

import (
	"errors"
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestHeaderFlagsRoundTrip(t *testing.T) {
	h := Header{
		ID:                 0xBEEF,
		Opcode:             OpcodeStatus,
		RCode:              RCodeRefused,
		Response:           true,
		Authoritative:      true,
		Truncated:          true,
		RecursionDesired:   true,
		RecursionAvailable: true,
		AuthenticData:      true,
		CheckingDisabled:   true,
		QDCount:            1, ANCount: 2, NSCount: 3, ARCount: 4,
	}
	buf := h.pack(nil)
	var got Header
	if err := got.unpack(buf); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("header round trip:\n got %+v\nwant %+v", got, h)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(42, "example.com", TypeA, ClassINET)
	buf, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.ID != 42 || !got.Header.RecursionDesired || got.Header.Response {
		t.Errorf("header = %+v", got.Header)
	}
	want := Question{Name: "example.com", Type: TypeA, Class: ClassINET}
	if got.Question() != want {
		t.Errorf("question = %+v, want %+v", got.Question(), want)
	}
}

func TestChaosTXTQueryShape(t *testing.T) {
	q := NewChaosTXTQuery(7, "version.bind")
	if q.Header.RecursionDesired {
		t.Error("CHAOS query should not set RD")
	}
	if q.Question().Class != ClassCHAOS || q.Question().Type != TypeTXT {
		t.Errorf("question = %+v", q.Question())
	}
}

func TestTXTResponseRoundTrip(t *testing.T) {
	q := NewChaosTXTQuery(9, "id.server")
	resp := NewTXTResponse(q, "IAD")
	buf, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.ID != 9 || !got.Header.Response || got.Header.RCode != RCodeSuccess {
		t.Errorf("header = %+v", got.Header)
	}
	s, ok := got.FirstTXT()
	if !ok || s != "IAD" {
		t.Errorf("FirstTXT = %q,%t", s, ok)
	}
}

func TestTXTMultipleStrings(t *testing.T) {
	q := NewQuery(1, "debug.opendns.com", TypeTXT, ClassINET)
	resp := NewTXTResponse(q, "server m84.iad", "flags 20 0 2F")
	buf := MustPack(resp)
	got, err := Unpack(buf)
	if err != nil {
		t.Fatal(err)
	}
	txt := got.Answers[0].Data.(TXTRData)
	if len(txt.Strings) != 2 || txt.Strings[0] != "server m84.iad" {
		t.Errorf("strings = %q", txt.Strings)
	}
	if txt.Joined() != "server m84.iadflags 20 0 2F" {
		t.Errorf("joined = %q", txt.Joined())
	}
}

func TestAddrResponseFamilies(t *testing.T) {
	qa := NewQuery(2, "example.com", TypeA, ClassINET)
	resp := NewAddrResponse(qa, 300, mustAddr("192.0.2.1"), mustAddr("2001:db8::1"))
	if len(resp.Answers) != 1 {
		t.Fatalf("A query got %d answers, want 1 (v6 addr skipped)", len(resp.Answers))
	}
	buf := MustPack(resp)
	got, err := Unpack(buf)
	if err != nil {
		t.Fatal(err)
	}
	if a := got.Answers[0].Data.(ARData).Addr; a != mustAddr("192.0.2.1") {
		t.Errorf("addr = %s", a)
	}

	qaaaa := NewQuery(3, "example.com", TypeAAAA, ClassINET)
	resp6 := NewAddrResponse(qaaaa, 300, mustAddr("192.0.2.1"), mustAddr("2001:db8::1"))
	if len(resp6.Answers) != 1 {
		t.Fatalf("AAAA query got %d answers", len(resp6.Answers))
	}
	got6, err := Unpack(MustPack(resp6))
	if err != nil {
		t.Fatal(err)
	}
	if a := got6.Answers[0].Data.(AAAARData).Addr; a != mustAddr("2001:db8::1") {
		t.Errorf("addr = %s", a)
	}
	if addrs := got6.AnswerAddrs(); !reflect.DeepEqual(addrs, []string{"2001:db8::1"}) {
		t.Errorf("AnswerAddrs = %v", addrs)
	}
}

func TestErrorResponses(t *testing.T) {
	q := NewQuery(4, "blocked.example", TypeA, ClassINET)
	for _, rc := range []RCode{RCodeServerFailure, RCodeNotImplemented, RCodeRefused, RCodeNameError} {
		resp := NewErrorResponse(q, rc)
		got, err := Unpack(MustPack(resp))
		if err != nil {
			t.Fatal(err)
		}
		if got.Header.RCode != rc {
			t.Errorf("rcode = %s, want %s", got.Header.RCode, rc)
		}
		if len(got.Answers) != 0 {
			t.Errorf("error response has %d answers", len(got.Answers))
		}
	}
}

func TestAllRDataTypesRoundTrip(t *testing.T) {
	records := []Record{
		{Name: "a.example.com", Class: ClassINET, TTL: 60, Data: ARData{Addr: mustAddr("198.51.100.7")}},
		{Name: "a.example.com", Class: ClassINET, TTL: 60, Data: AAAARData{Addr: mustAddr("2001:db8::2")}},
		{Name: "t.example.com", Class: ClassINET, TTL: 60, Data: TXTRData{Strings: []string{"hello", "world"}}},
		{Name: "c.example.com", Class: ClassINET, TTL: 60, Data: CNAMERData{Target: "target.example.org"}},
		{Name: "example.com", Class: ClassINET, TTL: 60, Data: NSRData{Host: "ns1.example.com"}},
		{Name: "7.2.0.192.in-addr.arpa", Class: ClassINET, TTL: 60, Data: PTRRData{Target: "host.example.com"}},
		{Name: "example.com", Class: ClassINET, TTL: 60, Data: MXRData{Preference: 10, Host: "mx.example.com"}},
		{Name: "example.com", Class: ClassINET, TTL: 60, Data: SOARData{
			MName: "ns1.example.com", RName: "hostmaster.example.com",
			Serial: 2021110201, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
		}},
		{Name: "x.example.com", Class: ClassINET, TTL: 60, Data: RawRData{RRType: Type(999), Data: []byte{1, 2, 3}}},
	}
	m := &Message{Header: Header{ID: 5, Response: true}, Answers: records}
	buf, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != len(records) {
		t.Fatalf("got %d answers, want %d", len(got.Answers), len(records))
	}
	for i, rr := range got.Answers {
		want := records[i]
		if rr.Type() != want.Type() || rr.TTL != want.TTL || !rr.Name.Equal(want.Name) {
			t.Errorf("record %d header mismatch: %s vs %s", i, rr, want)
		}
		if !reflect.DeepEqual(rr.Data, want.Data) {
			t.Errorf("record %d rdata = %#v, want %#v", i, rr.Data, want.Data)
		}
	}
}

func TestPackRejectsOversizedMessage(t *testing.T) {
	m := &Message{Header: Header{ID: 6, Response: true}}
	for i := 0; i < 40; i++ {
		m.Answers = append(m.Answers, Record{
			Name: "big.example.com", Class: ClassINET, TTL: 1,
			Data: TXTRData{Strings: []string{strings.Repeat("x", 200)}},
		})
	}
	if _, err := m.Pack(); err == nil {
		t.Fatal("oversized message packed without error")
	}
}

func TestUnpackRejectsTrailingBytes(t *testing.T) {
	buf := MustPack(NewQuery(7, "example.com", TypeA, ClassINET))
	buf = append(buf, 0xFF)
	if _, err := Unpack(buf); !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("err = %v, want ErrTrailingBytes", err)
	}
}

func TestUnpackRejectsTruncatedSections(t *testing.T) {
	buf := MustPack(NewQuery(8, "example.com", TypeA, ClassINET))
	for cut := 1; cut < len(buf); cut++ {
		if _, err := Unpack(buf[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestUnpackRDataLengthMismatch(t *testing.T) {
	// Hand-build a record whose CNAME rdata claims more bytes than the
	// encoded name uses.
	resp := NewResponse(NewQuery(9, "a.example", TypeCNAME, ClassINET), RCodeSuccess)
	resp.Answers = []Record{{Name: "a.example", Class: ClassINET, TTL: 1, Data: CNAMERData{Target: "b.example"}}}
	buf := MustPack(resp)
	// RDLENGTH is the 2 bytes before the final encoded name. Inflate it.
	// Find it by repacking with a modified copy: simpler to flip the last
	// rdlength byte (big-endian low byte) upward.
	// The rdata (uncompressed "b.example.") is 11 bytes; locate 0x00 0x0B.
	idx := -1
	for i := 0; i+1 < len(buf); i++ {
		if buf[i] == 0x00 && buf[i+1] == 0x0B {
			idx = i
		}
	}
	if idx < 0 {
		t.Skip("could not locate rdlength; encoding changed")
	}
	buf[idx+1] = 0x0C
	if _, err := Unpack(buf); err == nil {
		t.Error("inflated rdlength accepted")
	}
}

func TestMessageStringRendering(t *testing.T) {
	q := NewQuery(10, "example.com", TypeA, ClassINET)
	resp := NewAddrResponse(q, 60, mustAddr("192.0.2.9"))
	s := resp.String()
	for _, want := range []string{"example.com. IN A", "192.0.2.9", "NOERROR"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

// randomMessage builds a structurally valid random message.
func randomMessage(r *rand.Rand) *Message {
	m := &Message{
		Header: Header{
			ID:               uint16(r.Uint32()),
			Response:         r.Intn(2) == 0,
			RecursionDesired: r.Intn(2) == 0,
			RCode:            RCode(r.Intn(6)),
		},
	}
	nq := 1
	for i := 0; i < nq; i++ {
		m.Questions = append(m.Questions, Question{
			Name:  randomName(r),
			Type:  []Type{TypeA, TypeAAAA, TypeTXT, TypeCNAME}[r.Intn(4)],
			Class: []Class{ClassINET, ClassCHAOS}[r.Intn(2)],
		})
	}
	nan := r.Intn(4)
	for i := 0; i < nan; i++ {
		var data RData
		switch r.Intn(7) {
		case 0:
			var b [4]byte
			r.Read(b[:])
			data = ARData{Addr: netip.AddrFrom4(b)}
		case 1:
			var b [16]byte
			r.Read(b[:])
			b[0] = 0x20 // keep it a real v6 addr, not v4-mapped
			data = AAAARData{Addr: netip.AddrFrom16(b)}
		case 2:
			data = TXTRData{Strings: []string{string(randomName(r))}}
		case 3:
			data = CNAMERData{Target: randomName(r)}
		case 4:
			key := make([]byte, 32)
			r.Read(key)
			data = DNSKEYRData{Flags: DNSKEYFlagZone, Protocol: 3, Algorithm: AlgoEd25519, PublicKey: key}
		case 5:
			digest := make([]byte, 32)
			r.Read(digest)
			data = DSRData{KeyTag: uint16(r.Uint32()), Algorithm: AlgoEd25519, DigestType: 2, Digest: digest}
		case 6:
			sig := make([]byte, 64)
			r.Read(sig)
			data = RRSIGRData{
				TypeCovered: TypeA, Algorithm: AlgoEd25519, Labels: 2,
				OrigTTL: r.Uint32() % 86400, Expiration: SigHigh, Inception: SigLow,
				KeyTag: uint16(r.Uint32()), SignerName: randomName(r).Canonical(), Signature: sig,
			}
		}
		m.Answers = append(m.Answers, Record{
			Name: randomName(r), Class: ClassINET, TTL: r.Uint32() % 86400, Data: data,
		})
	}
	return m
}

func TestPropertyMessageRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		m := randomMessage(r)
		buf, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(buf)
		if err != nil {
			return false
		}
		if got.Header.ID != m.Header.ID || got.Header.RCode != m.Header.RCode {
			return false
		}
		if len(got.Questions) != len(m.Questions) || len(got.Answers) != len(m.Answers) {
			return false
		}
		for i := range m.Answers {
			if !reflect.DeepEqual(got.Answers[i].Data, m.Answers[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRepackStable(t *testing.T) {
	// pack → unpack → pack must be byte-identical (canonical encoder).
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		m := randomMessage(r)
		b1, err := m.Pack()
		if err != nil {
			return false
		}
		m2, err := Unpack(b1)
		if err != nil {
			return false
		}
		b2, err := m2.Pack()
		if err != nil {
			return false
		}
		return string(b1) == string(b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnpackFuzzNoPanics(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	// Random soup.
	for i := 0; i < 5000; i++ {
		buf := make([]byte, r.Intn(128))
		r.Read(buf)
		Unpack(buf) //nolint:errcheck
	}
	// Mutated valid packets: flip bytes of a real message.
	base := MustPack(NewTXTResponse(NewChaosTXTQuery(1, "version.bind"), "dnsmasq-2.85"))
	for i := 0; i < 5000; i++ {
		buf := append([]byte(nil), base...)
		for k := 0; k < 1+r.Intn(3); k++ {
			buf[r.Intn(len(buf))] ^= byte(1 << r.Intn(8))
		}
		Unpack(buf) //nolint:errcheck
	}
}

func TestTypeClassRCodeStrings(t *testing.T) {
	if TypeTXT.String() != "TXT" || Type(777).String() != "TYPE777" {
		t.Error("Type.String misbehaves")
	}
	if ClassCHAOS.String() != "CH" || Class(777).String() != "CLASS777" {
		t.Error("Class.String misbehaves")
	}
	if RCodeNotImplemented.String() != "NOTIMP" || RCode(14).String() != "RCODE14" {
		t.Error("RCode.String misbehaves")
	}
	if OpcodeQuery.String() != "QUERY" || Opcode(7).String() != "OPCODE7" {
		t.Error("Opcode.String misbehaves")
	}
	if !RCodeRefused.IsError() || RCodeSuccess.IsError() {
		t.Error("RCode.IsError misbehaves")
	}
}

// Fixed RRSIG timestamp sentinels for the property generator.
const (
	SigLow  = 2021110100
	SigHigh = 2031110100
)
