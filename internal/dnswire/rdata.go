package dnswire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// RData is the typed body of a resource record. Implementations pack
// themselves into wire format; names inside RDATA are packed without
// compression, which is universally interoperable and required for
// unknown types (RFC 3597 §4).
type RData interface {
	// Type returns the RR type this body belongs to.
	Type() Type
	// packRData appends the wire encoding (without the RDLENGTH prefix).
	packRData(buf []byte) ([]byte, error)
	// String renders the body in presentation-like format.
	String() string
}

// ARData is an IPv4 address record body.
type ARData struct{ Addr netip.Addr }

// Type implements RData.
func (ARData) Type() Type { return TypeA }

func (r ARData) packRData(buf []byte) ([]byte, error) {
	if !r.Addr.Is4() {
		return buf, fmt.Errorf("%w: A record with non-IPv4 address %s", ErrBadRData, r.Addr)
	}
	a := r.Addr.As4()
	return append(buf, a[:]...), nil
}

func (r ARData) String() string { return r.Addr.String() }

// AAAARData is an IPv6 address record body.
type AAAARData struct{ Addr netip.Addr }

// Type implements RData.
func (AAAARData) Type() Type { return TypeAAAA }

func (r AAAARData) packRData(buf []byte) ([]byte, error) {
	if !r.Addr.Is6() || r.Addr.Is4In6() {
		return buf, fmt.Errorf("%w: AAAA record with non-IPv6 address %s", ErrBadRData, r.Addr)
	}
	a := r.Addr.As16()
	return append(buf, a[:]...), nil
}

func (r AAAARData) String() string { return r.Addr.String() }

// TXTRData is a TXT record body: one or more character-strings.
// Location queries (id.server, version.bind, debug.opendns.com) all
// answer with TXT records, so this is the detector's workhorse.
type TXTRData struct{ Strings []string }

// Type implements RData.
func (TXTRData) Type() Type { return TypeTXT }

func (r TXTRData) packRData(buf []byte) ([]byte, error) {
	if len(r.Strings) == 0 {
		// RFC 1035 requires at least one (possibly empty) string.
		return append(buf, 0), nil
	}
	for _, s := range r.Strings {
		if len(s) > 255 {
			return buf, ErrTXTTooLong
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

func (r TXTRData) String() string {
	quoted := make([]string, len(r.Strings))
	for i, s := range r.Strings {
		quoted[i] = `"` + s + `"`
	}
	return strings.Join(quoted, " ")
}

// Joined concatenates the character-strings, the usual way clients
// consume identity answers.
func (r TXTRData) Joined() string { return strings.Join(r.Strings, "") }

// CNAMERData is a canonical-name record body.
type CNAMERData struct{ Target Name }

// Type implements RData.
func (CNAMERData) Type() Type { return TypeCNAME }

func (r CNAMERData) packRData(buf []byte) ([]byte, error) {
	return packName(buf, r.Target, nil, 0)
}

func (r CNAMERData) String() string { return string(r.Target) + "." }

// NSRData is a nameserver record body.
type NSRData struct{ Host Name }

// Type implements RData.
func (NSRData) Type() Type { return TypeNS }

func (r NSRData) packRData(buf []byte) ([]byte, error) {
	return packName(buf, r.Host, nil, 0)
}

func (r NSRData) String() string { return string(r.Host) + "." }

// PTRRData is a pointer record body.
type PTRRData struct{ Target Name }

// Type implements RData.
func (PTRRData) Type() Type { return TypePTR }

func (r PTRRData) packRData(buf []byte) ([]byte, error) {
	return packName(buf, r.Target, nil, 0)
}

func (r PTRRData) String() string { return string(r.Target) + "." }

// MXRData is a mail-exchanger record body.
type MXRData struct {
	Preference uint16
	Host       Name
}

// Type implements RData.
func (MXRData) Type() Type { return TypeMX }

func (r MXRData) packRData(buf []byte) ([]byte, error) {
	buf = binary.BigEndian.AppendUint16(buf, r.Preference)
	return packName(buf, r.Host, nil, 0)
}

func (r MXRData) String() string { return fmt.Sprintf("%d %s.", r.Preference, r.Host) }

// SOARData is a start-of-authority record body.
type SOARData struct {
	MName   Name
	RName   Name
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Type implements RData.
func (SOARData) Type() Type { return TypeSOA }

func (r SOARData) packRData(buf []byte) ([]byte, error) {
	var err error
	if buf, err = packName(buf, r.MName, nil, 0); err != nil {
		return buf, err
	}
	if buf, err = packName(buf, r.RName, nil, 0); err != nil {
		return buf, err
	}
	buf = binary.BigEndian.AppendUint32(buf, r.Serial)
	buf = binary.BigEndian.AppendUint32(buf, r.Refresh)
	buf = binary.BigEndian.AppendUint32(buf, r.Retry)
	buf = binary.BigEndian.AppendUint32(buf, r.Expire)
	buf = binary.BigEndian.AppendUint32(buf, r.Minimum)
	return buf, nil
}

func (r SOARData) String() string {
	return fmt.Sprintf("%s. %s. %d %d %d %d %d",
		r.MName, r.RName, r.Serial, r.Refresh, r.Retry, r.Expire, r.Minimum)
}

// OPTRData is an EDNS0 OPT pseudo-record body (RFC 6891). Options are
// kept opaque; the simulator only needs UDP payload size negotiation.
type OPTRData struct{ Options []byte }

// Type implements RData.
func (OPTRData) Type() Type { return TypeOPT }

func (r OPTRData) packRData(buf []byte) ([]byte, error) {
	return append(buf, r.Options...), nil
}

func (r OPTRData) String() string { return fmt.Sprintf("OPT(%d bytes)", len(r.Options)) }

// RawRData carries an unrecognized type's RDATA verbatim (RFC 3597).
type RawRData struct {
	RRType Type
	Data   []byte
}

// Type implements RData.
func (r RawRData) Type() Type { return r.RRType }

func (r RawRData) packRData(buf []byte) ([]byte, error) {
	return append(buf, r.Data...), nil
}

func (r RawRData) String() string { return fmt.Sprintf(`\# %d %x`, len(r.Data), r.Data) }

// unpackRData decodes the RDATA of one record. msg is the whole message
// (needed to follow compression pointers inside RDATA), the body spans
// [off, off+rdlen).
func unpackRData(msg []byte, off, rdlen int, typ Type) (RData, error) {
	if off+rdlen > len(msg) {
		return nil, ErrShortMessage
	}
	body := msg[off : off+rdlen]
	switch typ {
	case TypeA:
		if rdlen != 4 {
			return nil, fmt.Errorf("%w: A rdlength %d", ErrBadRData, rdlen)
		}
		return ARData{Addr: netip.AddrFrom4([4]byte(body))}, nil
	case TypeAAAA:
		if rdlen != 16 {
			return nil, fmt.Errorf("%w: AAAA rdlength %d", ErrBadRData, rdlen)
		}
		return AAAARData{Addr: netip.AddrFrom16([16]byte(body))}, nil
	case TypeTXT:
		var ss []string
		for i := 0; i < len(body); {
			l := int(body[i])
			if i+1+l > len(body) {
				return nil, fmt.Errorf("%w: TXT string overruns rdata", ErrBadRData)
			}
			ss = append(ss, string(body[i+1:i+1+l]))
			i += 1 + l
		}
		if len(ss) == 0 {
			return nil, fmt.Errorf("%w: empty TXT rdata", ErrBadRData)
		}
		return TXTRData{Strings: ss}, nil
	case TypeCNAME:
		n, end, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		if end != off+rdlen {
			return nil, fmt.Errorf("%w: CNAME rdata length mismatch", ErrBadRData)
		}
		return CNAMERData{Target: n}, nil
	case TypeNS:
		n, end, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		if end != off+rdlen {
			return nil, fmt.Errorf("%w: NS rdata length mismatch", ErrBadRData)
		}
		return NSRData{Host: n}, nil
	case TypePTR:
		n, end, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		if end != off+rdlen {
			return nil, fmt.Errorf("%w: PTR rdata length mismatch", ErrBadRData)
		}
		return PTRRData{Target: n}, nil
	case TypeMX:
		if rdlen < 3 {
			return nil, fmt.Errorf("%w: MX rdlength %d", ErrBadRData, rdlen)
		}
		pref := binary.BigEndian.Uint16(body[0:2])
		n, end, err := unpackName(msg, off+2)
		if err != nil {
			return nil, err
		}
		if end != off+rdlen {
			return nil, fmt.Errorf("%w: MX rdata length mismatch", ErrBadRData)
		}
		return MXRData{Preference: pref, Host: n}, nil
	case TypeSOA:
		mname, p, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		rname, p, err := unpackName(msg, p)
		if err != nil {
			return nil, err
		}
		if p+20 != off+rdlen {
			return nil, fmt.Errorf("%w: SOA rdata length mismatch", ErrBadRData)
		}
		return SOARData{
			MName:   mname,
			RName:   rname,
			Serial:  binary.BigEndian.Uint32(msg[p : p+4]),
			Refresh: binary.BigEndian.Uint32(msg[p+4 : p+8]),
			Retry:   binary.BigEndian.Uint32(msg[p+8 : p+12]),
			Expire:  binary.BigEndian.Uint32(msg[p+12 : p+16]),
			Minimum: binary.BigEndian.Uint32(msg[p+16 : p+20]),
		}, nil
	case TypeOPT:
		return OPTRData{Options: append([]byte(nil), body...)}, nil
	case TypeDNSKEY, TypeDS, TypeRRSIG:
		return unpackDNSSECRData(msg, off, rdlen, typ)
	default:
		return RawRData{RRType: typ, Data: append([]byte(nil), body...)}, nil
	}
}
