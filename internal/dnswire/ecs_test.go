package dnswire

import (
	"net/netip"
	"testing"
)

func TestECSRoundTrip(t *testing.T) {
	cases := []string{"96.120.1.0/24", "10.0.0.0/8", "2601:db00::/48", "192.0.2.1/32"}
	for _, c := range cases {
		q := NewQuery(1, "o-o.myaddr.l.google.com", TypeTXT, ClassINET)
		prefix := netip.MustParsePrefix(c)
		q.SetECS(prefix)
		wire := MustPack(q)
		got, err := Unpack(wire)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		ecs, ok := got.ClientSubnet()
		if !ok {
			t.Fatalf("%s: option lost", c)
		}
		if ecs.Prefix != prefix.Masked() {
			t.Errorf("%s: got %s", c, ecs.Prefix)
		}
	}
}

func TestECSOnExistingOPT(t *testing.T) {
	q := NewQuery(2, "example.com", TypeA, ClassINET)
	q.SetEDNS(4096, true)
	q.SetECS(netip.MustParsePrefix("198.51.100.0/24"))
	if !q.DO() {
		t.Error("adding ECS dropped the DO bit")
	}
	got, err := Unpack(MustPack(q))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.ClientSubnet(); !ok {
		t.Error("ECS lost")
	}
	if !got.DO() {
		t.Error("DO lost")
	}
	// Exactly one OPT record.
	opts := 0
	for _, rr := range got.Additional {
		if rr.Type() == TypeOPT {
			opts++
		}
	}
	if opts != 1 {
		t.Errorf("OPT records = %d", opts)
	}
}

func TestECSAbsent(t *testing.T) {
	q := NewQuery(3, "example.com", TypeA, ClassINET)
	if _, ok := q.ClientSubnet(); ok {
		t.Error("phantom ECS")
	}
	q.SetEDNS(512, false)
	if _, ok := q.ClientSubnet(); ok {
		t.Error("phantom ECS on plain OPT")
	}
}

func TestECSMalformedOptionsIgnored(t *testing.T) {
	q := NewQuery(4, "example.com", TypeA, ClassINET)
	q.Additional = append(q.Additional, Record{
		Name: "", Class: Class(4096), TTL: 0,
		Data: OPTRData{Options: []byte{0, 8, 0, 99}}, // length overruns
	})
	if _, ok := q.ClientSubnet(); ok {
		t.Error("malformed option parsed")
	}
}

func TestECSString(t *testing.T) {
	e := ECS{Prefix: netip.MustParsePrefix("96.120.0.0/16")}
	if e.String() != "96.120.0.0/16" {
		t.Errorf("String = %q", e)
	}
}
