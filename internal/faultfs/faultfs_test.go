package faultfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
)

// writeAll opens path through fsys, writes blob, syncs, and closes,
// returning the first error.
func writeAll(fsys FS, path string, blob []byte) error {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	return f.Close()
}

// TestOSPassthrough: the OS implementation is a faithful filesystem —
// write, sync, rename, dir sync, remove.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	fsys := OS{}
	tmp := filepath.Join(dir, "a.tmp")
	final := filepath.Join(dir, "a")
	if err := writeAll(fsys, tmp, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(final)
	if err != nil || string(blob) != "hello" {
		t.Fatalf("read back %q, %v", blob, err)
	}
	if err := fsys.Remove(final); err != nil {
		t.Fatal(err)
	}
	if err := fsys.MkdirAll(filepath.Join(dir, "x/y"), 0o755); err != nil {
		t.Fatal(err)
	}
}

// TestFaultDeterminism: with the same seed and the same per-path
// operation sequence, the injected fault pattern — including torn-write
// prefix lengths — is identical run over run; a different seed
// diverges. (The schedule hashes the full path, so both runs share one
// directory.)
func TestFaultDeterminism(t *testing.T) {
	dir := t.TempDir()
	exact := func(seed int64) (errs []string, sizes []int64) {
		fsys := New(Schedule{Seed: seed, Rates: map[Class]float64{
			TornWrite: 0.3, WriteEIO: 0.2, SyncFail: 0.2,
		}})
		for i := 0; i < 20; i++ {
			path := filepath.Join(dir, "f")
			err := writeAll(fsys, path, bytes.Repeat([]byte("x"), 100))
			if err != nil {
				errs = append(errs, err.Error())
			} else {
				errs = append(errs, "")
			}
			st, serr := os.Stat(path)
			if serr != nil {
				t.Fatal(serr)
			}
			sizes = append(sizes, st.Size())
		}
		return
	}
	ea, sa := exact(7)
	eb, sb := exact(7)
	for i := range ea {
		if ea[i] != eb[i] || sa[i] != sb[i] {
			t.Fatalf("op %d diverged between identical-seed runs: (%q,%d) vs (%q,%d)",
				i, ea[i], sa[i], eb[i], sb[i])
		}
	}
	ec, _ := exact(8)
	same := true
	for i := range ea {
		if ea[i] != ec[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 injected identical fault patterns over 20 ops — schedule ignores the seed")
	}
}

// TestFaultClasses: each class fires with its documented error and
// side effect when its rate is 1.0.
func TestFaultClasses(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")

	t.Run("enospc", func(t *testing.T) {
		fsys := New(Schedule{Seed: 1, Rates: map[Class]float64{WriteENOSPC: 1}})
		err := writeAll(fsys, path, []byte("data"))
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("want ENOSPC, got %v", err)
		}
		if got := fsys.Counts()[WriteENOSPC]; got == 0 {
			t.Error("ENOSPC not counted")
		}
	})
	t.Run("eio", func(t *testing.T) {
		fsys := New(Schedule{Seed: 1, Rates: map[Class]float64{WriteEIO: 1}})
		err := writeAll(fsys, path, []byte("data"))
		if !errors.Is(err, syscall.EIO) {
			t.Fatalf("want EIO, got %v", err)
		}
		if errors.Is(err, syscall.ENOSPC) {
			t.Error("EIO must not classify as ENOSPC")
		}
	})
	t.Run("torn-write", func(t *testing.T) {
		fsys := New(Schedule{Seed: 3, Rates: map[Class]float64{TornWrite: 1}})
		err := writeAll(fsys, path, bytes.Repeat([]byte("y"), 1000))
		if !errors.Is(err, syscall.EIO) {
			t.Fatalf("want EIO from torn write, got %v", err)
		}
		st, serr := os.Stat(path)
		if serr != nil {
			t.Fatal(serr)
		}
		if st.Size() >= 1000 {
			t.Errorf("torn write landed all %d bytes", st.Size())
		}
	})
	t.Run("sync-fail", func(t *testing.T) {
		fsys := New(Schedule{Seed: 1, Rates: map[Class]float64{SyncFail: 1}})
		err := writeAll(fsys, path, []byte("data"))
		if !errors.Is(err, syscall.EIO) {
			t.Fatalf("want EIO from sync, got %v", err)
		}
		if err := fsys.SyncDir(dir); !errors.Is(err, syscall.EIO) {
			t.Fatalf("want EIO from dir sync, got %v", err)
		}
	})
	t.Run("rename-fail", func(t *testing.T) {
		fsys := New(Schedule{Seed: 1, Rates: map[Class]float64{RenameFail: 1}})
		if err := writeAll(fsys, path, []byte("data")); err != nil {
			t.Fatal(err)
		}
		if err := fsys.Rename(path, path+".2"); !errors.Is(err, syscall.EIO) {
			t.Fatalf("want EIO from rename, got %v", err)
		}
		if _, err := os.Stat(path); err != nil {
			t.Error("failed rename must leave the old path intact")
		}
	})
	t.Run("zero-rates-clean", func(t *testing.T) {
		fsys := New(Schedule{Seed: 1})
		for i := 0; i < 50; i++ {
			if err := writeAll(fsys, path, []byte("data")); err != nil {
				t.Fatalf("zero-rate schedule faulted: %v", err)
			}
		}
		if n := len(fsys.Counts()); n != 0 {
			t.Errorf("zero-rate schedule counted %d fault classes", n)
		}
	})
}

// TestFaultConcurrentPaths: concurrent writers on disjoint paths see
// the same per-path fault pattern as serial writers — goroutine
// interleaving must not move faults between files.
func TestFaultConcurrentPaths(t *testing.T) {
	dir := t.TempDir()
	sched := Schedule{Seed: 11, Rates: map[Class]float64{TornWrite: 0.25, WriteEIO: 0.25}}
	const paths, opsPer = 8, 12

	collect := func(parallel bool) [][]bool {
		fsys := New(sched)
		out := make([][]bool, paths)
		var wg sync.WaitGroup
		for p := 0; p < paths; p++ {
			out[p] = make([]bool, opsPer)
			run := func(p int) {
				for i := 0; i < opsPer; i++ {
					err := writeAll(fsys, filepath.Join(dir, "shard-"+string(rune('a'+p))), []byte("0123456789"))
					out[p][i] = err != nil
				}
			}
			if parallel {
				wg.Add(1)
				go func(p int) { defer wg.Done(); run(p) }(p)
			} else {
				run(p)
			}
		}
		wg.Wait()
		return out
	}

	serial := collect(false)
	conc := collect(true)
	for p := range serial {
		for i := range serial[p] {
			if serial[p][i] != conc[p][i] {
				t.Fatalf("path %d op %d: serial fault=%v, concurrent fault=%v — schedule depends on interleaving",
					p, i, serial[p][i], conc[p][i])
			}
		}
	}
}

// TestCorruptionHelpers: bit flips, tail truncation, and garbage
// appends mutate files the way the torture harness expects.
func TestCorruptionHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("abcdef\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 17); err != nil {
		t.Fatal(err)
	}
	blob, _ := os.ReadFile(path)
	if string(blob) == "abcdef\n" {
		t.Error("FlipBit changed nothing")
	}
	if len(blob) != 7 {
		t.Errorf("FlipBit changed the length: %d", len(blob))
	}
	if err := TruncateTail(path, 3); err != nil {
		t.Fatal(err)
	}
	if st, _ := os.Stat(path); st.Size() != 4 {
		t.Errorf("TruncateTail(3) left %d bytes, want 4", st.Size())
	}
	if err := TruncateTail(path, 1000); err != nil {
		t.Fatal(err)
	}
	if st, _ := os.Stat(path); st.Size() != 0 {
		t.Errorf("over-long TruncateTail left %d bytes", st.Size())
	}
	if err := AppendGarbage(path, []byte(`{"probe_id":12,"cou`)); err != nil {
		t.Fatal(err)
	}
	blob, _ = os.ReadFile(path)
	if string(blob) != `{"probe_id":12,"cou` {
		t.Errorf("AppendGarbage left %q", blob)
	}
	// Missing files: FlipBit and TruncateTail are no-ops.
	missing := filepath.Join(dir, "missing")
	if err := FlipBit(missing, 3); err != nil {
		t.Errorf("FlipBit on missing file: %v", err)
	}
	if err := TruncateTail(missing, 3); err != nil {
		t.Errorf("TruncateTail on missing file: %v", err)
	}
}
