// Package faultfs is the storage fault-injection plane under the study
// pipeline's checkpoint and sink I/O. FS is the narrow write-side
// filesystem surface those layers need; OS passes straight through to
// the real filesystem, and Fault wraps any FS with a deterministic
// schedule of injected failures — torn writes, EIO, ENOSPC, failed and
// slow fsyncs — so every crash-recovery path has a reproducible trigger
// in CI instead of waiting for real hardware to misbehave.
//
// Determinism contract: whether an operation faults depends only on the
// schedule seed, the file's path, the fault class, and how many
// fault-eligible operations that path has seen — never on goroutine
// interleaving or wall-clock time. Shards touch disjoint files, so a
// 4-shard run under a Fault FS injects the same faults at the same
// byte offsets on every execution with the same seed, which is what
// lets the crash-torture harness demand byte-identical output.
//
// Post-crash bit rot is modeled separately: FlipBit, TruncateTail, and
// AppendGarbage corrupt files in place between runs, driven by the
// harness's own seeded RNG rather than the per-operation schedule.
package faultfs

import (
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
	"sort"
	"sync"
	"syscall"
	"time"
)

// File is the write-side file handle the study pipeline uses: append
// bytes, force them to stable storage, release. *os.File satisfies it.
type File interface {
	io.Writer
	// Sync flushes the file's written data to stable storage (fsync).
	Sync() error
	Close() error
}

// FS is the filesystem surface under checkpoint and sink writes. Every
// operation that can lose or corrupt data on a real disk goes through
// it, so a fault implementation can reach them all.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string, perm fs.FileMode) error
	// SyncDir fsyncs a directory, making renames and creates within it
	// durable. (os.Rename alone only promises atomicity, not that the
	// new directory entry survives a power loss.)
	SyncDir(dir string) error
}

// OS is the passthrough FS over the real filesystem.
type OS struct{}

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

// SyncDir implements FS: open the directory and fsync it.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Class names one injectable fault kind. The string values appear in
// schedules, counters, and test assertions.
type Class string

const (
	// TornWrite writes only a schedule-chosen prefix of the buffer, then
	// fails with EIO — the on-disk state a power loss mid-write leaves.
	TornWrite Class = "torn_write"
	// WriteEIO fails a write with EIO before any byte lands (a transient
	// medium error; retrying may succeed).
	WriteEIO Class = "write_eio"
	// WriteENOSPC fails a write with ENOSPC before any byte lands (the
	// disk is full; retrying will not help).
	WriteENOSPC Class = "write_enospc"
	// SyncFail fails an fsync with EIO. The caller must assume none of
	// the file's recent writes are durable.
	SyncFail Class = "sync_fail"
	// SyncSlow delays an fsync by a schedule-chosen sub-millisecond-to-
	// few-millisecond pause, then succeeds — a congested device.
	SyncSlow Class = "sync_slow"
	// RenameFail fails a rename with EIO, leaving the old path intact.
	RenameFail Class = "rename_fail"
)

// classes is the deterministic evaluation order for each operation kind.
var writeClasses = []Class{TornWrite, WriteEIO, WriteENOSPC}

// Schedule is a deterministic fault plan: for each class, the fraction
// of eligible operations that fault. An operation's verdict is a pure
// function of (Seed, path, class, per-path operation index): class
// fires when fnv64a(seed‖path‖class‖opIndex) / 2^64 < rate. Rates of 0
// (or absent classes) never fire; 1 always fires.
type Schedule struct {
	Seed  int64
	Rates map[Class]float64
}

// Fault wraps an inner FS (nil means OS) and injects faults per a
// Schedule. Safe for concurrent use; the per-path operation counters
// are the only shared state.
type Fault struct {
	inner FS
	sched Schedule

	mu     sync.Mutex
	ops    map[string]uint64 // per-path fault-eligible op index
	counts map[Class]int64   // faults actually injected
}

// New returns a Fault FS over the real filesystem.
func New(sched Schedule) *Fault { return Wrap(OS{}, sched) }

// Wrap returns a Fault FS over inner (nil means OS).
func Wrap(inner FS, sched Schedule) *Fault {
	if inner == nil {
		inner = OS{}
	}
	return &Fault{
		inner:  inner,
		sched:  sched,
		ops:    make(map[string]uint64),
		counts: make(map[Class]int64),
	}
}

// Counts returns how many faults each class has injected so far.
func (f *Fault) Counts() map[Class]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[Class]int64, len(f.counts))
	for c, n := range f.counts {
		out[c] = n
	}
	return out
}

// CountsString renders the injection counts compactly, class-sorted.
func (f *Fault) CountsString() string {
	counts := f.Counts()
	keys := make([]string, 0, len(counts))
	for c := range counts {
		keys = append(keys, string(c))
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, counts[Class(k)])
	}
	return s
}

// nextOp advances and returns path's fault-eligible operation index.
func (f *Fault) nextOp(path string) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.ops[path]
	f.ops[path] = n + 1
	return n
}

// note records an injected fault.
func (f *Fault) note(c Class) {
	f.mu.Lock()
	f.counts[c]++
	f.mu.Unlock()
}

// roll is the deterministic fault die: a pure hash of (seed, path,
// class, op) mapped to [0, 1).
func roll(seed int64, path string, c Class, op uint64) float64 {
	h := fnv.New64a()
	var b [8]byte
	putUint64(b[:], uint64(seed))
	h.Write(b[:])         //nolint:errcheck // fnv never errors
	h.Write([]byte(path)) //nolint:errcheck
	h.Write([]byte(c))    //nolint:errcheck
	putUint64(b[:], op)
	h.Write(b[:]) //nolint:errcheck
	return float64(h.Sum64()>>11) / float64(1<<53)
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// fires reports whether class c faults on path's op-index op, and
// returns the residual hash fraction for secondary choices (torn-write
// prefix length, slow-sync delay).
func (f *Fault) fires(path string, c Class, op uint64) (bool, float64) {
	rate := f.sched.Rates[c]
	if rate <= 0 {
		return false, 0
	}
	r := roll(f.sched.Seed, path, c, op)
	if r >= rate {
		return false, 0
	}
	f.note(c)
	return true, r / rate
}

// pathErr wraps a syscall errno the way the os package would, so
// errors.Is(err, syscall.ENOSPC) works on injected faults.
func pathErr(op, path string, errno syscall.Errno) error {
	return &fs.PathError{Op: op, Path: path, Err: errno}
}

// OpenFile implements FS, wrapping the handle so writes and syncs
// consult the schedule.
func (f *Fault) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: inner}, nil
}

// Rename implements FS.
func (f *Fault) Rename(oldpath, newpath string) error {
	if ok, _ := f.fires(newpath, RenameFail, f.nextOp(newpath)); ok {
		return pathErr("rename", newpath, syscall.EIO)
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS (never faulted: removal is recovery machinery).
func (f *Fault) Remove(name string) error { return f.inner.Remove(name) }

// MkdirAll implements FS (never faulted).
func (f *Fault) MkdirAll(dir string, perm fs.FileMode) error { return f.inner.MkdirAll(dir, perm) }

// SyncDir implements FS; SyncFail applies to directories too.
func (f *Fault) SyncDir(dir string) error {
	op := f.nextOp(dir)
	if ok, _ := f.fires(dir, SyncFail, op); ok {
		return pathErr("sync", dir, syscall.EIO)
	}
	if ok, frac := f.fires(dir, SyncSlow, op); ok {
		time.Sleep(slowSyncDelay(frac))
	}
	return f.inner.SyncDir(dir)
}

// faultFile consults the schedule on every write and sync.
type faultFile struct {
	fs    *Fault
	name  string
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	op := ff.fs.nextOp(ff.name)
	for _, c := range writeClasses {
		ok, frac := ff.fs.fires(ff.name, c, op)
		if !ok {
			continue
		}
		switch c {
		case TornWrite:
			// Land a strict prefix, then fail — the write tore.
			keep := int(frac * float64(len(p)))
			if keep >= len(p) {
				keep = len(p) - 1
			}
			if keep < 0 {
				keep = 0
			}
			n, werr := ff.inner.Write(p[:keep])
			if werr != nil {
				return n, werr
			}
			return n, pathErr("write", ff.name, syscall.EIO)
		case WriteEIO:
			return 0, pathErr("write", ff.name, syscall.EIO)
		case WriteENOSPC:
			return 0, pathErr("write", ff.name, syscall.ENOSPC)
		}
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	op := ff.fs.nextOp(ff.name)
	if ok, _ := ff.fs.fires(ff.name, SyncFail, op); ok {
		return pathErr("sync", ff.name, syscall.EIO)
	}
	if ok, frac := ff.fs.fires(ff.name, SyncSlow, op); ok {
		time.Sleep(slowSyncDelay(frac))
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }

// slowSyncDelay maps a hash fraction to a 200µs–2.2ms pause — long
// enough to shuffle goroutine interleavings, short enough for CI.
func slowSyncDelay(frac float64) time.Duration {
	return 200*time.Microsecond + time.Duration(frac*float64(2*time.Millisecond))
}

// --- Post-crash corruption helpers (bit rot, torn tails) --------------
//
// These mutate files in place between pipeline runs; the crash-torture
// harness drives them from its own seeded RNG. They use the real
// filesystem directly — corruption is the *input* to recovery, not an
// operation under test.

// FlipBit flips one bit of path, chosen by bit modulo the file's bit
// length. Flipping a bit in a checksummed checkpoint or a sink row is
// the classic silent-bit-rot failure. Empty and missing files are
// no-ops (nothing to rot).
func FlipBit(path string, bit uint64) error {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) || (err == nil && len(blob) == 0) {
		return nil
	}
	if err != nil {
		return err
	}
	i := bit % uint64(len(blob)*8)
	blob[i/8] ^= 1 << (i % 8)
	return os.WriteFile(path, blob, 0o644)
}

// TruncateTail removes the last n bytes of path (clamped to the file's
// size) — the torn tail a crash mid-append leaves. Missing files are
// no-ops.
func TruncateTail(path string, n int) error {
	st, err := os.Stat(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	keep := st.Size() - int64(n)
	if keep < 0 {
		keep = 0
	}
	return os.Truncate(path, keep)
}

// AppendGarbage appends raw bytes to path — a partial record flushed
// just before a crash. Missing files are created.
func AppendGarbage(path string, garbage []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(garbage)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
