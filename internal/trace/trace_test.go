package trace_test

import (
	"net/netip"
	"strings"
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/homelab"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/trace"
)

// runOneQuery drives one intercepted exchange through an XB6 lab with a
// capture attached.
func runOneQuery(t *testing.T, filter trace.Filter, max int) *trace.Capture {
	t.Helper()
	lab := homelab.New(homelab.XB6)
	cap := trace.New(lab.Net, filter, max)
	q := dnswire.NewQuery(77, "google.com", dnswire.TypeA, dnswire.ClassINET)
	_, err := lab.Probe.Exchange(lab.Net,
		netip.MustParseAddrPort("8.8.8.8:53"),
		dnswire.MustPack(q), netsim.ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return cap
}

func TestCaptureNATEvents(t *testing.T) {
	cap := runOneQuery(t, trace.NATEvents, 0)
	if cap.Count(trace.Kind(netsim.TraceDNAT)) != 1 {
		t.Errorf("dnat events = %d, want 1", cap.Count(trace.Kind(netsim.TraceDNAT)))
	}
	if cap.Count(trace.Kind(netsim.TraceUnDNAT)) != 1 {
		t.Errorf("undnat events = %d, want 1", cap.Count(trace.Kind(netsim.TraceUnDNAT)))
	}
	ev, ok := cap.First(trace.Kind(netsim.TraceUnDNAT))
	if !ok || !strings.Contains(ev.Note, "spoof") {
		t.Errorf("first undnat = %+v", ev)
	}
}

func TestCaptureFilterComposition(t *testing.T) {
	cap := runOneQuery(t, trace.And(
		trace.Device("xb6"),
		trace.Or(trace.Kind(netsim.TraceDNAT), trace.Kind(netsim.TraceDeliver)),
	), 0)
	if cap.Len() == 0 {
		t.Fatal("composed filter captured nothing")
	}
	for _, e := range cap.Events() {
		if !strings.Contains(e.Device, "xb6") {
			t.Errorf("captured foreign device %s", e.Device)
		}
	}
}

func TestCaptureAddrAndPortFilters(t *testing.T) {
	cap := runOneQuery(t, trace.And(
		trace.Addr(netip.MustParseAddr("8.8.8.8")),
		trace.Port(53),
	), 0)
	if cap.Len() == 0 {
		t.Fatal("addr+port filter captured nothing")
	}
}

func TestCaptureRingBufferBounds(t *testing.T) {
	cap := runOneQuery(t, trace.All, 5)
	if cap.Len() != 5 {
		t.Errorf("buffer = %d, want 5", cap.Len())
	}
	if cap.Dropped == 0 {
		t.Error("no drops recorded despite tiny buffer")
	}
	if !strings.Contains(cap.String(), "earlier events dropped") {
		t.Error("drop note missing from rendering")
	}
	cap.Reset()
	if cap.Len() != 0 || cap.Dropped != 0 {
		t.Error("reset incomplete")
	}
}

func TestCaptureRendering(t *testing.T) {
	cap := runOneQuery(t, trace.NATEvents, 0)
	s := cap.String()
	for _, want := range []string{"dnat", "intercepted", "spoofing"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}
