// Package trace is the simulator's tcpdump: a capture buffer that taps
// a netsim.Network, with composable filters, a bounded ring buffer, and
// text rendering. The XB6 case study uses it to show the DNAT rewrite
// and the spoofed response; tests use it to assert path properties.
package trace

import (
	"fmt"
	"net/netip"
	"strings"

	"github.com/dnswatch/dnsloc/internal/netsim"
)

// Filter decides whether an event is captured.
type Filter func(netsim.TraceEvent) bool

// All captures everything.
func All(netsim.TraceEvent) bool { return true }

// Kind captures only the given event kinds.
func Kind(kinds ...netsim.TraceKind) Filter {
	set := make(map[netsim.TraceKind]bool, len(kinds))
	for _, k := range kinds {
		set[k] = true
	}
	return func(e netsim.TraceEvent) bool { return set[e.Kind] }
}

// Device captures events at devices whose name contains substr.
func Device(substr string) Filter {
	return func(e netsim.TraceEvent) bool { return strings.Contains(e.Device, substr) }
}

// Port captures packets with the given source or destination port.
func Port(port uint16) Filter {
	return func(e netsim.TraceEvent) bool {
		return e.Packet.Src.Port() == port || e.Packet.Dst.Port() == port
	}
}

// Addr captures packets touching the address.
func Addr(a netip.Addr) Filter {
	return func(e netsim.TraceEvent) bool {
		return e.Packet.Src.Addr() == a || e.Packet.Dst.Addr() == a
	}
}

// NATEvents captures the interception-relevant rewrites.
func NATEvents(e netsim.TraceEvent) bool {
	switch e.Kind {
	case netsim.TraceDNAT, netsim.TraceUnDNAT, netsim.TraceSNAT, netsim.TraceUnSNAT:
		return true
	}
	return false
}

// And requires every filter to match.
func And(filters ...Filter) Filter {
	return func(e netsim.TraceEvent) bool {
		for _, f := range filters {
			if !f(e) {
				return false
			}
		}
		return true
	}
}

// Or requires any filter to match.
func Or(filters ...Filter) Filter {
	return func(e netsim.TraceEvent) bool {
		for _, f := range filters {
			if f(e) {
				return true
			}
		}
		return false
	}
}

// Capture is a bounded buffer of matching events.
type Capture struct {
	filter Filter
	max    int
	events []netsim.TraceEvent
	// Dropped counts events evicted after the buffer filled.
	Dropped int
}

// New attaches a capture to a network. A nil filter captures all; max
// bounds the buffer (0 = 4096), older events are dropped first.
func New(n *netsim.Network, filter Filter, max int) *Capture {
	if filter == nil {
		filter = All
	}
	if max <= 0 {
		max = 4096
	}
	c := &Capture{filter: filter, max: max}
	n.Tap(func(e netsim.TraceEvent) {
		if !c.filter(e) {
			return
		}
		if len(c.events) >= c.max {
			c.events = c.events[1:]
			c.Dropped++
		}
		c.events = append(c.events, e)
	})
	return c
}

// Events returns the captured events in order.
func (c *Capture) Events() []netsim.TraceEvent {
	return append([]netsim.TraceEvent(nil), c.events...)
}

// Len returns the number of buffered events.
func (c *Capture) Len() int { return len(c.events) }

// Reset clears the buffer.
func (c *Capture) Reset() {
	c.events = c.events[:0]
	c.Dropped = 0
}

// Count returns how many buffered events match an additional filter.
func (c *Capture) Count(f Filter) int {
	n := 0
	for _, e := range c.events {
		if f(e) {
			n++
		}
	}
	return n
}

// First returns the first event matching f, if any.
func (c *Capture) First(f Filter) (netsim.TraceEvent, bool) {
	for _, e := range c.events {
		if f(e) {
			return e, true
		}
	}
	return netsim.TraceEvent{}, false
}

// String renders the capture log.
func (c *Capture) String() string {
	var sb strings.Builder
	for _, e := range c.events {
		sb.WriteString(e.String())
		sb.WriteString("\n")
	}
	if c.Dropped > 0 {
		fmt.Fprintf(&sb, "(%d earlier events dropped)\n", c.Dropped)
	}
	return sb.String()
}
