package isp

import (
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

func addr(s string) netip.Addr  { return netip.MustParseAddr(s) }
func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func testConfig() Config {
	return Config{
		ASN: 7922, Name: "Comcast", Country: "US",
		Region:          publicdns.RegionNA,
		PrefixV4:        pfx("96.120.0.0/16"),
		PrefixV6:        pfx("2601:db00::/48"),
		ResolverPersona: dnsserver.PersonaUnbound,
		RootHints:       []netip.Addr{addr("198.41.0.4")},
	}
}

func TestBuildAddressing(t *testing.T) {
	n := Build(testConfig(), netsim.NewRouter("uplink"))
	if n.ResolverAddr != addr("96.120.0.53") {
		t.Errorf("resolver addr = %s", n.ResolverAddr)
	}
	if n.RefusingAddr != addr("96.120.0.54") {
		t.Errorf("refusing addr = %s", n.RefusingAddr)
	}
	if !n.ResolverAddr6.IsValid() || !pfx("2601:db00::/56").Contains(n.ResolverAddr6) {
		t.Errorf("resolver v6 = %s", n.ResolverAddr6)
	}
	if n.ResolverAddrPort() != netip.AddrPortFrom(n.ResolverAddr, 53) {
		t.Error("ResolverAddrPort mismatch")
	}
}

func TestBuildWithoutV6(t *testing.T) {
	cfg := testConfig()
	cfg.PrefixV6 = netip.Prefix{}
	n := Build(cfg, netsim.NewRouter("uplink"))
	if n.ResolverAddr6.IsValid() {
		t.Errorf("v6 resolver built without a v6 allocation: %s", n.ResolverAddr6)
	}
}

func TestSegmentsGetDistinctPrefixes(t *testing.T) {
	n := Build(testConfig(), netsim.NewRouter("uplink"))
	s1 := n.AddSegment(nil)
	s2 := n.AddSegment(nil)
	if s1.PrefixV4 == s2.PrefixV4 {
		t.Errorf("segments share prefix %s", s1.PrefixV4)
	}
	if s1.PrefixV4.Overlaps(pfx("96.120.0.0/24")) {
		t.Error("segment overlaps resolver infrastructure /24")
	}
	if s1.PrefixV6 == s2.PrefixV6 {
		t.Errorf("segments share v6 prefix %s", s1.PrefixV6)
	}
}

func TestAllocHomeDistinctAddresses(t *testing.T) {
	n := Build(testConfig(), netsim.NewRouter("uplink"))
	seg := n.AddSegment(nil)
	h1 := n.AllocHome(seg, true)
	h2 := n.AllocHome(seg, true)
	if h1.WANv4 == h2.WANv4 {
		t.Errorf("homes share WAN %s", h1.WANv4)
	}
	if !seg.PrefixV4.Contains(h1.WANv4) {
		t.Errorf("home WAN %s outside segment %s", h1.WANv4, seg.PrefixV4)
	}
	if h1.LANPrefix6 == h2.LANPrefix6 {
		t.Errorf("homes share /64 %s", h1.LANPrefix6)
	}
	if !seg.PrefixV6.Contains(h1.LANPrefix6.Addr()) {
		t.Errorf("home /64 %s outside segment %s", h1.LANPrefix6, seg.PrefixV6)
	}
	h3 := n.AllocHome(seg, false)
	if h3.WANv6.IsValid() || h3.LANPrefix6.IsValid() {
		t.Error("v4-only home got v6 addressing")
	}
}

func TestMiddleboxRuleCompilation(t *testing.T) {
	n := Build(testConfig(), netsim.NewRouter("uplink"))
	g := publicdns.Lookup(publicdns.Google)

	seg := n.AddSegment(&MiddleboxSpec{
		Rules:           []MiddleboxRule{{Targets: g.V4}},
		InterceptBogons: true,
	})
	if seg.Router.NAT == nil {
		t.Fatal("no NAT on middlebox segment")
	}
	// Two rules: the target rule plus the implicit bogon rule.
	if len(seg.Router.NAT.DNATRules) != 2 {
		t.Fatalf("rules = %d, want 2", len(seg.Router.NAT.DNATRules))
	}
	target := seg.Router.NAT.DNATRules[0]
	pkt := netsim.Packet{Proto: netsim.UDP, Src: netip.MustParseAddrPort("96.120.1.1:4000")}
	pkt.Dst = netip.AddrPortFrom(g.V4[0], 53)
	if !target.Match(pkt) {
		t.Error("target rule missed google")
	}
	pkt.Dst = netip.MustParseAddrPort("1.1.1.1:53")
	if target.Match(pkt) {
		t.Error("target rule matched cloudflare")
	}
	// Queries already addressed to the ISP resolver must pass.
	pkt.Dst = netip.AddrPortFrom(n.ResolverAddr, 53)
	if target.Match(pkt) {
		t.Error("rule matched the ISP resolver itself")
	}
	// Bogons are excluded from regular rules, matched by the implicit one.
	pkt.Dst = netip.MustParseAddrPort("192.0.2.53:53")
	if target.Match(pkt) {
		t.Error("regular rule matched a bogon")
	}
	if !seg.Router.NAT.DNATRules[1].Match(pkt) {
		t.Error("implicit bogon rule missed")
	}
	// Non-53 ports pass everything.
	pkt.Dst = netip.MustParseAddrPort("192.0.2.53:443")
	if seg.Router.NAT.DNATRules[1].Match(pkt) {
		t.Error("bogon rule matched port 443")
	}
}

func TestHiddenMiddleboxHasNoBogonRule(t *testing.T) {
	n := Build(testConfig(), netsim.NewRouter("uplink"))
	seg := n.AddSegment(&MiddleboxSpec{Rules: []MiddleboxRule{{All: true}}})
	if len(seg.Router.NAT.DNATRules) != 1 {
		t.Fatalf("rules = %d, want 1", len(seg.Router.NAT.DNATRules))
	}
	pkt := netsim.Packet{
		Proto: netsim.UDP,
		Src:   netip.MustParseAddrPort("96.120.1.1:4000"),
		Dst:   netip.MustParseAddrPort("192.0.2.53:53"),
	}
	if seg.Router.NAT.DNATRules[0].Match(pkt) {
		t.Error("hidden middlebox matched a bogon destination")
	}
}

func TestRefusingRuleTargetsRefusingResolver(t *testing.T) {
	n := Build(testConfig(), netsim.NewRouter("uplink"))
	seg := n.AddSegment(&MiddleboxSpec{Rules: []MiddleboxRule{{All: true, UseRefusing: true}}})
	if got := seg.Router.NAT.DNATRules[0].To; got != netip.AddrPortFrom(n.RefusingAddr, 53) {
		t.Errorf("refusing rule targets %s", got)
	}
}

func TestV6RuleNeedsV6Allocation(t *testing.T) {
	cfg := testConfig()
	cfg.PrefixV6 = netip.Prefix{}
	n := Build(cfg, netsim.NewRouter("uplink"))
	defer func() {
		if recover() == nil {
			t.Error("v6 rule without v6 allocation did not panic")
		}
	}()
	n.AddSegment(&MiddleboxSpec{Rules: []MiddleboxRule{{All: true, V6: true}}})
}

func TestV6RuleTargetsV6Resolver(t *testing.T) {
	n := Build(testConfig(), netsim.NewRouter("uplink"))
	g := publicdns.Lookup(publicdns.Google)
	seg := n.AddSegment(&MiddleboxSpec{Rules: []MiddleboxRule{{Targets: g.V6, V6: true}}})
	rule := seg.Router.NAT.DNATRules[0]
	if rule.To != netip.AddrPortFrom(n.ResolverAddr6, 53) {
		t.Errorf("v6 rule targets %s", rule.To)
	}
	pkt := netsim.Packet{
		Proto: netsim.UDP,
		Src:   netip.MustParseAddrPort("[2601:db00:0:100::2]:4000"),
		Dst:   netip.AddrPortFrom(g.V6[0], 53),
	}
	if !rule.Match(pkt) {
		t.Error("v6 rule missed google v6")
	}
	pkt.Dst = netip.AddrPortFrom(g.V4[0], 53)
	if rule.Match(pkt) {
		t.Error("v6 rule matched a v4 destination")
	}
}

func TestSliceHelpersBounds(t *testing.T) {
	for _, fn := range []func(){
		func() { slice24(pfx("96.120.0.0/16"), 256) },
		func() { hostInPrefix4(pfx("96.120.0.0/16"), 0, 255) },
		func() { slice56(pfx("2601:db00::/48"), 300) },
		func() { slice64(pfx("2601:db00::/56"), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range slice did not panic")
				}
			}()
			fn()
		}()
	}
}
