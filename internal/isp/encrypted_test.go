package isp

import (
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/cpe"
	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

func ap(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }

// encHome is one home behind a middlebox segment: uplink -> ISP ->
// segment -> pass-through CPE -> host.
type encHome struct {
	net  *netsim.Network
	isp  *Network
	host *netsim.Host
}

func buildEncHome(t *testing.T, pol dnsserver.EncryptedPolicy) *encHome {
	t.Helper()
	w := &encHome{net: netsim.NewNetwork()}
	w.isp = Build(testConfig(), netsim.NewRouter("uplink"))
	seg := w.isp.AddSegment(&MiddleboxSpec{Encrypted: pol})
	home := w.isp.AllocHome(seg, false)
	d := cpe.Build(cpe.NewPlain("home-cpe", home.LANPrefix4, home.WANv4, w.isp.ResolverAddrPort()))
	w.isp.AttachCPE(seg, d, home)
	w.host = d.AttachHost("h", 0)
	if len(w.isp.Segments()) != 1 {
		t.Fatalf("%d segments, want 1", len(w.isp.Segments()))
	}
	return w
}

// TestSegmentEncryptedTerminate: a terminate middlebox DNATs foreign
// DoT sessions to the ISP resolver's stream endpoint, which handshakes
// behind an untrusted certificate and answers in-session with the
// resolver's persona — all spoofed back from the dialed address.
func TestSegmentEncryptedTerminate(t *testing.T) {
	w := buildEncHome(t, dnsserver.EncTerminate)

	pkts, err := w.host.Exchange(w.net, ap("9.9.9.9:853"), netsim.PackStreamHello(netsim.ALPNDoT),
		netsim.ExchangeOptions{Proto: netsim.TCP})
	if err != nil {
		t.Fatalf("hello through terminating segment: %v", err)
	}
	if pkts[0].Src != ap("9.9.9.9:853") {
		t.Errorf("helloAck source = %s, want spoofed 9.9.9.9:853", pkts[0].Src)
	}
	_, cert, ticket, ok := netsim.ParseStreamHelloAck(pkts[0].Payload)
	if !ok {
		t.Fatal("no helloAck")
	}
	if cert.Trusted || cert.Subject != w.isp.ResolverAddr {
		t.Errorf("cert = %+v, want the ISP resolver's untrusted one", cert)
	}

	framed, err := dnswire.AppendTCPFrame(nil, dnswire.MustPack(dnswire.NewChaosTXTQuery(1, "version.bind")))
	if err != nil {
		t.Fatal(err)
	}
	pkts, err = w.host.Exchange(w.net, ap("9.9.9.9:853"), netsim.PackStreamData(netsim.ALPNDoT, ticket, framed),
		netsim.ExchangeOptions{Proto: netsim.TCP})
	if err != nil {
		t.Fatalf("data frame through terminating segment: %v", err)
	}
	m, err := dnswire.Unpack(pkts[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if txt, ok := m.FirstTXT(); !ok || txt == "" {
		t.Error("terminated session did not answer with the ISP resolver persona")
	}
}

// TestSegmentEncryptedBlock: a blocking middlebox drops the stream —
// and leaves Do53 to the ISP's own resolver untouched.
func TestSegmentEncryptedBlock(t *testing.T) {
	w := buildEncHome(t, dnsserver.EncBlock)

	_, err := w.host.Exchange(w.net, ap("9.9.9.9:853"), netsim.PackStreamHello(netsim.ALPNDoT),
		netsim.ExchangeOptions{Proto: netsim.TCP})
	if err != netsim.ErrTimeout {
		t.Fatalf("DoT hello through blocking segment = %v, want ErrTimeout", err)
	}

	vb := dnswire.MustPack(dnswire.NewChaosTXTQuery(2, "version.bind"))
	resps, err := w.host.Exchange(w.net, w.isp.ResolverAddrPort(), vb, netsim.ExchangeOptions{})
	if err != nil {
		t.Fatalf("Do53 to the ISP resolver under block policy: %v", err)
	}
	m, err := dnswire.Unpack(resps[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if txt, ok := m.FirstTXT(); !ok || txt == "" {
		t.Error("ISP resolver stopped answering version.bind under the block policy")
	}
}

// TestSegmentEncryptedTerminateSparesResolverSessions: sessions dialed
// AT the ISP resolver itself are not re-DNATed — the rule only matches
// foreign destinations.
func TestSegmentEncryptedTerminateSparesResolverSessions(t *testing.T) {
	w := buildEncHome(t, dnsserver.EncTerminate)
	target := netip.AddrPortFrom(w.isp.ResolverAddr, netsim.PortDoT)
	pkts, err := w.host.Exchange(w.net, target, netsim.PackStreamHello(netsim.ALPNDoT),
		netsim.ExchangeOptions{Proto: netsim.TCP})
	if err != nil {
		t.Fatalf("direct DoT to the resolver: %v", err)
	}
	if pkts[0].Src != target {
		t.Errorf("response source = %s, want the resolver's own %s", pkts[0].Src, target)
	}
}
