// Package isp models an autonomous system operated by a residential
// ISP: a border router that peers with regional transit (and drops
// bogon-addressed packets at the edge, which is why bogon queries
// cannot escape the AS — §3.3), access segments that subscribers'
// CPE attach to, an in-AS recursive resolver, and optional transparent
// port-53 middleboxes on individual access segments.
package isp

import (
	"fmt"
	"net/netip"
	"time"

	"github.com/dnswatch/dnsloc/internal/bogon"
	"github.com/dnswatch/dnsloc/internal/cpe"
	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/dotsim"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// MiddleboxRule is one DNAT rule of an ISP interception middlebox.
type MiddleboxRule struct {
	// All intercepts every v4 port-53 destination (minus Except).
	All bool
	// Targets intercepts only these destinations (ignored when All).
	Targets []netip.Addr
	// Except exempts destinations when All is set.
	Except []netip.Addr
	// V6 applies the rule to IPv6 instead of IPv4.
	V6 bool
	// UseRefusing diverts to the ISP's refusing resolver instead of its
	// normal one — producing the "status modified" responses of §4.1.2.
	UseRefusing bool
	// Replicate also forwards the original query.
	Replicate bool
}

// MiddleboxSpec configures interception on one access segment.
type MiddleboxSpec struct {
	Rules []MiddleboxRule
	// InterceptBogons adds an implicit final rule that diverts
	// bogon-addressed port-53 queries to the ISP resolver — the
	// resolve-anything behaviour that lets the technique localize the
	// interceptor (§3.3). When false the middlebox ignores unroutable
	// destinations, the border drops them, and the probe can only
	// conclude "unknown".
	InterceptBogons bool
	// Encrypted is the segment's policy for DoT/DoH streams crossing
	// it: pass, block (forcing opportunistic clients down to port 53,
	// where Rules apply), or terminate at the ISP's own stream endpoint
	// behind an untrusted certificate.
	Encrypted dnsserver.EncryptedPolicy
}

// Config describes one ISP.
type Config struct {
	ASN     int
	Name    string
	Country string
	Region  publicdns.Region

	// PrefixV4 is the ISP's customer+infrastructure space (a /12 or
	// wider in practice; any size that fits the homes works here).
	PrefixV4 netip.Prefix
	// PrefixV6 is the ISP's v6 allocation, carved into /64s per home.
	PrefixV6 netip.Prefix

	// ResolverPersona fingerprints the ISP resolver.
	ResolverPersona dnsserver.ChaosPersona
	// RootHints seed the ISP resolver's iteration.
	RootHints []netip.Addr

	// Overflow supplies an extra v4 /16 (and v6 /48) once the primary
	// prefix's 255 segment slices are used up — large scaled worlds
	// outgrow a single /16. block counts up from 1 and each block hosts
	// the next 256 segments; the callback must be pure (same block, same
	// prefixes) and is also the hook for routing the new block into
	// whatever transit carries the primary prefixes. Without it,
	// exhausting the primary prefix panics.
	Overflow func(block int) (v4, v6 netip.Prefix)
}

// Network is a built ISP.
type Network struct {
	Config Config

	Border *netsim.Router

	// Resolver is the ISP's recursive resolver (the alternate resolver
	// interceptors divert to).
	Resolver      *dnsserver.RecursiveResolver
	ResolverRtr   *netsim.Router
	ResolverAddr  netip.Addr
	ResolverAddr6 netip.Addr // zero when the ISP has no v6 allocation

	// Refusing is a second resolver that answers everything with
	// REFUSED; middlebox rules may target it.
	Refusing      *dnsserver.RecursiveResolver
	RefusingAddr  netip.Addr
	RefusingAddr6 netip.Addr

	segments []*Segment
	nextHome int
}

// Segment is one access aggregation segment. CPE default-route to it;
// a segment with a middlebox intercepts its subscribers.
type Segment struct {
	Index     int
	Router    *netsim.Router
	Middlebox *MiddleboxSpec
	// PrefixV4 is the slice of ISP space this segment's homes use.
	PrefixV4 netip.Prefix
	PrefixV6 netip.Prefix
	homes    int
}

// Build creates the ISP's fixed infrastructure and attaches it to the
// uplink (regional transit) device.
func Build(cfg Config, uplink netsim.Device) *Network {
	n := &Network{Config: cfg}

	n.Border = netsim.NewRouter(fmt.Sprintf("as%d-border", cfg.ASN))
	n.Border.Delay = 2 * time.Millisecond
	n.Border.RouterID = hostInPrefix4(cfg.PrefixV4, 0, 254)
	// Egress: everything not in the ISP goes upstream, except bogons,
	// which have no route on the public Internet.
	n.Border.AddDefaultRouteFiltered(uplink, func(pkt netsim.Packet) (bool, string) {
		if bogon.Is(pkt.Dst.Addr()) {
			return true, "bogon destination has no route beyond the AS"
		}
		return false, ""
	})

	// Resolver infrastructure lives in the first /24 of ISP space.
	n.ResolverAddr = hostInPrefix4(cfg.PrefixV4, 0, 53)
	n.RefusingAddr = hostInPrefix4(cfg.PrefixV4, 0, 54)
	n.ResolverRtr = netsim.NewRouter(
		fmt.Sprintf("as%d-resolver", cfg.ASN), n.ResolverAddr, n.RefusingAddr)

	n.Resolver = dnsserver.NewRecursiveResolver(n.ResolverAddr, cfg.RootHints...)
	n.Resolver.Persona = cfg.ResolverPersona
	n.ResolverRtr.BindOn(n.ResolverAddr, 53, n.Resolver)

	n.Refusing = dnsserver.NewRecursiveResolver(n.RefusingAddr, cfg.RootHints...)
	n.Refusing.Persona = cfg.ResolverPersona
	n.Refusing.RefuseAll = dnswire.RCodeRefused
	n.ResolverRtr.BindOn(n.RefusingAddr, 53, n.Refusing)

	if cfg.PrefixV6.IsValid() {
		infra6 := slice56(cfg.PrefixV6, 0)
		n.ResolverAddr6 = hostInPrefix6(infra6, 0x53)
		n.RefusingAddr6 = hostInPrefix6(infra6, 0x54)
		n.ResolverRtr.AddAddr(n.ResolverAddr6)
		n.ResolverRtr.AddAddr(n.RefusingAddr6)
		n.ResolverRtr.BindOn(n.ResolverAddr6, 53, n.Resolver)
		n.ResolverRtr.BindOn(n.RefusingAddr6, 53, n.Refusing)
		n.Border.AddRoute(infra6, n.ResolverRtr)
	}

	// Stream endpoint for terminate-policy middleboxes: sessions DNATed
	// here are answered by the ISP resolver behind a certificate that
	// names the resolver but verifies for nobody.
	n.ResolverRtr.BindOn(n.ResolverAddr, netsim.PortDoT, &dnsserver.StreamEndpoint{
		Cert:  dotsim.Certificate{Subject: n.ResolverAddr},
		Inner: n.Resolver,
	})

	n.ResolverRtr.AddDefaultRoute(n.Border)
	n.Border.AddRoute(slice24(cfg.PrefixV4, 0), n.ResolverRtr)
	return n
}

// hostInPrefix6 returns a host address within a v6 prefix.
func hostInPrefix6(p netip.Prefix, host byte) netip.Addr {
	a := p.Addr().As16()
	a[15] = host
	return netip.AddrFrom16(a)
}

// ResolverAddrPort returns the ISP resolver endpoint CPE forwarders use.
func (n *Network) ResolverAddrPort() netip.AddrPort {
	return netip.AddrPortFrom(n.ResolverAddr, 53)
}

// AddSegment creates an access segment, optionally with a middlebox.
func (n *Network) AddSegment(mb *MiddleboxSpec) *Segment {
	idx := len(n.segments) + 1 // slice 0 is resolver infrastructure
	v4base, v6base, off := n.Config.PrefixV4, n.Config.PrefixV6, idx
	if idx > 255 {
		if n.Config.Overflow == nil {
			panic(fmt.Sprintf("isp: as%d exhausted %s at segment %d and has no Overflow allocator",
				n.Config.ASN, n.Config.PrefixV4, idx))
		}
		v4base, v6base = n.Config.Overflow(idx / 256)
		off = idx % 256 // overflow blocks have no infrastructure slice, so 0 is usable
	}
	seg := &Segment{
		Index:     idx,
		Router:    netsim.NewRouter(fmt.Sprintf("as%d-seg%d", n.Config.ASN, idx)),
		Middlebox: mb,
		PrefixV4:  slice24(v4base, off),
		PrefixV6:  slice56(v6base, off),
	}
	seg.Router.Delay = time.Millisecond
	seg.Router.RouterID = hostInPrefix4(seg.PrefixV4, 0, 254)
	seg.Router.AddDefaultRoute(n.Border)
	n.Border.AddRoute(seg.PrefixV4, seg.Router)
	if seg.PrefixV6.IsValid() {
		n.Border.AddRoute(seg.PrefixV6, seg.Router)
	}
	if mb != nil {
		seg.Router.NAT = netsim.NewNAT()
		for i, rule := range mb.Rules {
			seg.Router.NAT.AddDNAT(n.dnatRule(seg, i, rule))
		}
		switch mb.Encrypted {
		case dnsserver.EncBlock:
			seg.Router.AddInputFilter(func(pkt netsim.Packet) (bool, string) {
				if encryptedDNS(pkt) {
					return true, "middlebox blocks encrypted DNS"
				}
				return false, ""
			})
		case dnsserver.EncTerminate:
			seg.Router.NAT.AddDNAT(netsim.DNATRule{
				Name: fmt.Sprintf("as%d-seg%d-enc-terminate", n.Config.ASN, seg.Index),
				Match: func(pkt netsim.Packet) bool {
					return encryptedDNS(pkt) && pkt.Dst.Addr() != n.ResolverAddr
				},
				To: netip.AddrPortFrom(n.ResolverAddr, netsim.PortDoT),
			})
		}
		if mb.InterceptBogons {
			seg.Router.NAT.AddDNAT(netsim.DNATRule{
				Name: fmt.Sprintf("as%d-seg%d-bogons", n.Config.ASN, seg.Index),
				Match: func(pkt netsim.Packet) bool {
					return pkt.Proto == netsim.UDP && pkt.Dst.Port() == 53 &&
						!pkt.IsIPv6() && bogon.Is(pkt.Dst.Addr())
				},
				To: netip.AddrPortFrom(n.ResolverAddr, 53),
			})
		}
	}
	n.segments = append(n.segments, seg)
	return seg
}

// encryptedDNS matches DoT/DoH stream traffic.
func encryptedDNS(pkt netsim.Packet) bool {
	if pkt.Proto != netsim.TCP {
		return false
	}
	p := pkt.Dst.Port()
	return p == netsim.PortDoT || p == netsim.PortDoH
}

// dnatRule compiles a MiddleboxRule to a netsim DNAT rule. Regular rules
// never match bogon destinations — the implicit InterceptBogons rule
// handles those.
func (n *Network) dnatRule(seg *Segment, idx int, rule MiddleboxRule) netsim.DNATRule {
	to := n.ResolverAddr
	if rule.UseRefusing {
		to = n.RefusingAddr
	}
	if rule.V6 {
		to = n.ResolverAddr6
		if rule.UseRefusing {
			to = n.RefusingAddr6
		}
		if !to.IsValid() {
			panic(fmt.Sprintf("isp: as%d has a v6 middlebox rule but no v6 allocation", n.Config.ASN))
		}
	}
	match := func(pkt netsim.Packet) bool {
		if pkt.Proto != netsim.UDP || pkt.Dst.Port() != 53 {
			return false
		}
		if pkt.IsIPv6() != rule.V6 {
			return false
		}
		dst := pkt.Dst.Addr()
		if dst == n.ResolverAddr || dst == n.RefusingAddr ||
			dst == n.ResolverAddr6 || dst == n.RefusingAddr6 {
			return false // queries already bound for the ISP resolver
		}
		if bogon.Is(dst) {
			return false
		}
		if rule.All {
			for _, e := range rule.Except {
				if e == dst {
					return false
				}
			}
			return true
		}
		for _, t := range rule.Targets {
			if t == dst {
				return true
			}
		}
		return false
	}
	return netsim.DNATRule{
		Name:      fmt.Sprintf("as%d-seg%d-mb%d", n.Config.ASN, seg.Index, idx),
		Match:     match,
		To:        netip.AddrPortFrom(to, 53),
		Replicate: rule.Replicate,
	}
}

// HomeAddrs are the addresses allocated to one subscriber home.
type HomeAddrs struct {
	WANv4      netip.Addr
	LANPrefix4 netip.Prefix
	// V6 fields are zero for v4-only homes.
	WANv6      netip.Addr
	LANPrefix6 netip.Prefix
}

// AllocHome hands out addressing for the next home on a segment.
// withV6 gives the home a routed /64.
func (n *Network) AllocHome(seg *Segment, withV6 bool) HomeAddrs {
	seg.homes++
	n.nextHome++
	h := HomeAddrs{
		WANv4:      hostInPrefix4(seg.PrefixV4, 0, seg.homes),
		LANPrefix4: netip.MustParsePrefix("192.168.1.0/24"),
	}
	if withV6 && seg.PrefixV6.IsValid() {
		h.LANPrefix6 = slice64(seg.PrefixV6, seg.homes)
		// The CPE's notional WAN v6 is the /64's base address; hosts and
		// the CPE LAN address are offsets above it.
		h.WANv6 = h.LANPrefix6.Addr()
	}
	return h
}

// AttachCPE wires a built CPE to a segment.
func (n *Network) AttachCPE(seg *Segment, d *cpe.Device, home HomeAddrs) {
	seg.Router.AddRoute(netip.PrefixFrom(home.WANv4, 32), d.Router)
	if home.LANPrefix6.IsValid() {
		seg.Router.AddRoute(home.LANPrefix6, d.Router)
	}
	d.SetUplink(seg.Router)
}

// Segments returns the ISP's segments.
func (n *Network) Segments() []*Segment { return n.segments }

// hostInPrefix4 returns host number host (1..254) of the i-th /24 in
// the ISP's /16.
func hostInPrefix4(p netip.Prefix, i, host int) netip.Addr {
	if host < 0 || host > 254 {
		panic(fmt.Sprintf("isp: host index %d out of range for a /24", host))
	}
	a := slice24(p, i).Addr().As4()
	a[3] = byte(host)
	return netip.AddrFrom4(a)
}

// slice24 returns the i-th /24 at or after p (p itself when i is 0).
func slice24(p netip.Prefix, i int) netip.Prefix {
	if i < 0 || i > 255 {
		panic(fmt.Sprintf("isp: /24 slice index %d out of range", i))
	}
	a := p.Addr().As4()
	a[2] += byte(i)
	a[3] = 0
	return netip.PrefixFrom(netip.AddrFrom4(a), 24)
}

// slice56 returns the i-th /56 inside the ISP's /48 (or the zero Prefix
// when the ISP has no v6 allocation).
func slice56(p netip.Prefix, i int) netip.Prefix {
	if !p.IsValid() {
		return netip.Prefix{}
	}
	if i < 0 || i > 255 {
		panic(fmt.Sprintf("isp: /56 slice index %d out of range for a /48", i))
	}
	a := p.Addr().As16()
	a[6] += byte(i)
	a[7] = 0
	return netip.PrefixFrom(netip.AddrFrom16(a), 56).Masked()
}

// slice64 returns the i-th /64 inside a segment's /56.
func slice64(p netip.Prefix, i int) netip.Prefix {
	if i < 0 || i > 255 {
		panic(fmt.Sprintf("isp: /64 slice index %d out of range for a /56", i))
	}
	a := p.Addr().As16()
	a[7] += byte(i)
	return netip.PrefixFrom(netip.AddrFrom16(a), 64).Masked()
}
