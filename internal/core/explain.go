package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Explain narrates the Figure 2 decision path for a report: which
// evidence was collected at each step and why the verdict follows. The
// CLI prints it for operators who want the reasoning, not just the
// conclusion.
func (r *Report) Explain() string {
	var sb strings.Builder

	fmt.Fprintf(&sb, "Step 1 — location queries (§3.1):\n")
	nonStandard := 0
	for _, p := range r.Location {
		switch {
		case p.Outcome == OutcomeAnswer && p.Standard:
			// Standard answers are the quiet majority; summarize below.
		case p.Outcome == OutcomeAnswer:
			nonStandard++
			fmt.Fprintf(&sb, "  %s @ %s answered %q — not the operator's format: someone else answered.\n",
				p.Resolver, p.Server, p.Answer)
		case p.Outcome == OutcomeError:
			nonStandard++
			fmt.Fprintf(&sb, "  %s @ %s answered %s — a deliberate status, also not the operator's behaviour.\n",
				p.Resolver, p.Server, p.RCode)
		case p.Outcome == OutcomeTimeout:
			fmt.Fprintf(&sb, "  %s @ %s timed out — conservatively NOT counted as interception.\n",
				p.Resolver, p.Server)
		}
	}
	if nonStandard == 0 {
		fmt.Fprintf(&sb, "  every answer matched its operator's standard format.\n")
		fmt.Fprintf(&sb, "conclusion: %s\n", VerdictNotIntercepted)
		return sb.String()
	}
	fmt.Fprintf(&sb, "  => intercepted resolvers: v4=%v v6=%v\n\n", r.InterceptedV4, r.InterceptedV6)

	if r.CPEVersionBind.Server.IsValid() {
		fmt.Fprintf(&sb, "Step 2 — version.bind comparison (§3.2):\n")
		fmt.Fprintf(&sb, "  CPE public IP answered: %s\n", r.CPEVersionBind)
		for _, p := range r.ResolverVersionBind {
			fmt.Fprintf(&sb, "  towards %-10s      : %s\n", p.Resolver, p)
		}
		if r.CPEString != "" {
			fmt.Fprintf(&sb, "  identical strings everywhere: the CPE's forwarder (%q) answers for every resolver.\n", r.CPEString)
			fmt.Fprintf(&sb, "conclusion: %s\n", VerdictCPE)
			return sb.String()
		}
		fmt.Fprintf(&sb, "  strings differ (or the CPE gave none): the CPE is not implicated.\n\n")
	} else {
		fmt.Fprintf(&sb, "Step 2 skipped: no CPE public address available.\n\n")
	}

	fmt.Fprintf(&sb, "Step 3 — bogon queries (§3.3):\n")
	for _, p := range r.BogonResults {
		switch p.Outcome {
		case OutcomeAnswer, OutcomeError:
			fmt.Fprintf(&sb, "  %s bogon destination answered (%s): the query never left the AS.\n", p.Family, p)
		default:
			fmt.Fprintf(&sb, "  %s bogon destination silent: no in-AS evidence.\n", p.Family)
		}
	}
	fmt.Fprintf(&sb, "conclusion: %s\n", r.Verdict)
	if r.Transparency != TransparencyNA {
		fmt.Fprintf(&sb, "transparency (§4.1.2): %s\n", r.Transparency)
	}
	return sb.String()
}

// probeResultJSON is the serialization shape of a ProbeResult.
type probeResultJSON struct {
	Resolver   string  `json:"resolver,omitempty"`
	Server     string  `json:"server"`
	Family     string  `json:"family"`
	Outcome    string  `json:"outcome"`
	Answer     string  `json:"answer,omitempty"`
	RCode      string  `json:"rcode,omitempty"`
	Standard   bool    `json:"standard"`
	Replicated bool    `json:"replicated,omitempty"`
	RTTms      float64 `json:"rtt_ms,omitempty"`
}

// MarshalJSON renders a ProbeResult with human-readable enums.
func (p ProbeResult) MarshalJSON() ([]byte, error) {
	out := probeResultJSON{
		Resolver:   string(p.Resolver),
		Family:     string(p.Family),
		Outcome:    string(p.Outcome),
		Answer:     p.Answer,
		Standard:   p.Standard,
		Replicated: p.Replicated,
		RTTms:      float64(p.RTT) / float64(time.Millisecond),
	}
	if p.Server.IsValid() {
		out.Server = p.Server.String()
	}
	if p.Outcome == OutcomeAnswer || p.Outcome == OutcomeError {
		out.RCode = p.RCode.String()
	}
	return json.Marshal(out)
}
