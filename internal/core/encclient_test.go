package core_test

import (
	"errors"
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/dotsim"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// encWorld is the smallest world an encrypted exchange needs: one
// resolver router serving Do53 on 53 and stream sessions on 853/443,
// and a client host behind it.
type encWorld struct {
	net      *netsim.Network
	host     *netsim.Host
	rtr      *netsim.Router
	endpoint *dnsserver.StreamEndpoint
	resolver netip.AddrPort
}

// txtService answers any DNS query with a TXT response carrying tag,
// marking whether the query arrived inside an encrypted session.
func txtService(tag string) netsim.Service {
	return netsim.ServiceFunc(func(sc *netsim.ServiceCtx, pkt netsim.Packet) {
		query, err := dnswire.Unpack(pkt.Payload)
		if err != nil {
			return
		}
		answer := tag
		if pkt.Enc != 0 {
			answer = tag + "-encrypted"
		}
		resp := dnswire.NewTXTResponse(query, answer)
		wire, err := resp.Pack()
		if err != nil {
			return
		}
		sc.Reply(pkt, wire)
	})
}

func buildEncWorld(t *testing.T, trusted bool) *encWorld {
	t.Helper()
	w := &encWorld{net: netsim.NewNetwork()}
	addr := netip.MustParseAddr("9.9.9.9")
	w.resolver = netip.AddrPortFrom(addr, 53)
	w.rtr = netsim.NewRouter("resolver", addr)
	w.rtr.Bind(53, txtService("plain"))
	w.endpoint = &dnsserver.StreamEndpoint{
		Cert:  dotsim.Certificate{Subject: addr, Trusted: trusted},
		Inner: txtService("session"),
		Salt:  7,
	}
	w.rtr.Bind(netsim.PortDoT, w.endpoint)
	w.rtr.Bind(netsim.PortDoH, w.endpoint)
	w.host = netsim.NewHost("stub", netip.MustParseAddr("10.0.0.2"), netip.Addr{}, w.rtr)
	w.rtr.AddRoute(netip.MustParsePrefix("10.0.0.0/24"), w.host)
	return w
}

func (w *encWorld) client(mode core.TransportMode) *core.EncryptedClient {
	return &core.EncryptedClient{
		Sim:  &core.SimClient{Net: w.net, Host: w.host},
		Mode: mode,
	}
}

func chaosQuery(id uint16) *dnswire.Message {
	return dnswire.NewChaosTXTQuery(id, "version.bind")
}

func firstTXT(t *testing.T, resps []*dnswire.Message) string {
	t.Helper()
	if len(resps) == 0 {
		t.Fatal("no responses")
	}
	txt, ok := resps[0].FirstTXT()
	if !ok {
		t.Fatal("response carries no TXT answer")
	}
	return txt
}

// TestEncryptedClientHandshakeAndResumption: the first query pays a
// handshake round trip, the second resumes on the stateless ticket and
// comes back cheaper; both are answered inside the session.
func TestEncryptedClientHandshakeAndResumption(t *testing.T) {
	for _, mode := range []core.TransportMode{
		core.TransportDoTOpportunistic, core.TransportDoTStrict, core.TransportDoH,
	} {
		t.Run(mode.String(), func(t *testing.T) {
			w := buildEncWorld(t, true)
			c := w.client(mode)

			resps, rtt1, err := c.ExchangeRTT(w.resolver, chaosQuery(1))
			if err != nil {
				t.Fatal(err)
			}
			if got := firstTXT(t, resps); got != "session-encrypted" {
				t.Errorf("first answer = %q, want the in-session service's", got)
			}
			resps, rtt2, err := c.ExchangeRTT(w.resolver, chaosQuery(2))
			if err != nil {
				t.Fatal(err)
			}
			if got := firstTXT(t, resps); got != "session-encrypted" {
				t.Errorf("resumed answer = %q, want the in-session service's", got)
			}
			if c.Handshakes != 1 || c.Resumed != 1 || c.Downgrades != 0 || c.AuthFails != 0 {
				t.Errorf("counters = %d handshakes, %d resumed, %d downgrades, %d authfails; want 1/1/0/0",
					c.Handshakes, c.Resumed, c.Downgrades, c.AuthFails)
			}
			if rtt2 >= rtt1 {
				t.Errorf("resumed RTT %v not below handshake RTT %v", rtt2, rtt1)
			}
			if rtt2 == 0 || rtt1 == 0 {
				t.Error("virtual-clock RTTs should be non-zero")
			}
		})
	}
}

// TestEncryptedClientStrictRejectsUntrustedCert: a strict profile
// refuses an endpoint whose certificate does not authenticate — the
// terminate-and-intercept scenario — while the opportunistic profile
// accepts it and keeps resolving through the session.
func TestEncryptedClientStrictRejectsUntrustedCert(t *testing.T) {
	w := buildEncWorld(t, false)

	strict := w.client(core.TransportDoTStrict)
	_, _, err := strict.ExchangeRTT(w.resolver, chaosQuery(3))
	if !errors.Is(err, core.ErrAuthFailed) {
		t.Fatalf("strict vs untrusted cert = %v, want core.ErrAuthFailed", err)
	}
	if strict.AuthFails != 1 || strict.Handshakes != 0 || strict.Downgrades != 0 {
		t.Errorf("strict counters = %d authfails, %d handshakes, %d downgrades; want 1/0/0",
			strict.AuthFails, strict.Handshakes, strict.Downgrades)
	}

	opp := w.client(core.TransportDoTOpportunistic)
	resps, _, err := opp.ExchangeRTT(w.resolver, chaosQuery(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := firstTXT(t, resps); got != "session-encrypted" {
		t.Errorf("opportunistic answer = %q, want the in-session service's", got)
	}
	if opp.AuthFails != 0 || opp.Handshakes != 1 {
		t.Errorf("opportunistic counters = %d authfails, %d handshakes; want 0/1", opp.AuthFails, opp.Handshakes)
	}
}

// TestEncryptedClientDowngradeIsSticky: when the encrypted channel is
// blocked, the opportunistic profile falls back to Do53 and stays
// there — later queries to the same target never retry the handshake —
// while the strict profile surfaces the timeout.
func TestEncryptedClientDowngradeIsSticky(t *testing.T) {
	w := buildEncWorld(t, true)
	w.rtr.AddInputFilter(func(pkt netsim.Packet) (bool, string) {
		if pkt.Proto == netsim.TCP && pkt.Dst.Port() == netsim.PortDoT {
			return true, "middlebox blocks DoT"
		}
		return false, ""
	})

	opp := w.client(core.TransportDoTOpportunistic)
	for i, want := range []int{1, 0} { // downgrade on the first query only
		before := opp.Downgrades
		resps, err := opp.Exchange(w.resolver, chaosQuery(uint16(10+i)))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got := firstTXT(t, resps); got != "plain" {
			t.Errorf("query %d answer = %q, want the Do53 service's", i, got)
		}
		if opp.Downgrades-before != want {
			t.Errorf("query %d recorded %d downgrades, want %d", i, opp.Downgrades-before, want)
		}
	}
	if opp.Handshakes != 0 {
		t.Errorf("blocked channel completed %d handshakes, want 0", opp.Handshakes)
	}

	strict := w.client(core.TransportDoTStrict)
	if _, _, err := strict.ExchangeRTT(w.resolver, chaosQuery(12)); !errors.Is(err, core.ErrTimeout) {
		t.Errorf("strict vs blocked channel = %v, want core.ErrTimeout", err)
	}
}

// TestEncryptedClientBadTicketRedoesHandshake: when the endpoint stops
// honoring an issued ticket (its salt changed — e.g. the path now
// terminates somewhere new), the client redoes the handshake once and
// the query still succeeds.
func TestEncryptedClientBadTicketRedoesHandshake(t *testing.T) {
	w := buildEncWorld(t, true)
	c := w.client(core.TransportDoH)

	if _, _, err := c.ExchangeRTT(w.resolver, chaosQuery(20)); err != nil {
		t.Fatal(err)
	}
	w.endpoint.Salt = 8 // invalidate every outstanding ticket

	resps, _, err := c.ExchangeRTT(w.resolver, chaosQuery(21))
	if err != nil {
		t.Fatal(err)
	}
	if got := firstTXT(t, resps); got != "session-encrypted" {
		t.Errorf("post-rekey answer = %q, want the in-session service's", got)
	}
	if c.Handshakes != 2 || c.Resumed != 0 {
		t.Errorf("counters = %d handshakes, %d resumed; want 2 handshakes and the failed resumption rolled back",
			c.Handshakes, c.Resumed)
	}
}

// TestEncryptedClientUpgradePredicate: targets outside the Upgrade set
// stay Do53 even on an encrypted-mode client — the CHAOS probe of a
// CPE's own forwarder must not grow a TLS session.
func TestEncryptedClientUpgradePredicate(t *testing.T) {
	w := buildEncWorld(t, true)
	c := w.client(core.TransportDoTStrict)
	c.Upgrade = func(a netip.Addr) bool { return false }

	resps, rtt, err := c.ExchangeRTT(w.resolver, chaosQuery(30))
	if err != nil {
		t.Fatal(err)
	}
	if got := firstTXT(t, resps); got != "plain" {
		t.Errorf("non-upgraded answer = %q, want the Do53 service's", got)
	}
	if c.Handshakes != 0 {
		t.Errorf("non-upgraded target completed %d handshakes, want 0", c.Handshakes)
	}
	if rtt == 0 {
		t.Error("Do53 path lost its RTT")
	}
}
