package core_test

import (
	"testing"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/homelab"
)

// TestRetriesSurviveLossyNetwork injects 10% per-hop loss into the
// simulated network — a brutally lossy path — and checks that the
// detector with retries still localizes the XB6, while losses never
// produce false interception evidence (timeouts are conservative).
func TestRetriesSurviveLossyNetwork(t *testing.T) {
	lab := homelab.New(homelab.XB6)
	lab.Net.SetLoss(0.10, 7)
	det := lab.Detector()
	det.Retries = 5
	r := det.Run()
	if r.Verdict != core.VerdictCPE {
		t.Errorf("verdict under loss = %s, want CPE\n%s", r.Verdict, r)
	}
}

func TestLossNeverFabricatesInterception(t *testing.T) {
	// A clean home under heavy loss: some queries die, but no answer is
	// ever non-standard, so the verdict stays "not intercepted" — the
	// conservative-timeout rule of §3.1 in action.
	for seed := int64(1); seed <= 5; seed++ {
		lab := homelab.New(homelab.Clean)
		lab.Net.SetLoss(0.25, seed)
		r := lab.Detector().Run()
		if r.Intercepted() {
			t.Errorf("seed %d: loss produced interception evidence\n%s", seed, r)
		}
	}
}

func TestHeavyLossDegradesToTimeouts(t *testing.T) {
	lab := homelab.New(homelab.Clean)
	lab.Net.SetLoss(0.9, 3)
	r := lab.Detector().Run()
	timeouts := 0
	for _, p := range r.Location {
		if p.Outcome == core.OutcomeTimeout {
			timeouts++
		}
	}
	if timeouts < len(r.Location)/2 {
		t.Errorf("only %d/%d location probes timed out at 90%% loss", timeouts, len(r.Location))
	}
	if r.Verdict != core.VerdictNotIntercepted {
		t.Errorf("verdict = %s", r.Verdict)
	}
}
