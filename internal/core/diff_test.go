package core_test

import (
	"strings"
	"testing"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/homelab"
)

func TestDiffDetectsFirmwareStyleFlip(t *testing.T) {
	// The dnsmon use case: a home goes from clean to XB6-intercepted
	// (e.g. a firmware update enabling XDNS).
	clean := homelab.New(homelab.Clean).Detector().Run()
	hijacked := homelab.New(homelab.XB6).Detector().Run()

	changes := hijacked.Diff(clean)
	if len(changes) == 0 {
		t.Fatal("no changes detected")
	}
	joined := ""
	for _, c := range changes {
		joined += c.String() + "\n"
	}
	for _, want := range []string{
		"verdict: not intercepted -> intercepted by CPE",
		"fingerprint: - -> \"dnsmasq-2.78\"",
		"intercepted-v4: none ->",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("changes missing %q:\n%s", want, joined)
		}
	}
}

func TestDiffStableRunsReportNothing(t *testing.T) {
	lab := homelab.New(homelab.ISPMiddlebox)
	a := lab.Detector().Run()
	b := lab.Detector().Run()
	if changes := b.Diff(a); len(changes) != 0 {
		t.Errorf("stable home diffed: %v", changes)
	}
}

func TestDiffNilPrevious(t *testing.T) {
	r := homelab.New(homelab.Clean).Detector().Run()
	if changes := r.Diff(nil); changes != nil {
		t.Errorf("diff against nil = %v", changes)
	}
}

func TestDiffRouterSwapChangesFingerprint(t *testing.T) {
	xb6 := homelab.New(homelab.XB6).Detector().Run()
	pihole := homelab.New(homelab.PiHole).Detector().Run()
	changes := pihole.Diff(xb6)
	found := false
	for _, c := range changes {
		if c.What == "fingerprint" && strings.Contains(c.After, "pi-hole") {
			found = true
		}
	}
	if !found {
		t.Errorf("fingerprint change not reported: %v", changes)
	}
	// Verdict unchanged (both CPE), so no verdict change entry.
	for _, c := range changes {
		if c.What == "verdict" {
			t.Errorf("spurious verdict change: %v", c)
		}
	}
	_ = core.VerdictCPE
}
