package core_test

import (
	"testing"
	"time"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/homelab"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// locationRTT returns the mean RTT of a report's answered v4 location
// probes for one operator (errors count too: an rcode is also an
// answer from *someone*).
func locationRTT(r *core.Report, id publicdns.ID) time.Duration {
	var total time.Duration
	n := 0
	for _, p := range r.Location {
		if p.Resolver == id && p.Family == core.V4 &&
			(p.Outcome == core.OutcomeAnswer || p.Outcome == core.OutcomeError) {
			total += p.RTT
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}

func TestRTTReflectsInterceptorProximity(t *testing.T) {
	clean := homelab.New(homelab.Clean).Detector().Run()
	xb6 := homelab.New(homelab.XB6).Detector().Run()
	mb := homelab.New(homelab.ISPMiddlebox).Detector().Run()

	cleanRTT := locationRTT(clean, publicdns.Cloudflare)
	xb6RTT := locationRTT(xb6, publicdns.Cloudflare)
	mbRTT := locationRTT(mb, publicdns.Cloudflare)

	if cleanRTT == 0 || xb6RTT == 0 || mbRTT == 0 {
		t.Fatalf("missing RTTs: clean=%v xb6=%v mb=%v", cleanRTT, xb6RTT, mbRTT)
	}
	// The CPE answers from inside the home; the middlebox from inside
	// the ISP; the real anycast site from across the backbone.
	if !(xb6RTT < mbRTT && mbRTT < cleanRTT) {
		t.Errorf("RTT ordering violated: cpe=%v < isp=%v < clean=%v expected", xb6RTT, mbRTT, cleanRTT)
	}
	// The gap is large: a CPE interceptor is at least 5x faster than the
	// genuine path in this topology.
	if xb6RTT*5 > cleanRTT {
		t.Errorf("cpe RTT %v not clearly faster than clean %v", xb6RTT, cleanRTT)
	}
}

func TestReplicationInterceptorAnswerArrivesFirst(t *testing.T) {
	// With real link delays, the replicated flow's interceptor answer
	// (from inside the ISP) beats the genuine answer (from the anycast
	// site) — the ordering prior work reported, now emergent rather
	// than assumed.
	lab := homelab.New(homelab.Replicating)
	// First run warms the alternate resolver's cache; on a cold cache
	// the genuine anycast answer can genuinely win the race (recursion
	// is slower than a front-door hook), which is why the paper says
	// the interceptor's answer "nearly always" arrives first.
	lab.Detector().Run()
	r := lab.Detector().Run()
	if r.Verdict != core.VerdictISP {
		t.Fatalf("verdict = %s", r.Verdict)
	}
	sawReplicated := false
	for _, p := range r.Location {
		if !p.Replicated || p.Family != core.V4 {
			continue
		}
		sawReplicated = true
		// The CHAOS-based location queries (Cloudflare, Quad9) are
		// answered instantly by the alternate resolver's persona, so the
		// interceptor always wins those races. Google's o-o.myaddr is a
		// TTL-0 name the alternate resolver must recurse for every time,
		// so the genuine anycast answer can legitimately arrive first —
		// the reason the paper says the interceptor's response "nearly
		// always" (not always) arrives first.
		if p.Resolver == publicdns.Google || p.Resolver == publicdns.OpenDNS {
			continue
		}
		if p.Standard {
			t.Errorf("%s: first (fastest) answer %q is the genuine one; interceptor should win the race", p.Resolver, p.Answer)
		}
	}
	if !sawReplicated {
		t.Fatal("no replicated probes observed")
	}
}
