package core

import (
	"errors"
	"net/netip"
	"time"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// TransportMode is a stub resolver's encrypted-DNS configuration: which
// transport it tries first and how hard it authenticates — the ladder
// the paper's §6 countermeasure discussion sketches.
type TransportMode int

// Transport modes, in escalation order.
const (
	// TransportDo53 is classic cleartext UDP port 53.
	TransportDo53 TransportMode = iota
	// TransportDoTOpportunistic tries DoT but accepts any certificate
	// (RFC 7858's opportunistic privacy profile) and silently falls back
	// to Do53 when the encrypted channel fails.
	TransportDoTOpportunistic
	// TransportDoTStrict requires the certificate to authenticate the
	// resolver and never downgrades: a blocked or terminated channel
	// means no resolution.
	TransportDoTStrict
	// TransportDoH is DoH on port 443; like every real DoH client it
	// authenticates strictly and never downgrades.
	TransportDoH
)

// String names the mode as the sweep tables render it.
func (m TransportMode) String() string {
	switch m {
	case TransportDoTOpportunistic:
		return "dot-opportunistic"
	case TransportDoTStrict:
		return "dot-strict"
	case TransportDoH:
		return "doh"
	default:
		return "do53"
	}
}

// Encrypted reports whether the mode uses an encrypted transport at all.
func (m TransportMode) Encrypted() bool { return m != TransportDo53 }

// Strict reports whether the mode authenticates the server certificate.
func (m TransportMode) Strict() bool {
	return m == TransportDoTStrict || m == TransportDoH
}

// alpn returns the mode's netsim ALPN code (zero for Do53).
func (m TransportMode) alpn() uint8 {
	switch m {
	case TransportDoTOpportunistic, TransportDoTStrict:
		return netsim.ALPNDoT
	case TransportDoH:
		return netsim.ALPNDoH
	default:
		return 0
	}
}

// encSession is the per-target state of an encrypted transport: a
// resumption ticket once a handshake succeeded, or a sticky downgrade
// marker once the opportunistic profile fell back to Do53.
type encSession struct {
	ticket     uint64
	haveTicket bool
	downgraded bool
}

// EncryptedClient layers DoT/DoH transport selection over a SimClient.
// Targets matched by Upgrade are queried through an encrypted stream
// session (netsim stream frames over simulated TCP); everything else —
// the CPE version.bind step, bogon queries — stays Do53, exactly as a
// real stub with a DoT-configured upstream still speaks cleartext to
// ad-hoc destinations.
//
// Like SimClient it is not safe for concurrent use; each simulated
// probe owns its own instance, which is what keeps session state out of
// any cross-probe shared structure (a determinism requirement).
type EncryptedClient struct {
	Sim  *SimClient
	Mode TransportMode
	// Upgrade selects which targets use the encrypted transport; nil
	// upgrades every target.
	Upgrade func(netip.Addr) bool

	// Session-accounting counters, cumulative over the client's life.
	Handshakes int // full handshakes completed
	Resumed    int // queries sent on a resumed session (no handshake)
	Downgrades int // opportunistic fallbacks to Do53
	AuthFails  int // strict-profile certificate rejections

	sessions map[netip.Addr]*encSession
}

// Exchange implements Client.
func (c *EncryptedClient) Exchange(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, error) {
	resps, _, err := c.ExchangeRTT(server, query)
	return resps, err
}

// ExchangeRTT implements RTTExchanger. The returned RTT covers the full
// exchange as the client experienced it: handshake round trip included
// when one was needed, just the data round trip on a resumed session.
func (c *EncryptedClient) ExchangeRTT(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, time.Duration, error) {
	if !c.Mode.Encrypted() || (c.Upgrade != nil && !c.Upgrade(server.Addr())) {
		return c.Sim.ExchangeRTT(server, query)
	}
	sess := c.session(server.Addr())
	if sess.downgraded {
		return c.Sim.ExchangeRTT(server, query)
	}

	alpn := c.Mode.alpn()
	port, err := netsim.StreamPortFor(alpn)
	if err != nil {
		return nil, 0, err
	}
	target := netip.AddrPortFrom(server.Addr(), port)

	var handshakeRTT time.Duration
	if !sess.haveTicket {
		rtt, err := c.handshake(target, alpn, sess)
		if err != nil {
			return c.failOrDowngrade(sess, server, query, err)
		}
		handshakeRTT = rtt
	} else {
		c.Resumed++
	}

	resps, rtt, err := c.data(target, alpn, sess, query)
	if errors.Is(err, errBadTicket) {
		// The endpoint rejected our resumption (its salt changed, or the
		// path now terminates somewhere new): redo the handshake once.
		sess.haveTicket = false
		c.Resumed--
		hrtt, herr := c.handshake(target, alpn, sess)
		if herr != nil {
			return c.failOrDowngrade(sess, server, query, herr)
		}
		handshakeRTT = hrtt
		resps, rtt, err = c.data(target, alpn, sess, query)
	}
	if err != nil {
		return c.failOrDowngrade(sess, server, query, err)
	}
	return resps, handshakeRTT + rtt, nil
}

// session returns (creating on demand) the per-target session state.
func (c *EncryptedClient) session(addr netip.Addr) *encSession {
	if c.sessions == nil {
		c.sessions = make(map[netip.Addr]*encSession)
	}
	s, ok := c.sessions[addr]
	if !ok {
		s = &encSession{}
		c.sessions[addr] = s
	}
	return s
}

// failOrDowngrade resolves an encrypted-channel failure per profile:
// opportunistic clients mark the target downgraded and retry the same
// query over Do53; strict clients surface the failure.
func (c *EncryptedClient) failOrDowngrade(sess *encSession, server netip.AddrPort, query *dnswire.Message, err error) ([]*dnswire.Message, time.Duration, error) {
	if c.Mode.Strict() {
		return nil, 0, err
	}
	sess.downgraded = true
	c.Downgrades++
	return c.Sim.ExchangeRTT(server, query)
}

// handshake runs the hello/helloAck round trip against target,
// validating the certificate under the client's profile and stashing
// the issued ticket on success.
func (c *EncryptedClient) handshake(target netip.AddrPort, alpn uint8, sess *encSession) (time.Duration, error) {
	pkts, err := c.Sim.Host.Exchange(c.Sim.Net, target, netsim.PackStreamHello(alpn), netsim.ExchangeOptions{Proto: netsim.TCP})
	if errors.Is(err, netsim.ErrTimeout) {
		return 0, ErrTimeout
	}
	if errors.Is(err, netsim.ErrNoAddress) {
		return 0, ErrNoRoute
	}
	if err != nil {
		return 0, err
	}
	defer c.Sim.Host.Recycle(pkts)
	ackALPN, cert, ticket, ok := netsim.ParseStreamHelloAck(pkts[0].Payload)
	if !ok || ackALPN != alpn {
		return 0, ErrGarbage
	}
	if c.Mode.Strict() && !(cert.Trusted && cert.Subject == target.Addr()) {
		c.AuthFails++
		return 0, ErrAuthFailed
	}
	sess.ticket = ticket
	sess.haveTicket = true
	c.Handshakes++
	return pkts[0].RTT(), nil
}

// errBadTicket is the internal signal that the endpoint rejected our
// resumption ticket; ExchangeRTT reacts by redoing the handshake.
var errBadTicket = errors.New("core: stream endpoint rejected resumption ticket")

// data sends one query inside the session and parses the responses.
func (c *EncryptedClient) data(target netip.AddrPort, alpn uint8, sess *encSession, query *dnswire.Message) ([]*dnswire.Message, time.Duration, error) {
	packed, err := query.PackTo(c.Sim.Net.PayloadBuf())
	if err != nil {
		return nil, 0, err
	}
	framed, err := dnswire.AppendTCPFrame(nil, packed)
	c.Sim.Net.RecyclePayload(packed)
	if err != nil {
		return nil, 0, err
	}
	payload := netsim.PackStreamData(alpn, sess.ticket, framed)

	pkts, err := c.Sim.Host.Exchange(c.Sim.Net, target, payload, netsim.ExchangeOptions{Proto: netsim.TCP})
	if errors.Is(err, netsim.ErrTimeout) {
		return nil, 0, ErrTimeout
	}
	if errors.Is(err, netsim.ErrNoAddress) {
		return nil, 0, ErrNoRoute
	}
	if err != nil {
		return nil, 0, err
	}
	out := make([]*dnswire.Message, 0, len(pkts))
	var rtt time.Duration
	for _, p := range pkts {
		if code, ok := netsim.ParseStreamAlert(p.Payload); ok {
			c.Sim.Host.Recycle(pkts)
			if code == netsim.StreamAlertBadTicket {
				return nil, 0, errBadTicket
			}
			return nil, 0, ErrGarbage
		}
		m, err := dnswire.Unpack(p.Payload)
		if err != nil || m.Header.ID != query.Header.ID {
			continue // not ours / damaged, as in SimClient
		}
		if len(out) == 0 {
			rtt = p.RTT()
		}
		out = append(out, m)
	}
	c.Sim.Host.Recycle(pkts)
	if len(out) == 0 {
		return nil, 0, ErrGarbage
	}
	return out, rtt, nil
}
