package core_test

import (
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/homelab"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// funcOracle adapts a function to core.CertOracle.
type funcOracle func(publicdns.ID, netip.Addr) (string, bool)

func (f funcOracle) Identity(id publicdns.ID, server netip.Addr) (string, bool) {
	return f(id, server)
}

// TestDetectorSignalsCleanHome runs the full detector with both extra
// signals armed against a clean home: one drift round re-probing every
// location target, cert checks for every probed server, and a fusion
// that stays quiet — the signals must not manufacture detection where
// the CHAOS technique finds none.
func TestDetectorSignalsCleanHome(t *testing.T) {
	lab := homelab.New(homelab.Clean)
	d := lab.Detector()
	d.DriftRounds = 1
	seen := map[publicdns.ID]bool{}
	d.CertOracle = funcOracle(func(id publicdns.ID, server netip.Addr) (string, bool) {
		seen[id] = true
		// No out-of-band identity available: every check inconclusive.
		return "", false
	})
	r := d.Run()

	if !r.SignalsFused {
		t.Fatal("signals did not fuse")
	}
	if len(r.DriftProbes) != len(r.Location) {
		t.Errorf("drift re-probed %d targets, location probed %d", len(r.DriftProbes), len(r.Location))
	}
	if len(r.CertChecks) != len(r.Location) {
		t.Errorf("%d cert checks for %d location probes", len(r.CertChecks), len(r.Location))
	}
	if len(seen) != 4 {
		t.Errorf("oracle consulted for %d operators, want 4", len(seen))
	}
	if len(r.FusedInterceptedV4) != 0 || len(r.FusedInterceptedV6) != 0 {
		t.Errorf("clean home fused-intercepted: v4=%v v6=%v", r.FusedInterceptedV4, r.FusedInterceptedV6)
	}
	if r.FusedIntercepted() {
		t.Error("FusedIntercepted() = true on a clean home")
	}
	for _, s := range r.Signals {
		if s.Chaos != core.SignalClear {
			t.Errorf("%s/%s chaos signal = %s, want clear", s.Resolver, s.Family, s.Chaos)
		}
		if s.Cert != core.SignalInconclusive {
			t.Errorf("%s/%s cert signal = %s, want inconclusive (oracle degraded)", s.Resolver, s.Family, s.Cert)
		}
		if s.Drift != core.SignalFlagged {
			continue
		}
		t.Errorf("%s/%s drift flagged on a stable clean path", s.Resolver, s.Family)
	}
}

// TestDetectorCertMismatchFlagsWithoutChaosEvidence is the CERTainty
// scenario: the UDP path answers with a perfect persona imitation
// (chaos clear), but the authenticated out-of-band identity disagrees —
// the cert signal alone must carry the fusion to flagged.
func TestDetectorCertMismatchFlagsWithoutChaosEvidence(t *testing.T) {
	lab := homelab.New(homelab.Clean)
	d := lab.Detector()
	d.CertOracle = funcOracle(func(id publicdns.ID, server netip.Addr) (string, bool) {
		if id == publicdns.Cloudflare {
			return "XXX", true // never what the UDP path answers
		}
		return "", false
	})
	r := d.Run()

	if r.Intercepted() {
		t.Fatalf("chaos verdict moved; this test wants chaos-clean: %s", r)
	}
	flagged := 0
	for _, c := range r.CertChecks {
		if c.State == core.SignalFlagged {
			flagged++
			if c.Resolver != publicdns.Cloudflare {
				t.Errorf("flagged cert check for %s, want cloudflare only", c.Resolver)
			}
		}
	}
	if flagged == 0 {
		t.Fatal("no cert check flagged despite the oracle mismatch")
	}
	want := map[publicdns.ID]bool{publicdns.Cloudflare: true}
	for _, id := range r.FusedInterceptedV4 {
		if !want[id] {
			t.Errorf("fused-intercepted v4 %s, want cloudflare only", id)
		}
	}
	if len(r.FusedInterceptedV4) != 1 {
		t.Errorf("FusedInterceptedV4 = %v, want exactly cloudflare", r.FusedInterceptedV4)
	}
	if !r.FusedIntercepted() {
		t.Error("fusion missed the cert mismatch")
	}
}

// TestDetectorSignalsInterceptedHome: when CHAOS already convicts, the
// fused sets must contain at least the chaos-intercepted resolvers —
// fusion only ever adds evidence, never subtracts it.
func TestDetectorSignalsInterceptedHome(t *testing.T) {
	lab := homelab.New(homelab.ISPMiddlebox)
	d := lab.Detector()
	d.DriftRounds = 1
	d.CertOracle = funcOracle(func(publicdns.ID, netip.Addr) (string, bool) { return "", false })
	r := d.Run()

	if !r.Intercepted() {
		t.Fatalf("middlebox not detected: %s", r)
	}
	fused := map[publicdns.ID]bool{}
	for _, id := range r.FusedInterceptedV4 {
		fused[id] = true
	}
	for _, id := range r.InterceptedV4 {
		if !fused[id] {
			t.Errorf("chaos-intercepted %s missing from fused set %v", id, r.FusedInterceptedV4)
		}
	}
	if !r.FusedIntercepted() {
		t.Error("FusedIntercepted() = false on an intercepted home")
	}
}

// TestDetectorDriftRoundsOff: with no drift rounds and no oracle the
// detector must not fuse — reports keep their pre-signal shape, which
// the base golden corpus pins byte-for-byte.
func TestDetectorDriftRoundsOff(t *testing.T) {
	lab := homelab.New(homelab.Clean)
	r := lab.Detector().Run()
	if r.SignalsFused || len(r.DriftProbes) != 0 || len(r.CertChecks) != 0 || len(r.Signals) != 0 {
		t.Errorf("signal machinery ran unrequested: fused=%v drift=%d certs=%d signals=%d",
			r.SignalsFused, len(r.DriftProbes), len(r.CertChecks), len(r.Signals))
	}
}
