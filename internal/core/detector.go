package core

import (
	"errors"
	"net/netip"
	"sync"
	"time"

	"github.com/dnswatch/dnsloc/internal/bogon"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// Detector runs the three-step localization technique of Figure 2.
type Detector struct {
	// Client is the query transport.
	Client Client

	// CPEPublicV4 is the probe's public IPv4 address — the CPE WAN
	// address. RIPE Atlas publishes it as probe metadata; on a live
	// network the operator supplies it. When zero, step 2 cannot test
	// the CPE and an intercepted probe can at best be localized to the
	// ISP.
	CPEPublicV4 netip.Addr

	// Resolvers selects the operators to test; nil means all four.
	Resolvers []publicdns.ID

	// QueryV6 also tests each operator's IPv6 addresses.
	QueryV6 bool

	// BogonV4/BogonV6 are the unroutable destinations for step 3;
	// zero values use the package defaults.
	BogonV4 netip.Addr
	BogonV6 netip.Addr

	// CanaryName is the measurement-controlled domain asked in bogon
	// queries; empty uses publicdns.CanaryDomain.
	CanaryName dnswire.Name

	// SkipTransparency disables the whoami check (§4.1.2).
	SkipTransparency bool

	// Retries re-sends a query after a transient failure. Zero means
	// one attempt; on lossy real networks 1-2 retries avoid misreading
	// packet loss. (Timeouts are never evidence of interception either
	// way.) Kept for compatibility — Retry supersedes it when set.
	Retries int

	// Retry, when non-nil, replaces Retries with a full policy:
	// attempt cap, per-attempt timeout, exponential backoff with
	// deterministic jitter. Transient errors (timeout, garbage,
	// refused) consume attempts; permanent ones (ErrNoRoute) fail the
	// query immediately.
	Retry *RetryPolicy

	// Parallel issues the step-1 location queries concurrently — on a
	// live network with multi-second timeouts this cuts a full run from
	// ~minutes to ~seconds. Use it only with concurrency-safe transports
	// (the UDP/TCP clients are; SimClient is not).
	Parallel bool

	// Metrics, when non-nil, receives every query's counters in the
	// shared registry handles (see MetricSet). The per-report tally in
	// Report.Metrics is recorded regardless.
	Metrics *MetricSet

	// CertOracle, when non-nil, enables the certificate-consistency
	// signal: each round-1 location answer is compared against the
	// identity the operator presents over an authenticated out-of-band
	// channel (see signals.go).
	CertOracle CertOracle

	// DriftRounds, when positive, enables the longitudinal drift signal:
	// the location enumeration is re-issued that many extra times and
	// per-server answer sets are compared across rounds.
	DriftRounds int

	idMu   sync.Mutex
	nextID uint16

	// metMu guards runMetrics, the Report.Metrics of the Run in
	// progress; Parallel mode updates it from several goroutines.
	metMu      sync.Mutex
	runMetrics *Metrics
}

// resolvers returns the operator set under test.
func (d *Detector) resolvers() []publicdns.ID {
	if len(d.Resolvers) > 0 {
		return d.Resolvers
	}
	return publicdns.All
}

// id hands out query IDs (safe under Parallel).
func (d *Detector) id() uint16 {
	d.idMu.Lock()
	defer d.idMu.Unlock()
	d.nextID++
	return d.nextID
}

// Run executes the full technique and returns the report.
func (d *Detector) Run() *Report {
	r := &Report{Verdict: VerdictNotIntercepted, Transparency: TransparencyNA}
	d.metMu.Lock()
	d.runMetrics = &r.Metrics
	d.metMu.Unlock()
	defer func() {
		d.metMu.Lock()
		d.runMetrics = nil
		d.metMu.Unlock()
	}()

	d.stepLocation(r)
	// The counter-signals run before the interception gate: their whole
	// point is to catch what an evasive interceptor hides from step 1
	// (see signals.go). They detect; they do not localize — the CPE/ISP
	// steps below stay driven by the CHAOS evidence.
	if d.DriftRounds > 0 {
		d.stepDrift(r)
	}
	if d.CertOracle != nil {
		d.stepCertCheck(r)
	}
	if d.DriftRounds > 0 || d.CertOracle != nil {
		d.fuseSignals(r)
	}
	if !r.Intercepted() {
		return r
	}
	r.Verdict = VerdictUnknown

	if !d.SkipTransparency {
		d.stepTransparency(r)
	}

	if d.stepCPE(r) {
		r.Verdict = VerdictCPE
		return r
	}
	if d.stepISP(r) {
		r.Verdict = VerdictISP
	}
	return r
}

// policy resolves the effective retry policy, honouring the legacy
// Retries field when no full policy is installed.
func (d *Detector) policy() RetryPolicy {
	if d.Retry != nil {
		return *d.Retry
	}
	return RetryPolicy{MaxAttempts: d.Retries + 1}
}

// exchangeOne sends a query, reduces the result to a ProbeResult, and
// feeds the metrics plane (both the in-progress Report.Metrics tally
// and, when wired, the shared MetricSet).
func (d *Detector) exchangeOne(id publicdns.ID, server netip.AddrPort, q *dnswire.Message) ProbeResult {
	pr, backoff, transient, permanent := d.exchange(id, server, q)
	d.Metrics.note(&pr, backoff, transient, permanent)
	d.metMu.Lock()
	if d.runMetrics != nil {
		d.runMetrics.add(&pr, backoff, transient, permanent)
	}
	d.metMu.Unlock()
	return pr
}

// exchange sends a query and reduces the result to a ProbeResult.
// For TXT-shaped queries the answer is the joined TXT; for address
// queries it is the first address. Transient transport errors consume
// retry attempts under the policy; permanent ones (no route) fail the
// query on the spot. Alongside the result it returns the total backoff
// slept and the per-attempt failure classification tallies.
func (d *Detector) exchange(id publicdns.ID, server netip.AddrPort, q *dnswire.Message) (_ ProbeResult, backoff time.Duration, transient, permanent int) {
	family := V4
	if server.Addr().Is6() && !server.Addr().Is4In6() {
		family = V6
	}
	pr := ProbeResult{Resolver: id, Server: server, Family: family}
	pol := d.policy()
	maxAttempts := pol.Attempts()
	salt := QuerySalt(server, q.Header.ID)
	var resps []*dnswire.Message
	var rtt time.Duration
	var err error
	rttClient, hasRTT := d.Client.(RTTExchanger)
	for attempt := 1; ; attempt++ {
		if hasRTT {
			resps, rtt, err = rttClient.ExchangeRTT(server, q)
		} else {
			resps, err = d.Client.Exchange(server, q)
		}
		pr.Attempts = attempt
		if err != nil {
			if Classify(err) == ClassPermanent {
				permanent++
			} else {
				transient++
			}
		}
		if err == nil || Classify(err) == ClassPermanent || attempt >= maxAttempts {
			break
		}
		if delay := pol.BackoffFor(attempt, salt); delay > 0 {
			backoff += delay
			time.Sleep(delay)
		}
	}
	switch {
	case errors.Is(err, ErrTimeout):
		pr.Outcome = OutcomeTimeout
		return pr, backoff, transient, permanent
	case errors.Is(err, ErrGarbage):
		pr.Outcome = OutcomeGarbage
		return pr, backoff, transient, permanent
	case errors.Is(err, ErrNoRoute):
		pr.Outcome = OutcomeNoRoute
		return pr, backoff, transient, permanent
	case errors.Is(err, ErrAuthFailed):
		pr.Outcome = OutcomeAuthFail
		return pr, backoff, transient, permanent
	case err != nil:
		// An unclassified transport failure exhausted its retries;
		// conservatively the same non-evidence as a timeout.
		pr.Outcome = OutcomeTimeout
		return pr, backoff, transient, permanent
	}
	// Replication: prior work observed the interceptor's answer arriving
	// first; either way interception and replication are
	// indistinguishable here (§3.1), so take the first response.
	m := resps[0]
	pr.Replicated = len(resps) > 1
	pr.RCode = m.Header.RCode
	pr.RTT = rtt
	if m.Header.RCode != dnswire.RCodeSuccess {
		pr.Outcome = OutcomeError
		return pr, backoff, transient, permanent
	}
	if txt, ok := m.FirstTXT(); ok {
		pr.Outcome = OutcomeAnswer
		pr.Answer = txt
		return pr, backoff, transient, permanent
	}
	if addrs := m.AnswerAddrs(); len(addrs) > 0 {
		pr.Outcome = OutcomeAnswer
		pr.Answer = addrs[0]
		return pr, backoff, transient, permanent
	}
	// NOERROR with no usable records: treat as an error-shaped response.
	pr.Outcome = OutcomeError
	return pr, backoff, transient, permanent
}

// probeSpec names one (operator, server) location-query target.
type probeSpec struct {
	id     publicdns.ID
	server netip.AddrPort
}

// locationSpecs enumerates the step-1 targets: every address of every
// operator under test, in deterministic order. The drift step re-issues
// exactly this enumeration in its later rounds.
func (d *Detector) locationSpecs() []probeSpec {
	var specs []probeSpec
	for _, id := range d.resolvers() {
		cfg := publicdns.Lookup(id)
		servers := make([]netip.Addr, 0, 4)
		servers = append(servers, cfg.V4...)
		if d.QueryV6 {
			servers = append(servers, cfg.V6...)
		}
		for _, server := range servers {
			specs = append(specs, probeSpec{id: id, server: netip.AddrPortFrom(server, 53)})
		}
	}
	return specs
}

// stepLocation issues location queries to every address of every
// operator (§3.1) and classifies each answer against the operator's
// standard format.
func (d *Detector) stepLocation(r *Report) {
	specs := d.locationSpecs()

	results := make([]ProbeResult, len(specs))
	probeOne := func(i int) {
		spec := specs[i]
		cfg := publicdns.Lookup(spec.id)
		pr := d.exchangeOne(spec.id, spec.server, cfg.Location.Message(d.id()))
		if pr.Outcome == OutcomeAnswer {
			pr.Standard = cfg.ValidateLocationAnswer(pr.Answer)
		}
		results[i] = pr
	}
	if d.Parallel {
		var wg sync.WaitGroup
		for i := range specs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				probeOne(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range specs {
			probeOne(i)
		}
	}

	noteFaults(r, StepLocation, results)
	d.Metrics.noteStep(StepLocation, results)
	intercepted := map[publicdns.ID]map[Family]bool{}
	for _, pr := range results {
		r.Location = append(r.Location, pr)
		// Timeouts (and garbled responses) are conservatively not
		// interception (§3.1); any response that fails validation is.
		nonStandard := (pr.Outcome == OutcomeAnswer && !pr.Standard) || pr.Outcome == OutcomeError
		if nonStandard {
			if intercepted[pr.Resolver] == nil {
				intercepted[pr.Resolver] = map[Family]bool{}
			}
			intercepted[pr.Resolver][pr.Family] = true
		}
	}
	for _, id := range d.resolvers() {
		if intercepted[id][V4] {
			r.InterceptedV4 = append(r.InterceptedV4, id)
		}
		if intercepted[id][V6] {
			r.InterceptedV6 = append(r.InterceptedV6, id)
		}
	}
}

// stepCPE decides whether the CPE is the interceptor (§3.2): a
// version.bind query to the CPE's public address must return the same
// string as version.bind queries sent towards the intercepted public
// resolvers. The string's uniqueness is what makes the comparison sound
// (Appendix A); error rcodes carry no identity, so they never match.
func (d *Detector) stepCPE(r *Report) bool {
	if !d.CPEPublicV4.IsValid() || len(r.InterceptedV4) == 0 {
		return false
	}
	vb := func() *dnswire.Message { return dnswire.NewChaosTXTQuery(d.id(), "version.bind") }
	r.CPEVersionBind = d.exchangeOne("", netip.AddrPortFrom(d.CPEPublicV4, 53), vb())
	if r.CPEVersionBind.Outcome != OutcomeAnswer || r.CPEVersionBind.Answer == "" {
		// No string from the CPE: can't implicate it. Still collect the
		// resolver-side strings for the report.
		for _, id := range r.InterceptedV4 {
			cfg := publicdns.Lookup(id)
			r.ResolverVersionBind = append(r.ResolverVersionBind,
				d.exchangeOne(id, netip.AddrPortFrom(cfg.V4[0], 53), vb()))
		}
		prs := append([]ProbeResult{r.CPEVersionBind}, r.ResolverVersionBind...)
		noteFaults(r, StepCPE, prs)
		d.Metrics.noteStep(StepCPE, prs)
		return false
	}
	all := true
	for _, id := range r.InterceptedV4 {
		cfg := publicdns.Lookup(id)
		pr := d.exchangeOne(id, netip.AddrPortFrom(cfg.V4[0], 53), vb())
		r.ResolverVersionBind = append(r.ResolverVersionBind, pr)
		if pr.Outcome != OutcomeAnswer || pr.Answer != r.CPEVersionBind.Answer {
			all = false
		}
	}
	prs := append([]ProbeResult{r.CPEVersionBind}, r.ResolverVersionBind...)
	noteFaults(r, StepCPE, prs)
	d.Metrics.noteStep(StepCPE, prs)
	if all {
		r.CPEString = r.CPEVersionBind.Answer
	}
	return all
}

// stepISP decides whether interception happens inside the AS (§3.3):
// a query addressed to an unroutable (bogon) destination cannot leave
// the AS, so any response proves an in-AS interceptor. Silence proves
// nothing — the interceptor may be beyond the AS, or may ignore
// bogon-addressed packets.
func (d *Detector) stepISP(r *Report) bool {
	name := d.CanaryName
	if name == "" {
		name = publicdns.CanaryDomain
	}
	answered := false

	b4 := d.BogonV4
	if !b4.IsValid() {
		b4 = bogon.ProbeV4
	}
	q := dnswire.NewQuery(d.id(), name, dnswire.TypeA, dnswire.ClassINET)
	pr := d.exchangeOne("", netip.AddrPortFrom(b4, 53), q)
	r.BogonResults = append(r.BogonResults, pr)
	if pr.Outcome == OutcomeAnswer || pr.Outcome == OutcomeError {
		answered = true
	}

	if d.QueryV6 && len(r.InterceptedV6) > 0 {
		b6 := d.BogonV6
		if !b6.IsValid() {
			b6 = bogon.ProbeV6
		}
		q6 := dnswire.NewQuery(d.id(), name, dnswire.TypeAAAA, dnswire.ClassINET)
		pr6 := d.exchangeOne("", netip.AddrPortFrom(b6, 53), q6)
		r.BogonResults = append(r.BogonResults, pr6)
		if pr6.Outcome == OutcomeAnswer || pr6.Outcome == OutcomeError {
			answered = true
		}
	}
	d.Metrics.noteStep(StepISP, r.BogonResults)
	return answered
}

// stepTransparency resolves the whoami domain via every intercepted
// resolver (§4.1.2): a clean answer whose address is outside the target
// operator's egress confirms transparent interception; a DNS error
// status means the alternate resolver blocks rather than resolves.
func (d *Detector) stepTransparency(r *Report) {
	transparent, modified := 0, 0
	for _, id := range r.InterceptedSet() {
		cfg := publicdns.Lookup(id)
		q := dnswire.NewQuery(d.id(), publicdns.WhoamiDomain, dnswire.TypeA, dnswire.ClassINET)
		pr := d.exchangeOne(id, netip.AddrPortFrom(cfg.V4[0], 53), q)
		switch pr.Outcome {
		case OutcomeAnswer:
			transparent++
			// §4.1.2(a): the whoami answer reveals the answering
			// resolver's egress. An address inside the target operator's
			// egress space would mean the operator itself resolved it;
			// Standard records that second confirmation signal.
			if a, err := netip.ParseAddr(pr.Answer); err == nil {
				pr.Standard = cfg.InEgress(a)
			}
		case OutcomeError:
			modified++
		}
		r.Whoami = append(r.Whoami, pr)
	}
	noteFaults(r, StepTransparency, r.Whoami)
	d.Metrics.noteStep(StepTransparency, r.Whoami)
	switch {
	case transparent > 0 && modified > 0:
		r.Transparency = TransparencyBoth
	case modified > 0:
		r.Transparency = StatusModified
	case transparent > 0:
		r.Transparency = Transparent
	default:
		r.Transparency = TransparencyNA
	}
}

// noteFaults aggregates fault-shaped outcomes (timeouts and garbage)
// across a step's probe results into a StepFault record. Steps that saw
// no faults leave nothing behind, so a clean run's report is unchanged.
// The ISP step never calls this: bogon silence is an expected,
// informative outcome there (§3.3), not degradation.
func noteFaults(r *Report, step string, prs []ProbeResult) {
	f := StepFault{Step: step}
	for _, pr := range prs {
		f.Queries++
		f.Attempts += pr.Attempts
		switch pr.Outcome {
		case OutcomeTimeout:
			f.Timeouts++
		case OutcomeGarbage:
			f.Garbage++
		}
	}
	if f.Queries == 0 || f.Timeouts+f.Garbage == 0 {
		return
	}
	f.Inconclusive = f.Timeouts+f.Garbage == f.Queries
	r.Faults = append(r.Faults, f)
}

// CPETestWithARecord is the counterfactual of Appendix A: testing the
// CPE with an ordinary A-record query instead of version.bind. It
// returns true when the A answers from the CPE's public address and
// from the intercepted resolvers are identical — which misclassifies an
// open-forwarder CPE as an interceptor, because everyone ultimately
// returns the same A record. It exists for the ablation benchmark.
func (d *Detector) CPETestWithARecord(name dnswire.Name, intercepted []publicdns.ID) bool {
	if !d.CPEPublicV4.IsValid() || len(intercepted) == 0 {
		return false
	}
	ask := func(server netip.Addr) (string, bool) {
		q := dnswire.NewQuery(d.id(), name, dnswire.TypeA, dnswire.ClassINET)
		pr := d.exchangeOne("", netip.AddrPortFrom(server, 53), q)
		return pr.Answer, pr.Outcome == OutcomeAnswer
	}
	cpeAns, ok := ask(d.CPEPublicV4)
	if !ok {
		return false
	}
	for _, id := range intercepted {
		ans, ok := ask(publicdns.Lookup(id).V4[0])
		if !ok || ans != cpeAns {
			return false
		}
	}
	return true
}
