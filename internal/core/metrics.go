package core

import (
	"time"

	"github.com/dnswatch/dnsloc/internal/metrics"
)

// Metrics is the per-report tally of what the transport layer did
// during one detector run: how hard the instrument had to work (queries,
// attempts, retries, backoff slept) and how its exchanges resolved. It
// is a plain value struct so every Report carries it without a registry.
type Metrics struct {
	// Queries is the number of exchangeOne calls (one logical query
	// each, possibly retried).
	Queries int
	// Attempts is the total transport sends, including retransmissions.
	Attempts int
	// Retries is Attempts minus Queries: sends beyond each first try.
	Retries int
	// Backoff is the total time slept between attempts.
	Backoff time.Duration

	// Final-outcome mix, one increment per query.
	Answers   int
	Errors    int // error rcode or unusable NOERROR
	Timeouts  int
	Garbage   int
	NoRoute   int
	AuthFails int

	// Per-attempt error classification (Classify): failed attempts that
	// were retryable vs. ones that aborted the query.
	TransientFailures int
	PermanentFailures int
}

// add folds one completed query into the tally.
func (m *Metrics) add(pr *ProbeResult, backoff time.Duration, transient, permanent int) {
	m.Queries++
	m.Attempts += pr.Attempts
	m.Retries += pr.Attempts - 1
	m.Backoff += backoff
	m.TransientFailures += transient
	m.PermanentFailures += permanent
	switch pr.Outcome {
	case OutcomeAnswer:
		m.Answers++
	case OutcomeError:
		m.Errors++
	case OutcomeTimeout:
		m.Timeouts++
	case OutcomeGarbage:
		m.Garbage++
	case OutcomeNoRoute:
		m.NoRoute++
	case OutcomeAuthFail:
		m.AuthFails++
	}
}

// RTTEdgesMs are the fixed RTT histogram bucket edges, in milliseconds.
// Fixed edges are a determinism requirement: every shard buckets
// identically, so merged histograms render identical bytes.
var RTTEdgesMs = []int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// MetricSet is the detector's pre-resolved registry handles, shared by
// every probe measured in one world. The counters are Stable: query and
// attempt counts derive from the spec and content-hash fault decisions,
// both shard-invariant. The RTT histogram is Diagnostic — the engine's
// documented exception: virtual-clock RTTs depend on resolver cache
// warmth, which depends on which probes share a world.
type MetricSet struct {
	Queries      *metrics.Counter
	Attempts     *metrics.Counter
	Retries      *metrics.Counter
	BackoffNanos *metrics.Counter

	Answers   *metrics.Counter
	Errors    *metrics.Counter
	Timeouts  *metrics.Counter
	Garbage   *metrics.Counter
	NoRoute   *metrics.Counter
	AuthFails *metrics.Counter

	TransientFailures *metrics.Counter
	PermanentFailures *metrics.Counter

	RTT *metrics.Histogram

	stepQueries  map[string]*metrics.Counter
	stepAttempts map[string]*metrics.Counter
}

// NewMetricSet registers the detector's metrics on reg. Returns nil on
// a nil registry (the disabled plane).
func NewMetricSet(reg *metrics.Registry) *MetricSet {
	if reg == nil {
		return nil
	}
	ms := &MetricSet{
		Queries:           reg.Counter("core.queries", metrics.Stable),
		Attempts:          reg.Counter("core.attempts", metrics.Stable),
		Retries:           reg.Counter("core.retries", metrics.Stable),
		BackoffNanos:      reg.Counter("core.backoff_nanos", metrics.Stable),
		Answers:           reg.Counter("core.outcome_answers", metrics.Stable),
		Errors:            reg.Counter("core.outcome_errors", metrics.Stable),
		Timeouts:          reg.Counter("core.outcome_timeouts", metrics.Stable),
		Garbage:           reg.Counter("core.outcome_garbage", metrics.Stable),
		NoRoute:           reg.Counter("core.outcome_noroute", metrics.Stable),
		AuthFails:         reg.Counter("core.outcome_authfail", metrics.Stable),
		TransientFailures: reg.Counter("core.attempt_failures_transient", metrics.Stable),
		PermanentFailures: reg.Counter("core.attempt_failures_permanent", metrics.Stable),
		RTT:               reg.Histogram("core.rtt_ms", metrics.Diagnostic, RTTEdgesMs),
		stepQueries:       make(map[string]*metrics.Counter, 4),
		stepAttempts:      make(map[string]*metrics.Counter, 4),
	}
	for _, step := range []string{StepLocation, StepCPE, StepISP, StepTransparency} {
		ms.stepQueries[step] = reg.Counter("core.step_queries."+step, metrics.Stable)
		ms.stepAttempts[step] = reg.Counter("core.step_attempts."+step, metrics.Stable)
	}
	return ms
}

// note records one completed query into the shared registry handles.
func (ms *MetricSet) note(pr *ProbeResult, backoff time.Duration, transient, permanent int) {
	if ms == nil {
		return
	}
	ms.Queries.Inc()
	ms.Attempts.Add(int64(pr.Attempts))
	ms.Retries.Add(int64(pr.Attempts - 1))
	ms.BackoffNanos.Add(int64(backoff))
	ms.TransientFailures.Add(int64(transient))
	ms.PermanentFailures.Add(int64(permanent))
	switch pr.Outcome {
	case OutcomeAnswer:
		ms.Answers.Inc()
		ms.RTT.Observe(pr.RTT.Milliseconds())
	case OutcomeError:
		ms.Errors.Inc()
	case OutcomeTimeout:
		ms.Timeouts.Inc()
	case OutcomeGarbage:
		ms.Garbage.Inc()
	case OutcomeNoRoute:
		ms.NoRoute.Inc()
	case OutcomeAuthFail:
		ms.AuthFails.Inc()
	}
}

// noteStep records one step's query/attempt totals.
func (ms *MetricSet) noteStep(step string, prs []ProbeResult) {
	if ms == nil {
		return
	}
	q, a := ms.stepQueries[step], ms.stepAttempts[step]
	for i := range prs {
		q.Inc()
		a.Add(int64(prs[i].Attempts))
	}
}
