package core

import (
	"net/netip"

	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// This file adds the two counter-signals the CHAOS technique lacks
// against evasive interceptors, and the fusion rule that combines all
// three into one per-(resolver, family) detection verdict:
//
//   - a CERTainty-style certificate-consistency oracle (Tsai et al.):
//     the operator's identity fetched over an authenticated out-of-band
//     channel is compared against the UDP location answer — a replayed
//     or forged persona that disagrees with the certificate-anchored
//     identity exposes the interceptor;
//   - a Whac-A-Mole-style longitudinal re-probe (Wei & Heidemann):
//     the location enumeration re-issued over further rounds, flagging
//     answer-set drift — forgeries drawn per query vary between rounds
//     while genuine anycast sites answer identically.
//
// Both are detection signals only: they say *that* interception
// happens, not *where*. Localization (Figure 2's CPE/ISP steps) stays
// driven by the CHAOS evidence.

// SignalVerdict is one signal's three-state conclusion for one
// (resolver, family) experiment. The third state matters: a signal
// that measured nothing (timeouts, no oracle for this operator, too
// few answers to compare) must weigh as absence, never as evidence —
// the same conservative rule the CHAOS step applies to timeouts.
type SignalVerdict string

// Signal verdicts.
const (
	// SignalClear: the signal measured and found nothing wrong.
	SignalClear SignalVerdict = "clear"
	// SignalFlagged: the signal found positive evidence of interception.
	SignalFlagged SignalVerdict = "flagged"
	// SignalInconclusive: the signal could not measure.
	SignalInconclusive SignalVerdict = "inconclusive"
)

// FuseSignals combines the three signals' verdicts for one
// (resolver, family) experiment. The rule is evidence-dominant and
// conservative, in that order:
//
//   - any flagged signal flags the fusion — one positive signal is
//     evidence regardless of what the others failed to see (they guard
//     different evasions, so disagreement is expected, not suspicious);
//   - otherwise any inconclusive signal leaves the fusion inconclusive
//     — a clean bill requires every signal that ran to have measured;
//   - otherwise the fusion is clear.
//
// Only a flagged fusion contributes to FusedInterceptedV4/V6; an
// inconclusive fusion is treated as not-intercepted (degraded paths
// must never manufacture false positives).
func FuseSignals(chaos, cert, drift SignalVerdict) SignalVerdict {
	for _, s := range [...]SignalVerdict{chaos, cert, drift} {
		if s == SignalFlagged {
			return SignalFlagged
		}
	}
	for _, s := range [...]SignalVerdict{chaos, cert, drift} {
		if s == SignalInconclusive {
			return SignalInconclusive
		}
	}
	return SignalClear
}

// CertOracle is the out-of-band certificate-consistency anchor: it
// returns the identity the operator's site presents over an
// authenticated channel (modeled on dotsim's strict profile — a DoT
// session whose certificate verifies for the target address cannot
// terminate at an interceptor). ok is false when the operator exposes
// no identity that way; the signal is then inconclusive for it.
type CertOracle interface {
	Identity(id publicdns.ID, server netip.Addr) (identity string, ok bool)
}

// CertCheck is one certificate-consistency comparison: the round-1 UDP
// location answer for one server against the oracle's identity.
type CertCheck struct {
	Resolver publicdns.ID
	Family   Family
	Server   netip.AddrPort
	// UDPAnswer is the in-band location answer compared (empty when the
	// UDP query produced no answer to compare).
	UDPAnswer string
	// OracleIdentity is the authenticated out-of-band identity (empty
	// when the oracle has none for this operator).
	OracleIdentity string
	State          SignalVerdict
}

// SignalFusion is the per-(resolver, family) record of the three
// signals and their fused verdict.
type SignalFusion struct {
	Resolver publicdns.ID
	Family   Family
	Chaos    SignalVerdict
	Cert     SignalVerdict
	Drift    SignalVerdict
	Fused    SignalVerdict
}

// stepCertCheck compares each round-1 location answer against the
// oracle's authenticated identity. No packets are sent: the oracle is
// out-of-band by construction (port-53 DNAT never touches it).
func (d *Detector) stepCertCheck(r *Report) {
	for _, pr := range r.Location {
		check := CertCheck{Resolver: pr.Resolver, Family: pr.Family, Server: pr.Server}
		identity, ok := d.CertOracle.Identity(pr.Resolver, pr.Server.Addr())
		check.OracleIdentity = identity
		switch {
		case !ok:
			check.State = SignalInconclusive
		case pr.Outcome != OutcomeAnswer:
			// Nothing in-band to compare — dropped or errored UDP answers
			// are the CHAOS signal's evidence, not this one's.
			check.State = SignalInconclusive
		case pr.Answer == identity:
			check.UDPAnswer = pr.Answer
			check.State = SignalClear
		default:
			check.UDPAnswer = pr.Answer
			check.State = SignalFlagged
		}
		r.CertChecks = append(r.CertChecks, check)
	}
}

// stepDrift re-issues the step-1 location enumeration DriftRounds more
// times. Each round draws fresh query IDs, which is precisely what
// per-query forgeries cannot survive: their answers drift while
// genuine anycast sites (and faithful replayers) answer identically.
func (d *Detector) stepDrift(r *Report) {
	specs := d.locationSpecs()
	for round := 0; round < d.DriftRounds; round++ {
		for _, spec := range specs {
			cfg := publicdns.Lookup(spec.id)
			pr := d.exchangeOne(spec.id, spec.server, cfg.Location.Message(d.id()))
			if pr.Outcome == OutcomeAnswer {
				pr.Standard = cfg.ValidateLocationAnswer(pr.Answer)
			}
			r.DriftProbes = append(r.DriftProbes, pr)
		}
	}
	noteFaults(r, StepDrift, r.DriftProbes)
	d.Metrics.noteStep(StepDrift, r.DriftProbes)
}

// fuseSignals reduces the three signals to per-(resolver, family)
// verdicts and fills the report's fused intercepted sets.
func (d *Detector) fuseSignals(r *Report) {
	r.SignalsFused = true
	families := []Family{V4}
	if d.QueryV6 {
		families = append(families, V6)
	}
	for _, id := range d.resolvers() {
		for _, fam := range families {
			f := SignalFusion{
				Resolver: id,
				Family:   fam,
				Chaos:    d.chaosSignal(r, id, fam),
				Cert:     d.certSignal(r, id, fam),
				Drift:    d.driftSignal(r, id, fam),
			}
			f.Fused = FuseSignals(f.Chaos, f.Cert, f.Drift)
			r.Signals = append(r.Signals, f)
			if f.Fused == SignalFlagged {
				if fam == V4 {
					r.FusedInterceptedV4 = append(r.FusedInterceptedV4, id)
				} else {
					r.FusedInterceptedV6 = append(r.FusedInterceptedV6, id)
				}
			}
		}
	}
}

// chaosSignal reads the step-1 verdict back as a three-state signal:
// flagged when the resolver is in the intercepted set, inconclusive
// when every location query was fault-shaped (the step measured
// nothing for this experiment), clear otherwise.
func (d *Detector) chaosSignal(r *Report, id publicdns.ID, fam Family) SignalVerdict {
	set := r.InterceptedV4
	if fam == V6 {
		set = r.InterceptedV6
	}
	for _, got := range set {
		if got == id {
			return SignalFlagged
		}
	}
	measured := false
	seen := false
	for _, pr := range r.Location {
		if pr.Resolver != id || pr.Family != fam {
			continue
		}
		seen = true
		if pr.Outcome == OutcomeAnswer || pr.Outcome == OutcomeError {
			measured = true
		}
	}
	if !seen || !measured {
		return SignalInconclusive
	}
	return SignalClear
}

// certSignal folds the (resolver, family) cert checks: any mismatch
// flags; else any successful comparison clears; else inconclusive.
func (d *Detector) certSignal(r *Report, id publicdns.ID, fam Family) SignalVerdict {
	verdict := SignalInconclusive
	for _, c := range r.CertChecks {
		if c.Resolver != id || c.Family != fam {
			continue
		}
		if c.State == SignalFlagged {
			return SignalFlagged
		}
		if c.State == SignalClear {
			verdict = SignalClear
		}
	}
	return verdict
}

// driftSignal compares answer strings per server across all rounds
// (round 1 is the Location step itself). A server answering two
// distinct strings flags drift. Only OutcomeAnswer observations count:
// a timeout or garbled round is the fault plane's business, never
// drift evidence. Clear requires at least one server observed answering
// in two or more rounds — otherwise there was nothing to compare.
func (d *Detector) driftSignal(r *Report, id publicdns.ID, fam Family) SignalVerdict {
	type obs struct {
		count    int
		first    string
		distinct bool
	}
	servers := map[netip.AddrPort]*obs{}
	note := func(pr ProbeResult) {
		if pr.Resolver != id || pr.Family != fam || pr.Outcome != OutcomeAnswer {
			return
		}
		o := servers[pr.Server]
		if o == nil {
			o = &obs{first: pr.Answer}
			servers[pr.Server] = o
		}
		o.count++
		if pr.Answer != o.first {
			o.distinct = true
		}
	}
	for _, pr := range r.Location {
		note(pr)
	}
	for _, pr := range r.DriftProbes {
		note(pr)
	}
	compared := false
	for _, o := range servers {
		if o.distinct {
			return SignalFlagged
		}
		if o.count >= 2 {
			compared = true
		}
	}
	if !compared {
		return SignalInconclusive
	}
	return SignalClear
}
