package core

import (
	"testing"
	"time"

	"github.com/dnswatch/dnsloc/internal/metrics"
)

// TestNewMetricSetDisabledPlane: a nil registry yields a nil set, and
// every recording helper is nil-safe — the disabled plane costs nothing
// and panics nowhere.
func TestNewMetricSetDisabledPlane(t *testing.T) {
	ms := NewMetricSet(nil)
	if ms != nil {
		t.Fatal("nil registry should yield a nil MetricSet")
	}
	ms.note(&ProbeResult{Outcome: OutcomeAnswer}, time.Millisecond, 1, 0)
	ms.noteStep(StepCPE, []ProbeResult{{Attempts: 1}})
}

// TestMetricSetNoteRoutesOutcomes: each outcome lands in its own
// counter, and the attempt/retry/backoff arithmetic holds up.
func TestMetricSetNoteRoutesOutcomes(t *testing.T) {
	ms := NewMetricSet(metrics.New())
	if ms == nil {
		t.Fatal("live registry yielded a nil MetricSet")
	}
	for _, o := range []Outcome{
		OutcomeAnswer, OutcomeError, OutcomeTimeout,
		OutcomeGarbage, OutcomeNoRoute, OutcomeAuthFail,
	} {
		ms.note(&ProbeResult{Outcome: o, Attempts: 2, RTT: 30 * time.Millisecond},
			time.Millisecond, 1, 1)
	}

	if ms.Queries.Value() != 6 || ms.Attempts.Value() != 12 || ms.Retries.Value() != 6 {
		t.Errorf("queries/attempts/retries = %d/%d/%d, want 6/12/6",
			ms.Queries.Value(), ms.Attempts.Value(), ms.Retries.Value())
	}
	if ms.BackoffNanos.Value() != 6*time.Millisecond.Nanoseconds() {
		t.Errorf("backoff = %d ns, want 6ms", ms.BackoffNanos.Value())
	}
	if ms.TransientFailures.Value() != 6 || ms.PermanentFailures.Value() != 6 {
		t.Errorf("transient/permanent = %d/%d, want 6/6",
			ms.TransientFailures.Value(), ms.PermanentFailures.Value())
	}
	for name, c := range map[string]*metrics.Counter{
		"answers": ms.Answers, "errors": ms.Errors, "timeouts": ms.Timeouts,
		"garbage": ms.Garbage, "noroute": ms.NoRoute, "authfails": ms.AuthFails,
	} {
		if c.Value() != 1 {
			t.Errorf("%s = %d, want exactly 1", name, c.Value())
		}
	}
	if ms.RTT.Count() != 1 {
		t.Errorf("RTT observations = %d; only answers carry an RTT", ms.RTT.Count())
	}
}

// TestMetricSetNoteStep: per-step totals sum over the step's probes.
func TestMetricSetNoteStep(t *testing.T) {
	ms := NewMetricSet(metrics.New())
	ms.noteStep(StepCPE, []ProbeResult{{Attempts: 3}, {Attempts: 1}})
	if q := ms.stepQueries[StepCPE].Value(); q != 2 {
		t.Errorf("step queries = %d, want 2", q)
	}
	if a := ms.stepAttempts[StepCPE].Value(); a != 4 {
		t.Errorf("step attempts = %d, want 4", a)
	}
	if v := ms.stepQueries[StepLocation].Value(); v != 0 {
		t.Errorf("untouched step recorded %d queries", v)
	}
}
