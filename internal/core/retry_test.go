package core_test

import (
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/homelab"
)

// flakyClient drops the first drop attempts of every flow.
type flakyClient struct {
	inner core.Client
	drop  int
	tries map[string]int
}

func (c *flakyClient) Exchange(server netip.AddrPort, q *dnswire.Message) ([]*dnswire.Message, error) {
	if c.tries == nil {
		c.tries = make(map[string]int)
	}
	key := server.String() + "/" + string(q.Question().Name)
	c.tries[key]++
	if c.tries[key] <= c.drop {
		return nil, core.ErrTimeout
	}
	return c.inner.Exchange(server, q)
}

func TestRetriesRecoverFromLoss(t *testing.T) {
	lab := homelab.New(homelab.XB6)
	flaky := &flakyClient{inner: lab.Client(), drop: 1}
	det := lab.Detector()
	det.Client = flaky
	det.Retries = 2
	r := det.Run()
	if r.Verdict != core.VerdictCPE {
		t.Errorf("verdict with retries = %s, want CPE", r.Verdict)
	}
	for _, p := range r.Location {
		if p.Outcome == core.OutcomeTimeout {
			t.Errorf("probe %s/%s still timed out despite retries", p.Resolver, p.Server)
		}
	}
}

func TestNoRetriesSeeLossAsTimeouts(t *testing.T) {
	lab := homelab.New(homelab.XB6)
	flaky := &flakyClient{inner: lab.Client(), drop: 1}
	det := lab.Detector()
	det.Client = flaky
	det.Retries = 0
	r := det.Run()
	// Everything timed out once; timeouts are conservatively not
	// interception, so the verdict degrades to "not intercepted".
	if r.Verdict != core.VerdictNotIntercepted {
		t.Errorf("verdict without retries = %s", r.Verdict)
	}
}

func TestWhoamiEgressValidationRecorded(t *testing.T) {
	lab := homelab.New(homelab.XB6)
	r := lab.Detector().Run()
	if len(r.Whoami) == 0 {
		t.Fatal("no whoami probes recorded")
	}
	for _, p := range r.Whoami {
		if p.Outcome != core.OutcomeAnswer {
			t.Errorf("whoami %s outcome = %s", p.Resolver, p.Outcome)
			continue
		}
		if p.Standard {
			t.Errorf("whoami %s answer %q claims to be in the operator's egress — it's the ISP resolver", p.Resolver, p.Answer)
		}
	}
	// Clean home: whoami answers do come from operator egress.
	clean := homelab.New(homelab.Clean).Detector().Run()
	if len(clean.Whoami) != 0 {
		t.Error("clean home ran the transparency step")
	}
}
