package core

import (
	"net/netip"
	"strings"
	"testing"

	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// TestFuseSignalsEveryCombination pins the fusion rule over its entire
// input space: all 27 (chaos, cert, drift) verdict combinations, each
// with its documented outcome written out rather than recomputed. The
// rule under test: any flagged signal flags the fusion; otherwise any
// inconclusive signal leaves it inconclusive; only three measured-clean
// signals produce clear.
func TestFuseSignalsEveryCombination(t *testing.T) {
	const (
		C = SignalClear
		F = SignalFlagged
		I = SignalInconclusive
	)
	cases := []struct {
		chaos, cert, drift, want SignalVerdict
	}{
		// All clear: the only way to a clean bill.
		{C, C, C, C},
		// One flagged signal always flags, no matter the other two:
		// the signals guard different evasions, so one positive is
		// evidence even when the others saw nothing.
		{F, C, C, F},
		{C, F, C, F},
		{C, C, F, F},
		{F, F, C, F},
		{F, C, F, F},
		{C, F, F, F},
		{F, F, F, F},
		// Flagged still dominates when the remaining signals could not
		// measure — degraded instrumentation must not suppress evidence.
		{F, I, C, F},
		{F, C, I, F},
		{F, I, I, F},
		{I, F, C, F},
		{C, F, I, F},
		{I, F, I, F},
		{I, C, F, F},
		{C, I, F, F},
		{I, I, F, F},
		{F, F, I, F},
		{F, I, F, F},
		{I, F, F, F},
		// No evidence plus any unmeasured signal: inconclusive, never
		// clear (a clean bill requires every signal to have measured)
		// and never flagged (degradation must not manufacture FPs).
		{I, C, C, I},
		{C, I, C, I},
		{C, C, I, I},
		{I, I, C, I},
		{I, C, I, I},
		{C, I, I, I},
		{I, I, I, I},
	}
	if len(cases) != 27 {
		t.Fatalf("table covers %d combinations, want 27", len(cases))
	}
	seen := map[[3]SignalVerdict]bool{}
	for _, tc := range cases {
		key := [3]SignalVerdict{tc.chaos, tc.cert, tc.drift}
		if seen[key] {
			t.Fatalf("duplicate combination %v", key)
		}
		seen[key] = true
		if got := FuseSignals(tc.chaos, tc.cert, tc.drift); got != tc.want {
			t.Errorf("FuseSignals(%s, %s, %s) = %s, want %s",
				tc.chaos, tc.cert, tc.drift, got, tc.want)
		}
	}
}

// Helpers for synthetic per-signal reports.

var (
	sigServerA = netip.MustParseAddrPort("1.1.1.1:53")
	sigServerB = netip.MustParseAddrPort("1.0.0.1:53")
)

func sigProbe(server netip.AddrPort, outcome Outcome, answer string) ProbeResult {
	return ProbeResult{
		Resolver: publicdns.Cloudflare,
		Server:   server,
		Family:   V4,
		Outcome:  outcome,
		Answer:   answer,
	}
}

func TestChaosSignal(t *testing.T) {
	d := &Detector{}
	cases := []struct {
		name string
		r    Report
		want SignalVerdict
	}{
		{
			name: "intercepted set flags",
			r: Report{
				InterceptedV4: []publicdns.ID{publicdns.Cloudflare},
				Location:      []ProbeResult{sigProbe(sigServerA, OutcomeAnswer, "bogus")},
			},
			want: SignalFlagged,
		},
		{
			name: "standard answers clear",
			r:    Report{Location: []ProbeResult{sigProbe(sigServerA, OutcomeAnswer, "IAD")}},
			want: SignalClear,
		},
		{
			name: "no probes at all is inconclusive",
			r:    Report{},
			want: SignalInconclusive,
		},
		{
			name: "every query fault-shaped is inconclusive",
			r: Report{Location: []ProbeResult{
				sigProbe(sigServerA, OutcomeTimeout, ""),
				sigProbe(sigServerB, OutcomeGarbage, ""),
			}},
			want: SignalInconclusive,
		},
		{
			name: "one answer among timeouts still measures",
			r: Report{Location: []ProbeResult{
				sigProbe(sigServerA, OutcomeTimeout, ""),
				sigProbe(sigServerB, OutcomeAnswer, "FRA"),
			}},
			want: SignalClear,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := d.chaosSignal(&tc.r, publicdns.Cloudflare, V4); got != tc.want {
				t.Errorf("chaosSignal = %s, want %s", got, tc.want)
			}
		})
	}
}

func TestCertSignal(t *testing.T) {
	d := &Detector{}
	check := func(state SignalVerdict) CertCheck {
		return CertCheck{Resolver: publicdns.Cloudflare, Family: V4, Server: sigServerA, State: state}
	}
	cases := []struct {
		name   string
		checks []CertCheck
		want   SignalVerdict
	}{
		{"no checks is inconclusive", nil, SignalInconclusive},
		{"all inconclusive stays inconclusive", []CertCheck{check(SignalInconclusive)}, SignalInconclusive},
		{"one comparison clears", []CertCheck{check(SignalInconclusive), check(SignalClear)}, SignalClear},
		{"mismatch dominates", []CertCheck{check(SignalClear), check(SignalFlagged)}, SignalFlagged},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Report{CertChecks: tc.checks}
			if got := d.certSignal(&r, publicdns.Cloudflare, V4); got != tc.want {
				t.Errorf("certSignal = %s, want %s", got, tc.want)
			}
		})
	}
}

func TestDriftSignal(t *testing.T) {
	d := &Detector{}
	cases := []struct {
		name     string
		location []ProbeResult
		drift    []ProbeResult
		want     SignalVerdict
	}{
		{
			name:     "identical answers across rounds clear",
			location: []ProbeResult{sigProbe(sigServerA, OutcomeAnswer, "IAD")},
			drift:    []ProbeResult{sigProbe(sigServerA, OutcomeAnswer, "IAD")},
			want:     SignalClear,
		},
		{
			name:     "distinct answers per server flag",
			location: []ProbeResult{sigProbe(sigServerA, OutcomeAnswer, "IAD")},
			drift:    []ProbeResult{sigProbe(sigServerA, OutcomeAnswer, "QJX")},
			want:     SignalFlagged,
		},
		{
			name: "different servers answering differently is not drift",
			location: []ProbeResult{
				sigProbe(sigServerA, OutcomeAnswer, "IAD"),
				sigProbe(sigServerB, OutcomeAnswer, "FRA"),
			},
			drift: []ProbeResult{
				sigProbe(sigServerA, OutcomeAnswer, "IAD"),
				sigProbe(sigServerB, OutcomeAnswer, "FRA"),
			},
			want: SignalClear,
		},
		{
			name:     "single observation per server cannot compare",
			location: []ProbeResult{sigProbe(sigServerA, OutcomeAnswer, "IAD")},
			drift:    []ProbeResult{sigProbe(sigServerA, OutcomeTimeout, "")},
			want:     SignalInconclusive,
		},
		{
			name:     "timeouts and garbage are never drift evidence",
			location: []ProbeResult{sigProbe(sigServerA, OutcomeTimeout, "")},
			drift:    []ProbeResult{sigProbe(sigServerA, OutcomeGarbage, "")},
			want:     SignalInconclusive,
		},
		{
			name:     "error rcodes are not answer observations",
			location: []ProbeResult{sigProbe(sigServerA, OutcomeError, "")},
			drift:    []ProbeResult{sigProbe(sigServerA, OutcomeError, "")},
			want:     SignalInconclusive,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Report{Location: tc.location, DriftProbes: tc.drift}
			if got := d.driftSignal(&r, publicdns.Cloudflare, V4); got != tc.want {
				t.Errorf("driftSignal = %s, want %s", got, tc.want)
			}
		})
	}
}

// TestFuseSignalsReport exercises the report-level fusion: flagged
// fusions (and only those) join the fused intercepted sets, and the
// report renders the signal sections only once fused.
func TestFuseSignalsReport(t *testing.T) {
	d := &Detector{Resolvers: []publicdns.ID{publicdns.Cloudflare, publicdns.Google}}
	r := &Report{
		// Cloudflare: chaos clear, cert mismatch — fusion must flag.
		// Google: nothing measured anywhere — inconclusive, not fused.
		Location: []ProbeResult{
			sigProbe(sigServerA, OutcomeAnswer, "IAD"),
			sigProbe(sigServerA, OutcomeAnswer, "IAD"),
		},
		CertChecks: []CertCheck{{
			Resolver: publicdns.Cloudflare, Family: V4, Server: sigServerA,
			UDPAnswer: "IAD", OracleIdentity: "FRA", State: SignalFlagged,
		}},
	}
	d.fuseSignals(r)
	if !r.SignalsFused {
		t.Fatal("SignalsFused not set")
	}
	if len(r.Signals) != 2 {
		t.Fatalf("Signals = %v, want 2 fusion records", r.Signals)
	}
	if got := r.FusedInterceptedV4; len(got) != 1 || got[0] != publicdns.Cloudflare {
		t.Errorf("FusedInterceptedV4 = %v, want [cloudflare]", got)
	}
	if !r.FusedIntercepted() {
		t.Error("FusedIntercepted() = false with a flagged fusion")
	}
	for _, s := range r.Signals {
		if s.Resolver == publicdns.Google && s.Fused != SignalInconclusive {
			t.Errorf("google fusion = %s, want inconclusive (nothing measured)", s.Fused)
		}
	}
	out := r.String()
	for _, want := range []string{"signal fusion:", "cert check", "fused intercepted (IPv4)"} {
		if !strings.Contains(out, want) {
			t.Errorf("report String() missing %q:\n%s", want, out)
		}
	}
}

// TestFusedInterceptedFallback: a report the fusion never ran on
// answers FusedIntercepted from the CHAOS verdict, so both scorers work
// uniformly over mixed runs.
func TestFusedInterceptedFallback(t *testing.T) {
	r := &Report{InterceptedV4: []publicdns.ID{publicdns.Quad9}}
	if !r.FusedIntercepted() {
		t.Error("unfused report should fall back to Intercepted()")
	}
	clean := &Report{}
	if clean.FusedIntercepted() {
		t.Error("clean unfused report reported fused interception")
	}
}

// TestUnfusedReportOmitsSignalSections: a report without signals must
// render byte-identically to the pre-signal format — the base golden
// corpus depends on it.
func TestUnfusedReportOmitsSignalSections(t *testing.T) {
	r := &Report{Verdict: VerdictNotIntercepted, Transparency: TransparencyNA}
	out := r.String()
	for _, banned := range []string{"signal fusion", "cert check", "drift re-probes", "fused intercepted"} {
		if strings.Contains(out, banned) {
			t.Errorf("unfused report renders %q:\n%s", banned, out)
		}
	}
}
