package core_test

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/dnswatch/dnsloc/internal/homelab"
)

func TestExplainNarratesEachVerdict(t *testing.T) {
	cases := []struct {
		scenario homelab.Scenario
		want     []string
	}{
		{homelab.Clean, []string{"Step 1", "every answer matched", "not intercepted"}},
		{homelab.XB6, []string{"Step 2", "identical strings everywhere", "intercepted by CPE"}},
		{homelab.ISPMiddlebox, []string{"Step 3", "never left the AS", "intercepted within ISP"}},
		{homelab.BeyondISP, []string{"bogon destination silent", "location unknown"}},
	}
	for _, c := range cases {
		t.Run(string(c.scenario), func(t *testing.T) {
			r := homelab.New(c.scenario).Detector().Run()
			got := r.Explain()
			for _, w := range c.want {
				if !strings.Contains(got, w) {
					t.Errorf("explanation missing %q:\n%s", w, got)
				}
			}
		})
	}
}

func TestReportJSON(t *testing.T) {
	r := homelab.New(homelab.XB6).Detector().Run()
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	s := string(blob)
	for _, want := range []string{
		`"intercepted by CPE"`, `"dnsmasq-2.78"`, `"rtt_ms"`, `"outcome":"answer"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("json missing %s", want)
		}
	}
}
