package core_test

import (
	"strings"
	"testing"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/homelab"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

func TestVerdictPerScenario(t *testing.T) {
	for _, s := range homelab.AllScenarios {
		s := s
		t.Run(string(s), func(t *testing.T) {
			lab := homelab.New(s)
			report := lab.Detector().Run()
			if report.Verdict != homelab.ExpectedVerdict(s) {
				t.Errorf("verdict = %q, want %q\n%s", report.Verdict, homelab.ExpectedVerdict(s), report)
			}
		})
	}
}

func TestCleanReportShape(t *testing.T) {
	lab := homelab.New(homelab.Clean)
	r := lab.Detector().Run()
	if r.Intercepted() {
		t.Fatalf("clean home reported interception: %s", r)
	}
	// 4 operators x (2 v4 + 2 v6) location probes.
	if len(r.Location) != 16 {
		t.Errorf("len(Location) = %d, want 16", len(r.Location))
	}
	for _, p := range r.Location {
		if p.Outcome != core.OutcomeAnswer || !p.Standard {
			t.Errorf("clean location probe %s/%s: outcome=%s standard=%t answer=%q",
				p.Resolver, p.Server, p.Outcome, p.Standard, p.Answer)
		}
	}
	if r.Transparency != core.TransparencyNA {
		t.Errorf("transparency = %s, want n/a", r.Transparency)
	}
	if len(r.BogonResults) != 0 || r.CPEVersionBind.Server.IsValid() {
		t.Error("steps 2/3 ran for a clean probe")
	}
}

func TestXB6ReportDetails(t *testing.T) {
	lab := homelab.New(homelab.XB6)
	r := lab.Detector().Run()
	if r.Verdict != core.VerdictCPE {
		t.Fatalf("verdict = %s\n%s", r.Verdict, r)
	}
	if len(r.InterceptedV4) != 4 {
		t.Errorf("InterceptedV4 = %v, want all four", r.InterceptedV4)
	}
	if len(r.InterceptedV6) != 0 {
		t.Errorf("InterceptedV6 = %v, want none (XB6 bug is v4-only)", r.InterceptedV6)
	}
	if r.CPEString != "dnsmasq-2.78" {
		t.Errorf("CPEString = %q", r.CPEString)
	}
	if r.Transparency != core.Transparent {
		t.Errorf("transparency = %s, want transparent (XDNS resolves correctly)", r.Transparency)
	}
	// version.bind from CPE and from every resolver agree.
	if r.CPEVersionBind.Answer != "dnsmasq-2.78" {
		t.Errorf("CPE version.bind = %q", r.CPEVersionBind.Answer)
	}
	for _, p := range r.ResolverVersionBind {
		if p.Answer != "dnsmasq-2.78" {
			t.Errorf("resolver %s version.bind = %q", p.Resolver, p.Answer)
		}
	}
}

func TestISPMiddleboxReportDetails(t *testing.T) {
	lab := homelab.New(homelab.ISPMiddlebox)
	r := lab.Detector().Run()
	if r.Verdict != core.VerdictISP {
		t.Fatalf("verdict = %s\n%s", r.Verdict, r)
	}
	if r.CPEString != "" {
		t.Errorf("CPEString = %q, want empty", r.CPEString)
	}
	// CPE's port is closed, so its version.bind probe timed out.
	if r.CPEVersionBind.Outcome != core.OutcomeTimeout {
		t.Errorf("CPE version.bind outcome = %s, want timeout", r.CPEVersionBind.Outcome)
	}
	if len(r.BogonResults) == 0 || r.BogonResults[0].Outcome != core.OutcomeAnswer {
		t.Errorf("bogon results = %+v, want an answer", r.BogonResults)
	}
	if r.Transparency != core.Transparent {
		t.Errorf("transparency = %s", r.Transparency)
	}
}

func TestRefusingMiddleboxIsStatusModified(t *testing.T) {
	lab := homelab.New(homelab.ISPRefusing)
	r := lab.Detector().Run()
	if r.Transparency != core.StatusModified {
		t.Errorf("transparency = %s, want status modified", r.Transparency)
	}
	if r.Verdict != core.VerdictISP {
		t.Errorf("verdict = %s (refusing resolver still answers bogon queries with REFUSED)", r.Verdict)
	}
}

func TestMixedMiddleboxIsBoth(t *testing.T) {
	lab := homelab.New(homelab.ISPMixed)
	r := lab.Detector().Run()
	if r.Transparency != core.TransparencyBoth {
		t.Errorf("transparency = %s, want both\n%s", r.Transparency, r)
	}
	if len(r.InterceptedV4) != 4 {
		t.Errorf("InterceptedV4 = %v", r.InterceptedV4)
	}
}

func TestSelectiveCPEInterceptsOnlyGoogle(t *testing.T) {
	lab := homelab.New(homelab.CPESelective)
	r := lab.Detector().Run()
	if len(r.InterceptedV4) != 1 || r.InterceptedV4[0] != publicdns.Google {
		t.Fatalf("InterceptedV4 = %v, want [google]", r.InterceptedV4)
	}
	if r.Verdict != core.VerdictCPE {
		t.Errorf("verdict = %s\n%s", r.Verdict, r)
	}
}

func TestOpenForwarderNotImplicated(t *testing.T) {
	// Appendix A: an open-forwarder CPE answers version.bind on its
	// public IP, but since nothing is intercepted, step 2 never blames it.
	lab := homelab.New(homelab.OpenForwarder)
	r := lab.Detector().Run()
	if r.Verdict != core.VerdictNotIntercepted {
		t.Errorf("verdict = %s\n%s", r.Verdict, r)
	}
}

func TestChaosRelayMisclassification(t *testing.T) {
	// §6: CPE with open port 53 that forwards version.bind to the same
	// alternate resolver the ISP middlebox uses — the method blames the
	// CPE. The test pins the documented limitation.
	lab := homelab.New(homelab.CPEChaosRelay)
	r := lab.Detector().Run()
	if r.Verdict != core.VerdictCPE {
		t.Errorf("verdict = %s; the documented misclassification should occur", r.Verdict)
	}
	if r.CPEString != "unbound 1.9.0" {
		t.Errorf("CPEString = %q, want the ISP resolver's string", r.CPEString)
	}
}

func TestReplicationStillDetected(t *testing.T) {
	lab := homelab.New(homelab.Replicating)
	r := lab.Detector().Run()
	if r.Verdict != core.VerdictISP {
		t.Fatalf("verdict = %s\n%s", r.Verdict, r)
	}
	replicated := false
	for _, p := range r.Location {
		if p.Replicated {
			replicated = true
		}
	}
	if !replicated {
		t.Error("no location probe observed replication")
	}
}

func TestDetectorWithoutCPEAddressFallsBackToISP(t *testing.T) {
	lab := homelab.New(homelab.XB6)
	d := lab.Detector()
	d.CPEPublicV4 = d.BogonV4 // zero it via a fresh struct instead
	d = &core.Detector{Client: lab.Client(), QueryV6: true}
	r := d.Run()
	// Without the CPE address the CPE test cannot run; the XB6 answers
	// bogon queries (it DNATs everything), so localization says ISP-or-
	// closer — the best the method can do without probe metadata.
	if r.Verdict != core.VerdictISP {
		t.Errorf("verdict = %s, want %s", r.Verdict, core.VerdictISP)
	}
}

func TestSubsetOfResolvers(t *testing.T) {
	lab := homelab.New(homelab.XB6)
	d := lab.Detector()
	d.Resolvers = []publicdns.ID{publicdns.Quad9}
	r := d.Run()
	if len(r.Location) != 4 { // 2 v4 + 2 v6 for one operator
		t.Errorf("len(Location) = %d, want 4", len(r.Location))
	}
	if r.Verdict != core.VerdictCPE {
		t.Errorf("verdict = %s", r.Verdict)
	}
}

func TestV4OnlyDetector(t *testing.T) {
	lab := homelab.New(homelab.Clean)
	d := lab.Detector()
	d.QueryV6 = false
	r := d.Run()
	if len(r.Location) != 8 {
		t.Errorf("len(Location) = %d, want 8", len(r.Location))
	}
}

func TestARecordAblationMisclassifiesOpenForwarder(t *testing.T) {
	// Appendix A's thought experiment, run for real: with an ordinary
	// A-record comparison, an open-forwarder CPE behind an ISP
	// interceptor looks exactly like a CPE interceptor...
	lab := homelab.New(homelab.CPEChaosRelay) // open CPE + ISP middlebox
	d := lab.Detector()
	if !d.CPETestWithARecord(publicdns.CanaryDomain, []publicdns.ID{publicdns.Google}) {
		t.Error("A-record test should (wrongly) match: everyone returns the same A record")
	}
	// ...and even on a completely clean path the A-record answers agree,
	// so the test is useless there too.
	clean := homelab.New(homelab.OpenForwarder)
	dc := clean.Detector()
	if !dc.CPETestWithARecord(publicdns.CanaryDomain, []publicdns.ID{publicdns.Google}) {
		t.Error("A-record test matches on clean open-forwarder homes as well")
	}
}

func TestReportString(t *testing.T) {
	lab := homelab.New(homelab.XB6)
	r := lab.Detector().Run()
	s := r.String()
	for _, want := range []string{"intercepted by CPE", "dnsmasq-2.78", "NON-STANDARD", "version.bind"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}
