// Package core implements the paper's contribution: a client-side
// technique that detects transparent DNS interception and localizes the
// interceptor — the client's own CPE, the client's ISP, or somewhere
// beyond (§3, Figure 2).
//
// The technique needs nothing but the ability to send DNS queries, so
// the detector is written against a one-method transport interface; the
// same Detector runs over the packet-level simulator (tests, pilot
// study) and over real UDP sockets (cmd/dnsloc on a live network).
package core

import (
	"errors"
	"net/netip"
	"time"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// ErrTimeout reports that no response arrived for a query. The technique
// treats timeouts conservatively: they are never evidence of
// interception (§3.1).
var ErrTimeout = errors.New("core: query timed out")

// ErrNoRoute reports that the vantage has no connectivity in the
// destination's address family (e.g. a v4-only probe asked for v6).
var ErrNoRoute = errors.New("core: no connectivity in destination address family")

// ErrGarbage reports that something answered but nothing parsed as a
// response to our query — truncated datagrams, corrupt payloads, or
// mismatched IDs. Like a timeout it is never interception evidence
// (there is no answer to validate), but it is a distinct fault signal:
// the path is damaging responses, not dropping them.
var ErrGarbage = errors.New("core: only unparseable responses arrived")

// ErrAuthFailed reports that a strict-profile encrypted transport
// rejected the server's certificate — the dialed resolver cannot be
// authenticated, which is what a terminate-and-intercept middlebox
// looks like to a strict DoT/DoH client. Permanent: retrying re-dials
// the same interceptor.
var ErrAuthFailed = errors.New("core: encrypted transport certificate does not authenticate the resolver")

// ErrRefused reports that the transport-level connection was refused
// (ICMP port unreachable / TCP RST) — a transient condition under
// resolver rate limiting, distinct from a DNS REFUSED rcode, which is
// an in-band answer the detector classifies itself.
var ErrRefused = errors.New("core: connection refused")

// Client is the detector's transport: send one DNS query, collect the
// response(s). Multiple responses occur under query replication; the
// first is what a stub resolver would consume.
type Client interface {
	Exchange(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, error)
}

// RTTExchanger is an optional Client extension: transports that can
// measure a query's round-trip time return it alongside the responses.
// The detector records it per probe result — an answer arriving much
// faster than any plausible path to the target's nearest anycast site
// is itself a proximity hint about the interceptor. Returning the RTT
// (rather than stashing it on the client) keeps the interface safe for
// the detector's parallel mode.
type RTTExchanger interface {
	ExchangeRTT(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, time.Duration, error)
}

// SimClient adapts a simulated host to the Client interface. It is NOT
// safe for concurrent use: the simulator is a single-threaded event
// loop. Do not combine it with Detector.Parallel.
type SimClient struct {
	Net  *netsim.Network
	Host *netsim.Host
}

// Exchange implements Client over the simulator.
func (c *SimClient) Exchange(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, error) {
	resps, _, err := c.ExchangeRTT(server, query)
	return resps, err
}

// ExchangeRTT implements RTTExchanger with the virtual-clock RTT of the
// first response.
func (c *SimClient) ExchangeRTT(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, time.Duration, error) {
	payload, err := query.PackTo(c.Net.PayloadBuf())
	if err != nil {
		return nil, 0, err
	}
	pkts, err := c.Host.Exchange(c.Net, server, payload, netsim.ExchangeOptions{})
	// The exchange has fully drained the event queue: nothing in flight
	// references the query bytes anymore (services that stashed the
	// packet only ever read its addresses), so the buffer can go back to
	// the freelist before the responses are even parsed — response
	// payloads are distinct buffers.
	c.Net.RecyclePayload(payload)
	switch {
	case errors.Is(err, netsim.ErrTimeout):
		return nil, 0, ErrTimeout
	case errors.Is(err, netsim.ErrNoAddress):
		return nil, 0, ErrNoRoute
	case err != nil:
		return nil, 0, err
	}
	out := make([]*dnswire.Message, 0, len(pkts))
	var rtt time.Duration
	for _, p := range pkts {
		m, err := dnswire.Unpack(p.Payload)
		if err != nil {
			continue // garbage response: ignore, as a stub would
		}
		if m.Header.ID != query.Header.ID {
			continue // not ours
		}
		if len(out) == 0 {
			rtt = p.RTT()
		}
		out = append(out, m)
	}
	// The packets are fully parsed; hand the slice back to the host so
	// the next flow reuses its capacity.
	c.Host.Recycle(pkts)
	if len(out) == 0 {
		// Datagrams arrived (Host.Exchange returned some) but none
		// parsed as ours: a damaged-response fault, not silence.
		return nil, 0, ErrGarbage
	}
	return out, rtt, nil
}
