package core_test

import (
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/homelab"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want core.ErrClass
	}{
		{nil, core.ClassSuccess},
		{core.ErrTimeout, core.ClassTransient},
		{core.ErrGarbage, core.ClassTransient},
		{core.ErrRefused, core.ClassTransient},
		{errors.New("something novel"), core.ClassTransient},
		{core.ErrNoRoute, core.ClassPermanent},
		{core.ErrAuthFailed, core.ClassPermanent},
	}
	for _, c := range cases {
		if got := core.Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestBackoffForDeterministicAndBounded(t *testing.T) {
	p := core.RetryPolicy{MaxAttempts: 4, Backoff: 100 * time.Millisecond, BackoffMax: 300 * time.Millisecond, JitterSeed: 9}
	for attempt := 1; attempt <= 3; attempt++ {
		a := p.BackoffFor(attempt, 42)
		b := p.BackoffFor(attempt, 42)
		if a != b {
			t.Errorf("attempt %d: backoff not deterministic (%v vs %v)", attempt, a, b)
		}
		nominal := 100 * time.Millisecond << (attempt - 1)
		if nominal > p.BackoffMax {
			nominal = p.BackoffMax
		}
		if a < nominal/2 || a > nominal {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, a, nominal/2, nominal)
		}
	}
	if p.BackoffFor(1, 42) == p.BackoffFor(1, 43) {
		t.Error("different salts produced identical jitter")
	}
	if (core.RetryPolicy{}).BackoffFor(1, 42) != 0 {
		t.Error("zero policy should not pause")
	}
	if (core.RetryPolicy{}).Attempts() != 1 {
		t.Error("zero policy should mean one attempt")
	}
}

// refusingClient fails every flow's first attempts with a NON-timeout
// transient error — the regression case: the old detector treated any
// non-timeout transport error as terminal and never retried it.
type refusingClient struct {
	inner core.Client
	drop  int
	tries map[string]int
}

func (c *refusingClient) Exchange(server netip.AddrPort, q *dnswire.Message) ([]*dnswire.Message, error) {
	if c.tries == nil {
		c.tries = make(map[string]int)
	}
	key := server.String() + "/" + string(q.Question().Name)
	c.tries[key]++
	if c.tries[key] <= c.drop {
		return nil, core.ErrRefused
	}
	return c.inner.Exchange(server, q)
}

func TestTransientNonTimeoutErrorsConsumeRetries(t *testing.T) {
	lab := homelab.New(homelab.XB6)
	det := lab.Detector()
	det.Client = &refusingClient{inner: lab.Client(), drop: 1}
	det.Retry = &core.RetryPolicy{MaxAttempts: 3}
	r := det.Run()
	if r.Verdict != core.VerdictCPE {
		t.Errorf("verdict = %s, want CPE: refused attempts should be retried", r.Verdict)
	}
	for _, p := range r.Location {
		if p.Attempts != 2 {
			t.Errorf("probe %s/%s used %d attempts, want 2", p.Resolver, p.Server, p.Attempts)
		}
	}
}

// noRouteClient always reports a permanent failure.
type noRouteClient struct{}

func (noRouteClient) Exchange(netip.AddrPort, *dnswire.Message) ([]*dnswire.Message, error) {
	return nil, core.ErrNoRoute
}

func TestPermanentErrorsFailWithoutRetrying(t *testing.T) {
	det := &core.Detector{Client: noRouteClient{}, Retry: &core.RetryPolicy{MaxAttempts: 5}}
	r := det.Run()
	if len(r.Location) == 0 {
		t.Fatal("no location probes recorded")
	}
	for _, p := range r.Location {
		if p.Outcome != core.OutcomeNoRoute {
			t.Errorf("outcome = %s, want noroute", p.Outcome)
		}
		if p.Attempts != 1 {
			t.Errorf("permanent failure burned %d attempts, want 1", p.Attempts)
		}
	}
	// No-route is absence of a path, not fault damage: nothing degraded.
	if len(r.Faults) != 0 {
		t.Errorf("Faults = %+v, want none for no-route outcomes", r.Faults)
	}
}

// garbageClient is a concurrency-safe transport whose every attempt
// returns damaged responses.
type garbageClient struct {
	mu    sync.Mutex
	calls int
}

func (c *garbageClient) Exchange(netip.AddrPort, *dnswire.Message) ([]*dnswire.Message, error) {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return nil, core.ErrGarbage
}

func TestParallelRetryBackoff(t *testing.T) {
	// Run with -race: concurrent exchangeOne calls sharing one policy,
	// each pacing its own deterministic backoff.
	client := &garbageClient{}
	det := &core.Detector{
		Client:   client,
		Parallel: true,
		Retry:    &core.RetryPolicy{MaxAttempts: 3, Backoff: 10 * time.Microsecond, JitterSeed: 4},
	}
	r := det.Run()
	if r.Verdict != core.VerdictNotIntercepted {
		t.Errorf("verdict = %s: garbage must never read as interception", r.Verdict)
	}
	// 4 operators x 2 v4 addresses, 3 attempts each.
	if want := 8 * 3; client.calls != want {
		t.Errorf("transport calls = %d, want %d", client.calls, want)
	}
	steps := r.InconclusiveSteps()
	if len(steps) != 1 || steps[0] != core.StepLocation {
		t.Errorf("InconclusiveSteps = %v, want [location]", steps)
	}
	f := r.Faults[0]
	if f.Queries != 8 || f.Garbage != 8 || f.Timeouts != 0 || f.Attempts != 24 || !f.Inconclusive {
		t.Errorf("StepFault = %+v", f)
	}
}

// timeoutClient times out every query.
type timeoutClient struct{}

func (timeoutClient) Exchange(netip.AddrPort, *dnswire.Message) ([]*dnswire.Message, error) {
	return nil, core.ErrTimeout
}

func TestAllTimeoutsRecordInconclusiveStep(t *testing.T) {
	det := &core.Detector{Client: timeoutClient{}}
	r := det.Run()
	if r.Verdict != core.VerdictNotIntercepted {
		t.Errorf("verdict = %s: timeouts must never read as interception", r.Verdict)
	}
	if len(r.Faults) != 1 {
		t.Fatalf("Faults = %+v, want one step", r.Faults)
	}
	f := r.Faults[0]
	if f.Step != core.StepLocation || !f.Inconclusive || f.Timeouts != f.Queries {
		t.Errorf("StepFault = %+v", f)
	}
}
