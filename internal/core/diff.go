package core

import (
	"fmt"
	"strings"

	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// Change is one observed difference between two detection runs.
type Change struct {
	// What identifies the changed aspect: "verdict", "transparency",
	// "fingerprint", "intercepted-v4", "intercepted-v6".
	What string
	// Before and After are renderings of the old and new values.
	Before, After string
}

// String renders the change.
func (c Change) String() string {
	return fmt.Sprintf("%s: %s -> %s", c.What, c.Before, c.After)
}

// Diff compares a previous report with this one and lists what changed —
// what a monitor (cmd/dnsmon) alerts on: a firmware update flipping a
// home from clean to intercepted, an ISP rolling a middlebox out or
// back, a new forwarder fingerprint after a router swap.
func (r *Report) Diff(prev *Report) []Change {
	if prev == nil {
		return nil
	}
	var out []Change
	if prev.Verdict != r.Verdict {
		out = append(out, Change{What: "verdict", Before: string(prev.Verdict), After: string(r.Verdict)})
	}
	if prev.Transparency != r.Transparency {
		out = append(out, Change{What: "transparency", Before: string(prev.Transparency), After: string(r.Transparency)})
	}
	if prev.CPEString != r.CPEString {
		out = append(out, Change{What: "fingerprint", Before: quoteOrDash(prev.CPEString), After: quoteOrDash(r.CPEString)})
	}
	if d := diffIDSet(prev.InterceptedV4, r.InterceptedV4); d != "" {
		out = append(out, Change{What: "intercepted-v4", Before: renderIDs(prev.InterceptedV4), After: renderIDs(r.InterceptedV4)})
	}
	if d := diffIDSet(prev.InterceptedV6, r.InterceptedV6); d != "" {
		out = append(out, Change{What: "intercepted-v6", Before: renderIDs(prev.InterceptedV6), After: renderIDs(r.InterceptedV6)})
	}
	return out
}

// diffIDSet returns a non-empty marker when the sets differ.
func diffIDSet(a, b []publicdns.ID) string {
	if renderIDs(a) != renderIDs(b) {
		return "changed"
	}
	return ""
}

// renderIDs renders a sorted operator set.
func renderIDs(ids []publicdns.ID) string {
	if len(ids) == 0 {
		return "none"
	}
	ss := make([]string, len(ids))
	for i, id := range ids {
		ss[i] = string(id)
	}
	// InterceptedV4/V6 are already in operator order; render verbatim.
	return strings.Join(ss, ",")
}

// quoteOrDash renders a possibly-empty string.
func quoteOrDash(s string) string {
	if s == "" {
		return "-"
	}
	return fmt.Sprintf("%q", s)
}
