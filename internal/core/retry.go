package core

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
	"net/netip"
	"time"
)

// RetryPolicy governs how a query is retried when its transport fails.
// It replaces the detector's bare Retries counter (kept for
// compatibility) with the pieces a lossy real network needs: an attempt
// cap, a per-attempt timeout for transports that retransmit in-socket,
// and exponential backoff with deterministic jitter, so two runs with
// the same seed pace their retries identically.
//
// The zero value means one attempt, no pause — indistinguishable from
// the old behaviour.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, including the first.
	// Values <= 0 mean one attempt.
	MaxAttempts int

	// AttemptTimeout bounds one attempt inside a retransmitting
	// transport (UDPClient). Zero lets the transport divide its overall
	// deadline evenly across attempts.
	AttemptTimeout time.Duration

	// Backoff is the base pause before the second attempt; each further
	// attempt multiplies it by Multiplier (default 2), capped at
	// BackoffMax when set. Zero disables pausing entirely — the right
	// setting for simulated transports, where wall-clock sleeps buy
	// nothing.
	Backoff    time.Duration
	BackoffMax time.Duration
	Multiplier float64

	// JitterSeed drives the deterministic jitter: the pause is scaled
	// into [50%, 100%] of its nominal value by a hash of the seed, the
	// query salt, and the attempt number. Same seed, same schedule.
	JitterSeed int64
}

// Attempts returns the effective attempt cap.
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

// BackoffFor returns the pause after the attempt-th failed attempt
// (1-based). The salt should identify the query (server + query ID) so
// concurrent queries do not retry in lockstep.
func (p RetryPolicy) BackoffFor(attempt int, salt uint64) time.Duration {
	if p.Backoff <= 0 || attempt < 1 {
		return 0
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(p.Backoff) * math.Pow(mult, float64(attempt-1))
	if p.BackoffMax > 0 && d > float64(p.BackoffMax) {
		d = float64(p.BackoffMax)
	}
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p.JitterSeed))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], salt)
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(attempt))
	h.Write(buf[:])
	frac := float64(h.Sum64()>>11) / (1 << 53)
	return time.Duration(d * (0.5 + 0.5*frac))
}

// QuerySalt builds a per-query retry salt from the server address and
// the DNS query ID.
func QuerySalt(server netip.AddrPort, id uint16) uint64 {
	h := fnv.New64a()
	a := server.Addr().As16()
	h.Write(a[:])
	var buf [4]byte
	binary.LittleEndian.PutUint16(buf[:2], server.Port())
	binary.LittleEndian.PutUint16(buf[2:], id)
	h.Write(buf[:])
	return h.Sum64()
}

// ErrClass classifies a transport error for retry purposes.
type ErrClass int

// Error classes.
const (
	// ClassSuccess: no error.
	ClassSuccess ErrClass = iota
	// ClassTransient errors (timeout, garbage response, connection
	// refused, and anything unrecognized) may clear on a retry, so
	// each one consumes an attempt.
	ClassTransient
	// ClassPermanent errors (no route in the destination's address
	// family) cannot clear on a retry; retrying them only burns time.
	ClassPermanent
)

// Classify maps a transport error to its retry class. Unknown errors
// are conservatively transient: a fault-injected path produces error
// shapes no one enumerated in advance, and wasting an attempt is
// cheaper than aborting a step.
func Classify(err error) ErrClass {
	switch {
	case err == nil:
		return ClassSuccess
	case errors.Is(err, ErrNoRoute), errors.Is(err, ErrAuthFailed):
		return ClassPermanent
	default:
		return ClassTransient
	}
}
