package core

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// Family is an IP address family.
type Family string

// Families.
const (
	V4 Family = "IPv4"
	V6 Family = "IPv6"
)

// Outcome classifies a single query's result.
type Outcome string

// Outcomes.
const (
	OutcomeAnswer  Outcome = "answer"  // a TXT/A answer arrived
	OutcomeError   Outcome = "error"   // a DNS error rcode arrived
	OutcomeTimeout Outcome = "timeout" // nothing arrived
	OutcomeNoRoute Outcome = "noroute" // no connectivity in this family
	// OutcomeGarbage: responses arrived but none parsed as ours —
	// truncation or corruption on the path. Treated like a timeout for
	// verdict purposes (never interception evidence) but recorded
	// separately as fault evidence.
	OutcomeGarbage Outcome = "garbage"
	// OutcomeAuthFail: a strict encrypted transport could not
	// authenticate the server. The query measured nothing (so it is
	// never CHAOS-answer evidence), but unlike a timeout the client
	// knows the channel itself is compromised or blocked.
	OutcomeAuthFail Outcome = "authfail"
)

// ProbeResult is one raw query observation.
type ProbeResult struct {
	Resolver publicdns.ID
	Server   netip.AddrPort
	Family   Family
	Outcome  Outcome
	// Answer is the TXT string (location/version queries) or the first
	// address (whoami queries) when Outcome is OutcomeAnswer.
	Answer string
	// RCode is set when a response arrived.
	RCode dnswire.RCode
	// Standard reports whether a location answer matched the resolver's
	// expected format.
	Standard bool
	// Replicated reports that more than one response arrived.
	Replicated bool
	// RTT is the round-trip time of the first response, when the
	// transport can measure it (zero otherwise). Interceptors near the
	// client answer conspicuously faster than distant anycast sites.
	RTT time.Duration
	// Attempts is how many transport attempts the query consumed under
	// the detector's retry policy (1 = answered first try).
	Attempts int
}

// String renders the observation compactly, in the style of Table 2/3
// cells: the answer string, or the rcode mnemonic, or "timeout".
func (p ProbeResult) String() string {
	switch p.Outcome {
	case OutcomeAnswer:
		return p.Answer
	case OutcomeError:
		return p.RCode.String()
	case OutcomeNoRoute:
		return "-"
	case OutcomeGarbage:
		return "garbage"
	case OutcomeAuthFail:
		return "authfail"
	default:
		return "timeout"
	}
}

// Verdict is the localization conclusion (Figure 2's outputs).
type Verdict string

// Verdicts.
const (
	// VerdictNotIntercepted: every location answer was standard.
	VerdictNotIntercepted Verdict = "not intercepted"
	// VerdictCPE: the client's own CPE intercepts (§3.2).
	VerdictCPE Verdict = "intercepted by CPE"
	// VerdictISP: interception happens before queries leave the AS (§3.3).
	VerdictISP Verdict = "intercepted within ISP"
	// VerdictUnknown: intercepted, but the interceptor is beyond the ISP
	// or drops bogon-addressed queries.
	VerdictUnknown Verdict = "intercepted, location unknown"
)

// Transparency classifies how the interceptor treats ordinary queries
// (§4.1.2 / Figure 3).
type Transparency string

// Transparency classes.
const (
	// TransparencyNA: not intercepted, nothing to classify.
	TransparencyNA Transparency = "n/a"
	// Transparent: every intercepted resolver still resolved correctly.
	Transparent Transparency = "transparent"
	// StatusModified: every intercepted resolver returned DNS errors.
	StatusModified Transparency = "status modified"
	// TransparencyBoth: some resolved, some errored.
	TransparencyBoth Transparency = "both"
)

// Report is the detector's full output for one vantage.
type Report struct {
	// Location holds every location-query observation (step 1).
	Location []ProbeResult

	// InterceptedV4/V6 list the resolvers whose location queries came
	// back non-standard, per family.
	InterceptedV4 []publicdns.ID
	InterceptedV6 []publicdns.ID

	// CPEVersionBind is the version.bind observation against the CPE's
	// public address (step 2); zero-valued if the step did not run.
	CPEVersionBind ProbeResult
	// ResolverVersionBind holds version.bind observations against each
	// intercepted resolver (step 2).
	ResolverVersionBind []ProbeResult
	// CPEString is the matched forwarder fingerprint when the CPE is the
	// interceptor.
	CPEString string

	// BogonResults hold the bogon-query observations (step 3).
	BogonResults []ProbeResult

	// Whoami holds the transparency-check observations (§4.1.2).
	Whoami []ProbeResult

	// DriftProbes holds the extra-round location observations of the
	// longitudinal drift signal (empty unless DriftRounds > 0).
	DriftProbes []ProbeResult

	// CertChecks holds the certificate-consistency comparisons (empty
	// unless a CertOracle is wired).
	CertChecks []CertCheck

	// Signals holds the per-(resolver, family) three-signal fusion
	// records; FusedInterceptedV4/V6 list the resolvers whose fused
	// verdict is flagged, per family. Filled only when SignalsFused.
	Signals            []SignalFusion
	FusedInterceptedV4 []publicdns.ID
	FusedInterceptedV6 []publicdns.ID
	// SignalsFused records that the fusion ran at all — a report without
	// it (no oracle, no drift rounds) answers FusedIntercepted from the
	// CHAOS verdict alone.
	SignalsFused bool

	// Faults summarizes fault-shaped degradation per step: how many
	// queries timed out or came back garbled, and whether the step was
	// left inconclusive (every query exhausted its retries with only
	// fault-shaped outcomes). A degraded run records what it could not
	// measure instead of aborting.
	Faults []StepFault

	// Metrics tallies what the instrument itself did during this run:
	// queries sent, attempts (with retransmissions), backoff slept, and
	// the outcome mix. Always populated — it is a value struct, so an
	// unwired detector still reports it.
	Metrics Metrics

	Verdict      Verdict
	Transparency Transparency
}

// Step names used in StepFault records and per-step metrics. StepISP
// never appears in StepFault (bogon silence is informative, not
// degradation) but does label the metrics plane's step counters.
const (
	StepLocation     = "location"
	StepTransparency = "transparency"
	StepCPE          = "cpe"
	StepISP          = "isp"
	// StepDrift labels the longitudinal re-probe rounds. It is not in
	// MetricSet's registered step list — its counters only exist in
	// runs that register them — so a detector without drift wired keeps
	// its metrics snapshot byte-identical.
	StepDrift = "drift"
)

// StepFault is the fault evidence for one detector step.
type StepFault struct {
	// Step is the step name (StepLocation, StepTransparency, StepCPE).
	// The ISP step never appears here: a bogon query's silence is a
	// first-class expected outcome, indistinguishable from loss by
	// design (§3.3), so it cannot be called inconclusive.
	Step string
	// Queries is how many queries the step issued.
	Queries int
	// Timeouts and Garbage count the fault-shaped final outcomes.
	Timeouts int
	Garbage  int
	// Attempts is the total transport attempts the step consumed.
	Attempts int
	// Inconclusive marks a step whose every query ended fault-shaped:
	// the step measured nothing, and the verdict's treatment of it is
	// conservative absence, not evidence.
	Inconclusive bool
}

// InconclusiveSteps lists the steps degraded to inconclusive.
func (r *Report) InconclusiveSteps() []string {
	var out []string
	for _, f := range r.Faults {
		if f.Inconclusive {
			out = append(out, f.Step)
		}
	}
	return out
}

// Intercepted reports whether any resolver was intercepted in either
// family.
func (r *Report) Intercepted() bool {
	return len(r.InterceptedV4) > 0 || len(r.InterceptedV6) > 0
}

// FusedIntercepted reports whether the three-signal fusion flags any
// resolver. On reports where the fusion never ran it falls back to the
// CHAOS-only verdict, so callers can score either mode uniformly.
func (r *Report) FusedIntercepted() bool {
	if !r.SignalsFused {
		return r.Intercepted()
	}
	return len(r.FusedInterceptedV4) > 0 || len(r.FusedInterceptedV6) > 0
}

// InterceptedSet returns the union of intercepted resolvers.
func (r *Report) InterceptedSet() []publicdns.ID {
	seen := map[publicdns.ID]bool{}
	var out []publicdns.ID
	for _, id := range append(append([]publicdns.ID{}, r.InterceptedV4...), r.InterceptedV6...) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders a human-readable report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "verdict: %s\n", r.Verdict)
	if r.Intercepted() {
		fmt.Fprintf(&sb, "intercepted (IPv4): %v\n", r.InterceptedV4)
		fmt.Fprintf(&sb, "intercepted (IPv6): %v\n", r.InterceptedV6)
		fmt.Fprintf(&sb, "transparency: %s\n", r.Transparency)
	}
	if r.CPEString != "" {
		fmt.Fprintf(&sb, "CPE forwarder fingerprint: %q\n", r.CPEString)
	}
	fmt.Fprintf(&sb, "location queries:\n")
	for _, p := range r.Location {
		mark := "standard"
		if !p.Standard {
			mark = "NON-STANDARD"
		}
		if p.Outcome == OutcomeTimeout || p.Outcome == OutcomeNoRoute || p.Outcome == OutcomeGarbage {
			mark = string(p.Outcome)
		}
		rtt := ""
		if p.RTT > 0 {
			rtt = fmt.Sprintf("  rtt=%.1fms", float64(p.RTT)/float64(time.Millisecond))
		}
		fmt.Fprintf(&sb, "  %-10s %-24s %-4s %-24s %s%s\n",
			p.Resolver, p.Server, p.Family, p.String(), mark, rtt)
	}
	if r.CPEVersionBind.Server.IsValid() {
		fmt.Fprintf(&sb, "version.bind @ CPE public IP: %s\n", r.CPEVersionBind.String())
		for _, p := range r.ResolverVersionBind {
			fmt.Fprintf(&sb, "version.bind @ %-10s: %s\n", p.Resolver, p.String())
		}
	}
	for _, p := range r.BogonResults {
		fmt.Fprintf(&sb, "bogon query (%s): %s\n", p.Family, p.String())
	}
	if len(r.DriftProbes) > 0 {
		fmt.Fprintf(&sb, "drift re-probes:\n")
		for _, p := range r.DriftProbes {
			fmt.Fprintf(&sb, "  %-10s %-24s %-4s %s\n", p.Resolver, p.Server, p.Family, p.String())
		}
	}
	for _, c := range r.CertChecks {
		fmt.Fprintf(&sb, "cert check %-10s %-24s %-4s: %s (udp=%q oracle=%q)\n",
			c.Resolver, c.Server, c.Family, c.State, c.UDPAnswer, c.OracleIdentity)
	}
	if r.SignalsFused {
		fmt.Fprintf(&sb, "signal fusion:\n")
		for _, s := range r.Signals {
			fmt.Fprintf(&sb, "  %-10s %-4s chaos=%-12s cert=%-12s drift=%-12s => %s\n",
				s.Resolver, s.Family, s.Chaos, s.Cert, s.Drift, s.Fused)
		}
		fmt.Fprintf(&sb, "fused intercepted (IPv4): %v\n", r.FusedInterceptedV4)
		fmt.Fprintf(&sb, "fused intercepted (IPv6): %v\n", r.FusedInterceptedV6)
	}
	for _, f := range r.Faults {
		status := "degraded"
		if f.Inconclusive {
			status = "INCONCLUSIVE"
		}
		fmt.Fprintf(&sb, "step %s %s: %d/%d queries fault-shaped (%d timeout, %d garbage) over %d attempts\n",
			f.Step, status, f.Timeouts+f.Garbage, f.Queries, f.Timeouts, f.Garbage, f.Attempts)
	}
	return sb.String()
}
