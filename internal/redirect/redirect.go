// Package redirect detects DNS *redirection* — specifically NXDOMAIN
// wildcarding, where a resolver rewrites "no such domain" errors into A
// records pointing at an ad server (Kreibich et al.'s Netalyzr
// findings; §2 and §7 of the paper).
//
// Redirection is the phenomenon the paper distinguishes interception
// from: the *target resolver itself* alters answers, rather than a
// middlebox diverting queries to an alternate resolver. The two are
// independent — a path can be intercepted, redirected, both, or neither
// — and this detector complements internal/core by covering the other
// axis: query names that cannot exist and therefore must return
// NXDOMAIN from any honest resolver.
package redirect

import (
	"fmt"
	"net/netip"

	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// Exchanger is the transport (structurally identical to core.Client).
type Exchanger interface {
	Exchange(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, error)
}

// DefaultProbeNames are nonexistent names under a real TLD: random
// enough that no honest zone resolves them, plausible enough that a
// wildcarding resolver monetizes them.
var DefaultProbeNames = []dnswire.Name{
	"www.zx9qv7-canary-1.com",
	"mail.k3jw8p-canary-2.com",
	"shop.q8xm2r-canary-3.com",
}

// Outcome classifies one probe name's result.
type Outcome string

// Outcomes.
const (
	// OutcomeNXDomain: the honest answer.
	OutcomeNXDomain Outcome = "nxdomain"
	// OutcomeWildcarded: an A record came back for a name that cannot
	// exist.
	OutcomeWildcarded Outcome = "wildcarded"
	// OutcomeOther: a different error or a timeout.
	OutcomeOther Outcome = "other"
)

// ProbeResult is one name's observation.
type ProbeResult struct {
	Name    dnswire.Name
	Outcome Outcome
	// Answer is the substituted address when wildcarded.
	Answer netip.Addr
}

// Result is a full detection run.
type Result struct {
	Resolver netip.AddrPort
	Probes   []ProbeResult
	// Wildcarded reports that every resolvable probe name came back
	// with an A record — systematic NXDOMAIN rewriting.
	Wildcarded bool
	// AdServers collects the distinct substituted addresses.
	AdServers []netip.Addr
}

// Detector probes one resolver for NXDOMAIN wildcarding.
type Detector struct {
	Client   Exchanger
	Resolver netip.AddrPort
	// Names overrides DefaultProbeNames.
	Names []dnswire.Name

	nextID uint16
}

// Run performs the detection.
func (d *Detector) Run() (Result, error) {
	names := d.Names
	if len(names) == 0 {
		names = DefaultProbeNames
	}
	res := Result{Resolver: d.Resolver}
	wildcarded, answered := 0, 0
	seen := map[netip.Addr]bool{}
	for _, name := range names {
		d.nextID++
		q := dnswire.NewQuery(0x5000+d.nextID, name, dnswire.TypeA, dnswire.ClassINET)
		pr := ProbeResult{Name: name, Outcome: OutcomeOther}
		resps, err := d.Client.Exchange(d.Resolver, q)
		if err == nil {
			m := resps[0]
			switch {
			case m.Header.RCode == dnswire.RCodeNameError:
				pr.Outcome = OutcomeNXDomain
				answered++
			case m.Header.RCode == dnswire.RCodeSuccess && len(m.AnswerAddrs()) > 0:
				pr.Outcome = OutcomeWildcarded
				pr.Answer, _ = netip.ParseAddr(m.AnswerAddrs()[0])
				if pr.Answer.IsValid() && !seen[pr.Answer] {
					seen[pr.Answer] = true
					res.AdServers = append(res.AdServers, pr.Answer)
				}
				wildcarded++
				answered++
			}
		}
		res.Probes = append(res.Probes, pr)
	}
	if answered == 0 {
		return res, fmt.Errorf("redirect: no probe name received a usable answer from %s", d.Resolver)
	}
	res.Wildcarded = wildcarded == answered && wildcarded > 0
	return res, nil
}
