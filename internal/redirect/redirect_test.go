package redirect_test

import (
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/homelab"
	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/redirect"
)

func TestHonestResolverIsNotWildcarded(t *testing.T) {
	lab := homelab.New(homelab.Clean)
	det := &redirect.Detector{
		Client:   lab.Client(),
		Resolver: lab.ISP.ResolverAddrPort(),
	}
	res, err := det.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Wildcarded {
		t.Fatalf("honest resolver flagged: %+v", res)
	}
	for _, p := range res.Probes {
		if p.Outcome != redirect.OutcomeNXDomain {
			t.Errorf("%s outcome = %s, want nxdomain", p.Name, p.Outcome)
		}
	}
}

func TestWildcardingResolverDetected(t *testing.T) {
	lab := homelab.New(homelab.Clean)
	adServer := netip.MustParseAddr("96.120.0.80")
	lab.ISP.Resolver.NXDomainWildcard = adServer
	det := &redirect.Detector{
		Client:   lab.Client(),
		Resolver: lab.ISP.ResolverAddrPort(),
	}
	res, err := det.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Wildcarded {
		t.Fatalf("wildcarding not detected: %+v", res)
	}
	if len(res.AdServers) != 1 || res.AdServers[0] != adServer {
		t.Errorf("ad servers = %v", res.AdServers)
	}
}

func TestPublicResolversAreHonest(t *testing.T) {
	lab := homelab.New(homelab.Clean)
	for _, id := range publicdns.All {
		det := &redirect.Detector{
			Client:   lab.Client(),
			Resolver: netip.AddrPortFrom(publicdns.Lookup(id).V4[0], 53),
		}
		res, err := det.Run()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.Wildcarded {
			t.Errorf("%s flagged as wildcarding", id)
		}
	}
}

func TestRedirectionAndInterceptionAreIndependent(t *testing.T) {
	// §2: redirection is performed by the target resolver, interception
	// by a middlebox. A home can suffer both: the XB6 diverts everything
	// to the ISP resolver, and the ISP resolver wildcards NXDOMAINs.
	lab := homelab.New(homelab.XB6)
	lab.ISP.Resolver.NXDomainWildcard = netip.MustParseAddr("96.120.0.80")

	// Interception localized as before.
	report := lab.Detector().Run()
	if report.Verdict != homelab.ExpectedVerdict(homelab.XB6) {
		t.Errorf("verdict = %s", report.Verdict)
	}

	// And the redirection detector sees wildcarding even when probing a
	// public resolver: the interceptor hands those queries to the
	// wildcarding ISP resolver too.
	det := &redirect.Detector{
		Client:   lab.Client(),
		Resolver: netip.AddrPortFrom(publicdns.Lookup(publicdns.Cloudflare).V4[0], 53),
	}
	res, err := det.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Wildcarded {
		t.Error("wildcarding through the interceptor not detected")
	}
}

func TestNoUsableAnswersErrors(t *testing.T) {
	lab := homelab.New(homelab.Clean)
	det := &redirect.Detector{
		Client:   lab.Client(),
		Resolver: netip.MustParseAddrPort("203.0.113.99:53"), // unrouted
	}
	if _, err := det.Run(); err == nil {
		t.Fatal("expected an error when nothing answers")
	}
}
