package homelab_test

import (
	"testing"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/homelab"
)

// TestReplacingTheCPEStopsInterception reproduces §7's remediation:
// the same home, ISP, and addressing, with the XB6 swapped for a
// well-behaved router, goes from "intercepted by CPE" to clean.
func TestReplacingTheCPEStopsInterception(t *testing.T) {
	lab := homelab.New(homelab.XB6)
	before := lab.Detector().Run()
	if before.Verdict != core.VerdictCPE {
		t.Fatalf("before swap: %s", before.Verdict)
	}

	lab.ReplaceCPE()
	after := lab.Detector().Run()
	if after.Verdict != core.VerdictNotIntercepted {
		t.Fatalf("after swap: %s\n%s", after.Verdict, after)
	}
}

// TestReplacingTheCPEDoesNotHelpAgainstTheISP is the counterpart: when
// the interceptor is a middlebox, a new router changes nothing.
func TestReplacingTheCPEDoesNotHelpAgainstTheISP(t *testing.T) {
	lab := homelab.New(homelab.ISPMiddlebox)
	if v := lab.Detector().Run().Verdict; v != core.VerdictISP {
		t.Fatalf("before swap: %s", v)
	}
	lab.ReplaceCPE()
	if v := lab.Detector().Run().Verdict; v != core.VerdictISP {
		t.Fatalf("after swap: %s, the middlebox should still intercept", v)
	}
}
