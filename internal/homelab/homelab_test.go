package homelab

import (
	"testing"

	"github.com/dnswatch/dnsloc/internal/core"
)

func TestAllScenariosBuild(t *testing.T) {
	for _, s := range AllScenarios {
		s := s
		t.Run(string(s), func(t *testing.T) {
			lab := New(s)
			if lab.Probe == nil || lab.CPE == nil || lab.ISP == nil || lab.Backbone == nil {
				t.Fatal("lab incompletely wired")
			}
			if lab.Scenario != s {
				t.Errorf("scenario = %s", lab.Scenario)
			}
			if !lab.Home.WANv4.IsValid() {
				t.Error("home has no WAN address")
			}
			// Every lab home is dual-stack.
			if !lab.Probe.Addr6.IsValid() {
				t.Error("probe has no v6 address")
			}
		})
	}
}

func TestExpectedVerdictCoversAllScenarios(t *testing.T) {
	for _, s := range AllScenarios {
		v := ExpectedVerdict(s)
		switch v {
		case core.VerdictNotIntercepted, core.VerdictCPE, core.VerdictISP, core.VerdictUnknown:
		default:
			t.Errorf("scenario %s has unexpected verdict %q", s, v)
		}
	}
}

func TestExpectedVerdictPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown scenario")
		}
	}()
	ExpectedVerdict(Scenario("nonsense"))
}

func TestDetectorUsesPlatformMetadata(t *testing.T) {
	lab := New(Clean)
	det := lab.Detector()
	if det.CPEPublicV4 != lab.Home.WANv4 {
		t.Errorf("detector CPE address = %s, want %s", det.CPEPublicV4, lab.Home.WANv4)
	}
	if !det.QueryV6 {
		t.Error("lab detector should query v6 (homes are dual-stack)")
	}
}

func TestLabsAreIndependent(t *testing.T) {
	// Two labs never share state: running one must not affect the other.
	a := New(XB6)
	b := New(Clean)
	ra := a.Detector().Run()
	rb := b.Detector().Run()
	if ra.Verdict != core.VerdictCPE || rb.Verdict != core.VerdictNotIntercepted {
		t.Errorf("verdicts = %s / %s", ra.Verdict, rb.Verdict)
	}
}
