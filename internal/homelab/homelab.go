// Package homelab builds single-home laboratory worlds: one simulated
// Internet (backbone + public resolvers), one ISP, one CPE, one probe
// host — with the interception behaviour chosen by a named scenario.
// It is the workbench the examples, the detector tests, and the XB6
// case study all share.
package homelab

import (
	"fmt"
	"net/netip"

	"github.com/dnswatch/dnsloc/internal/backbone"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/cpe"
	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/isp"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/ttlprobe"
)

// Scenario names a canned home configuration.
type Scenario string

// Scenarios.
const (
	// Clean: well-behaved CPE, no interception anywhere.
	Clean Scenario = "clean"
	// XB6: the §5 case study — an XB6 router DNATing all LAN v4 port-53
	// traffic to its forwarder and on to the ISP resolver.
	XB6 Scenario = "xb6"
	// PiHole: owner-intercepted DNS via a Pi-hole CPE.
	PiHole Scenario = "pihole"
	// OpenForwarder: no interception, but the CPE answers DNS on its
	// public address (Appendix A's confounder).
	OpenForwarder Scenario = "open-forwarder"
	// ISPMiddlebox: transparent interception by an in-AS middlebox that
	// also intercepts bogon-addressed queries.
	ISPMiddlebox Scenario = "isp-middlebox"
	// ISPMiddleboxNoBogon: in-AS middlebox that ignores bogon
	// destinations, so localization stops at "unknown".
	ISPMiddleboxNoBogon Scenario = "isp-middlebox-no-bogon"
	// ISPRefusing: in-AS middlebox diverting to a resolver that REFUSEs
	// everything — the "status modified" class of §4.1.2.
	ISPRefusing Scenario = "isp-refusing"
	// ISPMixed: two resolvers transparently intercepted, two refused —
	// the "both" class of Figure 3.
	ISPMixed Scenario = "isp-mixed"
	// BeyondISP: the interceptor sits in the transit network outside the
	// client's AS; bogon queries die at the AS border.
	BeyondISP Scenario = "beyond-isp"
	// CPESelective: CPE intercepts only Google's v4 addresses.
	CPESelective Scenario = "cpe-selective"
	// CPEChaosRelay: open-forwarder CPE that relays version.bind
	// upstream while an ISP middlebox intercepts — the §6
	// misclassification case.
	CPEChaosRelay Scenario = "cpe-chaos-relay"
	// Replicating: an in-AS middlebox that duplicates rather than
	// diverts queries (query replication).
	Replicating Scenario = "replicating"
)

// AllScenarios lists every scenario.
var AllScenarios = []Scenario{
	Clean, XB6, PiHole, OpenForwarder, ISPMiddlebox, ISPMiddleboxNoBogon,
	ISPRefusing, ISPMixed, BeyondISP, CPESelective, CPEChaosRelay, Replicating,
}

// Lab is a built scenario.
type Lab struct {
	Scenario Scenario
	Net      *netsim.Network
	Backbone *backbone.Backbone
	ISP      *isp.Network
	CPE      *cpe.Device
	Probe    *netsim.Host
	Home     isp.HomeAddrs

	// chaosCache is the lab-wide pre-packed persona answer cache,
	// shared by the CPE forwarder and the resolvers like a study world's.
	chaosCache *dnsserver.PackedAnswerCache
}

// New builds a scenario world.
func New(scenario Scenario) *Lab {
	l := &Lab{Scenario: scenario, Net: netsim.NewNetwork(), chaosCache: dnsserver.NewPackedAnswerCache()}
	l.Net.EmitTimeExceeded = true // labs support traceroute
	l.Backbone = backbone.Build(l.Net)

	l.ISP = l.Backbone.AttachISP(isp.Config{
		ASN:             7922,
		Name:            "Comcast",
		Country:         "US",
		Region:          publicdns.RegionNA,
		PrefixV4:        netip.MustParsePrefix("96.120.0.0/16"),
		PrefixV6:        netip.MustParsePrefix("2601:db00::/48"),
		ResolverPersona: dnsserver.PersonaUnbound,
	})

	l.ISP.Resolver.ChaosCache = l.chaosCache
	l.ISP.Refusing.ChaosCache = l.chaosCache

	google := publicdns.Lookup(publicdns.Google)
	quad9 := publicdns.Lookup(publicdns.Quad9)
	opendns := publicdns.Lookup(publicdns.OpenDNS)

	var mb *isp.MiddleboxSpec
	switch scenario {
	case ISPMiddlebox:
		mb = &isp.MiddleboxSpec{
			Rules:           []isp.MiddleboxRule{{All: true}},
			InterceptBogons: true,
		}
	case ISPMiddleboxNoBogon, CPEChaosRelay:
		mb = &isp.MiddleboxSpec{Rules: []isp.MiddleboxRule{{All: true}}}
	case ISPRefusing:
		mb = &isp.MiddleboxSpec{
			Rules:           []isp.MiddleboxRule{{All: true, UseRefusing: true}},
			InterceptBogons: true,
		}
	case ISPMixed:
		// Quad9 and OpenDNS are blocked outright; everything else —
		// including Google, Cloudflare, and bogon-addressed queries —
		// is transparently diverted to the ISP resolver.
		mb = &isp.MiddleboxSpec{
			Rules: []isp.MiddleboxRule{
				{Targets: append(append([]netip.Addr{}, quad9.V4...), opendns.V4...), UseRefusing: true},
				{All: true},
			},
			InterceptBogons: true,
		}
	case Replicating:
		mb = &isp.MiddleboxSpec{
			Rules:           []isp.MiddleboxRule{{All: true, Replicate: true}},
			InterceptBogons: true,
		}
	}
	seg := l.ISP.AddSegment(mb)
	l.Home = l.ISP.AllocHome(seg, true)

	cfg := cpe.NewPlain("lab-cpe", l.Home.LANPrefix4, l.Home.WANv4, l.ISP.ResolverAddrPort())
	cfg.LANAddr6 = firstHost6(l.Home.LANPrefix6)
	cfg.LANPrefix6 = l.Home.LANPrefix6
	cfg.WANAddr6 = l.Home.WANv6

	switch scenario {
	case XB6:
		cfg.Name = "xb6-gateway"
		cfg.Persona = dnsserver.ChaosPersona{Version: "dnsmasq-2.78"}
		cfg.Intercept = cpe.InterceptSpec{AllV4: true}
	case PiHole:
		cfg.Persona = dnsserver.PersonaPiHole
		cfg.Intercept = cpe.InterceptSpec{AllV4: true}
	case OpenForwarder:
		cfg.WANPort53Open = true
	case CPESelective:
		cfg.Persona = dnsserver.PersonaDnsmasq
		cfg.Intercept = cpe.InterceptSpec{TargetsV4: google.V4}
		// The selective DNAT rule does not catch queries to the CPE's own
		// address, so the §3.2 test only works because dnsmasq itself
		// answers on the public IP — the usual configuration of such
		// devices.
		cfg.WANPort53Open = true
	case CPEChaosRelay:
		cfg.WANPort53Open = true
		cfg.Persona = dnsserver.PersonaSilent
		cfg.ForwardUnhandledChaos = true
	}
	cfg.ChaosCache = l.chaosCache
	l.CPE = cpe.Build(cfg)
	l.ISP.AttachCPE(seg, l.CPE, l.Home)
	l.Probe = l.CPE.AttachHost("probe", 0)

	if scenario == BeyondISP {
		l.installTransitInterceptor()
	}
	return l
}

// installTransitInterceptor plants a DNAT interceptor in the regional
// transit network, outside the client's AS, diverting port-53 flows to
// a transit-operated resolver.
func (l *Lab) installTransitInterceptor() {
	regional := l.Backbone.Regional[publicdns.RegionNA]
	resolverAddr := netip.MustParseAddr("64.86.0.53")
	rtr := netsim.NewRouter("transit-interceptor-resolver", resolverAddr)
	res := dnsserver.NewRecursiveResolver(resolverAddr, backbone.RootAddr)
	res.Persona = dnsserver.PersonaPowerDNS
	res.ChaosCache = l.chaosCache
	rtr.Bind(53, res)
	rtr.AddDefaultRoute(regional)
	regional.AddRoute(netip.MustParsePrefix("64.86.0.0/24"), rtr)
	l.Backbone.Core.AddRoute(netip.MustParsePrefix("64.86.0.0/24"), regional)

	regional.NAT = netsim.NewNAT()
	regional.NAT.AddDNAT(netsim.DNATRule{
		Name: "transit-interceptor",
		Match: func(pkt netsim.Packet) bool {
			return pkt.Proto == netsim.UDP && pkt.Dst.Port() == 53 &&
				!pkt.IsIPv6() && pkt.Dst.Addr() != resolverAddr &&
				// Only subscriber traffic from our lab ISP, so resolver
				// egress traffic is untouched.
				l.ISP.Config.PrefixV4.Contains(pkt.Src.Addr())
		},
		To: netip.AddrPortFrom(resolverAddr, 53),
	})
}

// Traceroute runs a DNS traceroute from the probe to Google's primary
// v4 address (§6's TTL extension).
func (l *Lab) Traceroute() (string, error) {
	c := &ttlprobe.SimTTLClient{Net: l.Net, Host: l.Probe}
	server := netip.AddrPortFrom(publicdns.Lookup(publicdns.Google).V4[0], 53)
	tr, err := ttlprobe.Traceroute(c, server, publicdns.CanaryDomain, 12)
	if err != nil {
		return "", err
	}
	return tr.String(), nil
}

// Client returns a detector transport for the lab probe.
func (l *Lab) Client() *core.SimClient {
	return &core.SimClient{Net: l.Net, Host: l.Probe}
}

// Detector returns a ready-to-run detector for the lab probe, configured
// with the probe's public (WAN) address the way the Atlas platform would
// supply it.
func (l *Lab) Detector() *core.Detector {
	return &core.Detector{
		Client:      l.Client(),
		CPEPublicV4: l.Home.WANv4,
		QueryV6:     true,
	}
}

// ReplaceCPE swaps the home's router for a well-behaved one, keeping
// the same addressing and ISP — the remediation §7 describes:
// "replacing these CPE devices sometimes suffices to prevent DNS
// interception." It returns a new probe host behind the new router.
func (l *Lab) ReplaceCPE() {
	cfg := cpe.NewPlain("replacement-cpe", l.Home.LANPrefix4, l.Home.WANv4, l.ISP.ResolverAddrPort())
	cfg.LANAddr6 = firstHost6(l.Home.LANPrefix6)
	cfg.LANPrefix6 = l.Home.LANPrefix6
	cfg.WANAddr6 = l.Home.WANv6
	cfg.ChaosCache = l.chaosCache
	l.CPE = cpe.Build(cfg)
	// Re-wire the segment routes: inserting the same prefixes replaces
	// the old next-hops, exactly like plugging a new router into the
	// same wall jack.
	seg := l.ISP.Segments()[0]
	l.ISP.AttachCPE(seg, l.CPE, l.Home)
	l.Probe = l.CPE.AttachHost("probe-after-swap", 0)
}

// firstHost6 returns the ::1 of a /64.
func firstHost6(p netip.Prefix) netip.Addr {
	a := p.Addr().As16()
	a[15] |= 1
	return netip.AddrFrom16(a)
}

// ExpectedVerdict documents what the detector should conclude for each
// scenario — used by tests and the quickstart example.
func ExpectedVerdict(s Scenario) core.Verdict {
	switch s {
	case Clean, OpenForwarder:
		return core.VerdictNotIntercepted
	case XB6, PiHole, CPESelective:
		return core.VerdictCPE
	case ISPMiddlebox, ISPRefusing, ISPMixed, Replicating:
		return core.VerdictISP
	case ISPMiddleboxNoBogon, BeyondISP:
		return core.VerdictUnknown
	case CPEChaosRelay:
		// The documented §6 misclassification: the CPE relays
		// version.bind to the same alternate resolver the middlebox
		// diverts to, so the strings match and the CPE is blamed.
		return core.VerdictCPE
	default:
		panic(fmt.Sprintf("homelab: unknown scenario %q", s))
	}
}
