package dotsim

import (
	"errors"
	"net/netip"
	"testing"
)

func world() (target *Server, mitm *Interceptor) {
	target = &Server{
		Addr:     netip.MustParseAddr("1.1.1.1"),
		Cert:     Certificate{Subject: netip.MustParseAddr("1.1.1.1"), Trusted: true},
		Identity: "IAD",
	}
	mitm = &Interceptor{
		Cert: Certificate{Subject: netip.MustParseAddr("1.1.1.1"), Trusted: false},
		Backend: &Server{
			Addr:     netip.MustParseAddr("96.120.0.53"),
			Cert:     Certificate{Subject: netip.MustParseAddr("96.120.0.53"), Trusted: true},
			Identity: "unbound",
		},
	}
	return target, mitm
}

// validate is Cloudflare's three-letter-code check, simplified.
func validate(s string) bool { return len(s) == 3 }

func TestCleanPathBothProfiles(t *testing.T) {
	target, _ := world()
	for _, p := range []Profile{Opportunistic, Strict} {
		sess, err := Dial(Path{Target: target}, p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if sess.MITM {
			t.Errorf("%s: clean path reported MITM", p)
		}
		if id := sess.QueryIdentity(); id != "IAD" {
			t.Errorf("%s: identity = %q", p, id)
		}
	}
}

func TestStrictProfileBlocksInterception(t *testing.T) {
	target, mitm := world()
	_, err := Dial(Path{Target: target, Interceptor: mitm}, Strict)
	if !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("err = %v, want ErrAuthFailed", err)
	}
}

func TestOpportunisticProfileAllowsInterception(t *testing.T) {
	target, mitm := world()
	sess, err := Dial(Path{Target: target, Interceptor: mitm}, Opportunistic)
	if err != nil {
		t.Fatal(err)
	}
	if !sess.MITM {
		t.Error("MITM = false")
	}
	// The session works — the user sees nothing wrong — but the
	// location query gives the interceptor away (§6).
	if id := sess.QueryIdentity(); id != "unbound" {
		t.Errorf("identity = %q", id)
	}
}

func TestDetectInterceptionMatrix(t *testing.T) {
	target, mitm := world()
	cases := []struct {
		name          string
		path          Path
		profile       Profile
		wantDetected  bool
		wantConnected bool
	}{
		{"clean-opportunistic", Path{Target: target}, Opportunistic, false, true},
		{"clean-strict", Path{Target: target}, Strict, false, true},
		{"mitm-opportunistic", Path{Target: target, Interceptor: mitm}, Opportunistic, true, true},
		{"mitm-strict", Path{Target: target, Interceptor: mitm}, Strict, false, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			detected, connected := DetectInterception(c.path, c.profile, validate)
			if detected != c.wantDetected || connected != c.wantConnected {
				t.Errorf("= %t,%t want %t,%t", detected, connected, c.wantDetected, c.wantConnected)
			}
		})
	}
}

func TestInterceptorCannotForgeTrustedCert(t *testing.T) {
	// Even an interceptor that copies the subject cannot present a
	// trusted chain: strict clients always catch it. (This is the model
	// invariant that makes strict DoT interception-proof.)
	target, mitm := world()
	mitm.Cert.Subject = target.Addr
	if _, err := Dial(Path{Target: target, Interceptor: mitm}, Strict); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("err = %v, want ErrAuthFailed", err)
	}
}

func TestProfileString(t *testing.T) {
	if Opportunistic.String() != "opportunistic" || Strict.String() != "strict" {
		t.Error("Profile.String misbehaves")
	}
}

// TestNewAuthenticatedServer: the oracle's out-of-band anchor always
// survives a strict dial to itself and answers with its own identity —
// and an interceptor on the path cannot satisfy the strict profile.
func TestNewAuthenticatedServer(t *testing.T) {
	addr := netip.MustParseAddr("9.9.9.9")
	srv := NewAuthenticatedServer(addr, "res100.iad.rrdns.pch.net")
	if srv.Addr != addr || !srv.Cert.Trusted || srv.Cert.Subject != addr {
		t.Fatalf("server not self-authenticated: %+v", srv)
	}

	sess, err := Dial(Path{Target: srv}, Strict)
	if err != nil {
		t.Fatalf("strict dial to authenticated server failed: %v", err)
	}
	if sess.MITM {
		t.Error("direct session reported MITM")
	}
	if got := sess.QueryIdentity(); got != "res100.iad.rrdns.pch.net" {
		t.Errorf("QueryIdentity = %q", got)
	}

	mitm := &Interceptor{
		Cert:    Certificate{Subject: addr, Trusted: false},
		Backend: &Server{Addr: addr, Identity: "fake"},
	}
	if _, err := Dial(Path{Target: srv, Interceptor: mitm}, Strict); err == nil {
		t.Error("strict dial through an interceptor succeeded")
	}
}
