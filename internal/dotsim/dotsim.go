// Package dotsim models DNS-over-TLS interception, the evaluation the
// paper leaves as future work (§6). It is a deliberately small channel
// model, not a TLS implementation: what matters for the technique is
// the authentication decision, not the cryptography.
//
// The paper's observation: DoH and strictly-authenticated DoT prevent
// transparent interception outright, but RFC 7858's "opportunistic
// privacy profile" skips certificate validation — an on-path
// interceptor can terminate the session with its own certificate and
// the client never notices. Under that profile the location-query
// technique still works, because the alternate resolver still cannot
// forge the operator's distinctive answers.
package dotsim

import (
	"errors"
	"net/netip"
)

// Profile is the client's DoT authentication policy (RFC 7858 §4).
type Profile int

// Profiles.
const (
	// Opportunistic encrypts but does not authenticate: any certificate
	// is accepted.
	Opportunistic Profile = iota
	// Strict requires the certificate to authenticate the target
	// resolver; a mismatch aborts the session.
	Strict
)

// String names the profile.
func (p Profile) String() string {
	if p == Strict {
		return "strict"
	}
	return "opportunistic"
}

// Certificate is the model's stand-in for an X.509 server certificate:
// who it names, and whether a validating client would accept the chain.
type Certificate struct {
	// Subject is the resolver address the certificate authenticates.
	Subject netip.Addr
	// Trusted reports whether the chain verifies against the client's
	// roots (an interceptor's self-signed cert does not).
	Trusted bool
}

// AuthenticatesStrict reports whether a strict-profile client dialing
// target accepts this certificate: the chain must verify and the
// subject must name the dialed resolver (RFC 7858 §4.2). The packet
// simulator's encrypted transport plane shares this decision with Dial.
func (c Certificate) AuthenticatesStrict(target netip.Addr) bool {
	return c.Trusted && c.Subject == target
}

// Server is a DoT resolver endpoint.
type Server struct {
	Addr netip.Addr
	Cert Certificate
	// Identity is the answer to the operator's location query — the
	// distinctive string an interceptor cannot forge.
	Identity string
}

// NewAuthenticatedServer returns a Server presenting a trusted
// certificate for its own address — the out-of-band anchor a
// CERTainty-style consistency oracle dials: under the Strict profile
// no interceptor can stand in for it.
func NewAuthenticatedServer(addr netip.Addr, identity string) *Server {
	return &Server{
		Addr:     addr,
		Cert:     Certificate{Subject: addr, Trusted: true},
		Identity: identity,
	}
}

// Interceptor is an on-path middlebox that can terminate DoT sessions.
type Interceptor struct {
	// Cert is what the interceptor presents — self-signed, naming
	// whatever it likes, but never trusted.
	Cert Certificate
	// Backend answers the queries the interceptor captures.
	Backend *Server
}

// Path is a client-to-resolver channel with an optional interceptor.
type Path struct {
	Target      *Server
	Interceptor *Interceptor
}

// Session is an established DoT channel.
type Session struct {
	// PeerCert is the certificate the client saw.
	PeerCert Certificate
	// answering is who really answers queries.
	answering *Server
	// MITM reports whether the session terminates at an interceptor.
	MITM bool
}

// ErrAuthFailed is the strict profile rejecting an unauthenticated peer.
var ErrAuthFailed = errors.New("dotsim: certificate does not authenticate the target resolver")

// Dial establishes a DoT session over the path under a profile.
func Dial(p Path, profile Profile) (*Session, error) {
	s := &Session{}
	if p.Interceptor != nil {
		// The interceptor terminates TLS and presents its own cert.
		s.PeerCert = p.Interceptor.Cert
		s.answering = p.Interceptor.Backend
		s.MITM = true
	} else {
		s.PeerCert = p.Target.Cert
		s.answering = p.Target
		s.MITM = false
	}
	if profile == Strict && !s.PeerCert.AuthenticatesStrict(p.Target.Addr) {
		return nil, ErrAuthFailed
	}
	return s, nil
}

// QueryIdentity asks the session's resolver for its location-query
// identity — the DoT transposition of §3.1.
func (s *Session) QueryIdentity() string {
	return s.answering.Identity
}

// DetectInterception runs the location-query check over DoT: dial,
// query the identity, and compare against the operator's expected
// answer. It returns whether interception was detected, and whether the
// session could be established at all.
func DetectInterception(p Path, profile Profile, validate func(string) bool) (detected, connected bool) {
	sess, err := Dial(p, profile)
	if err != nil {
		// Strict profile: interception cannot even begin; the client
		// knows the channel is broken but learns nothing about where.
		return false, false
	}
	return !validate(sess.QueryIdentity()), true
}
