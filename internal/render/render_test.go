package render

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([][]string{
		{"Name", "Count"},
		{"dnsmasq-*", "23"},
		{"unbound*", "6"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("no rule line:\n%s", out)
	}
	// All rows align: the Count column starts at the same offset.
	idx := strings.Index(lines[0], "Count")
	if strings.Index(lines[2], "23") != idx {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableEmpty(t *testing.T) {
	if Table(nil) != "" {
		t.Error("empty table should render empty")
	}
}

func TestBarsScaleAndLegend(t *testing.T) {
	out := Bars("Title", []BarEntry{
		{Label: "Comcast", Segments: []BarSegment{
			{Label: "Transparent", Value: 30, Rune: '#'},
			{Label: "Modified", Value: 10, Rune: 'x'},
		}},
		{Label: "Shaw", Segments: []BarSegment{
			{Label: "Transparent", Value: 8, Rune: '#'},
		}},
	}, 40)
	if !strings.Contains(out, "Title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "40") || !strings.Contains(out, "8") {
		t.Errorf("missing totals:\n%s", out)
	}
	if !strings.Contains(out, "legend:") || !strings.Contains(out, "#=Transparent") {
		t.Errorf("missing legend:\n%s", out)
	}
	// The largest bar fills the width.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Comcast") {
			if n := strings.Count(line, "#") + strings.Count(line, "x"); n != 40 {
				t.Errorf("largest bar drawn with %d runes, want 40", n)
			}
		}
	}
}

func TestBarsNonZeroValuesVisible(t *testing.T) {
	// A tiny value next to a huge one still renders at least one rune.
	out := Bars("", []BarEntry{
		{Label: "big", Segments: []BarSegment{{Label: "a", Value: 1000, Rune: '#'}}},
		{Label: "tiny", Segments: []BarSegment{{Label: "a", Value: 1, Rune: '#'}}},
	}, 30)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "tiny") && !strings.Contains(line, "#") {
			t.Errorf("tiny value invisible:\n%s", out)
		}
	}
}

func TestBarsEmptyValues(t *testing.T) {
	out := Bars("t", []BarEntry{{Label: "none", Segments: []BarSegment{{Label: "a", Value: 0, Rune: '#'}}}}, 10)
	if !strings.Contains(out, "none") {
		t.Errorf("entry dropped:\n%s", out)
	}
}

func TestCSVQuoting(t *testing.T) {
	out := CSV([][]string{
		{"org", "count"},
		{`Liberty Global, DE`, "9"},
		{`quote"inside`, "1"},
	})
	want := "org,count\n\"Liberty Global, DE\",9\n\"quote\"\"inside\",1\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestKVAlignment(t *testing.T) {
	out := KV([][2]string{
		{"probes folded", "9874"},
		{"skipped", "126"},
	})
	want := "probes folded  9874\nskipped        126\n"
	if out != want {
		t.Errorf("KV = %q, want %q", out, want)
	}
	if KV(nil) != "" {
		t.Errorf("KV(nil) = %q, want empty", KV(nil))
	}
}
