// Package render draws the study's tables and figures as text: aligned
// ASCII tables, horizontal stacked bar charts, and CSV for downstream
// plotting.
package render

import (
	"fmt"
	"strings"
)

// Table renders rows with aligned columns. The first row is the header.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	writeRow(rows[0])
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range rows[1:] {
		writeRow(row)
	}
	return sb.String()
}

// BarSegment is one stacked-bar component.
type BarSegment struct {
	Label string
	Value int
	Rune  rune
}

// Bars renders a horizontal stacked bar chart: one row per entry, each
// value drawn to scale with its segment rune, with a legend.
func Bars(title string, entries []BarEntry, width int) string {
	if width <= 0 {
		width = 40
	}
	max := 0
	for _, e := range entries {
		total := 0
		for _, s := range e.Segments {
			total += s.Value
		}
		if total > max {
			max = total
		}
	}
	if max == 0 {
		max = 1
	}
	labelW := 0
	for _, e := range entries {
		if len(e.Label) > labelW {
			labelW = len(e.Label)
		}
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	legend := map[string]rune{}
	for _, e := range entries {
		total := 0
		var bar strings.Builder
		for _, s := range e.Segments {
			total += s.Value
			n := s.Value * width / max
			if s.Value > 0 && n == 0 {
				n = 1
			}
			bar.WriteString(strings.Repeat(string(s.Rune), n))
			legend[s.Label] = s.Rune
		}
		fmt.Fprintf(&sb, "%-*s |%-*s %d\n", labelW, e.Label, width, bar.String(), total)
	}
	var keys []string
	for k := range legend {
		keys = append(keys, k)
	}
	// Stable legend order: by first appearance in the entries.
	var ordered []string
	seen := map[string]bool{}
	for _, e := range entries {
		for _, s := range e.Segments {
			if !seen[s.Label] {
				seen[s.Label] = true
				ordered = append(ordered, s.Label)
			}
		}
	}
	_ = keys
	if len(ordered) > 0 {
		sb.WriteString("legend:")
		for _, k := range ordered {
			fmt.Fprintf(&sb, "  %c=%s", legend[k], k)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// BarEntry is one bar of a chart.
type BarEntry struct {
	Label    string
	Segments []BarSegment
}

// KV renders aligned key-value lines — the run-summary block the CLI
// prints after a streamed study:
//
//	probes folded     9874
//	probes skipped    126
//	checkpoints       10
func KV(pairs [][2]string) string {
	width := 0
	for _, p := range pairs {
		if len(p[0]) > width {
			width = len(p[0])
		}
	}
	var sb strings.Builder
	for _, p := range pairs {
		fmt.Fprintf(&sb, "%-*s  %s\n", width, p[0], p[1])
	}
	return sb.String()
}

// CSV renders rows as comma-separated values with minimal quoting.
func CSV(rows [][]string) string {
	var sb strings.Builder
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				sb.WriteString(",")
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			sb.WriteString(cell)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
