package netsim

import (
	"net/netip"
	"sort"
	"time"
)

// Service is a UDP server bound to a port on a Router. Implementations
// are state machines: they handle one datagram and may send others
// (responses, upstream queries) through the ServiceCtx.
type Service interface {
	ServeUDP(sc *ServiceCtx, pkt Packet)
}

// ServiceFunc adapts a function to the Service interface.
type ServiceFunc func(sc *ServiceCtx, pkt Packet)

// ServeUDP implements Service.
func (f ServiceFunc) ServeUDP(sc *ServiceCtx, pkt Packet) { f(sc, pkt) }

// ServiceCtx lets a service send packets that originate at its router.
type ServiceCtx struct {
	Router *Router
	ctx    *Ctx
}

// Now returns the current virtual time — services use it for cache
// expiry and timestamps.
func (sc *ServiceCtx) Now() time.Duration { return sc.ctx.Now() }

// PayloadBuf hands the service a recycled payload buffer for building a
// reply (see Network.PayloadBuf). Only payloads that reach an exchange
// initiator are ever recycled back, so a service may use this for any
// packet it sends.
func (sc *ServiceCtx) PayloadBuf() []byte { return sc.ctx.net.PayloadBuf() }

// Send emits a locally-originated packet. The router's reverse-DNAT
// table is consulted so that responses to intercepted flows leave with
// the spoofed (original-destination) source address, then the packet is
// routed normally.
func (sc *ServiceCtx) Send(pkt Packet) {
	r := sc.Router
	if pkt.SentAt == 0 {
		pkt.SentAt = sc.ctx.Now()
	}
	if r.NAT != nil {
		if rewritten, ok := r.NAT.reverseDNAT(pkt); ok {
			sc.ctx.Trace(TraceUnDNAT, rewritten, "spoofing source for intercepted flow")
			pkt = rewritten
		}
	}
	r.routePacket(sc.ctx, pkt, true)
}

// Reply builds and sends the conventional response to an inbound
// datagram: source and destination swapped, fresh TTL, given payload.
// The request's SentAt carries over so the client can measure the
// flow's round-trip time.
func (sc *ServiceCtx) Reply(to Packet, payload []byte) {
	sc.Send(Packet{
		Src:     to.Dst,
		Dst:     to.Src,
		Proto:   to.Proto,
		TTL:     DefaultTTL,
		Payload: payload,
		SentAt:  to.SentAt,
		Enc:     to.Enc,
	})
}

// Route is one forwarding-table entry.
type Route struct {
	Prefix netip.Prefix
	Next   Device
	// Filter, if set, can veto forwarding via this route; the packet is
	// dropped with the returned reason. Border routers use it to discard
	// bogon-addressed packets at the AS edge.
	Filter func(Packet) (drop bool, why string)
}

// Router is the general middle-of-network device: CPE, ISP access and
// border routers, middleboxes, and server front-ends are all Routers
// with different configuration. Its receive pipeline follows netfilter
// order: conntrack reversal and DNAT at PREROUTING, then the routing
// decision (local delivery vs. forward), then SNAT at POSTROUTING.
type Router struct {
	Name string

	// Delay is the one-way latency of this router's uplinks; zero uses
	// the network default. World builders grade it by tier (LAN < access
	// < backbone) so virtual RTTs are meaningful.
	Delay time.Duration

	// RouterID is the address this router answers ICMP Time Exceeded
	// from (when the network enables it). Zero means the router stays
	// anonymous and traceroute shows "*" at its hop.
	RouterID netip.Addr

	// NAT, if non-nil, enables DNAT/SNAT processing.
	NAT *NAT

	addrs    map[netip.Addr]bool
	services map[uint16]Service
	byAddr   map[netip.AddrPort]Service
	noServe  map[netip.AddrPort]bool

	// Routes are stored per family in per-prefix-length maps so lookup
	// is O(distinct prefix lengths) hash probes, not a linear scan —
	// access routers in the study carry one route per subscriber.
	routes4  map[int]map[netip.Prefix]*Route
	routes6  map[int]map[netip.Prefix]*Route
	lengths4 []int // descending, rebuilt when stale
	lengths6 []int
	stale    bool

	// cache4/cache6 memoize recent lookupRoute results. Routers forward
	// long runs of packets between the same few endpoints (a probe's
	// WAN address and a handful of resolvers), so a tiny cache converts
	// the per-length prefix-map probes into a few address compares.
	// Invalidated with the lengths whenever the table changes.
	cache4 lookupCache
	cache6 lookupCache

	// inputFilters veto arriving packets before any PREROUTING
	// processing — the INPUT/FORWARD drop rules of an iptables firewall.
	// A middlebox that blocks encrypted DNS to force a downgrade (the
	// XDRI "block" behavior) installs one matching TCP 853/443.
	inputFilters []func(Packet) (drop bool, why string)

	// core, when set, shares this router's forwarding table across
	// worlds (see routingcore.go). The recorder keeps local tables and
	// mirrors inserts into the core; bound routers resolve against the
	// sealed core plus any world-local additions, with coreRoutes
	// materializing each core ordinal as a cacheable *Route.
	core          *RoutingCore
	coreRecording bool
	coreRoutes    []Route
}

// lookupCacheSlots is the per-family memo size: big enough for the
// endpoints of one in-flight exchange (client, resolver, next hop,
// ICMP source), small enough to scan in a few compares.
const lookupCacheSlots = 4

// lookupCache is a tiny round-robin memo of lookupRoute results. A hit
// may carry a nil route — "no route" is as cacheable as a match.
type lookupCache struct {
	dst  [lookupCacheSlots]netip.Addr
	rt   [lookupCacheSlots]*Route
	ok   [lookupCacheSlots]bool
	next int
}

func (c *lookupCache) get(d netip.Addr) (*Route, bool) {
	for i := range c.dst {
		if c.ok[i] && c.dst[i] == d {
			return c.rt[i], true
		}
	}
	return nil, false
}

func (c *lookupCache) put(d netip.Addr, rt *Route) {
	i := c.next
	c.dst[i], c.rt[i], c.ok[i] = d, rt, true
	c.next = (i + 1) % lookupCacheSlots
}

// NewRouter returns a router with the given local addresses.
func NewRouter(name string, addrs ...netip.Addr) *Router {
	r := &Router{
		Name:     name,
		addrs:    make(map[netip.Addr]bool),
		services: make(map[uint16]Service),
		byAddr:   make(map[netip.AddrPort]Service),
		noServe:  make(map[netip.AddrPort]bool),
		routes4:  make(map[int]map[netip.Prefix]*Route),
		routes6:  make(map[int]map[netip.Prefix]*Route),
	}
	for _, a := range addrs {
		r.addrs[a] = true
	}
	return r
}

// DeviceName implements Device.
func (r *Router) DeviceName() string { return r.Name }

// EgressDelay implements EgressDelayer.
func (r *Router) EgressDelay() time.Duration { return r.Delay }

// AddAddr adds a local address.
func (r *Router) AddAddr(a netip.Addr) { r.addrs[a] = true }

// HasAddr reports whether a is local to this router.
func (r *Router) HasAddr(a netip.Addr) bool { return r.addrs[a] }

// Addrs returns the router's local addresses (unordered).
func (r *Router) Addrs() []netip.Addr {
	out := make([]netip.Addr, 0, len(r.addrs))
	for a := range r.addrs {
		out = append(out, a)
	}
	return out
}

// Bind attaches a service to a UDP port on all local addresses.
// A port with no service is "closed": packets to it are dropped, which
// the client observes as a timeout.
func (r *Router) Bind(port uint16, s Service) { r.services[port] = s }

// BindOn attaches a service to a port on one specific local address,
// taking precedence over a wildcard Bind on the same port.
func (r *Router) BindOn(addr netip.Addr, port uint16, s Service) {
	r.byAddr[netip.AddrPortFrom(addr, port)] = s
}

// CloseOn marks (addr, port) closed even if a wildcard Bind covers the
// port — how a CPE firewalls port 53 on its WAN address while serving
// its LAN.
func (r *Router) CloseOn(addr netip.Addr, port uint16) {
	r.noServe[netip.AddrPortFrom(addr, port)] = true
}

// Unbind detaches the wildcard service on a port. Services that open
// ephemeral upstream ports (forwarders, resolvers) use it to clean up.
func (r *Router) Unbind(port uint16) { delete(r.services, port) }

// BoundService returns the service that would receive traffic to
// (addr, port), if any.
func (r *Router) BoundService(addr netip.Addr, port uint16) (Service, bool) {
	key := netip.AddrPortFrom(addr, port)
	if r.noServe[key] {
		return nil, false
	}
	if s, ok := r.byAddr[key]; ok {
		return s, true
	}
	s, ok := r.services[port]
	return s, ok
}

// AddInputFilter installs a drop rule evaluated on every packet this
// router receives, before conntrack and DNAT. Dropped packets vanish;
// the sender observes a timeout, as with a real silent firewall DROP.
func (r *Router) AddInputFilter(f func(Packet) (drop bool, why string)) {
	r.inputFilters = append(r.inputFilters, f)
}

// AddRoute appends a forwarding entry.
func (r *Router) AddRoute(prefix netip.Prefix, next Device) {
	r.insertRoute(&Route{Prefix: prefix, Next: next})
}

// AddRouteFiltered appends a forwarding entry with an egress filter.
func (r *Router) AddRouteFiltered(prefix netip.Prefix, next Device, filter func(Packet) (bool, string)) {
	r.insertRoute(&Route{Prefix: prefix, Next: next, Filter: filter})
}

// ShareCore attaches shared routing state (routingcore.go). In
// recording mode the router keeps its local tables — the recorder world
// stays the reference — and mirrors eligible inserts into the core. In
// bound mode the sealed core supplies the table; coreRoutes is sized
// once so materialized routes have stable addresses for the lookup
// cache.
func (r *Router) ShareCore(core *RoutingCore, recording bool) {
	if core == nil {
		return
	}
	r.core = core
	r.coreRecording = recording
	if !recording {
		r.coreRoutes = make([]Route, core.numRoutes)
	}
}

// insertRoute stores a route in the per-family, per-length map. A later
// insert of the same prefix replaces the earlier one.
func (r *Router) insertRoute(rt *Route) {
	p := rt.Prefix.Masked()
	rt.Prefix = p
	if r.core != nil && rt.Filter == nil && rt.Next != nil {
		if r.coreRecording {
			r.core.record(p, rt.Next.DeviceName())
			// fall through: the recorder also populates local tables
		} else if e, ok := r.core.entry(p); ok && r.core.hopNames[e.hop] == rt.Next.DeviceName() {
			// Bound world re-issuing a recorded insert: just bind the
			// device into the ordinal's slot, no map work. Inserts the
			// core doesn't know (or that disagree on the hop) fall
			// through to a local insert, which shadows the core entry.
			r.coreRoutes[e.ord] = Route{Prefix: p, Next: rt.Next}
			return
		}
	}
	table := r.routes4
	if p.Addr().Is6() {
		table = r.routes6
	}
	if table[p.Bits()] == nil {
		table[p.Bits()] = make(map[netip.Prefix]*Route)
	}
	table[p.Bits()][p] = rt
	r.stale = true
}

// AddDefaultRoute installs 0.0.0.0/0 and ::/0 towards next.
func (r *Router) AddDefaultRoute(next Device) {
	r.AddRoute(netip.MustParsePrefix("0.0.0.0/0"), next)
	r.AddRoute(netip.MustParsePrefix("::/0"), next)
}

// AddDefaultRouteFiltered installs filtered default routes for both
// families.
func (r *Router) AddDefaultRouteFiltered(next Device, filter func(Packet) (bool, string)) {
	r.AddRouteFiltered(netip.MustParsePrefix("0.0.0.0/0"), next, filter)
	r.AddRouteFiltered(netip.MustParsePrefix("::/0"), next, filter)
}

// lookupRoute performs longest-prefix-match over the table, memoized
// per destination. The memo is pure: it only short-circuits a repeat of
// the identical lookup, and any table change invalidates it via stale.
func (r *Router) lookupRoute(dst netip.Addr) *Route {
	return r.lookupRouteM(dst, nil)
}

// lookupRouteM is lookupRoute with the hot path's metric handles; nm
// may be nil (metrics detached).
func (r *Router) lookupRouteM(dst netip.Addr, nm *netMetrics) *Route {
	if r.stale {
		r.lengths4 = sortedLengthsDesc(r.routes4)
		r.lengths6 = sortedLengthsDesc(r.routes6)
		r.cache4 = lookupCache{}
		r.cache6 = lookupCache{}
		r.stale = false
	}
	d := dst.Unmap()
	table, lengths, cache := r.routes4, r.lengths4, &r.cache4
	var core *coreTable
	if r.core != nil && !r.coreRecording {
		core = &r.core.v4
	}
	if d.Is6() {
		table, lengths, cache = r.routes6, r.lengths6, &r.cache6
		if core != nil {
			core = &r.core.v6
		}
	}
	if nm != nil {
		nm.routeLookups.Inc()
	}
	if rt, ok := cache.get(d); ok {
		if nm != nil {
			nm.routeCacheHits.Inc()
		}
		return rt
	}
	hit := r.lpmMatch(d, table, lengths, core)
	cache.put(d, hit)
	return hit
}

// lpmMatch scans the local table and (on bound routers) the shared core
// in a merged longest-prefix walk. Local entries win ties — a world-
// local insert shadows the core's entry for the same prefix length.
func (r *Router) lpmMatch(d netip.Addr, table map[int]map[netip.Prefix]*Route, lengths []int, core *coreTable) *Route {
	li, ci := 0, 0
	for li < len(lengths) || (core != nil && ci < len(core.lengths)) {
		lb, cb := -1, -1
		if li < len(lengths) {
			lb = lengths[li]
		}
		if core != nil && ci < len(core.lengths) {
			cb = core.lengths[ci]
		}
		if lb >= cb {
			li++
			if p, err := d.Prefix(lb); err == nil {
				if rt, ok := table[lb][p]; ok {
					return rt
				}
			}
		} else {
			ci++
			if p, err := d.Prefix(cb); err == nil {
				if e, ok := core.byLen[cb][p]; ok {
					if rt := &r.coreRoutes[e.ord]; rt.Next != nil {
						return rt
					}
				}
			}
		}
	}
	return nil
}

// sortedLengthsDesc lists a table's prefix lengths, longest first.
func sortedLengthsDesc(table map[int]map[netip.Prefix]*Route) []int {
	out := make([]int, 0, len(table))
	for bits := range table {
		out = append(out, bits)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Receive implements Device: the netfilter-ordered pipeline.
func (r *Router) Receive(ctx *Ctx, pkt Packet) {
	// Firewall drop rules run first: a blocked packet never reaches
	// conntrack or NAT.
	for _, f := range r.inputFilters {
		if drop, why := f(pkt); drop {
			ctx.Drop(pkt, why)
			return
		}
	}

	// PREROUTING, conntrack reversal: replies of tracked flows get their
	// addresses restored before any routing decision. ICMP errors about
	// masqueraded flows are re-addressed to the original LAN host.
	if r.NAT != nil {
		if pkt.Proto == ICMP {
			if p, ok := r.NAT.reverseDNATICMP(pkt); ok {
				ctx.Trace(TraceUnDNAT, p, "restoring original destination (icmp)")
				pkt = p
			}
			if p, ok := r.NAT.reverseSNATICMP(pkt); ok {
				ctx.Trace(TraceUnSNAT, p, "restoring LAN destination (icmp)")
				pkt = p
			}
		}
		if p, ok := r.NAT.reverseDNAT(pkt); ok {
			ctx.Trace(TraceUnDNAT, p, "spoofing source for intercepted flow")
			pkt = p
		}
		if p, ok := r.NAT.reverseSNAT(pkt); ok {
			ctx.Trace(TraceUnSNAT, p, "restoring LAN destination")
			pkt = p
		}
	}

	// PREROUTING, DNAT: interception happens here, before the routing
	// decision — netfilter order. The rule set sees every arriving
	// packet, including ones addressed to the router itself; that is why
	// an intercepting CPE answers a version.bind query sent to its own
	// public address (§3.2 of the paper).
	if r.NAT != nil {
		p, rewritten, replicate := r.NAT.applyDNAT(pkt)
		if rewritten {
			ctx.net.observeNAT(r.NAT)
			if ctx.net.tracing() {
				ctx.Trace(TraceDNAT, p, "intercepted: "+pkt.Dst.String()+" -> "+p.Dst.String())
			}
			if replicate {
				// The original also continues: query replication.
				r.routePacket(ctx, pkt, false)
			}
			pkt = p
		}
	}

	// Routing decision: local delivery?
	if r.addrs[pkt.Dst.Addr()] {
		r.deliverLocal(ctx, pkt)
		return
	}
	r.routePacket(ctx, pkt, false)
}

// deliverLocal hands the packet to the bound service, if any.
func (r *Router) deliverLocal(ctx *Ctx, pkt Packet) {
	s, ok := r.BoundService(pkt.Dst.Addr(), pkt.Dst.Port())
	if !ok {
		ctx.Drop(pkt, "port closed")
		return
	}
	ctx.Trace(TraceDeliver, pkt, "local service")
	s.ServeUDP(&ServiceCtx{Router: r, ctx: ctx}, pkt)
}

// routePacket forwards via the table, applying POSTROUTING SNAT.
// locallyOriginated packets skip route filters' TTL handling edge cases
// but otherwise follow the same path.
func (r *Router) routePacket(ctx *Ctx, pkt Packet, locallyOriginated bool) {
	rt := r.lookupRouteM(pkt.Dst.Addr(), ctx.net.metrics)
	if rt == nil || rt.Next == nil {
		ctx.Drop(pkt, "no route to "+pkt.Dst.Addr().String())
		return
	}
	if rt.Filter != nil {
		if drop, why := rt.Filter(pkt); drop {
			ctx.Drop(pkt, why)
			return
		}
	}
	// TTL expiry is decided before POSTROUTING so the ICMP notification
	// references the original (pre-SNAT) source.
	if !locallyOriginated && pkt.TTL <= 1 {
		expired := pkt
		expired.TTL = 0
		ctx.Trace(TraceDrop, expired, "ttl exceeded")
		if ctx.net.EmitTimeExceeded && pkt.Proto != ICMP {
			// If this very device DNATed the flow, report the client's
			// original destination in the ICMP (conntrack fixup).
			icmpRef := pkt
			if r.NAT != nil {
				key := ctKey{client: pkt.Src, target: pkt.Dst}
				if orig, ok := r.NAT.dnatCT[key]; ok {
					delete(r.NAT.dnatCT, key)
					icmpRef.Dst = orig
				}
			}
			r.sendTimeExceeded(ctx, icmpRef)
		}
		return
	}
	// POSTROUTING: masquerade LAN sources on the way out.
	if r.NAT != nil && !locallyOriginated {
		if p, ok := r.NAT.applySNAT(pkt); ok {
			ctx.net.observeNAT(r.NAT)
			if ctx.net.tracing() {
				ctx.Trace(TraceSNAT, p, "masqueraded "+pkt.Src.String()+" -> "+p.Src.String())
			}
			pkt = p
		}
	}
	if locallyOriginated {
		ctx.Emit(rt.Next, pkt)
		return
	}
	ctx.Forward(rt.Next, pkt)
}
