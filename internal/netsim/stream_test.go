package netsim

import (
	"net/netip"
	"testing"
)

// TestStreamFrameRoundTrips pins the wire format of every stream frame
// kind: pack then parse is the identity, and each parser rejects the
// other kinds' frames.
func TestStreamFrameRoundTrips(t *testing.T) {
	subject := netip.MustParseAddr("9.9.9.9")
	cert := StreamCert{Subject: subject, Trusted: true}

	hello := PackStreamHello(ALPNDoT)
	if alpn, ok := ParseStreamHello(hello); !ok || alpn != ALPNDoT {
		t.Errorf("ParseStreamHello(PackStreamHello) = (%d, %v), want (%d, true)", alpn, ok, ALPNDoT)
	}

	ack := PackStreamHelloAck(ALPNDoH, cert, 0xdeadbeefcafe)
	alpn, gotCert, ticket, ok := ParseStreamHelloAck(ack)
	if !ok || alpn != ALPNDoH || gotCert != cert || ticket != 0xdeadbeefcafe {
		t.Errorf("helloAck round trip = (%d, %+v, %#x, %v)", alpn, gotCert, ticket, ok)
	}

	framed := []byte{0x00, 0x02, 0xab, 0xcd}
	data := PackStreamData(ALPNDoT, 42, framed)
	dALPN, dTicket, body, ok := ParseStreamData(data)
	if !ok || dALPN != ALPNDoT || dTicket != 42 || string(body) != string(framed) {
		t.Errorf("data round trip = (%d, %d, %x, %v)", dALPN, dTicket, body, ok)
	}

	alert := PackStreamAlert(StreamAlertBadTicket)
	if code, ok := ParseStreamAlert(alert); !ok || code != StreamAlertBadTicket {
		t.Errorf("alert round trip = (%d, %v)", code, ok)
	}

	// Cross-parsing must fail: a hello is not an ack, an alert is not
	// data, and a plain DNS payload (no magic) is none of them.
	if _, _, _, ok := ParseStreamHelloAck(hello); ok {
		t.Error("ParseStreamHelloAck accepted a hello frame")
	}
	if _, _, _, ok := ParseStreamData(alert); ok {
		t.Error("ParseStreamData accepted an alert frame")
	}
	dns := []byte{0x12, 0x34, 0x01, 0x00, 0, 1, 0, 0, 0, 0, 0, 0}
	if _, ok := ParseStreamHello(dns); ok {
		t.Error("ParseStreamHello accepted a DNS header")
	}
	if _, ok := ParseStreamAlert(dns); ok {
		t.Error("ParseStreamAlert accepted a DNS header")
	}
}

// TestStreamTicketDeterminism: tickets are pure functions of (endpoint,
// client, salt) — the stateless-resumption property the terminate
// policy's DNAT consistency depends on — and vary with every input.
func TestStreamTicketDeterminism(t *testing.T) {
	ep := netip.MustParseAddr("1.1.1.1")
	cl := netip.MustParseAddr("33.0.4.7")
	a := StreamTicket(ep, cl, 7)
	if b := StreamTicket(ep, cl, 7); a != b {
		t.Errorf("ticket not deterministic: %#x vs %#x", a, b)
	}
	if StreamTicket(ep, cl, 8) == a {
		t.Error("salt change did not change the ticket")
	}
	if StreamTicket(cl, ep, 7) == a {
		t.Error("swapping endpoint and client did not change the ticket")
	}
}

// TestStreamPortFor maps each ALPN to its well-known port and rejects
// unknown codes.
func TestStreamPortFor(t *testing.T) {
	if p, err := StreamPortFor(ALPNDoT); err != nil || p != PortDoT {
		t.Errorf("StreamPortFor(DoT) = (%d, %v), want (%d, nil)", p, err, PortDoT)
	}
	if p, err := StreamPortFor(ALPNDoH); err != nil || p != PortDoH {
		t.Errorf("StreamPortFor(DoH) = (%d, %v), want (%d, nil)", p, err, PortDoH)
	}
	if _, err := StreamPortFor(99); err == nil {
		t.Error("StreamPortFor(99) succeeded, want error")
	}
}

// TestRouterInputFilterBlocksStreamPort: an input filter sees packets
// before DNAT and local delivery, and a drop verdict stops processing —
// the primitive the encrypted-DNS block policy builds on. Do53 over UDP
// must keep flowing through the same router.
func TestRouterInputFilterBlocksStreamPort(t *testing.T) {
	n := NewNetwork()
	resolver := addr("10.0.0.53")
	rtr := NewRouter("filter-test", resolver)
	rtr.Bind(53, echoService("plain"))
	rtr.Bind(PortDoT, echoService("dot"))

	var dropped int
	rtr.AddInputFilter(func(pkt Packet) (bool, string) {
		if pkt.Proto == TCP && pkt.Dst.Port() == PortDoT {
			dropped++
			return true, "test blocks DoT"
		}
		return false, ""
	})

	host := NewHost("h", addr("10.0.0.2"), netip.Addr{}, rtr)
	rtr.AddRoute(pfx("10.0.0.0/24"), host)

	// A UDP query passes the filter and is answered.
	if _, err := host.Exchange(n, netip.AddrPortFrom(resolver, 53), []byte("ping"), ExchangeOptions{}); err != nil {
		t.Fatalf("UDP exchange through filter failed: %v", err)
	}
	// A DoT-port TCP packet is dropped: the exchange times out.
	if _, err := host.Exchange(n, netip.AddrPortFrom(resolver, PortDoT), []byte("hello"), ExchangeOptions{Proto: TCP}); err != ErrTimeout {
		t.Fatalf("blocked TCP exchange = %v, want ErrTimeout", err)
	}
	if dropped == 0 {
		t.Error("input filter never saw the TCP packet")
	}
}
