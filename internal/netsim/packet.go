// Package netsim is a deterministic, packet-level network simulator.
//
// It exists because the paper's vantage point — a measurement probe in a
// real home, behind real CPE, inside a real ISP — cannot exist in an
// offline build. The simulator reproduces that vantage mechanically:
// hosts exchange real DNS packets (encoded by internal/dnswire) through
// routers that forward hop-by-hop, decrement TTLs, apply
// netfilter-style prerouting/postrouting hooks, and rewrite flows
// through NAT tables with connection tracking. Transparent DNS
// interception is then *implemented*, not faked: a DNAT rule on the CPE
// or an ISP middlebox diverts port-53 flows exactly the way the RDK-B
// firewall does on the XB6 router (paper §5), and conntrack makes the
// response appear to come from the original destination.
//
// The simulator is synchronous and single-threaded: injecting a packet
// enqueues an event, and Run drains the queue in FIFO order. Services
// that need upstream round trips (forwarders, recursive resolvers) are
// written as state machines, as their real counterparts are.
package netsim

import (
	"fmt"
	"net/netip"
	"time"
)

// Proto is a transport protocol number. Port-53 DNS interception of the
// kind the paper studies is a UDP phenomenon; TCP carries the modeled
// encrypted stream sessions (DoT/DoH, see stream.go), which is exactly
// why the UDP-gated interception rules never touch them.
type Proto uint8

// Protocols.
const (
	ICMP Proto = 1
	TCP  Proto = 6
	UDP  Proto = 17
)

// String returns the protocol mnemonic.
func (p Proto) String() string {
	switch p {
	case UDP:
		return "udp"
	case TCP:
		return "tcp"
	case ICMP:
		return "icmp"
	default:
		return fmt.Sprintf("proto%d", p)
	}
}

// DefaultTTL is the initial hop limit for packets sent by hosts, matching
// common OS defaults.
const DefaultTTL = 64

// Packet is one simulated datagram.
type Packet struct {
	Src     netip.AddrPort
	Dst     netip.AddrPort
	Proto   Proto
	TTL     int
	Payload []byte

	// SentAt is the virtual time the originating request entered the
	// network. Services copy it from request to response so that
	// ArrivedAt-SentAt is a flow's round-trip time.
	SentAt time.Duration
	// OrigDst is conntrack's "original destination": the destination the
	// packet carried before the first DNAT rewrite on its path. Zero on
	// packets that never hit a DNAT rule. A diverted-to service reads it
	// to learn which address the client actually queried — the same
	// information SO_ORIGINAL_DST exposes to real transparent proxies.
	OrigDst netip.AddrPort
	// FaultSalt distinguishes fault-injected duplicate copies from
	// their originals, so the copies roll independent fault fates at
	// later hops. Zero on every originated packet.
	FaultSalt uint8
	// Enc marks a packet as belonging to an encrypted stream session:
	// zero for plaintext, else the session's ALPN code (ALPNDoT/ALPNDoH).
	// A stream endpoint stamps it on the inner request it hands its
	// backing service, and ServiceCtx.Reply copies it request-to-response,
	// so even a service that answers asynchronously (a forwarder waiting
	// on its upstream) returns the response inside the client's session.
	Enc uint8
	// ArrivedAt is stamped by the receiving host on final delivery.
	ArrivedAt time.Duration
}

// RTT is the packet's round-trip time (valid on delivered responses).
func (p Packet) RTT() time.Duration { return p.ArrivedAt - p.SentAt }

// Clone deep-copies the packet, including its payload.
func (p Packet) Clone() Packet {
	q := p
	q.Payload = append([]byte(nil), p.Payload...)
	return q
}

// IsIPv6 reports whether the packet travels over IPv6, judged by its
// destination address family.
func (p Packet) IsIPv6() bool { return p.Dst.Addr().Is6() && !p.Dst.Addr().Is4In6() }

// String renders the packet for traces: "udp 10.0.0.2:5000 > 8.8.8.8:53 ttl=64 len=29".
func (p Packet) String() string {
	return fmt.Sprintf("%s %s > %s ttl=%d len=%d", p.Proto, p.Src, p.Dst, p.TTL, len(p.Payload))
}

// TraceKind classifies a trace event.
type TraceKind string

// Trace event kinds.
const (
	TraceRecv    TraceKind = "recv"    // packet arrived at a device
	TraceForward TraceKind = "fwd"     // packet forwarded to the next hop
	TraceDeliver TraceKind = "deliver" // packet delivered to a local service or host
	TraceDrop    TraceKind = "drop"    // packet dropped
	TraceDNAT    TraceKind = "dnat"    // destination rewritten
	TraceSNAT    TraceKind = "snat"    // source rewritten
	TraceUnDNAT  TraceKind = "undnat"  // reply source restored (spoofing point)
	TraceUnSNAT  TraceKind = "unsnat"  // reply destination restored
	TraceEmit    TraceKind = "emit"    // packet originated by a local service
	TraceFault   TraceKind = "fault"   // fault plane rewrote or replicated the packet
)

// TraceEvent is one packet-level observation, the unit of the simulator's
// capture facility (the moral equivalent of tcpdump on every interface).
type TraceEvent struct {
	Seq    int
	At     time.Duration // virtual capture time
	Device string
	Kind   TraceKind
	Packet Packet
	Note   string
}

// String renders the event in a capture-log style.
func (e TraceEvent) String() string {
	s := fmt.Sprintf("#%03d %9.3fms %-18s %-8s %s",
		e.Seq, float64(e.At)/float64(time.Millisecond), e.Device, e.Kind, e.Packet)
	if e.Note != "" {
		s += "  (" + e.Note + ")"
	}
	return s
}
