package netsim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// stressProfile exercises every mechanism at once with rates high
// enough that a short run shows each of them.
func stressProfile(seed int64) FaultProfile {
	return FaultProfile{
		Seed:          seed,
		PGoodBad:      0.25,
		PBadGood:      0.30,
		LossGood:      0.02,
		LossBad:       0.80,
		DupProb:       0.20,
		ReorderProb:   0.25,
		ReorderJitter: time.Millisecond,
		TruncProb:     0.20,
		TruncBytes:    4,
	}
}

// runFaultedTrace builds a fresh world with the profile installed, runs
// a fixed exchange sequence, and returns the full trace log.
func runFaultedTrace(t *testing.T, p FaultProfile) []string {
	t.Helper()
	w := buildTestWorld(t)
	w.net.SetDefaultFault(p)
	var log []string
	w.net.Tap(func(e TraceEvent) { log = append(log, e.String()) })
	for i := 0; i < 40; i++ {
		// Losses are expected; the sequence, not the outcome, is under test.
		w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte{byte(i), byte(i >> 8), 'q'}, ExchangeOptions{})
	}
	return log
}

func TestFaultTraceDeterministic(t *testing.T) {
	a := runFaultedTrace(t, stressProfile(7))
	b := runFaultedTrace(t, stressProfile(7))
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at event %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	faults := 0
	for _, line := range a {
		if strings.Contains(line, "fault:") {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("stress profile injected no faults at all")
	}
	// A different seed must actually change the fault pattern.
	c := runFaultedTrace(t, stressProfile(8))
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("changing the profile seed left the trace identical")
	}
}

func TestInactiveProfileIsNoOp(t *testing.T) {
	if PresetFault(0, 1).Active() {
		t.Fatal("PresetFault(0) is active")
	}
	w := buildTestWorld(t)
	w.net.SetDefaultFault(PresetFault(0, 1))
	resps, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("q"), ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(resps[0].Payload) != "google:q" {
		t.Errorf("payload = %q", resps[0].Payload)
	}
}

func TestBurstLossDropsEverythingAtFullRate(t *testing.T) {
	w := buildTestWorld(t)
	w.net.SetDefaultFault(FaultProfile{Seed: 1, LossGood: 1, LossBad: 1, PGoodBad: 0.5, PBadGood: 0.5})
	_, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("q"), ExchangeOptions{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout under total loss", err)
	}
}

func TestRateLimitExhaustsTokenBucket(t *testing.T) {
	w := buildTestWorld(t)
	// Only the resolver rate-limits: 2 tokens, no refill.
	w.net.SetDeviceFault("resolver-8888", FaultProfile{
		Seed: 1, RateLimitPort: 53, RateBurst: 2,
	})
	for i := 0; i < 2; i++ {
		if _, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("q"), ExchangeOptions{}); err != nil {
			t.Fatalf("query %d within burst: %v", i, err)
		}
	}
	if _, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("q"), ExchangeOptions{}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout once the bucket is empty", err)
	}
}

func TestRateLimitRefillsPerQuery(t *testing.T) {
	w := buildTestWorld(t)
	// 1 token, one earned back every 2 queries: the pattern must be
	// deterministic pass/drop/pass/drop...
	w.net.SetDeviceFault("resolver-8888", FaultProfile{
		Seed: 1, RateLimitPort: 53, RateBurst: 1, RateRefillEvery: 2,
	})
	var got []bool
	for i := 0; i < 6; i++ {
		_, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("q"), ExchangeOptions{})
		got = append(got, err == nil)
	}
	// Query 1 spends the only token; every even query earns one back
	// just in time, every odd one after the first finds the bucket dry.
	want := []bool{true, true, false, true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pass/drop pattern = %v, want %v", got, want)
		}
	}
}

func TestDuplicationDeliversCopies(t *testing.T) {
	w := buildTestWorld(t)
	w.net.SetDeviceFault("cpe", FaultProfile{Seed: 1, DupProb: 1})
	resps, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("q"), ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The query duplicates once leaving the CPE (2 reach the resolver),
	// and each response duplicates again re-entering the LAN.
	if len(resps) != 4 {
		t.Fatalf("got %d responses, want 4 under always-duplicate at the CPE", len(resps))
	}
	for _, r := range resps {
		if string(r.Payload) != "google:q" {
			t.Errorf("payload = %q", r.Payload)
		}
	}
}

func TestTruncationClipsOnlyResponses(t *testing.T) {
	w := buildTestWorld(t)
	w.net.SetDeviceFault("cpe", FaultProfile{Seed: 1, TruncProb: 1, TruncBytes: 4})
	resps, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("query-x"), ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The query (src port ephemeral) passes intact — the resolver echoed
	// the full payload — but the response is clipped at the CPE.
	if got := string(resps[0].Payload); got != "goog" {
		t.Errorf("payload = %q, want the first 4 bytes of the response", got)
	}
}

func TestReorderJitterDelaysDelivery(t *testing.T) {
	base := buildTestWorld(t)
	r0, err := base.host.Exchange(base.net, ap("8.8.8.8:53"), []byte("q"), ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := buildTestWorld(t)
	w.net.SetDefaultFault(FaultProfile{Seed: 1, ReorderProb: 1, ReorderJitter: time.Millisecond})
	r1, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("q"), ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1[0].RTT() <= r0[0].RTT() {
		t.Errorf("jittered RTT %v not above clean RTT %v", r1[0].RTT(), r0[0].RTT())
	}
}
