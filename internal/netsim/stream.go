package netsim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net/netip"
)

// Encrypted stream sessions (DoT/DoH) are modeled as framed datagrams
// over Proto TCP rather than a byte-stream abstraction: the simulator's
// unit of delivery is the packet, and what the study needs from an
// encrypted transport is its *observable* behaviour — which middleboxes
// can see it (none: the UDP-gated DNAT rules pass TCP flows through),
// what a terminating interceptor must present (a certificate), and what
// a session costs (one extra round trip to establish, zero when
// resumed). No real cryptography is involved, mirroring
// internal/dotsim's channel model; the frames below are the wire-level
// transposition of dotsim's Dial/Session into the packet simulator.
//
// A session is two frame exchanges:
//
//	client                          server (port 853/443)
//	  | -- hello(alpn) ------------> |      full handshake,
//	  | <- helloAck(cert, ticket) -- |      one simulated RTT
//	  | -- data(ticket, dns) ------> |
//	  | <- dns response (Enc-marked) |      one simulated RTT
//
// A client holding a ticket skips straight to the data frame — RFC 8446
// session resumption collapsed to its accounting essence. Tickets are
// stateless (recomputed from flow identity, below) so no server-side
// session table exists whose contents could depend on which probes
// share a world — the property that keeps sharded and laned runs
// byte-identical.

// ALPN codes carried in stream frames.
const (
	// ALPNDoT is DNS over TLS (RFC 7858), port 853.
	ALPNDoT uint8 = 1
	// ALPNDoH is DNS over HTTPS (RFC 8484), port 443. In this model it
	// differs from DoT only in port and ALPN: both are TLS sessions
	// carrying framed DNS messages.
	ALPNDoH uint8 = 2
)

// Well-known encrypted-transport ports.
const (
	PortDoT uint16 = 853
	PortDoH uint16 = 443
)

// streamMagic is the first octet of every stream frame. A DNS message's
// first octet is its ID high byte and can collide with it, which is why
// frames are only ever parsed by context: packets arriving on a stream
// port are frames, and a client parses responses inside an established
// session as DNS unless they are exactly alert-sized (3 octets — no
// valid DNS message is shorter than a 12-octet header).
const streamMagic = 0xD7

// Stream frame kinds.
const (
	frameHello    = 1
	frameHelloAck = 2
	frameData     = 3
	frameAlert    = 4
)

// Stream alert codes.
const (
	// StreamAlertBadTicket rejects a data frame whose resumption ticket
	// does not verify; the client must redo the full handshake.
	StreamAlertBadTicket uint8 = 1
	// StreamAlertProtocol rejects an unparseable frame.
	StreamAlertProtocol uint8 = 2
)

// StreamCert is the certificate blob a helloAck carries: dotsim's
// Certificate flattened onto the wire. Subject is the address the
// certificate authenticates; Trusted is whether the chain verifies
// against the client's roots (a terminating interceptor's self-signed
// certificate does not).
type StreamCert struct {
	Subject netip.Addr
	Trusted bool
}

// StreamTicket derives the stateless resumption ticket for a client at
// one endpoint. It is a pure function of flow identity and the
// endpoint's salt, so the server validates tickets by recomputation —
// no mutable session table, no cross-probe ordering effects.
func StreamTicket(endpoint, client netip.Addr, salt int64) uint64 {
	h := fnv.New64a()
	e, c := endpoint.As16(), client.As16()
	h.Write(e[:])
	h.Write(c[:])
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(salt))
	h.Write(b[:])
	return h.Sum64()
}

// PackStreamHello encodes a session-establishment request.
func PackStreamHello(alpn uint8) []byte {
	return []byte{streamMagic, frameHello, alpn}
}

// ParseStreamHello decodes a hello frame.
func ParseStreamHello(b []byte) (alpn uint8, ok bool) {
	if len(b) != 3 || b[0] != streamMagic || b[1] != frameHello {
		return 0, false
	}
	return b[2], true
}

// PackStreamHelloAck encodes the server's handshake completion: the
// certificate it presents and the session ticket it issues.
func PackStreamHelloAck(alpn uint8, cert StreamCert, ticket uint64) []byte {
	subj := cert.Subject.As16()
	out := make([]byte, 0, 3+1+16+8)
	out = append(out, streamMagic, frameHelloAck, alpn)
	trusted := byte(0)
	if cert.Trusted {
		trusted = 1
	}
	out = append(out, trusted)
	out = append(out, subj[:]...)
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], ticket)
	return append(out, t[:]...)
}

// ParseStreamHelloAck decodes a helloAck frame.
func ParseStreamHelloAck(b []byte) (alpn uint8, cert StreamCert, ticket uint64, ok bool) {
	if len(b) != 3+1+16+8 || b[0] != streamMagic || b[1] != frameHelloAck {
		return 0, StreamCert{}, 0, false
	}
	alpn = b[2]
	cert.Trusted = b[3] == 1
	var subj [16]byte
	copy(subj[:], b[4:20])
	cert.Subject = netip.AddrFrom16(subj).Unmap()
	return alpn, cert, binary.BigEndian.Uint64(b[20:28]), true
}

// streamDataHeaderLen is the data frame's overhead before the framed
// DNS message: magic, kind, alpn, and the 8-octet ticket.
const streamDataHeaderLen = 3 + 8

// PackStreamData encodes one in-session query. The DNS message is
// carried with dnswire's RFC 1035 TCP length prefix (the caller frames
// it via dnswire.AppendTCPFrame), exactly as a real DoT session carries
// TCP-framed messages inside TLS records.
func PackStreamData(alpn uint8, ticket uint64, framedDNS []byte) []byte {
	out := make([]byte, 0, streamDataHeaderLen+len(framedDNS))
	out = append(out, streamMagic, frameData, alpn)
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], ticket)
	out = append(out, t[:]...)
	return append(out, framedDNS...)
}

// ParseStreamData decodes a data frame, returning the framed DNS bytes.
func ParseStreamData(b []byte) (alpn uint8, ticket uint64, framedDNS []byte, ok bool) {
	if len(b) < streamDataHeaderLen || b[0] != streamMagic || b[1] != frameData {
		return 0, 0, nil, false
	}
	return b[2], binary.BigEndian.Uint64(b[3:11]), b[streamDataHeaderLen:], true
}

// PackStreamAlert encodes a session rejection. Alerts are exactly three
// octets so a client can tell them from DNS responses by length alone.
func PackStreamAlert(code uint8) []byte {
	return []byte{streamMagic, frameAlert, code}
}

// ParseStreamAlert decodes an alert frame.
func ParseStreamAlert(b []byte) (code uint8, ok bool) {
	if len(b) != 3 || b[0] != streamMagic || b[1] != frameAlert {
		return 0, false
	}
	return b[2], true
}

// StreamPortFor maps an ALPN code to its well-known port.
func StreamPortFor(alpn uint8) (uint16, error) {
	switch alpn {
	case ALPNDoT:
		return PortDoT, nil
	case ALPNDoH:
		return PortDoH, nil
	default:
		return 0, fmt.Errorf("netsim: unknown stream ALPN %d", alpn)
	}
}
