package netsim

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

// refRoute is the obviously-correct longest-prefix match: linear scan.
func refRoute(routes []Route, dst netip.Addr) *Route {
	var best *Route
	for i := range routes {
		if routes[i].Prefix.Contains(dst.Unmap()) {
			if best == nil || routes[i].Prefix.Bits() > best.Prefix.Bits() {
				best = &routes[i]
			}
		}
	}
	return best
}

// namedDev is a throwaway device distinguishable by name.
type namedDev string

func (d namedDev) DeviceName() string         { return string(d) }
func (d namedDev) Receive(ctx *Ctx, p Packet) {}

// TestPropertyLPMMatchesLinearReference drives the hash-based
// longest-prefix-match against a linear reference on random tables.
func TestPropertyLPMMatchesLinearReference(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	f := func() bool {
		router := NewRouter("lpm")
		var routes []Route
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			var p netip.Prefix
			if r.Intn(2) == 0 {
				var b [4]byte
				r.Read(b[:])
				p = netip.PrefixFrom(netip.AddrFrom4(b), r.Intn(33)).Masked()
			} else {
				var b [16]byte
				r.Read(b[:])
				p = netip.PrefixFrom(netip.AddrFrom16(b), r.Intn(129)).Masked()
			}
			dev := namedDev(p.String())
			router.AddRoute(p, dev)
			// Mirror the replace-on-duplicate semantics of insertRoute.
			replaced := false
			for j := range routes {
				if routes[j].Prefix == p {
					routes[j].Next = dev
					replaced = true
				}
			}
			if !replaced {
				routes = append(routes, Route{Prefix: p, Next: dev})
			}
		}
		// Probe with random addresses plus every route's own base.
		probes := make([]netip.Addr, 0, 60)
		for i := 0; i < 20; i++ {
			var b [4]byte
			r.Read(b[:])
			probes = append(probes, netip.AddrFrom4(b))
			var b6 [16]byte
			r.Read(b6[:])
			probes = append(probes, netip.AddrFrom16(b6))
		}
		for _, rt := range routes {
			probes = append(probes, rt.Prefix.Addr())
		}
		for _, dst := range probes {
			got := router.lookupRoute(dst)
			want := refRoute(routes, dst)
			switch {
			case got == nil && want == nil:
			case got == nil || want == nil:
				return false
			case got.Prefix != want.Prefix:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestLPMPrefersLongestAndReplacesDuplicates(t *testing.T) {
	router := NewRouter("x")
	a := namedDev("a")
	b := namedDev("b")
	c := namedDev("c")
	router.AddRoute(netip.MustParsePrefix("10.0.0.0/8"), a)
	router.AddRoute(netip.MustParsePrefix("10.1.0.0/16"), b)
	rt := router.lookupRoute(netip.MustParseAddr("10.1.2.3"))
	if rt == nil || rt.Next != Device(b) {
		t.Fatalf("lookup = %v, want /16 route", rt)
	}
	rt = router.lookupRoute(netip.MustParseAddr("10.2.2.3"))
	if rt == nil || rt.Next != Device(a) {
		t.Fatalf("lookup = %v, want /8 route", rt)
	}
	// Replacing the /16.
	router.AddRoute(netip.MustParsePrefix("10.1.0.0/16"), c)
	rt = router.lookupRoute(netip.MustParseAddr("10.1.2.3"))
	if rt == nil || rt.Next != Device(c) {
		t.Fatalf("lookup after replace = %v, want c", rt)
	}
}
