package netsim

import (
	"net/netip"
	"sort"
	"sync"
)

// This file implements shared routing state for worlds stamped out of a
// common template. The big backbone routers (the core and the regional
// transit routers) carry identical forwarding tables in every shard and
// lane world — every ISP prefix, overflow bank, operator site, and
// transit-resolver block — yet each world used to rebuild those
// per-length prefix maps from scratch. A RoutingCore compiles that
// table once, on the first build, into an immutable structure keyed by
// next-hop *device name*; every later world binds its own device
// instances to the recorded names and skips the map work entirely.
//
// Only the lookup tables are shared. Everything mutable on a router —
// NAT conntrack, bound services, local addresses, and the 4-slot
// lookup memo — stays per-world, which is what keeps lane workers free
// of cross-world writes.

// CoreRole says how one world build relates to a CoreSet.
type CoreRole int

const (
	// CorePlain builds with no sharing: every router keeps local tables.
	CorePlain CoreRole = iota
	// CoreRecorder is the first build: it keeps local tables and mirrors
	// every eligible insert into the cores, then seals them.
	CoreRecorder
	// CoreBound builds against sealed cores: shared routers skip local
	// inserts and only bind next-hop devices by name.
	CoreBound
)

// CoreSet coordinates RoutingCore construction across concurrent world
// builds. The first builder to call Begin becomes the recorder; all
// others block until the recorder seals (topology complete) or abandons
// (recorder build panicked), then proceed bound or plain respectively.
type CoreSet struct {
	mu        sync.Mutex
	started   bool
	sealed    bool
	abandoned bool
	done      chan struct{}
	cores     map[string]*RoutingCore
}

// NewCoreSet returns an empty, unclaimed core set.
func NewCoreSet() *CoreSet {
	return &CoreSet{done: make(chan struct{}), cores: make(map[string]*RoutingCore)}
}

// Begin claims this build's role. The recorder returns immediately;
// every other caller blocks until Seal or Abandon.
func (cs *CoreSet) Begin() CoreRole {
	if cs == nil {
		return CorePlain
	}
	cs.mu.Lock()
	if !cs.started {
		cs.started = true
		cs.mu.Unlock()
		return CoreRecorder
	}
	cs.mu.Unlock()
	<-cs.done
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.abandoned {
		return CorePlain
	}
	return CoreBound
}

// Seal freezes every core (the recorder's topology phase is complete)
// and releases waiting builds. Idempotent.
func (cs *CoreSet) Seal() {
	if cs == nil {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.sealed || cs.abandoned {
		return
	}
	cs.sealed = true
	for _, c := range cs.cores {
		c.compile()
	}
	close(cs.done)
}

// Abandon releases waiting builds without sealing — the recorder's
// deferred escape hatch when its build panics mid-topology. Waiters
// proceed unshared. No-op after Seal.
func (cs *CoreSet) Abandon() {
	if cs == nil {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.sealed || cs.abandoned {
		return
	}
	cs.abandoned = true
	close(cs.done)
}

// For returns the core for a router name. The recorder creates entries
// on demand; after sealing, unknown names return nil (the router then
// builds plain local tables).
func (cs *CoreSet) For(name string) *RoutingCore {
	if cs == nil {
		return nil
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	c := cs.cores[name]
	if c == nil && !cs.sealed && !cs.abandoned {
		c = newRoutingCore()
		cs.cores[name] = c
	}
	return c
}

// RoutingCore is one router's compiled forwarding table: prefixes in
// per-family, per-length maps (the same shape Router uses locally) with
// next hops as ordinals into a name list instead of device pointers.
// Immutable once its CoreSet seals; safe for concurrent readers.
type RoutingCore struct {
	v4, v6    coreTable
	hopNames  []string
	hopIndex  map[string]int
	numRoutes int
}

type coreTable struct {
	byLen   map[int]map[netip.Prefix]coreEntry
	lengths []int // descending, filled at compile
}

// coreEntry names a route by ordinal (its materialization slot in each
// bound world) and its next hop's index in hopNames.
type coreEntry struct{ ord, hop int }

func newRoutingCore() *RoutingCore {
	return &RoutingCore{
		v4:       coreTable{byLen: make(map[int]map[netip.Prefix]coreEntry)},
		v6:       coreTable{byLen: make(map[int]map[netip.Prefix]coreEntry)},
		hopIndex: make(map[string]int),
	}
}

// record mirrors one insert from the recorder world. Re-adding a prefix
// replaces its next hop but keeps the ordinal, matching the local
// tables' replace semantics while keeping bound worlds' slots stable.
func (c *RoutingCore) record(p netip.Prefix, hopName string) {
	hop, ok := c.hopIndex[hopName]
	if !ok {
		hop = len(c.hopNames)
		c.hopNames = append(c.hopNames, hopName)
		c.hopIndex[hopName] = hop
	}
	t := &c.v4
	if p.Addr().Is6() {
		t = &c.v6
	}
	if t.byLen[p.Bits()] == nil {
		t.byLen[p.Bits()] = make(map[netip.Prefix]coreEntry)
	}
	if old, exists := t.byLen[p.Bits()][p]; exists {
		t.byLen[p.Bits()][p] = coreEntry{ord: old.ord, hop: hop}
		return
	}
	t.byLen[p.Bits()][p] = coreEntry{ord: c.numRoutes, hop: hop}
	c.numRoutes++
}

// entry looks up a prefix's core slot, if recorded.
func (c *RoutingCore) entry(p netip.Prefix) (coreEntry, bool) {
	t := &c.v4
	if p.Addr().Is6() {
		t = &c.v6
	}
	e, ok := t.byLen[p.Bits()][p]
	return e, ok
}

func (c *RoutingCore) compile() {
	c.v4.lengths = coreLengthsDesc(c.v4.byLen)
	c.v6.lengths = coreLengthsDesc(c.v6.byLen)
}

func coreLengthsDesc(table map[int]map[netip.Prefix]coreEntry) []int {
	out := make([]int, 0, len(table))
	for bits := range table {
		out = append(out, bits)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
