package netsim

import (
	"encoding/binary"
	"net/netip"
)

// ICMP Time Exceeded modeling. When enabled on the Network, the router
// that decrements a packet's TTL to zero sends an ICMP notification back
// to the source, carrying — as real ICMP does — enough of the original
// packet to identify the flow. This is what turns the §6 TTL ladder into
// a proper traceroute: each rung names the router at that hop.

// timeExceededPayload encodes the flow identity of the expired packet:
// original source port, destination port, and destination address.
func timeExceededPayload(orig Packet) []byte {
	dst16 := orig.Dst.Addr().As16()
	out := make([]byte, 0, 4+16)
	out = binary.BigEndian.AppendUint16(out, orig.Src.Port())
	out = binary.BigEndian.AppendUint16(out, orig.Dst.Port())
	out = append(out, dst16[:]...)
	return out
}

// ParseTimeExceeded decodes an ICMP Time Exceeded packet's embedded flow
// identity. ok is false for malformed or non-ICMP packets.
func ParseTimeExceeded(p Packet) (origSrcPort uint16, origDst netip.AddrPort, ok bool) {
	if p.Proto != ICMP || len(p.Payload) < 20 {
		return 0, netip.AddrPort{}, false
	}
	srcPort := binary.BigEndian.Uint16(p.Payload[0:2])
	dstPort := binary.BigEndian.Uint16(p.Payload[2:4])
	addr := netip.AddrFrom16([16]byte(p.Payload[4:20])).Unmap()
	return srcPort, netip.AddrPortFrom(addr, dstPort), true
}

// sendTimeExceeded emits the notification from a router back to the
// expired packet's source. The source address is the router's ID — it
// does not need to be routable (real backbone routers answer from
// interface or loopback addresses all the time); only the destination
// matters for delivery.
func (r *Router) sendTimeExceeded(ctx *Ctx, orig Packet) {
	if !r.RouterID.IsValid() {
		return // anonymous router: the hop shows as "*"
	}
	icmp := Packet{
		Src:     netip.AddrPortFrom(r.RouterID, 0),
		Dst:     orig.Src,
		Proto:   ICMP,
		TTL:     DefaultTTL,
		Payload: timeExceededPayload(orig),
		SentAt:  orig.SentAt,
	}
	r.routePacket(ctx, icmp, true)
}
