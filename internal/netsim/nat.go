package netsim

import (
	"net/netip"
)

// DNATRule is one destination-NAT rule, the mechanism behind every
// transparent interceptor in this system. It is the simulator's
// equivalent of the RDK-B firewall's
//
//	iptables -t nat -A PREROUTING -p udp --dport 53 -j DNAT --to <resolver>
//
// rule that the paper's §5 case study documents on the XB6 router.
type DNATRule struct {
	// Name labels the rule in traces.
	Name string
	// Match decides whether the rule applies to a packet.
	Match func(Packet) bool
	// To is the rewritten destination.
	To netip.AddrPort
	// Replicate, when set, also lets the original packet continue to its
	// intended destination, modeling the query-replication behavior prior
	// work observed (Liu et al.): the client receives two answers.
	Replicate bool
}

// ctKey identifies one tracked flow: the client's address/port and the
// NAT target the flow was rewritten to. Clients use a fresh ephemeral
// source port per query, so the key is unique per outstanding flow —
// the same property real conntrack relies on.
type ctKey struct {
	client netip.AddrPort
	target netip.AddrPort
}

// NAT holds a device's NAT state: DNAT rules with their conntrack table,
// and optional source NAT for a private LAN.
type NAT struct {
	// DNATRules are evaluated in order at PREROUTING; first match wins.
	DNATRules []DNATRule

	// dnatCT maps (client, target) to the original destination so the
	// reply's source can be restored — the "spoofing" the paper describes:
	// responses arrive with the source address of the target resolver.
	dnatCT map[ctKey]netip.AddrPort

	// MasqueradeV4/V6 are the external addresses for source NAT. Zero
	// values disable SNAT for that family (e.g. v6 homes that route
	// globally without NAT).
	MasqueradeV4 netip.Addr
	MasqueradeV6 netip.Addr

	// LANPrefixes limits SNAT to sources inside the LAN.
	LANPrefixes []netip.Prefix

	snatByFlow map[ctKey]uint16         // (origSrc, dst) -> external port
	snatByExt  map[ctKey]netip.AddrPort // (extAddrPort, remote) -> original src
	nextPort   uint16
}

// occupancy is the live table size: SNAT flow entries plus DNAT
// conntrack entries. Observed by the metrics plane as a high-water
// gauge after each new mapping.
func (n *NAT) occupancy() int {
	return len(n.snatByFlow) + len(n.dnatCT)
}

// NewNAT returns an empty NAT state.
func NewNAT() *NAT {
	return &NAT{
		dnatCT:     make(map[ctKey]netip.AddrPort),
		snatByFlow: make(map[ctKey]uint16),
		snatByExt:  make(map[ctKey]netip.AddrPort),
		nextPort:   30000,
	}
}

// AddDNAT appends a DNAT rule.
func (n *NAT) AddDNAT(r DNATRule) { n.DNATRules = append(n.DNATRules, r) }

// lanSource reports whether addr is inside a configured LAN prefix.
func (n *NAT) lanSource(addr netip.Addr) bool {
	for _, p := range n.LANPrefixes {
		if p.Contains(addr) {
			return true
		}
	}
	return false
}

// applyDNAT runs the PREROUTING DNAT step. It returns the (possibly
// rewritten) packet, whether a rewrite happened, and whether a replica of
// the original should also continue on its way.
func (n *NAT) applyDNAT(pkt Packet) (out Packet, rewritten, replicate bool) {
	for _, r := range n.DNATRules {
		if r.Match == nil || !r.Match(pkt) {
			continue
		}
		if pkt.Dst == r.To {
			return pkt, false, false // already at target; nothing to do
		}
		key := ctKey{client: pkt.Src, target: r.To}
		n.dnatCT[key] = pkt.Dst
		if !pkt.OrigDst.IsValid() {
			// First rewrite on the path wins: a chain of DNAT hops keeps
			// the client's true original destination, as conntrack does.
			pkt.OrigDst = pkt.Dst
		}
		pkt.Dst = r.To
		return pkt, true, r.Replicate
	}
	return pkt, false, false
}

// reverseDNAT restores the source address of a reply belonging to a
// tracked DNAT flow: a packet from the NAT target back to a recorded
// client gets its source rewritten to the client's original destination.
// This is the precise moment the response becomes "spoofed".
func (n *NAT) reverseDNAT(pkt Packet) (Packet, bool) {
	key := ctKey{client: pkt.Dst, target: pkt.Src}
	orig, ok := n.dnatCT[key]
	if !ok {
		return pkt, false
	}
	delete(n.dnatCT, key)
	pkt.Src = orig
	return pkt, true
}

// applySNAT runs the POSTROUTING masquerade step for LAN-originated
// packets leaving upstream. It allocates (or reuses) an external port per
// flow.
func (n *NAT) applySNAT(pkt Packet) (Packet, bool) {
	var ext netip.Addr
	switch {
	case pkt.IsIPv6():
		ext = n.MasqueradeV6
	default:
		ext = n.MasqueradeV4
	}
	if !ext.IsValid() || !n.lanSource(pkt.Src.Addr()) {
		return pkt, false
	}
	flow := ctKey{client: pkt.Src, target: pkt.Dst}
	port, ok := n.snatByFlow[flow]
	if !ok {
		port = n.allocPort()
		n.snatByFlow[flow] = port
		n.snatByExt[ctKey{client: netip.AddrPortFrom(ext, port), target: pkt.Dst}] = pkt.Src
	}
	pkt.Src = netip.AddrPortFrom(ext, port)
	return pkt, true
}

// reverseSNAT restores the LAN destination of a reply arriving at the
// masquerade address.
func (n *NAT) reverseSNAT(pkt Packet) (Packet, bool) {
	key := ctKey{client: pkt.Dst, target: pkt.Src}
	orig, ok := n.snatByExt[key]
	if !ok {
		return pkt, false
	}
	pkt.Dst = orig
	return pkt, true
}

// reverseDNATICMP fixes up an ICMP Time Exceeded passing back through a
// DNAT device: the embedded destination is restored to what the client
// originally queried, so downstream NAT hops (and the client) recognize
// the flow. The conntrack entry is retired — the flow is dead.
func (n *NAT) reverseDNATICMP(pkt Packet) (Packet, bool) {
	srcPort, embDst, ok := ParseTimeExceeded(pkt)
	if !ok {
		return pkt, false
	}
	key := ctKey{client: netip.AddrPortFrom(pkt.Dst.Addr(), srcPort), target: embDst}
	orig, found := n.dnatCT[key]
	if !found {
		return pkt, false
	}
	delete(n.dnatCT, key)
	payload := append([]byte(nil), pkt.Payload...)
	payload[2] = byte(orig.Port() >> 8)
	payload[3] = byte(orig.Port())
	a16 := orig.Addr().As16()
	copy(payload[4:20], a16[:])
	pkt.Payload = payload
	return pkt, true
}

// reverseSNATICMP rewrites an inbound ICMP Time Exceeded that refers to
// a masqueraded flow: the notification is re-addressed to the LAN host
// that originated the expired packet, and the embedded source port is
// restored — the ICMP half of real connection tracking.
func (n *NAT) reverseSNATICMP(pkt Packet) (Packet, bool) {
	srcPort, origDst, ok := ParseTimeExceeded(pkt)
	if !ok || !n.MasqueradeV4.IsValid() {
		return pkt, false
	}
	key := ctKey{client: netip.AddrPortFrom(n.MasqueradeV4, srcPort), target: origDst}
	origSrc, ok := n.snatByExt[key]
	if !ok {
		return pkt, false
	}
	pkt.Dst = netip.AddrPortFrom(origSrc.Addr(), pkt.Dst.Port())
	// Restore the embedded port so the host files it under its own flow.
	payload := append([]byte(nil), pkt.Payload...)
	payload[0] = byte(origSrc.Port() >> 8)
	payload[1] = byte(origSrc.Port())
	pkt.Payload = payload
	return pkt, true
}

// allocPort hands out external SNAT ports, skipping the well-known range.
func (n *NAT) allocPort() uint16 {
	p := n.nextPort
	n.nextPort++
	if n.nextPort < 30000 {
		n.nextPort = 30000
	}
	return p
}

// MatchUDPPort53 is the classic interceptor match: any UDP packet to
// destination port 53.
func MatchUDPPort53(pkt Packet) bool {
	return pkt.Proto == UDP && pkt.Dst.Port() == 53
}

// MatchUDP53To returns a match for UDP port-53 packets addressed to one
// of the given destinations — interceptors that target specific public
// resolvers rather than all DNS traffic.
func MatchUDP53To(dsts ...netip.Addr) func(Packet) bool {
	set := make(map[netip.Addr]bool, len(dsts))
	for _, d := range dsts {
		set[d] = true
	}
	return func(pkt Packet) bool {
		return pkt.Proto == UDP && pkt.Dst.Port() == 53 && set[pkt.Dst.Addr()]
	}
}

// MatchUDP53Except returns a match for UDP port-53 packets addressed to
// anything except the given destinations — "only one resolver allowed"
// interceptors (§4.1.1).
func MatchUDP53Except(allowed ...netip.Addr) func(Packet) bool {
	set := make(map[netip.Addr]bool, len(allowed))
	for _, d := range allowed {
		set[d] = true
	}
	return func(pkt Packet) bool {
		return pkt.Proto == UDP && pkt.Dst.Port() == 53 && !set[pkt.Dst.Addr()]
	}
}
