package netsim

import (
	"net/netip"
	"testing"
	"time"
)

// bindWorld is one router with two local addresses and a host behind it.
func bindWorld(t *testing.T) (*Network, *Host, *Router) {
	t.Helper()
	net := NewNetwork()
	rtr := NewRouter("r", addr("192.0.2.1"))
	rtr.AddAddr(addr("192.0.2.2"))
	host := NewHost("h", addr("10.0.0.2"), netip.Addr{}, rtr)
	rtr.AddRoute(pfx("10.0.0.0/24"), host)
	return net, host, rtr
}

func exchangeTag(t *testing.T, net *Network, host *Host, dst string) (string, error) {
	t.Helper()
	pkts, err := host.Exchange(net, ap(dst), []byte("q"), ExchangeOptions{})
	if err != nil {
		return "", err
	}
	return string(pkts[0].Payload), nil
}

// TestRouterAddrSpecificBindings: BindOn beats the wildcard Bind on its
// address, CloseOn firewalls one address without unbinding the port,
// and Unbind removes only the wildcard.
func TestRouterAddrSpecificBindings(t *testing.T) {
	net, host, rtr := bindWorld(t)
	if !rtr.HasAddr(addr("192.0.2.2")) {
		t.Fatal("AddAddr did not register the second address")
	}
	if got := len(rtr.Addrs()); got != 2 {
		t.Fatalf("router reports %d addresses, want 2", got)
	}

	rtr.Bind(53, echoService("wild"))
	rtr.BindOn(addr("192.0.2.2"), 53, echoService("specific"))

	if got, err := exchangeTag(t, net, host, "192.0.2.1:53"); err != nil || got != "wild:q" {
		t.Errorf("wildcard address answered (%q, %v), want wild:q", got, err)
	}
	if got, err := exchangeTag(t, net, host, "192.0.2.2:53"); err != nil || got != "specific:q" {
		t.Errorf("bound address answered (%q, %v), want the addr-specific service", got, err)
	}

	rtr.CloseOn(addr("192.0.2.1"), 53)
	if _, err := exchangeTag(t, net, host, "192.0.2.1:53"); err != ErrTimeout {
		t.Errorf("closed address answered (err=%v), want ErrTimeout", err)
	}
	if got, _ := exchangeTag(t, net, host, "192.0.2.2:53"); got != "specific:q" {
		t.Errorf("CloseOn on one address leaked to another (%q)", got)
	}

	rtr.Unbind(53)
	if got, _ := exchangeTag(t, net, host, "192.0.2.2:53"); got != "specific:q" {
		t.Errorf("Unbind removed the addr-specific binding (%q)", got)
	}
}

// TestServiceCtxClockAndBuffers: services read the virtual clock and
// build replies in recycled payload buffers.
func TestServiceCtxClockAndBuffers(t *testing.T) {
	net, host, rtr := bindWorld(t)
	var seen time.Duration
	rtr.Bind(99, ServiceFunc(func(sc *ServiceCtx, pkt Packet) {
		seen = sc.Now()
		buf := append(sc.PayloadBuf(), []byte("pooled")...)
		sc.Reply(pkt, buf)
	}))
	got, err := exchangeTag(t, net, host, "192.0.2.1:99")
	if err != nil || got != "pooled" {
		t.Errorf("service answered (%q, %v), want the pooled-buffer reply", got, err)
	}
	if seen < 0 {
		t.Errorf("service observed a negative virtual time %v", seen)
	}
}
