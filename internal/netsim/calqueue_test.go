package netsim

import (
	"math/rand"
	"testing"
	"time"
)

// eventHeap is the scheduler the calendar queue replaced: a hand-rolled
// binary heap ordered by (at, seq). It survives here as the reference
// implementation for the order-invariance property test — the calendar
// queue must pop events in exactly the order the heap would.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	for j := len(q) - 1; j > 0; {
		i := (j - 1) / 2 // parent
		if !q.less(j, i) {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
}

func (h *eventHeap) pop() event {
	q := *h
	ev := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	*h = q
	for i := 0; ; {
		j := 2*i + 1 // left child
		if j >= n {
			break
		}
		if r := j + 1; r < n && q.less(r, j) {
			j = r
		}
		if !q.less(j, i) {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
	return ev
}

// drainCal pops the calendar queue to exhaustion, one batch at a time,
// returning the flattened event order.
func drainCal(q *calQueue) []event {
	var out []event
	var batch []event
	for q.Len() > 0 {
		batch = q.popBatch(batch[:0])
		out = append(out, batch...)
	}
	return out
}

// TestCalQueueMatchesHeapOrder is the scheduler-order-invariance
// property test: randomized bursts — heavy on same-timestamp
// collisions, with a tail beyond the ring horizon to exercise overflow
// re-binning — must pop from the calendar queue in exactly the heap's
// (at, seq) order.
func TestCalQueueMatchesHeapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		// A handful of hot timestamps per trial forces same-tick FIFO
		// collisions; the occasional far-future event lands in overflow.
		hot := make([]time.Duration, 1+rng.Intn(8))
		for i := range hot {
			hot[i] = time.Duration(rng.Int63n(int64(50 * time.Millisecond)))
		}
		var cal calQueue
		var heap eventHeap
		seq := 0
		push := func(at time.Duration) {
			seq++
			ev := event{at: at, seq: seq}
			cal.push(ev)
			heap.push(ev)
		}
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0, 1: // collide on a hot timestamp
				push(hot[rng.Intn(len(hot))])
			case 2: // anywhere within the ring horizon
				push(time.Duration(rng.Int63n(int64(200 * time.Millisecond))))
			default: // beyond the horizon: overflow path
				push(time.Duration(int64(300*time.Millisecond) + rng.Int63n(int64(5*time.Second))))
			}
		}
		got := drainCal(&cal)
		if len(got) != n {
			t.Fatalf("trial %d: calendar queue returned %d events, pushed %d", trial, len(got), n)
		}
		for i := range got {
			want := heap.pop()
			if got[i].at != want.at || got[i].seq != want.seq {
				t.Fatalf("trial %d: pop %d = (at %v, seq %d), heap order wants (at %v, seq %d)",
					trial, i, got[i].at, got[i].seq, want.at, want.seq)
			}
		}
	}
}

// TestCalQueueInterleavedPushPop mirrors Run's actual access pattern:
// pops interleaved with pushes at or after the last popped timestamp
// (the simulator's at >= now invariant), including same-timestamp
// re-enqueues (Loopback) that must drain after the current batch.
func TestCalQueueInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		var cal calQueue
		var heap eventHeap
		seq := 0
		now := time.Duration(0)
		push := func(at time.Duration) {
			seq++
			ev := event{at: at, seq: seq}
			cal.push(ev)
			heap.push(ev)
		}
		for i := 0; i < 20; i++ {
			push(now + time.Duration(rng.Int63n(int64(3*time.Millisecond))))
		}
		var batch []event
		for cal.Len() > 0 {
			batch = cal.popBatch(batch[:0])
			if len(batch) == 0 {
				t.Fatal("popBatch returned nothing from a nonempty queue")
			}
			now = batch[0].at
			for _, got := range batch {
				want := heap.pop()
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("trial %d: got (at %v, seq %d), want (at %v, seq %d)",
						trial, got.at, got.seq, want.at, want.seq)
				}
				if got.at != now {
					t.Fatalf("trial %d: batch mixes timestamps %v and %v", trial, now, got.at)
				}
				// Simulate Receive: sometimes loop back at now, sometimes
				// forward with a delay, occasionally far future.
				switch rng.Intn(6) {
				case 0:
					push(now) // Loopback
				case 1, 2:
					push(now + time.Millisecond) // Forward
				case 3:
					push(now + time.Duration(rng.Int63n(int64(400*time.Millisecond))))
				}
			}
		}
		if heap.Len() != 0 {
			t.Fatalf("trial %d: calendar queue drained but heap holds %d events", trial, heap.Len())
		}
	}
}

// TestCalQueueStaleMinAfterOverflowDrain pins the cached-min hazard the
// ovfMin accessor closes: a batch drain that empties the overflow leaves
// minOvfTick holding the drained minimum, and a same-tick re-insert
// right after the drain must not let that stale value steer the
// empty-ring jump (or the overflow-vs-ring comparison in popBatch) back
// into the past. The sequence below walks the queue through exactly that
// state — overflow filled, horizon advanced so the drain empties it,
// queue fully popped, then a re-insert at the very tick the stale cache
// still names — and checks heap order end to end.
func TestCalQueueStaleMinAfterOverflowDrain(t *testing.T) {
	horizon := time.Duration(calBuckets << calBucketBits)
	var cal calQueue
	var heap eventHeap
	seq := 0
	push := func(at time.Duration) {
		seq++
		ev := event{at: at, seq: seq}
		cal.push(ev)
		heap.push(ev)
	}
	check := func(stage string) {
		var batch []event
		for cal.Len() > 0 {
			batch = cal.popBatch(batch[:0])
			for _, got := range batch {
				want := heap.pop()
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("%s: got (at %v, seq %d), want (at %v, seq %d)",
						stage, got.at, got.seq, want.at, want.seq)
				}
			}
		}
		if heap.Len() != 0 {
			t.Fatalf("%s: calendar queue drained but heap holds %d events", stage, heap.Len())
		}
	}
	// An overflow event one tick past the horizon, plus a near event. The
	// pop of the near event advances the horizon, drainOverflow empties
	// the overflow into the ring, and the remaining pops drain the queue —
	// minOvfTick is now stale at the overflow event's tick.
	stale := horizon + time.Duration(1<<calBucketBits)
	push(time.Millisecond)
	push(stale)
	check("prime")
	// Same-tick re-insert on the empty queue: its tick equals the stale
	// cached min. A direct minOvfTick read here would treat the empty
	// overflow as pending and could aim headTick at a bucket that is
	// never scanned again; ovfMin reports "no overflow" instead.
	push(stale)
	push(stale + horizon) // and refill the overflow behind it
	push(stale + time.Microsecond)
	check("reinsert")
}

// TestCalQueueOverflowChurnFuzz is a heavier companion to the property
// tests above: interleaved push/pop with the push mix skewed hard toward
// the overflow machinery — horizon-edge ticks, deep overflow, multiples
// of the horizon (bucket-slot aliasing), and same-timestamp re-inserts
// issued immediately after each batch drain.
func TestCalQueueOverflowChurnFuzz(t *testing.T) {
	trials := 2000
	if testing.Short() {
		trials = 200
	}
	horizon := time.Duration(calBuckets << calBucketBits)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var cal calQueue
		var heap eventHeap
		seq := 0
		now := time.Duration(0)
		push := func(at time.Duration) {
			seq++
			ev := event{at: at, seq: seq}
			cal.push(ev)
			heap.push(ev)
		}
		randomAt := func() time.Duration {
			switch rng.Intn(10) {
			case 0, 1, 2:
				return now // same-timestamp collision
			case 3, 4:
				return now + time.Duration(rng.Int63n(int64(4*time.Millisecond)))
			case 5: // straddle the horizon edge by a tick or two
				return now + horizon + time.Duration(rng.Int63n(1<<calBucketBits)) - time.Duration(rng.Intn(3))
			case 6, 7: // deep overflow
				return now + horizon + time.Duration(rng.Int63n(int64(30*time.Second)))
			default: // horizon multiples: same ring slot, different tick
				k := 1 + rng.Int63n(4)
				return now + time.Duration(k)*horizon + time.Duration(rng.Int63n(1<<calBucketBits))
			}
		}
		for i := 0; i < 8; i++ {
			push(randomAt())
		}
		var batch []event
		steps := 0
		for cal.Len() > 0 && steps < 500 {
			steps++
			batch = cal.popBatch(batch[:0])
			if len(batch) == 0 {
				t.Fatalf("trial %d: popBatch returned nothing from a nonempty queue", trial)
			}
			now = batch[0].at
			for _, got := range batch {
				want := heap.pop()
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("trial %d step %d: got (at %v, seq %d), want (at %v, seq %d)",
						trial, steps, got.at, got.seq, want.at, want.seq)
				}
				if rng.Intn(3) == 0 {
					push(randomAt())
				}
			}
		}
		for cal.Len() > 0 {
			batch = cal.popBatch(batch[:0])
			for _, got := range batch {
				want := heap.pop()
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("trial %d drain: got (at %v, seq %d), want (at %v, seq %d)",
						trial, got.at, got.seq, want.at, want.seq)
				}
			}
		}
		if heap.Len() != 0 {
			t.Fatalf("trial %d: calendar queue drained but heap holds %d events", trial, heap.Len())
		}
	}
}

// TestCalQueueEmptyJump: after a full drain, a push far in the future
// must not pay a bucket-by-bucket scan — the ring jumps. This is a
// behavioural smoke test (it would time out if the jump regressed to a
// linear scan over ~1e9 buckets).
func TestCalQueueEmptyJump(t *testing.T) {
	var q calQueue
	q.push(event{at: time.Millisecond, seq: 1})
	if got := q.popBatch(nil); len(got) != 1 {
		t.Fatalf("popBatch = %d events, want 1", len(got))
	}
	q.push(event{at: 20 * time.Minute, seq: 2})
	if got := q.peekAt(); got != 20*time.Minute {
		t.Fatalf("peekAt = %v, want 20m", got)
	}
	got := q.popBatch(nil)
	if len(got) != 1 || got[0].seq != 2 {
		t.Fatalf("popBatch after idle gap = %+v", got)
	}
	if q.Len() != 0 {
		t.Fatalf("queue size %d after draining everything", q.Len())
	}
}
