package netsim

import (
	"errors"
	"fmt"
	"net/netip"
	"time"
)

// ErrTimeout is what a host observes when no response arrives: either
// the query or the answer was dropped somewhere. The paper treats
// timeouts conservatively — never as evidence of interception.
var ErrTimeout = errors.New("netsim: query timed out (no response)")

// ErrNoAddress means the host has no address of the family the
// destination requires (e.g. a v4-only probe asked to query a v6
// resolver).
var ErrNoAddress = errors.New("netsim: host has no address in destination family")

// Host is an endpoint device: the measurement probe, or any LAN client.
// It can send datagrams through its gateway and collect the responses.
type Host struct {
	Name    string
	Addr4   netip.Addr // zero if the host is v6-only
	Addr6   netip.Addr // zero if the host is v4-only
	Gateway Device

	// Delay is the host's LAN link latency (zero = network default).
	Delay time.Duration

	nextPort uint16
	inbox    map[uint16][]Packet
	// spare holds drained inbox slices returned via Recycle, reused for
	// later flows so steady-state exchanges stop allocating per query.
	spare [][]Packet
	// net is the network of the host's last Exchange, so Recycle can
	// return response payload buffers to its freelist.
	net *Network
}

// NewHost creates a host. Either address may be the zero Addr.
func NewHost(name string, addr4, addr6 netip.Addr, gw Device) *Host {
	return &Host{
		Name:     name,
		Addr4:    addr4,
		Addr6:    addr6,
		Gateway:  gw,
		nextPort: 49152,
		inbox:    make(map[uint16][]Packet),
	}
}

// DeviceName implements Device.
func (h *Host) DeviceName() string { return h.Name }

// EgressDelay implements EgressDelayer.
func (h *Host) EgressDelay() time.Duration { return h.Delay }

// Receive implements Device: packets addressed to the host land in its
// per-port inbox with an arrival timestamp; anything else is ignored
// (hosts do not forward).
func (h *Host) Receive(ctx *Ctx, pkt Packet) {
	if pkt.Dst.Addr() != h.Addr4 && pkt.Dst.Addr() != h.Addr6 {
		ctx.Drop(pkt, "not for this host")
		return
	}
	pkt.ArrivedAt = ctx.Now()
	if pkt.Proto == ICMP {
		// Time Exceeded: file it under the original flow's source port
		// so the waiting Exchange sees it.
		if srcPort, _, ok := ParseTimeExceeded(pkt); ok {
			ctx.Trace(TraceDeliver, pkt, "host inbox (icmp)")
			h.deliver(srcPort, pkt)
			return
		}
		ctx.Drop(pkt, "unparseable icmp")
		return
	}
	ctx.Trace(TraceDeliver, pkt, "host inbox")
	h.deliver(pkt.Dst.Port(), pkt)
}

// deliver files a packet in the per-port inbox, reusing a recycled slice
// for the port's first packet when one is available.
func (h *Host) deliver(port uint16, pkt Packet) {
	q, ok := h.inbox[port]
	if !ok && len(h.spare) > 0 {
		q = h.spare[len(h.spare)-1]
		h.spare = h.spare[:len(h.spare)-1]
	}
	h.inbox[port] = append(q, pkt)
}

// Recycle returns a response slice obtained from Exchange to the host's
// inbox freelist, and the packets' payload buffers to the network's
// payload freelist. Callers must be completely done with the packets:
// dnswire.Unpack deep-copies, so parsed messages stay valid, but raw
// payload slices must not be retained past this call. Fault duplication
// delivers two packets sharing one payload buffer, so payloads are
// deduplicated by base pointer before recycling.
func (h *Host) Recycle(pkts []Packet) {
	if h.net != nil {
	recycle:
		for i := range pkts {
			p := pkts[i].Payload
			if len(p) == 0 {
				continue
			}
			for j := 0; j < i; j++ {
				if q := pkts[j].Payload; len(q) > 0 && &q[0] == &p[0] {
					continue recycle // duplicate sharing the same buffer
				}
			}
			h.net.RecyclePayload(p)
		}
	}
	if cap(pkts) == 0 || len(h.spare) >= 8 {
		return
	}
	h.spare = append(h.spare, pkts[:0])
}

// srcFor picks the host address matching the destination family.
func (h *Host) srcFor(dst netip.Addr) (netip.Addr, error) {
	if dst.Is6() && !dst.Is4In6() {
		if !h.Addr6.IsValid() {
			return netip.Addr{}, fmt.Errorf("%w: %s is IPv6", ErrNoAddress, dst)
		}
		return h.Addr6, nil
	}
	if !h.Addr4.IsValid() {
		return netip.Addr{}, fmt.Errorf("%w: %s is IPv4", ErrNoAddress, dst)
	}
	return h.Addr4, nil
}

// ephemeralPort hands out a fresh source port per flow; uniqueness per
// outstanding query is what lets conntrack (and therefore interceptors)
// disambiguate flows, exactly as real stub resolvers behave.
func (h *Host) ephemeralPort() uint16 {
	p := h.nextPort
	h.nextPort++
	if h.nextPort < 49152 {
		h.nextPort = 49152
	}
	return p
}

// ExchangeOptions tune one Exchange call.
type ExchangeOptions struct {
	// TTL overrides the initial hop limit; 0 means DefaultTTL. The
	// TTL-ladder localization extension uses small values here.
	TTL int
	// Proto overrides the transport protocol; the zero value means UDP.
	// Encrypted stream sessions (stream.go) exchange their frames over
	// TCP, which keeps them invisible to the UDP-gated interception
	// rules and the UDP-gated fault plane alike.
	Proto Proto
}

// Exchange sends one datagram to dst and drains every response that
// arrives on the flow's source port after the network settles. Multiple
// responses occur under query replication. No response returns
// ErrTimeout.
func (h *Host) Exchange(n *Network, dst netip.AddrPort, payload []byte, opts ExchangeOptions) ([]Packet, error) {
	if h.Gateway == nil {
		return nil, errors.New("netsim: host has no gateway")
	}
	h.net = n
	src, err := h.srcFor(dst.Addr())
	if err != nil {
		return nil, err
	}
	ttl := opts.TTL
	if ttl == 0 {
		ttl = DefaultTTL
	}
	proto := opts.Proto
	if proto == 0 {
		proto = UDP
	}
	port := h.ephemeralPort()
	pkt := Packet{
		Src:     netip.AddrPortFrom(src, port),
		Dst:     dst,
		Proto:   proto,
		TTL:     ttl,
		Payload: payload,
		SentAt:  n.Now(),
	}
	n.Inject(h.Gateway, pkt)
	if _, err := n.Run(); err != nil {
		return nil, err
	}
	got := h.inbox[port]
	delete(h.inbox, port)
	if len(got) == 0 {
		return nil, ErrTimeout
	}
	return got, nil
}

// PublicAddr4 returns the host's own idea of its IPv4 address; behind a
// NAT CPE this is a private address, and the *probe platform* (not the
// host) knows the WAN address, as RIPE Atlas metadata does.
func (h *Host) PublicAddr4() netip.Addr { return h.Addr4 }
