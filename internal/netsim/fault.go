package netsim

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"time"
)

// FaultProfile describes deterministic fault injection on forwarded
// packets. The repo's original loss model (SetLoss) is a uniform
// per-hop coin flip; real DNS paths misbehave in structured ways —
// bursty loss (Wei & Heidemann's Whac-A-Mole), duplication, reordering,
// and CPE/resolver-side damage such as response truncation and rate
// limiting. A profile models all of them at once, each scaled
// independently, and every decision is derived either from a
// per-(device, client) RNG chain or from a content hash of the packet,
// never from shared stream state. That is what keeps a faulted study
// byte-identical at any worker count: a flow's fault fate depends only
// on the flow itself, not on what other traffic shares the simulator.
//
// Only UDP packets experience faults; ICMP passes untouched so
// traceroute stays usable for diagnosis.
type FaultProfile struct {
	// Seed isolates this profile's randomness; two profiles with equal
	// parameters and seeds produce identical fault traces.
	Seed int64

	// Gilbert–Elliott burst loss: a two-state Markov chain per
	// (device, client) advances one step per forwarded packet.
	// PGoodBad/PBadGood are the state transition probabilities;
	// LossGood/LossBad the per-packet drop probability in each state.
	PGoodBad float64
	PBadGood float64
	LossGood float64
	LossBad  float64

	// DupProb duplicates a forwarded packet (both copies continue, with
	// distinct downstream fault fates via the duplicate's salt).
	DupProb float64

	// ReorderProb delays a packet by up to ReorderJitter extra link
	// latency, letting later packets overtake it.
	ReorderProb   float64
	ReorderJitter time.Duration

	// TruncProb clips DNS responses (source port 53) to TruncBytes,
	// modeling CPE forwarders that damage large answers. A clip below
	// the DNS header size turns the response into garbage the client
	// must classify rather than parse.
	TruncProb  float64
	TruncBytes int

	// Token-bucket rate limiting of queries arriving at a device that
	// owns the destination address: each client starts with RateBurst
	// tokens and earns one back per RateRefillEvery packets it sends.
	// Refill is query-count-based rather than clock-based so the drop
	// pattern is independent of virtual-clock skew between shards.
	RateLimitPort   uint16
	RateBurst       int
	RateRefillEvery int
}

// Active reports whether any fault mechanism is enabled.
func (p FaultProfile) Active() bool {
	return p.linkActive() || (p.RateLimitPort != 0 && p.RateBurst > 0)
}

// linkActive reports whether any per-hop link fault is enabled.
func (p FaultProfile) linkActive() bool {
	return p.PGoodBad > 0 || p.LossGood > 0 || p.DupProb > 0 ||
		p.ReorderProb > 0 || p.TruncProb > 0
}

// PresetFault builds a profile whose severity scales with level in
// [0, 1]: 0 disables everything, 1 is a badly impaired path (roughly 3%
// steady-state per-hop loss in bursts, plus duplication, reordering,
// truncation, and resolver rate limiting). The resilience sweep feeds
// it evenly spaced levels.
func PresetFault(level float64, seed int64) FaultProfile {
	if level <= 0 {
		return FaultProfile{}
	}
	if level > 1 {
		level = 1
	}
	return FaultProfile{
		Seed:            seed,
		PGoodBad:        0.02 * level,
		PBadGood:        0.35,
		LossGood:        0.005 * level,
		LossBad:         0.10 + 0.35*level,
		DupProb:         0.01 * level,
		ReorderProb:     0.04 * level,
		ReorderJitter:   2 * time.Millisecond,
		TruncProb:       0.02 * level,
		TruncBytes:      20, // mid-question: always garbage, never a half-parsed answer
		RateLimitPort:   53,
		RateBurst:       8 - int(4*level),
		RateRefillEvery: 2,
	}
}

// Fault decision tags keep the content-hash draws for different
// mechanisms independent of each other.
const (
	tagDup     = 0x1
	tagReorder = 0x2
	tagJitter  = 0x3
	tagTrunc   = 0x4
)

// faultKey identifies per-flow fault state at one device. The client is
// the non-service side of the flow, so a query and its response share
// state while different subscribers never do — which also bounds the
// table at one entry per (device, subscriber).
type faultKey struct {
	dev    string
	client netip.Addr
}

// geChain is one Gilbert–Elliott channel state.
type geChain struct {
	bad bool
	rng *rand.Rand
}

// rateState is one client's token bucket at a rate-limited device.
type rateState struct {
	tokens int
	seen   int
}

// faultPlane holds the network's installed profiles and their state.
type faultPlane struct {
	def    *FaultProfile
	byDev  map[string]*FaultProfile
	chains map[faultKey]*geChain
	rates  map[faultKey]*rateState
}

func newFaultPlane() *faultPlane {
	return &faultPlane{
		byDev:  make(map[string]*FaultProfile),
		chains: make(map[faultKey]*geChain),
		rates:  make(map[faultKey]*rateState),
	}
}

// SetDefaultFault installs a profile applied at every device that has
// no per-device override. An inactive profile clears it.
func (n *Network) SetDefaultFault(p FaultProfile) {
	if n.faults == nil {
		n.faults = newFaultPlane()
	}
	if p.Active() {
		n.faults.def = &p
	} else {
		n.faults.def = nil
	}
}

// SetDeviceFault installs a profile for one device (by name),
// overriding the default. Tests use it to fault a single link.
func (n *Network) SetDeviceFault(name string, p FaultProfile) {
	if n.faults == nil {
		n.faults = newFaultPlane()
	}
	n.faults.byDev[name] = &p
}

// profileFor resolves the profile governing a device.
func (f *faultPlane) profileFor(dev Device) *FaultProfile {
	if p, ok := f.byDev[dev.DeviceName()]; ok {
		return p
	}
	return f.def
}

// clientOf extracts the flow's client address: the side not speaking
// from a well-known service port.
func clientOf(pkt Packet) netip.Addr {
	if pkt.Src.Port() == 53 {
		return pkt.Dst.Addr()
	}
	return pkt.Src.Addr()
}

// minClientPort is the lowest client-side port of a probe flow. The
// simulator's port ranges are disjoint by construction: recursive
// resolvers open upstream ports in [10000, 20000), CPE forwarders in
// [20000, 28000), SNAT external ports start at 30000, and host
// ephemeral ports at 49152.
const minClientPort = 28000

// isClientFlow reports whether the packet belongs to a probe's own
// query flow rather than infrastructure recursion (resolver → root/TLD/
// auth) or forwarder upstream traffic. Only client flows are faulted:
// recursion traffic's very existence depends on per-shard resolver
// cache warmth, so faulting it would make outcomes depend on which
// probes share a world — breaking the byte-identical-at-any-worker-
// count contract. The client-visible effect is preserved either way:
// faults land on the access path, where the paper's CPEs live.
func isClientFlow(pkt Packet) bool {
	cp := pkt.Src.Port()
	if cp == 53 {
		cp = pkt.Dst.Port()
	}
	return cp >= minClientPort
}

// geDrop advances the flow's Gilbert–Elliott chain one packet and
// samples loss. The chain RNG is seeded from (profile seed, device,
// client), so its stream depends only on the flow's own packet count
// through this device.
func (f *faultPlane) geDrop(dev string, fp *FaultProfile, pkt Packet) bool {
	if fp.PGoodBad <= 0 && fp.LossGood <= 0 {
		return false
	}
	key := faultKey{dev: dev, client: clientOf(pkt)}
	ch := f.chains[key]
	if ch == nil {
		ch = &geChain{rng: rand.New(rand.NewSource(flowSeed(fp.Seed, dev, key.client)))}
		f.chains[key] = ch
	}
	if ch.bad {
		if ch.rng.Float64() < fp.PBadGood {
			ch.bad = false
		}
	} else {
		if ch.rng.Float64() < fp.PGoodBad {
			ch.bad = true
		}
	}
	p := fp.LossGood
	if ch.bad {
		p = fp.LossBad
	}
	return p > 0 && ch.rng.Float64() < p
}

// allowRate charges one token for a query arriving at a rate-limited
// device and reports whether it may pass.
func (f *faultPlane) allowRate(dev string, fp *FaultProfile, pkt Packet) bool {
	if fp.RateBurst <= 0 {
		return true
	}
	key := faultKey{dev: dev, client: clientOf(pkt)}
	rs := f.rates[key]
	if rs == nil {
		rs = &rateState{tokens: fp.RateBurst}
		f.rates[key] = rs
	}
	rs.seen++
	if fp.RateRefillEvery > 0 && rs.seen%fp.RateRefillEvery == 0 && rs.tokens < fp.RateBurst {
		rs.tokens++
	}
	if rs.tokens <= 0 {
		return false
	}
	rs.tokens--
	return true
}

// roll derives a deterministic uniform [0, 1) draw from the packet's
// content, the device, and a per-mechanism tag. Retransmissions differ
// (fresh ephemeral source port), duplicate copies differ (salt), and
// the same packet at successive hops differs (TTL), so every decision
// point gets an independent draw with no cross-flow state.
func roll(seed int64, dev string, pkt Packet, tag byte) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(dev))
	h.Write([]byte{tag, byte(pkt.TTL), pkt.FaultSalt})
	writeAddrPort(h, pkt.Src)
	writeAddrPort(h, pkt.Dst)
	binary.LittleEndian.PutUint64(buf[:], uint64(len(pkt.Payload)))
	h.Write(buf[:])
	if len(pkt.Payload) >= 2 {
		h.Write(pkt.Payload[:2]) // the DNS query ID
	}
	return float64(h.Sum64()>>11) / (1 << 53)
}

// flowSeed derives a chain seed from (profile seed, device, client).
func flowSeed(seed int64, dev string, client netip.Addr) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(dev))
	a := client.As16()
	h.Write(a[:])
	return int64(h.Sum64())
}

// writeAddrPort hashes an address-port pair.
func writeAddrPort(h interface{ Write([]byte) (int, error) }, ap netip.AddrPort) {
	a := ap.Addr().As16()
	h.Write(a[:])
	var p [2]byte
	binary.LittleEndian.PutUint16(p[:], ap.Port())
	h.Write(p[:])
}

// applyFaults runs the fault plane on one forwarded hop: link faults
// under the sending device's profile, then rate limiting under the
// receiving device's. It returns the (possibly rewritten) packet, its
// delivery time, and false when the packet was consumed. Duplicate
// copies are enqueued directly.
func (n *Network) applyFaults(dev, next Device, pkt Packet, at time.Duration) (Packet, time.Duration, bool) {
	f := n.faults
	if !isClientFlow(pkt) {
		return pkt, at, true
	}
	if fp := f.profileFor(dev); fp != nil && fp.linkActive() {
		name := dev.DeviceName()
		if f.geDrop(name, fp, pkt) {
			if n.metrics != nil {
				n.metrics.burstDrops.Inc()
			}
			n.trace(dev, TraceDrop, pkt, "fault: burst loss")
			return pkt, at, false
		}
		if fp.TruncProb > 0 && fp.TruncBytes > 0 && pkt.Src.Port() == 53 &&
			len(pkt.Payload) > fp.TruncBytes && roll(fp.Seed, name, pkt, tagTrunc) < fp.TruncProb {
			// Clone before clipping: the payload may be shared with a
			// duplicate copy already in flight.
			pkt.Payload = append([]byte(nil), pkt.Payload[:fp.TruncBytes]...)
			if n.metrics != nil {
				n.metrics.truncated.Inc()
			}
			n.trace(dev, TraceFault, pkt, "fault: response truncated")
		}
		if fp.DupProb > 0 && roll(fp.Seed, name, pkt, tagDup) < fp.DupProb {
			dup := pkt
			dup.FaultSalt++
			if n.metrics != nil {
				n.metrics.dupCopies.Inc()
			}
			if n.tracing() {
				n.trace(dev, TraceFault, dup, "fault: duplicated to "+next.DeviceName())
			}
			n.enqueue(next, dup, at)
		}
		if fp.ReorderProb > 0 && fp.ReorderJitter > 0 && roll(fp.Seed, name, pkt, tagReorder) < fp.ReorderProb {
			extra := time.Duration(roll(fp.Seed, name, pkt, tagJitter) * float64(fp.ReorderJitter))
			at += extra
			if n.metrics != nil {
				n.metrics.reordered.Inc()
			}
			if n.tracing() {
				n.trace(dev, TraceFault, pkt, "fault: reordered (+"+extra.String()+")")
			}
		}
	}
	if fp := f.profileFor(next); fp != nil && fp.RateLimitPort != 0 &&
		pkt.Dst.Port() == fp.RateLimitPort {
		// Only the device that terminates the flow rate-limits; transit
		// hops towards it do not double-charge the bucket.
		if r, ok := next.(*Router); ok && r.HasAddr(pkt.Dst.Addr()) {
			if !f.allowRate(next.DeviceName(), fp, pkt) {
				if n.metrics != nil {
					n.metrics.rateDrops.Inc()
				}
				if n.tracing() {
					n.trace(dev, TraceDrop, pkt, "fault: rate limited by "+next.DeviceName())
				}
				return pkt, at, false
			}
		}
	}
	return pkt, at, true
}
