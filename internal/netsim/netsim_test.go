package netsim

import (
	"errors"
	"net/netip"
	"strings"
	"testing"
)

func ap(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }
func addr(s string) netip.Addr   { return netip.MustParseAddr(s) }
func pfx(s string) netip.Prefix  { return netip.MustParsePrefix(s) }

// echoService answers every datagram with a recognizable payload that
// embeds the service's tag, standing in for a DNS server in these tests.
func echoService(tag string) Service {
	return ServiceFunc(func(sc *ServiceCtx, pkt Packet) {
		sc.Reply(pkt, []byte(tag+":"+string(pkt.Payload)))
	})
}

// testWorld is a small home-and-ISP topology:
//
//	host(10.0.0.2) - cpe(10.0.0.1 / 96.120.0.10) - access - border - transit - resolver(8.8.8.8)
type testWorld struct {
	net      *Network
	host     *Host
	cpe      *Router
	access   *Router
	border   *Router
	transit  *Router
	resolver *Router
}

func buildTestWorld(t *testing.T) *testWorld {
	t.Helper()
	w := &testWorld{net: NewNetwork()}

	w.resolver = NewRouter("resolver-8888", addr("8.8.8.8"))
	w.resolver.Bind(53, echoService("google"))

	w.transit = NewRouter("transit")
	w.border = NewRouter("isp-border")
	w.access = NewRouter("isp-access")

	w.cpe = NewRouter("cpe", addr("10.0.0.1"), addr("96.120.0.10"))
	w.cpe.NAT = NewNAT()
	w.cpe.NAT.MasqueradeV4 = addr("96.120.0.10")
	w.cpe.NAT.LANPrefixes = []netip.Prefix{pfx("10.0.0.0/24")}

	w.host = NewHost("probe", addr("10.0.0.2"), netip.Addr{}, w.cpe)

	// Wiring.
	w.cpe.AddRoute(pfx("10.0.0.0/24"), w.host)
	w.cpe.AddDefaultRoute(w.access)

	w.access.AddRoute(pfx("96.120.0.0/16"), w.cpe)
	w.access.AddDefaultRoute(w.border)

	w.border.AddRoute(pfx("96.120.0.0/16"), w.access)
	w.border.AddDefaultRoute(w.transit)

	w.transit.AddRoute(pfx("8.8.8.0/24"), w.resolver)
	w.transit.AddRoute(pfx("96.0.0.0/8"), w.border)

	w.resolver.AddDefaultRoute(w.transit)
	return w
}

func TestEndToEndExchangeThroughNAT(t *testing.T) {
	w := buildTestWorld(t)
	resps, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("q1"), ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 1 {
		t.Fatalf("got %d responses, want 1", len(resps))
	}
	r := resps[0]
	if string(r.Payload) != "google:q1" {
		t.Errorf("payload = %q", r.Payload)
	}
	if r.Src != ap("8.8.8.8:53") {
		t.Errorf("response source = %s, want 8.8.8.8:53", r.Src)
	}
	if r.Dst.Addr() != addr("10.0.0.2") {
		t.Errorf("response delivered to %s, not un-SNATed", r.Dst)
	}
}

func TestSNATHidesLANAddress(t *testing.T) {
	w := buildTestWorld(t)
	var seenSrc netip.AddrPort
	w.resolver.Bind(53, ServiceFunc(func(sc *ServiceCtx, pkt Packet) {
		seenSrc = pkt.Src
		sc.Reply(pkt, []byte("ok"))
	}))
	if _, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("q"), ExchangeOptions{}); err != nil {
		t.Fatal(err)
	}
	if seenSrc.Addr() != addr("96.120.0.10") {
		t.Errorf("resolver saw source %s, want masqueraded 96.120.0.10", seenSrc)
	}
}

func TestClosedPortTimesOut(t *testing.T) {
	w := buildTestWorld(t)
	_, err := w.host.Exchange(w.net, ap("8.8.8.8:5353"), []byte("q"), ExchangeOptions{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestUnroutedDestinationTimesOut(t *testing.T) {
	w := buildTestWorld(t)
	_, err := w.host.Exchange(w.net, ap("203.0.113.1:53"), []byte("q"), ExchangeOptions{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestCPEDNATInterceptionSpoofsSource(t *testing.T) {
	w := buildTestWorld(t)
	// Put a local "forwarder" on the CPE and intercept all port-53
	// traffic to it — the XB6/XDNS configuration.
	w.cpe.Bind(53, echoService("cpe-forwarder"))
	w.cpe.NAT.AddDNAT(DNATRule{
		Name:  "xdns",
		Match: MatchUDPPort53,
		To:    ap("10.0.0.1:53"),
	})
	resps, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("q2"), ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := resps[0]
	if string(r.Payload) != "cpe-forwarder:q2" {
		t.Errorf("payload = %q, want interception by CPE forwarder", r.Payload)
	}
	if r.Src != ap("8.8.8.8:53") {
		t.Errorf("intercepted response source = %s, want spoofed 8.8.8.8:53", r.Src)
	}
}

func TestMiddleboxDNATInterception(t *testing.T) {
	w := buildTestWorld(t)
	// The ISP resolver lives behind the border router.
	ispResolver := NewRouter("isp-resolver", addr("96.121.0.53"))
	ispResolver.Bind(53, echoService("isp"))
	ispResolver.AddDefaultRoute(w.border)
	w.border.AddRoute(pfx("96.121.0.0/24"), ispResolver)
	w.access.AddRoute(pfx("96.121.0.0/24"), w.border)

	// Interception at the access router (both directions pass here).
	w.access.NAT = NewNAT()
	w.access.NAT.AddDNAT(DNATRule{
		Name:  "isp-middlebox",
		Match: MatchUDPPort53,
		To:    ap("96.121.0.53:53"),
	})

	resps, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("q3"), ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := resps[0]
	if string(r.Payload) != "isp:q3" {
		t.Errorf("payload = %q, want ISP resolver answer", r.Payload)
	}
	if r.Src != ap("8.8.8.8:53") {
		t.Errorf("source = %s, want spoofed 8.8.8.8:53", r.Src)
	}
}

func TestQueryReplicationDeliversTwoResponses(t *testing.T) {
	w := buildTestWorld(t)
	ispResolver := NewRouter("isp-resolver", addr("96.121.0.53"))
	ispResolver.Bind(53, echoService("isp"))
	ispResolver.AddDefaultRoute(w.border)
	w.border.AddRoute(pfx("96.121.0.0/24"), ispResolver)
	w.access.AddRoute(pfx("96.121.0.0/24"), w.border)

	w.access.NAT = NewNAT()
	w.access.NAT.AddDNAT(DNATRule{
		Name:      "replicating-middlebox",
		Match:     MatchUDPPort53,
		To:        ap("96.121.0.53:53"),
		Replicate: true,
	})

	resps, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("q4"), ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 {
		t.Fatalf("got %d responses, want 2 under replication", len(resps))
	}
	payloads := map[string]bool{}
	for _, r := range resps {
		payloads[string(r.Payload)] = true
		if r.Src != ap("8.8.8.8:53") {
			t.Errorf("response source = %s, want 8.8.8.8:53 for both", r.Src)
		}
	}
	if !payloads["isp:q4"] || !payloads["google:q4"] {
		t.Errorf("payloads = %v, want both isp and google answers", payloads)
	}
}

func TestBogonEgressFilterDrops(t *testing.T) {
	w := buildTestWorld(t)
	filtered := 0
	// Re-adding the default route replaces the unfiltered one.
	w.border.AddDefaultRouteFiltered(w.transit, func(pkt Packet) (bool, string) {
		if pkt.Dst.Addr() == addr("192.0.2.53") {
			filtered++
			return true, "bogon egress"
		}
		return false, ""
	})
	_, err := w.host.Exchange(w.net, ap("192.0.2.53:53"), []byte("q"), ExchangeOptions{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if filtered != 1 {
		t.Errorf("filter fired %d times, want 1", filtered)
	}
}

func TestTTLExpiryDropsQuery(t *testing.T) {
	w := buildTestWorld(t)
	// Path is host -> cpe -> access -> border -> transit -> resolver:
	// 5 forwards. TTL 3 dies in transit.
	_, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("q"), ExchangeOptions{TTL: 3})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout for TTL 3", err)
	}
	// But a CPE interceptor answers even TTL 1: interception precedes
	// forwarding — the basis of TTL-ladder localization.
	w.cpe.Bind(53, echoService("cpe"))
	w.cpe.NAT.AddDNAT(DNATRule{Name: "x", Match: MatchUDPPort53, To: ap("10.0.0.1:53")})
	resps, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("q"), ExchangeOptions{TTL: 1})
	if err != nil {
		t.Fatalf("TTL-1 query through interceptor: %v", err)
	}
	if string(resps[0].Payload) != "cpe:q" {
		t.Errorf("payload = %q", resps[0].Payload)
	}
}

func TestForwardingLoopHitsEventBudget(t *testing.T) {
	n := NewNetwork()
	n.MaxEvents = 1000
	a := NewRouter("a")
	b := NewRouter("b")
	a.AddDefaultRoute(b)
	b.AddDefaultRoute(a)
	n.Inject(a, Packet{Src: ap("1.2.3.4:1"), Dst: ap("5.6.7.8:1"), Proto: UDP, TTL: 1 << 30})
	_, err := n.Run()
	if !errors.Is(err, ErrEventBudget) {
		t.Fatalf("err = %v, want ErrEventBudget", err)
	}
}

func TestTTLBoundsLoopsWithoutBudget(t *testing.T) {
	n := NewNetwork()
	a := NewRouter("a")
	b := NewRouter("b")
	a.AddDefaultRoute(b)
	b.AddDefaultRoute(a)
	n.Inject(a, Packet{Src: ap("1.2.3.4:1"), Dst: ap("5.6.7.8:1"), Proto: UDP, TTL: DefaultTTL})
	processed, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if processed > DefaultTTL+2 {
		t.Errorf("processed %d events, want TTL-bounded", processed)
	}
}

func TestV6Exchange(t *testing.T) {
	n := NewNetwork()
	res := NewRouter("res6", addr("2001:4860:4860::8888"))
	res.Bind(53, echoService("g6"))
	gw := NewRouter("gw6", addr("2001:db9::1"))
	host := NewHost("h6", netip.Addr{}, addr("2001:db9::2"), gw)
	gw.AddRoute(pfx("2001:db9::/64"), host)
	gw.AddDefaultRoute(res)
	res.AddDefaultRoute(gw)
	resps, err := host.Exchange(n, ap("[2001:4860:4860::8888]:53"), []byte("q6"), ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(resps[0].Payload) != "g6:q6" {
		t.Errorf("payload = %q", resps[0].Payload)
	}
	// Family mismatch: v6-only host cannot query v4.
	if _, err := host.Exchange(n, ap("8.8.8.8:53"), []byte("q"), ExchangeOptions{}); !errors.Is(err, ErrNoAddress) {
		t.Errorf("v4 query from v6-only host: err = %v, want ErrNoAddress", err)
	}
}

func TestTraceCapturesNATEvents(t *testing.T) {
	w := buildTestWorld(t)
	var log []TraceEvent
	w.net.Tap(func(e TraceEvent) { log = append(log, e) })
	w.cpe.Bind(53, echoService("cpe"))
	w.cpe.NAT.AddDNAT(DNATRule{Name: "x", Match: MatchUDPPort53, To: ap("10.0.0.1:53")})
	if _, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("q"), ExchangeOptions{}); err != nil {
		t.Fatal(err)
	}
	kinds := map[TraceKind]int{}
	for _, e := range log {
		kinds[e.Kind]++
	}
	if kinds[TraceDNAT] != 1 || kinds[TraceUnDNAT] != 1 || kinds[TraceDeliver] < 2 {
		t.Errorf("trace kinds = %v, want one dnat, one undnat, deliveries", kinds)
	}
	var sawSpoof bool
	for _, e := range log {
		if e.Kind == TraceUnDNAT && strings.Contains(e.Note, "spoof") {
			sawSpoof = true
		}
	}
	if !sawSpoof {
		t.Error("no spoofing note in trace")
	}
}

func TestExchangeDistinctSourcePorts(t *testing.T) {
	w := buildTestWorld(t)
	var ports []uint16
	w.resolver.Bind(53, ServiceFunc(func(sc *ServiceCtx, pkt Packet) {
		ports = append(ports, pkt.Src.Port())
		sc.Reply(pkt, []byte("ok"))
	}))
	for i := 0; i < 3; i++ {
		if _, err := w.host.Exchange(w.net, ap("8.8.8.8:53"), []byte("q"), ExchangeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint16]bool{}
	for _, p := range ports {
		if seen[p] {
			t.Fatalf("SNAT reused external port %d across flows", p)
		}
		seen[p] = true
	}
}

func TestNATMatchHelpers(t *testing.T) {
	q := Packet{Proto: UDP, Dst: ap("8.8.8.8:53")}
	if !MatchUDPPort53(q) {
		t.Error("MatchUDPPort53 missed")
	}
	if MatchUDPPort53(Packet{Proto: UDP, Dst: ap("8.8.8.8:443")}) {
		t.Error("MatchUDPPort53 matched port 443")
	}
	only := MatchUDP53To(addr("8.8.8.8"))
	if !only(q) || only(Packet{Proto: UDP, Dst: ap("1.1.1.1:53")}) {
		t.Error("MatchUDP53To misbehaves")
	}
	except := MatchUDP53Except(addr("9.9.9.9"))
	if !except(q) || except(Packet{Proto: UDP, Dst: ap("9.9.9.9:53")}) {
		t.Error("MatchUDP53Except misbehaves")
	}
}

func TestPacketHelpers(t *testing.T) {
	p := Packet{Src: ap("1.2.3.4:5"), Dst: ap("[2001:db8::1]:53"), Proto: UDP, TTL: 7, Payload: []byte("x")}
	if !p.IsIPv6() {
		t.Error("IsIPv6 = false")
	}
	c := p.Clone()
	c.Payload[0] = 'y'
	if p.Payload[0] != 'x' {
		t.Error("Clone aliases payload")
	}
	if s := p.String(); !strings.Contains(s, "udp") || !strings.Contains(s, "ttl=7") {
		t.Errorf("String = %q", s)
	}
}
