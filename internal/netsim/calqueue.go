package netsim

import "time"

// The event queue is a calendar (bucket) queue keyed on the simulated
// clock, replacing the earlier binary heap (kept in calqueue_test.go as
// eventHeap, the reference implementation the order-invariance property
// test compares against).
//
// Why a calendar queue fits this simulator: every enqueue is at
// now+delay with delays clustered around the 1ms default egress delay,
// so events land in the current or a nearby bucket and the queue
// behaves like an O(1) FIFO ring rather than an O(log n) heap. The
// bucket width is 2^20 ns (~1.05ms) — one hop's worth of virtual time —
// so a bucket rarely holds more than the packets of a single in-flight
// wave, and the ring's horizon (256 buckets ≈ 268ms of virtual time)
// comfortably covers any exchange's RTT spread. The rare event beyond
// the horizon (long fault delays, retry timers) goes to an unordered
// overflow slice that drains into the ring as the horizon reaches it.
//
// Determinism: the total order is (at, seq), exactly the heap's. Pop
// scans the head bucket for the minimum timestamp and returns every
// event carrying it in ascending seq order, so event order — and
// therefore every table the simulation feeds — is byte-identical to
// the heap's.

const (
	// calBucketBits sets the bucket width to 2^20 ns ≈ 1.05ms.
	calBucketBits = 20
	// calBuckets is the ring size; must be a power of two.
	calBuckets = 256
)

// calQueue is the calendar queue. The zero value is ready to use.
type calQueue struct {
	ring [calBuckets][]event
	// headTick is the tick (at >> calBucketBits) the ring's head bucket
	// holds; only meaningful while ringCount > 0.
	headTick  int64
	size      int // ring + overflow
	ringCount int
	// overflow holds events scheduled beyond the ring horizon, in
	// enqueue order; minOvfTick caches their earliest tick. The cache is
	// only meaningful while overflow is nonempty — read it through
	// ovfMin, never directly: a batch drain that empties the overflow
	// leaves minOvfTick holding the drained minimum, and a same-tick
	// re-insert that trusted the stale value would jump headTick into
	// the past and replay an already-scanned bucket out of order.
	overflow   []event
	minOvfTick int64
}

// calNoOverflow is ovfMin's result while the overflow is empty: later
// than any real tick, so every "is an overflow event due?" comparison
// fails closed.
const calNoOverflow = int64(1<<63 - 1)

// ovfMin returns the earliest overflow tick, or calNoOverflow when the
// overflow is empty. Centralizing the emptiness check here is what makes
// a stale minOvfTick unreadable (see the field comment).
func (q *calQueue) ovfMin() int64 {
	if len(q.overflow) == 0 {
		return calNoOverflow
	}
	return q.minOvfTick
}

func (q *calQueue) Len() int { return q.size }

// push schedules one event. Every caller enqueues at or after the
// current drain point (at >= now), so an event's tick is never behind
// headTick while the ring is nonempty.
func (q *calQueue) push(ev event) {
	tick := int64(ev.at) >> calBucketBits
	if q.ringCount == 0 {
		// Empty ring: jump it straight to the earliest pending tick so
		// an idle gap costs nothing to scan over. The jump must never
		// pass a pending overflow event — a bucket behind headTick
		// would otherwise go unscanned.
		if m := q.ovfMin(); m < tick {
			q.headTick = m
		} else {
			q.headTick = tick
		}
	}
	q.size++
	if tick >= q.headTick+calBuckets {
		if tick < q.ovfMin() {
			q.minOvfTick = tick
		}
		q.overflow = append(q.overflow, ev)
		return
	}
	if tick < q.headTick {
		// Behind the head (the empty-ring jump above keyed off a later
		// event): file it in the head bucket. The head bucket is always
		// scanned first and pops select by stored at, so an early event
		// still pops before everything else.
		tick = q.headTick
	}
	q.ring[tick&(calBuckets-1)] = append(q.ring[tick&(calBuckets-1)], ev)
	q.ringCount++
}

// popBatch removes every event sharing the earliest timestamp and
// appends them, in ascending seq order, to dst. The caller owns the
// returned slice until the next call; passing it back (re-sliced to
// zero length) reuses its storage. Empty queue returns dst unchanged.
func (q *calQueue) popBatch(dst []event) []event {
	if q.size == 0 {
		return dst
	}
	// Advance to the first nonempty bucket, draining overflow into the
	// ring whenever the horizon reaches its earliest tick — an overflow
	// event must never be outrun by a later-ticked ring event.
	for {
		if q.ringCount == 0 {
			// size > 0 with an empty ring means the overflow is nonempty
			// (size == ringCount + len(overflow)), so ovfMin is a real tick.
			q.headTick = q.ovfMin()
		}
		if q.ovfMin() < q.headTick+calBuckets {
			q.drainOverflow()
		}
		if len(q.ring[q.headTick&(calBuckets-1)]) > 0 {
			break
		}
		q.headTick++
	}
	b := q.ring[q.headTick&(calBuckets-1)]
	minAt := b[0].at
	for i := 1; i < len(b); i++ {
		if b[i].at < minAt {
			minAt = b[i].at
		}
	}
	// One compaction pass: events at minAt move to dst in slice order,
	// the rest keep their relative order in place.
	base := len(dst)
	keep := b[:0]
	for i := range b {
		if b[i].at == minAt {
			dst = append(dst, b[i])
		} else {
			keep = append(keep, b[i])
		}
	}
	// Zero the vacated tail so Device and Payload references release.
	for i := len(keep); i < len(b); i++ {
		b[i] = event{}
	}
	q.ring[q.headTick&(calBuckets-1)] = keep
	removed := len(b) - len(keep)
	q.size -= removed
	q.ringCount -= removed
	// Bucket slice order is enqueue order except where a drained
	// overflow run interleaved; restore seq order then (rarely taken,
	// and the batch is near-sorted when it is).
	batch := dst[base:]
	for i := 1; i < len(batch); i++ {
		for j := i; j > 0 && batch[j].seq < batch[j-1].seq; j-- {
			batch[j], batch[j-1] = batch[j-1], batch[j]
		}
	}
	return dst
}

// drainOverflow moves every overflow event inside the current horizon
// into the ring, keeping the rest (in order) and refreshing minOvfTick.
func (q *calQueue) drainOverflow() {
	ovf := q.overflow
	q.overflow = q.overflow[:0]
	for _, ev := range ovf {
		tick := int64(ev.at) >> calBucketBits
		if tick >= q.headTick+calBuckets {
			if tick < q.ovfMin() {
				q.minOvfTick = tick
			}
			q.overflow = append(q.overflow, ev)
			continue
		}
		q.ring[tick&(calBuckets-1)] = append(q.ring[tick&(calBuckets-1)], ev)
		q.ringCount++
	}
}

// peekAt returns the earliest scheduled timestamp without removing
// anything; only valid while size > 0. Test helper — it scans the whole
// structure rather than tracking state.
func (q *calQueue) peekAt() time.Duration {
	min := time.Duration(1<<63 - 1)
	for slot := range q.ring {
		for _, ev := range q.ring[slot] {
			if ev.at < min {
				min = ev.at
			}
		}
	}
	for _, ev := range q.overflow {
		if ev.at < min {
			min = ev.at
		}
	}
	return min
}
