package netsim

import (
	"net/netip"
	"testing"
)

func TestSNATAllocatesAndRestores(t *testing.T) {
	n := NewNAT()
	n.MasqueradeV4 = addr("96.120.0.10")
	n.LANPrefixes = []netip.Prefix{pfx("10.0.0.0/24")}

	out := Packet{Proto: UDP, Src: ap("10.0.0.2:5000"), Dst: ap("8.8.8.8:53")}
	tr, ok := n.applySNAT(out)
	if !ok {
		t.Fatal("SNAT did not fire")
	}
	if tr.Src.Addr() != addr("96.120.0.10") {
		t.Errorf("masqueraded src = %s", tr.Src)
	}

	reply := Packet{Proto: UDP, Src: ap("8.8.8.8:53"), Dst: tr.Src}
	back, ok := n.reverseSNAT(reply)
	if !ok {
		t.Fatal("reverse SNAT did not fire")
	}
	if back.Dst != ap("10.0.0.2:5000") {
		t.Errorf("restored dst = %s", back.Dst)
	}
}

func TestSNATIgnoresNonLANSources(t *testing.T) {
	n := NewNAT()
	n.MasqueradeV4 = addr("96.120.0.10")
	n.LANPrefixes = []netip.Prefix{pfx("10.0.0.0/24")}
	out := Packet{Proto: UDP, Src: ap("192.0.2.9:5000"), Dst: ap("8.8.8.8:53")}
	if _, ok := n.applySNAT(out); ok {
		t.Error("SNAT fired for a non-LAN source")
	}
}

func TestSNATReusesPortPerFlow(t *testing.T) {
	n := NewNAT()
	n.MasqueradeV4 = addr("96.120.0.10")
	n.LANPrefixes = []netip.Prefix{pfx("10.0.0.0/24")}
	out := Packet{Proto: UDP, Src: ap("10.0.0.2:5000"), Dst: ap("8.8.8.8:53")}
	a, _ := n.applySNAT(out)
	b, _ := n.applySNAT(out)
	if a.Src != b.Src {
		t.Errorf("same flow translated to %s and %s", a.Src, b.Src)
	}
	// Different source port → different external port.
	out2 := Packet{Proto: UDP, Src: ap("10.0.0.2:5001"), Dst: ap("8.8.8.8:53")}
	c, _ := n.applySNAT(out2)
	if c.Src == a.Src {
		t.Error("distinct flows share an external port")
	}
}

func TestSNATPortWraparound(t *testing.T) {
	n := NewNAT()
	n.nextPort = 65534
	p1 := n.allocPort()
	p2 := n.allocPort()
	p3 := n.allocPort()
	if p1 != 65534 || p2 != 65535 {
		t.Errorf("ports = %d,%d", p1, p2)
	}
	if p3 < 30000 {
		t.Errorf("wraparound landed at %d, below the dynamic range", p3)
	}
}

func TestDNATConntrackIsolation(t *testing.T) {
	// Two clients intercepted to the same target get independent
	// reverse mappings.
	n := NewNAT()
	n.AddDNAT(DNATRule{Name: "x", Match: MatchUDPPort53, To: ap("10.0.0.1:53")})

	q1 := Packet{Proto: UDP, Src: ap("192.168.1.2:40000"), Dst: ap("8.8.8.8:53")}
	q2 := Packet{Proto: UDP, Src: ap("192.168.1.3:40000"), Dst: ap("1.1.1.1:53")}
	r1, ok1, _ := n.applyDNAT(q1)
	r2, ok2, _ := n.applyDNAT(q2)
	if !ok1 || !ok2 || r1.Dst != ap("10.0.0.1:53") || r2.Dst != ap("10.0.0.1:53") {
		t.Fatalf("dnat: %v %v", r1, r2)
	}

	rep1 := Packet{Proto: UDP, Src: ap("10.0.0.1:53"), Dst: ap("192.168.1.2:40000")}
	rep2 := Packet{Proto: UDP, Src: ap("10.0.0.1:53"), Dst: ap("192.168.1.3:40000")}
	b1, ok := n.reverseDNAT(rep1)
	if !ok || b1.Src != ap("8.8.8.8:53") {
		t.Errorf("reverse 1 = %v,%t", b1, ok)
	}
	b2, ok := n.reverseDNAT(rep2)
	if !ok || b2.Src != ap("1.1.1.1:53") {
		t.Errorf("reverse 2 = %v,%t", b2, ok)
	}
	// Conntrack entries are consumed.
	if _, ok := n.reverseDNAT(rep1); ok {
		t.Error("conntrack entry survived its reply")
	}
}

func TestDNATSkipsAlreadyTargeted(t *testing.T) {
	n := NewNAT()
	n.AddDNAT(DNATRule{Name: "x", Match: MatchUDPPort53, To: ap("10.0.0.1:53")})
	q := Packet{Proto: UDP, Src: ap("192.168.1.2:40000"), Dst: ap("10.0.0.1:53")}
	if _, rewritten, _ := n.applyDNAT(q); rewritten {
		t.Error("rewrote a packet already addressed to the target")
	}
}

func TestDNATFirstRuleWins(t *testing.T) {
	n := NewNAT()
	n.AddDNAT(DNATRule{Name: "a", Match: MatchUDP53To(addr("8.8.8.8")), To: ap("10.0.0.1:53")})
	n.AddDNAT(DNATRule{Name: "b", Match: MatchUDPPort53, To: ap("10.0.0.2:53")})
	q := Packet{Proto: UDP, Src: ap("192.168.1.2:40000"), Dst: ap("8.8.8.8:53")}
	r, ok, _ := n.applyDNAT(q)
	if !ok || r.Dst != ap("10.0.0.1:53") {
		t.Errorf("first rule did not win: %v", r)
	}
	q2 := Packet{Proto: UDP, Src: ap("192.168.1.2:40001"), Dst: ap("1.1.1.1:53")}
	r2, ok, _ := n.applyDNAT(q2)
	if !ok || r2.Dst != ap("10.0.0.2:53") {
		t.Errorf("fallthrough rule did not fire: %v", r2)
	}
}
