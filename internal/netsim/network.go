package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Device is anything that can receive a packet: a host, a router, a
// middlebox. Devices are wired to each other explicitly (a CPE knows its
// WAN gateway, a router has a routing table of next hops), mirroring
// physical topology rather than a global delivery shortcut — interception
// is a property of the path, so the path must be real.
type Device interface {
	// DeviceName identifies the device in traces.
	DeviceName() string
	// Receive handles one inbound packet. Implementations use ctx to
	// forward, deliver, or drop.
	Receive(ctx *Ctx, pkt Packet)
}

// EgressDelayer lets a device declare the one-way delay of its uplinks.
// Devices without it get the network's default. Delays make the
// simulation run on a virtual clock, so response times are meaningful:
// an interceptor near the client answers measurably faster than a
// distant anycast site — itself a known interception signal.
type EgressDelayer interface {
	EgressDelay() time.Duration
}

// Ctx gives a device controlled access to the network during packet
// handling.
type Ctx struct {
	net *Network
	dev Device
}

// Now returns the virtual time of the event being processed.
func (c *Ctx) Now() time.Duration { return c.net.now }

// Forward hands the packet to the next device after this device's link
// delay. The TTL is decremented here — every inter-device handoff is a
// routed hop. Packets whose TTL reaches zero are dropped; when
// EmitTimeExceeded is enabled, identified routers announce the expiry
// with ICMP, enabling traceroute.
func (c *Ctx) Forward(next Device, pkt Packet) {
	if next == nil {
		c.Drop(pkt, "no route")
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		if c.net.metrics != nil && pkt.Proto == UDP && isClientFlow(pkt) {
			c.net.metrics.ttlDrops.Inc()
		}
		c.net.trace(c.dev, TraceDrop, pkt, "ttl exceeded")
		// Routers announce the expiry (never for ICMP itself: no
		// ICMP-about-ICMP cascades).
		if c.net.EmitTimeExceeded && pkt.Proto != ICMP {
			if r, ok := c.dev.(*Router); ok {
				r.sendTimeExceeded(c, pkt)
			}
		}
		return
	}
	if c.net.lose() {
		if c.net.metrics != nil {
			c.net.metrics.lossDrops.Inc()
		}
		c.net.trace(c.dev, TraceDrop, pkt, "packet loss")
		return
	}
	at := c.net.now + c.net.delayFrom(c.dev)
	if pkt.Proto == UDP && c.net.faults != nil {
		var ok bool
		if pkt, at, ok = c.net.applyFaults(c.dev, next, pkt, at); !ok {
			return
		}
	}
	if c.net.metrics != nil && pkt.Proto == UDP && isClientFlow(pkt) {
		c.net.metrics.forwarded.Inc()
	}
	if c.net.tracing() {
		c.net.trace(c.dev, TraceForward, pkt, "to "+next.DeviceName())
	}
	c.net.enqueue(next, pkt, at)
}

// Emit originates a packet at this device without a TTL decrement —
// the device is the packet's first hop, as when a local service answers.
func (c *Ctx) Emit(next Device, pkt Packet) {
	if next == nil {
		c.Drop(pkt, "no route for emitted packet")
		return
	}
	if c.net.tracing() {
		c.net.trace(c.dev, TraceEmit, pkt, "via "+next.DeviceName())
	}
	c.net.enqueue(next, pkt, c.net.now+c.net.delayFrom(c.dev))
}

// Loopback re-enqueues a packet at this same device, used after a DNAT
// rewrite makes the device itself the destination.
func (c *Ctx) Loopback(pkt Packet) {
	c.net.enqueue(c.dev, pkt, c.net.now)
}

// Drop discards the packet, recording why.
func (c *Ctx) Drop(pkt Packet, why string) {
	c.net.trace(c.dev, TraceDrop, pkt, why)
}

// Trace records a custom event (NAT rewrites etc.).
func (c *Ctx) Trace(kind TraceKind, pkt Packet, note string) {
	c.net.trace(c.dev, kind, pkt, note)
}

// event is one scheduled delivery.
type event struct {
	at  time.Duration
	seq int // FIFO tiebreak for equal timestamps
	dev Device
	pkt Packet
}

// Network is the virtual-time event loop tying devices together. The
// event queue is a calendar queue (see calqueue.go); events are totally
// ordered by (at, seq), so delivery order is deterministic and
// independent of the queue's internal layout.
type Network struct {
	queue    calQueue
	batch    []event // reused popBatch buffer
	seq      int     // trace sequence
	eventSeq int     // event tiebreak sequence
	now      time.Duration
	taps     []func(TraceEvent)

	// DefaultEgressDelay applies to devices that do not implement
	// EgressDelayer. One millisecond keeps virtual RTTs in a realistic
	// range without any configuration.
	DefaultEgressDelay time.Duration

	// MaxEvents bounds one Run to defend against forwarding loops.
	MaxEvents int

	// EmitTimeExceeded makes routers with a RouterID answer TTL expiry
	// with ICMP Time Exceeded — traceroute support.
	EmitTimeExceeded bool

	lossRate float64
	lossRng  *rand.Rand

	// faults is the installed fault-injection plane (see fault.go);
	// nil when no profile has ever been set.
	faults *faultPlane

	// metrics is the observability plane (see metrics.go); nil when
	// disabled, which reduces every instrumentation site to one branch.
	metrics *netMetrics

	// payloadFree recycles datagram payload buffers between exchanges.
	// The simulator is single-threaded, so a plain stack suffices. The
	// pool is bypassed while taps are installed: TraceEvents retain whole
	// Packets (payload included), and a tap may hold them indefinitely.
	payloadFree [][]byte
}

// payloadFreeMax bounds the freelist; a handful of buffers covers the
// in-flight set of any exchange, including replicated responses.
const payloadFreeMax = 32

// payloadMinCap keeps degenerate buffers (e.g. truncation-fault clones)
// out of the pool so recycled buffers are always worth reusing.
const payloadMinCap = 128

// PayloadBuf returns an empty buffer for building a datagram payload
// (typically via dnswire's PackTo). The buffer comes from the network's
// freelist when one is available; hand it back with RecyclePayload once
// no response can reference it. Returns nil while trace taps are
// installed — callers then pack into a fresh allocation, which taps may
// retain safely.
func (n *Network) PayloadBuf() []byte {
	if len(n.taps) > 0 {
		return nil
	}
	if k := len(n.payloadFree); k > 0 {
		buf := n.payloadFree[k-1]
		n.payloadFree = n.payloadFree[:k-1]
		return buf[:0]
	}
	return make([]byte, 0, 512)
}

// RecyclePayload returns a payload buffer to the freelist. Only the
// exchange initiator may recycle: services never recycle payloads they
// received, because DNAT replication and fault duplication make packets
// share payload storage. Recycling is pure memory reuse — it never
// changes what bytes any packet carries — so determinism is unaffected.
func (n *Network) RecyclePayload(buf []byte) {
	if cap(buf) < payloadMinCap || len(n.taps) > 0 || len(n.payloadFree) >= payloadFreeMax {
		return
	}
	n.payloadFree = append(n.payloadFree, buf[:0])
}

// SetLoss installs a deterministic random-loss model: every forwarded
// hop independently drops the packet with the given probability.
// Locally-delivered and emitted packets are not affected — loss is a
// property of links. A zero rate disables the model.
func (n *Network) SetLoss(rate float64, seed int64) {
	if rate <= 0 {
		n.lossRate, n.lossRng = 0, nil
		return
	}
	n.lossRate = rate
	n.lossRng = rand.New(rand.NewSource(seed))
}

// lose samples the loss model for one hop.
func (n *Network) lose() bool {
	return n.lossRng != nil && n.lossRng.Float64() < n.lossRate
}

// NewNetwork returns an empty network with a generous event budget.
func NewNetwork() *Network {
	return &Network{
		MaxEvents:          1 << 20,
		DefaultEgressDelay: time.Millisecond,
	}
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// delayFrom resolves a device's egress link delay.
func (n *Network) delayFrom(dev Device) time.Duration {
	if d, ok := dev.(EgressDelayer); ok {
		if delay := d.EgressDelay(); delay > 0 {
			return delay
		}
	}
	return n.DefaultEgressDelay
}

// Tap registers a capture callback invoked for every trace event.
// Taps observe the whole network; per-device filtering is the callback's
// business.
func (n *Network) Tap(fn func(TraceEvent)) {
	n.taps = append(n.taps, fn)
}

// tracing reports whether any tap is installed. Call sites that build
// a trace note string check it first so the concatenation is not paid
// on untapped runs.
func (n *Network) tracing() bool { return len(n.taps) > 0 }

// trace dispatches one event to the taps.
func (n *Network) trace(dev Device, kind TraceKind, pkt Packet, note string) {
	if len(n.taps) == 0 {
		return
	}
	n.seq++
	ev := TraceEvent{Seq: n.seq, At: n.now, Device: dev.DeviceName(), Kind: kind, Packet: pkt, Note: note}
	for _, t := range n.taps {
		t(ev)
	}
}

// enqueue schedules a delivery.
func (n *Network) enqueue(dev Device, pkt Packet, at time.Duration) {
	n.eventSeq++
	n.queue.push(event{at: at, seq: n.eventSeq, dev: dev, pkt: pkt})
}

// Inject introduces a packet at a device from outside (e.g. a host
// handing its own datagram to its gateway) at the current virtual time.
func (n *Network) Inject(dev Device, pkt Packet) {
	if pkt.SentAt == 0 {
		pkt.SentAt = n.now
	}
	n.enqueue(dev, pkt, n.now)
}

// ErrEventBudget is returned by Run when the event budget is exhausted,
// which in a correct topology means a forwarding loop.
var ErrEventBudget = errors.New("netsim: event budget exhausted (forwarding loop?)")

// Run drains the event queue in virtual-time order. It returns the
// number of events processed.
//
// Events are drained in batches sharing one timestamp: the clock
// advances once per batch and the per-event work reduces to the
// dispatch itself. Receives may enqueue new events at the same
// timestamp (Loopback); those carry higher seqs than the whole batch,
// so processing them in the next batch preserves the (at, seq) total
// order.
func (n *Network) Run() (int, error) {
	processed := 0
	// One Ctx serves the whole drain: devices only use it synchronously
	// inside Receive, so re-pointing dev per event is safe and saves an
	// allocation per delivery.
	ctx := Ctx{net: n}
	for n.queue.Len() > 0 {
		n.batch = n.queue.popBatch(n.batch[:0])
		if at := n.batch[0].at; at > n.now {
			n.now = at
		}
		for i := range n.batch {
			if processed >= n.MaxEvents {
				return processed, fmt.Errorf("%w after %d events", ErrEventBudget, processed)
			}
			processed++
			ev := &n.batch[i]
			ctx.dev = ev.dev
			n.trace(ev.dev, TraceRecv, ev.pkt, "")
			ev.dev.Receive(&ctx, ev.pkt)
			// Release the Device and Payload references so the reused
			// batch buffer never pins a processed packet's storage.
			*ev = event{}
		}
	}
	return processed, nil
}
