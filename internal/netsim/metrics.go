package netsim

import "github.com/dnswatch/dnsloc/internal/metrics"

// netMetrics is the event loop's pre-resolved metric handles. Handles
// are looked up once in SetMetrics; the per-packet cost is one nil
// check plus one atomic add. Only client flows (isClientFlow) feed the
// Stable counters: infrastructure recursion traffic depends on which
// probes share a world (resolver cache warmth), so counting it would
// break snapshot byte-identity across worker counts. The legacy SetLoss
// model draws from a shared RNG stream — also not shard-invariant —
// so its drops are Diagnostic.
type netMetrics struct {
	forwarded *metrics.Counter // client-flow hops handed to the next device
	ttlDrops  *metrics.Counter // client-flow packets expired in Forward
	lossDrops *metrics.Counter // legacy SetLoss drops (any flow)

	burstDrops *metrics.Counter // fault: Gilbert–Elliott burst loss
	truncated  *metrics.Counter // fault: response clipped to TruncBytes
	dupCopies  *metrics.Counter // fault: extra copies enqueued
	reordered  *metrics.Counter // fault: delivery delayed by jitter
	rateDrops  *metrics.Counter // fault: query dropped by token bucket

	natOccupancy *metrics.Gauge // peak SNAT+conntrack entries at any one NAT

	// Route-lookup memo effectiveness (lookupRoute's 4-slot cache).
	// Diagnostic: lookups cover every flow, including infrastructure
	// recursion whose volume depends on which probes share a world.
	routeLookups   *metrics.Counter
	routeCacheHits *metrics.Counter
}

// SetMetrics wires the network's hot paths to a registry; nil detaches
// them. NAT occupancy is Diagnostic by design: a shard's world holds
// only its own probes, so table population differs by worker count.
func (n *Network) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		n.metrics = nil
		return
	}
	n.metrics = &netMetrics{
		forwarded:    reg.Counter("netsim.client_hops_forwarded", metrics.Stable),
		ttlDrops:     reg.Counter("netsim.client_ttl_drops", metrics.Stable),
		lossDrops:    reg.Counter("netsim.legacy_loss_drops", metrics.Diagnostic),
		burstDrops:   reg.Counter("netsim.fault_burst_loss_drops", metrics.Stable),
		truncated:    reg.Counter("netsim.fault_truncated_responses", metrics.Stable),
		dupCopies:    reg.Counter("netsim.fault_duplicated_copies", metrics.Stable),
		reordered:    reg.Counter("netsim.fault_reordered_packets", metrics.Stable),
		rateDrops:    reg.Counter("netsim.fault_rate_limited_drops", metrics.Stable),
		natOccupancy: reg.Gauge("netsim.nat_table_peak_entries", metrics.Diagnostic),

		routeLookups:   reg.Counter("netsim.route_lookups", metrics.Diagnostic),
		routeCacheHits: reg.Counter("netsim.route_cache_hits", metrics.Diagnostic),
	}
}

// observeNAT records a NAT's current table size after an entry may have
// been added.
func (n *Network) observeNAT(t *NAT) {
	if n.metrics != nil {
		n.metrics.natOccupancy.Observe(int64(t.occupancy()))
	}
}
