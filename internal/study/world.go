package study

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/dnswatch/dnsloc/internal/atlas"
	"github.com/dnswatch/dnsloc/internal/backbone"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/cpe"
	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/dotsim"
	"github.com/dnswatch/dnsloc/internal/geo"
	"github.com/dnswatch/dnsloc/internal/isp"
	"github.com/dnswatch/dnsloc/internal/metrics"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// maxHomesPerSegment bounds one access segment.
const maxHomesPerSegment = 200

// seat is one expanded interception assignment.
type seat struct {
	Loc       Location
	PatternV4 Pattern // nil = all four, unless v4None
	v4None    bool
	PatternV6 Pattern
	Refuse    Refusal
	Persona   string // CPE seats only
	OrgASN    int
}

// World is a built pilot-study universe.
type World struct {
	Spec     Spec
	Net      *netsim.Network
	Backbone *backbone.Backbone
	Platform *atlas.Platform
	ISPs     map[int]*isp.Network

	// Metrics is the world's registry. In a sharded run each shard
	// world gets its own; the engine merges them into Results.Metrics.
	// Nil when Spec.DisableMetrics is set.
	Metrics *metrics.Registry

	transitSeatPatterns map[publicdns.Region]map[netip.Addr]Pattern
	fwdMetrics          *dnsserver.ForwarderMetrics
	studyMetrics        *studyMetrics

	// chaosCache serves pre-packed persona answers; one cache per world
	// (the world is a single-threaded event loop), shared by every CPE
	// forwarder and resolver in it.
	chaosCache *dnsserver.PackedAnswerCache

	// advByRegion caches the per-region evasive-interceptor models when
	// Spec.Adversary > 0 (see adversary.go). Per world: the L4 budget
	// map is mutable measurement state.
	advByRegion map[publicdns.Region]*dnsserver.Adversary
}

// ispResolverPersonas rotate across ISPs for variety in intercepted
// version.bind strings.
var ispResolverPersonas = []dnsserver.ChaosPersona{
	dnsserver.PersonaUnbound,
	dnsserver.PersonaPowerDNS,
	dnsserver.PersonaBindBare,
	dnsserver.PersonaWindows,
	dnsserver.PersonaSilent,
	dnsserver.PersonaNXDomain,
}

// BuildWorld constructs the study world from a spec. It builds a
// single-use template; sharded runs build one template and share it
// across shards (see WorldTemplate).
func BuildWorld(spec Spec) *World {
	return NewWorldTemplate(spec).Build(spec)
}

// overflowPrefixes is the overflow bank layout: bank b puts org i at
// {33+b}.i.0.0/16 / 2a0b:00ii::/48 — parallel to the primary layout,
// so no existing address moves and banks never collide across orgs.
func overflowPrefixes(block, idx int) (v4, v6 netip.Prefix) {
	v4 = netip.PrefixFrom(netip.AddrFrom4([4]byte{33 + byte(block), byte(idx), 0, 0}), 16)
	v6 = netip.PrefixFrom(netip.AddrFrom16([16]byte{0x2a, byte(block), 0x00, byte(idx + 1)}), 48)
	return v4, v6
}

// buildISPs attaches one AS per organization. Overflow banks for orgs
// whose scaled quota outgrows one /16 are routed here, up front, from
// the planned segment counts: bank routing mutates the shared backbone
// routers, which must not happen during the parallel population phase,
// so the Overflow callback itself is pure address arithmetic.
func (w *World) buildISPs(orgs []geo.Org, plans []orgPlan) {
	plannedSegs := make(map[int]int, len(plans))
	for i := range plans {
		plannedSegs[plans[i].org.ASN] = len(plans[i].segSpecs)
	}
	for i, org := range orgs {
		country, _ := geo.CountryByCode(org.Country)
		cfg := isp.Config{
			ASN:             org.ASN,
			Name:            org.Name,
			Country:         country.Code,
			Region:          publicdns.RegionForCountry(org.Country),
			PrefixV4:        netip.PrefixFrom(netip.AddrFrom4([4]byte{33, byte(i), 0, 0}), 16),
			PrefixV6:        netip.PrefixFrom(netip.AddrFrom16([16]byte{0x2a, 0x00, 0x00, byte(i + 1)}), 48),
			ResolverPersona: ispResolverPersonas[i%len(ispResolverPersonas)],
		}
		// banks is how many overflow banks the org's plan will touch:
		// segment idx needs bank idx/256, so the highest planned index
		// bounds the range. A request beyond it means the plan and the
		// build drifted — fail loudly rather than route packets nowhere.
		region, idx, asn := cfg.Region, i, org.ASN
		banks := plannedSegs[asn] / 256
		cfg.Overflow = func(block int) (netip.Prefix, netip.Prefix) {
			if block > 30 { // 64.x.0.0 belongs to the transit resolvers
				panic(fmt.Sprintf("study: as%d outgrew every v4 overflow bank", asn))
			}
			if block > banks {
				panic(fmt.Sprintf("study: as%d requested unplanned overflow bank %d (planned %d)", asn, block, banks))
			}
			return overflowPrefixes(block, idx)
		}
		n := w.Backbone.AttachISP(cfg)
		n.Resolver.ChaosCache = w.chaosCache
		n.Refusing.ChaosCache = w.chaosCache
		n.Resolver.Adversary = w.adversaryFor(region)
		n.Refusing.Adversary = w.adversaryFor(region)
		w.ISPs[org.ASN] = n

		regional := w.Backbone.Regional[region]
		for b := 1; b <= banks && b <= 30; b++ {
			v4, v6 := overflowPrefixes(b, idx)
			regional.AddRoute(v4, n.Border)
			w.Backbone.Core.AddRoute(v4, regional)
			regional.AddRoute(v6, n.Border)
			w.Backbone.Core.AddRoute(v6, regional)
		}
	}
}

// buildTransitInterceptors plants one interceptor per region in the
// transit network, outside every AS. Its DNAT matches only the WAN
// addresses of transit-seat probes, recorded later during population.
func (w *World) buildTransitInterceptors() {
	for i, region := range publicdns.Regions {
		region := region
		w.transitSeatPatterns[region] = make(map[netip.Addr]Pattern)
		resolverAddr := netip.AddrFrom4([4]byte{64, 86, byte(i), 53})
		rtr := netsim.NewRouter(fmt.Sprintf("transit-resolver-%s", region), resolverAddr)
		res := dnsserver.NewRecursiveResolver(resolverAddr, backbone.RootAddr)
		res.Persona = ispResolverPersonas[(i+1)%len(ispResolverPersonas)]
		res.ChaosCache = w.chaosCache
		res.Adversary = w.adversaryFor(region)
		rtr.Bind(53, res)
		regional := w.Backbone.Regional[region]
		rtr.AddDefaultRoute(regional)
		prefix := netip.PrefixFrom(resolverAddr, 24).Masked()
		regional.AddRoute(prefix, rtr)
		w.Backbone.Core.AddRoute(prefix, regional)

		regional.NAT = netsim.NewNAT()
		seatSet := w.transitSeatPatterns[region]
		regional.NAT.AddDNAT(netsim.DNATRule{
			Name: fmt.Sprintf("transit-interceptor-%s", region),
			Match: func(pkt netsim.Packet) bool {
				if pkt.Proto != netsim.UDP || pkt.Dst.Port() != 53 || pkt.IsIPv6() {
					return false
				}
				if pkt.Dst.Addr() == resolverAddr {
					return false
				}
				pat, ok := seatSet[pkt.Src.Addr()]
				if !ok {
					return false
				}
				return pat.matchesV4(pkt.Dst.Addr())
			},
			To: netip.AddrPortFrom(resolverAddr, 53),
		})

		// The encrypted plane: a transit interceptor on the path of its
		// seats applies the spec's policy to DoT/DoH flows too. Matching
		// is per-seat-pattern, like the Do53 DNAT above.
		if e := w.Spec.Encryption; e != nil {
			matchEnc := func(pkt netsim.Packet) bool {
				if pkt.Proto != netsim.TCP || pkt.IsIPv6() {
					return false
				}
				if p := pkt.Dst.Port(); p != netsim.PortDoT && p != netsim.PortDoH {
					return false
				}
				if pkt.Dst.Addr() == resolverAddr {
					return false
				}
				pat, ok := seatSet[pkt.Src.Addr()]
				if !ok {
					return false
				}
				return pat.matchesV4(pkt.Dst.Addr())
			}
			switch e.Policy {
			case dnsserver.EncBlock:
				regional.AddInputFilter(func(pkt netsim.Packet) (bool, string) {
					if matchEnc(pkt) {
						return true, "transit interceptor blocks encrypted DNS"
					}
					return false, ""
				})
			case dnsserver.EncTerminate:
				rtr.BindOn(resolverAddr, netsim.PortDoT, &dnsserver.StreamEndpoint{
					Cert:  dotsim.Certificate{Subject: resolverAddr}, // untrusted
					Inner: res,
				})
				regional.NAT.AddDNAT(netsim.DNATRule{
					Name:  fmt.Sprintf("transit-enc-terminate-%s", region),
					Match: matchEnc,
					To:    netip.AddrPortFrom(resolverAddr, netsim.PortDoT),
				})
			}
		}
	}
}

// matchesV4 reports whether a destination is in the pattern (nil = all
// four operators' v4 addresses).
func (p Pattern) matchesV4(dst netip.Addr) bool {
	ids := p
	if ids == nil {
		ids = Pattern(publicdns.All)
	}
	for _, id := range ids {
		for _, a := range publicdns.Lookup(id).V4 {
			if a == dst {
				return true
			}
		}
	}
	return false
}

// addrsV4 collects the v4 service addresses of a pattern.
func (p Pattern) addrsV4() []netip.Addr {
	var out []netip.Addr
	for _, id := range p {
		out = append(out, publicdns.Lookup(id).V4...)
	}
	return out
}

// addrsV6 collects the v6 service addresses of a pattern.
func (p Pattern) addrsV6() []netip.Addr {
	var out []netip.Addr
	for _, id := range p {
		out = append(out, publicdns.Lookup(id).V6...)
	}
	return out
}

// ids returns the pattern's operator set (nil = all four).
func (p Pattern) ids() []publicdns.ID {
	if p == nil {
		return publicdns.All
	}
	return p
}

// key renders a stable grouping key.
func (p Pattern) key() string {
	if p == nil {
		return "all4"
	}
	ss := make([]string, len(p))
	for i, id := range p {
		ss[i] = string(id)
	}
	sort.Strings(ss)
	return strings.Join(ss, "+")
}

// probeQuota distributes the probe population over organizations using
// country weights (largest remainder), then org weights within country.
func probeQuota(total int, orgs []geo.Org) map[int]int {
	countries := geo.Countries()
	countryProbes := largestRemainder(total, weightsOf(countries))
	out := make(map[int]int)
	for i, c := range countries {
		in := geo.OrgsIn(c.Code)
		if len(in) == 0 {
			continue
		}
		ws := make([]int, len(in))
		for j, o := range in {
			ws[j] = o.Weight
		}
		split := largestRemainder(countryProbes[i], ws)
		for j, o := range in {
			out[o.ASN] = split[j]
		}
	}
	return out
}

// weightsOf extracts country weights.
func weightsOf(cs []geo.Country) []int {
	ws := make([]int, len(cs))
	for i, c := range cs {
		ws[i] = c.Weight
	}
	return ws
}

// largestRemainder apportions total into len(weights) integer parts.
func largestRemainder(total int, weights []int) []int {
	sum := 0
	for _, w := range weights {
		sum += w
	}
	out := make([]int, len(weights))
	if sum == 0 || total == 0 {
		return out
	}
	type frac struct {
		idx int
		rem int
	}
	used := 0
	fracs := make([]frac, len(weights))
	for i, w := range weights {
		out[i] = total * w / sum
		used += out[i]
		fracs[i] = frac{idx: i, rem: total * w % sum}
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].rem > fracs[b].rem })
	for i := 0; i < total-used; i++ {
		out[fracs[i%len(fracs)].idx]++
	}
	return out
}

// dealSeats expands the quota table, attaches v6 patterns and personas,
// and distributes seats over organizations. It depends only on
// shard-invariant spec fields, so the result is computed once per
// template and shared read-only by every shard world.
func dealSeats(spec Spec, orgs []geo.Org, probesPerOrg map[int]int) map[int][]*seat {
	var seats []*seat
	for _, g := range spec.Seats {
		for i := 0; i < g.Count; i++ {
			seats = append(seats, &seat{
				Loc:       g.Loc,
				PatternV4: g.Pattern,
				v4None:    g.V4None,
				PatternV6: g.V6,
				Refuse:    g.Refuse,
			})
		}
	}
	// Attach the overlap v6 patterns to transparent all-four ISP seats.
	v6 := spec.V6Patterns
	for _, s := range seats {
		if len(v6) == 0 {
			break
		}
		if s.Loc == LocISP && s.PatternV4 == nil && !s.v4None && s.Refuse == RefuseNone && s.PatternV6 == nil {
			s.PatternV6 = v6[0]
			v6 = v6[1:]
		}
	}
	// Attach personas to CPE seats.
	personas := spec.CPEPersonas
	for _, s := range seats {
		if s.Loc != LocCPE {
			continue
		}
		if len(personas) == 0 {
			s.Persona = "dnsmasq-2.85"
			continue
		}
		s.Persona = personas[0]
		personas = personas[1:]
	}

	// Per-org quotas from the seat weights, capped by population.
	weights := make([]int, len(orgs))
	for i, o := range orgs {
		wgt := spec.OrgSeatWeights[o.ASN]
		if wgt == 0 {
			wgt = 1
		}
		weights[i] = wgt
	}
	quota := largestRemainder(len(seats), weights)
	quotaByASN := make(map[int]int, len(orgs))
	for i, o := range orgs {
		q := quota[i]
		if maxSeats := probesPerOrg[o.ASN] - 1; q > maxSeats {
			q = maxSeats
		}
		if q < 0 {
			q = 0
		}
		quotaByASN[o.ASN] = q
	}

	out := make(map[int][]*seat)
	take := func(s *seat, asn int) {
		s.OrgASN = asn
		out[asn] = append(out[asn], s)
		quotaByASN[asn]--
	}

	// The XB6/XDNS seats (persona dnsmasq-2.78) go preferentially to the
	// RDK-B deployers §5 names: Comcast, Shaw, Vodafone, Liberty Global —
	// this is what puts Comcast's CPE share at the top of Figure 4.
	rdkbDeployers := []int{7922, 7922, 7922, 7922, 7922, 6327, 3209, 6830}
	rest := seats[:0:0]
	di := 0
	for _, s := range seats {
		if s.Loc == LocCPE && s.Persona == "dnsmasq-2.78" && di < len(rdkbDeployers) &&
			quotaByASN[rdkbDeployers[di]] > 0 {
			take(s, rdkbDeployers[di])
			di++
			continue
		}
		rest = append(rest, s)
	}
	seats = rest

	// Shuffle deterministically so each organization receives a mix of
	// locations and patterns proportional to its quota, then deal
	// round-robin over the orgs with quota left.
	shuffleRng := rand.New(rand.NewSource(spec.Seed + 2))
	shuffleRng.Shuffle(len(seats), func(i, j int) { seats[i], seats[j] = seats[j], seats[i] })
	for len(seats) > 0 {
		assigned := false
		for _, o := range orgs {
			if len(seats) == 0 {
				break
			}
			if quotaByASN[o.ASN] <= 0 {
				continue
			}
			take(seats[0], o.ASN)
			seats = seats[1:]
			assigned = true
		}
		if !assigned {
			break // quotas exhausted; drop any remainder (tiny worlds)
		}
	}
	return out
}

// plannedProbe is one probe's shard-invariant build decisions: its
// seat, which of the org's segments it lives on, and the RNG draws
// (v6, availability) that the serial build made from the Seed+1
// stream. Capturing the draws at plan time is what lets shard worlds
// build their orgs concurrently — no RNG call crosses a goroutine
// because no RNG call happens during population at all.
type plannedProbe struct {
	seat     *seat
	segIndex int // index into the org plan's segSpecs
	hasV6    bool
	avail    atlas.Availability
}

// orgPlan is one organization's complete population plan, computed
// once per template and replayed read-only by every shard world.
type orgPlan struct {
	org     geo.Org
	region  publicdns.Region
	startID int
	// segSpecs lists the org's access segments in creation (index)
	// order; each entry is the seat whose interception config the
	// segment's middlebox compiles from, nil for a clean segment.
	segSpecs []*seat
	probes   []plannedProbe
}

// planOrgs consumes the Seed+1 RNG stream in the exact order the
// serial build did — per probe: the v6 draw always, the availability
// draw only for clean probes — and freezes the result into per-org
// plans. Probe IDs are assigned by prefix sum: org boundaries fall at
// the same IDs as the serial build's single running counter.
func planOrgs(spec Spec, orgs []geo.Org, probesPerOrg map[int]int, seats map[int][]*seat) []orgPlan {
	rng := rand.New(rand.NewSource(spec.Seed + 1))
	plans := make([]orgPlan, 0, len(orgs))
	nextID := firstProbeID
	for _, org := range orgs {
		n := probesPerOrg[org.ASN]
		if n == 0 {
			continue
		}
		p := planOrg(spec, org, n, seats[org.ASN], rng)
		p.startID = nextID
		nextID += n
		plans = append(plans, p)
	}
	return plans
}

// planOrg lays out one org: seat probes first, then clean homes,
// spread over access segments. Middlebox seats are grouped by
// identical interception config; each group gets its own run of
// segments, rolled over like clean segments so a scaled-up group
// never outgrows its /24.
func planOrg(spec Spec, org geo.Org, probes int, seats []*seat, rng *rand.Rand) orgPlan {
	p := orgPlan{org: org, region: publicdns.RegionForCountry(org.Country)}
	draw := func(s *seat) {
		pp := plannedProbe{seat: s, segIndex: len(p.segSpecs) - 1, avail: atlas.Full}
		pp.hasV6 = rng.Float64() < spec.V6Share
		if s != nil && len(s.PatternV6) > 0 {
			pp.hasV6 = true
		}
		if s == nil {
			switch r := rng.Float64(); {
			case r < spec.FullShare:
			case r < spec.FullShare+spec.PartialShare:
				pp.avail = atlas.Partial
			default:
				pp.avail = atlas.Dead
			}
		}
		p.probes = append(p.probes, pp)
	}

	mbGroups := make(map[string][]*seat)
	var plainSeats []*seat // CPE + transit seats live on clean segments
	for _, s := range seats {
		switch s.Loc {
		case LocISP, LocISPHidden:
			k := string(s.Loc) + "|" + s.PatternV4.key() + "|" + s.PatternV6.key() +
				"|" + string(s.Refuse) + "|" + fmt.Sprint(s.v4None)
			mbGroups[k] = append(mbGroups[k], s)
		default:
			plainSeats = append(plainSeats, s)
		}
	}
	keys := make([]string, 0, len(mbGroups))
	for k := range mbGroups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	created := 0
	for _, k := range keys {
		group := mbGroups[k]
		for gi, s := range group {
			if gi%maxHomesPerSegment == 0 {
				p.segSpecs = append(p.segSpecs, group[0])
			}
			draw(s)
			created++
		}
	}

	// Clean segments host everything else. The first is opened even for
	// an all-seat org, mirroring the serial build's segment numbering.
	p.segSpecs = append(p.segSpecs, nil)
	inSeg := 0
	for _, s := range plainSeats {
		if inSeg >= maxHomesPerSegment {
			p.segSpecs = append(p.segSpecs, nil)
			inSeg = 0
		}
		draw(s)
		inSeg++
		created++
	}
	for created < probes {
		if inSeg >= maxHomesPerSegment {
			p.segSpecs = append(p.segSpecs, nil)
			inSeg = 0
		}
		draw(nil)
		inSeg++
		created++
	}
	return p
}

// transitEntry is one transit seat's DNAT match entry, collected
// during parallel population and installed serially afterwards.
type transitEntry struct {
	region publicdns.Region
	addr   netip.Addr
	pat    Pattern
}

// orgPopulation is one org's population output: the platform roster
// entries and transit seat patterns it contributes to shared state,
// applied serially after the parallel phase.
type orgPopulation struct {
	probes  []*atlas.Probe
	transit []transitEntry
}

// populatePlans builds every org's probes, fanning orgs out over
// workers goroutines. Everything an org touches during population is
// org-local (its ISP network, its segments, its CPE devices) or
// collected into the returned orgPopulation; the shared platform
// roster and transit pattern tables are filled in serially below, in
// org order, so the built world is identical to a serial build's.
func (w *World) populatePlans(plans []orgPlan, workers int) {
	results := make([]orgPopulation, len(plans))
	if workers > len(plans) {
		workers = len(plans)
	}
	if workers <= 1 {
		for i := range plans {
			results[i] = w.populateOrgPlan(&plans[i])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		panics := make([]any, workers)
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				// A population panic must surface on the Build goroutine,
				// where the engine's per-shard recover quarantines it.
				defer func() { panics[wk] = recover() }()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(plans) {
						return
					}
					results[i] = w.populateOrgPlan(&plans[i])
				}
			}(wk)
		}
		wg.Wait()
		for _, pv := range panics {
			if pv != nil {
				panic(pv)
			}
		}
	}
	for i := range results {
		for _, pr := range results[i].probes {
			w.Platform.Add(pr)
		}
		for _, te := range results[i].transit {
			w.transitSeatPatterns[te.region][te.addr] = te.pat
		}
	}
}

// populateOrgPlan replays one org's plan: segments are created in
// index order, probes in plan order, exactly as the serial build
// interleaved them.
func (w *World) populateOrgPlan(plan *orgPlan) orgPopulation {
	network := w.ISPs[plan.org.ASN]
	out := orgPopulation{probes: make([]*atlas.Probe, 0, len(plan.probes))}
	nextSeg := 0
	var seg *isp.Segment
	addSeg := func() {
		var mb *isp.MiddleboxSpec
		if s := plan.segSpecs[nextSeg]; s != nil {
			mb = w.middleboxSpec(s)
		}
		seg = network.AddSegment(mb)
		nextSeg++
	}
	id := plan.startID
	for i := range plan.probes {
		pp := &plan.probes[i]
		for nextSeg <= pp.segIndex {
			addSeg()
		}
		w.buildProbe(network, seg, plan, pp, id, &out)
		id++
	}
	// Trailing segments no probe landed on (an all-seat org's empty
	// clean segment) still exist in the serial layout.
	for nextSeg < len(plan.segSpecs) {
		addSeg()
	}
	return out
}

// middleboxSpec compiles a seat's interception into middlebox rules.
func (w *World) middleboxSpec(s *seat) *isp.MiddleboxSpec {
	mb := &isp.MiddleboxSpec{InterceptBogons: s.Loc == LocISP}
	if e := w.Spec.Encryption; e != nil {
		mb.Encrypted = e.Policy
	}
	if !s.v4None {
		switch {
		case s.Refuse == RefuseSubset:
			// Quad9 + OpenDNS blocked, the rest transparently diverted.
			mb.Rules = append(mb.Rules,
				isp.MiddleboxRule{Targets: Pattern{q9, od}.addrsV4(), UseRefusing: true},
				isp.MiddleboxRule{All: true})
		case s.PatternV4 == nil:
			mb.Rules = append(mb.Rules, isp.MiddleboxRule{All: true, UseRefusing: s.Refuse == RefuseAll})
		default:
			mb.Rules = append(mb.Rules, isp.MiddleboxRule{
				Targets:     s.PatternV4.addrsV4(),
				UseRefusing: s.Refuse == RefuseAll,
			})
		}
	}
	if len(s.PatternV6) > 0 {
		mb.Rules = append(mb.Rules, isp.MiddleboxRule{
			Targets: s.PatternV6.addrsV6(),
			V6:      true,
		})
	}
	return mb
}

// buildProbe creates one home (CPE + probe host) on a segment from
// its plan entry. A nil planned seat is a clean probe.
func (w *World) buildProbe(network *isp.Network, seg *isp.Segment, plan *orgPlan, pp *plannedProbe, id int, out *orgPopulation) {
	org, region, s := plan.org, plan.region, pp.seat
	hasV6, avail := pp.hasV6, pp.avail

	// Transport adoption is a pure (seed, ID) hash, so stub and real
	// builds of the same probe agree on it across shards and lanes.
	enc := core.TransportDo53
	if w.Spec.adopts(id) {
		enc = w.Spec.Encryption.Transport
	}

	// Every probe consumes a home allocation, stub or not: AllocHome is
	// pure address arithmetic, and burning it unconditionally keeps WAN
	// addresses identical to the unsharded build. The fault plane hashes
	// client addresses into its drop decisions, so an address that moved
	// with the shard layout would break byte-identical faulted runs.
	home := network.AllocHome(seg, hasV6)

	// A shard-filtered build registers foreign probes as metadata-only
	// stubs (no home devices, no host): the platform roster, the RNG
	// streams, and the address allocators stay aligned with the
	// unsharded build, but none of the expensive home construction
	// happens. Stub records never leave their shard — the owning shard
	// produces the real one.
	if !w.Spec.owns(id) {
		out.probes = append(out.probes, &atlas.Probe{
			ID:           id,
			Country:      org.Country,
			ASN:          org.ASN,
			Org:          org.Name,
			Region:       region,
			HasIPv6:      hasV6,
			WANv4:        home.WANv4,
			Availability: avail,
			EncTransport: enc,
		})
		return
	}
	cfg := cpe.NewPlain(fmt.Sprintf("cpe-%d", id), home.LANPrefix4, home.WANv4, network.ResolverAddrPort())
	cfg.Metrics = w.fwdMetrics
	cfg.ChaosCache = w.chaosCache
	if hasV6 {
		cfg.LANAddr6 = firstHost6(home.LANPrefix6)
		cfg.LANPrefix6 = home.LANPrefix6
		cfg.WANAddr6 = home.WANv6
	}

	truth := atlas.GroundTruth{Location: "none"}
	if s != nil {
		truth.Location = string(s.Loc)
		if !s.v4None {
			truth.PatternV4 = s.PatternV4.ids()
		}
		truth.PatternV6 = s.PatternV6.ids()
		if s.PatternV6 == nil {
			truth.PatternV6 = nil
		}
		switch s.Refuse {
		case RefuseAll:
			truth.RefusedV4 = truth.PatternV4
		case RefuseSubset:
			truth.RefusedV4 = []publicdns.ID{q9, od}
		}
		if s.Loc == LocCPE {
			truth.Persona = s.Persona
			cfg.Persona = dnsserver.ChaosPersona{Version: s.Persona}
			cfg.Adversary = w.adversaryFor(region)
			if e := w.Spec.Encryption; e != nil {
				// Only intercepting CPEs police the encrypted channel;
				// clean homes' CPEs pass it through untouched.
				cfg.Encrypted = e.Policy
			}
			if s.PatternV4 == nil {
				cfg.Intercept.AllV4 = true
			} else {
				cfg.Intercept.TargetsV4 = s.PatternV4.addrsV4()
				// Selective DNAT misses the CPE's own address; the
				// forwarder itself answers there (see homelab).
				cfg.WANPort53Open = true
			}
			if len(s.PatternV6) > 0 && hasV6 {
				cfg.Intercept.TargetsV6 = s.PatternV6.addrsV6()
			}
		} else {
			truth.Persona = string(network.Resolver.Persona.Version)
		}
	}

	device := cpe.Build(cfg)
	network.AttachCPE(seg, device, home)
	host := device.AttachHost(fmt.Sprintf("probe-%d", id), 0)

	if s != nil && s.Loc == LocTransit {
		out.transit = append(out.transit, transitEntry{region: region, addr: home.WANv4, pat: s.PatternV4})
	}

	out.probes = append(out.probes, &atlas.Probe{
		ID:           id,
		Country:      org.Country,
		ASN:          org.ASN,
		Org:          org.Name,
		Region:       region,
		HasIPv6:      hasV6,
		WANv4:        home.WANv4,
		Host:         host,
		Availability: avail,
		Truth:        truth,
		EncTransport: enc,
	})
}

// firstHost6 returns the ::1 of a /64.
func firstHost6(p netip.Prefix) netip.Addr {
	a := p.Addr().As16()
	a[15] |= 1
	return netip.AddrFrom16(a)
}
