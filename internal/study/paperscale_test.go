package study_test

import (
	"testing"

	"github.com/dnswatch/dnsloc/internal/analysis"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/study"
)

// TestPaperScaleReproduction runs the full ~10,000-probe pilot study and
// checks the headline numbers of the paper's Tables 4-5 and Figure 4.
// Per-resolver interception counts and the v6 columns are asserted
// exactly — the world generator is calibrated and deterministic — while
// per-experiment totals get a tolerance because they depend on the
// availability sampling.
func TestPaperScaleReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale study skipped in -short mode")
	}
	w := study.BuildWorld(study.PaperSpec())
	res := study.Run(w)

	t4 := analysis.BuildTable4(res)
	wantV4 := map[publicdns.ID]int{
		publicdns.Cloudflare: 165,
		publicdns.Google:     160,
		publicdns.Quad9:      156,
		publicdns.OpenDNS:    156,
	}
	wantV6 := map[publicdns.ID]int{
		publicdns.Cloudflare: 11,
		publicdns.Google:     15,
		publicdns.Quad9:      11,
		publicdns.OpenDNS:    11,
	}
	for _, row := range t4.Rows {
		if row.InterceptedV4 != wantV4[row.Resolver] {
			t.Errorf("%s intercepted v4 = %d, want %d (paper)", row.Resolver, row.InterceptedV4, wantV4[row.Resolver])
		}
		if row.InterceptedV6 != wantV6[row.Resolver] {
			t.Errorf("%s intercepted v6 = %d, want %d (paper)", row.Resolver, row.InterceptedV6, wantV6[row.Resolver])
		}
		// Paper totals are 9616-9666 (v4) and 3726-3732 (v6); allow the
		// availability model some slack.
		if row.TotalV4 < 9450 || row.TotalV4 > 9800 {
			t.Errorf("%s total v4 = %d, outside plausible band", row.Resolver, row.TotalV4)
		}
		if row.TotalV6 < 3550 || row.TotalV6 > 3950 {
			t.Errorf("%s total v6 = %d, outside plausible band", row.Resolver, row.TotalV6)
		}
	}
	if t4.AllInterceptedV4 != 108 {
		t.Errorf("all-four v4 = %d, want 108 (paper)", t4.AllInterceptedV4)
	}
	if t4.AllInterceptedV6 != 0 {
		t.Errorf("all-four v6 = %d, want 0 (paper)", t4.AllInterceptedV6)
	}
	if t4.DistinctIntercepted != 220 {
		t.Errorf("distinct intercepted = %d, want 220 (paper)", t4.DistinctIntercepted)
	}

	// Table 5: 49 CPE interceptors with the paper's string groups.
	t5 := analysis.BuildTable5(res)
	if t5.CPETotal != 49 {
		t.Errorf("CPE interceptors = %d, want 49 (paper)", t5.CPETotal)
	}
	groups := map[string]int{}
	for _, row := range t5.Rows {
		groups[row.Group] = row.Probes
	}
	wantGroups := map[string]int{
		"dnsmasq-*":         23,
		"dnsmasq-pi-hole-*": 8,
		"unbound*":          6,
		"*-RedHat":          2,
	}
	for g, n := range wantGroups {
		if groups[g] != n {
			t.Errorf("table5 group %q = %d, want %d (paper)", g, groups[g], n)
		}
	}
	singles := 0
	for g, n := range groups {
		if wantGroups[g] == 0 {
			if n != 1 {
				t.Errorf("group %q = %d, want 1 (paper's singletons)", g, n)
			}
			singles++
		}
	}
	if singles != 10 {
		t.Errorf("singleton groups = %d, want 10 (paper)", singles)
	}

	// Figure 3: Comcast has the most intercepted probes.
	f3 := analysis.BuildFigure3(res, 15)
	if len(f3.Rows) != 15 {
		t.Fatalf("figure3 rows = %d", len(f3.Rows))
	}
	if f3.Rows[0].ASN != 7922 {
		t.Errorf("top org = %s (AS%d), want Comcast AS7922 (paper)", f3.Rows[0].Org, f3.Rows[0].ASN)
	}
	// The majority of intercepted probes resolve correctly (transparent).
	totT, totAll := 0, 0
	for _, row := range f3.Rows {
		totT += row.Transparent
		totAll += row.Total
	}
	if totT*2 <= totAll {
		t.Errorf("transparent %d of %d — paper: the majority are transparent", totT, totAll)
	}

	// Figure 4: CPE share 49/220; in-ISP is the most common location.
	f4 := analysis.BuildFigure4(res, 15)
	if f4.CPE != 49 {
		t.Errorf("figure4 CPE = %d, want 49 (paper)", f4.CPE)
	}
	if f4.ISP <= f4.CPE || f4.ISP <= f4.Unknown {
		t.Errorf("figure4 ISP=%d CPE=%d Unknown=%d — ISP should dominate (paper)", f4.ISP, f4.CPE, f4.Unknown)
	}

	// Ground-truth scoring: the technique makes no detection errors in
	// this world, and every mislocalization is a deliberate limitation
	// (interceptors that drop bogons are unlocatable by design).
	acc := analysis.BuildAccuracy(res)
	if acc.FalsePositives != 0 || acc.FalseNegatives != 0 {
		t.Errorf("detection errors: fp=%d fn=%d", acc.FalsePositives, acc.FalseNegatives)
	}
	if acc.Mislocated != 0 {
		t.Errorf("mislocated = %d, want 0", acc.Mislocated)
	}
	if acc.CorrectCPE != 49 || acc.HiddenAsUnknown != 29 || acc.CorrectUnknown != 21 {
		t.Errorf("localization breakdown = %+v", acc)
	}

	// §4.1.1 pattern families: the all-four pattern dominates; among
	// single-resolver patterns Cloudflare and Google lead.
	pat := analysis.BuildPatternBreakdown(res, core.V4)
	if pat.AllFour != 108 {
		t.Errorf("all-four pattern = %d, want 108", pat.AllFour)
	}
	if pat.OnlyOne[publicdns.Cloudflare] <= pat.OnlyOne[publicdns.Quad9] ||
		pat.OnlyOne[publicdns.Google] <= pat.OnlyOne[publicdns.OpenDNS] {
		t.Errorf("single-resolver pattern skew missing: %+v", pat.OnlyOne)
	}
	pat6 := analysis.BuildPatternBreakdown(res, core.V6)
	if pat6.AllFour != 0 {
		t.Errorf("v6 all-four = %d, want 0", pat6.AllFour)
	}

	// §6 TTL extension: hop distances order the interceptor classes.
	ttl := study.RunTTLExtension(res, 25, 10)
	cpeMed := ttl.Median(core.VerdictCPE)
	ispMed := ttl.Median(core.VerdictISP)
	cleanMed := ttl.Median(core.VerdictNotIntercepted)
	if !(cpeMed < ispMed && ispMed < cleanMed) {
		t.Errorf("TTL medians: cpe=%d isp=%d clean=%d, want strictly increasing", cpeMed, ispMed, cleanMed)
	}
	// The ladder partially de-aliases "unknown": in-AS bogon-droppers
	// answer closer than the path's end.
	if min, _ := ttl.Range(core.VerdictUnknown); min >= cleanMed {
		t.Errorf("unknown-class min TTL %d should betray in-AS interceptors (clean median %d)", min, cleanMed)
	}
}
