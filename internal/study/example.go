package study

import (
	"net/netip"

	"github.com/dnswatch/dnsloc/internal/atlas"
	"github.com/dnswatch/dnsloc/internal/backbone"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/cpe"
	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/isp"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// ExampleRow is one probe's line across Tables 2 and 3 of the paper:
// the raw strings the technique works from.
type ExampleRow struct {
	ProbeID int
	// Table 2: responses to IPv4 location queries.
	LocCloudflare string
	LocGoogle     string
	// Table 3: responses to IPv4 version.bind queries ("-" = not
	// queried, because the probe was not intercepted).
	VBCloudflare string
	VBGoogle     string
	VBCPE        string
	// The verdict the technique reaches.
	Verdict core.Verdict
}

// ExampleScenario rebuilds §3.4's worked example: three probes — one
// clean (1053), one intercepted inside its ISP by a middlebox whose
// resolver does not implement version.bind (11992), and one intercepted
// by its own CPE running unbound (21823) — and runs the technique from
// each.
func ExampleScenario() []ExampleRow {
	net := netsim.NewNetwork()
	bb := backbone.Build(net)
	platform := atlas.NewPlatform(net, 1)

	// Probe 11992's ISP: middlebox interception to a resolver that
	// answers location queries with NOTIMP-shaped identities.
	isp1 := bb.AttachISP(isp.Config{
		ASN: 12389, Name: "Rostelecom", Country: "RU",
		Region:          publicdns.RegionAS,
		PrefixV4:        netip.MustParsePrefix("62.183.0.0/16"),
		ResolverPersona: dnsserver.PersonaSilent,
	})
	seg1 := isp1.AddSegment(&isp.MiddleboxSpec{
		Rules:           []isp.MiddleboxRule{{All: true}},
		InterceptBogons: true,
	})

	// Probes 1053 and 21823 share a clean ISP.
	isp2 := bb.AttachISP(isp.Config{
		ASN: 8708, Name: "RCS & RDS", Country: "RO",
		Region:          publicdns.RegionEU,
		PrefixV4:        netip.MustParsePrefix("185.194.0.0/16"),
		ResolverPersona: dnsserver.PersonaSilent,
	})
	seg2 := isp2.AddSegment(nil)

	build := func(n *isp.Network, seg *isp.Segment, id int, mutate func(*cpe.Config)) *atlas.Probe {
		home := n.AllocHome(seg, false)
		cfg := cpe.NewPlain("cpe", home.LANPrefix4, home.WANv4, n.ResolverAddrPort())
		if mutate != nil {
			mutate(&cfg)
		}
		d := cpe.Build(cfg)
		n.AttachCPE(seg, d, home)
		p := &atlas.Probe{
			ID: id, WANv4: home.WANv4,
			Host:         d.AttachHost("probe", 0),
			Availability: atlas.Full,
		}
		platform.Add(p)
		return p
	}

	p1053 := build(isp2, seg2, 1053, nil)
	// 11992's CPE has port 53 open and answers debugging queries with
	// NXDOMAIN — Table 3's mixed NOTIMP/NXDOMAIN row.
	p11992 := build(isp1, seg1, 11992, func(cfg *cpe.Config) {
		cfg.WANPort53Open = true
		cfg.Persona = dnsserver.PersonaNXDomain
	})
	// 21823's CPE intercepts everything with an unbound forwarder whose
	// identity string is the odd hostname of Table 2.
	p21823 := build(isp2, seg2, 21823, func(cfg *cpe.Config) {
		cfg.Persona = dnsserver.ChaosPersona{
			Version:  "unbound 1.9.0",
			Identity: "routing.v2.pw",
		}
		cfg.Intercept = cpe.InterceptSpec{AllV4: true}
	})

	var rows []ExampleRow
	for _, p := range []*atlas.Probe{p1053, p11992, p21823} {
		det := platform.Detector(p)
		det.QueryV6 = false
		report := det.Run()
		rows = append(rows, exampleRow(p.ID, report))
	}
	return rows
}

// exampleRow condenses a report into the table cells.
func exampleRow(id int, r *core.Report) ExampleRow {
	row := ExampleRow{ProbeID: id, Verdict: r.Verdict,
		VBCloudflare: "-", VBGoogle: "-", VBCPE: "-"}
	for _, p := range r.Location {
		if p.Server.Port() != 53 {
			continue
		}
		switch {
		case p.Resolver == publicdns.Cloudflare && p.Server.Addr() == publicdns.Lookup(publicdns.Cloudflare).V4[0]:
			row.LocCloudflare = p.String()
		case p.Resolver == publicdns.Google && p.Server.Addr() == publicdns.Lookup(publicdns.Google).V4[0]:
			row.LocGoogle = p.String()
		}
	}
	if r.CPEVersionBind.Server.IsValid() {
		row.VBCPE = r.CPEVersionBind.String()
	}
	for _, p := range r.ResolverVersionBind {
		switch p.Resolver {
		case publicdns.Cloudflare:
			row.VBCloudflare = p.String()
		case publicdns.Google:
			row.VBGoogle = p.String()
		}
	}
	return row
}
