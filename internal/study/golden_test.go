package study_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/dnswatch/dnsloc/internal/analysis"
	"github.com/dnswatch/dnsloc/internal/study"
)

// -update regenerates the golden corpus in place:
//
//	go test ./internal/study -run TestPilotGolden -update
//
// Regenerate only when an intentional change moves the pilot's output,
// and eyeball the diff — the corpus is the study engine's contract.
var update = flag.Bool("update", false, "rewrite testdata/golden from the current engine output")

// TestPilotGolden pins a small (64-probe) pilot run's entire visible
// surface — rendered tables, the CSV export, and the deterministic
// metric snapshot — against files committed under testdata/golden. Any
// unintentional drift in seat dealing, verdict logic, rendering, or
// metric accounting shows up here as a readable diff rather than as a
// silently different paper table.
func TestPilotGolden(t *testing.T) {
	spec := study.PaperSpec().Scale(0.0064) // ~64 probes
	res := study.RunSharded(spec, study.EngineOptions{Workers: 2})
	if len(res.Errors) != 0 {
		t.Fatalf("shard errors: %v", res.Errors)
	}

	t4 := analysis.BuildTable4(res)
	outputs := map[string][]byte{
		"table4.txt":   []byte(analysis.FormatTable4(t4)),
		"table5.txt":   []byte(analysis.FormatTable5(analysis.BuildTable5(res))),
		"table4.csv":   []byte(analysis.CSVTable4(t4)),
		"metrics.json": res.MetricsSnapshot(false).JSON(),
	}

	checkGolden(t, outputs)
}

// checkGolden compares (or, under -update, rewrites) named outputs
// against testdata/golden, shared by the pilot and adversary corpora.
func checkGolden(t *testing.T, outputs map[string][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "golden")
	if *update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, blob := range outputs {
			if err := os.WriteFile(filepath.Join(dir, name), blob, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote %d golden files in %s", len(outputs), dir)
		return
	}

	for name, got := range outputs {
		want, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("reading golden %s (run with -update to create): %v", name, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s drifted from golden copy (rerun with -update if intentional):\n--- want ---\n%s--- got ---\n%s",
				name, want, got)
		}
	}
}

// TestAdversaryGolden pins the adversary sweep's visible surface at
// every ladder rung: per-level paper tables and metric snapshots, plus
// the accuracy-vs-level matrix the sweep exists to produce. Each level
// runs the same 64-probe pilot world with the certificate oracle and
// one drift re-probe round enabled, so the committed files document
// exactly how each evasion level reshapes the tables and how the fused
// scorer recovers the CHAOS losses without false positives.
func TestAdversaryGolden(t *testing.T) {
	outputs := map[string][]byte{}
	var rows []analysis.AdversaryRow
	for lvl := 0; lvl <= 4; lvl++ {
		spec := study.PaperSpec().Scale(0.0064) // ~64 probes
		spec.Adversary = lvl
		spec.CertCheck = true
		spec.DriftRounds = 1
		res := study.RunSharded(spec, study.EngineOptions{Workers: 2})
		if len(res.Errors) != 0 {
			t.Fatalf("L%d shard errors: %v", lvl, res.Errors)
		}
		t4 := analysis.BuildTable4(res)
		outputs[fmt.Sprintf("adv-l%d.table4.txt", lvl)] = []byte(analysis.FormatTable4(t4))
		outputs[fmt.Sprintf("adv-l%d.table5.txt", lvl)] = []byte(analysis.FormatTable5(analysis.BuildTable5(res)))
		outputs[fmt.Sprintf("adv-l%d.metrics.json", lvl)] = res.MetricsSnapshot(false).JSON()
		rows = append(rows, analysis.ScoreAdversary(lvl, res))
	}
	outputs["adversary_matrix.txt"] = []byte(analysis.FormatAdversary(rows))

	for _, r := range rows {
		if r.ChaosFP != 0 || r.FusedFP != 0 {
			t.Errorf("L%d has false positives (chaos %d, fused %d); no scorer may buy accuracy with FPs",
				r.Level, r.ChaosFP, r.FusedFP)
		}
	}

	checkGolden(t, outputs)
}
