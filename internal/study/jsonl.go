package study

import (
	"strconv"
	"unicode/utf8"
)

// Hand-rolled JSONL encoding for ProbeExport. The streaming pipeline
// serializes one export per completed probe; encoding/json's reflective
// encoder was a measurable slice of that per-record cost. This encoder
// produces output byte-identical to json.Encoder (field order, omitempty
// behaviour, HTML-escaping of < > &, U+FFFD escape sequences for
// invalid UTF-8, and the trailing newline), which TestAppendExportJSONMatchesEncodingJSON
// enforces against randomized exports — any drift between ProbeExport's
// tags and this encoder fails that test.

// jsonSafeSet marks the ASCII bytes json.Encoder emits verbatim inside
// a string: printable, minus the JSON metacharacters and the
// HTML-escaped trio.
var jsonSafeSet = func() (safe [utf8.RuneSelf]bool) {
	// 0x7F (DEL) is deliberately in range: encoding/json does not escape it.
	for b := 0x20; b < utf8.RuneSelf; b++ {
		safe[b] = true
	}
	for _, b := range []byte{'"', '\\', '<', '>', '&'} {
		safe[b] = false
	}
	return
}()

const jsonHex = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, replicating
// encoding/json's default (HTML-escaping) encoder byte for byte.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafeSet[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			default:
				// Control bytes and the HTML trio: \u00XX-style escapes
				// (<, >, & for < > &).
				dst = append(dst, '\\', 'u', '0', '0', jsonHex[b>>4], jsonHex[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', jsonHex[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONStrings appends a []string as a JSON array.
func appendJSONStrings(dst []byte, ss []string) []byte {
	dst = append(dst, '[')
	for i, s := range ss {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, s)
	}
	return append(dst, ']')
}

func appendJSONBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// appendExportJSONLine appends one export as a JSONL line (object plus
// newline), matching json.Encoder.Encode(e) exactly.
func appendExportJSONLine(dst []byte, e *ProbeExport) []byte {
	dst = append(dst, `{"probe_id":`...)
	dst = strconv.AppendInt(dst, int64(e.ProbeID), 10)
	dst = append(dst, `,"country":`...)
	dst = appendJSONString(dst, e.Country)
	dst = append(dst, `,"asn":`...)
	dst = strconv.AppendInt(dst, int64(e.ASN), 10)
	dst = append(dst, `,"org":`...)
	dst = appendJSONString(dst, e.Org)
	dst = append(dst, `,"has_ipv6":`...)
	dst = appendJSONBool(dst, e.HasIPv6)
	dst = append(dst, `,"responded":`...)
	dst = appendJSONBool(dst, e.Responded)
	if e.Verdict != "" {
		dst = append(dst, `,"verdict":`...)
		dst = appendJSONString(dst, e.Verdict)
	}
	if e.Transparency != "" {
		dst = append(dst, `,"transparency":`...)
		dst = appendJSONString(dst, e.Transparency)
	}
	if len(e.InterceptedV4) > 0 {
		dst = append(dst, `,"intercepted_v4":`...)
		dst = appendJSONStrings(dst, e.InterceptedV4)
	}
	if len(e.InterceptedV6) > 0 {
		dst = append(dst, `,"intercepted_v6":`...)
		dst = appendJSONStrings(dst, e.InterceptedV6)
	}
	if e.CPEFingerprint != "" {
		dst = append(dst, `,"cpe_fingerprint":`...)
		dst = appendJSONString(dst, e.CPEFingerprint)
	}
	if e.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, e.Error)
	}
	if len(e.InconclusiveSteps) > 0 {
		dst = append(dst, `,"inconclusive_steps":`...)
		dst = appendJSONStrings(dst, e.InconclusiveSteps)
	}
	dst = append(dst, `,"truth_location":`...)
	dst = appendJSONString(dst, e.TruthLocation)
	if e.TruthPersona != "" {
		dst = append(dst, `,"truth_persona":`...)
		dst = appendJSONString(dst, e.TruthPersona)
	}
	return append(dst, '}', '\n')
}
