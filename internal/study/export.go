package study

import (
	"encoding/json"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// ProbeExport is the machine-readable per-probe record: what a real
// measurement campaign would publish alongside its paper.
type ProbeExport struct {
	ProbeID   int    `json:"probe_id"`
	Country   string `json:"country"`
	ASN       int    `json:"asn"`
	Org       string `json:"org"`
	HasIPv6   bool   `json:"has_ipv6"`
	Responded bool   `json:"responded"`

	// Detection results (absent when the probe never responded).
	Verdict        string   `json:"verdict,omitempty"`
	Transparency   string   `json:"transparency,omitempty"`
	InterceptedV4  []string `json:"intercepted_v4,omitempty"`
	InterceptedV6  []string `json:"intercepted_v6,omitempty"`
	CPEFingerprint string   `json:"cpe_fingerprint,omitempty"`

	// Error is the quarantine record: the probe's measurement panicked
	// and was contained (detection fields are absent).
	Error string `json:"error,omitempty"`
	// InconclusiveSteps lists detector steps degraded to inconclusive by
	// fault-shaped outcomes (see core.StepFault).
	InconclusiveSteps []string `json:"inconclusive_steps,omitempty"`

	// Ground truth, for reproducibility studies on the simulator.
	TruthLocation string `json:"truth_location"`
	TruthPersona  string `json:"truth_persona,omitempty"`
}

// Export flattens the results for JSON serialization.
func (r *Results) Export() []ProbeExport {
	out := make([]ProbeExport, 0, len(r.Records))
	for _, rec := range r.Records {
		e := ProbeExport{
			ProbeID:       rec.Probe.ID,
			Country:       rec.Probe.Country,
			ASN:           rec.Probe.ASN,
			Org:           rec.Probe.Org,
			HasIPv6:       rec.Probe.HasIPv6,
			Responded:     rec.Report != nil,
			TruthLocation: rec.Probe.Truth.Location,
			TruthPersona:  rec.Probe.Truth.Persona,
		}
		if rec.Report != nil {
			e.Verdict = string(rec.Report.Verdict)
			e.Transparency = string(rec.Report.Transparency)
			e.InterceptedV4 = idsToStrings(rec.Report.InterceptedV4)
			e.InterceptedV6 = idsToStrings(rec.Report.InterceptedV6)
			e.CPEFingerprint = rec.Report.CPEString
			e.InconclusiveSteps = rec.Report.InconclusiveSteps()
		}
		e.Error = rec.Err
		out = append(out, e)
	}
	return out
}

// MarshalJSON renders the whole run: spec echo plus per-probe records.
func (r *Results) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Seed        int64         `json:"seed"`
		TotalProbes int           `json:"total_probes"`
		Seats       int           `json:"interception_seats"`
		Probes      []ProbeExport `json:"probes"`
	}{
		Seed:        r.World.Spec.Seed,
		TotalProbes: r.World.Spec.TotalProbes,
		Seats:       r.World.Spec.TotalSeats(),
		Probes:      r.Export(),
	})
}

// VerdictOf is a test helper mapping core verdicts to export strings.
func VerdictOf(v core.Verdict) string { return string(v) }

// idsToStrings converts operator IDs.
func idsToStrings(ids []publicdns.ID) []string {
	if len(ids) == 0 {
		return nil
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}
