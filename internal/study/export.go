package study

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
	"strings"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// ProbeExport is the machine-readable per-probe record: what a real
// measurement campaign would publish alongside its paper.
type ProbeExport struct {
	ProbeID   int    `json:"probe_id"`
	Country   string `json:"country"`
	ASN       int    `json:"asn"`
	Org       string `json:"org"`
	HasIPv6   bool   `json:"has_ipv6"`
	Responded bool   `json:"responded"`

	// Detection results (absent when the probe never responded).
	Verdict        string   `json:"verdict,omitempty"`
	Transparency   string   `json:"transparency,omitempty"`
	InterceptedV4  []string `json:"intercepted_v4,omitempty"`
	InterceptedV6  []string `json:"intercepted_v6,omitempty"`
	CPEFingerprint string   `json:"cpe_fingerprint,omitempty"`

	// Error is the quarantine record: the probe's measurement panicked
	// and was contained (detection fields are absent).
	Error string `json:"error,omitempty"`
	// InconclusiveSteps lists detector steps degraded to inconclusive by
	// fault-shaped outcomes (see core.StepFault).
	InconclusiveSteps []string `json:"inconclusive_steps,omitempty"`

	// Ground truth, for reproducibility studies on the simulator.
	TruthLocation string `json:"truth_location"`
	TruthPersona  string `json:"truth_persona,omitempty"`
}

// ExportRecord flattens one record — the unit both the bulk Export and
// the streaming sinks serialize.
func ExportRecord(rec *ProbeRecord) ProbeExport {
	var e ProbeExport
	ExportRecordInto(rec, &e)
	return e
}

// ExportRecordInto flattens one record into an existing export,
// reusing its slice capacity — the streaming pipeline's per-record
// path, which serializes one probe at a time and would otherwise pay
// two slice allocations per intercepted probe. Every field is
// overwritten; the slices alias the export's previous backing arrays,
// so the caller must serialize the export before the next call.
func ExportRecordInto(rec *ProbeRecord, e *ProbeExport) {
	v4, v6 := e.InterceptedV4[:0], e.InterceptedV6[:0]
	*e = ProbeExport{
		ProbeID:       rec.Probe.ID,
		Country:       rec.Probe.Country,
		ASN:           rec.Probe.ASN,
		Org:           rec.Probe.Org,
		HasIPv6:       rec.Probe.HasIPv6,
		Responded:     rec.Report != nil,
		TruthLocation: rec.Probe.Truth.Location,
		TruthPersona:  rec.Probe.Truth.Persona,
	}
	if rec.Report != nil {
		e.Verdict = string(rec.Report.Verdict)
		e.Transparency = string(rec.Report.Transparency)
		e.InterceptedV4 = appendIDStrings(v4, rec.Report.InterceptedV4)
		e.InterceptedV6 = appendIDStrings(v6, rec.Report.InterceptedV6)
		e.CPEFingerprint = rec.Report.CPEString
		e.InconclusiveSteps = rec.Report.InconclusiveSteps()
	}
	e.Error = rec.Err
}

// Export flattens the results for JSON serialization.
func (r *Results) Export() []ProbeExport {
	out := make([]ProbeExport, 0, len(r.Records))
	for _, rec := range r.Records {
		out = append(out, ExportRecord(rec))
	}
	return out
}

// MarshalJSON renders the whole run: spec echo plus per-probe records.
func (r *Results) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Seed        int64         `json:"seed"`
		TotalProbes int           `json:"total_probes"`
		Seats       int           `json:"interception_seats"`
		Probes      []ProbeExport `json:"probes"`
	}{
		Seed:        r.World.Spec.Seed,
		TotalProbes: r.World.Spec.TotalProbes,
		Seats:       r.World.Spec.TotalSeats(),
		Probes:      r.Export(),
	})
}

// VerdictOf is a test helper mapping core verdicts to export strings.
func VerdictOf(v core.Verdict) string { return string(v) }

// RecordSink receives each record's export the moment its measurement
// completes — the streaming pipeline's alternative to retaining raw
// records in RAM. A sink is owned by exactly one shard, so Append is
// never called concurrently on the same sink; shard k's appends arrive
// in that shard's deterministic probe order.
type RecordSink interface {
	Append(ProbeExport) error
	Close() error
}

// sinkBufSize is the write-buffer size shared by the file sinks. Rows
// are ~200 bytes, so a quarter-megabyte buffer turns per-record writes
// into one syscall per ~1300 records; the streaming engine flushes
// before every checkpoint, so durability is bounded by the checkpoint
// interval, not the buffer.
const sinkBufSize = 1 << 18

// SinkFlusher is implemented by sinks whose Append buffers rows in
// memory. The streaming engine flushes before writing each checkpoint
// so the checkpoint cursor never runs ahead of the sink's durable
// bytes (the resume protocol truncates surplus rows, but can never
// reconstruct missing ones).
type SinkFlusher interface {
	Flush() error
}

// JSONLSink streams exports as one JSON object per line. Opened in
// append mode by a resumed run, a shard's file ends up byte-identical
// to an uninterrupted run's.
type JSONLSink struct {
	w   *bufio.Writer
	c   io.Closer
	buf []byte // reused per-line encode buffer
}

// NewJSONLSink wraps a writer; Close flushes, and closes w if it is an
// io.Closer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriterSize(w, sinkBufSize)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Append implements RecordSink via the hand-rolled encoder in
// jsonl.go, which is byte-identical to json.Encoder including the
// newline framing.
func (s *JSONLSink) Append(e ProbeExport) error {
	s.buf = appendExportJSONLine(s.buf[:0], &e)
	_, err := s.w.Write(s.buf)
	return err
}

// Flush implements SinkFlusher.
func (s *JSONLSink) Flush() error { return s.w.Flush() }

// Close flushes and releases the underlying writer.
func (s *JSONLSink) Close() error {
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// csvHeader is the CSVSink column order.
var csvHeader = []string{
	"probe_id", "country", "asn", "org", "has_ipv6", "responded",
	"verdict", "transparency", "intercepted_v4", "intercepted_v6",
	"cpe_fingerprint", "error", "truth_location", "truth_persona",
}

// CSVSink streams exports as CSV rows. Multi-valued fields are joined
// with "+" so the row count stays one per probe.
type CSVSink struct {
	w   *csv.Writer
	bw  *bufio.Writer
	c   io.Closer
	row []string // reused per-append row buffer
}

// NewCSVSink wraps a writer. With header true the first Append is
// preceded by the column header row (a resumed shard appends to an
// existing file and passes false).
func NewCSVSink(w io.Writer, header bool) (*CSVSink, error) {
	bw := bufio.NewWriterSize(w, sinkBufSize)
	s := &CSVSink{w: csv.NewWriter(bw), bw: bw}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	if header {
		if err := s.w.Write(csvHeader); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Append implements RecordSink.
func (s *CSVSink) Append(e ProbeExport) error {
	s.row = append(s.row[:0],
		strconv.Itoa(e.ProbeID), e.Country, strconv.Itoa(e.ASN), e.Org,
		strconv.FormatBool(e.HasIPv6), strconv.FormatBool(e.Responded),
		e.Verdict, e.Transparency,
		strings.Join(e.InterceptedV4, "+"), strings.Join(e.InterceptedV6, "+"),
		e.CPEFingerprint, e.Error, e.TruthLocation, e.TruthPersona,
	)
	return s.w.Write(s.row)
}

// Flush implements SinkFlusher: both the csv.Writer's internal buffer
// and the byte buffer beneath it.
func (s *CSVSink) Flush() error {
	s.w.Flush()
	if err := s.w.Error(); err != nil {
		return err
	}
	return s.bw.Flush()
}

// Close flushes and releases the underlying writer.
func (s *CSVSink) Close() error {
	err := s.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// idsToStrings converts operator IDs.
func idsToStrings(ids []publicdns.ID) []string {
	if len(ids) == 0 {
		return nil
	}
	return appendIDStrings(nil, ids)
}

// appendIDStrings appends operator IDs to dst, returning nil for an
// empty set so omitempty JSON stays identical to idsToStrings' output.
func appendIDStrings(dst []string, ids []publicdns.ID) []string {
	if len(ids) == 0 {
		return nil
	}
	for _, id := range ids {
		dst = append(dst, string(id))
	}
	return dst
}
