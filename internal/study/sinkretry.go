package study

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"syscall"
	"time"
)

// RetrySink wraps a file-backed RecordSink with bounded-backoff
// self-healing. The failure model is a flaky or full disk under the
// sink file:
//
//   - Transient write errors (EIO, torn writes) are healed in place:
//     close the poisoned sink (a bufio-backed sink holds a sticky error
//     and can never be written again), repair the file's torn tail,
//     count the complete rows on disk, reopen in append mode, and
//     replay exactly the rows the disk is missing from an in-memory
//     pending log. Each heal attempt is counted in SinkStats.Retries
//     (surfaced as study.sink_retries).
//   - ENOSPC is permanent — retrying a full disk cannot help — so the
//     sink degrades: it is dropped, every later Append succeeds as a
//     no-op, and SinkStats.Degraded is set (study.sinks_degraded). The
//     shard keeps folding its accumulator, so the run still finishes
//     with correct tables; only this shard's export file is incomplete.
//   - A heal that cannot restore the durable prefix (the file holds
//     fewer rows than were flushed) propagates the error, escalating to
//     the shard supervisor.
//
// The pending log holds deep copies of every export since the last
// successful flush — ProbeExport's slice fields alias the engine's
// reused encode buffer, so shallow copies would be overwritten by the
// next record. The log is bounded: Append self-flushes every
// retrySinkAutoFlush rows even when the engine (running without
// checkpoints) never calls Flush.
type RetrySink struct {
	path   string
	header bool
	open   func(writeHeader bool) (RecordSink, error)
	policy SinkRetryPolicy

	inner   RecordSink
	durable int           // rows known flushed to the file
	pending []ProbeExport // rows appended since the last successful flush
	stats   SinkStats
}

// SinkRetryPolicy bounds a RetrySink's heal loop.
type SinkRetryPolicy struct {
	// MaxRetries is the heal attempts per failure; <= 0 means 3.
	MaxRetries int
	// Backoff is the pause before the first heal attempt, doubling per
	// attempt; <= 0 means 1ms.
	Backoff time.Duration
}

// SinkStats is a sink's self-healing activity.
type SinkStats struct {
	// Retries counts heal attempts (close → repair → reopen → replay).
	Retries int64
	// Degraded reports the sink was permanently dropped (ENOSPC).
	Degraded bool
}

// SinkStatser is implemented by self-healing sinks. The streaming
// engine harvests it after Close into the study.sink_retries and
// study.sinks_degraded counters.
type SinkStatser interface {
	SinkStats() SinkStats
}

// retrySinkAutoFlush caps the pending replay log: Append flushes after
// this many unflushed rows so a checkpoint-less run stays bounded.
const retrySinkAutoFlush = 1024

// NewRetrySink builds a self-healing sink over the file at path. header
// is true for CSV (one leading header line). durable is the complete
// data rows the file already holds — the checkpoint cursor a resumed
// shard passes as resumedAt, after the caller truncated the file to it.
// open (re)opens the file in append mode and wraps it in a RecordSink;
// writeHeader is true when the header row must be written because the
// file is empty. open is called once here and again on every heal.
func NewRetrySink(path string, header bool, durable int, policy SinkRetryPolicy, open func(writeHeader bool) (RecordSink, error)) (*RetrySink, error) {
	s := &RetrySink{path: path, header: header, durable: durable, policy: policy, open: open}
	needHeader := false
	if header {
		st, err := os.Stat(path)
		needHeader = err != nil || st.Size() == 0
	}
	inner, err := open(needHeader)
	if err != nil {
		return nil, err
	}
	s.inner = inner
	return s, nil
}

// SinkStats implements SinkStatser.
func (s *RetrySink) SinkStats() SinkStats { return s.stats }

// Append implements RecordSink. It never returns a transient error:
// failures are healed (replaying from the pending log) or degrade the
// sink; only an unhealable file escapes to the caller.
func (s *RetrySink) Append(e ProbeExport) error {
	if s.stats.Degraded {
		return nil
	}
	s.pending = append(s.pending, cloneExport(e))
	if err := s.inner.Append(e); err != nil {
		return s.heal(err)
	}
	if len(s.pending) >= retrySinkAutoFlush {
		return s.Flush()
	}
	return nil
}

// Flush implements SinkFlusher: on success the pending rows are durable
// and the replay log resets. The streaming engine calls this before
// every checkpoint, which is what keeps the checkpoint cursor at or
// behind the file's complete rows.
func (s *RetrySink) Flush() error {
	if s.stats.Degraded {
		return nil
	}
	if f, ok := s.inner.(SinkFlusher); ok {
		if err := f.Flush(); err != nil {
			// heal replays the pending log and flushes it itself.
			return s.heal(err)
		}
	}
	s.durable += len(s.pending)
	s.pending = s.pending[:0]
	return nil
}

// Close flushes (healing if needed) and releases the inner sink.
func (s *RetrySink) Close() error {
	if s.stats.Degraded {
		return nil
	}
	if err := s.Flush(); err != nil {
		if s.inner != nil {
			s.inner.Close() //nolint:errcheck // already failing
			s.inner = nil
		}
		return err
	}
	if s.inner == nil {
		return nil
	}
	err := s.inner.Close()
	s.inner = nil
	return err
}

// heal recovers from a sink I/O failure. ENOSPC degrades immediately;
// anything else retries up to policy.MaxRetries with doubling backoff:
// repair the file tail, reopen, replay the rows the disk is missing,
// flush. Returns nil once healed (pending rows are then durable) or the
// last error when the file cannot be made whole.
func (s *RetrySink) heal(cause error) error {
	if errors.Is(cause, syscall.ENOSPC) {
		s.degrade()
		return nil
	}
	if s.inner != nil {
		s.inner.Close() //nolint:errcheck // poisoned; close is best-effort
		s.inner = nil
	}
	maxRetries := s.policy.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 3
	}
	backoff := s.policy.Backoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	for attempt := 0; attempt < maxRetries; attempt++ {
		s.stats.Retries++
		time.Sleep(backoff)
		backoff *= 2
		rows, hasHeader, err := RepairSinkTail(s.path, s.header)
		if err != nil {
			cause = err
			continue
		}
		if rows < s.durable {
			return fmt.Errorf("study: sink %s holds %d rows but %d were durable — cannot heal: %w",
				s.path, rows, s.durable, cause)
		}
		surplus := rows - s.durable
		if surplus > len(s.pending) {
			return fmt.Errorf("study: sink %s holds %d rows beyond the %d this run wrote — foreign writer: %w",
				s.path, surplus, len(s.pending), cause)
		}
		inner, err := s.open(s.header && !hasHeader)
		if err != nil {
			cause = err
			continue
		}
		if err := replayPending(inner, s.pending[surplus:]); err != nil {
			inner.Close() //nolint:errcheck
			if errors.Is(err, syscall.ENOSPC) {
				s.degrade()
				return nil
			}
			cause = err
			continue
		}
		s.inner = inner
		s.durable += len(s.pending)
		s.pending = s.pending[:0]
		return nil
	}
	return cause
}

// replayPending appends rows and flushes them.
func replayPending(sink RecordSink, rows []ProbeExport) error {
	for i := range rows {
		if err := sink.Append(rows[i]); err != nil {
			return err
		}
	}
	if f, ok := sink.(SinkFlusher); ok {
		return f.Flush()
	}
	return nil
}

// degrade drops the sink permanently, leaving the file's tail repaired
// when possible.
func (s *RetrySink) degrade() {
	if s.inner != nil {
		s.inner.Close() //nolint:errcheck
		s.inner = nil
	}
	RepairSinkTail(s.path, s.header) //nolint:errcheck // best-effort cleanup
	s.stats.Degraded = true
	s.pending = nil
}

// cloneExport deep-copies the slice fields that alias the engine's
// reused export buffer; string fields are immutable and safe to share.
func cloneExport(e ProbeExport) ProbeExport {
	e.InterceptedV4 = append([]string(nil), e.InterceptedV4...)
	e.InterceptedV6 = append([]string(nil), e.InterceptedV6...)
	e.InconclusiveSteps = append([]string(nil), e.InconclusiveSteps...)
	return e
}

// RepairSinkTail truncates a line-oriented sink file back to its last
// complete line — discarding the partial record a torn write or kill
// left — and reports the complete data rows on disk. header reserves
// the first line as a CSV header: hasHeader is true when that line
// survived, and rows excludes it. Missing files are (0, false, nil).
func RepairSinkTail(path string, header bool) (rows int, hasHeader bool, err error) {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	end := bytes.LastIndexByte(blob, '\n')
	if end < 0 {
		// The whole file is one torn fragment.
		if len(blob) > 0 {
			if err := os.Truncate(path, 0); err != nil {
				return 0, false, err
			}
		}
		return 0, false, nil
	}
	if end+1 != len(blob) {
		if err := os.Truncate(path, int64(end+1)); err != nil {
			return 0, false, err
		}
		blob = blob[:end+1]
	}
	lines := bytes.Count(blob, []byte{'\n'})
	if header && lines > 0 {
		return lines - 1, true, nil
	}
	return lines, false, nil
}
