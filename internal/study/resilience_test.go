package study_test

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"github.com/dnswatch/dnsloc/internal/analysis"
	"github.com/dnswatch/dnsloc/internal/atlas"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/study"
)

// faultedSpec is a small study measured through a badly impaired path.
func faultedSpec() study.Spec {
	spec := study.PaperSpec().Scale(0.02)
	fp := netsim.PresetFault(0.6, spec.Seed+9000)
	spec.Fault = &fp
	spec.Retry = &core.RetryPolicy{MaxAttempts: 3}
	return spec
}

// exportJSON marshals the per-probe export records one per line.
func exportJSON(t *testing.T, res *study.Results) []string {
	t.Helper()
	var out []string
	for _, e := range res.Export() {
		blob, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(blob))
	}
	return out
}

// TestFaultedShardedDeterministic is the tentpole contract under
// stress: with a nonzero fault profile installed, the run completes
// with zero aborted probes and its exported records are byte-identical
// at any worker count.
func TestFaultedShardedDeterministic(t *testing.T) {
	spec := faultedSpec()
	serial := study.RunSharded(spec, study.EngineOptions{Workers: 1})
	want := exportJSON(t, serial)

	if n := len(serial.Quarantined()); n != 0 {
		t.Fatalf("%d probes quarantined under faults, want 0", n)
	}
	if len(serial.Errors) != 0 {
		t.Fatalf("shard errors: %v", serial.Errors)
	}

	degraded := 0
	for _, rec := range serial.Records {
		if rec.Report != nil && len(rec.Report.Faults) > 0 {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("no probe recorded fault evidence; the profile did nothing")
	}

	// Faults must only ever degrade detection, never fabricate it.
	if a := analysis.BuildAccuracy(serial); a.FalsePositives != 0 {
		t.Errorf("false positives under faults = %d, want 0", a.FalsePositives)
	}

	for _, workers := range []int{3, 4} {
		res := study.RunSharded(spec, study.EngineOptions{Workers: workers})
		got := exportJSON(t, res)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d records, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: record %d differs:\n%s\n%s", workers, i, got[i], want[i])
			}
		}
	}
}

// panicClient blows up on first use.
type panicClient struct{}

func (panicClient) Exchange(netip.AddrPort, *dnswire.Message) ([]*dnswire.Message, error) {
	panic("injected transport failure")
}

// TestQuarantineIsolatesPanickingProbe injects a client that panics for
// exactly one probe and asserts the run completes, the probe is
// quarantined with its error recorded, and every other probe's exported
// record is byte-identical to the clean baseline.
func TestQuarantineIsolatesPanickingProbe(t *testing.T) {
	spec := study.PaperSpec().Scale(0.02)
	const workers = 3
	baseline := study.RunSharded(spec, study.EngineOptions{Workers: workers})
	want := exportJSON(t, baseline)

	panicID := -1
	for _, rec := range baseline.Records {
		if rec.Report != nil {
			panicID = rec.Probe.ID
			break
		}
	}
	if panicID < 0 {
		t.Fatal("baseline has no responding probe")
	}

	spec.ClientWrapper = func(c core.Client, p *atlas.Probe) core.Client {
		if p.ID == panicID {
			return panicClient{}
		}
		return c
	}
	res := study.RunSharded(spec, study.EngineOptions{Workers: workers})
	if len(res.Records) != len(baseline.Records) {
		t.Fatalf("records = %d, want %d", len(res.Records), len(baseline.Records))
	}

	q := res.Quarantined()
	if len(q) != 1 || q[0].Probe.ID != panicID {
		t.Fatalf("quarantined = %v, want exactly probe %d", q, panicID)
	}
	if q[0].Report != nil || q[0].Err == "" {
		t.Errorf("quarantined record: report=%v err=%q", q[0].Report, q[0].Err)
	}

	got := exportJSON(t, res)
	for i, rec := range res.Records {
		if rec.Probe.ID == panicID {
			continue
		}
		if got[i] != want[i] {
			t.Errorf("probe %d perturbed by the quarantine:\n%s\n%s", rec.Probe.ID, got[i], want[i])
		}
	}
}

// TestResilienceSweep runs the -faults experiment end to end at small
// scale: accuracy reported across 4 fault levels, timeouts never
// classified as interception (zero false positives at every level).
func TestResilienceSweep(t *testing.T) {
	spec := study.PaperSpec().Scale(0.02)
	levels := []float64{0, 0.33, 0.66, 1.0}
	rows := analysis.RunResilienceSweep(spec, study.EngineOptions{Workers: 4}, levels,
		&core.RetryPolicy{MaxAttempts: 3})
	if len(rows) != len(levels) {
		t.Fatalf("rows = %d, want %d", len(rows), len(levels))
	}
	for i, row := range rows {
		if row.Level != levels[i] {
			t.Errorf("row %d level = %v, want %v", i, row.Level, levels[i])
		}
		if row.Responded == 0 {
			t.Errorf("level %v: nobody responded", row.Level)
		}
		if row.FP != 0 {
			t.Errorf("level %v: %d false positives — fault-shaped outcomes read as interception", row.Level, row.FP)
		}
		if row.Quarantined != 0 {
			t.Errorf("level %v: %d probes quarantined", row.Level, row.Quarantined)
		}
	}
	if rows[0].Accuracy() != 1.0 {
		t.Errorf("clean baseline accuracy = %.3f, want 1.0", rows[0].Accuracy())
	}
	if last := rows[len(rows)-1]; last.Timeouts+last.Garbage == 0 {
		t.Error("top fault level recorded no fault-shaped outcomes")
	}
	table := analysis.FormatResilience(rows)
	for _, lvl := range levels {
		if want := fmt.Sprintf("%.2f", lvl); !strings.Contains(table, want) {
			t.Errorf("rendered table missing level %s:\n%s", want, table)
		}
	}
}
