package study_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/dnswatch/dnsloc/internal/analysis"
	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/study"
)

// TestHeavyInterceptionSpec runs a world with far more interception than
// the paper observed (every seat count x5 on a small fleet) to check
// the pipeline does not depend on interception being rare: analysis
// identities hold and the detector still makes no detection errors.
func TestHeavyInterceptionSpec(t *testing.T) {
	spec := study.PaperSpec().Scale(0.15)
	for i := range spec.Seats {
		spec.Seats[i].Count *= 2
	}
	// Personas must cover the doubled CPE seat count.
	spec.CPEPersonas = append(spec.CPEPersonas, spec.CPEPersonas...)
	spec.Seed = 777

	res := study.Run(study.BuildWorld(spec))
	acc := analysis.BuildAccuracy(res)
	if acc.FalsePositives != 0 || acc.FalseNegatives != 0 {
		t.Errorf("detection errors under heavy interception: fp=%d fn=%d",
			acc.FalsePositives, acc.FalseNegatives)
	}
	t4 := analysis.BuildTable4(res)
	if t4.DistinctIntercepted != acc.TruePositives {
		t.Errorf("identity broken: distinct=%d tp=%d", t4.DistinctIntercepted, acc.TruePositives)
	}
	if t4.DistinctIntercepted < 60 {
		t.Errorf("only %d intercepted; heavy spec did not take", t4.DistinctIntercepted)
	}
	f4 := analysis.BuildFigure4(res, 15)
	if f4.CPE+f4.ISP+f4.Unknown != t4.DistinctIntercepted {
		t.Errorf("figure4 does not partition: %d+%d+%d != %d",
			f4.CPE, f4.ISP, f4.Unknown, t4.DistinctIntercepted)
	}
	// Per-resolver counts never exceed the distinct total... per family.
	for _, row := range t4.Rows {
		if row.InterceptedV4 > t4.DistinctIntercepted {
			t.Errorf("%s intercepted %d > distinct %d", row.Resolver, row.InterceptedV4, t4.DistinctIntercepted)
		}
	}
	_ = publicdns.All
}

// renderTorture is the torture campaign's deterministic output
// surface: every table, figure, and accuracy aggregate plus the Stable
// metrics snapshot — the same bytes renderStream compares.
func renderTorture(res *study.StreamResults) string {
	acc := res.Acc.(*analysis.Accumulator)
	t4 := acc.Table4()
	return analysis.FormatTable4(t4) + analysis.CSVTable4(t4) +
		analysis.FormatTable5(acc.Table5()) +
		analysis.FormatFigure3(acc.Figure3(10)) +
		analysis.FormatFigure4(acc.Figure4(10)) +
		analysis.FormatAccuracy(acc.Accuracy()) +
		string(res.MetricsSnapshot(false).JSON())
}

// TestCrashTortureStreamedPipeline is the robustness layer's headline
// acceptance test: dozens of randomized kill/corrupt/resume cycles on
// fault-injected filesystems — torn checkpoint writes, failed fsyncs,
// bit-rotted checkpoint generations (including one round where BOTH
// generations of a shard rot), torn and garbage-appended sink tails —
// after which the tables, CSV sinks, and Stable metrics snapshot must
// be byte-identical to an undisturbed 4-worker run, with zero fatal
// aborts.
func TestCrashTortureStreamedPipeline(t *testing.T) {
	cycles := 32
	if testing.Short() {
		cycles = 6
	}
	rep, err := study.RunTorture(study.TortureOptions{
		Spec:           study.PaperSpec().Scale(0.0128),
		Workers:        4,
		Cycles:         cycles,
		Seed:           20260808,
		Dir:            t.TempDir(),
		NewAccumulator: func(int) study.Accumulator { return analysis.NewAccumulator() },
		Render:         renderTorture,
	})
	if err != nil {
		t.Fatalf("torture campaign aborted: %v", err)
	}
	t.Logf("\n%s", rep.Summary())
	if !rep.Passed() {
		t.Fatalf("tortured run diverged from undisturbed run: %s", rep.Diff)
	}
	if rep.Cycles != cycles || rep.Kills != cycles-1 {
		t.Errorf("campaign ran %d cycles / %d kills, want %d / %d", rep.Cycles, rep.Kills, cycles, cycles-1)
	}
	if rep.Corruptions["both_generations_corrupt"] == 0 {
		t.Error("the both-generations-corrupt case never ran")
	}
	if rep.CheckpointRecoveries == 0 {
		t.Error("no checkpoint recovery was ever exercised")
	}
	if len(rep.FaultCounts) == 0 {
		t.Error("the fault schedules injected nothing")
	}
}

// TestScaleSpecInvariants checks Scale() never zeroes a nonempty group
// and keeps persona coverage for CPE seats.
func TestScaleSpecInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		factor := 0.01 + r.Float64()*1.5
		spec := study.PaperSpec().Scale(factor)
		cpe := 0
		for _, g := range spec.Seats {
			if g.Count <= 0 {
				return false
			}
			if g.Loc == study.LocCPE {
				cpe += g.Count
			}
		}
		return len(spec.CPEPersonas) == cpe && spec.TotalProbes > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
