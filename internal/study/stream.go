package study

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"github.com/dnswatch/dnsloc/internal/metrics"
)

// Accumulator is the streaming pipeline's aggregation state: something
// that can fold one completed record at a time, merge with a sibling
// shard's state, and round-trip through bytes for a checkpoint.
// internal/analysis provides the canonical implementation (every table,
// figure, and accuracy aggregate of the paper); the interface lives
// here so the engine can stream without importing the analysis layer.
//
// The engine's determinism contract extends to implementations: Fold
// must be commutative in record order and Merge in shard order (pure
// counting keyed on record-intrinsic fields satisfies both), or the
// streamed pipeline loses the byte-identical-at-any-worker-count
// guarantee the in-memory pipeline has.
type Accumulator interface {
	// Fold adds one record's contribution. The record is released after
	// the call returns; implementations must not retain it.
	Fold(rec *ProbeRecord)
	// Merge folds another shard's accumulator (always the same concrete
	// type) into this one.
	Merge(other Accumulator) error
	// MarshalState serializes the accumulated state for a checkpoint.
	MarshalState() ([]byte, error)
	// LoadState replaces the state with a checkpointed one.
	LoadState(data []byte) error
}

// StreamOptions configure a streamed, bounded-memory study run.
type StreamOptions struct {
	// Workers is the shard count; <= 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives one call per completed shard,
	// serialized but in completion order.
	Progress func(shard, workers, probes int, elapsed time.Duration)

	// NewAccumulator builds shard k's accumulator; required. It is
	// called once per shard before the shard's world builds, plus once
	// with shard -1 for the final merge target.
	NewAccumulator func(shard int) Accumulator

	// NewSink, when non-nil, opens shard k's record sink: every
	// completed record's export is appended to it, in the shard's
	// deterministic probe order, instead of being retained in RAM.
	// resumedAt is the number of records the shard's checkpoint already
	// covers — 0 for a fresh run; a resuming caller must discard sink
	// output beyond that count (see TruncateSinkFile) before appending.
	NewSink func(shard, workers, resumedAt int) (RecordSink, error)

	// CheckpointDir, when non-empty, enables shard-level checkpointing:
	// every CheckpointEvery records each shard atomically persists its
	// accumulator state, fold cursor, and metric registry snapshot to
	// <dir>/shard-K-of-N.json, and a final checkpoint on completion.
	CheckpointDir string
	// CheckpointEvery is the records-per-checkpoint interval; <= 0
	// means 1000.
	CheckpointEvery int
	// Resume loads each shard's checkpoint (when present) and skips the
	// records it covers: the shard's world is rebuilt from the seed —
	// replaying every RNG stream deterministically — and measurement
	// restarts at the cursor, so the finished run is byte-identical to
	// an uninterrupted one.
	Resume bool

	// StopAfterProbes, when > 0, halts each shard after folding that
	// many records without writing a final checkpoint — a deterministic
	// stand-in for a mid-flight kill, used by checkpoint tests and CI.
	StopAfterProbes int
}

// StreamResults is a completed (or deliberately halted) streamed run.
type StreamResults struct {
	Spec Spec
	// Acc is the shard accumulators merged in shard order.
	Acc Accumulator
	// Errors records contained shard-level failures, exactly as
	// Results.Errors does for the in-memory engine.
	Errors []string
	// Metrics is the merged registry; nil when Spec.DisableMetrics.
	Metrics *metrics.Registry
	// Folded is the number of records folded this run; Skipped is the
	// number restored from checkpoints instead of re-measured.
	Folded, Skipped int
	// Stopped reports that StopAfterProbes halted at least one shard.
	Stopped bool
}

// MetricsSnapshot renders the run's merged registry, mirroring
// Results.MetricsSnapshot.
func (r *StreamResults) MetricsSnapshot(includeDiagnostic bool) *Snapshot {
	return r.Metrics.Snapshot(includeDiagnostic)
}

// checkpointVersion guards the on-disk checkpoint layout.
const checkpointVersion = 1

// shardCheckpoint is one shard's persisted progress: everything needed
// to resume measurement at Cursor and still finish with byte-identical
// tables, CSV, and Stable metric snapshot.
type shardCheckpoint struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	// Cursor counts the shard's folded records; on resume the first
	// Cursor records are skipped.
	Cursor int `json:"cursor"`
	// Acc is the accumulator's MarshalState output at Cursor.
	Acc json.RawMessage `json:"accumulator"`
	// Metrics is the shard registry's full snapshot at Cursor; restored
	// additively before the resumed sweep, so restored + re-counted
	// events equal an uninterrupted run's totals.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// checkpointFingerprint ties a checkpoint to the exact run shape that
// wrote it. The RNG "position" needs no field of its own: every stream
// (world build, seat dealing, availability pre-draw) is replayed from
// the seed on resume, and per-flow fault decisions hash packet content,
// so the cursor is the only position that exists.
func checkpointFingerprint(spec Spec, k, workers int) string {
	return fmt.Sprintf("v%d seed=%d probes=%d seats=%d shard=%d/%d fault=%t retry=%t",
		checkpointVersion, spec.Seed, spec.TotalProbes, spec.TotalSeats(), k, workers,
		spec.Fault != nil && spec.Fault.Active(), spec.Retry != nil)
}

// CheckpointPath returns shard k's checkpoint file under dir.
func CheckpointPath(dir string, k, workers int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.json", k, workers))
}

// readCheckpoint loads and validates a shard checkpoint; a missing file
// returns (nil, nil) — a fresh start, not an error.
func readCheckpoint(path, fingerprint string) (*shardCheckpoint, error) {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ck shardCheckpoint
	if err := json.Unmarshal(blob, &ck); err != nil {
		return nil, fmt.Errorf("parsing checkpoint %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint %s has version %d, want %d", path, ck.Version, checkpointVersion)
	}
	if ck.Fingerprint != fingerprint {
		return nil, fmt.Errorf("checkpoint %s was written by a different run (%q, want %q)",
			path, ck.Fingerprint, fingerprint)
	}
	return &ck, nil
}

// writeCheckpoint persists a shard checkpoint atomically (temp file +
// rename), so a kill mid-write leaves the previous checkpoint intact.
func writeCheckpoint(path, fingerprint string, cursor int, acc Accumulator, reg *metrics.Registry) error {
	state, err := acc.MarshalState()
	if err != nil {
		return err
	}
	ck := shardCheckpoint{
		Version:     checkpointVersion,
		Fingerprint: fingerprint,
		Cursor:      cursor,
		Acc:         state,
	}
	if reg != nil {
		ck.Metrics = reg.Snapshot(true)
	}
	blob, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// RunStreamed executes the pilot study as a streaming, bounded-memory
// pipeline: each shard folds every completed record into its
// accumulator (and optional sink) and releases it, retaining no
// O(probes) record slice. The determinism contract of RunSharded holds
// unchanged — accumulator folding is commutative and the shard merge
// runs in shard order, so the tables, figures, CSV, and Stable metric
// snapshot rendered from the merged accumulator are byte-identical to
// the in-memory pipeline's at any worker count, and a run killed and
// resumed from its checkpoints finishes with byte-identical output.
func RunStreamed(spec Spec, opts StreamOptions) (*StreamResults, error) {
	if opts.NewAccumulator == nil {
		return nil, fmt.Errorf("study: StreamOptions.NewAccumulator is required")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if spec.TotalProbes > 0 && workers > spec.TotalProbes {
		workers = spec.TotalProbes
	}
	if opts.CheckpointDir != "" {
		if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("study: creating checkpoint dir: %w", err)
		}
	}

	tpl := NewWorldTemplate(spec)
	// Shard builds run concurrently; split the machine between them for
	// each one's parallel org population.
	if bw := runtime.GOMAXPROCS(0) / workers; bw > 1 {
		tpl.BuildWorkers = bw
	} else {
		tpl.BuildWorkers = 1
	}
	accs := make([]Accumulator, workers)
	shardRegs := make([]*metrics.Registry, workers)
	shardErrs := make([]string, workers)
	folded := make([]int, workers)
	skipped := make([]int, workers)
	stopped := make([]bool, workers)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					shardErrs[k] = fmt.Sprintf("shard %d/%d panicked: %v", k, workers, r)
					accs[k] = nil
				}
			}()
			start := time.Now()
			reg, n, skip, halt, err := runStreamShard(tpl, spec, k, workers, opts, &accs[k])
			shardRegs[k], folded[k], skipped[k], stopped[k] = reg, n, skip, halt
			if err != nil {
				shardErrs[k] = fmt.Sprintf("shard %d/%d: %v", k, workers, err)
				accs[k] = nil
				return
			}
			if opts.Progress != nil {
				progressMu.Lock()
				opts.Progress(k, workers, n+skip, time.Since(start))
				progressMu.Unlock()
			}
		}(k)
	}
	wg.Wait()

	res := &StreamResults{Spec: spec, Acc: opts.NewAccumulator(-1)}
	for k := 0; k < workers; k++ {
		if shardErrs[k] != "" {
			res.Errors = append(res.Errors, shardErrs[k])
			continue
		}
		if accs[k] != nil {
			if err := res.Acc.Merge(accs[k]); err != nil {
				return nil, err
			}
		}
		res.Folded += folded[k]
		res.Skipped += skipped[k]
		res.Stopped = res.Stopped || stopped[k]
	}
	if !spec.DisableMetrics {
		res.Metrics = metrics.New()
		for _, r := range shardRegs {
			res.Metrics.Merge(r)
		}
	}
	return res, nil
}

// runStreamShard measures one shard's probes, streaming each record
// into the accumulator and sink. It returns the shard registry, the
// records folded this run, the records skipped via checkpoint, and
// whether StopAfterProbes halted the sweep. The accumulator is passed
// by pointer so a partially folded state survives a contained panic
// (the caller discards it, but the slot must not hold a stale value).
func runStreamShard(tpl *WorldTemplate, spec Spec, k, workers int, opts StreamOptions, accSlot *Accumulator) (reg *metrics.Registry, folded, skip int, halted bool, err error) {
	acc := opts.NewAccumulator(k)
	*accSlot = acc

	fingerprint := checkpointFingerprint(spec, k, workers)
	ckPath := ""
	if opts.CheckpointDir != "" {
		ckPath = CheckpointPath(opts.CheckpointDir, k, workers)
	}
	var restored *metrics.Snapshot
	if opts.Resume && ckPath != "" {
		ck, cerr := readCheckpoint(ckPath, fingerprint)
		if cerr != nil {
			return nil, 0, 0, false, cerr
		}
		if ck != nil {
			if lerr := acc.LoadState(ck.Acc); lerr != nil {
				return nil, 0, 0, false, lerr
			}
			skip = ck.Cursor
			restored = ck.Metrics
		}
	}

	world := tpl.Build(spec.Shard(k, workers))
	reg = world.Metrics
	if restored != nil {
		reg.AddSnapshot(restored)
	}
	world.studyMetrics.noteResumeSkipped(skip)

	var sink RecordSink
	if opts.NewSink != nil {
		sink, err = opts.NewSink(k, workers, skip)
		if err != nil {
			return reg, 0, skip, false, err
		}
	}
	every := opts.CheckpointEvery
	if every <= 0 {
		every = 1000
	}

	var flusher SinkFlusher
	if f, ok := sink.(SinkFlusher); ok {
		flusher = f
	}

	var ioErr error
	var exp ProbeExport // reused across records; serialized before the next fill
	streamRecords(world, skip, func(rec *ProbeRecord) bool {
		acc.Fold(rec)
		if sink != nil && ioErr == nil {
			ExportRecordInto(rec, &exp)
			ioErr = sink.Append(exp)
		}
		folded++
		if ckPath != "" && folded%every == 0 && ioErr == nil {
			// The checkpoint cursor must never run ahead of the sink's
			// durable rows: flush buffered appends first, so a kill right
			// after the checkpoint leaves at least cursor rows on disk
			// (surplus rows are truncated on resume; missing rows would be
			// unrecoverable).
			if flusher != nil {
				ioErr = flusher.Flush()
			}
			if ioErr == nil {
				if ioErr = writeCheckpoint(ckPath, fingerprint, skip+folded, acc, reg); ioErr == nil {
					world.studyMetrics.noteCheckpoint()
				}
			}
		}
		if opts.StopAfterProbes > 0 && folded >= opts.StopAfterProbes {
			halted = true
			return false
		}
		return ioErr == nil
	})
	if sink != nil {
		if cerr := sink.Close(); ioErr == nil {
			ioErr = cerr
		}
	}
	if ioErr != nil {
		return reg, folded, skip, halted, ioErr
	}
	// The final checkpoint marks the shard complete; a resumed run skips
	// straight to the merge. Deliberately omitted after a simulated
	// crash — a real kill would not have written it either.
	if ckPath != "" && !halted {
		if err := writeCheckpoint(ckPath, fingerprint, skip+folded, acc, reg); err != nil {
			return reg, folded, skip, halted, err
		}
		world.studyMetrics.noteCheckpoint()
	}
	return reg, folded, skip, halted, nil
}

// TruncateSinkFile trims a line-oriented sink file (JSONL or CSV) back
// to the first records entries — the prefix a shard's checkpoint
// covers. header reserves one leading header line (CSV). A resuming
// caller runs this before reopening the file in append mode, discarding
// both whole records written after the last checkpoint and any partial
// line the kill left behind; the finished file is then byte-identical
// to an uninterrupted run's. A missing file is a no-op.
func TruncateSinkFile(path string, records int, header bool) error {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	keep := records
	if header {
		keep++
	}
	off, lines := 0, 0
	for ; lines < keep; lines++ {
		j := indexByte(blob[off:], '\n')
		if j < 0 {
			// Fewer complete lines than the checkpoint covers: the file
			// is shorter than the checkpoint claims, which means the
			// sink and checkpoint disagree — refuse to guess.
			return fmt.Errorf("study: %s has only %d complete lines, checkpoint covers %d", path, lines, keep)
		}
		off += j + 1
	}
	if off == len(blob) {
		return nil
	}
	return os.WriteFile(path, blob[:off], 0o644)
}

// indexByte is bytes.IndexByte without the import.
func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}
