package study

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"github.com/dnswatch/dnsloc/internal/faultfs"
	"github.com/dnswatch/dnsloc/internal/metrics"
)

// Accumulator is the streaming pipeline's aggregation state: something
// that can fold one completed record at a time, merge with a sibling
// shard's state, and round-trip through bytes for a checkpoint.
// internal/analysis provides the canonical implementation (every table,
// figure, and accuracy aggregate of the paper); the interface lives
// here so the engine can stream without importing the analysis layer.
//
// The engine's determinism contract extends to implementations: Fold
// must be commutative in record order and Merge in shard order (pure
// counting keyed on record-intrinsic fields satisfies both), or the
// streamed pipeline loses the byte-identical-at-any-worker-count
// guarantee the in-memory pipeline has.
type Accumulator interface {
	// Fold adds one record's contribution. The record is released after
	// the call returns; implementations must not retain it.
	Fold(rec *ProbeRecord)
	// Merge folds another shard's accumulator (always the same concrete
	// type) into this one.
	Merge(other Accumulator) error
	// MarshalState serializes the accumulated state for a checkpoint.
	MarshalState() ([]byte, error)
	// LoadState replaces the state with a checkpointed one.
	LoadState(data []byte) error
}

// StreamOptions configure a streamed, bounded-memory study run.
type StreamOptions struct {
	// Workers is the shard count; <= 0 means GOMAXPROCS.
	Workers int
	// Lanes is the per-shard lane count: each shard's owned probes split
	// into Lanes contiguous windows, each simulated end-to-end by its own
	// world over the template's shared immutable core, with one committer
	// per shard folding the lanes' records strictly in lane order — so
	// every output byte matches the single-lane pipeline. Unlike the
	// in-memory engine, <= 0 means 1 here: lane mode moves the
	// checkpoint cadence from record intervals (CheckpointEvery) to lane
	// boundaries — the only points where the accumulator, sink, and
	// registry are exactly aligned while lanes run ahead of the
	// committer — so it is opt-in rather than inferred from the machine.
	Lanes int
	// Progress, when non-nil, receives one call per completed shard,
	// serialized but in completion order.
	Progress func(shard, workers, probes int, elapsed time.Duration)

	// NewAccumulator builds shard k's accumulator; required. It is
	// called once per shard before the shard's world builds, plus once
	// with shard -1 for the final merge target.
	NewAccumulator func(shard int) Accumulator

	// NewSink, when non-nil, opens shard k's record sink: every
	// completed record's export is appended to it, in the shard's
	// deterministic probe order, instead of being retained in RAM.
	// resumedAt is the number of records the shard's checkpoint already
	// covers — 0 for a fresh run; a resuming caller must discard sink
	// output beyond that count (see TruncateSinkFile) before appending.
	// The supervisor re-invokes it when a restarted shard resumes, so
	// it must be safe to call more than once per shard.
	NewSink func(shard, workers, resumedAt int) (RecordSink, error)

	// CheckpointDir, when non-empty, enables shard-level checkpointing:
	// every CheckpointEvery records each shard durably persists its
	// accumulator state, fold cursor, and metric registry snapshot into
	// its alternating checkpoint slots (see DESIGN.md §12), and a final
	// checkpoint on completion.
	CheckpointDir string
	// CheckpointEvery is the records-per-checkpoint interval; <= 0
	// means 1000.
	CheckpointEvery int
	// Resume loads each shard's checkpoint (when present) and skips the
	// records it covers: the shard's world is rebuilt from the seed —
	// replaying every RNG stream deterministically — and measurement
	// restarts at the cursor, so the finished run is byte-identical to
	// an uninterrupted one. Corrupt or foreign checkpoints never fail
	// the run: the shard falls back to an older generation or restarts
	// from cursor 0, classified and counted in
	// study.checkpoint_recoveries.
	Resume bool

	// MaxShardRestarts bounds the shard supervisor: a worker that
	// panics or fails on I/O is restarted from its last good checkpoint
	// (from scratch when checkpointing is off) up to this many times
	// before the failure lands in StreamResults.Errors. 0 means the
	// default (3); negative disables supervision.
	MaxShardRestarts int

	// FS, when non-nil, is the filesystem checkpoint I/O goes through —
	// a faultfs.Fault in the crash-torture harness. Nil means the real
	// filesystem. (Sink I/O is owned by NewSink; a harness injects
	// faults there by opening sink files through its own faultfs.)
	FS faultfs.FS

	// Warnf, when non-nil, receives each self-healing warning (corrupt
	// checkpoints recovered, failed checkpoint writes, shard restarts)
	// as it happens. Warnings are also collected into
	// StreamResults.Warnings regardless.
	Warnf func(format string, args ...any)

	// StopAfterProbes, when > 0, halts each shard after folding that
	// many records without writing a final checkpoint — a deterministic
	// stand-in for a mid-flight kill, used by checkpoint tests and CI.
	StopAfterProbes int
}

// StreamResults is a completed (or deliberately halted) streamed run.
type StreamResults struct {
	Spec Spec
	// Acc is the shard accumulators merged in shard order.
	Acc Accumulator
	// Errors records contained shard-level failures — after the
	// supervisor exhausted its restarts — exactly as Results.Errors
	// does for the in-memory engine.
	Errors []string
	// Warnings are the self-healing events the run recovered from
	// (corrupt checkpoints, failed checkpoint writes, shard restarts).
	// Non-empty Warnings with empty Errors means degraded-but-correct.
	Warnings []string
	// Restarts counts supervisor-driven shard worker restarts.
	Restarts int
	// Metrics is the merged registry; nil when Spec.DisableMetrics.
	Metrics *metrics.Registry
	// Folded is the number of records folded this run; Skipped is the
	// number restored from checkpoints instead of re-measured.
	Folded, Skipped int
	// Stopped reports that StopAfterProbes halted at least one shard.
	Stopped bool
}

// MetricsSnapshot renders the run's merged registry, mirroring
// Results.MetricsSnapshot.
func (r *StreamResults) MetricsSnapshot(includeDiagnostic bool) *Snapshot {
	return r.Metrics.Snapshot(includeDiagnostic)
}

// RunStreamed executes the pilot study as a streaming, bounded-memory
// pipeline: each shard folds every completed record into its
// accumulator (and optional sink) and releases it, retaining no
// O(probes) record slice. The determinism contract of RunSharded holds
// unchanged — accumulator folding is commutative and the shard merge
// runs in shard order, so the tables, figures, CSV, and Stable metric
// snapshot rendered from the merged accumulator are byte-identical to
// the in-memory pipeline's at any worker count, and a run killed and
// resumed from its checkpoints finishes with byte-identical output.
//
// Shards run under a supervisor: a worker that panics or fails on I/O
// is restarted from its last good checkpoint (MaxShardRestarts times),
// and determinism makes the re-measurement converge on the same bytes.
func RunStreamed(spec Spec, opts StreamOptions) (*StreamResults, error) {
	if opts.NewAccumulator == nil {
		return nil, fmt.Errorf("study: StreamOptions.NewAccumulator is required")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if spec.TotalProbes > 0 && workers > spec.TotalProbes {
		workers = spec.TotalProbes
	}
	lanes := opts.Lanes
	if lanes < 1 {
		lanes = 1
	}
	if spec.TotalProbes > 0 {
		if per := spec.TotalProbes / workers; lanes > per {
			lanes = per
		}
		if lanes < 1 {
			lanes = 1
		}
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if opts.CheckpointDir != "" {
		if err := fsys.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("study: creating checkpoint dir: %w", err)
		}
	}
	maxRestarts := opts.MaxShardRestarts
	if maxRestarts == 0 {
		maxRestarts = 3
	} else if maxRestarts < 0 {
		maxRestarts = 0
	}

	var warnMu sync.Mutex
	var warnings []string
	warnf := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		warnMu.Lock()
		warnings = append(warnings, msg)
		if opts.Warnf != nil {
			opts.Warnf("%s", msg)
		}
		warnMu.Unlock()
	}

	tpl := NewWorldTemplate(spec)
	// Shard and lane builds run concurrently; split the machine between
	// them for each one's parallel org population.
	if bw := runtime.GOMAXPROCS(0) / (workers * lanes); bw > 1 {
		tpl.BuildWorkers = bw
	} else {
		tpl.BuildWorkers = 1
	}
	accs := make([]Accumulator, workers)
	shardRegs := make([]*metrics.Registry, workers)
	shardErrs := make([]string, workers)
	folded := make([]int, workers)
	skipped := make([]int, workers)
	stopped := make([]bool, workers)
	restarts := make([]int, workers)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			start := time.Now()
			for attempt := 0; ; attempt++ {
				// Each attempt starts from a clean slot: a failed attempt's
				// accumulator (and registry) is discarded wholesale, so
				// nothing it half-counted can double into the merge.
				accs[k] = nil
				reg, n, skip, halt, err := runShardAttempt(tpl, spec, k, workers, lanes, opts, fsys, attempt, warnf, &accs[k])
				if err == nil {
					shardRegs[k], folded[k], skipped[k], stopped[k] = reg, n, skip, halt
					if opts.Progress != nil {
						progressMu.Lock()
						opts.Progress(k, workers, n+skip, time.Since(start))
						progressMu.Unlock()
					}
					return
				}
				if attempt >= maxRestarts {
					shardErrs[k] = fmt.Sprintf("shard %d/%d: %v (after %d restarts)", k, workers, err, attempt)
					shardRegs[k] = reg
					accs[k] = nil
					return
				}
				restarts[k]++
				warnf("study: shard %d/%d failed: %v; restarting from last good checkpoint (restart %d/%d)",
					k, workers, err, attempt+1, maxRestarts)
			}
		}(k)
	}
	wg.Wait()

	res := &StreamResults{Spec: spec, Acc: opts.NewAccumulator(-1), Warnings: warnings}
	for k := 0; k < workers; k++ {
		res.Restarts += restarts[k]
		if shardErrs[k] != "" {
			res.Errors = append(res.Errors, shardErrs[k])
			continue
		}
		if accs[k] != nil {
			if err := res.Acc.Merge(accs[k]); err != nil {
				return nil, err
			}
		}
		res.Folded += folded[k]
		res.Skipped += skipped[k]
		res.Stopped = res.Stopped || stopped[k]
	}
	if !spec.DisableMetrics {
		res.Metrics = metrics.New()
		for _, r := range shardRegs {
			res.Metrics.Merge(r)
		}
		// Supervision happens above the per-shard registries (a restarted
		// attempt's registry is discarded), so the restart count lands on
		// the merged registry directly. Diagnostic: an undisturbed run and
		// a restarted one must render the same Stable snapshot.
		res.Metrics.Counter("study.shard_restarts", metrics.Diagnostic).Add(int64(res.Restarts))
	}
	return res, nil
}

// runShardAttempt is one supervised execution of a shard worker,
// converting a panic into an error the supervisor can restart on.
func runShardAttempt(tpl *WorldTemplate, spec Spec, k, workers, lanes int, opts StreamOptions, fsys faultfs.FS, attempt int, warnf func(string, ...any), accSlot *Accumulator) (reg *metrics.Registry, folded, skip int, halted bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panicked: %v", r)
		}
	}()
	if lanes > 1 {
		return runStreamShardLanes(tpl, spec, k, workers, lanes, opts, fsys, attempt, warnf, accSlot)
	}
	return runStreamShard(tpl, spec, k, workers, opts, fsys, attempt, warnf, accSlot)
}

// runStreamShard measures one shard's probes, streaming each record
// into the accumulator and sink. It returns the shard registry, the
// records folded this attempt, the records skipped via checkpoint, and
// whether StopAfterProbes halted the sweep. The accumulator is passed
// by pointer so a partially folded state survives a contained panic
// (the supervisor discards it, but the slot must not hold a stale
// value).
func runStreamShard(tpl *WorldTemplate, spec Spec, k, workers int, opts StreamOptions, fsys faultfs.FS, attempt int, warnf func(string, ...any), accSlot *Accumulator) (reg *metrics.Registry, folded, skip int, halted bool, err error) {
	acc := opts.NewAccumulator(k)
	*accSlot = acc

	fingerprint := checkpointFingerprint(spec, k, workers)
	var store *ckStore
	if opts.CheckpointDir != "" {
		store = newCkStore(fsys, opts.CheckpointDir, k, workers, fingerprint)
	}
	var restored *metrics.Snapshot
	recovery := ckFresh
	if store != nil {
		// A supervisor restart (attempt > 0) always resumes: the last
		// good checkpoint is the whole point of restarting.
		if opts.Resume || attempt > 0 {
			ck, class, detail := store.load()
			recovery = class
			if detail != "" {
				warnf("study: shard %d/%d checkpoint recovery (%s): %s", k, workers, class, detail)
			}
			if ck != nil {
				if lerr := acc.LoadState(ck.Acc); lerr != nil {
					// The envelope's CRC passed but the accumulator rejects
					// the state (implementation drift): recoverable like any
					// other corruption — restart from cursor 0.
					warnf("study: shard %d/%d checkpoint state rejected (%v); restarting from cursor 0", k, workers, lerr)
					acc = opts.NewAccumulator(k)
					*accSlot = acc
					recovery = ckAllCorrupt
				} else {
					skip = ck.Cursor
					restored = ck.Metrics
				}
			}
		} else {
			// A fresh (non-resume) run invalidates whatever an earlier run
			// left in the directory, so a later supervisor restart cannot
			// resurrect a stale cursor from a previous identical spec.
			store.clear()
		}
	}

	world := tpl.Build(spec.Shard(k, workers))
	reg = world.Metrics
	if restored != nil {
		reg.AddSnapshot(restored)
	}
	world.studyMetrics.noteResumeSkipped(skip)
	if recovery.recovered() {
		world.studyMetrics.noteCheckpointRecovery()
	}

	var sink RecordSink
	if opts.NewSink != nil {
		sink, err = opts.NewSink(k, workers, skip)
		if err != nil {
			return reg, 0, skip, false, err
		}
	}
	every := opts.CheckpointEvery
	if every <= 0 {
		every = 1000
	}

	var flusher SinkFlusher
	if f, ok := sink.(SinkFlusher); ok {
		flusher = f
	}

	var ioErr error
	var exp ProbeExport // reused across records; serialized before the next fill
	streamRecords(world, skip, func(rec *ProbeRecord) bool {
		acc.Fold(rec)
		if sink != nil && ioErr == nil {
			ExportRecordInto(rec, &exp)
			ioErr = sink.Append(exp)
		}
		folded++
		if store != nil && folded%every == 0 && ioErr == nil {
			// The checkpoint cursor must never run ahead of the sink's
			// durable rows: flush buffered appends first, so a kill right
			// after the checkpoint leaves at least cursor rows on disk
			// (surplus rows are truncated on resume; missing rows would be
			// unrecoverable).
			if flusher != nil {
				ioErr = flusher.Flush()
			}
			if ioErr == nil {
				// A failed checkpoint store is not fatal: the previous
				// generation is still intact in the other slot, and the
				// next interval retries. Worst case a crash re-measures one
				// extra interval.
				if cerr := store.store(skip+folded, acc, reg); cerr != nil {
					world.studyMetrics.noteCheckpointWriteFailure()
					warnf("study: shard %d/%d checkpoint write at cursor %d failed (retrying next interval): %v",
						k, workers, skip+folded, cerr)
				} else {
					world.studyMetrics.noteCheckpoint()
				}
			}
		}
		if opts.StopAfterProbes > 0 && folded >= opts.StopAfterProbes {
			halted = true
			return false
		}
		return ioErr == nil
	})
	if sink != nil {
		cerr := sink.Close()
		if ioErr == nil {
			ioErr = cerr
		}
		if ss, ok := sink.(SinkStatser); ok {
			world.studyMetrics.noteSinkHealing(ss.SinkStats())
		}
	}
	if ioErr != nil {
		return reg, folded, skip, halted, ioErr
	}
	// The final checkpoint marks the shard complete; a resumed run skips
	// straight to the merge. Deliberately omitted after a simulated
	// crash — a real kill would not have written it either. A failed
	// final store is non-fatal too: a later resume re-measures the tail
	// past the last durable cursor and lands on the same bytes.
	if store != nil && !halted {
		if cerr := store.store(skip+folded, acc, reg); cerr != nil {
			world.studyMetrics.noteCheckpointWriteFailure()
			warnf("study: shard %d/%d final checkpoint failed (a resume will re-measure the tail): %v", k, workers, cerr)
		} else {
			world.studyMetrics.noteCheckpoint()
		}
	}
	return reg, folded, skip, halted, nil
}

// laneChanBuf bounds how far one lane's event loop can run ahead of the
// shard committer: the streaming pipeline's O(1)-per-probe memory bound
// becomes O(lanes × laneChanBuf) records in flight, never O(probes).
const laneChanBuf = 32

// laneFeed is one lane's side of the shard committer handshake. The
// lane goroutine fills reg and err, then closes ch; the channel close
// is the happens-before edge, so the committer reads them only after
// the drain loop ends.
type laneFeed struct {
	ch  chan *ProbeRecord
	reg *metrics.Registry
	err error
	// start/end are the lane's rank window within the shard; skip is the
	// checkpointed prefix of that window.
	start, end, skip int
}

// runStreamShardLanes is runStreamShard's lane-parallel variant: the
// shard's owned probe ranks split into lanes contiguous windows, each
// measured end-to-end by its own world (over the template's shared
// immutable core), while a single committer — this function — drains
// the lanes strictly in lane order, folding into one accumulator and
// sink. Because lane windows are contiguous and ordered, the fold order
// is exactly the single-lane order, and every output byte matches.
//
// Checkpoints move to lane boundaries: lanes run ahead of the committer,
// so mid-lane the lane registries hold counts past the fold cursor and
// a snapshot there would double-count on resume. When lane l's channel
// closes, its registry merges into the shard registry — the merged
// state then covers exactly the ranks below the lane's end (restored
// checkpoint < skip, completed lanes are a contiguous prefix, stubs and
// skipped probes produce no Stable counts) — and that boundary is
// durably checkpointed. The fingerprint stays lane-free, so a
// checkpoint written at one lane count resumes at any other.
func runStreamShardLanes(tpl *WorldTemplate, spec Spec, k, workers, lanes int, opts StreamOptions, fsys faultfs.FS, attempt int, warnf func(string, ...any), accSlot *Accumulator) (reg *metrics.Registry, folded, skip int, halted bool, err error) {
	acc := opts.NewAccumulator(k)
	*accSlot = acc

	fingerprint := checkpointFingerprint(spec, k, workers)
	var store *ckStore
	if opts.CheckpointDir != "" {
		store = newCkStore(fsys, opts.CheckpointDir, k, workers, fingerprint)
	}
	var restored *metrics.Snapshot
	recovery := ckFresh
	if store != nil {
		if opts.Resume || attempt > 0 {
			ck, class, detail := store.load()
			recovery = class
			if detail != "" {
				warnf("study: shard %d/%d checkpoint recovery (%s): %s", k, workers, class, detail)
			}
			if ck != nil {
				if lerr := acc.LoadState(ck.Acc); lerr != nil {
					warnf("study: shard %d/%d checkpoint state rejected (%v); restarting from cursor 0", k, workers, lerr)
					acc = opts.NewAccumulator(k)
					*accSlot = acc
					recovery = ckAllCorrupt
				} else {
					skip = ck.Cursor
					restored = ck.Metrics
				}
			}
		} else {
			store.clear()
		}
	}

	// The shard registry lives above the lane worlds: restored snapshot
	// first, then each completed lane's registry in lane order. The
	// shard-level instruments (resume accounting, checkpoint and sink
	// health) land here rather than on any one lane's world.
	var sm *studyMetrics
	if !spec.DisableMetrics {
		reg = metrics.New()
		reg.AddSnapshot(restored)
		sm = newStudyMetrics(reg)
	}
	sm.noteResumeSkipped(skip)
	if recovery.recovered() {
		sm.noteCheckpointRecovery()
	}

	var sink RecordSink
	if opts.NewSink != nil {
		sink, err = opts.NewSink(k, workers, skip)
		if err != nil {
			return reg, 0, skip, false, err
		}
	}
	var flusher SinkFlusher
	if f, ok := sink.(SinkFlusher); ok {
		flusher = f
	}

	shardSpec := spec.Shard(k, workers)
	done := make(chan struct{})
	var doneOnce sync.Once
	cancel := func() { doneOnce.Do(func() { close(done) }) }
	var lwg sync.WaitGroup
	feeds := make([]*laneFeed, lanes)
	for l := 0; l < lanes; l++ {
		laneSpec := shardSpec.Lane(l, lanes)
		s, e := laneSpec.laneWindow()
		lf := &laneFeed{ch: make(chan *ProbeRecord, laneChanBuf), start: s, end: e}
		feeds[l] = lf
		lf.skip = skip - s
		if lf.skip < 0 {
			lf.skip = 0
		}
		if lf.skip >= e-s {
			// The checkpoint already covers this whole window (or the
			// window is empty): nothing to measure, so the lane's world is
			// never built.
			lf.skip = e - s
			close(lf.ch)
			continue
		}
		lwg.Add(1)
		go func(l int, lf *laneFeed, laneSpec Spec) {
			defer lwg.Done()
			defer close(lf.ch)
			// Quarantine is per-probe inside streamRecords; this recover
			// catches a lane world build blowing up, surfacing it as the
			// attempt error so the supervisor restarts the shard.
			defer func() {
				if r := recover(); r != nil {
					lf.err = fmt.Errorf("lane %d/%d panicked: %v", l, lanes, r)
				}
			}()
			world := tpl.Build(laneSpec)
			lf.reg = world.Metrics
			streamRecords(world, lf.skip, func(rec *ProbeRecord) bool {
				select {
				case lf.ch <- rec:
					return true
				case <-done:
					return false
				}
			})
		}(l, lf, laneSpec)
	}

	var ioErr error
	var exp ProbeExport // reused across records; serialized before the next fill
	wroteCk := false
commit:
	for _, lf := range feeds {
		for rec := range lf.ch {
			acc.Fold(rec)
			if sink != nil && ioErr == nil {
				ExportRecordInto(rec, &exp)
				ioErr = sink.Append(exp)
			}
			folded++
			if opts.StopAfterProbes > 0 && folded >= opts.StopAfterProbes {
				halted = true
				break commit
			}
			if ioErr != nil {
				break commit
			}
		}
		// Channel closed: the lane goroutine has finished and its
		// registry covers exactly the lane's non-skipped ranks.
		reg.Merge(lf.reg)
		if lf.err != nil {
			err = lf.err
			break commit
		}
		// Lane boundary: accumulator, sink, and registry agree on the
		// cursor — the only alignment point in lane mode, so this is
		// where checkpoints happen (CheckpointEvery does not apply).
		if store != nil && lf.end > skip && ioErr == nil {
			if flusher != nil {
				ioErr = flusher.Flush()
			}
			if ioErr != nil {
				break commit
			}
			if cerr := store.store(lf.end, acc, reg); cerr != nil {
				sm.noteCheckpointWriteFailure()
				warnf("study: shard %d/%d checkpoint write at cursor %d failed (retrying at next lane boundary): %v",
					k, workers, lf.end, cerr)
			} else {
				sm.noteCheckpoint()
				wroteCk = true
			}
		}
	}
	// Unblock any lane still ahead of a halt or error, then wait: lanes
	// select on done in their yield, so they exit after at most one more
	// record.
	cancel()
	lwg.Wait()

	if sink != nil {
		cerr := sink.Close()
		if ioErr == nil {
			ioErr = cerr
		}
		if ss, ok := sink.(SinkStatser); ok {
			sm.noteSinkHealing(ss.SinkStats())
		}
	}
	if err != nil {
		return reg, folded, skip, halted, err
	}
	if ioErr != nil {
		return reg, folded, skip, halted, ioErr
	}
	// Every lane boundary writes a checkpoint, so the last one already
	// marked the shard complete. The exception is a resume of an
	// already-complete shard (every lane fully skipped): refresh the
	// final checkpoint as the single-lane path would.
	if store != nil && !halted && !wroteCk {
		if cerr := store.store(skip+folded, acc, reg); cerr != nil {
			sm.noteCheckpointWriteFailure()
			warnf("study: shard %d/%d final checkpoint failed (a resume will re-measure the tail): %v", k, workers, cerr)
		} else {
			sm.noteCheckpoint()
		}
	}
	return reg, folded, skip, halted, nil
}

// TruncateSinkFile trims a line-oriented sink file (JSONL or CSV) back
// to the first records entries — the prefix a shard's checkpoint
// covers. header reserves one leading header line (CSV). A resuming
// caller runs this before reopening the file in append mode, discarding
// both whole records written after the last checkpoint and any partial
// line the kill left behind; the finished file is then byte-identical
// to an uninterrupted run's. A missing file is a no-op.
func TruncateSinkFile(path string, records int, header bool) error {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	keep := records
	if header {
		keep++
	}
	off, lines := 0, 0
	for ; lines < keep; lines++ {
		j := indexByte(blob[off:], '\n')
		if j < 0 {
			// Fewer complete lines than the checkpoint covers: the file
			// is shorter than the checkpoint claims, which means the
			// sink and checkpoint disagree — refuse to guess.
			return fmt.Errorf("study: %s has only %d complete lines, checkpoint covers %d", path, lines, keep)
		}
		off += j + 1
	}
	if off == len(blob) {
		return nil
	}
	// Truncate in place rather than rewriting: the kept prefix is
	// already durable, so shortening the file cannot tear it.
	return os.Truncate(path, int64(off))
}

// indexByte is bytes.IndexByte without the import.
func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}
