package study_test

import (
	"testing"

	"github.com/dnswatch/dnsloc/internal/analysis"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/study"
)

// encryptionSpec is a small study with the encrypted-transport plane
// enabled: an adoption fraction of the fleet speaks the given client
// profile while every interceptor applies the given policy.
func encryptionSpec(adoption float64, tr core.TransportMode, pol dnsserver.EncryptedPolicy, faulted bool) study.Spec {
	spec := study.PaperSpec().Scale(0.02)
	spec.Encryption = &study.Encryption{Adoption: adoption, Transport: tr, Policy: pol}
	if faulted {
		fp := netsim.PresetFault(0.5, spec.Seed+9000)
		spec.Fault = &fp
		spec.Retry = &core.RetryPolicy{MaxAttempts: 3}
	}
	return spec
}

// TestEncryptionDeterminism is the encrypted plane's sharding contract:
// session tickets, handshake RTTs, downgrade decisions, and the
// adoption draw itself are all pure functions of flow identity and the
// seed, never of arrival order or worker count — so the same spec is
// byte-identical at any (workers x lanes) grid, clean or faulted. Run
// under -race in CI this also shakes out unsynchronized session state.
func TestEncryptionDeterminism(t *testing.T) {
	scenarios := []struct {
		name    string
		tr      core.TransportMode
		pol     dnsserver.EncryptedPolicy
		faulted bool
	}{
		{"clean-opportunistic-terminate", core.TransportDoTOpportunistic, dnsserver.EncTerminate, false},
		{"clean-strict-block", core.TransportDoTStrict, dnsserver.EncBlock, false},
		{"clean-doh-pass", core.TransportDoH, dnsserver.EncPass, false},
		{"faulted-opportunistic-terminate", core.TransportDoTOpportunistic, dnsserver.EncTerminate, true},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			spec := encryptionSpec(0.5, sc.tr, sc.pol, sc.faulted)

			serial := study.RunSharded(spec, study.EngineOptions{Workers: 1})
			if len(serial.Errors) != 0 {
				t.Fatalf("shard errors: %v", serial.Errors)
			}
			if n := len(serial.Quarantined()); n != 0 {
				t.Fatalf("%d probes quarantined, want 0", n)
			}
			wantExport := exportJSON(t, serial)
			wantReports := reportStrings(serial)

			for _, grid := range []study.EngineOptions{
				{Workers: 4},
				{Workers: 2, Lanes: 3},
			} {
				parallel := study.RunSharded(spec, grid)
				if len(parallel.Errors) != 0 {
					t.Fatalf("workers=%d lanes=%d shard errors: %v", grid.Workers, grid.Lanes, parallel.Errors)
				}
				gotExport := exportJSON(t, parallel)
				gotReports := reportStrings(parallel)
				if len(gotExport) != len(wantExport) {
					t.Fatalf("workers=%d lanes=%d: %d export records, want %d",
						grid.Workers, grid.Lanes, len(gotExport), len(wantExport))
				}
				for i := range wantExport {
					if gotExport[i] != wantExport[i] {
						t.Fatalf("workers=%d lanes=%d: export record %d differs:\n%s\n%s",
							grid.Workers, grid.Lanes, i, gotExport[i], wantExport[i])
					}
				}
				for i := range wantReports {
					if gotReports[i] != wantReports[i] {
						t.Fatalf("workers=%d lanes=%d: report %d differs:\n--- serial ---\n%s\n--- parallel ---\n%s",
							grid.Workers, grid.Lanes, i, wantReports[i], gotReports[i])
					}
				}
			}
		})
	}
}

// TestEncryptionAcceptanceContract pins the sweep's headline claims at
// test scale:
//
//  1. a strict profile behind terminate-and-intercept middleboxes is
//     never flagged intercepted — the client refuses the interceptor's
//     certificate, so the adopting cohort's interception rate is zero;
//  2. the opportunistic profile keeps detection accuracy at least at
//     the Do53 baseline under every policy (downgrade or terminated
//     sessions both preserve the signal);
//  3. no cell ever buys its result with false positives.
func TestEncryptionAcceptanceContract(t *testing.T) {
	score := func(adoption float64, tr core.TransportMode, pol dnsserver.EncryptedPolicy) analysis.EncryptionRow {
		spec := encryptionSpec(adoption, tr, pol, false)
		res := study.RunSharded(spec, study.EngineOptions{Workers: 2})
		if len(res.Errors) != 0 {
			t.Fatalf("%s/%s shard errors: %v", pol, tr, res.Errors)
		}
		return analysis.ScoreEncryption(spec.Encryption, res)
	}

	baseline := score(0, core.TransportDoTOpportunistic, dnsserver.EncTerminate)
	if baseline.Accuracy() != 1.0 {
		t.Fatalf("Do53 baseline accuracy = %.3f, want 1.000", baseline.Accuracy())
	}

	for _, tr := range []core.TransportMode{core.TransportDoTStrict, core.TransportDoH} {
		row := score(1.0, tr, dnsserver.EncTerminate)
		if row.Adopted == 0 {
			t.Fatalf("%s: no adopting probes at adoption 1.0", tr)
		}
		if row.AdoptedFlagged != 0 {
			t.Errorf("%s + terminate: %d adopting probes flagged, want 0 — a strict client must refuse the interceptor's certificate",
				tr, row.AdoptedFlagged)
		}
	}

	for _, pol := range []dnsserver.EncryptedPolicy{dnsserver.EncPass, dnsserver.EncBlock, dnsserver.EncTerminate} {
		row := score(1.0, core.TransportDoTOpportunistic, pol)
		if acc := row.Accuracy(); acc < baseline.Accuracy() {
			t.Errorf("opportunistic + %s accuracy = %.3f, below Do53 baseline %.3f", pol, acc, baseline.Accuracy())
		}
		if row.FP != 0 {
			t.Errorf("opportunistic + %s: %d false positives, want 0", pol, row.FP)
		}
	}

	// Block forces opportunistic clients back onto interceptable Do53:
	// the adopting cohort's interception rate must match the Do53
	// ground truth, not collapse to zero.
	blocked := score(1.0, core.TransportDoTOpportunistic, dnsserver.EncBlock)
	if blocked.AdoptedFlagged == 0 {
		t.Error("block + opportunistic flagged nothing: downgraded clients must still be detected")
	}
}
