// Package study builds and runs the pilot study of §4: a synthetic
// RIPE-Atlas-like fleet of ~10,000 probes across the ISPs and countries
// of internal/geo, with transparent interceptors installed according to
// a calibrated specification, and the detection technique of
// internal/core executed from every responding probe.
//
// The specification's quotas are set so the study's aggregate outputs
// reproduce the shape of the paper's Tables 4–5 and Figures 3–4:
// 220 intercepted probes, 108 intercepted for all four resolvers,
// 49 CPE interceptors with Table 5's version.bind strings, Comcast at
// the top of the per-organization ranking, and far less interception
// over IPv6 than IPv4.
package study

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"github.com/dnswatch/dnsloc/internal/atlas"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// Location is the ground-truth interceptor placement of a seat.
type Location string

// Seat locations.
const (
	// LocCPE: the home's own CPE intercepts.
	LocCPE Location = "cpe"
	// LocISP: an in-AS middlebox intercepts, including bogon-addressed
	// queries, so step 3 localizes it.
	LocISP Location = "isp"
	// LocISPHidden: an in-AS middlebox that ignores bogon destinations;
	// the technique can only say "unknown".
	LocISPHidden Location = "isp-hidden"
	// LocTransit: an interceptor beyond the AS.
	LocTransit Location = "transit"
)

// Refusal describes whether the alternate resolver blocks queries.
type Refusal string

// Refusal modes.
const (
	// RefuseNone: the alternate resolver resolves everything (the
	// interception is fully transparent).
	RefuseNone Refusal = ""
	// RefuseAll: every intercepted resolver's queries are REFUSED
	// ("status modified" in Figure 3).
	RefuseAll Refusal = "all"
	// RefuseSubset: Quad9 and OpenDNS queries are REFUSED, the others
	// resolve ("both" in Figure 3). Only meaningful for all-four seats.
	RefuseSubset Refusal = "subset"
)

// Pattern is the set of intercepted resolvers; nil means all four.
type Pattern []publicdns.ID

// SeatGroup is one row of the interception quota table.
type SeatGroup struct {
	Count int
	Loc   Location
	// Pattern is the intercepted v4 resolver set; nil means all four
	// (unless V4None is set).
	Pattern Pattern
	// V4None marks a v6-only seat: no IPv4 interception at all.
	V4None bool
	// V6 is the intercepted v6 resolver set for this group (usually nil:
	// v6 interception is rare, Table 4).
	V6     Pattern
	Refuse Refusal
}

// Spec parameterizes a pilot study world.
type Spec struct {
	Seed        int64
	TotalProbes int

	// ShardIndex/ShardCount select a shard-filtered build: the world is
	// dealt exactly as the unsharded build (same quotas, same seat
	// dealing, same RNG streams), but only the homes of probes owned by
	// shard ShardIndex are instantiated; every other probe becomes a
	// metadata-only stub that keeps the RNG streams aligned. ShardCount
	// <= 1 means unsharded. Set via Shard.
	ShardIndex, ShardCount int

	// LaneIndex/LaneCount subdivide a shard's owned probes into
	// contiguous windows of the shard's rank sequence — lane l of L owns
	// ranks [l*N/L, (l+1)*N/L) of the shard's N probes — so each lane
	// world simulates an unbroken run of the shard's probe IDs and lane
	// outputs concatenate in probe-ID order without a merge sort.
	// LaneCount <= 1 means one lane (the whole shard). Set via Lane,
	// after Shard.
	LaneIndex, LaneCount int

	// Availability model (see atlas.Availability).
	FullShare    float64
	PartialShare float64
	PartialP     float64

	// V6Share is the fraction of homes with routed IPv6.
	V6Share float64

	// Seats is the interception quota table.
	Seats []SeatGroup

	// V6Patterns are dealt to all-four transparent LocISP seats, giving
	// those probes additional IPv6 interception (Table 4's v6 rows).
	V6Patterns []Pattern

	// CPEPersonas are the version.bind strings of the LocCPE seats, in
	// dealing order (Table 5).
	CPEPersonas []string

	// OrgSeatWeights biases which organizations host the seats
	// (Figure 3/4's per-org ranking); ASN → weight. Organizations absent
	// from the map share a weight of 1.
	OrgSeatWeights map[int]int

	// Fault, when non-nil and active, is installed as every shard
	// network's default fault profile: the whole fleet measures through a
	// lossy, duplicating, truncating path. Fault decisions are derived
	// from per-flow content hashes, so a faulted run stays byte-identical
	// across worker counts.
	Fault *netsim.FaultProfile

	// Retry, when non-nil, is the retry policy installed on every
	// detector the run builds (see core.RetryPolicy). Nil keeps the
	// legacy single-attempt behaviour.
	Retry *core.RetryPolicy

	// ClientWrapper, when non-nil, wraps each probe's transport before
	// the detector runs — a fault/test hook (e.g. to make one probe's
	// client panic and exercise quarantine). It must be deterministic to
	// preserve the sharding contract.
	ClientWrapper func(core.Client, *atlas.Probe) core.Client

	// Adversary selects the interceptor evasion ladder rung installed on
	// every interceptor in the world — CPE forwarders on intercepting
	// seats, ISP resolvers (normal and refusing), and the transit
	// resolvers (see dnsserver.Adversary). 0 keeps today's honest
	// interceptors.
	Adversary int

	// CertCheck wires the certificate-consistency oracle into every
	// detector: each round-1 location answer is compared against the
	// identity the operator's regional site presents over an
	// authenticated out-of-band channel (core.CertOracle).
	CertCheck bool

	// DriftRounds re-issues the location enumeration this many extra
	// times per probe, feeding the longitudinal drift signal.
	DriftRounds int

	// DisableMetrics turns the observability plane off for this run:
	// no registry is built and every instrumented site reduces to one
	// nil check. Exists for the metrics-overhead A/B measurement
	// (EXPERIMENTS.md); production runs leave it false.
	DisableMetrics bool

	// Encryption, when non-nil, turns on the encrypted-transport plane:
	// an Adoption fraction of probes upgrade their stub transport, and
	// every interceptor in the world treats the encrypted channel
	// according to Policy. Nil keeps the all-Do53 world.
	Encryption *Encryption
}

// Encryption parameterizes the DoT/DoH adoption sweep: how much of the
// fleet encrypts, with which client profile, and what the middleboxes
// do about it.
type Encryption struct {
	// Adoption is the fraction of probes whose stub resolver upgrades
	// to Transport. Per-probe adoption is a pure hash of (Seed, probe
	// ID), so it is identical on every shard and lane.
	Adoption float64
	// Transport is the upgraded probes' client mode.
	Transport core.TransportMode
	// Policy is how interception points (intercepting CPEs, ISP
	// middleboxes, transit interceptors) treat encrypted DNS flows.
	Policy dnsserver.EncryptedPolicy
}

// adopts reports whether a probe upgrades its transport under the
// spec's encryption model.
func (s Spec) adopts(probeID int) bool {
	e := s.Encryption
	if e == nil || e.Adoption <= 0 || !e.Transport.Encrypted() {
		return false
	}
	if e.Adoption >= 1 {
		return true
	}
	h := fnv.New64a()
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(s.Seed))
	binary.LittleEndian.PutUint64(b[8:], uint64(probeID))
	h.Write(b[:])
	// Top 53 bits give a uniform [0,1) with exact float64 semantics.
	return float64(h.Sum64()>>11)/float64(1<<53) < e.Adoption
}

// Shorthands for patterns.
var (
	cf = publicdns.Cloudflare
	gg = publicdns.Google
	q9 = publicdns.Quad9
	od = publicdns.OpenDNS
)

// PaperSpec reproduces the paper's pilot study.
func PaperSpec() Spec {
	return Spec{
		Seed:         20211102, // the conference's opening day
		TotalProbes:  10000,
		FullShare:    0.954,
		PartialShare: 0.016,
		PartialP:     0.75,
		V6Share:      0.387,
		Seats: []SeatGroup{
			// All-four patterns: 108 probes (Table 4's "All Intercepted").
			{Count: 40, Loc: LocCPE},
			{Count: 45, Loc: LocISP},
			{Count: 10, Loc: LocISP, Refuse: RefuseAll},
			{Count: 5, Loc: LocISP, Refuse: RefuseSubset},
			{Count: 5, Loc: LocISPHidden},
			{Count: 3, Loc: LocTransit},
			// Single-resolver patterns: Cloudflare and Google are
			// intercepted alone more often than Quad9/OpenDNS (§4.1.1).
			{Count: 3, Loc: LocCPE, Pattern: Pattern{cf}},
			{Count: 9, Loc: LocISP, Pattern: Pattern{cf}},
			{Count: 4, Loc: LocISPHidden, Pattern: Pattern{cf}},
			{Count: 2, Loc: LocTransit, Pattern: Pattern{cf}},
			{Count: 3, Loc: LocCPE, Pattern: Pattern{gg}},
			{Count: 6, Loc: LocISP, Pattern: Pattern{gg}},
			{Count: 2, Loc: LocISPHidden, Pattern: Pattern{gg}},
			{Count: 2, Loc: LocTransit, Pattern: Pattern{gg}},
			{Count: 2, Loc: LocISP, Pattern: Pattern{q9}},
			{Count: 1, Loc: LocISPHidden, Pattern: Pattern{q9}},
			{Count: 1, Loc: LocTransit, Pattern: Pattern{q9}},
			{Count: 2, Loc: LocISP, Pattern: Pattern{od}},
			{Count: 1, Loc: LocISPHidden, Pattern: Pattern{od}},
			{Count: 1, Loc: LocTransit, Pattern: Pattern{od}},
			// One-resolver-allowed patterns (§4.1.1's second family).
			{Count: 6, Loc: LocISP, Pattern: Pattern{gg, q9, od}},
			{Count: 2, Loc: LocISPHidden, Pattern: Pattern{gg, q9, od}},
			{Count: 2, Loc: LocTransit, Pattern: Pattern{gg, q9, od}},
			{Count: 6, Loc: LocISP, Pattern: Pattern{cf, q9, od}},
			{Count: 2, Loc: LocISPHidden, Pattern: Pattern{cf, q9, od}},
			{Count: 2, Loc: LocTransit, Pattern: Pattern{cf, q9, od}},
			{Count: 4, Loc: LocISP, Pattern: Pattern{cf, gg, od}},
			{Count: 2, Loc: LocISPHidden, Pattern: Pattern{cf, gg, od}},
			{Count: 1, Loc: LocTransit, Pattern: Pattern{cf, gg, od}},
			{Count: 4, Loc: LocISP, Pattern: Pattern{cf, gg, q9}},
			{Count: 2, Loc: LocISPHidden, Pattern: Pattern{cf, gg, q9}},
			{Count: 1, Loc: LocTransit, Pattern: Pattern{cf, gg, q9}},
			// Pair patterns.
			{Count: 3, Loc: LocCPE, Pattern: Pattern{cf, gg}},
			{Count: 4, Loc: LocISP, Pattern: Pattern{cf, gg}},
			{Count: 3, Loc: LocISP, Pattern: Pattern{cf, gg}, Refuse: RefuseAll},
			{Count: 3, Loc: LocISPHidden, Pattern: Pattern{cf, gg}},
			{Count: 2, Loc: LocTransit, Pattern: Pattern{cf, gg}},
			{Count: 8, Loc: LocISP, Pattern: Pattern{q9, od}},
			{Count: 5, Loc: LocISPHidden, Pattern: Pattern{q9, od}},
			{Count: 4, Loc: LocTransit, Pattern: Pattern{q9, od}},
			// v6-only seats: interception that touches no IPv4 address at
			// all — the 7 probes that make the distinct total 220.
			{Count: 4, Loc: LocISP, V4None: true, V6: Pattern{gg}},
			{Count: 3, Loc: LocISP, V4None: true, V6: Pattern{cf, gg}},
		},
		V6Patterns: expandPatterns([]struct {
			n   int
			pat Pattern
		}{
			{11, Pattern{q9, od}},
			{5, Pattern{cf, gg}},
			{3, Pattern{gg}},
			{3, Pattern{cf}},
		}),
		CPEPersonas: expandStrings([]struct {
			n int
			s string
		}{
			{8, "dnsmasq-2.78"}, // the XB6's XDNS build
			{10, "dnsmasq-2.85"},
			{5, "dnsmasq-2.80"},
			{8, "dnsmasq-pi-hole-2.87"},
			{4, "unbound 1.9.0"},
			{2, "unbound 1.13.1"},
			{2, "9.11.4-RedHat"},
			{1, "PowerDNS Recursor 4.1.11"},
			{1, "Q9-P-7.5"},
			{1, "9.16.15"},
			{1, "9.16.1-Debian"},
			{1, "Windows NS"},
			{1, "Microsoft"},
			{1, "new"},
			{1, "unknown"},
			{1, "none"},
			{1, "huuh?"},
		}),
		OrgSeatWeights: map[int]int{
			7922:  32, // Comcast — the top organization of Figure 3
			12389: 15, // Rostelecom
			9121:  12, // Turk Telekom
			3209:  11, // Vodafone DE
			12322: 10, // Free SAS
			3352:  9,  // Telefonica
			6830:  9,  // Liberty Global (DE)
			6327:  8,  // Shaw — §5 names it an XB6 deployer
			24560: 8,  // Airtel
			7713:  7,  // Telkom Indonesia
			8402:  7,  // Vimpelcom
			28573: 6,  // Claro BR
			1241:  6,  // OTE
			8708:  6,  // RCS & RDS
			25513: 6,  // MGTS
			17488: 5,  // Hathway
			8151:  5,  // Telmex
			3320:  4,  // Deutsche Telekom
			3215:  4,  // Orange
			2856:  3,  // BT
			3269:  3,  // Telecom Italia
			3301:  3,  // Telia
			1136:  3,  // KPN
			33915: 3,  // Ziggo
		},
	}
}

// firstProbeID is the ID planOrgs assigns the first planned probe.
// Probe IDs are contiguous from here, which is what makes shard ranks
// and lane windows computable arithmetically from an ID.
const firstProbeID = 1000

// Shard returns the spec restricted to shard k of total. The shard owns
// every probe whose ID falls on it round-robin, so seat probes (created
// first within each organization) spread evenly over shards. Building
// the sharded spec is byte-identical to the unsharded build for the
// probes the shard owns.
func (s Spec) Shard(k, total int) Spec {
	s.ShardIndex, s.ShardCount = k, total
	return s
}

// Lane returns the spec restricted to lane l of total within its shard
// window (see LaneIndex). Apply after Shard.
func (s Spec) Lane(l, total int) Spec {
	s.LaneIndex, s.LaneCount = l, total
	return s
}

// owns reports whether this spec's shard and lane instantiate the probe.
func (s Spec) owns(probeID int) bool {
	if s.ShardCount > 1 && probeID%s.ShardCount != s.ShardIndex {
		return false
	}
	if s.LaneCount > 1 {
		r := s.shardRank(probeID)
		start, end := s.laneWindow()
		if r < start || r >= end {
			return false
		}
	}
	return true
}

// partitioned reports whether this spec builds only part of the probe
// population (sharded, laned, or both) — i.e. whether stub probes exist.
func (s Spec) partitioned() bool {
	return s.ShardCount > 1 || s.LaneCount > 1
}

// shardResidue is the residue class of this shard's owned IDs relative
// to firstProbeID: the j-th planned probe (ID firstProbeID+j) belongs to
// the shard when j % ShardCount == shardResidue.
func (s Spec) shardResidue() int {
	K := s.ShardCount
	return ((s.ShardIndex-firstProbeID)%K + K) % K
}

// shardRank is an owned probe ID's zero-based position in the shard's
// owned sequence. With one shard it is simply the ID's offset from
// firstProbeID.
func (s Spec) shardRank(probeID int) int {
	if s.ShardCount <= 1 {
		return probeID - firstProbeID
	}
	return (probeID - firstProbeID - s.shardResidue()) / s.ShardCount
}

// shardOwnedCount is how many of TotalProbes this shard owns.
func (s Spec) shardOwnedCount() int {
	if s.ShardCount <= 1 {
		return s.TotalProbes
	}
	n := s.TotalProbes - s.shardResidue()
	if n <= 0 {
		return 0
	}
	return (n + s.ShardCount - 1) / s.ShardCount
}

// laneWindow is this lane's half-open window [start, end) of shard
// ranks. Lane windows tile the shard's owned sequence contiguously.
func (s Spec) laneWindow() (start, end int) {
	n := s.shardOwnedCount()
	if s.LaneCount <= 1 {
		return 0, n
	}
	return s.LaneIndex * n / s.LaneCount, (s.LaneIndex + 1) * n / s.LaneCount
}

// TotalSeats sums the quota table.
func (s Spec) TotalSeats() int {
	t := 0
	for _, g := range s.Seats {
		t += g.Count
	}
	return t
}

// Scale returns a proportionally smaller (or larger) spec: probe count
// and every quota are scaled by f using round-half-up, keeping at least
// one seat per nonempty group. Tests use small scales for speed.
func (s Spec) Scale(f float64) Spec {
	out := s
	out.TotalProbes = int(math.Round(float64(s.TotalProbes) * f))
	out.Seats = make([]SeatGroup, 0, len(s.Seats))
	for _, g := range s.Seats {
		n := int(math.Round(float64(g.Count) * f))
		if n == 0 && g.Count > 0 {
			n = 1
		}
		g.Count = n
		out.Seats = append(out.Seats, g)
	}
	scaleList := func(n int) int {
		m := int(math.Round(float64(n) * f))
		if m == 0 && n > 0 {
			m = 1
		}
		return m
	}
	out.V6Patterns = s.V6Patterns[:min(len(s.V6Patterns), scaleList(len(s.V6Patterns)))]
	// Personas must cover the scaled CPE seat count; repeat if short.
	cpeSeats := 0
	for _, g := range out.Seats {
		if g.Loc == LocCPE {
			cpeSeats += g.Count
		}
	}
	personas := make([]string, 0, cpeSeats)
	for i := 0; i < cpeSeats; i++ {
		personas = append(personas, s.CPEPersonas[i%len(s.CPEPersonas)])
	}
	out.CPEPersonas = personas
	return out
}

// expandPatterns flattens {n, pattern} rows.
func expandPatterns(rows []struct {
	n   int
	pat Pattern
}) []Pattern {
	var out []Pattern
	for _, r := range rows {
		for i := 0; i < r.n; i++ {
			out = append(out, r.pat)
		}
	}
	return out
}

// expandStrings flattens {n, string} rows.
func expandStrings(rows []struct {
	n int
	s string
}) []string {
	var out []string
	for _, r := range rows {
		for i := 0; i < r.n; i++ {
			out = append(out, r.s)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
