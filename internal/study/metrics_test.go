package study_test

import (
	"runtime"
	"testing"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/study"
)

// stableJSON runs the study at a worker count and renders the
// deterministic (Stable-only) snapshot.
func stableJSON(t *testing.T, spec study.Spec, workers int) string {
	t.Helper()
	res := study.RunSharded(spec, study.EngineOptions{Workers: workers})
	if len(res.Errors) != 0 {
		t.Fatalf("workers=%d shard errors: %v", workers, res.Errors)
	}
	return string(res.MetricsSnapshot(false).JSON())
}

// TestMetricsSnapshotShardInvariant is the tentpole's merge-semantics
// contract: the Stable metric snapshot is byte-identical whether the
// study runs serially or sharded over K workers, with and without a
// fault profile. Runs under -race in CI, which also exercises the
// concurrent shard registries.
func TestMetricsSnapshotShardInvariant(t *testing.T) {
	cases := []struct {
		name string
		spec func() study.Spec
	}{
		{"clean", func() study.Spec { return study.PaperSpec().Scale(0.02) }},
		{"faulted", func() study.Spec {
			spec := study.PaperSpec().Scale(0.02)
			fp := netsim.PresetFault(0.6, spec.Seed+9000)
			spec.Fault = &fp
			spec.Retry = &core.RetryPolicy{MaxAttempts: 3}
			return spec
		}},
	}
	workerCounts := []int{1, 3, runtime.GOMAXPROCS(0)}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := stableJSON(t, tc.spec(), workerCounts[0])
			if want == "" || want == "{\"metrics\":null}\n" {
				t.Fatalf("serial snapshot is empty:\n%s", want)
			}
			for _, workers := range workerCounts[1:] {
				if got := stableJSON(t, tc.spec(), workers); got != want {
					t.Errorf("workers=%d snapshot differs from serial:\n--- serial ---\n%s--- workers=%d ---\n%s",
						workers, want, workers, got)
				}
			}
		})
	}
}

// TestMetricsSnapshotPopulated sanity-checks that the plane actually
// measured something in each instrumented layer — a snapshot of zeros
// would be vacuously deterministic.
func TestMetricsSnapshotPopulated(t *testing.T) {
	spec := study.PaperSpec().Scale(0.02)
	res := study.RunSharded(spec, study.EngineOptions{Workers: 2})
	snap := res.MetricsSnapshot(true)
	values := make(map[string]int64, len(snap.Metrics))
	for _, m := range snap.Metrics {
		values[m.Name] = m.Value
	}
	for _, name := range []string{
		"netsim.client_hops_forwarded",
		"core.queries",
		"core.attempts",
		"core.outcome_answers",
		"core.step_queries.location",
		"dnsserver.forwarder_queries",
		"study.probes",
		"study.probes_measured",
	} {
		if values[name] <= 0 {
			t.Errorf("%s = %d, want > 0", name, values[name])
		}
	}
	if values["study.probes"] != int64(spec.TotalProbes) {
		t.Errorf("study.probes = %d, want %d", values["study.probes"], spec.TotalProbes)
	}
	// The RTT histogram is Diagnostic: present in the full snapshot,
	// absent from the deterministic one.
	if _, ok := values["core.rtt_ms"]; !ok {
		t.Error("full snapshot lacks core.rtt_ms")
	}
	for _, m := range res.MetricsSnapshot(false).Metrics {
		if m.Diagnostic {
			t.Errorf("stable snapshot leaked diagnostic metric %s", m.Name)
		}
	}
}

// TestDisableMetrics checks the off switch: no registry, empty
// snapshot, run still completes.
func TestDisableMetrics(t *testing.T) {
	spec := study.PaperSpec().Scale(0.01)
	spec.DisableMetrics = true
	res := study.RunSharded(spec, study.EngineOptions{Workers: 2})
	if res.Metrics != nil {
		t.Error("DisableMetrics run still built a registry")
	}
	if snap := res.MetricsSnapshot(true); len(snap.Metrics) != 0 {
		t.Errorf("disabled snapshot has %d metrics", len(snap.Metrics))
	}
	if len(res.Records) != spec.TotalProbes {
		t.Errorf("records = %d, want %d", len(res.Records), spec.TotalProbes)
	}
}

// TestReportMetricsAlwaysPopulated: the per-report tally does not
// depend on the registry plane being wired.
func TestReportMetricsAlwaysPopulated(t *testing.T) {
	spec := study.PaperSpec().Scale(0.01)
	spec.DisableMetrics = true
	res := study.RunSharded(spec, study.EngineOptions{Workers: 1})
	for _, rec := range res.Records {
		if rec.Report == nil {
			continue
		}
		m := rec.Report.Metrics
		if m.Queries == 0 || m.Attempts < m.Queries {
			t.Fatalf("probe %d Report.Metrics = %+v, want queries > 0 and attempts >= queries",
				rec.Probe.ID, m)
		}
		return
	}
	t.Fatal("no measured probe found")
}
