package study_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/dnswatch/dnsloc/internal/analysis"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/study"
)

// renderAll rasterizes every table and figure the study feeds, so the
// determinism tests compare exactly what the paper artifacts contain.
func renderAll(res *study.Results) string {
	t4 := analysis.BuildTable4(res)
	return analysis.FormatTable4(t4) + "\n" +
		analysis.CSVTable4(t4) + "\n" +
		analysis.FormatTable5(analysis.BuildTable5(res)) + "\n" +
		analysis.FormatFigure3(analysis.BuildFigure3(res, 15)) + "\n" +
		analysis.FormatFigure4(analysis.BuildFigure4(res, 15)) + "\n" +
		analysis.FormatAccuracy(analysis.BuildAccuracy(res))
}

// respondedTotals counts per-experiment availability — the Responded
// sets feed Table 4's "Total" columns and depend on the platform RNG
// stream, so they prove the pre-draw replays it faithfully.
func respondedTotals(res *study.Results) map[study.ExpKey]int {
	out := make(map[study.ExpKey]int)
	for _, rec := range res.Records {
		for k, ok := range rec.Responded {
			if ok {
				out[k]++
			}
		}
	}
	return out
}

// TestParallelBuildMatchesSerial pins the parallel world build: a
// world populated with many org-build workers renders byte-identical
// output to one populated serially. GOMAXPROCS is not part of the
// determinism surface, so the worker counts are forced explicitly —
// this is what exercises the parallel path on single-core CI.
func TestParallelBuildMatchesSerial(t *testing.T) {
	spec := study.PaperSpec().Scale(0.05)

	serialTpl := study.NewWorldTemplate(spec)
	serialTpl.BuildWorkers = 1
	want := renderAll(study.Run(serialTpl.Build(spec)))

	for _, workers := range []int{4, 16} {
		tpl := study.NewWorldTemplate(spec)
		tpl.BuildWorkers = workers
		if got := renderAll(study.Run(tpl.Build(spec))); got != want {
			t.Errorf("BuildWorkers=%d world diverges from serial build:\n%s\n---\n%s", workers, got, want)
		}
	}

	// Sharded worlds built in parallel must agree with the serial world
	// too (stubs, address allocators, and RNG replay all line up).
	tpl := study.NewWorldTemplate(spec)
	tpl.BuildWorkers = 8
	var merged []*study.ProbeRecord
	for k := 0; k < 3; k++ {
		merged = append(merged, study.Run(tpl.Build(spec.Shard(k, 3))).Records...)
	}
	sharded := &study.Results{World: serialTpl.Build(spec), Records: merged}
	sort.Slice(sharded.Records, func(i, j int) bool {
		return sharded.Records[i].Probe.ID < sharded.Records[j].Probe.ID
	})
	if got := renderAll(sharded); got != want {
		t.Error("parallel-built shard worlds diverge from the serial build")
	}
}

// TestShardedEngineDeterministic runs the study serially and at several
// worker counts and asserts every rendered table and figure — plus the
// raw availability totals — is byte-identical.
func TestShardedEngineDeterministic(t *testing.T) {
	spec := study.PaperSpec().Scale(0.05)

	serial := study.RunSharded(spec, study.EngineOptions{Workers: 1})
	wantRender := renderAll(serial)
	wantTotals := respondedTotals(serial)

	// The plain serial Run must agree with the workers=1 engine.
	direct := study.Run(study.BuildWorld(spec))
	if got := renderAll(direct); got != wantRender {
		t.Fatalf("workers=1 engine output differs from direct serial Run:\n%s\n---\n%s", got, wantRender)
	}

	for _, workers := range []int{2, 3, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			res := study.RunSharded(spec, study.EngineOptions{Workers: workers})
			if len(res.Records) != len(serial.Records) {
				t.Fatalf("records = %d, want %d", len(res.Records), len(serial.Records))
			}
			for i, rec := range res.Records {
				if rec.Probe.ID != serial.Records[i].Probe.ID {
					t.Fatalf("record %d: probe %d, want %d (merge order broken)",
						i, rec.Probe.ID, serial.Records[i].Probe.ID)
				}
			}
			if got := renderAll(res); got != wantRender {
				t.Errorf("rendered artifacts differ at workers=%d:\n%s\n--- want ---\n%s", workers, got, wantRender)
			}
			totals := respondedTotals(res)
			if len(totals) != len(wantTotals) {
				t.Fatalf("responded experiments = %d, want %d", len(totals), len(wantTotals))
			}
			for k, n := range wantTotals {
				if totals[k] != n {
					t.Errorf("responded[%s/%v] = %d, want %d", k.Resolver, k.Family, totals[k], n)
				}
			}
		})
	}
}

// TestShardedProgressAndRoster checks the per-shard progress callback
// fires once per shard and the shards partition the fleet exactly.
func TestShardedProgressAndRoster(t *testing.T) {
	spec := study.PaperSpec().Scale(0.02)
	const workers = 4
	perShard := make(map[int]int)
	res := study.RunSharded(spec, study.EngineOptions{
		Workers: workers,
		Progress: func(shard, total, probes int, _ time.Duration) {
			if total != workers {
				t.Errorf("progress total = %d, want %d", total, workers)
			}
			perShard[shard] += probes
		},
	})
	calls, sum := 0, 0
	for _, n := range perShard {
		calls++
		sum += n
	}
	if calls != workers {
		t.Errorf("progress calls = %d, want %d", calls, workers)
	}
	if sum != len(res.Records) {
		t.Errorf("shard probes sum = %d, want %d", sum, len(res.Records))
	}
	if len(res.Records) != spec.TotalProbes {
		t.Errorf("records = %d, want %d", len(res.Records), spec.TotalProbes)
	}
	seen := make(map[int]bool)
	for _, rec := range res.Records {
		if seen[rec.Probe.ID] {
			t.Fatalf("probe %d appears in two shards", rec.Probe.ID)
		}
		seen[rec.Probe.ID] = true
		if rec.Net == nil || rec.Probe.Host == nil {
			t.Fatalf("probe %d: record missing simulation state", rec.Probe.ID)
		}
	}
}

// TestShardedVerdictsMatchSerial compares every per-probe verdict and
// intercepted set between the serial and the 8-way sharded run — a
// stronger property than the rendered artifacts alone.
func TestShardedVerdictsMatchSerial(t *testing.T) {
	spec := study.PaperSpec().Scale(0.05)
	serial := study.RunSharded(spec, study.EngineOptions{Workers: 1})
	sharded := study.RunSharded(spec, study.EngineOptions{Workers: 8})
	if len(serial.Records) != len(sharded.Records) {
		t.Fatalf("records: %d vs %d", len(serial.Records), len(sharded.Records))
	}
	for i := range serial.Records {
		a, b := serial.Records[i], sharded.Records[i]
		if (a.Report == nil) != (b.Report == nil) {
			t.Errorf("probe %d: responded mismatch", a.Probe.ID)
			continue
		}
		if a.Report == nil {
			continue
		}
		if a.Report.Verdict != b.Report.Verdict {
			t.Errorf("probe %d: verdict %s vs %s", a.Probe.ID, a.Report.Verdict, b.Report.Verdict)
		}
		if a.Report.CPEString != b.Report.CPEString {
			t.Errorf("probe %d: cpe string %q vs %q", a.Probe.ID, a.Report.CPEString, b.Report.CPEString)
		}
		if !sameIDs(a.Report.InterceptedV4, b.Report.InterceptedV4) ||
			!sameIDs(a.Report.InterceptedV6, b.Report.InterceptedV6) {
			t.Errorf("probe %d: intercepted sets differ", a.Probe.ID)
		}
		for _, f := range []core.Family{core.V4, core.V6} {
			for _, id := range publicdns.All {
				k := study.ExpKey{Resolver: id, Family: f}
				if a.Responded[k] != b.Responded[k] {
					t.Errorf("probe %d: responded[%s/%v] %v vs %v",
						a.Probe.ID, id, f, a.Responded[k], b.Responded[k])
				}
			}
		}
	}
}

func sameIDs(a, b []publicdns.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
