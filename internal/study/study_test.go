package study_test

import (
	"reflect"
	"testing"

	"github.com/dnswatch/dnsloc/internal/analysis"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/study"
)

func TestSpecQuotasMatchPaper(t *testing.T) {
	spec := study.PaperSpec()
	if got := spec.TotalSeats(); got != 220 {
		t.Errorf("total seats = %d, want 220", got)
	}
	// All-four v4 seats = 108 (Table 4's "All Intercepted" row).
	all4, cpeSeats := 0, 0
	perResolver := map[publicdns.ID]int{}
	for _, g := range spec.Seats {
		if g.V4None {
			continue
		}
		ids := g.Pattern
		if ids == nil {
			all4 += g.Count
			ids = study.Pattern(publicdns.All)
		}
		for _, id := range ids {
			perResolver[id] += g.Count
		}
		if g.Loc == study.LocCPE {
			cpeSeats += g.Count
		}
	}
	if all4 != 108 {
		t.Errorf("all-four seats = %d, want 108", all4)
	}
	if cpeSeats != 49 {
		t.Errorf("CPE seats = %d, want 49", cpeSeats)
	}
	want := map[publicdns.ID]int{
		publicdns.Cloudflare: 165,
		publicdns.Google:     160,
		publicdns.Quad9:      156,
		publicdns.OpenDNS:    156,
	}
	for id, n := range want {
		if perResolver[id] != n {
			t.Errorf("%s v4 seats = %d, want %d", id, perResolver[id], n)
		}
	}
	if len(spec.CPEPersonas) != 49 {
		t.Errorf("CPE personas = %d, want 49", len(spec.CPEPersonas))
	}
	// v6 membership: Table 4's v6 column (11/15/11/11).
	v6 := map[publicdns.ID]int{}
	for _, g := range spec.Seats {
		for _, id := range g.V6 {
			v6[id] += g.Count
		}
	}
	for _, p := range spec.V6Patterns {
		for _, id := range p {
			v6[id]++
		}
	}
	want6 := map[publicdns.ID]int{
		publicdns.Cloudflare: 11,
		publicdns.Google:     15,
		publicdns.Quad9:      11,
		publicdns.OpenDNS:    11,
	}
	for id, n := range want6 {
		if v6[id] != n {
			t.Errorf("%s v6 seats = %d, want %d", id, v6[id], n)
		}
	}
}

func TestExampleScenarioMatchesPaperShape(t *testing.T) {
	rows := study.ExampleScenario()
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	r1053, r11992, r21823 := rows[0], rows[1], rows[2]

	// Probe 1053: expected responses, not intercepted, never step-2'd.
	if r1053.Verdict != core.VerdictNotIntercepted {
		t.Errorf("1053 verdict = %s", r1053.Verdict)
	}
	if r1053.LocCloudflare != "FRA" {
		t.Errorf("1053 cloudflare = %q, want an airport code", r1053.LocCloudflare)
	}
	if r1053.VBCPE != "-" || r1053.VBCloudflare != "-" {
		t.Errorf("1053 version.bind rows = %q/%q, want dashes", r1053.VBCPE, r1053.VBCloudflare)
	}

	// Probe 11992: intercepted in its ISP; NOTIMP from the alternate
	// resolver, NXDOMAIN from its own CPE — mismatched, so not the CPE.
	if r11992.Verdict != core.VerdictISP {
		t.Errorf("11992 verdict = %s", r11992.Verdict)
	}
	if r11992.VBCloudflare != "NOTIMP" || r11992.VBGoogle != "NOTIMP" {
		t.Errorf("11992 resolver version.bind = %q/%q, want NOTIMP", r11992.VBCloudflare, r11992.VBGoogle)
	}
	if r11992.VBCPE != "NXDOMAIN" {
		t.Errorf("11992 CPE version.bind = %q, want NXDOMAIN", r11992.VBCPE)
	}
	if r11992.LocGoogle == "" || r11992.LocGoogle == "timeout" {
		t.Errorf("11992 google loc = %q, want the alternate resolver's address", r11992.LocGoogle)
	}

	// Probe 21823: CPE interceptor; all version.bind strings identical.
	if r21823.Verdict != core.VerdictCPE {
		t.Errorf("21823 verdict = %s", r21823.Verdict)
	}
	if r21823.LocCloudflare != "routing.v2.pw" {
		t.Errorf("21823 cloudflare loc = %q", r21823.LocCloudflare)
	}
	for _, s := range []string{r21823.VBCloudflare, r21823.VBGoogle, r21823.VBCPE} {
		if s != "unbound 1.9.0" {
			t.Errorf("21823 version.bind = %q, want unbound 1.9.0", s)
		}
	}
}

func TestSmallStudyEndToEnd(t *testing.T) {
	spec := study.PaperSpec().Scale(0.05)
	w := study.BuildWorld(spec)
	res := study.Run(w)

	if got := w.Platform.Len(); got != spec.TotalProbes {
		t.Fatalf("built %d probes, want %d", got, spec.TotalProbes)
	}

	acc := analysis.BuildAccuracy(res)
	if acc.FalsePositives != 0 {
		t.Errorf("false positives = %d, want 0 (clean probes flagged)", acc.FalsePositives)
	}
	if acc.FalseNegatives != 0 {
		t.Errorf("false negatives = %d, want 0 (seats are fully available)", acc.FalseNegatives)
	}
	if acc.Mislocated != 0 {
		t.Errorf("mislocated = %d, want 0 in this spec", acc.Mislocated)
	}
	if acc.TruePositives == 0 {
		t.Fatal("no interception detected at all")
	}

	t4 := analysis.BuildTable4(res)
	if t4.DistinctIntercepted != acc.TruePositives {
		t.Errorf("distinct intercepted %d != true positives %d", t4.DistinctIntercepted, acc.TruePositives)
	}
	if t4.AllInterceptedV6 != 0 {
		t.Errorf("all-four v6 = %d, want 0", t4.AllInterceptedV6)
	}

	t5 := analysis.BuildTable5(res)
	cpeTruth := 0
	for _, rec := range res.Records {
		if rec.Probe.Truth.Location == "cpe" {
			cpeTruth++
		}
	}
	if t5.CPETotal != cpeTruth {
		t.Errorf("CPE-attributed = %d, ground truth CPE = %d", t5.CPETotal, cpeTruth)
	}

	f4 := analysis.BuildFigure4(res, 15)
	if f4.CPE != t5.CPETotal {
		t.Errorf("figure4 CPE %d != table5 total %d", f4.CPE, t5.CPETotal)
	}
	if f4.CPE+f4.ISP+f4.Unknown != t4.DistinctIntercepted {
		t.Errorf("figure4 totals %d+%d+%d != %d", f4.CPE, f4.ISP, f4.Unknown, t4.DistinctIntercepted)
	}

	f3 := analysis.BuildFigure3(res, 15)
	sum := 0
	for _, row := range f3.Rows {
		sum += row.Total
		if row.Transparent+row.Modified+row.Both != row.Total {
			t.Errorf("figure3 row %s does not add up: %+v", row.Org, row)
		}
	}
	if sum == 0 {
		t.Error("figure3 empty")
	}
}

func TestStudyDeterminism(t *testing.T) {
	spec := study.PaperSpec().Scale(0.02)
	a := analysis.BuildTable4(study.Run(study.BuildWorld(spec)))
	b := analysis.BuildTable4(study.Run(study.BuildWorld(spec)))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two runs differ:\n%+v\n%+v", a, b)
	}
}
