package study

import (
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// scriptedSink writes one JSONL line per Append straight to the file
// (no buffering) and fails on scripted global append indices — torn
// (a partial line lands, then EIO) or clean (nothing lands).
type scriptedSink struct {
	f     *os.File
	calls *int
	torn  map[int]bool
	fail  map[int]error
}

func (s *scriptedSink) Append(e ProbeExport) error {
	i := *s.calls
	*s.calls++
	line := appendExportJSONLine(nil, &e)
	if s.torn[i] {
		s.f.Write(line[:len(line)/2]) //nolint:errcheck
		return &os.PathError{Op: "write", Path: s.f.Name(), Err: syscall.EIO}
	}
	if err := s.fail[i]; err != nil {
		return err
	}
	_, err := s.f.Write(line)
	return err
}

func (s *scriptedSink) Flush() error { return nil }
func (s *scriptedSink) Close() error { return s.f.Close() }

func retryTestExports(n int) []ProbeExport {
	out := make([]ProbeExport, n)
	for i := range out {
		out[i] = ProbeExport{
			ProbeID: i, Country: "nl", ASN: 3320, Org: "org-a",
			Responded: true, Verdict: "clean",
			InterceptedV4: []string{"resolver-a", "resolver-b"},
			TruthLocation: "none",
		}
	}
	return out
}

func wantJSONL(exports []ProbeExport) string {
	var blob []byte
	for i := range exports {
		blob = appendExportJSONLine(blob, &exports[i])
	}
	return string(blob)
}

func newScriptedRetrySink(t *testing.T, path string, torn map[int]bool, fail map[int]error) (*RetrySink, *int) {
	t.Helper()
	calls := new(int)
	open := func(bool) (RecordSink, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return &scriptedSink{f: f, calls: calls, torn: torn, fail: fail}, nil
	}
	s, err := NewRetrySink(path, false, 0, SinkRetryPolicy{Backoff: 10 * time.Microsecond}, open)
	if err != nil {
		t.Fatal(err)
	}
	return s, calls
}

// TestRetrySinkHealsTornWrite: a torn append (partial line on disk,
// EIO to the caller) heals transparently — the partial line is
// repaired away, the row replayed — and the finished file is exactly
// the undisturbed encoding.
func TestRetrySinkHealsTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.jsonl")
	exports := retryTestExports(8)
	// Appends 2 and 5 tear; the replays (which consume later call
	// indices) succeed.
	s, _ := newScriptedRetrySink(t, path, map[int]bool{2: true, 5: true}, nil)
	for _, e := range exports {
		if err := s.Append(e); err != nil {
			t.Fatalf("Append returned %v despite healing", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != wantJSONL(exports) {
		t.Errorf("healed file diverges from undisturbed encoding (%d vs %d bytes)",
			len(blob), len(wantJSONL(exports)))
	}
	st := s.SinkStats()
	if st.Retries == 0 {
		t.Error("healing happened but Retries == 0")
	}
	if st.Degraded {
		t.Error("transient faults must not degrade the sink")
	}
}

// TestRetrySinkReplaysAfterFlushCycle: rows made durable by a Flush are
// never replayed; only the pending tail is.
func TestRetrySinkReplaysAfterFlushCycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.jsonl")
	exports := retryTestExports(6)
	s, _ := newScriptedRetrySink(t, path, map[int]bool{4: true}, nil)
	for i, e := range exports {
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	blob, _ := os.ReadFile(path)
	if string(blob) != wantJSONL(exports) {
		t.Errorf("file after flush+heal diverges (%d vs %d bytes)", len(blob), len(wantJSONL(exports)))
	}
}

// TestRetrySinkENOSPCDegrades: a full disk drops the sink permanently
// — Append keeps succeeding as a no-op so the shard's accumulator
// still folds — and the degradation is visible in SinkStats.
func TestRetrySinkENOSPCDegrades(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.jsonl")
	exports := retryTestExports(8)
	enospc := &os.PathError{Op: "write", Path: path, Err: syscall.ENOSPC}
	s, calls := newScriptedRetrySink(t, path, nil, map[int]error{3: enospc})
	for _, e := range exports {
		if err := s.Append(e); err != nil {
			t.Fatalf("Append after ENOSPC returned %v, want nil (degraded)", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.SinkStats()
	if !st.Degraded {
		t.Fatal("ENOSPC did not degrade the sink")
	}
	if *calls != 4 {
		t.Errorf("inner sink saw %d appends, want 4 (degraded sink must stop writing)", *calls)
	}
	blob, _ := os.ReadFile(path)
	if string(blob) != wantJSONL(exports[:3]) {
		t.Errorf("degraded sink file holds %d bytes, want the 3 rows before ENOSPC", len(blob))
	}
}

// TestRetrySinkUnhealable: when the file holds fewer rows than were
// durable, healing is impossible and the error escalates (to the shard
// supervisor in the engine).
func TestRetrySinkUnhealable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.jsonl")
	if err := os.WriteFile(path, []byte("row\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	calls := new(int)
	eio := &os.PathError{Op: "write", Path: path, Err: syscall.EIO}
	open := func(bool) (RecordSink, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return &scriptedSink{f: f, calls: calls, fail: map[int]error{0: eio}}, nil
	}
	// durable claims 5 rows; the file has 1.
	s, err := NewRetrySink(path, false, 5, SinkRetryPolicy{Backoff: 10 * time.Microsecond}, open)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(retryTestExports(1)[0]); err == nil {
		t.Fatal("heal invented rows the disk does not have")
	}
}

// TestRepairSinkTail pins the tail-repair contract for JSONL and CSV
// shapes.
func TestRepairSinkTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	write := func(s string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	read := func() string {
		t.Helper()
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}

	write("a\nb\ntorn-partial")
	rows, hasHeader, err := RepairSinkTail(path, false)
	if err != nil || rows != 2 || hasHeader {
		t.Fatalf("repair = (%d, %v, %v), want (2, false, nil)", rows, hasHeader, err)
	}
	if got := read(); got != "a\nb\n" {
		t.Errorf("repaired file = %q", got)
	}

	write("hdr\nr1\nr2,torn")
	rows, hasHeader, err = RepairSinkTail(path, true)
	if err != nil || rows != 1 || !hasHeader {
		t.Fatalf("CSV repair = (%d, %v, %v), want (1, true, nil)", rows, hasHeader, err)
	}

	write("only-a-torn-fragment")
	rows, hasHeader, err = RepairSinkTail(path, true)
	if err != nil || rows != 0 || hasHeader {
		t.Fatalf("fragment repair = (%d, %v, %v), want (0, false, nil)", rows, hasHeader, err)
	}
	if got := read(); got != "" {
		t.Errorf("fragment-only file not emptied: %q", got)
	}

	rows, hasHeader, err = RepairSinkTail(filepath.Join(dir, "missing"), false)
	if err != nil || rows != 0 || hasHeader {
		t.Errorf("missing file repair = (%d, %v, %v), want (0, false, nil)", rows, hasHeader, err)
	}
}

// TestCloneExportDetachesSlices: the pending log's deep copies must
// survive the engine overwriting its reused export buffer.
func TestCloneExportDetachesSlices(t *testing.T) {
	backing := []string{"resolver-a", "resolver-b"}
	e := ProbeExport{ProbeID: 1, InterceptedV4: backing[:2]}
	c := cloneExport(e)
	backing[0] = "overwritten"
	if c.InterceptedV4[0] != "resolver-a" {
		t.Error("cloneExport shares the caller's backing array")
	}
	if cloneExport(ProbeExport{}).InterceptedV4 != nil {
		t.Error("cloneExport materialized an empty slice (breaks omitempty identity)")
	}
}
