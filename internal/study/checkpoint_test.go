package study

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"github.com/dnswatch/dnsloc/internal/faultfs"
)

// ckAcc is a minimal Accumulator for checkpoint-layer tests.
type ckAcc struct {
	State string `json:"state"`
}

func (a *ckAcc) Fold(*ProbeRecord)             {}
func (a *ckAcc) Merge(Accumulator) error       { return nil }
func (a *ckAcc) MarshalState() ([]byte, error) { return json.Marshal(a) }
func (a *ckAcc) LoadState(data []byte) error   { return json.Unmarshal(data, a) }

func testStore(t *testing.T, fsys faultfs.FS, dir string) *ckStore {
	t.Helper()
	return newCkStore(fsys, dir, 0, 2, "test-fingerprint")
}

// TestCheckpointStoreRoundTrip: successive stores alternate the A/B
// slots with increasing generations, and load returns the newest.
func TestCheckpointStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := testStore(t, nil, dir)
	if err := st.store(10, &ckAcc{State: "ten"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.store(20, &ckAcc{State: "twenty"}, nil); err != nil {
		t.Fatal(err)
	}
	slots := CheckpointSlotPaths(dir, 0, 2)
	for _, slot := range slots {
		if _, err := os.Stat(slot); err != nil {
			t.Errorf("two stores did not fill both slots: %s missing", slot)
		}
	}
	ld := testStore(t, nil, dir)
	ck, class, detail := ld.load()
	if class != ckClean || detail != "" {
		t.Fatalf("load class %v (%q), want clean", class, detail)
	}
	if ck.Cursor != 20 || ck.Generation != 2 {
		t.Errorf("loaded cursor=%d gen=%d, want 20/2", ck.Cursor, ck.Generation)
	}
	var acc ckAcc
	if err := acc.LoadState(ck.Acc); err != nil || acc.State != "twenty" {
		t.Errorf("loaded state %q (%v), want twenty", acc.State, err)
	}
	// No temp files survive a clean store.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Errorf("temp files left behind: %v", tmps)
	}
}

// TestCheckpointFallbackToOlderGeneration: rotting the newest slot must
// fall back to the older generation, classified and never fatal.
func TestCheckpointFallbackToOlderGeneration(t *testing.T) {
	dir := t.TempDir()
	st := testStore(t, nil, dir)
	for i, cursor := range []int{10, 20} {
		if err := st.store(cursor, &ckAcc{State: "s"}, nil); err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
	}
	// Generation 2 landed in slot B (second store); rot it.
	slots := CheckpointSlotPaths(dir, 0, 2)
	if err := faultfs.FlipBit(slots[1], 123); err != nil {
		t.Fatal(err)
	}
	ck, class, detail := testStore(t, nil, dir).load()
	if class != ckFallback {
		t.Fatalf("load class %v (%q), want fallback", class, detail)
	}
	if ck == nil || ck.Cursor != 10 || ck.Generation != 1 {
		t.Fatalf("fallback loaded %+v, want cursor 10 gen 1", ck)
	}
	if detail == "" {
		t.Error("fallback produced no detail for the warning log")
	}
}

// TestCheckpointAllGenerationsCorrupt: when every slot is rotten the
// shard restarts from zero — classified, not fatal.
func TestCheckpointAllGenerationsCorrupt(t *testing.T) {
	dir := t.TempDir()
	st := testStore(t, nil, dir)
	if err := st.store(10, &ckAcc{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.store(20, &ckAcc{}, nil); err != nil {
		t.Fatal(err)
	}
	for _, slot := range CheckpointSlotPaths(dir, 0, 2) {
		if err := faultfs.FlipBit(slot, 99); err != nil {
			t.Fatal(err)
		}
	}
	ck, class, detail := testStore(t, nil, dir).load()
	if ck != nil || class != ckAllCorrupt {
		t.Fatalf("load = (%+v, %v), want (nil, all-corrupt)", ck, class)
	}
	if detail == "" {
		t.Error("all-corrupt produced no detail")
	}
}

// TestCheckpointForeignFingerprint: intact checkpoints from a different
// run shape are refused but recoverable.
func TestCheckpointForeignFingerprint(t *testing.T) {
	dir := t.TempDir()
	st := testStore(t, nil, dir)
	if err := st.store(10, &ckAcc{}, nil); err != nil {
		t.Fatal(err)
	}
	other := newCkStore(nil, dir, 0, 2, "different-fingerprint")
	ck, class, detail := other.load()
	if ck != nil || class != ckForeign {
		t.Fatalf("load = (%+v, %v), want (nil, foreign)", ck, class)
	}
	if detail == "" {
		t.Error("foreign checkpoint produced no detail")
	}
}

// TestCheckpointLegacyCompat: a pre-A/B single-file checkpoint (raw
// payload, no CRC envelope) still resumes, as a generation-0 candidate
// that newer slot generations outrank.
func TestCheckpointLegacyCompat(t *testing.T) {
	dir := t.TempDir()
	legacy := shardCheckpoint{
		Version:     checkpointVersion,
		Fingerprint: "test-fingerprint",
		Cursor:      7,
		Acc:         json.RawMessage(`{"state":"legacy"}`),
	}
	blob, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(CheckpointPath(dir, 0, 2), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	st := testStore(t, nil, dir)
	ck, class, _ := st.load()
	if class != ckClean || ck == nil || ck.Cursor != 7 {
		t.Fatalf("legacy load = (%+v, %v), want cursor 7 clean", ck, class)
	}
	// A newer slot generation outranks the legacy file.
	if err := st.store(30, &ckAcc{}, nil); err != nil {
		t.Fatal(err)
	}
	ck, class, _ = testStore(t, nil, dir).load()
	if class != ckClean || ck.Cursor != 30 {
		t.Fatalf("post-store load = (cursor %d, %v), want 30 clean", ck.Cursor, class)
	}
}

// TestCheckpointStoreFailureKeepsPrevious: a store that faults at any
// step of the write protocol leaves the previous generation loadable,
// and a retry against a clean disk succeeds into the same slot.
func TestCheckpointStoreFailureKeepsPrevious(t *testing.T) {
	for _, rates := range []map[faultfs.Class]float64{
		{faultfs.TornWrite: 1},
		{faultfs.SyncFail: 1},
		{faultfs.RenameFail: 1},
	} {
		dir := t.TempDir()
		clean := testStore(t, nil, dir)
		if err := clean.store(10, &ckAcc{State: "good"}, nil); err != nil {
			t.Fatal(err)
		}
		faulty := testStore(t, faultfs.New(faultfs.Schedule{Seed: 1, Rates: rates}), dir)
		faulty.gen, faulty.next = clean.gen, clean.next
		if err := faulty.store(20, &ckAcc{State: "doomed"}, nil); err == nil {
			t.Fatalf("rates %v: store did not fail", rates)
		}
		ck, class, detail := testStore(t, nil, dir).load()
		if class == ckAllCorrupt || ck == nil || ck.Cursor != 10 {
			t.Fatalf("rates %v: previous generation lost (%+v, %v, %q)", rates, ck, class, detail)
		}
	}
}

// TestCheckpointTornEnvelopeDetected: a physically torn slot write is
// caught by the envelope, not parsed as a shorter JSON document.
func TestCheckpointTornEnvelopeDetected(t *testing.T) {
	dir := t.TempDir()
	st := testStore(t, nil, dir)
	if err := st.store(10, &ckAcc{State: "whole"}, nil); err != nil {
		t.Fatal(err)
	}
	slots := CheckpointSlotPaths(dir, 0, 2)
	if err := faultfs.TruncateTail(slots[0], 5); err != nil {
		t.Fatal(err)
	}
	ck, class, _ := testStore(t, nil, dir).load()
	if ck != nil || class != ckAllCorrupt {
		t.Fatalf("torn envelope load = (%+v, %v), want (nil, all-corrupt)", ck, class)
	}
}

// TestCheckpointSweepTemps: stale temp files from a crashed writer are
// cleaned on load and never mistaken for checkpoints.
func TestCheckpointSweepTemps(t *testing.T) {
	dir := t.TempDir()
	slots := CheckpointSlotPaths(dir, 0, 2)
	stale := slots[0] + ".12345-1.tmp"
	if err := os.WriteFile(stale, []byte("half a checkpoi"), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, class, _ := testStore(t, nil, dir).load()
	if ck != nil || class != ckFresh {
		t.Fatalf("load with only a stale temp = (%+v, %v), want fresh", ck, class)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived the sweep")
	}
}

// TestCheckpointClear: a non-resume run's clear removes every slot and
// the legacy file so stale cursors cannot resurface.
func TestCheckpointClear(t *testing.T) {
	dir := t.TempDir()
	st := testStore(t, nil, dir)
	if err := st.store(10, &ckAcc{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.store(20, &ckAcc{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(CheckpointPath(dir, 0, 2), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	st.clear()
	ck, class, _ := testStore(t, nil, dir).load()
	if ck != nil || class != ckFresh {
		t.Fatalf("load after clear = (%+v, %v), want fresh", ck, class)
	}
}

// TestCheckpointWriteDurability: the store protocol fsyncs the temp
// file and the directory — a schedule failing only fsync must fail the
// store rather than report false durability.
func TestCheckpointWriteDurability(t *testing.T) {
	dir := t.TempDir()
	st := testStore(t, faultfs.New(faultfs.Schedule{Seed: 3, Rates: map[faultfs.Class]float64{faultfs.SyncFail: 1}}), dir)
	err := st.store(10, &ckAcc{}, nil)
	if err == nil {
		t.Fatal("store succeeded without a durable fsync")
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("fsync failure surfaced as %v, want EIO", err)
	}
}
