package study

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/dnswatch/dnsloc/internal/metrics"
)

// EngineOptions configure a sharded study run.
type EngineOptions struct {
	// Workers is the shard count; <= 0 means GOMAXPROCS.
	Workers int
	// Lanes is the per-shard lane count: each shard's owned probes are
	// split into Lanes contiguous windows, each simulated end-to-end by
	// its own world over the template's shared immutable core. <= 0
	// means auto — the cores left over after the shard fan-out
	// (GOMAXPROCS/workers, at least 1); 1 pins the pre-lane behavior.
	Lanes int
	// Progress, when non-nil, receives one call per completed shard.
	// Calls are serialized but arrive in completion order, not shard
	// order.
	Progress func(shard, workers, probes int, elapsed time.Duration)
}

// resolveLanes picks the per-shard lane count, clamped so every lane
// window is nonempty.
func resolveLanes(lanes, workers, totalProbes int) int {
	if lanes <= 0 {
		lanes = runtime.GOMAXPROCS(0) / workers
	}
	if totalProbes > 0 {
		if per := totalProbes / workers; lanes > per {
			lanes = per
		}
	}
	if lanes < 1 {
		lanes = 1
	}
	return lanes
}

// RunSharded executes the pilot study across Workers independent shards,
// each owning a round-robin slice of the probe fleet.
//
// Determinism contract: every shard builds its own world replica from
// Spec.Shard(k, K) — the same quotas, seat dealing, and RNG streams as
// the unsharded build, with only its own probes' homes instantiated —
// and replays the full platform availability stream before measuring, so
// no RNG call ever crosses a goroutine. Workers share no mutable state;
// the only synchronization is the final merge, which reassembles records
// in probe-ID order. Every table and figure rendered from the merged
// results is therefore byte-identical at any worker count, and identical
// to the serial Run. (Per-response virtual-clock RTTs are the one field
// that may differ between worker counts: resolver cache warmth depends
// on which probes share a world. No aggregate consumes RTTs — the
// metrics plane quarantines them as Diagnostic, outside the
// deterministic snapshot.)
//
// Metrics contract: each shard world carries its own registry; after
// the merge the registries fold into Results.Metrics in shard order.
// Counter adds, gauge maxes, and histogram bucket adds are commutative,
// so the merged Stable snapshot is byte-identical at any worker count.
func RunSharded(spec Spec, opts EngineOptions) *Results {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if spec.TotalProbes > 0 && workers > spec.TotalProbes {
		workers = spec.TotalProbes
	}
	lanes := resolveLanes(opts.Lanes, workers, spec.TotalProbes)
	if workers == 1 && lanes == 1 {
		// The serial path: one world, no stubs, no merge.
		start := time.Now()
		res := Run(BuildWorld(spec))
		if opts.Progress != nil {
			opts.Progress(0, 1, len(res.Records), time.Since(start))
		}
		return res
	}

	// One template backs every shard and lane world: the signed zones,
	// org roster, dealt seats, packed CHAOS answers, and — after the
	// first build seals them — the backbone routers' forwarding tables
	// are immutable, so the goroutines below only read it (the
	// happens-before edge is goroutine creation). Shard and lane builds
	// already run concurrently, so each gets its share of the machine
	// for its own parallel org population.
	tpl := NewWorldTemplate(spec)
	if bw := runtime.GOMAXPROCS(0) / (workers * lanes); bw > 1 {
		tpl.BuildWorkers = bw
	} else {
		tpl.BuildWorkers = 1
	}

	// One unit per (shard, lane): unit k*lanes+l owns the l-th
	// contiguous window of shard k's probe ranks.
	units := workers * lanes
	unitRecs := make([][]*ProbeRecord, units)
	unitRegs := make([]*metrics.Registry, units)
	unitErrs := make([]string, units)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			start := time.Now()
			var lwg sync.WaitGroup
			for l := 0; l < lanes; l++ {
				lwg.Add(1)
				go func(l int) {
					defer lwg.Done()
					u := k*lanes + l
					// Per-probe panics are quarantined inside runRecords;
					// this recover is the outer belt, so a lane whose world
					// *build* blows up costs that lane's records, not the
					// whole run.
					defer func() {
						if r := recover(); r != nil {
							if lanes == 1 {
								unitErrs[u] = fmt.Sprintf("shard %d/%d panicked: %v", k, workers, r)
							} else {
								unitErrs[u] = fmt.Sprintf("shard %d/%d lane %d/%d panicked: %v", k, workers, l, lanes, r)
							}
						}
					}()
					world := tpl.Build(spec.Shard(k, workers).Lane(l, lanes))
					unitRecs[u] = runRecords(world)
					unitRegs[u] = world.Metrics
				}(l)
			}
			lwg.Wait()
			if opts.Progress != nil {
				n := 0
				for l := 0; l < lanes; l++ {
					n += len(unitRecs[k*lanes+l])
				}
				progressMu.Lock()
				opts.Progress(k, workers, n, time.Since(start))
				progressMu.Unlock()
			}
		}(k)
	}
	wg.Wait()

	total := 0
	for _, recs := range unitRecs {
		total += len(recs)
	}
	merged := make([]*ProbeRecord, 0, total)
	for _, recs := range unitRecs {
		merged = append(merged, recs...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Probe.ID < merged[j].Probe.ID })

	var errs []string
	for _, e := range unitErrs {
		if e != "" {
			errs = append(errs, e)
		}
	}

	// Fold the lane registries in (shard, lane) order; every merge op is
	// commutative, so the result is independent of completion order.
	var reg *metrics.Registry
	if !spec.DisableMetrics {
		reg = metrics.New()
		for _, r := range unitRegs {
			reg.Merge(r)
		}
	}

	// The merged view carries the unsharded spec for exports; per-record
	// simulation state lives on each record's Net.
	return &Results{World: &World{Spec: spec}, Records: merged, Errors: errs, Metrics: reg}
}
