package study

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/dnswatch/dnsloc/internal/metrics"
)

// EngineOptions configure a sharded study run.
type EngineOptions struct {
	// Workers is the shard count; <= 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives one call per completed shard.
	// Calls are serialized but arrive in completion order, not shard
	// order.
	Progress func(shard, workers, probes int, elapsed time.Duration)
}

// RunSharded executes the pilot study across Workers independent shards,
// each owning a round-robin slice of the probe fleet.
//
// Determinism contract: every shard builds its own world replica from
// Spec.Shard(k, K) — the same quotas, seat dealing, and RNG streams as
// the unsharded build, with only its own probes' homes instantiated —
// and replays the full platform availability stream before measuring, so
// no RNG call ever crosses a goroutine. Workers share no mutable state;
// the only synchronization is the final merge, which reassembles records
// in probe-ID order. Every table and figure rendered from the merged
// results is therefore byte-identical at any worker count, and identical
// to the serial Run. (Per-response virtual-clock RTTs are the one field
// that may differ between worker counts: resolver cache warmth depends
// on which probes share a world. No aggregate consumes RTTs — the
// metrics plane quarantines them as Diagnostic, outside the
// deterministic snapshot.)
//
// Metrics contract: each shard world carries its own registry; after
// the merge the registries fold into Results.Metrics in shard order.
// Counter adds, gauge maxes, and histogram bucket adds are commutative,
// so the merged Stable snapshot is byte-identical at any worker count.
func RunSharded(spec Spec, opts EngineOptions) *Results {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if spec.TotalProbes > 0 && workers > spec.TotalProbes {
		workers = spec.TotalProbes
	}
	if workers == 1 {
		// The serial path: one world, no stubs, no merge.
		start := time.Now()
		res := Run(BuildWorld(spec))
		if opts.Progress != nil {
			opts.Progress(0, 1, len(res.Records), time.Since(start))
		}
		return res
	}

	// One template backs every shard: the signed zones, org roster, and
	// dealt seats are immutable after construction, so the goroutines
	// below only read it (the happens-before edge is goroutine creation).
	// Shard builds already run concurrently, so each gets its share of
	// the machine for its own parallel org population.
	tpl := NewWorldTemplate(spec)
	if bw := runtime.GOMAXPROCS(0) / workers; bw > 1 {
		tpl.BuildWorkers = bw
	} else {
		tpl.BuildWorkers = 1
	}

	shards := make([][]*ProbeRecord, workers)
	shardRegs := make([]*metrics.Registry, workers)
	shardErrs := make([]string, workers)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			// Per-probe panics are quarantined inside runRecords; this
			// recover is the outer belt, so a shard whose world *build*
			// blows up costs that shard's records, not the whole run.
			defer func() {
				if r := recover(); r != nil {
					shardErrs[k] = fmt.Sprintf("shard %d/%d panicked: %v", k, workers, r)
				}
			}()
			start := time.Now()
			world := tpl.Build(spec.Shard(k, workers))
			shards[k] = runRecords(world)
			shardRegs[k] = world.Metrics
			if opts.Progress != nil {
				progressMu.Lock()
				opts.Progress(k, workers, len(shards[k]), time.Since(start))
				progressMu.Unlock()
			}
		}(k)
	}
	wg.Wait()

	total := 0
	for _, recs := range shards {
		total += len(recs)
	}
	merged := make([]*ProbeRecord, 0, total)
	for _, recs := range shards {
		merged = append(merged, recs...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Probe.ID < merged[j].Probe.ID })

	var errs []string
	for _, e := range shardErrs {
		if e != "" {
			errs = append(errs, e)
		}
	}

	// Fold the shard registries in shard order; every merge op is
	// commutative, so the result is independent of completion order.
	var reg *metrics.Registry
	if !spec.DisableMetrics {
		reg = metrics.New()
		for _, r := range shardRegs {
			reg.Merge(r)
		}
	}

	// The merged view carries the unsharded spec for exports; per-record
	// simulation state lives on each record's Net.
	return &Results{World: &World{Spec: spec}, Records: merged, Errors: errs, Metrics: reg}
}
