package study_test

import (
	"strings"
	"testing"

	"github.com/dnswatch/dnsloc/internal/bogon"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/study"
	"github.com/dnswatch/dnsloc/internal/trace"
)

// TestWorldInvariants runs a small study with a full packet capture and
// checks properties that must hold for the methodology to be sound.
func TestWorldInvariants(t *testing.T) {
	spec := study.PaperSpec().Scale(0.03)
	w := study.BuildWorld(spec)

	// Capture every forward at a transit router and every bogon drop.
	transitForwards := trace.New(w.Net, trace.And(
		trace.Kind(netsim.TraceForward),
		trace.Device("transit-"),
	), 1<<18)
	bogonDrops := trace.New(w.Net, trace.And(
		trace.Kind(netsim.TraceDrop),
		func(e netsim.TraceEvent) bool { return strings.Contains(e.Note, "bogon") },
	), 1<<18)

	res := study.Run(w)

	// Invariant 1: no packet addressed to a bogon destination is ever
	// forwarded by a transit router — bogon queries cannot leave any AS.
	// (The §3.3 technique is sound only if this holds.)
	for _, e := range transitForwards.Events() {
		if bogon.Is(e.Packet.Dst.Addr()) {
			t.Fatalf("bogon-addressed packet crossed transit: %s", e)
		}
	}
	if transitForwards.Len() == 0 {
		t.Error("capture saw no transit traffic; filter broken?")
	}

	// Invariant 2: borders actually drop bogon queries (the probes that
	// are not intercepted in-AS send them and they must die somewhere).
	if bogonDrops.Len() == 0 {
		t.Error("no bogon drops recorded — egress filtering inactive?")
	}
	for _, e := range bogonDrops.Events() {
		if !strings.Contains(e.Device, "border") {
			t.Errorf("bogon dropped at %s, want an AS border", e.Device)
		}
	}

	// Invariant 3: every responding probe produced a report and every
	// intercepted report carries at least one non-standard observation.
	for _, rec := range res.Records {
		if rec.Report == nil {
			continue
		}
		if !rec.Report.Intercepted() {
			continue
		}
		bad := 0
		for _, p := range rec.Report.Location {
			if (p.Outcome == "answer" && !p.Standard) || p.Outcome == "error" {
				bad++
			}
		}
		if bad == 0 {
			t.Errorf("probe %d intercepted without non-standard evidence", rec.Probe.ID)
		}
	}
}
