package study

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// jsonNasty is the adversarial string corpus for the encoder property
// test: every escaping class encoding/json distinguishes — quotes,
// backslashes, the HTML trio, named and numeric control escapes, DEL,
// multi-byte UTF-8, the JS line separators U+2028/U+2029, and invalid
// UTF-8 byte sequences.
var jsonNasty = []string{
	"",
	"plain ascii",
	`with "quotes" and \backslashes\`,
	"<script>&amp;</script>",
	"a<b>c&d",
	"tab\there\nnewline\rcarriage",
	"ctrl\x00\x01\x1f bytes",
	"del\x7fchar",
	"héllo wörld 日本語",
	"line\u2028and\u2029separators",
	"invalid\xff\xfe utf8",
	"trunc\xc3 continuation",
	"mixed <&> \x02 \xe2\x28\xa1 end",
	"emoji \U0001f389 tail",
}

// randomNasty assembles a string from random corpus pieces and raw
// random bytes, so concatenation seams (escape at start/end, adjacent
// escapes) are exercised too.
func randomNasty(rng *rand.Rand) string {
	var sb bytes.Buffer
	for n := rng.Intn(4); n >= 0; n-- {
		if rng.Intn(3) == 0 {
			for b := rng.Intn(6); b >= 0; b-- {
				sb.WriteByte(byte(rng.Intn(256)))
			}
		} else {
			sb.WriteString(jsonNasty[rng.Intn(len(jsonNasty))])
		}
	}
	return sb.String()
}

// randomStrings returns nil, empty, or a populated slice — all three
// omitempty-relevant shapes.
func randomStrings(rng *rand.Rand) []string {
	switch rng.Intn(4) {
	case 0:
		return nil
	case 1:
		return []string{}
	default:
		out := make([]string, rng.Intn(3)+1)
		for i := range out {
			out[i] = randomNasty(rng)
		}
		return out
	}
}

func randomExport(rng *rand.Rand) ProbeExport {
	maybe := func() string {
		if rng.Intn(2) == 0 {
			return ""
		}
		return randomNasty(rng)
	}
	return ProbeExport{
		ProbeID:           rng.Intn(1 << 20),
		Country:           randomNasty(rng),
		ASN:               rng.Intn(1 << 17),
		Org:               randomNasty(rng),
		HasIPv6:           rng.Intn(2) == 0,
		Responded:         rng.Intn(2) == 0,
		Verdict:           maybe(),
		Transparency:      maybe(),
		InterceptedV4:     randomStrings(rng),
		InterceptedV6:     randomStrings(rng),
		CPEFingerprint:    maybe(),
		Error:             maybe(),
		InconclusiveSteps: randomStrings(rng),
		TruthLocation:     randomNasty(rng),
		TruthPersona:      maybe(),
	}
}

// TestAppendExportJSONMatchesEncodingJSON pins the hand-rolled JSONL
// encoder to json.Encoder byte for byte, across randomized adversarial
// exports. Any drift — a new ProbeExport field, changed tag order, an
// escaping difference — fails here before it can corrupt a sink file's
// byte-identity guarantees.
func TestAppendExportJSONMatchesEncodingJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	var wantBuf bytes.Buffer
	enc := json.NewEncoder(&wantBuf)
	var got []byte
	for trial := 0; trial < 5000; trial++ {
		e := randomExport(rng)
		wantBuf.Reset()
		if err := enc.Encode(&e); err != nil {
			t.Fatalf("trial %d: json.Encoder: %v", trial, err)
		}
		got = appendExportJSONLine(got[:0], &e)
		if !bytes.Equal(got, wantBuf.Bytes()) {
			t.Fatalf("trial %d: encoder drift\nexport: %+v\n got: %q\nwant: %q",
				trial, e, got, wantBuf.Bytes())
		}
	}
}

// TestAppendExportJSONZeroValue covers the all-omitted shape explicitly.
func TestAppendExportJSONZeroValue(t *testing.T) {
	var e ProbeExport
	want, err := json.Marshal(&e)
	if err != nil {
		t.Fatal(err)
	}
	got := appendExportJSONLine(nil, &e)
	if string(got) != string(want)+"\n" {
		t.Fatalf("zero value: got %q, want %q", got, string(want)+"\n")
	}
}
