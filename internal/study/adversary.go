package study

import (
	"net/netip"

	"github.com/dnswatch/dnsloc/internal/atlas"
	"github.com/dnswatch/dnsloc/internal/bogon"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/dotsim"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// adversarySeed offsets the adversary's deterministic draws from every
// other consumer of Spec.Seed.
const adversarySeed = 7700

// buildAdversaries pre-builds every region's model. It must run before
// the parallel population phase: adversaryFor fills the cache lazily,
// and concurrent goroutines may only read it.
func (w *World) buildAdversaries() {
	for _, region := range publicdns.Regions {
		w.adversaryFor(region)
	}
}

// adversaryFor returns the world's evasive-interceptor model for one
// region, or nil when the spec keeps interceptors honest. One instance
// per (world, region): the L4 budget map is mutable state, worlds are
// single-threaded during measurement, and the genuine answers an
// interceptor can replay are the ones its own regional vantage sees.
func (w *World) adversaryFor(region publicdns.Region) *dnsserver.Adversary {
	if w.Spec.Adversary <= 0 {
		return nil
	}
	if w.advByRegion == nil {
		w.advByRegion = make(map[publicdns.Region]*dnsserver.Adversary)
	}
	if adv, ok := w.advByRegion[region]; ok {
		return adv
	}
	adv := &dnsserver.Adversary{
		Level: w.Spec.Adversary,
		Seed:  w.Spec.Seed + adversarySeed,
		Genuine: func(target netip.Addr, name dnswire.Name) (string, dnswire.RCode, bool) {
			return publicdns.GenuineChaos(target, name, region)
		},
		Forge: publicdns.ForgeChaos,
		Bogon: bogon.Is,
	}
	w.advByRegion[region] = adv
	return adv
}

// certOracle is the study's core.CertOracle: an out-of-band DoT session
// against the operator's regional site, authenticated under dotsim's
// strict profile. Port-853 traffic never matches the port-53 DNAT
// rules, and a strict session refuses any endpoint whose certificate
// does not verify for the target address — so whatever identity comes
// back is the operator's own, no matter what the port-53 path does.
type certOracle struct {
	region publicdns.Region
}

// Identity implements core.CertOracle.
func (o certOracle) Identity(id publicdns.ID, server netip.Addr) (string, bool) {
	want, ok := publicdns.IdentityOverTLS(id, o.region)
	if !ok {
		// Google and OpenDNS expose no identity over the authenticated
		// channel; the cert signal is inconclusive for them.
		return "", false
	}
	sess, err := dotsim.Dial(dotsim.Path{Target: dotsim.NewAuthenticatedServer(server, want)}, dotsim.Strict)
	if err != nil {
		return "", false
	}
	return sess.QueryIdentity(), true
}

// installSignals wires the spec's detection-signal options into the
// platform the detectors are built from.
func (w *World) installSignals() {
	w.Platform.DriftRounds = w.Spec.DriftRounds
	if w.Spec.CertCheck {
		w.Platform.CertOracle = func(pr *atlas.Probe) core.CertOracle {
			return certOracle{region: pr.Region}
		}
	}
	if w.Spec.Encryption != nil {
		// Upgraded stubs encrypt only toward the public operators' known
		// anycast addresses; the CPE version.bind step and the bogon
		// probes stay Do53, like a real stub with a DoT upstream.
		w.Platform.EncryptedUpgrade = func(a netip.Addr) bool {
			_, ok := publicdns.ByAddr(a)
			return ok
		}
	}
}
