package study

import (
	"net/netip"
	"runtime"
	"time"

	"github.com/dnswatch/dnsloc/internal/atlas"
	"github.com/dnswatch/dnsloc/internal/backbone"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/geo"
	"github.com/dnswatch/dnsloc/internal/isp"
	"github.com/dnswatch/dnsloc/internal/metrics"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// WorldTemplate holds everything about a study world that does not
// depend on which shard is being built: the signed backbone zones, the
// organization roster, the probe quota table, and the dealt seats. All
// of it is immutable once NewWorldTemplate returns — zones are
// read-only after Sign, and seats are only written during dealing — so
// one template can back every shard world of a sharded run, built
// concurrently from separate goroutines.
//
// The expensive parts this amortizes are the three DNSSEC key
// generations and zone signings (the dominant cost of a backbone
// build) and the seat dealing; each shard still builds its own routers,
// resolvers, and homes, because those carry per-world mutable state.
type WorldTemplate struct {
	spec         Spec
	zones        *backbone.ZoneData
	orgs         []geo.Org
	probesPerOrg map[int]int
	seats        map[int][]*seat

	// plans is the frozen population plan: per org, the segment layout,
	// seat placement, and every Seed+1 RNG draw the serial build would
	// make, in order. Worlds replay it instead of drawing, which is what
	// makes the per-org parallel population below deterministic.
	plans []orgPlan

	// cores shares the backbone core and regional transit routers'
	// forwarding tables across every world built from this template: the
	// first Build records and seals them, later Builds bind devices by
	// name instead of rebuilding the prefix maps (netsim.RoutingCore).
	cores *netsim.CoreSet

	// chaosCache is the packed CHAOS answer cache, shared by every world
	// of this template — the persona answers it memoizes are pure
	// functions of the query, so shard and lane worlds running
	// concurrently can all hit one cache.
	chaosCache *dnsserver.PackedAnswerCache

	// BuildWorkers caps the goroutines one Build uses to populate orgs
	// in parallel; <= 0 means GOMAXPROCS. The sharded engines set it to
	// GOMAXPROCS/workers so concurrent shard builds do not oversubscribe
	// the machine. Set before the first Build; the template is read-only
	// during builds.
	BuildWorkers int
}

// NewWorldTemplate precomputes the shard-invariant parts of a world.
// Every input to the template (Seats, Seed, weights, quotas) is
// untouched by Spec.Shard, so the template built from the unsharded
// spec serves any Shard(k, K) of it.
func NewWorldTemplate(spec Spec) *WorldTemplate {
	orgs := geo.Orgs() // descending weight, deterministic
	probesPerOrg := probeQuota(spec.TotalProbes, orgs)
	seats := dealSeats(spec, orgs, probesPerOrg)
	return &WorldTemplate{
		spec:         spec,
		zones:        backbone.BuildZones(),
		orgs:         orgs,
		probesPerOrg: probesPerOrg,
		seats:        seats,
		plans:        planOrgs(spec, orgs, probesPerOrg, seats),
		cores:        netsim.NewCoreSet(),
		chaosCache:   dnsserver.NewPackedAnswerCache(),
	}
}

// Build constructs one world over the template. The spec must agree
// with the template's on everything except the shard window — in
// practice it is the template's spec or a Shard() of it. The template
// is only ever read, so concurrent Builds are safe.
func (t *WorldTemplate) Build(spec Spec) *World {
	buildStart := time.Now()
	// The first Build is the routing-core recorder; concurrent Builds
	// wait inside Begin until it seals (just after the shared routers'
	// topology is complete, below) and then bind against the sealed
	// cores. The deferred Abandon only acts if a recorder panics before
	// sealing — it releases the waiters to build unshared.
	role := t.cores.Begin()
	defer t.cores.Abandon()
	w := &World{
		Spec:                spec,
		Net:                 netsim.NewNetwork(),
		ISPs:                make(map[int]*isp.Network),
		transitSeatPatterns: make(map[publicdns.Region]map[netip.Addr]Pattern),
		chaosCache:          t.chaosCache,
	}
	w.Backbone = backbone.BuildWithCores(w.Net, t.zones, t.cores, role)
	for _, byRegion := range w.Backbone.Resolvers {
		for _, res := range byRegion {
			res.ChaosCache = w.chaosCache
		}
	}
	if spec.Fault != nil && spec.Fault.Active() {
		w.Net.SetDefaultFault(*spec.Fault)
	}
	if !spec.DisableMetrics {
		w.Metrics = metrics.New()
		w.Net.SetMetrics(w.Metrics)
		w.fwdMetrics = dnsserver.NewForwarderMetrics(w.Metrics)
		w.studyMetrics = newStudyMetrics(w.Metrics)
	}
	w.Platform = atlas.NewPlatform(w.Net, spec.Seed)
	w.Platform.Retry = spec.Retry
	w.Platform.Metrics = core.NewMetricSet(w.Metrics)
	w.installSignals()
	w.buildAdversaries()

	w.buildISPs(t.orgs, t.plans)
	w.buildTransitInterceptors()
	// Every route the shared routers will ever carry is installed by
	// now — home population below only touches segment and CPE routers —
	// so the recorder can seal and release any waiting builds.
	t.cores.Seal()
	w.populatePlans(t.plans, t.buildWorkers())
	w.studyMetrics.observeBuild(time.Since(buildStart))
	return w
}

// buildWorkers resolves the population parallelism for one Build.
func (t *WorldTemplate) buildWorkers() int {
	if t.BuildWorkers > 0 {
		return t.BuildWorkers
	}
	return runtime.GOMAXPROCS(0)
}
