package study_test

import (
	"regexp"
	"testing"

	"github.com/dnswatch/dnsloc/internal/analysis"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/study"
)

// adversarySpec is a small study measured against evasive interceptors
// with the full signal suite (cert oracle + one drift round) enabled.
func adversarySpec(level int, faulted bool) study.Spec {
	spec := study.PaperSpec().Scale(0.02)
	spec.Adversary = level
	spec.CertCheck = true
	spec.DriftRounds = 1
	if faulted {
		fp := netsim.PresetFault(0.5, spec.Seed+9000)
		spec.Fault = &fp
		spec.Retry = &core.RetryPolicy{MaxAttempts: 3}
	}
	return spec
}

// rttLine matches the rendered round-trip time of one probe query.
// RTT depends on resolver-cache warmth, which legitimately varies with
// the shard layout (a pre-existing property of the base pipeline, not
// of the adversary), so the report comparison normalizes it away.
var rttLine = regexp.MustCompile(`rtt=[0-9.]+ms`)

// reportStrings renders every probe's full report (including the signal
// sections, which the export record does not carry) for byte
// comparison, with cache-warmth RTTs normalized out.
func reportStrings(res *study.Results) []string {
	out := make([]string, 0, len(res.Records))
	for _, rec := range res.Records {
		if rec.Report == nil {
			out = append(out, "<no report>")
			continue
		}
		out = append(out, rttLine.ReplaceAllString(rec.Report.String(), "rtt=*"))
	}
	return out
}

// TestAdversaryDeterminism is the ladder's sharding contract: every
// adversary draw — forged personas, bogon gating, per-client CHAOS
// budgets — is keyed by flow identity, never by arrival order, so the
// same seed produces byte-identical behaviour whether the study runs on
// one worker or four, with fault injection off or on. Run under -race
// in CI, this also shakes out unsynchronized adversary state.
func TestAdversaryDeterminism(t *testing.T) {
	scenarios := []struct {
		name    string
		level   int
		faulted bool
	}{
		{"clean-forge", 2, false},
		{"clean-rate-limit", 4, false},
		{"faulted-rate-limit", 4, true},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			spec := adversarySpec(sc.level, sc.faulted)

			serial := study.RunSharded(spec, study.EngineOptions{Workers: 1})
			if len(serial.Errors) != 0 {
				t.Fatalf("shard errors: %v", serial.Errors)
			}
			if n := len(serial.Quarantined()); n != 0 {
				t.Fatalf("%d probes quarantined, want 0", n)
			}
			wantExport := exportJSON(t, serial)
			wantReports := reportStrings(serial)

			parallel := study.RunSharded(spec, study.EngineOptions{Workers: 4})
			if len(parallel.Errors) != 0 {
				t.Fatalf("workers=4 shard errors: %v", parallel.Errors)
			}
			gotExport := exportJSON(t, parallel)
			gotReports := reportStrings(parallel)

			if len(gotExport) != len(wantExport) {
				t.Fatalf("workers=4: %d export records, want %d", len(gotExport), len(wantExport))
			}
			for i := range wantExport {
				if gotExport[i] != wantExport[i] {
					t.Fatalf("workers=4: export record %d differs:\n%s\n%s", i, gotExport[i], wantExport[i])
				}
			}
			for i := range wantReports {
				if gotReports[i] != wantReports[i] {
					t.Fatalf("workers=4: report %d differs:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
						i, wantReports[i], gotReports[i])
				}
			}
		})
	}
}

// TestAdversaryAccuracyContract pins the ladder's headline claim at
// test scale: from the forge rung up, CHAOS-only accuracy measurably
// drops below the honest baseline, the three-signal fusion wins the
// loss back, and neither scorer ever reports a false positive.
func TestAdversaryAccuracyContract(t *testing.T) {
	score := func(level int) (chaosAcc, fusedAcc float64, chaosFP, fusedFP int) {
		res := study.RunSharded(adversarySpec(level, false), study.EngineOptions{Workers: 2})
		if len(res.Errors) != 0 {
			t.Fatalf("L%d shard errors: %v", level, res.Errors)
		}
		row := analysis.ScoreAdversary(level, res)
		return row.ChaosAccuracy(), row.FusedAccuracy(), row.ChaosFP, row.FusedFP
	}

	honestChaos, honestFused, cFP0, fFP0 := score(0)
	forgeChaos, forgeFused, cFP2, fFP2 := score(2)

	if honestChaos != 1.0 || honestFused != 1.0 {
		t.Errorf("honest baseline accuracy = chaos %.3f, fused %.3f; want 1.000 for both", honestChaos, honestFused)
	}
	if forgeChaos >= honestChaos {
		t.Errorf("forge-level chaos accuracy %.3f did not drop below honest %.3f", forgeChaos, honestChaos)
	}
	if forgeFused <= forgeChaos {
		t.Errorf("fusion %.3f did not recover accuracy over chaos-only %.3f at forge level", forgeFused, forgeChaos)
	}
	for _, fp := range []int{cFP0, fFP0, cFP2, fFP2} {
		if fp != 0 {
			t.Errorf("false positives present (honest c/f = %d/%d, forge c/f = %d/%d); want 0 everywhere",
				cFP0, fFP0, cFP2, fFP2)
			break
		}
	}
}
