package study_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/dnswatch/dnsloc/internal/analysis"
	"github.com/dnswatch/dnsloc/internal/study"
)

// streamSpec is the streaming tests' shared run shape: small enough to
// re-run many times, large enough that every shard holds interceptions.
func streamSpec() study.Spec { return study.PaperSpec().Scale(0.0128) } // ~128 probes

func streamOpts(workers int) study.StreamOptions {
	return study.StreamOptions{
		Workers:        workers,
		NewAccumulator: func(int) study.Accumulator { return analysis.NewAccumulator() },
	}
}

// renderStream renders a streamed run's full deterministic surface:
// every table and figure from the merged accumulator plus the Stable
// metric snapshot.
func renderStream(t *testing.T, res *study.StreamResults) string {
	t.Helper()
	if len(res.Errors) != 0 {
		t.Fatalf("stream errors: %v", res.Errors)
	}
	acc := res.Acc.(*analysis.Accumulator)
	t4 := acc.Table4()
	return analysis.FormatTable4(t4) + analysis.CSVTable4(t4) +
		analysis.FormatTable5(acc.Table5()) +
		analysis.FormatFigure3(acc.Figure3(10)) +
		analysis.FormatFigure4(acc.Figure4(10)) +
		analysis.FormatAccuracy(acc.Accuracy()) +
		string(res.MetricsSnapshot(false).JSON())
}

// renderInMemory renders the identical surface from the in-memory
// pipeline's record slice.
func renderInMemory(t *testing.T, res *study.Results) string {
	t.Helper()
	if len(res.Errors) != 0 {
		t.Fatalf("shard errors: %v", res.Errors)
	}
	t4 := analysis.BuildTable4(res)
	return analysis.FormatTable4(t4) + analysis.CSVTable4(t4) +
		analysis.FormatTable5(analysis.BuildTable5(res)) +
		analysis.FormatFigure3(analysis.BuildFigure3(res, 10)) +
		analysis.FormatFigure4(analysis.BuildFigure4(res, 10)) +
		analysis.FormatAccuracy(analysis.BuildAccuracy(res)) +
		string(res.MetricsSnapshot(false).JSON())
}

// TestStreamedMatchesInMemory is the tentpole's acceptance property:
// the streamed pipeline at 1 and 4 workers renders byte-identical
// tables, figures, CSV, and Stable metric snapshot to the in-memory
// pipeline.
func TestStreamedMatchesInMemory(t *testing.T) {
	spec := streamSpec()
	want := renderInMemory(t, study.RunSharded(spec, study.EngineOptions{Workers: 2}))
	for _, workers := range []int{1, 4} {
		res, err := study.RunStreamed(spec, streamOpts(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := renderStream(t, res); got != want {
			t.Errorf("streamed workers=%d diverges from in-memory pipeline:\n--- in-memory ---\n%s--- streamed ---\n%s",
				workers, want, got)
		}
		if res.Folded == 0 {
			t.Errorf("workers=%d: folded no records", workers)
		}
	}
}

// TestStreamedRetainsNoRecords: the streaming pipeline's records
// retained gauge stays at zero — no shard ever accumulates a record
// slice — while the in-memory pipeline's equals its record count.
func TestStreamedRetainsNoRecords(t *testing.T) {
	spec := streamSpec()
	res, err := study.RunStreamed(spec, streamOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := gaugeValue(t, res.MetricsSnapshot(true), "study.records_retained"); got != 0 {
		t.Errorf("streamed records_retained = %d, want 0", got)
	}
	mem := study.RunSharded(spec, study.EngineOptions{Workers: 2})
	if got := gaugeValue(t, mem.MetricsSnapshot(true), "study.records_retained"); got == 0 {
		t.Error("in-memory records_retained = 0, want the largest shard's record count")
	}
}

func gaugeValue(t *testing.T, snap *study.Snapshot, name string) int64 {
	t.Helper()
	for _, m := range snap.Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %q not in snapshot", name)
	return 0
}

// sinkPath returns shard k's JSONL file under dir.
func sinkPath(dir string, k, workers int) string {
	return filepath.Join(dir, fmt.Sprintf("records-%d-of-%d.jsonl", k, workers))
}

// fileSinks wires per-shard JSONL file sinks into StreamOptions,
// truncating each file back to its checkpoint cursor on resume — the
// caller-side half of the sink resume contract.
func fileSinks(t *testing.T, dir string) func(k, workers, resumedAt int) (study.RecordSink, error) {
	t.Helper()
	return func(k, workers, resumedAt int) (study.RecordSink, error) {
		path := sinkPath(dir, k, workers)
		if err := study.TruncateSinkFile(path, resumedAt, false); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return study.NewJSONLSink(f), nil
	}
}

// readSinks concatenates the shard sink files in shard order.
func readSinks(t *testing.T, dir string, workers int) string {
	t.Helper()
	var buf bytes.Buffer
	for k := 0; k < workers; k++ {
		blob, err := os.ReadFile(sinkPath(dir, k, workers))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(blob)
	}
	return buf.String()
}

// TestStreamSinkMatchesExport: a single-shard streamed run's JSONL sink
// holds exactly the in-memory pipeline's export, line for line.
func TestStreamSinkMatchesExport(t *testing.T) {
	spec := streamSpec()
	dir := t.TempDir()
	opts := streamOpts(1)
	opts.NewSink = fileSinks(t, dir)
	res, err := study.RunStreamed(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("stream errors: %v", res.Errors)
	}

	mem := study.Run(study.BuildWorld(spec))
	var want bytes.Buffer
	sink := study.NewJSONLSink(&want)
	for _, e := range mem.Export() {
		if err := sink.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readSinks(t, dir, 1); got != want.String() {
		t.Errorf("sink output diverges from Export():\n--- want %d bytes, got %d bytes ---", want.Len(), len(got))
	}
}

// TestStreamCheckpointResume is the kill-and-resume acceptance test:
// a run halted mid-flight (no final checkpoint, exactly as a kill -9
// would leave the directory) and resumed from its shard checkpoints
// finishes with byte-identical tables, Stable metrics, and sink files
// to an uninterrupted streamed run.
func TestStreamCheckpointResume(t *testing.T) {
	spec := streamSpec()
	const workers = 2

	// Uninterrupted reference run, with sinks.
	refDir := t.TempDir()
	ref := streamOpts(workers)
	ref.NewSink = fileSinks(t, refDir)
	refRes, err := study.RunStreamed(spec, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := renderStream(t, refRes)
	wantSinks := readSinks(t, refDir, workers)

	// Killed run: checkpoint every 10 records, halt each shard at 25 —
	// between checkpoints, so the sink files run ahead of the cursor.
	ckDir := t.TempDir()
	sinkDir := t.TempDir()
	killed := streamOpts(workers)
	killed.CheckpointDir = ckDir
	killed.CheckpointEvery = 10
	killed.StopAfterProbes = 25
	killed.NewSink = fileSinks(t, sinkDir)
	kRes, err := study.RunStreamed(spec, killed)
	if err != nil {
		t.Fatal(err)
	}
	if !kRes.Stopped {
		t.Fatal("StopAfterProbes did not halt the run")
	}
	if got := counterValue(t, kRes.MetricsSnapshot(true), "study.checkpoints_written"); got == 0 {
		t.Error("killed run wrote no checkpoints")
	}

	// Resume from the checkpoints and finish.
	resumed := streamOpts(workers)
	resumed.CheckpointDir = ckDir
	resumed.CheckpointEvery = 10
	resumed.Resume = true
	resumed.NewSink = fileSinks(t, sinkDir)
	rRes, err := study.RunStreamed(spec, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if rRes.Skipped == 0 {
		t.Error("resumed run skipped no probes — checkpoints were not loaded")
	}
	if got := renderStream(t, rRes); got != want {
		t.Errorf("resumed run diverges from uninterrupted run:\n--- uninterrupted ---\n%s--- resumed ---\n%s",
			want, got)
	}
	if got := readSinks(t, sinkDir, workers); got != wantSinks {
		t.Errorf("resumed sink files diverge from uninterrupted run's (%d vs %d bytes)",
			len(got), len(wantSinks))
	}
}

// killSink wraps a JSONL sink but models a kill -9 at shutdown: Close
// closes the file WITHOUT flushing the sink's buffer, so every row
// appended since the last explicit Flush is lost — exactly what a
// buffered sink leaves behind when the process dies.
type killSink struct {
	inner *study.JSONLSink
	f     *os.File
}

func (s *killSink) Append(e study.ProbeExport) error { return s.inner.Append(e) }
func (s *killSink) Flush() error                     { return s.inner.Flush() }
func (s *killSink) Close() error                     { return s.f.Close() }

// TestStreamKillSinkResume is the sink-buffering half of the kill
// contract: rows buffered in a sink when the process dies are lost,
// but because each checkpoint flushes the sink first, the file always
// holds at least the cursor's rows. Resume truncates the surplus and
// appends; the finished files are byte-identical to an uninterrupted
// run's — no row duplicated, none lost. Before the flush-before-
// checkpoint fix this test failed in TruncateSinkFile: the checkpoint
// cursor claimed rows the dead sink's buffer never wrote.
func TestStreamKillSinkResume(t *testing.T) {
	spec := streamSpec()
	const workers = 2

	refDir := t.TempDir()
	ref := streamOpts(workers)
	ref.NewSink = fileSinks(t, refDir)
	refRes, err := study.RunStreamed(spec, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := renderStream(t, refRes)
	wantSinks := readSinks(t, refDir, workers)

	// Killed run: checkpoints at 10 and 20, halt at 25 — five rows die
	// in the sink buffer because killSink.Close never flushes.
	ckDir := t.TempDir()
	sinkDir := t.TempDir()
	killed := streamOpts(workers)
	killed.CheckpointDir = ckDir
	killed.CheckpointEvery = 10
	killed.StopAfterProbes = 25
	killed.NewSink = func(k, workers, resumedAt int) (study.RecordSink, error) {
		path := sinkPath(sinkDir, k, workers)
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return &killSink{inner: study.NewJSONLSink(f), f: f}, nil
	}
	kRes, err := study.RunStreamed(spec, killed)
	if err != nil {
		t.Fatal(err)
	}
	if !kRes.Stopped {
		t.Fatal("StopAfterProbes did not halt the run")
	}
	for k := 0; k < workers; k++ {
		blob, err := os.ReadFile(sinkPath(sinkDir, k, workers))
		if err != nil {
			t.Fatal(err)
		}
		// The checkpoint-time flushes persisted exactly the cursor's 20
		// rows; the 5 appended after the last checkpoint died buffered.
		if lines := bytes.Count(blob, []byte{'\n'}); lines != 20 {
			t.Errorf("shard %d sink holds %d rows after kill, want the checkpoint cursor's 20", k, lines)
		}
	}

	resumed := streamOpts(workers)
	resumed.CheckpointDir = ckDir
	resumed.CheckpointEvery = 10
	resumed.Resume = true
	resumed.NewSink = fileSinks(t, sinkDir)
	rRes, err := study.RunStreamed(spec, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if rRes.Skipped == 0 {
		t.Error("resumed run skipped no probes — checkpoints were not loaded")
	}
	if got := renderStream(t, rRes); got != want {
		t.Errorf("resume after buffered-sink kill diverges from uninterrupted run")
	}
	if got := readSinks(t, sinkDir, workers); got != wantSinks {
		t.Errorf("sink files after buffered-sink kill + resume diverge (%d vs %d bytes)",
			len(got), len(wantSinks))
	}
}

// TestStreamResumeRejectsForeignCheckpoint: a checkpoint written by a
// different run shape must fail the shard, not silently seed it with
// wrong state.
func TestStreamResumeRejectsForeignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	first := streamOpts(1)
	first.CheckpointDir = dir
	if _, err := study.RunStreamed(streamSpec(), first); err != nil {
		t.Fatal(err)
	}
	other := streamSpec()
	other.Seed++
	resumed := streamOpts(1)
	resumed.CheckpointDir = dir
	resumed.Resume = true
	res, err := study.RunStreamed(other, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) == 0 {
		t.Error("resume with a different seed accepted the foreign checkpoint")
	}
}

// TestStreamResumeOfCompletedRun: resuming a run that already finished
// skips every probe and still renders the same output.
func TestStreamResumeOfCompletedRun(t *testing.T) {
	spec := streamSpec()
	dir := t.TempDir()
	opts := streamOpts(2)
	opts.CheckpointDir = dir
	res, err := study.RunStreamed(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := renderStream(t, res)

	again := streamOpts(2)
	again.CheckpointDir = dir
	again.Resume = true
	res2, err := study.RunStreamed(spec, again)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Folded != 0 {
		t.Errorf("resume of a completed run re-measured %d probes", res2.Folded)
	}
	if got := renderStream(t, res2); got != want {
		t.Errorf("resume of a completed run drifted:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

func counterValue(t *testing.T, snap *study.Snapshot, name string) int64 {
	t.Helper()
	return gaugeValue(t, snap, name)
}

// TestTruncateSinkFile pins the truncation helper's contract, including
// the partial trailing line a kill -9 leaves in a buffered file.
func TestTruncateSinkFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "records.jsonl")
	write := func(s string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	read := func() string {
		t.Helper()
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}

	write("a\nb\nc\nd\npart")
	if err := study.TruncateSinkFile(path, 2, false); err != nil {
		t.Fatal(err)
	}
	if got := read(); got != "a\nb\n" {
		t.Errorf("truncate to 2 lines = %q", got)
	}

	write("hdr\nr1\nr2\npartial")
	if err := study.TruncateSinkFile(path, 1, true); err != nil {
		t.Fatal(err)
	}
	if got := read(); got != "hdr\nr1\n" {
		t.Errorf("truncate with header = %q", got)
	}

	write("a\n")
	if err := study.TruncateSinkFile(path, 3, false); err == nil {
		t.Error("truncating past the file's line count did not error")
	}
	if err := study.TruncateSinkFile(filepath.Join(dir, "missing"), 5, false); err != nil {
		t.Errorf("missing file should be a no-op, got %v", err)
	}
}

// TestCSVSinkRoundTrip: the CSV sink writes a header plus one row per
// record and survives a header-less resumed append.
func TestCSVSinkRoundTrip(t *testing.T) {
	mem := study.Run(study.BuildWorld(study.PaperSpec().Scale(0.0032)))
	var buf bytes.Buffer
	sink, err := study.NewCSVSink(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range mem.Export() {
		if err := sink.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(buf.Bytes(), []byte{'\n'})
	if want := len(mem.Records) + 1; lines != want {
		t.Errorf("CSV sink wrote %d lines, want %d (header + records)", lines, want)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("probe_id,")) {
		t.Errorf("CSV sink missing header: %q", bytes.Split(buf.Bytes(), []byte{'\n'})[0])
	}
}
