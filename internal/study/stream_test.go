package study_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"github.com/dnswatch/dnsloc/internal/analysis"
	"github.com/dnswatch/dnsloc/internal/study"
)

// streamSpec is the streaming tests' shared run shape: small enough to
// re-run many times, large enough that every shard holds interceptions.
func streamSpec() study.Spec { return study.PaperSpec().Scale(0.0128) } // ~128 probes

func streamOpts(workers int) study.StreamOptions {
	return study.StreamOptions{
		Workers:        workers,
		NewAccumulator: func(int) study.Accumulator { return analysis.NewAccumulator() },
	}
}

// renderStream renders a streamed run's full deterministic surface:
// every table and figure from the merged accumulator plus the Stable
// metric snapshot.
func renderStream(t *testing.T, res *study.StreamResults) string {
	t.Helper()
	if len(res.Errors) != 0 {
		t.Fatalf("stream errors: %v", res.Errors)
	}
	acc := res.Acc.(*analysis.Accumulator)
	t4 := acc.Table4()
	return analysis.FormatTable4(t4) + analysis.CSVTable4(t4) +
		analysis.FormatTable5(acc.Table5()) +
		analysis.FormatFigure3(acc.Figure3(10)) +
		analysis.FormatFigure4(acc.Figure4(10)) +
		analysis.FormatAccuracy(acc.Accuracy()) +
		string(res.MetricsSnapshot(false).JSON())
}

// renderInMemory renders the identical surface from the in-memory
// pipeline's record slice.
func renderInMemory(t *testing.T, res *study.Results) string {
	t.Helper()
	if len(res.Errors) != 0 {
		t.Fatalf("shard errors: %v", res.Errors)
	}
	t4 := analysis.BuildTable4(res)
	return analysis.FormatTable4(t4) + analysis.CSVTable4(t4) +
		analysis.FormatTable5(analysis.BuildTable5(res)) +
		analysis.FormatFigure3(analysis.BuildFigure3(res, 10)) +
		analysis.FormatFigure4(analysis.BuildFigure4(res, 10)) +
		analysis.FormatAccuracy(analysis.BuildAccuracy(res)) +
		string(res.MetricsSnapshot(false).JSON())
}

// TestStreamedMatchesInMemory is the tentpole's acceptance property:
// the streamed pipeline at 1 and 4 workers renders byte-identical
// tables, figures, CSV, and Stable metric snapshot to the in-memory
// pipeline.
func TestStreamedMatchesInMemory(t *testing.T) {
	spec := streamSpec()
	want := renderInMemory(t, study.RunSharded(spec, study.EngineOptions{Workers: 2}))
	for _, workers := range []int{1, 4} {
		res, err := study.RunStreamed(spec, streamOpts(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := renderStream(t, res); got != want {
			t.Errorf("streamed workers=%d diverges from in-memory pipeline:\n--- in-memory ---\n%s--- streamed ---\n%s",
				workers, want, got)
		}
		if res.Folded == 0 {
			t.Errorf("workers=%d: folded no records", workers)
		}
	}
}

// TestStreamedRetainsNoRecords: the streaming pipeline's records
// retained gauge stays at zero — no shard ever accumulates a record
// slice — while the in-memory pipeline's equals its record count.
func TestStreamedRetainsNoRecords(t *testing.T) {
	spec := streamSpec()
	res, err := study.RunStreamed(spec, streamOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := gaugeValue(t, res.MetricsSnapshot(true), "study.records_retained"); got != 0 {
		t.Errorf("streamed records_retained = %d, want 0", got)
	}
	mem := study.RunSharded(spec, study.EngineOptions{Workers: 2})
	if got := gaugeValue(t, mem.MetricsSnapshot(true), "study.records_retained"); got == 0 {
		t.Error("in-memory records_retained = 0, want the largest shard's record count")
	}
}

func gaugeValue(t *testing.T, snap *study.Snapshot, name string) int64 {
	t.Helper()
	for _, m := range snap.Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %q not in snapshot", name)
	return 0
}

// sinkPath returns shard k's JSONL file under dir.
func sinkPath(dir string, k, workers int) string {
	return filepath.Join(dir, fmt.Sprintf("records-%d-of-%d.jsonl", k, workers))
}

// fileSinks wires per-shard JSONL file sinks into StreamOptions,
// truncating each file back to its checkpoint cursor on resume — the
// caller-side half of the sink resume contract.
func fileSinks(t *testing.T, dir string) func(k, workers, resumedAt int) (study.RecordSink, error) {
	t.Helper()
	return func(k, workers, resumedAt int) (study.RecordSink, error) {
		path := sinkPath(dir, k, workers)
		if err := study.TruncateSinkFile(path, resumedAt, false); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return study.NewJSONLSink(f), nil
	}
}

// readSinks concatenates the shard sink files in shard order.
func readSinks(t *testing.T, dir string, workers int) string {
	t.Helper()
	var buf bytes.Buffer
	for k := 0; k < workers; k++ {
		blob, err := os.ReadFile(sinkPath(dir, k, workers))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(blob)
	}
	return buf.String()
}

// TestStreamSinkMatchesExport: a single-shard streamed run's JSONL sink
// holds exactly the in-memory pipeline's export, line for line.
func TestStreamSinkMatchesExport(t *testing.T) {
	spec := streamSpec()
	dir := t.TempDir()
	opts := streamOpts(1)
	opts.NewSink = fileSinks(t, dir)
	res, err := study.RunStreamed(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("stream errors: %v", res.Errors)
	}

	mem := study.Run(study.BuildWorld(spec))
	var want bytes.Buffer
	sink := study.NewJSONLSink(&want)
	for _, e := range mem.Export() {
		if err := sink.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readSinks(t, dir, 1); got != want.String() {
		t.Errorf("sink output diverges from Export():\n--- want %d bytes, got %d bytes ---", want.Len(), len(got))
	}
}

// TestStreamCheckpointResume is the kill-and-resume acceptance test:
// a run halted mid-flight (no final checkpoint, exactly as a kill -9
// would leave the directory) and resumed from its shard checkpoints
// finishes with byte-identical tables, Stable metrics, and sink files
// to an uninterrupted streamed run.
func TestStreamCheckpointResume(t *testing.T) {
	spec := streamSpec()
	const workers = 2

	// Uninterrupted reference run, with sinks.
	refDir := t.TempDir()
	ref := streamOpts(workers)
	ref.NewSink = fileSinks(t, refDir)
	refRes, err := study.RunStreamed(spec, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := renderStream(t, refRes)
	wantSinks := readSinks(t, refDir, workers)

	// Killed run: checkpoint every 10 records, halt each shard at 25 —
	// between checkpoints, so the sink files run ahead of the cursor.
	ckDir := t.TempDir()
	sinkDir := t.TempDir()
	killed := streamOpts(workers)
	killed.CheckpointDir = ckDir
	killed.CheckpointEvery = 10
	killed.StopAfterProbes = 25
	killed.NewSink = fileSinks(t, sinkDir)
	kRes, err := study.RunStreamed(spec, killed)
	if err != nil {
		t.Fatal(err)
	}
	if !kRes.Stopped {
		t.Fatal("StopAfterProbes did not halt the run")
	}
	if got := counterValue(t, kRes.MetricsSnapshot(true), "study.checkpoints_written"); got == 0 {
		t.Error("killed run wrote no checkpoints")
	}

	// Resume from the checkpoints and finish.
	resumed := streamOpts(workers)
	resumed.CheckpointDir = ckDir
	resumed.CheckpointEvery = 10
	resumed.Resume = true
	resumed.NewSink = fileSinks(t, sinkDir)
	rRes, err := study.RunStreamed(spec, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if rRes.Skipped == 0 {
		t.Error("resumed run skipped no probes — checkpoints were not loaded")
	}
	if got := renderStream(t, rRes); got != want {
		t.Errorf("resumed run diverges from uninterrupted run:\n--- uninterrupted ---\n%s--- resumed ---\n%s",
			want, got)
	}
	if got := readSinks(t, sinkDir, workers); got != wantSinks {
		t.Errorf("resumed sink files diverge from uninterrupted run's (%d vs %d bytes)",
			len(got), len(wantSinks))
	}
}

// killSink wraps a JSONL sink but models a kill -9 at shutdown: Close
// closes the file WITHOUT flushing the sink's buffer, so every row
// appended since the last explicit Flush is lost — exactly what a
// buffered sink leaves behind when the process dies.
type killSink struct {
	inner *study.JSONLSink
	f     *os.File
}

func (s *killSink) Append(e study.ProbeExport) error { return s.inner.Append(e) }
func (s *killSink) Flush() error                     { return s.inner.Flush() }
func (s *killSink) Close() error                     { return s.f.Close() }

// TestStreamKillSinkResume is the sink-buffering half of the kill
// contract: rows buffered in a sink when the process dies are lost,
// but because each checkpoint flushes the sink first, the file always
// holds at least the cursor's rows. Resume truncates the surplus and
// appends; the finished files are byte-identical to an uninterrupted
// run's — no row duplicated, none lost. Before the flush-before-
// checkpoint fix this test failed in TruncateSinkFile: the checkpoint
// cursor claimed rows the dead sink's buffer never wrote.
func TestStreamKillSinkResume(t *testing.T) {
	spec := streamSpec()
	const workers = 2

	refDir := t.TempDir()
	ref := streamOpts(workers)
	ref.NewSink = fileSinks(t, refDir)
	refRes, err := study.RunStreamed(spec, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := renderStream(t, refRes)
	wantSinks := readSinks(t, refDir, workers)

	// Killed run: checkpoints at 10 and 20, halt at 25 — five rows die
	// in the sink buffer because killSink.Close never flushes.
	ckDir := t.TempDir()
	sinkDir := t.TempDir()
	killed := streamOpts(workers)
	killed.CheckpointDir = ckDir
	killed.CheckpointEvery = 10
	killed.StopAfterProbes = 25
	killed.NewSink = func(k, workers, resumedAt int) (study.RecordSink, error) {
		path := sinkPath(sinkDir, k, workers)
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return &killSink{inner: study.NewJSONLSink(f), f: f}, nil
	}
	kRes, err := study.RunStreamed(spec, killed)
	if err != nil {
		t.Fatal(err)
	}
	if !kRes.Stopped {
		t.Fatal("StopAfterProbes did not halt the run")
	}
	for k := 0; k < workers; k++ {
		blob, err := os.ReadFile(sinkPath(sinkDir, k, workers))
		if err != nil {
			t.Fatal(err)
		}
		// The checkpoint-time flushes persisted exactly the cursor's 20
		// rows; the 5 appended after the last checkpoint died buffered.
		if lines := bytes.Count(blob, []byte{'\n'}); lines != 20 {
			t.Errorf("shard %d sink holds %d rows after kill, want the checkpoint cursor's 20", k, lines)
		}
	}

	resumed := streamOpts(workers)
	resumed.CheckpointDir = ckDir
	resumed.CheckpointEvery = 10
	resumed.Resume = true
	resumed.NewSink = fileSinks(t, sinkDir)
	rRes, err := study.RunStreamed(spec, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if rRes.Skipped == 0 {
		t.Error("resumed run skipped no probes — checkpoints were not loaded")
	}
	if got := renderStream(t, rRes); got != want {
		t.Errorf("resume after buffered-sink kill diverges from uninterrupted run")
	}
	if got := readSinks(t, sinkDir, workers); got != wantSinks {
		t.Errorf("sink files after buffered-sink kill + resume diverge (%d vs %d bytes)",
			len(got), len(wantSinks))
	}
}

// TestStreamResumeForeignCheckpointRecovers: a checkpoint written by a
// different run shape must neither seed the shard with wrong state nor
// fail the run — the shard restarts from cursor 0 with a warning, and
// the output matches a fresh run of the new spec exactly.
func TestStreamResumeForeignCheckpointRecovers(t *testing.T) {
	other := streamSpec()
	other.Seed++
	fresh, err := study.RunStreamed(other, streamOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	want := renderStream(t, fresh)

	dir := t.TempDir()
	first := streamOpts(1)
	first.CheckpointDir = dir
	if _, err := study.RunStreamed(streamSpec(), first); err != nil {
		t.Fatal(err)
	}
	resumed := streamOpts(1)
	resumed.CheckpointDir = dir
	resumed.Resume = true
	res, err := study.RunStreamed(other, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("foreign checkpoint failed the run instead of recovering: %v", res.Errors)
	}
	if len(res.Warnings) == 0 {
		t.Error("foreign-checkpoint recovery logged no warning")
	}
	if res.Skipped != 0 {
		t.Errorf("foreign checkpoint seeded the shard with %d skipped probes", res.Skipped)
	}
	if got := counterValue(t, res.MetricsSnapshot(true), "study.checkpoint_recoveries"); got == 0 {
		t.Error("foreign-checkpoint recovery not counted in study.checkpoint_recoveries")
	}
	if got := renderStream(t, res); got != want {
		t.Errorf("recovery from foreign checkpoint diverges from a fresh run:\n--- fresh ---\n%s--- recovered ---\n%s",
			want, got)
	}
}

// TestStreamResumeOfCompletedRun: resuming a run that already finished
// skips every probe and still renders the same output.
func TestStreamResumeOfCompletedRun(t *testing.T) {
	spec := streamSpec()
	dir := t.TempDir()
	opts := streamOpts(2)
	opts.CheckpointDir = dir
	res, err := study.RunStreamed(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := renderStream(t, res)

	again := streamOpts(2)
	again.CheckpointDir = dir
	again.Resume = true
	res2, err := study.RunStreamed(spec, again)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Folded != 0 {
		t.Errorf("resume of a completed run re-measured %d probes", res2.Folded)
	}
	if got := renderStream(t, res2); got != want {
		t.Errorf("resume of a completed run drifted:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

func counterValue(t *testing.T, snap *study.Snapshot, name string) int64 {
	t.Helper()
	return gaugeValue(t, snap, name)
}

// brittleSink fails its shard's nth Append with EIO, once per process
// — modeling a one-off I/O failure a plain (non-retrying) sink cannot
// absorb, so it must escalate to the shard supervisor.
type brittleSink struct {
	inner   study.RecordSink
	n       int
	count   int
	tripped *bool
}

func (s *brittleSink) Append(e study.ProbeExport) error {
	s.count++
	if s.count == s.n && !*s.tripped {
		*s.tripped = true
		return &os.PathError{Op: "write", Path: "brittle", Err: syscall.EIO}
	}
	return s.inner.Append(e)
}
func (s *brittleSink) Flush() error {
	if f, ok := s.inner.(study.SinkFlusher); ok {
		return f.Flush()
	}
	return nil
}
func (s *brittleSink) Close() error { return s.inner.Close() }

// TestStreamSupervisorRestartsFailedShard: a shard whose sink fails
// hard mid-sweep is restarted from its last good checkpoint by the
// supervisor; the run reports no errors, counts the restart, and its
// output — tables, Stable metrics, sink files — is byte-identical to
// an undisturbed run's.
func TestStreamSupervisorRestartsFailedShard(t *testing.T) {
	spec := streamSpec()
	const workers = 2

	refDir := t.TempDir()
	ref := streamOpts(workers)
	ref.NewSink = fileSinks(t, refDir)
	refRes, err := study.RunStreamed(spec, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := renderStream(t, refRes)
	wantSinks := readSinks(t, refDir, workers)

	ckDir := t.TempDir()
	sinkDir := t.TempDir()
	tripped := false
	opts := streamOpts(workers)
	opts.CheckpointDir = ckDir
	opts.CheckpointEvery = 10
	opts.NewSink = func(k, workers, resumedAt int) (study.RecordSink, error) {
		inner, err := fileSinks(t, sinkDir)(k, workers, resumedAt)
		if err != nil {
			return nil, err
		}
		if k == 0 {
			// Fails once at the 15th append — past the cursor-10
			// checkpoint, so the restart resumes mid-shard.
			return &brittleSink{inner: inner, n: 15, tripped: &tripped}, nil
		}
		return inner, nil
	}
	res, err := study.RunStreamed(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("supervisor did not absorb the sink failure: %v", res.Errors)
	}
	if !tripped {
		t.Fatal("the brittle sink never tripped — test exercised nothing")
	}
	if res.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", res.Restarts)
	}
	if len(res.Warnings) == 0 {
		t.Error("shard restart logged no warning")
	}
	if got := counterValue(t, res.MetricsSnapshot(true), "study.shard_restarts"); got != 1 {
		t.Errorf("study.shard_restarts = %d, want 1", got)
	}
	if got := renderStream(t, res); got != want {
		t.Errorf("restarted run diverges from undisturbed run")
	}
	if got := readSinks(t, sinkDir, workers); got != wantSinks {
		t.Errorf("restarted sink files diverge (%d vs %d bytes)", len(got), len(wantSinks))
	}
}

// panicAcc panics on its shard's nth Fold — the contained-panic half
// of the supervisor contract.
type panicAcc struct {
	study.Accumulator
	n       int
	count   int
	tripped *bool
}

func (a *panicAcc) Fold(rec *study.ProbeRecord) {
	a.count++
	if a.count == a.n {
		*a.tripped = true
		panic("injected accumulator panic")
	}
	a.Accumulator.Fold(rec)
}

// TestStreamSupervisorRestartsPanickedShard: a panicking shard worker
// restarts cleanly from its checkpoint; the poisoned attempt's
// accumulator is discarded wholesale so nothing double-counts.
func TestStreamSupervisorRestartsPanickedShard(t *testing.T) {
	spec := streamSpec()
	const workers = 2
	want := renderStream(t, mustStream(t, spec, streamOpts(workers)))

	// Only the first factory call for shard 0 gets the panicking
	// wrapper: the supervisor's restart attempt — and the merge phase,
	// which type-asserts — see plain accumulators.
	tripped := false
	handed := false
	opts := streamOpts(workers)
	opts.CheckpointDir = t.TempDir()
	opts.CheckpointEvery = 10
	opts.NewAccumulator = func(k int) study.Accumulator {
		acc := analysis.NewAccumulator()
		if k == 0 && !handed {
			handed = true
			return &panicAcc{Accumulator: acc, n: 15, tripped: &tripped}
		}
		return acc
	}
	res, err := study.RunStreamed(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("supervisor did not absorb the panic: %v", res.Errors)
	}
	if !tripped {
		t.Fatal("the panicking accumulator never tripped")
	}
	if res.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", res.Restarts)
	}
	if got := renderStream(t, res); got != want {
		t.Errorf("restart after panic diverges from undisturbed run")
	}
}

// mustStream runs a streamed spec and fails the test on any error.
func mustStream(t *testing.T, spec study.Spec, opts study.StreamOptions) *study.StreamResults {
	t.Helper()
	res, err := study.RunStreamed(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStreamShardFailureAfterRestartBudget: a deterministic failure
// burns every restart and lands in Errors — supervision bounds, it
// does not loop forever.
func TestStreamShardFailureAfterRestartBudget(t *testing.T) {
	spec := streamSpec()
	opts := streamOpts(1)
	opts.MaxShardRestarts = 2
	opts.NewSink = func(k, workers, resumedAt int) (study.RecordSink, error) {
		return nil, &os.PathError{Op: "open", Path: "doomed", Err: syscall.EIO}
	}
	res, err := study.RunStreamed(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 1 {
		t.Fatalf("Errors = %v, want exactly one contained shard failure", res.Errors)
	}
	if res.Restarts != 2 {
		t.Errorf("Restarts = %d, want the full budget of 2", res.Restarts)
	}
}

// TestTruncateSinkFile pins the truncation helper's contract, including
// the partial trailing line a kill -9 leaves in a buffered file.
func TestTruncateSinkFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "records.jsonl")
	write := func(s string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	read := func() string {
		t.Helper()
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}

	write("a\nb\nc\nd\npart")
	if err := study.TruncateSinkFile(path, 2, false); err != nil {
		t.Fatal(err)
	}
	if got := read(); got != "a\nb\n" {
		t.Errorf("truncate to 2 lines = %q", got)
	}

	write("hdr\nr1\nr2\npartial")
	if err := study.TruncateSinkFile(path, 1, true); err != nil {
		t.Fatal(err)
	}
	if got := read(); got != "hdr\nr1\n" {
		t.Errorf("truncate with header = %q", got)
	}

	write("a\n")
	if err := study.TruncateSinkFile(path, 3, false); err == nil {
		t.Error("truncating past the file's line count did not error")
	}
	if err := study.TruncateSinkFile(filepath.Join(dir, "missing"), 5, false); err != nil {
		t.Errorf("missing file should be a no-op, got %v", err)
	}

	// Header-only file: zero records is exactly what the cursor claims,
	// and the header line must survive the truncation untouched.
	write("hdr\n")
	if err := study.TruncateSinkFile(path, 0, true); err != nil {
		t.Fatalf("header-only truncate to 0: %v", err)
	}
	if got := read(); got != "hdr\n" {
		t.Errorf("header-only truncate = %q, want the header kept", got)
	}

	// Checkpoint claims records the file never got (buffered rows died
	// before any flush): must error, not silently under-resume.
	write("hdr\nr1\n")
	if err := study.TruncateSinkFile(path, 4, true); err == nil {
		t.Error("cursor beyond EOF with header did not error")
	}

	// Final line missing its newline: the complete lines before it are
	// countable and keepable; the unterminated tail is cut.
	write("a\nb\npartial-no-newline")
	if err := study.TruncateSinkFile(path, 2, false); err != nil {
		t.Fatalf("truncate with unterminated tail: %v", err)
	}
	if got := read(); got != "a\nb\n" {
		t.Errorf("unterminated-tail truncate = %q, want %q", got, "a\nb\n")
	}

	// Torn CSV last row — a torn write left half a row with no newline;
	// resuming at the cursor's row count drops exactly the torn tail.
	write("probe_id,country\n1,nl\n2,de\n3,u")
	if err := study.TruncateSinkFile(path, 2, true); err != nil {
		t.Fatalf("torn CSV truncate: %v", err)
	}
	if got := read(); got != "probe_id,country\n1,nl\n2,de\n" {
		t.Errorf("torn CSV truncate = %q", got)
	}
}

// TestCSVSinkRoundTrip: the CSV sink writes a header plus one row per
// record and survives a header-less resumed append.
func TestCSVSinkRoundTrip(t *testing.T) {
	mem := study.Run(study.BuildWorld(study.PaperSpec().Scale(0.0032)))
	var buf bytes.Buffer
	sink, err := study.NewCSVSink(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range mem.Export() {
		if err := sink.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(buf.Bytes(), []byte{'\n'})
	if want := len(mem.Records) + 1; lines != want {
		t.Errorf("CSV sink wrote %d lines, want %d (header + records)", lines, want)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("probe_id,")) {
		t.Errorf("CSV sink missing header: %q", bytes.Split(buf.Bytes(), []byte{'\n'})[0])
	}
}
