package study

import (
	"net/netip"
	"sort"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/ttlprobe"
)

// TTLStats summarizes the TTL-ladder extension run across the fleet:
// for each verdict class, the distribution of the smallest TTL that
// produced an answer. The paper proposed exactly this measurement as
// future work (§6) but could not run it on RIPE Atlas; the simulated
// platform has no such restriction.
type TTLStats struct {
	// FirstTTLs maps verdict -> sorted first-answering TTLs.
	FirstTTLs map[core.Verdict][]int
}

// RunTTLExtension runs a TTL ladder towards Google's primary v4 address
// from every intercepted probe, plus cleanSample clean probes for the
// baseline.
func RunTTLExtension(res *Results, cleanSample int, maxTTL int) TTLStats {
	stats := TTLStats{FirstTTLs: make(map[core.Verdict][]int)}
	google := netip.AddrPortFrom(publicdns.Lookup(publicdns.Google).V4[0], 53)

	cleanSeen := 0
	for _, rec := range res.Records {
		if rec.Report == nil {
			continue
		}
		verdict := rec.Report.Verdict
		if verdict == core.VerdictNotIntercepted {
			if cleanSeen >= cleanSample {
				continue
			}
			cleanSeen++
		}
		net := rec.Net
		if net == nil {
			net = res.World.Net
		}
		client := &ttlprobe.SimTTLClient{Net: net, Host: rec.Probe.Host}
		ladder, err := ttlprobe.Ladder(client, google, publicdns.CanaryDomain, maxTTL)
		if err != nil {
			continue
		}
		stats.FirstTTLs[verdict] = append(stats.FirstTTLs[verdict], ladder.FirstTTL)
	}
	for _, ttls := range stats.FirstTTLs {
		sort.Ints(ttls)
	}
	return stats
}

// Median returns the median first-TTL for a verdict (0 if none).
func (s TTLStats) Median(v core.Verdict) int {
	ttls := s.FirstTTLs[v]
	if len(ttls) == 0 {
		return 0
	}
	return ttls[len(ttls)/2]
}

// Range returns the min and max first-TTL for a verdict.
func (s TTLStats) Range(v core.Verdict) (min, max int) {
	ttls := s.FirstTTLs[v]
	if len(ttls) == 0 {
		return 0, 0
	}
	return ttls[0], ttls[len(ttls)-1]
}
