package study

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/dnswatch/dnsloc/internal/faultfs"
	"github.com/dnswatch/dnsloc/internal/metrics"
)

// Checkpoint durability model
//
// A shard checkpoint must survive the real world: a kill mid-write, a
// power loss before the page cache drains, a cosmic-ray bit flip six
// months into a longitudinal run. The scheme:
//
//   - Each shard owns two generation slots, shard-K-of-N.a.json and
//     .b.json, written alternately. Every write carries a strictly
//     increasing generation number, so the reader can order the slots
//     without trusting mtimes.
//   - The on-disk frame is a CRC envelope: {"crc": c, "payload": p}
//     with c = CRC-32C(p). A torn write or a flipped bit fails the
//     checksum and the reader falls back to the other slot's older
//     generation — losing at most one checkpoint interval of progress,
//     never the run.
//   - Writes go tmp → fsync(file) → rename → fsync(dir), through a
//     faultfs.FS so tests can tear any step. The temp name embeds the
//     pid and a per-store sequence number (opened O_EXCL), so two runs
//     sharing a checkpoint directory cannot clobber each other's
//     half-written temp files.
//   - No read outcome is fatal: corrupt slots fall back, and when every
//     slot is corrupt — or was written by a different run shape — the
//     shard restarts from cursor 0 with a logged warning and a
//     study.checkpoint_recoveries count. Determinism makes restarting
//     safe: re-measuring from 0 lands on byte-identical output.
//
// Legacy compatibility: the pre-A/B single file shard-K-of-N.json
// (raw payload, no CRC envelope) is still read, as a generation-0
// candidate — an old checkpoint directory resumes seamlessly and the
// next write starts the slot rotation.

// checkpointVersion guards the on-disk checkpoint payload layout. The
// payload is unchanged since v1 (Generation is additive, absent fields
// decode as zero), so v1 files written before the A/B scheme remain
// valid.
const checkpointVersion = 1

// shardCheckpoint is one shard's persisted progress: everything needed
// to resume measurement at Cursor and still finish with byte-identical
// tables, CSV, and Stable metric snapshot.
type shardCheckpoint struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	// Generation orders the A/B slots: each store increments it, so the
	// reader picks the newest intact slot and falls back to the older
	// one when the newest is torn or rotted. Legacy single-file
	// checkpoints decode as generation 0.
	Generation int64 `json:"generation,omitempty"`
	// Cursor counts the shard's folded records; on resume the first
	// Cursor records are skipped.
	Cursor int `json:"cursor"`
	// Acc is the accumulator's MarshalState output at Cursor.
	Acc json.RawMessage `json:"accumulator"`
	// Metrics is the shard registry's full snapshot at Cursor; restored
	// additively before the resumed sweep, so restored + re-counted
	// events equal an uninterrupted run's totals.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// checkpointEnvelope frames a checkpoint on disk: the payload plus its
// CRC-32C, so torn writes and bit rot are detected on read instead of
// silently seeding a shard with garbage state.
type checkpointEnvelope struct {
	CRC     uint32          `json:"crc"`
	Payload json.RawMessage `json:"payload"`
}

// ckCRCTable is the Castagnoli polynomial — hardware-accelerated on
// amd64/arm64, and a different codepoint from IEEE so an envelope is
// never confused with other CRC uses.
var ckCRCTable = crc32.MakeTable(crc32.Castagnoli)

// checkpointFingerprint ties a checkpoint to the exact run shape that
// wrote it. The RNG "position" needs no field of its own: every stream
// (world build, seat dealing, availability pre-draw) is replayed from
// the seed on resume, and per-flow fault decisions hash packet content,
// so the cursor is the only position that exists.
func checkpointFingerprint(spec Spec, k, workers int) string {
	return fmt.Sprintf("v%d seed=%d probes=%d seats=%d shard=%d/%d fault=%t retry=%t",
		checkpointVersion, spec.Seed, spec.TotalProbes, spec.TotalSeats(), k, workers,
		spec.Fault != nil && spec.Fault.Active(), spec.Retry != nil)
}

// CheckpointPath returns shard k's legacy (pre-A/B, single-slot)
// checkpoint file under dir. Current runs write the generation slots
// from CheckpointSlotPaths instead, but this path is still read as a
// generation-0 fallback candidate.
func CheckpointPath(dir string, k, workers int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.json", k, workers))
}

// CheckpointSlotPaths returns shard k's two alternating generation
// slots under dir. Exported so harnesses (and curious operators) can
// find the files a run leaves behind.
func CheckpointSlotPaths(dir string, k, workers int) [2]string {
	base := filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d", k, workers))
	return [2]string{base + ".a.json", base + ".b.json"}
}

// ckRecovery classifies what loading a shard's checkpoints required.
type ckRecovery int

const (
	// ckFresh: no checkpoint present — a fresh start, not a recovery.
	ckFresh ckRecovery = iota
	// ckClean: the newest generation loaded intact.
	ckClean
	// ckFallback: at least one slot was torn or corrupt, but an older
	// intact generation carried the shard.
	ckFallback
	// ckAllCorrupt: every present slot failed its checksum or parse;
	// the shard restarts from cursor 0.
	ckAllCorrupt
	// ckForeign: the slots parse but belong to a different run shape
	// (version or fingerprint mismatch); the shard restarts from 0.
	ckForeign
)

func (r ckRecovery) String() string {
	switch r {
	case ckFresh:
		return "fresh"
	case ckClean:
		return "clean"
	case ckFallback:
		return "fallback-to-older-generation"
	case ckAllCorrupt:
		return "all-generations-corrupt"
	case ckForeign:
		return "foreign-checkpoint"
	default:
		return "unknown"
	}
}

// recovered reports whether the class counts as a recovery event
// (something was wrong and the pipeline healed around it).
func (r ckRecovery) recovered() bool {
	return r == ckFallback || r == ckAllCorrupt || r == ckForeign
}

// ckFileStatus is one slot file's read outcome.
type ckFileStatus int

const (
	ckFileMissing ckFileStatus = iota
	ckFileOK
	ckFileCorrupt // unreadable, torn envelope, CRC mismatch, bad JSON
	ckFileForeign // intact but wrong version or fingerprint
)

// readCheckpointFile reads and validates one slot. legacy selects the
// pre-envelope layout (raw payload, no CRC — corruption detection is
// best-effort JSON validity there).
func readCheckpointFile(path, fingerprint string, legacy bool) (*shardCheckpoint, ckFileStatus, string) {
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, ckFileMissing, ""
	}
	if err != nil {
		return nil, ckFileCorrupt, fmt.Sprintf("%s: %v", filepath.Base(path), err)
	}
	payload := blob
	if !legacy {
		var env checkpointEnvelope
		if err := json.Unmarshal(blob, &env); err != nil || len(env.Payload) == 0 {
			return nil, ckFileCorrupt, fmt.Sprintf("%s: torn or invalid envelope", filepath.Base(path))
		}
		if got := crc32.Checksum(env.Payload, ckCRCTable); got != env.CRC {
			return nil, ckFileCorrupt, fmt.Sprintf("%s: crc mismatch (got %08x, want %08x)", filepath.Base(path), got, env.CRC)
		}
		payload = env.Payload
	}
	var ck shardCheckpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		return nil, ckFileCorrupt, fmt.Sprintf("%s: %v", filepath.Base(path), err)
	}
	if ck.Version != checkpointVersion {
		return nil, ckFileForeign, fmt.Sprintf("%s: version %d, want %d", filepath.Base(path), ck.Version, checkpointVersion)
	}
	if ck.Fingerprint != fingerprint {
		return nil, ckFileForeign, fmt.Sprintf("%s: written by a different run (%q, want %q)", filepath.Base(path), ck.Fingerprint, fingerprint)
	}
	return &ck, ckFileOK, ""
}

// ckStore is one shard's checkpoint writer/reader: it owns the slot
// rotation state and the fsync/rename protocol.
type ckStore struct {
	fs          faultfs.FS
	dir         string
	slots       [2]string
	legacy      string
	fingerprint string

	gen  int64 // newest generation loaded or stored
	next int   // slot index the next store targets
	seq  int64 // per-store temp-name uniquifier
}

func newCkStore(fsys faultfs.FS, dir string, k, workers int, fingerprint string) *ckStore {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	return &ckStore{
		fs:          fsys,
		dir:         dir,
		slots:       CheckpointSlotPaths(dir, k, workers),
		legacy:      CheckpointPath(dir, k, workers),
		fingerprint: fingerprint,
	}
}

// load reads both generation slots plus the legacy file, returns the
// newest intact checkpoint (nil when the shard must start at cursor 0),
// the recovery classification, and a human-readable detail string for
// the warning log. It never fails: every corruption mode degrades to
// an older generation or a from-scratch restart. It also sweeps stale
// temp files a previous crash left behind.
func (s *ckStore) load() (*shardCheckpoint, ckRecovery, string) {
	s.sweepTemps()
	type candidate struct {
		path   string
		legacy bool
	}
	cands := []candidate{
		{s.slots[0], false},
		{s.slots[1], false},
		{s.legacy, true},
	}
	var best *shardCheckpoint
	bestSlot := -1
	corrupt, foreign := 0, 0
	var details []string
	for i, c := range cands {
		ck, status, detail := readCheckpointFile(c.path, s.fingerprint, c.legacy)
		switch status {
		case ckFileMissing:
		case ckFileCorrupt:
			corrupt++
			details = append(details, detail)
		case ckFileForeign:
			foreign++
			details = append(details, detail)
		case ckFileOK:
			if best == nil || ck.Generation > best.Generation {
				best = ck
				bestSlot = i
			}
		}
	}
	detail := ""
	if len(details) > 0 {
		detail = details[0]
		for _, d := range details[1:] {
			detail += "; " + d
		}
	}
	if best != nil {
		s.gen = best.Generation
		if bestSlot == 0 || bestSlot == 1 {
			s.next = 1 - bestSlot
		}
		if corrupt > 0 || foreign > 0 {
			return best, ckFallback, detail
		}
		return best, ckClean, ""
	}
	if corrupt > 0 {
		return nil, ckAllCorrupt, detail
	}
	if foreign > 0 {
		return nil, ckForeign, detail
	}
	return nil, ckFresh, ""
}

// clear removes every checkpoint file — a non-resume run invalidates
// whatever a previous run left in the directory, so a later crash
// restart can never resurrect a stale cursor. Best-effort.
func (s *ckStore) clear() {
	for _, p := range []string{s.slots[0], s.slots[1], s.legacy} {
		s.fs.Remove(p) //nolint:errcheck // absent files are fine
	}
	s.sweepTemps()
	s.gen, s.next = 0, 0
}

// sweepTemps removes temp files abandoned by crashed writers.
func (s *ckStore) sweepTemps() {
	for _, slot := range s.slots {
		matches, err := filepath.Glob(slot + ".*.tmp")
		if err != nil {
			continue
		}
		for _, m := range matches {
			s.fs.Remove(m) //nolint:errcheck
		}
	}
}

// store persists the next checkpoint generation into the alternating
// slot: marshal → CRC envelope → unique O_EXCL temp → write → fsync
// file → rename → fsync dir. The rotation state only advances on full
// success, so a failed store retries the same slot and the other slot's
// older generation stays intact either way.
func (s *ckStore) store(cursor int, acc Accumulator, reg *metrics.Registry) error {
	state, err := acc.MarshalState()
	if err != nil {
		return err
	}
	ck := shardCheckpoint{
		Version:     checkpointVersion,
		Fingerprint: s.fingerprint,
		Generation:  s.gen + 1,
		Cursor:      cursor,
		Acc:         state,
	}
	if reg != nil {
		ck.Metrics = reg.Snapshot(true)
	}
	payload, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	blob, err := json.Marshal(checkpointEnvelope{
		CRC:     crc32.Checksum(payload, ckCRCTable),
		Payload: payload,
	})
	if err != nil {
		return err
	}

	target := s.slots[s.next]
	s.seq++
	tmp := fmt.Sprintf("%s.%d-%d.tmp", target, os.Getpid(), s.seq)
	f, err := s.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if os.IsExist(err) {
		// A dead run with our pid (recycled) left this exact name; it is
		// stale by construction, so reclaim it.
		s.fs.Remove(tmp) //nolint:errcheck
		f, err = s.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	}
	if err != nil {
		return fmt.Errorf("checkpoint temp %s: %w", tmp, err)
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()        //nolint:errcheck
		s.fs.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("checkpoint write %s: %w", tmp, err)
	}
	// fsync before rename: otherwise the rename can become durable
	// before the data, and a power loss surfaces an empty or partial
	// file at the final path — the exact bug this layer exists to kill.
	if err := f.Sync(); err != nil {
		f.Close()        //nolint:errcheck
		s.fs.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("checkpoint fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("checkpoint close %s: %w", tmp, err)
	}
	if err := s.fs.Rename(tmp, target); err != nil {
		s.fs.Remove(tmp) //nolint:errcheck
		return fmt.Errorf("checkpoint rename %s: %w", target, err)
	}
	// fsync the directory so the rename itself survives a power loss.
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("checkpoint dirsync %s: %w", s.dir, err)
	}
	s.gen++
	s.next = 1 - s.next
	return nil
}
