package study

import (
	"fmt"
	"time"

	"github.com/dnswatch/dnsloc/internal/atlas"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/metrics"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// ExpKey identifies one of the eight location-query experiments: one
// operator over one address family, the granularity RIPE Atlas schedules
// measurements at (and the granularity of Table 4's "Total" columns).
type ExpKey struct {
	Resolver publicdns.ID
	Family   core.Family
}

// ProbeRecord is one probe's contribution to the study.
type ProbeRecord struct {
	Probe *atlas.Probe
	// Report is the detector output; nil when the probe never responded
	// to the platform at all.
	Report *core.Report
	// Responded marks which location experiments the probe was online
	// for; experiments it missed do not count it in that experiment's
	// totals.
	Responded map[ExpKey]bool
	// Net is the event loop the probe's host is wired into. In a sharded
	// run each record points at its own shard's network; follow-up
	// measurements (the TTL extension) must use it rather than a global
	// one.
	Net *netsim.Network
	// Err records a quarantined measurement: the probe's detector
	// panicked, the panic was contained, and the rest of the run
	// proceeded. Report is nil when Err is set.
	Err string
}

// RespondedAll4 reports whether the probe was online for all four
// operators' experiments in a family.
func (pr *ProbeRecord) RespondedAll4(f core.Family) bool {
	if pr.Report == nil {
		return false
	}
	for _, id := range publicdns.All {
		if !pr.Responded[ExpKey{id, f}] {
			return false
		}
	}
	return true
}

// InterceptedFor reports whether the report flags the operator as
// intercepted in the family.
func (pr *ProbeRecord) InterceptedFor(id publicdns.ID, f core.Family) bool {
	if pr.Report == nil {
		return false
	}
	set := pr.Report.InterceptedV4
	if f == core.V6 {
		set = pr.Report.InterceptedV6
	}
	for _, got := range set {
		if got == id {
			return true
		}
	}
	return false
}

// Results is a completed study run.
type Results struct {
	World   *World
	Records []*ProbeRecord
	// Errors records shard-level failures a sharded run contained: a
	// shard whose world build panicked contributes its error here and no
	// records; the other shards' records are merged as usual.
	Errors []string
	// Metrics is the run's registry — in a sharded run, the merge of
	// every shard's registry. Nil when Spec.DisableMetrics is set.
	Metrics *metrics.Registry
}

// Run executes the pilot study: the full detection technique from every
// responding probe, with platform availability deciding which probes
// appear in which experiment's totals.
func Run(w *World) *Results {
	return &Results{World: w, Records: runRecords(w), Metrics: w.Metrics}
}

// availabilityDraws is how many Responds samples one probe consumes in
// the campaign: one per v4 experiment, plus one per v6 experiment when
// the probe has routed IPv6. Dead probes are skipped before sampling.
func availabilityDraws(probe *atlas.Probe) int {
	if probe.Availability == atlas.Dead {
		return 0
	}
	n := len(publicdns.All)
	if probe.HasIPv6 {
		n *= 2
	}
	return n
}

// runRecords pre-draws the availability stream for the whole fleet, then
// runs the detector from every responding probe the world instantiated.
// In a shard-filtered world the stream still covers every probe (stubs
// included), so the Responded outcomes match the unsharded build; only
// the shard's own probes produce records.
func runRecords(w *World) []*ProbeRecord {
	var records []*ProbeRecord
	streamRecords(w, 0, func(rec *ProbeRecord) bool {
		records = append(records, rec)
		return true
	})
	w.studyMetrics.observeRetained(len(records))
	return records
}

// streamRecords is the measurement sweep underneath both pipelines:
// it yields each record the moment its measurement completes, retaining
// nothing itself. The in-memory path's yield collects the records; the
// streaming path folds each into an accumulator and lets it go. A false
// return from yield stops the sweep (used to simulate crashes in
// checkpoint tests).
//
// skip suppresses the first skip records the world would produce — a
// resumed shard's already-checkpointed prefix. Skipped probes are not
// measured, not yielded, and not counted in the engine's Stable
// counters (the checkpoint's restored registry already carries their
// contribution). Skipping is deterministic because a probe's
// measurement outcome never depends on the measurements before it: the
// availability stream is pre-drawn, fault decisions hash packet
// content, and resolver cache warmth only moves Diagnostic RTTs.
func streamRecords(w *World, skip int, yield func(*ProbeRecord) bool) {
	sm := w.studyMetrics
	predrawStart := time.Now()
	table := w.Platform.PredrawResponses(availabilityDraws)
	sm.observePredraw(time.Since(predrawStart))
	measureStart := time.Now()
	produced := 0
	for _, probe := range w.Platform.Probes() {
		if probe.Host == nil && w.Spec.partitioned() {
			continue // foreign stub: its own shard or lane records it
		}
		if produced < skip {
			produced++
			continue // checkpointed prefix: already folded and counted
		}
		produced++
		rec := &ProbeRecord{Probe: probe, Responded: make(map[ExpKey]bool), Net: w.Net}
		sm.noteRecord()
		if probe.Availability == atlas.Dead {
			sm.noteUnresponsive()
			if !yield(rec) {
				return
			}
			continue
		}
		// Per-experiment availability, replayed in the serial draw order:
		// v4 then (if routed) v6, per operator.
		draws := table[probe.ID]
		online := false
		j := 0
		for _, id := range publicdns.All {
			if draws[j] {
				rec.Responded[ExpKey{id, core.V4}] = true
				online = true
			}
			j++
			if probe.HasIPv6 {
				if draws[j] {
					rec.Responded[ExpKey{id, core.V6}] = true
					online = true
				}
				j++
			}
		}
		if !online {
			sm.noteUnresponsive()
			if !yield(rec) {
				return
			}
			continue
		}
		rec.Report, rec.Err = measure(w, probe)
		sm.noteMeasured(rec.Err != "")
		if !yield(rec) {
			return
		}
	}
	sm.observeMeasure(time.Since(measureStart), produced-skip)
}

// measure runs the detector for one probe, containing any panic: a
// probe whose measurement blows up is quarantined (recorded with the
// panic message) instead of taking the shard — and with it the run —
// down. The world's event loop is drained afterwards so a half-finished
// flow cannot leak packets into the next probe's measurement.
func measure(w *World, probe *atlas.Probe) (report *core.Report, errMsg string) {
	defer func() {
		if r := recover(); r != nil {
			report = nil
			errMsg = fmt.Sprintf("quarantined: %v", r)
			// Drain in-flight events; a panicking drain would defeat the
			// quarantine, so contain that too.
			func() {
				defer func() { recover() }()
				w.Net.Run()
			}()
		}
	}()
	det := w.Platform.Detector(probe)
	if w.Spec.ClientWrapper != nil {
		det.Client = w.Spec.ClientWrapper(det.Client, probe)
	}
	return det.Run(), ""
}

// Intercepted returns the records whose probes the technique flagged as
// intercepted in any family (the paper's 220).
func (r *Results) Intercepted() []*ProbeRecord {
	var out []*ProbeRecord
	for _, rec := range r.Records {
		if rec.Report != nil && rec.Report.Intercepted() {
			out = append(out, rec)
		}
	}
	return out
}

// Quarantined returns the records whose measurements panicked and were
// contained.
func (r *Results) Quarantined() []*ProbeRecord {
	var out []*ProbeRecord
	for _, rec := range r.Records {
		if rec.Err != "" {
			out = append(out, rec)
		}
	}
	return out
}
