package study

import (
	"github.com/dnswatch/dnsloc/internal/atlas"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// ExpKey identifies one of the eight location-query experiments: one
// operator over one address family, the granularity RIPE Atlas schedules
// measurements at (and the granularity of Table 4's "Total" columns).
type ExpKey struct {
	Resolver publicdns.ID
	Family   core.Family
}

// ProbeRecord is one probe's contribution to the study.
type ProbeRecord struct {
	Probe *atlas.Probe
	// Report is the detector output; nil when the probe never responded
	// to the platform at all.
	Report *core.Report
	// Responded marks which location experiments the probe was online
	// for; experiments it missed do not count it in that experiment's
	// totals.
	Responded map[ExpKey]bool
}

// RespondedAll4 reports whether the probe was online for all four
// operators' experiments in a family.
func (pr *ProbeRecord) RespondedAll4(f core.Family) bool {
	if pr.Report == nil {
		return false
	}
	for _, id := range publicdns.All {
		if !pr.Responded[ExpKey{id, f}] {
			return false
		}
	}
	return true
}

// InterceptedFor reports whether the report flags the operator as
// intercepted in the family.
func (pr *ProbeRecord) InterceptedFor(id publicdns.ID, f core.Family) bool {
	if pr.Report == nil {
		return false
	}
	set := pr.Report.InterceptedV4
	if f == core.V6 {
		set = pr.Report.InterceptedV6
	}
	for _, got := range set {
		if got == id {
			return true
		}
	}
	return false
}

// Results is a completed study run.
type Results struct {
	World   *World
	Records []*ProbeRecord
}

// Run executes the pilot study: the full detection technique from every
// responding probe, with platform availability deciding which probes
// appear in which experiment's totals.
func Run(w *World) *Results {
	res := &Results{World: w}
	for _, probe := range w.Platform.Probes() {
		rec := &ProbeRecord{Probe: probe, Responded: make(map[ExpKey]bool)}
		res.Records = append(res.Records, rec)
		if probe.Availability == atlas.Dead {
			continue
		}
		// Sample per-experiment availability (deterministic order).
		online := false
		for _, id := range publicdns.All {
			if w.Platform.Responds(probe) {
				rec.Responded[ExpKey{id, core.V4}] = true
				online = true
			}
			if probe.HasIPv6 && w.Platform.Responds(probe) {
				rec.Responded[ExpKey{id, core.V6}] = true
				online = true
			}
		}
		if !online {
			continue
		}
		rec.Report = w.Platform.Detector(probe).Run()
	}
	return res
}

// Intercepted returns the records whose probes the technique flagged as
// intercepted in any family (the paper's 220).
func (r *Results) Intercepted() []*ProbeRecord {
	var out []*ProbeRecord
	for _, rec := range r.Records {
		if rec.Report != nil && rec.Report.Intercepted() {
			out = append(out, rec)
		}
	}
	return out
}
