package study

import (
	"time"

	"github.com/dnswatch/dnsloc/internal/metrics"
)

// Snapshot is the study engine's exported metric snapshot (text via
// Snapshot.Text, JSON via Snapshot.JSON). See internal/metrics for the
// determinism rules.
type Snapshot = metrics.Snapshot

// MetricsSnapshot renders the run's merged registry. With
// includeDiagnostic false it is the deterministic form — only Stable,
// shard-invariant metrics — which is byte-identical at any worker count
// for a given spec (CI diffs it, the golden corpus commits it). With
// true it adds the Diagnostic layer: RTT histograms, NAT occupancy,
// and wall-clock phase timings. Empty when metrics were disabled.
func (r *Results) MetricsSnapshot(includeDiagnostic bool) *Snapshot {
	return r.Metrics.Snapshot(includeDiagnostic)
}

// studyMetrics is the engine's own instrument panel: fleet progress
// counters (Stable — they derive from the spec and the pre-drawn
// availability stream) and per-phase wall-clock gauges (Diagnostic —
// they measure the host machine, and as max-gauges they record the
// slowest shard).
type studyMetrics struct {
	probes       *metrics.Counter // records produced (stubs excluded)
	measured     *metrics.Counter // probes whose detector ran
	unresponsive *metrics.Counter // dead or offline for every experiment
	quarantined  *metrics.Counter // measurements that panicked, contained

	phaseBuildMs   *metrics.Gauge // world construction, slowest shard
	phasePredrawMs *metrics.Gauge // availability pre-draw, slowest shard
	phaseMeasureMs *metrics.Gauge // detection sweep, slowest shard
	throughput     *metrics.Gauge // probes/second, fastest shard

	// Streaming-pipeline instruments. All Diagnostic: retention depends
	// on the pipeline mode and worker count, and checkpoint/resume
	// counters differ between an interrupted run and an uninterrupted
	// one, while both must render the same Stable snapshot.
	recordsRetained *metrics.Gauge   // peak ProbeRecords held at once, largest shard
	checkpoints     *metrics.Counter // shard checkpoints written
	resumeSkipped   *metrics.Counter // probes skipped on resume via checkpoints

	// Self-healing instruments. Diagnostic for the same reason as the
	// checkpoint counters: recovery activity depends on the fault
	// history, not the spec, while a healed run and an undisturbed one
	// must still render the same Stable snapshot. (study.shard_restarts
	// is the odd one out: supervision happens above the shard registries,
	// so RunStreamed adds it to the merged registry post-merge.)
	checkpointRecoveries *metrics.Counter // corrupt/foreign checkpoints healed around
	checkpointWriteFails *metrics.Counter // checkpoint stores that failed (retried next interval)
	sinkRetries          *metrics.Counter // sink heal attempts (close/repair/reopen/replay)
	sinksDegraded        *metrics.Counter // sinks permanently dropped (ENOSPC)
}

func newStudyMetrics(reg *metrics.Registry) *studyMetrics {
	if reg == nil {
		return nil
	}
	return &studyMetrics{
		probes:         reg.Counter("study.probes", metrics.Stable),
		measured:       reg.Counter("study.probes_measured", metrics.Stable),
		unresponsive:   reg.Counter("study.probes_unresponsive", metrics.Stable),
		quarantined:    reg.Counter("study.quarantined", metrics.Stable),
		phaseBuildMs:   reg.Gauge("study.phase_build_ms", metrics.Diagnostic),
		phasePredrawMs: reg.Gauge("study.phase_predraw_ms", metrics.Diagnostic),
		phaseMeasureMs: reg.Gauge("study.phase_measure_ms", metrics.Diagnostic),
		throughput:     reg.Gauge("study.shard_probes_per_s", metrics.Diagnostic),

		recordsRetained: reg.Gauge("study.records_retained", metrics.Diagnostic),
		checkpoints:     reg.Counter("study.checkpoints_written", metrics.Diagnostic),
		resumeSkipped:   reg.Counter("study.resume_probes_skipped", metrics.Diagnostic),

		checkpointRecoveries: reg.Counter("study.checkpoint_recoveries", metrics.Diagnostic),
		checkpointWriteFails: reg.Counter("study.checkpoint_write_failures", metrics.Diagnostic),
		sinkRetries:          reg.Counter("study.sink_retries", metrics.Diagnostic),
		sinksDegraded:        reg.Counter("study.sinks_degraded", metrics.Diagnostic),
	}
}

// Nil-safe recording helpers.

func (sm *studyMetrics) noteRecord() {
	if sm != nil {
		sm.probes.Inc()
	}
}

func (sm *studyMetrics) noteMeasured(quarantined bool) {
	if sm == nil {
		return
	}
	sm.measured.Inc()
	if quarantined {
		sm.quarantined.Inc()
	}
}

func (sm *studyMetrics) noteUnresponsive() {
	if sm != nil {
		sm.unresponsive.Inc()
	}
}

func (sm *studyMetrics) observeBuild(d time.Duration) {
	if sm != nil {
		sm.phaseBuildMs.Observe(d.Milliseconds())
	}
}

func (sm *studyMetrics) observePredraw(d time.Duration) {
	if sm != nil {
		sm.phasePredrawMs.Observe(d.Milliseconds())
	}
}

func (sm *studyMetrics) observeRetained(n int) {
	if sm != nil {
		sm.recordsRetained.Observe(int64(n))
	}
}

func (sm *studyMetrics) noteCheckpoint() {
	if sm != nil {
		sm.checkpoints.Inc()
	}
}

func (sm *studyMetrics) noteResumeSkipped(n int) {
	if sm != nil {
		sm.resumeSkipped.Add(int64(n))
	}
}

func (sm *studyMetrics) noteCheckpointRecovery() {
	if sm != nil {
		sm.checkpointRecoveries.Inc()
	}
}

func (sm *studyMetrics) noteCheckpointWriteFailure() {
	if sm != nil {
		sm.checkpointWriteFails.Inc()
	}
}

// noteSinkHealing folds a closed sink's self-healing stats into the
// shard registry.
func (sm *studyMetrics) noteSinkHealing(st SinkStats) {
	if sm == nil {
		return
	}
	sm.sinkRetries.Add(st.Retries)
	if st.Degraded {
		sm.sinksDegraded.Inc()
	}
}

func (sm *studyMetrics) observeMeasure(d time.Duration, records int) {
	if sm == nil {
		return
	}
	sm.phaseMeasureMs.Observe(d.Milliseconds())
	if secs := d.Seconds(); secs > 0 {
		sm.throughput.Observe(int64(float64(records) / secs))
	}
}
