package study_test

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/dnswatch/dnsloc/internal/study"
)

// stableSnap renders the deterministic half of the metrics plane.
func stableSnap(res *study.Results) string {
	return string(res.MetricsSnapshot(false).JSON())
}

// TestLaneEngineDeterministic extends the worker-count determinism pin
// to the lanes axis: any (workers × lanes) grid must reproduce the
// serial run byte-for-byte — record order, every rendered table and
// figure, the availability totals, and the Stable metrics snapshot.
// The grid includes an uneven split (lanes that do not divide the
// shard's probe count) so the window math is exercised, not just the
// round numbers.
func TestLaneEngineDeterministic(t *testing.T) {
	spec := study.PaperSpec().Scale(0.05)

	serial := study.RunSharded(spec, study.EngineOptions{Workers: 1, Lanes: 1})
	if len(serial.Errors) != 0 {
		t.Fatalf("serial run reported errors: %v", serial.Errors)
	}
	wantRender := renderAll(serial)
	wantTotals := respondedTotals(serial)
	wantMetrics := stableSnap(serial)

	grids := []struct{ workers, lanes int }{
		{1, 4},
		{2, 2},
		{3, 2},
		{1, 7}, // uneven windows: 500/1 shard, 7 lanes
		{4, 3},
	}
	for _, g := range grids {
		g := g
		t.Run(fmt.Sprintf("w%dxl%d", g.workers, g.lanes), func(t *testing.T) {
			res := study.RunSharded(spec, study.EngineOptions{Workers: g.workers, Lanes: g.lanes})
			if len(res.Errors) != 0 {
				t.Fatalf("lane run reported errors: %v", res.Errors)
			}
			if len(res.Records) != len(serial.Records) {
				t.Fatalf("record count = %d, serial has %d", len(res.Records), len(serial.Records))
			}
			for i := range res.Records {
				if res.Records[i].Probe.ID != serial.Records[i].Probe.ID {
					t.Fatalf("record %d is probe %d, serial has %d",
						i, res.Records[i].Probe.ID, serial.Records[i].Probe.ID)
				}
			}
			if got := renderAll(res); got != wantRender {
				t.Errorf("rendered output diverges from serial run\nserial:\n%s\nlanes:\n%s", wantRender, got)
			}
			if got := respondedTotals(res); !reflect.DeepEqual(got, wantTotals) {
				t.Errorf("responded totals diverge: got %v want %v", got, wantTotals)
			}
			if got := stableSnap(res); got != wantMetrics {
				t.Errorf("stable metrics snapshot diverges from serial run\nserial:\n%s\nlanes:\n%s", wantMetrics, got)
			}
		})
	}
}

// TestLaneFaultedDeterministic pins the lanes axis under fault
// injection: the per-probe exports of a faulted study are identical at
// any lane count, because fault decisions hash packet content and every
// lane replays the same RNG streams its probes would see serially.
func TestLaneFaultedDeterministic(t *testing.T) {
	spec := faultedSpec()

	serial := study.RunSharded(spec, study.EngineOptions{Workers: 1, Lanes: 1})
	if n := len(serial.Quarantined()); n != 0 {
		t.Fatalf("faulted serial run quarantined %d probes", n)
	}
	want := exportJSON(t, serial)
	wantMetrics := stableSnap(serial)

	grids := []struct{ workers, lanes int }{{1, 4}, {2, 3}}
	for _, g := range grids {
		g := g
		t.Run(fmt.Sprintf("w%dxl%d", g.workers, g.lanes), func(t *testing.T) {
			res := study.RunSharded(spec, study.EngineOptions{Workers: g.workers, Lanes: g.lanes})
			if len(res.Errors) != 0 {
				t.Fatalf("lane run reported errors: %v", res.Errors)
			}
			got := exportJSON(t, res)
			if len(got) != len(want) {
				t.Fatalf("export rows = %d, serial has %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("export row %d diverges\nserial: %s\nlanes:  %s", i, want[i], got[i])
				}
			}
			if gotM := stableSnap(res); gotM != wantMetrics {
				t.Errorf("stable metrics snapshot diverges under faults")
			}
		})
	}
}

// TestStreamLanesMatchSingleLane: the lane-parallel streaming pipeline
// renders byte-identical tables, Stable metrics, and sink files to the
// single-lane pipeline at any (workers × lanes) combination — the
// committer folds lanes strictly in lane order, so the output order is
// the single-lane order.
func TestStreamLanesMatchSingleLane(t *testing.T) {
	spec := streamSpec()

	refDir := t.TempDir()
	ref := streamOpts(2)
	ref.NewSink = fileSinks(t, refDir)
	refRes, err := study.RunStreamed(spec, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := renderStream(t, refRes)
	wantSinks := readSinks(t, refDir, 2)

	grids := []struct{ workers, lanes int }{{2, 2}, {2, 3}, {1, 4}}
	for _, g := range grids {
		g := g
		t.Run(fmt.Sprintf("w%dxl%d", g.workers, g.lanes), func(t *testing.T) {
			dir := t.TempDir()
			opts := streamOpts(g.workers)
			opts.Lanes = g.lanes
			opts.NewSink = fileSinks(t, dir)
			res, err := study.RunStreamed(spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := renderStream(t, res); got != want {
				t.Errorf("lane-streamed output diverges from single-lane pipeline:\n--- single-lane ---\n%s--- lanes ---\n%s",
					want, got)
			}
			// Within a shard the committer wrote rows in lane order,
			// which is the shard's probe order — the sink files must
			// match the single-lane run's byte for byte. (Only at the
			// reference's worker count: shard concatenation order
			// differs across worker counts.)
			if g.workers == 2 {
				if gotSinks := readSinks(t, dir, g.workers); gotSinks != wantSinks {
					t.Errorf("lane-streamed sink files diverge (%d vs %d bytes)", len(gotSinks), len(wantSinks))
				}
			}
		})
	}
}

// TestStreamLaneCheckpointResume pins the cross-lane resume contract:
// the checkpoint fingerprint is lane-free and the cursor counts shard
// ranks, so a run killed at one lane count resumes at any other and
// finishes byte-identical to an uninterrupted run. Both directions are
// exercised — lane-boundary checkpoints resumed by the single-lane
// interval path, and interval checkpoints resumed mid-lane by the lane
// path.
func TestStreamLaneCheckpointResume(t *testing.T) {
	spec := streamSpec()
	const workers = 2

	refDir := t.TempDir()
	ref := streamOpts(workers)
	ref.NewSink = fileSinks(t, refDir)
	refRes, err := study.RunStreamed(spec, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := renderStream(t, refRes)
	wantSinks := readSinks(t, refDir, workers)

	cases := []struct {
		name                string
		killLanes, resLanes int
		stopAfter           int
	}{
		// 128 probes / 2 shards = 64 ranks; 4 lanes → boundaries at
		// 16/32/48/64. Halting at 40 leaves checkpoints at 16 and 32.
		{"lanes4-to-lanes1", 4, 1, 40},
		// Single-lane interval checkpoints at 10 and 20, halt at 25.
		// The cursor 20 lands inside lane 0 of 3's window (ranks 0..21),
		// so the lane path resumes mid-window: lane 0 re-measures its
		// last ranks, lanes 1 and 2 run in full.
		{"lanes1-to-lanes3", 1, 3, 25},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ckDir := t.TempDir()
			sinkDir := t.TempDir()
			killed := streamOpts(workers)
			killed.Lanes = tc.killLanes
			killed.CheckpointDir = ckDir
			killed.CheckpointEvery = 10
			killed.StopAfterProbes = tc.stopAfter
			killed.NewSink = fileSinks(t, sinkDir)
			kRes, err := study.RunStreamed(spec, killed)
			if err != nil {
				t.Fatal(err)
			}
			if !kRes.Stopped {
				t.Fatal("StopAfterProbes did not halt the run")
			}
			if got := counterValue(t, kRes.MetricsSnapshot(true), "study.checkpoints_written"); got == 0 {
				t.Fatal("killed run wrote no checkpoints")
			}

			resumed := streamOpts(workers)
			resumed.Lanes = tc.resLanes
			resumed.CheckpointDir = ckDir
			resumed.CheckpointEvery = 10
			resumed.Resume = true
			resumed.NewSink = fileSinks(t, sinkDir)
			rRes, err := study.RunStreamed(spec, resumed)
			if err != nil {
				t.Fatal(err)
			}
			if rRes.Skipped == 0 {
				t.Error("resumed run skipped no probes — checkpoints were not loaded across lane counts")
			}
			if got := renderStream(t, rRes); got != want {
				t.Errorf("cross-lane resume diverges from uninterrupted run:\n--- uninterrupted ---\n%s--- resumed ---\n%s",
					want, got)
			}
			if got := readSinks(t, sinkDir, workers); got != wantSinks {
				t.Errorf("cross-lane resumed sink files diverge (%d vs %d bytes)", len(got), len(wantSinks))
			}
		})
	}
}

// TestStreamLaneResumeOfCompletedRun: resuming a lane-mode run that
// already finished skips every lane's window — no lane world is built,
// nothing re-measures — and the refreshed final checkpoint plus outputs
// stay byte-identical.
func TestStreamLaneResumeOfCompletedRun(t *testing.T) {
	spec := streamSpec()
	ckDir := t.TempDir()
	sinkDir := t.TempDir()

	first := streamOpts(2)
	first.Lanes = 3
	first.CheckpointDir = ckDir
	first.NewSink = fileSinks(t, sinkDir)
	fRes, err := study.RunStreamed(spec, first)
	if err != nil {
		t.Fatal(err)
	}
	want := renderStream(t, fRes)
	wantSinks := readSinks(t, sinkDir, 2)

	again := streamOpts(2)
	again.Lanes = 3
	again.CheckpointDir = ckDir
	again.Resume = true
	again.NewSink = fileSinks(t, sinkDir)
	aRes, err := study.RunStreamed(spec, again)
	if err != nil {
		t.Fatal(err)
	}
	if aRes.Folded != 0 {
		t.Errorf("resume of completed run re-measured %d probes, want 0", aRes.Folded)
	}
	if aRes.Skipped == 0 {
		t.Error("resume of completed run skipped nothing")
	}
	if got := renderStream(t, aRes); got != want {
		t.Errorf("resume of completed lane run diverges")
	}
	if got := readSinks(t, sinkDir, 2); got != wantSinks {
		t.Errorf("resume of completed lane run rewrote sink files (%d vs %d bytes)", len(got), len(wantSinks))
	}
}

// TestLaneAdversaryDeterministic pins the lanes axis under an active
// adversary: forged answers and rate-limit evasion derive from
// per-probe RNG chains, so lane partitioning must not move them.
func TestLaneAdversaryDeterministic(t *testing.T) {
	scenarios := []struct {
		name    string
		level   int
		faulted bool
	}{
		{"clean-forge", 2, false},
		{"faulted-rate-limit", 4, true},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			spec := adversarySpec(sc.level, sc.faulted)
			serial := study.RunSharded(spec, study.EngineOptions{Workers: 1, Lanes: 1})
			want := exportJSON(t, serial)
			wantReport := reportStrings(serial)

			res := study.RunSharded(spec, study.EngineOptions{Workers: 2, Lanes: 2})
			if len(res.Errors) != 0 {
				t.Fatalf("lane run reported errors: %v", res.Errors)
			}
			got := exportJSON(t, res)
			if len(got) != len(want) {
				t.Fatalf("export rows = %d, serial has %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("export row %d diverges\nserial: %s\nlanes:  %s", i, want[i], got[i])
				}
			}
			if !reflect.DeepEqual(reportStrings(res), wantReport) {
				t.Errorf("rendered reports diverge between serial and 2x2 lanes")
			}
		})
	}
}
