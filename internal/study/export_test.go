package study_test

import (
	"encoding/json"
	"testing"

	"github.com/dnswatch/dnsloc/internal/study"
)

func TestExportRoundTripsThroughJSON(t *testing.T) {
	res := study.Run(study.BuildWorld(study.PaperSpec().Scale(0.02)))
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Seed        int64               `json:"seed"`
		TotalProbes int                 `json:"total_probes"`
		Seats       int                 `json:"interception_seats"`
		Probes      []study.ProbeExport `json:"probes"`
	}
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.TotalProbes != res.World.Spec.TotalProbes || len(decoded.Probes) != decoded.TotalProbes {
		t.Errorf("probes = %d/%d", len(decoded.Probes), decoded.TotalProbes)
	}
	intercepted, truthSeats := 0, 0
	for _, p := range decoded.Probes {
		if len(p.InterceptedV4)+len(p.InterceptedV6) > 0 {
			intercepted++
		}
		if p.TruthLocation != "none" {
			truthSeats++
		}
		if p.TruthLocation == "cpe" && p.Responded && p.CPEFingerprint == "" {
			t.Errorf("probe %d: CPE seat with no fingerprint", p.ProbeID)
		}
	}
	if intercepted == 0 || truthSeats == 0 {
		t.Errorf("intercepted=%d truthSeats=%d", intercepted, truthSeats)
	}
	if intercepted != truthSeats {
		t.Errorf("detected %d != installed %d", intercepted, truthSeats)
	}
}
