package study

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/dnswatch/dnsloc/internal/faultfs"
)

// Crash-torture harness: the robustness layer's headline proof. A
// campaign runs the streamed pipeline over and over on a fault-injected
// filesystem, killing it mid-flight, rotting its checkpoint and sink
// files between runs, and resuming — then demands the final tables,
// sink files, and Stable metrics snapshot are byte-identical to an
// undisturbed run. Every corruption decision comes from the campaign
// seed, so a CI failure replays exactly with `pilotstudy -torture-seed`.

// TortureOptions configure a crash-torture campaign.
type TortureOptions struct {
	// Spec is the run shape tortured and referenced; required.
	Spec Spec
	// Workers is the shard count; <= 0 means 4.
	Workers int
	// Lanes pins the per-shard lane count for every tortured cycle;
	// <= 0 means the campaign varies it per cycle (1..3) from Seed,
	// exercising cross-lane resume: the checkpoint cursor counts shard
	// ranks and the fingerprint is lane-free, so a cycle killed at one
	// lane count must resume cleanly at another. The undisturbed
	// reference always runs single-lane.
	Lanes int
	// Cycles is the number of kill/corrupt/resume rounds; the final
	// round always runs to completion. <= 0 means 30.
	Cycles int
	// Seed drives every randomized choice: kill points, which files rot
	// and how, and the per-cycle faultfs schedules.
	Seed int64
	// Dir is the campaign's scratch directory (checkpoints, sinks, and
	// the reference run's sinks live under it); required.
	Dir string
	// CheckpointEvery is the tortured run's checkpoint interval; <= 0
	// means 5 (small, so kills land between checkpoints).
	CheckpointEvery int
	// NewAccumulator builds shard accumulators, as in StreamOptions;
	// required.
	NewAccumulator func(shard int) Accumulator
	// Render maps a completed run to its deterministic output surface
	// (tables, figures, Stable metrics); required. The harness compares
	// it byte-for-byte between the tortured and undisturbed runs.
	Render func(*StreamResults) string
	// Warnf, when non-nil, receives the pipeline's self-healing
	// warnings live.
	Warnf func(format string, args ...any)
}

// TortureReport is a campaign's outcome.
type TortureReport struct {
	// Cycles is the rounds executed; Kills how many were killed
	// mid-flight (the final round never is).
	Cycles, Kills int
	// Corruptions counts each between-cycle corruption kind injected:
	// checkpoint_bitflip, sink_tear, sink_garbage,
	// both_generations_corrupt.
	Corruptions map[string]int
	// FaultCounts sums the faultfs injections across all cycles,
	// checkpoint and sink filesystems combined.
	FaultCounts map[faultfs.Class]int64
	// Restarts and Warnings sum the supervisor restarts and
	// self-healing warnings across cycles.
	Restarts, Warnings int
	// CheckpointRecoveries, CheckpointWriteFailures, and SinkRetries
	// are the final run's diagnostic counters — cumulative, because
	// checkpoints carry the counters forward across resumes.
	CheckpointRecoveries, CheckpointWriteFailures, SinkRetries int64
	// OutputIdentical and SinksIdentical are the acceptance verdicts:
	// rendered output and concatenated sink bytes match the undisturbed
	// run exactly.
	OutputIdentical, SinksIdentical bool
	// Diff describes the first divergence when a verdict is false.
	Diff string
}

// Passed reports full byte-identity with the undisturbed run.
func (r *TortureReport) Passed() bool { return r.OutputIdentical && r.SinksIdentical }

// Summary renders the campaign one line per fact, for CLI and CI logs.
func (r *TortureReport) Summary() string {
	verdict := "PASS: tortured run byte-identical to undisturbed run"
	if !r.Passed() {
		verdict = "FAIL: " + r.Diff
	}
	corr := ""
	kinds := make([]string, 0, len(r.Corruptions))
	for k := range r.Corruptions {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		corr += fmt.Sprintf(" %s=%d", k, r.Corruptions[k])
	}
	faults := ""
	classes := make([]string, 0, len(r.FaultCounts))
	for c := range r.FaultCounts {
		classes = append(classes, string(c))
	}
	sort.Strings(classes)
	for _, c := range classes {
		faults += fmt.Sprintf(" %s=%d", c, r.FaultCounts[faultfs.Class(c)])
	}
	return fmt.Sprintf("torture: cycles=%d kills=%d restarts=%d warnings=%d\n"+
		"torture: corruption:%s\n"+
		"torture: injected faults:%s\n"+
		"torture: recoveries=%d checkpoint_write_failures=%d sink_retries=%d\n"+
		"torture: %s",
		r.Cycles, r.Kills, r.Restarts, r.Warnings, corr, faults,
		r.CheckpointRecoveries, r.CheckpointWriteFailures, r.SinkRetries, verdict)
}

// tortureSinkPath is shard k's JSONL sink under dir.
func tortureSinkPath(dir string, k, workers int) string {
	return filepath.Join(dir, fmt.Sprintf("records-%d-of-%d.jsonl", k, workers))
}

// plainSinks opens per-shard JSONL sinks on the real filesystem — the
// undisturbed reference configuration.
func plainSinks(dir string) func(k, workers, resumedAt int) (RecordSink, error) {
	return func(k, workers, resumedAt int) (RecordSink, error) {
		path := tortureSinkPath(dir, k, workers)
		if err := TruncateSinkFile(path, resumedAt, false); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return NewJSONLSink(f), nil
	}
}

// retrySinks opens per-shard JSONL sinks through a fault-injecting
// filesystem, wrapped in the self-healing RetrySink — the tortured
// configuration.
func retrySinks(dir string, fsys faultfs.FS) func(k, workers, resumedAt int) (RecordSink, error) {
	return func(k, workers, resumedAt int) (RecordSink, error) {
		path := tortureSinkPath(dir, k, workers)
		if err := TruncateSinkFile(path, resumedAt, false); err != nil {
			return nil, err
		}
		open := func(bool) (RecordSink, error) {
			f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, err
			}
			return NewJSONLSink(f), nil
		}
		return NewRetrySink(path, false, resumedAt, SinkRetryPolicy{MaxRetries: 4, Backoff: 50 * time.Microsecond}, open)
	}
}

// readSinkFiles concatenates the shard sink files in shard order.
func readSinkFiles(dir string, workers int) (string, error) {
	out := make([]byte, 0, 1<<16)
	for k := 0; k < workers; k++ {
		blob, err := os.ReadFile(tortureSinkPath(dir, k, workers))
		if err != nil {
			return "", err
		}
		out = append(out, blob...)
	}
	return string(out), nil
}

// snapCounter reads one counter from a snapshot (0 when absent).
func snapCounter(snap *Snapshot, name string) int64 {
	for _, m := range snap.Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// firstDiff locates the first divergent byte between two outputs.
func firstDiff(kind, want, got string) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			return fmt.Sprintf("%s diverges at byte %d (want %d bytes, got %d)", kind, i, len(want), len(got))
		}
	}
	return fmt.Sprintf("%s diverges in length (want %d bytes, got %d)", kind, len(want), len(got))
}

// RunTorture executes a crash-torture campaign: an undisturbed
// reference run, then Cycles rounds of kill → corrupt → resume on
// fault-injected filesystems, and a final byte-for-byte comparison.
// An error return means the harness itself could not run (bad options,
// unrecoverable shard failure); a completed campaign whose output
// diverged returns a report with Passed() == false and a nil error.
func RunTorture(o TortureOptions) (*TortureReport, error) {
	if o.NewAccumulator == nil || o.Render == nil || o.Dir == "" {
		return nil, fmt.Errorf("study: TortureOptions requires NewAccumulator, Render, and Dir")
	}
	workers := o.Workers
	if workers <= 0 {
		workers = 4
	}
	cycles := o.Cycles
	if cycles <= 0 {
		cycles = 30
	}
	every := o.CheckpointEvery
	if every <= 0 {
		every = 5
	}
	rng := rand.New(rand.NewSource(o.Seed))

	refDir := filepath.Join(o.Dir, "ref")
	ckDir := filepath.Join(o.Dir, "checkpoints")
	sinkDir := filepath.Join(o.Dir, "sinks")
	for _, d := range []string{refDir, ckDir, sinkDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}

	// Undisturbed reference: same spec and worker count, real
	// filesystem, no checkpoints, no injected faults.
	refRes, err := RunStreamed(o.Spec, StreamOptions{
		Workers:        workers,
		NewAccumulator: o.NewAccumulator,
		NewSink:        plainSinks(refDir),
	})
	if err != nil {
		return nil, err
	}
	if len(refRes.Errors) != 0 {
		return nil, fmt.Errorf("study: torture reference run failed: %v", refRes.Errors)
	}
	want := o.Render(refRes)
	wantSinks, err := readSinkFiles(refDir, workers)
	if err != nil {
		return nil, err
	}

	rep := &TortureReport{
		Corruptions: make(map[string]int),
		FaultCounts: make(map[faultfs.Class]int64),
	}
	perShard := o.Spec.TotalProbes/workers + 1
	bothCorruptAt := cycles / 2 // one designated both-generations-corrupt round

	var finalRes *StreamResults
	for cycle := 0; cycle < cycles; cycle++ {
		last := cycle == cycles-1
		// Fresh fault planes each round (a reboot resets the kernel's
		// mood too); distinct seeds so checkpoint and sink faults are
		// independent streams.
		ckFS := faultfs.New(faultfs.Schedule{Seed: o.Seed + int64(cycle)*2, Rates: map[faultfs.Class]float64{
			faultfs.TornWrite:  0.04,
			faultfs.SyncFail:   0.04,
			faultfs.SyncSlow:   0.08,
			faultfs.RenameFail: 0.02,
		}})
		// No ENOSPC on sinks: degradation legitimately drops sink rows,
		// which would break the byte-identity this harness asserts.
		// (ENOSPC handling has its own unit tests.)
		sinkFS := faultfs.New(faultfs.Schedule{Seed: o.Seed + int64(cycle)*2 + 1, Rates: map[faultfs.Class]float64{
			faultfs.TornWrite: 0.03,
			faultfs.WriteEIO:  0.04,
		}})
		// The lane draw is unconditional so a pinned Lanes option changes
		// only the lane count — kill points and corruption choices stay
		// comparable across campaigns at the same seed.
		laneDraw := 1 + rng.Intn(3)
		lanes := o.Lanes
		if lanes <= 0 {
			lanes = laneDraw
		}
		run := StreamOptions{
			Workers:         workers,
			Lanes:           lanes,
			NewAccumulator:  o.NewAccumulator,
			CheckpointDir:   ckDir,
			CheckpointEvery: every,
			Resume:          cycle > 0,
			FS:              ckFS,
			NewSink:         retrySinks(sinkDir, sinkFS),
			Warnf:           o.Warnf,
		}
		if !last {
			run.StopAfterProbes = 3 + rng.Intn(perShard/2+1)
			rep.Kills++
		}
		res, err := RunStreamed(o.Spec, run)
		if err != nil {
			return nil, fmt.Errorf("study: torture cycle %d: %w", cycle, err)
		}
		if len(res.Errors) != 0 {
			return nil, fmt.Errorf("study: torture cycle %d had fatal shard errors: %v", cycle, res.Errors)
		}
		rep.Cycles++
		rep.Restarts += res.Restarts
		rep.Warnings += len(res.Warnings)
		for c, n := range ckFS.Counts() {
			rep.FaultCounts[c] += n
		}
		for c, n := range sinkFS.Counts() {
			rep.FaultCounts[c] += n
		}
		finalRes = res
		if last {
			break
		}
		tortureCorrupt(o, rep, rng, ckDir, sinkDir, workers, cycle == bothCorruptAt)
	}

	got := o.Render(finalRes)
	gotSinks, err := readSinkFiles(sinkDir, workers)
	if err != nil {
		return nil, err
	}
	if snap := finalRes.MetricsSnapshot(true); snap != nil {
		rep.CheckpointRecoveries = snapCounter(snap, "study.checkpoint_recoveries")
		rep.CheckpointWriteFailures = snapCounter(snap, "study.checkpoint_write_failures")
		rep.SinkRetries = snapCounter(snap, "study.sink_retries")
	}
	rep.OutputIdentical = got == want
	rep.SinksIdentical = gotSinks == wantSinks
	if !rep.OutputIdentical {
		rep.Diff = firstDiff("rendered output", want, got)
	} else if !rep.SinksIdentical {
		rep.Diff = firstDiff("sink files", wantSinks, gotSinks)
	}
	return rep, nil
}

// tortureCorrupt rots the on-disk state between rounds — the "machine
// was off, the disk was not idle" phase. Checkpoint corruption comes
// first; sink corruption then bounds its tearing by the cursor the
// NEXT run will actually load, so it never destroys rows the resume
// protocol considers durable (that failure mode is unrecoverable by
// design and unit-tested separately).
func tortureCorrupt(o TortureOptions, rep *TortureReport, rng *rand.Rand, ckDir, sinkDir string, workers int, bothCorrupt bool) {
	if bothCorrupt {
		// The designated worst case: every generation of one shard's
		// checkpoints rots; the shard must restart from cursor 0.
		k := shardWithSlots(o.Spec, ckDir, workers, rng.Intn(workers))
		slots := CheckpointSlotPaths(ckDir, k, workers)
		for _, slot := range slots {
			faultfs.FlipBit(slot, rng.Uint64()) //nolint:errcheck // missing slot = no-op
		}
		os.Remove(CheckpointPath(ckDir, k, workers)) //nolint:errcheck
		rep.Corruptions["both_generations_corrupt"]++
	} else if rng.Intn(2) == 0 {
		k := rng.Intn(workers)
		slots := CheckpointSlotPaths(ckDir, k, workers)
		faultfs.FlipBit(slots[rng.Intn(2)], rng.Uint64()) //nolint:errcheck
		rep.Corruptions["checkpoint_bitflip"]++
	}

	k := rng.Intn(workers)
	path := tortureSinkPath(sinkDir, k, workers)
	switch rng.Intn(2) {
	case 0:
		// Tear the sink tail back to anywhere at or past the durable
		// prefix of the checkpoint the next run will load.
		cursor := tortureShardCursor(o.Spec, ckDir, k, workers)
		tearSinkTail(path, cursor, rng)
		rep.Corruptions["sink_tear"]++
	case 1:
		faultfs.AppendGarbage(path, []byte(`{"probe_id":99999,"cou`)) //nolint:errcheck
		rep.Corruptions["sink_garbage"]++
	}
}

// shardWithSlots returns a shard that has both generation slots on
// disk, preferring the given one; falls back to the given shard when
// none does yet.
func shardWithSlots(spec Spec, ckDir string, workers, prefer int) int {
	hasBoth := func(k int) bool {
		slots := CheckpointSlotPaths(ckDir, k, workers)
		for _, s := range slots {
			if _, err := os.Stat(s); err != nil {
				return false
			}
		}
		return true
	}
	if hasBoth(prefer) {
		return prefer
	}
	for k := 0; k < workers; k++ {
		if hasBoth(k) {
			return k
		}
	}
	return prefer
}

// tortureShardCursor loads the cursor the next resume will see for
// shard k — after this round's checkpoint corruption, so a corrupted
// newest generation reports the older one's (smaller) cursor.
func tortureShardCursor(spec Spec, ckDir string, k, workers int) int {
	st := newCkStore(faultfs.OS{}, ckDir, k, workers, checkpointFingerprint(spec, k, workers))
	ck, _, _ := st.load()
	if ck == nil {
		return 0
	}
	return ck.Cursor
}

// tearSinkTail truncates path to a random length at or past the byte
// offset of line minLines — modeling a torn tail without destroying
// the durable prefix.
func tearSinkTail(path string, minLines int, rng *rand.Rand) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return
	}
	off := 0
	for i := 0; i < minLines && off < len(blob); i++ {
		j := indexByte(blob[off:], '\n')
		if j < 0 {
			off = len(blob)
			break
		}
		off += j + 1
	}
	if off >= len(blob) {
		return
	}
	target := off + rng.Intn(len(blob)-off+1)
	os.Truncate(path, int64(target)) //nolint:errcheck
}
