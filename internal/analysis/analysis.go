// Package analysis aggregates pilot-study results into the paper's
// tables and figures: interception counts per resolver (Table 4),
// version.bind string groups (Table 5), transparency per organization
// (Figure 3), and interceptor location per country and organization
// (Figure 4). It also scores the technique against the simulator's
// ground truth — an evaluation the paper could not perform on the real
// Internet.
package analysis

import (
	"sort"
	"strings"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/study"
)

// Table4Row is one operator's line in Table 4.
type Table4Row struct {
	Resolver      publicdns.ID
	Display       string
	InterceptedV4 int
	TotalV4       int
	InterceptedV6 int
	TotalV6       int
}

// Table4 reproduces "Number of intercepted probes per public resolver".
type Table4 struct {
	Rows []Table4Row
	// The "All Intercepted" line: probes online for all four experiments
	// of a family and intercepted for all four.
	AllInterceptedV4 int
	AllTotalV4       int
	AllInterceptedV6 int
	AllTotalV6       int
	// DistinctIntercepted is the paper's "220 probes".
	DistinctIntercepted int
}

// BuildTable4 computes Table 4 from study results.
func BuildTable4(r *study.Results) Table4 {
	var t Table4
	for _, id := range publicdns.All {
		row := Table4Row{Resolver: id, Display: publicdns.Lookup(id).DisplayName}
		for _, rec := range r.Records {
			if rec.Responded[study.ExpKey{Resolver: id, Family: core.V4}] {
				row.TotalV4++
				if rec.InterceptedFor(id, core.V4) {
					row.InterceptedV4++
				}
			}
			if rec.Responded[study.ExpKey{Resolver: id, Family: core.V6}] {
				row.TotalV6++
				if rec.InterceptedFor(id, core.V6) {
					row.InterceptedV6++
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	for _, rec := range r.Records {
		if rec.RespondedAll4(core.V4) {
			t.AllTotalV4++
			all := true
			for _, id := range publicdns.All {
				if !rec.InterceptedFor(id, core.V4) {
					all = false
					break
				}
			}
			if all {
				t.AllInterceptedV4++
			}
		}
		if rec.RespondedAll4(core.V6) {
			t.AllTotalV6++
			all := true
			for _, id := range publicdns.All {
				if !rec.InterceptedFor(id, core.V6) {
					all = false
					break
				}
			}
			if all {
				t.AllInterceptedV6++
			}
		}
	}
	t.DistinctIntercepted = len(r.Intercepted())
	return t
}

// Table5Row is one version.bind string group.
type Table5Row struct {
	Group  string
	Probes int
}

// Table5 reproduces "Strings sent in response to version.bind" for the
// probes the technique attributes to CPE interception.
type Table5 struct {
	Rows     []Table5Row
	CPETotal int
}

// GroupVersionString maps a raw version.bind string to its Table 5
// group, using the paper's wildcard conventions.
func GroupVersionString(s string) string {
	switch {
	case strings.HasPrefix(s, "dnsmasq-pi-hole"):
		return "dnsmasq-pi-hole-*"
	case strings.HasPrefix(s, "dnsmasq"):
		return "dnsmasq-*"
	case strings.HasPrefix(s, "unbound"):
		return "unbound*"
	case strings.HasSuffix(s, "-RedHat"):
		return "*-RedHat"
	case strings.HasSuffix(s, "-Debian"):
		return "*-Debian"
	case strings.HasPrefix(s, "PowerDNS Recursor"):
		return "PowerDNS Recursor*"
	case strings.HasPrefix(s, "Q9-"):
		return "Q9-*"
	default:
		return s
	}
}

// BuildTable5 computes Table 5.
func BuildTable5(r *study.Results) Table5 {
	counts := map[string]int{}
	total := 0
	for _, rec := range r.Intercepted() {
		if rec.Report.Verdict != core.VerdictCPE {
			continue
		}
		total++
		counts[GroupVersionString(rec.Report.CPEString)]++
	}
	var t Table5
	t.CPETotal = total
	for g, n := range counts {
		t.Rows = append(t.Rows, Table5Row{Group: g, Probes: n})
	}
	sort.Slice(t.Rows, func(i, j int) bool {
		if t.Rows[i].Probes != t.Rows[j].Probes {
			return t.Rows[i].Probes > t.Rows[j].Probes
		}
		return t.Rows[i].Group < t.Rows[j].Group
	})
	return t
}

// Figure3Row is one organization's transparency breakdown.
type Figure3Row struct {
	Org         string
	ASN         int
	Transparent int
	Modified    int
	Both        int
	Total       int
}

// Figure3 reproduces "Intercepted probes per top 15 organizations".
type Figure3 struct {
	Rows []Figure3Row
}

// BuildFigure3 computes Figure 3 (top n organizations).
func BuildFigure3(r *study.Results, n int) Figure3 {
	byOrg := map[int]*Figure3Row{}
	for _, rec := range r.Intercepted() {
		row := byOrg[rec.Probe.ASN]
		if row == nil {
			row = &Figure3Row{Org: rec.Probe.Org, ASN: rec.Probe.ASN}
			byOrg[rec.Probe.ASN] = row
		}
		row.Total++
		switch rec.Report.Transparency {
		case core.Transparent:
			row.Transparent++
		case core.StatusModified:
			row.Modified++
		case core.TransparencyBoth:
			row.Both++
		}
	}
	var rows []Figure3Row
	for _, row := range byOrg {
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].Org < rows[j].Org
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	return Figure3{Rows: rows}
}

// Figure4Row is one country's or organization's location breakdown.
type Figure4Row struct {
	Label   string
	CPE     int
	ISP     int
	Unknown int
	Total   int
}

// Figure4 reproduces "Interception location for the 15 countries and
// organizations with the most intercepted probes".
type Figure4 struct {
	Countries []Figure4Row
	Orgs      []Figure4Row
	// Totals across all intercepted probes.
	CPE, ISP, Unknown int
}

// BuildFigure4 computes Figure 4 (top n of each).
func BuildFigure4(r *study.Results, n int) Figure4 {
	byCountry := map[string]*Figure4Row{}
	byOrg := map[string]*Figure4Row{}
	var f Figure4
	add := func(m map[string]*Figure4Row, label string, v core.Verdict) {
		row := m[label]
		if row == nil {
			row = &Figure4Row{Label: label}
			m[label] = row
		}
		row.Total++
		switch v {
		case core.VerdictCPE:
			row.CPE++
		case core.VerdictISP:
			row.ISP++
		default:
			row.Unknown++
		}
	}
	for _, rec := range r.Intercepted() {
		v := rec.Report.Verdict
		add(byCountry, rec.Probe.Country, v)
		add(byOrg, rec.Probe.Org, v)
		switch v {
		case core.VerdictCPE:
			f.CPE++
		case core.VerdictISP:
			f.ISP++
		default:
			f.Unknown++
		}
	}
	f.Countries = topRows(byCountry, n)
	f.Orgs = topRows(byOrg, n)
	return f
}

// topRows sorts and truncates a row map.
func topRows(m map[string]*Figure4Row, n int) []Figure4Row {
	var rows []Figure4Row
	for _, row := range m {
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].Label < rows[j].Label
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// Accuracy scores the technique against the simulator's ground truth —
// only possible here, where the interceptors' true locations are known.
type Accuracy struct {
	// Detection confusion (intercepted yes/no).
	TruePositives, FalsePositives, TrueNegatives, FalseNegatives int
	// Localization outcomes among true positives.
	CorrectCPE, CorrectISP, CorrectUnknown int
	// MislocatedCPE counts probes blamed on the CPE whose true
	// interceptor was elsewhere (§6's misclassification), and vice versa.
	Mislocated int
	// HiddenAsUnknown counts in-AS interceptors the technique correctly
	// could not place (they drop bogons) — unknown is the *right* answer.
	HiddenAsUnknown int
}

// BuildAccuracy computes the confusion matrix over responding probes.
func BuildAccuracy(r *study.Results) Accuracy {
	var a Accuracy
	for _, rec := range r.Records {
		if rec.Report == nil {
			continue
		}
		truly := rec.Probe.Truth.Intercepted()
		flagged := rec.Report.Intercepted()
		switch {
		case truly && flagged:
			a.TruePositives++
		case truly && !flagged:
			a.FalseNegatives++
		case !truly && flagged:
			a.FalsePositives++
		default:
			a.TrueNegatives++
		}
		if !(truly && flagged) {
			continue
		}
		switch loc, v := rec.Probe.Truth.Location, rec.Report.Verdict; {
		case loc == "cpe" && v == core.VerdictCPE:
			a.CorrectCPE++
		case loc == "isp" && v == core.VerdictISP:
			a.CorrectISP++
		case loc == "transit" && v == core.VerdictUnknown:
			a.CorrectUnknown++
		case loc == "isp-hidden" && v == core.VerdictUnknown:
			a.HiddenAsUnknown++
		default:
			a.Mislocated++
		}
	}
	return a
}
