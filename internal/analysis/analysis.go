// Package analysis aggregates pilot-study results into the paper's
// tables and figures: interception counts per resolver (Table 4),
// version.bind string groups (Table 5), transparency per organization
// (Figure 3), and interceptor location per country and organization
// (Figure 4). It also scores the technique against the simulator's
// ground truth — an evaluation the paper could not perform on the real
// Internet.
package analysis

import (
	"sort"
	"strings"

	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/study"
)

// Table4Row is one operator's line in Table 4.
type Table4Row struct {
	Resolver      publicdns.ID
	Display       string
	InterceptedV4 int
	TotalV4       int
	InterceptedV6 int
	TotalV6       int
}

// Table4 reproduces "Number of intercepted probes per public resolver".
type Table4 struct {
	Rows []Table4Row
	// The "All Intercepted" line: probes online for all four experiments
	// of a family and intercepted for all four.
	AllInterceptedV4 int
	AllTotalV4       int
	AllInterceptedV6 int
	AllTotalV6       int
	// DistinctIntercepted is the paper's "220 probes".
	DistinctIntercepted int
}

// foldAll feeds every record of a completed run through a throwaway
// accumulator — the slice-based builders below are thin wrappers over
// the streaming fold, so both paths share one aggregation definition.
func foldAll(r *study.Results) *Accumulator {
	a := NewAccumulator()
	for _, rec := range r.Records {
		a.Fold(rec)
	}
	return a
}

// BuildTable4 computes Table 4 from study results.
func BuildTable4(r *study.Results) Table4 {
	return foldAll(r).Table4()
}

// Table5Row is one version.bind string group.
type Table5Row struct {
	Group  string
	Probes int
}

// Table5 reproduces "Strings sent in response to version.bind" for the
// probes the technique attributes to CPE interception.
type Table5 struct {
	Rows     []Table5Row
	CPETotal int
}

// GroupVersionString maps a raw version.bind string to its Table 5
// group, using the paper's wildcard conventions.
func GroupVersionString(s string) string {
	switch {
	case strings.HasPrefix(s, "dnsmasq-pi-hole"):
		return "dnsmasq-pi-hole-*"
	case strings.HasPrefix(s, "dnsmasq"):
		return "dnsmasq-*"
	case strings.HasPrefix(s, "unbound"):
		return "unbound*"
	case strings.HasSuffix(s, "-RedHat"):
		return "*-RedHat"
	case strings.HasSuffix(s, "-Debian"):
		return "*-Debian"
	case strings.HasPrefix(s, "PowerDNS Recursor"):
		return "PowerDNS Recursor*"
	case strings.HasPrefix(s, "Q9-"):
		return "Q9-*"
	default:
		return s
	}
}

// BuildTable5 computes Table 5.
func BuildTable5(r *study.Results) Table5 {
	return foldAll(r).Table5()
}

// sortTable5 orders groups by descending probe count, then name.
func sortTable5(rows []Table5Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Probes != rows[j].Probes {
			return rows[i].Probes > rows[j].Probes
		}
		return rows[i].Group < rows[j].Group
	})
}

// Figure3Row is one organization's transparency breakdown.
type Figure3Row struct {
	Org         string
	ASN         int
	Transparent int
	Modified    int
	Both        int
	Total       int
}

// Figure3 reproduces "Intercepted probes per top 15 organizations".
type Figure3 struct {
	Rows []Figure3Row
}

// BuildFigure3 computes Figure 3 (top n organizations).
func BuildFigure3(r *study.Results, n int) Figure3 {
	return foldAll(r).Figure3(n)
}

// sortFigure3 orders organizations by descending total, then name.
func sortFigure3(rows []Figure3Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].Org < rows[j].Org
	})
}

// Figure4Row is one country's or organization's location breakdown.
type Figure4Row struct {
	Label   string
	CPE     int
	ISP     int
	Unknown int
	Total   int
}

// Figure4 reproduces "Interception location for the 15 countries and
// organizations with the most intercepted probes".
type Figure4 struct {
	Countries []Figure4Row
	Orgs      []Figure4Row
	// Totals across all intercepted probes.
	CPE, ISP, Unknown int
}

// BuildFigure4 computes Figure 4 (top n of each).
func BuildFigure4(r *study.Results, n int) Figure4 {
	return foldAll(r).Figure4(n)
}

// topRows sorts and truncates a row map.
func topRows(m map[string]*Figure4Row, n int) []Figure4Row {
	var rows []Figure4Row
	for _, row := range m {
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].Label < rows[j].Label
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// Accuracy scores the technique against the simulator's ground truth —
// only possible here, where the interceptors' true locations are known.
type Accuracy struct {
	// Detection confusion (intercepted yes/no).
	TruePositives, FalsePositives, TrueNegatives, FalseNegatives int
	// Localization outcomes among true positives.
	CorrectCPE, CorrectISP, CorrectUnknown int
	// MislocatedCPE counts probes blamed on the CPE whose true
	// interceptor was elsewhere (§6's misclassification), and vice versa.
	Mislocated int
	// HiddenAsUnknown counts in-AS interceptors the technique correctly
	// could not place (they drop bogons) — unknown is the *right* answer.
	HiddenAsUnknown int
}

// BuildAccuracy computes the confusion matrix over responding probes.
func BuildAccuracy(r *study.Results) Accuracy {
	return foldAll(r).Accuracy()
}
