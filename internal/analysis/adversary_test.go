package analysis

import (
	"strings"
	"testing"

	"github.com/dnswatch/dnsloc/internal/study"
)

// TestRunAdversarySweep drives the full sweep at pilot scale over the
// honest baseline and the forge rung, and asserts the matrix's core
// claims: a perfect baseline, a chaos-accuracy drop under forgery that
// the fusion recovers, and zero false positives from either scorer.
func TestRunAdversarySweep(t *testing.T) {
	spec := study.PaperSpec().Scale(0.0064)
	rows := RunAdversarySweep(spec, study.EngineOptions{Workers: 2}, []int{0, 2}, nil)
	if len(rows) != 2 {
		t.Fatalf("%d rows for 2 levels", len(rows))
	}
	honest, forge := rows[0], rows[1]

	if honest.Level != 0 || forge.Level != 2 {
		t.Fatalf("row levels = %d, %d", honest.Level, forge.Level)
	}
	if honest.Responded == 0 || forge.Responded != honest.Responded {
		t.Fatalf("responded = %d, %d; want equal and nonzero", honest.Responded, forge.Responded)
	}
	if honest.ChaosAccuracy() != 1.0 || honest.FusedAccuracy() != 1.0 {
		t.Errorf("honest accuracy = %.3f/%.3f, want 1.000", honest.ChaosAccuracy(), honest.FusedAccuracy())
	}
	if forge.ChaosAccuracy() >= honest.ChaosAccuracy() {
		t.Errorf("forge chaos accuracy %.3f did not drop", forge.ChaosAccuracy())
	}
	if forge.FusedAccuracy() <= forge.ChaosAccuracy() {
		t.Errorf("fusion %.3f did not beat chaos-only %.3f under forgery",
			forge.FusedAccuracy(), forge.ChaosAccuracy())
	}
	for _, r := range rows {
		if r.ChaosFP != 0 || r.FusedFP != 0 {
			t.Errorf("L%d false positives: chaos %d, fused %d", r.Level, r.ChaosFP, r.FusedFP)
		}
	}
	if forge.CertFlagged == 0 || forge.Drifted == 0 {
		t.Errorf("forge level: cert=%d drift=%d flagged probes, want both nonzero",
			forge.CertFlagged, forge.Drifted)
	}
	if honest.Drifted != 0 {
		t.Errorf("honest level drifted %d probes; personas are stable", honest.Drifted)
	}

	out := FormatAdversary(rows)
	for _, want := range []string{"Chaos Acc.", "Fused Acc.", "honest", "forge", "L2"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatAdversary output missing %q:\n%s", want, out)
		}
	}
}

// TestAdversaryRowAccuracyGuards: an empty row divides by nothing.
func TestAdversaryRowAccuracyGuards(t *testing.T) {
	var r AdversaryRow
	if r.ChaosAccuracy() != 0 || r.FusedAccuracy() != 0 {
		t.Errorf("empty row accuracy = %.3f/%.3f, want 0", r.ChaosAccuracy(), r.FusedAccuracy())
	}
}

// TestFormatAdversaryUnknownLevel: rungs past the ladder still render.
func TestFormatAdversaryUnknownLevel(t *testing.T) {
	out := FormatAdversary([]AdversaryRow{{Level: 7, Responded: 1, ChaosTN: 1, FusedTN: 1}})
	if !strings.Contains(out, "L7") {
		t.Errorf("unknown level not rendered:\n%s", out)
	}
}
