package analysis

import (
	"fmt"
	"sort"

	"github.com/dnswatch/dnsloc/internal/render"
	"github.com/dnswatch/dnsloc/internal/study"
)

// PopulationRow documents the platform's geographic bias, the caveat §4
// leads with: RIPE Atlas (and therefore the synthetic fleet) is heavily
// skewed toward Europe and North America.
type PopulationRow struct {
	Country string
	Probes  int
	// Responding counts probes that answered at least one experiment.
	Responding int
	// Intercepted counts detected interception.
	Intercepted int
}

// BuildPopulation aggregates the fleet per country, descending by size.
func BuildPopulation(r *study.Results) []PopulationRow {
	byCountry := map[string]*PopulationRow{}
	for _, rec := range r.Records {
		row := byCountry[rec.Probe.Country]
		if row == nil {
			row = &PopulationRow{Country: rec.Probe.Country}
			byCountry[rec.Probe.Country] = row
		}
		row.Probes++
		if rec.Report != nil {
			row.Responding++
			if rec.Report.Intercepted() {
				row.Intercepted++
			}
		}
	}
	rows := make([]PopulationRow, 0, len(byCountry))
	for _, row := range byCountry {
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Probes != rows[j].Probes {
			return rows[i].Probes > rows[j].Probes
		}
		return rows[i].Country < rows[j].Country
	})
	return rows
}

// FormatPopulation renders the bias table.
func FormatPopulation(rows []PopulationRow) string {
	out := [][]string{{"Country", "Probes", "Responding", "Intercepted"}}
	total := PopulationRow{Country: "total"}
	for _, r := range rows {
		out = append(out, []string{
			r.Country, fmt.Sprint(r.Probes), fmt.Sprint(r.Responding), fmt.Sprint(r.Intercepted),
		})
		total.Probes += r.Probes
		total.Responding += r.Responding
		total.Intercepted += r.Intercepted
	}
	out = append(out, []string{
		total.Country, fmt.Sprint(total.Probes), fmt.Sprint(total.Responding), fmt.Sprint(total.Intercepted),
	})
	return "Probe population by country (the platform bias §4 cautions about)\n\n" +
		render.Table(out)
}
