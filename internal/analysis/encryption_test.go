package analysis

import (
	"strings"
	"testing"

	"github.com/dnswatch/dnsloc/internal/atlas"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/study"
)

// TestRunEncryptionSweep drives the sweep at pilot scale over a small
// grid, pinning the sweep's claim shapes: full strict adoption under a
// terminating middlebox zeroes the adopting cohort's interception
// rate, full opportunistic adoption under a blocking one restores the
// Do53 ground truth, and no cell buys its accuracy with false
// positives.
func TestRunEncryptionSweep(t *testing.T) {
	spec := study.PaperSpec().Scale(0.0064)
	rows := RunEncryptionSweep(spec, study.EngineOptions{Workers: 2},
		[]float64{0, 1.0},
		[]core.TransportMode{core.TransportDoTOpportunistic, core.TransportDoTStrict},
		[]dnsserver.EncryptedPolicy{dnsserver.EncBlock, dnsserver.EncTerminate},
		nil)
	if len(rows) != 8 {
		t.Fatalf("%d rows for a 2x2x2 grid", len(rows))
	}

	byCell := func(pol dnsserver.EncryptedPolicy, tr core.TransportMode, ad float64) EncryptionRow {
		for _, r := range rows {
			if r.Policy == pol && r.Transport == tr && r.Adoption == ad {
				return r
			}
		}
		t.Fatalf("no row for %s/%s/%.2f", pol, tr, ad)
		return EncryptionRow{}
	}

	baseline := byCell(dnsserver.EncBlock, core.TransportDoTOpportunistic, 0)
	if baseline.Adopted != 0 || baseline.AdoptedFlaggedRate() != 0 {
		t.Errorf("adoption-0 baseline has %d adopters", baseline.Adopted)
	}
	if baseline.Flagged == 0 {
		t.Error("baseline world intercepts nothing; the sweep has no signal to measure")
	}

	strictTerm := byCell(dnsserver.EncTerminate, core.TransportDoTStrict, 1.0)
	if strictTerm.Adopted == 0 || strictTerm.AdoptedFlagged != 0 {
		t.Errorf("strict+terminate at full adoption: %d/%d adopters flagged, want 0",
			strictTerm.AdoptedFlagged, strictTerm.Adopted)
	}

	oppBlock := byCell(dnsserver.EncBlock, core.TransportDoTOpportunistic, 1.0)
	if oppBlock.Flagged != baseline.Flagged {
		t.Errorf("opportunistic+block flagged %d, want the Do53 ground truth %d (downgraded clients stay interceptable)",
			oppBlock.Flagged, baseline.Flagged)
	}

	for _, r := range rows {
		if r.FP != 0 {
			t.Errorf("%s/%s/%.2f: %d false positives, want 0", r.Policy, r.Transport, r.Adoption, r.FP)
		}
		if r.Responded == 0 {
			t.Errorf("%s/%s/%.2f: nothing responded", r.Policy, r.Transport, r.Adoption)
		}
		if acc := r.Accuracy(); acc < baseline.Accuracy() {
			t.Errorf("%s/%s/%.2f accuracy = %.3f below baseline %.3f",
				r.Policy, r.Transport, r.Adoption, acc, baseline.Accuracy())
		}
	}

	out := FormatEncryption(rows)
	for _, want := range []string{"Policy", "Adoption", "Enc. Intercepted", "dot-strict", "terminate", "Accuracy"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatEncryption output missing %q:\n%s", want, out)
		}
	}
}

// TestEncryptionRowGuards: empty rows divide by nothing.
func TestEncryptionRowGuards(t *testing.T) {
	var r EncryptionRow
	if r.Accuracy() != 0 {
		t.Errorf("empty row accuracy = %.3f, want 0", r.Accuracy())
	}
	if r.AdoptedFlaggedRate() != 0 {
		t.Errorf("empty row adopted-flagged rate = %.3f, want 0", r.AdoptedFlaggedRate())
	}
}

// TestEffectiveTruth enumerates the truth table the scoring rests on.
func TestEffectiveTruth(t *testing.T) {
	rec := func(intercepted bool, tr core.TransportMode) *study.ProbeRecord {
		p := &atlas.Probe{EncTransport: tr}
		if intercepted {
			p.Truth.Location = "cpe"
		}
		return &study.ProbeRecord{Probe: p}
	}
	cases := []struct {
		name string
		rec  *study.ProbeRecord
		pol  dnsserver.EncryptedPolicy
		tr   core.TransportMode
		want bool
	}{
		{"clean path stays clean", rec(false, core.TransportDoH), dnsserver.EncTerminate, core.TransportDoH, false},
		{"non-adopting keeps Do53 truth", rec(true, core.TransportDo53), dnsserver.EncTerminate, core.TransportDo53, true},
		{"pass lets adopters escape", rec(true, core.TransportDoH), dnsserver.EncPass, core.TransportDoH, false},
		{"block downgrades opportunistic into interception", rec(true, core.TransportDoTOpportunistic), dnsserver.EncBlock, core.TransportDoTOpportunistic, true},
		{"block starves strict instead", rec(true, core.TransportDoTStrict), dnsserver.EncBlock, core.TransportDoTStrict, false},
		{"terminate owns opportunistic sessions", rec(true, core.TransportDoTOpportunistic), dnsserver.EncTerminate, core.TransportDoTOpportunistic, true},
		{"terminate is refused by strict", rec(true, core.TransportDoH), dnsserver.EncTerminate, core.TransportDoH, false},
	}
	for _, c := range cases {
		e := &study.Encryption{Adoption: 1, Transport: c.tr, Policy: c.pol}
		if got := effectiveTruth(c.rec, e); got != c.want {
			t.Errorf("%s: effectiveTruth = %v, want %v", c.name, got, c.want)
		}
	}
}
