package analysis

import (
	"strings"
	"testing"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/study"
)

func TestPatternBreakdownSums(t *testing.T) {
	res := results(t)
	b := BuildPatternBreakdown(res, core.V4)
	if b.Total == 0 {
		t.Fatal("no intercepted probes")
	}
	ones, allowed := 0, 0
	for _, n := range b.OnlyOne {
		ones += n
	}
	for _, n := range b.OnlyOneAllowed {
		allowed += n
	}
	if b.AllFour+ones+allowed+b.Pairs != b.Total {
		t.Errorf("patterns don't sum: %d+%d+%d+%d != %d",
			b.AllFour, ones, allowed, b.Pairs, b.Total)
	}
	// At the tiny test scale the per-group minimum of Scale() inflates
	// partial patterns, so assert only that all-four is the single
	// largest pattern; the paper-scale test asserts the majority.
	for id, n := range b.OnlyOne {
		if n > b.AllFour {
			t.Errorf("only-%s (%d) exceeds all-four (%d)", id, n, b.AllFour)
		}
	}
}

func TestPatternBreakdownV6HasNoAllFour(t *testing.T) {
	b := BuildPatternBreakdown(results(t), core.V6)
	if b.AllFour != 0 {
		t.Errorf("v6 all-four = %d", b.AllFour)
	}
}

func TestMissingOf(t *testing.T) {
	got := missingOf([]publicdns.ID{publicdns.Cloudflare, publicdns.Google, publicdns.Quad9})
	if got != publicdns.OpenDNS {
		t.Errorf("missingOf = %s", got)
	}
}

func TestFormatPatternBreakdown(t *testing.T) {
	out := FormatPatternBreakdown(BuildPatternBreakdown(results(t), core.V4))
	for _, want := range []string{"all four intercepted", "total intercepted", "IPv4"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestFormatTTLExtension(t *testing.T) {
	res := results(t)
	stats := study.RunTTLExtension(res, 5, 10)
	out := FormatTTLExtension(stats)
	for _, want := range []string{"TTL-ladder", "intercepted by CPE", "min/median/max"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Hop ordering at small scale too.
	if c, i := stats.Median(core.VerdictCPE), stats.Median(core.VerdictISP); c >= i {
		t.Errorf("median TTL cpe=%d isp=%d, want cpe < isp", c, i)
	}
}
