package analysis

import (
	"fmt"
	"strings"

	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/render"
	"github.com/dnswatch/dnsloc/internal/study"
)

// FormatTable1 renders Table 1: the location queries and expected
// responses per operator — static configuration, printed for parity
// with the paper.
func FormatTable1() string {
	rows := [][]string{{"Public Resolver", "Type", "Location Query", "Example Response"}}
	for _, id := range publicdns.All {
		c := publicdns.Lookup(id)
		rows = append(rows, []string{
			c.DisplayName, string(c.Location.Kind), string(c.Location.Name), c.ExampleResponse,
		})
	}
	return "Table 1: Location queries and expected responses per resolver\n\n" +
		render.Table(rows)
}

// FormatTable2 renders Table 2 from the worked-example rows.
func FormatTable2(rows []study.ExampleRow) string {
	out := [][]string{{"ProbeID", "Cloudflare DNS", "Google DNS"}}
	for _, r := range rows {
		out = append(out, []string{fmt.Sprint(r.ProbeID), r.LocCloudflare, r.LocGoogle})
	}
	return "Table 2: Example responses to IPv4 location queries\n\n" +
		render.Table(out)
}

// FormatTable3 renders Table 3 from the worked-example rows.
func FormatTable3(rows []study.ExampleRow) string {
	out := [][]string{{"ProbeID", "Cloudflare DNS", "Google DNS", "CPE Public IP"}}
	for _, r := range rows {
		out = append(out, []string{fmt.Sprint(r.ProbeID), r.VBCloudflare, r.VBGoogle, r.VBCPE})
	}
	return "Table 3: Example responses to IPv4 version.bind queries\n\n" +
		render.Table(out)
}

// FormatTable4 renders Table 4.
func FormatTable4(t Table4) string {
	rows := [][]string{{"", "Intercepted v4", "Total v4", "Intercepted v6", "Total v6"}}
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Display,
			fmt.Sprint(r.InterceptedV4), fmt.Sprint(r.TotalV4),
			fmt.Sprint(r.InterceptedV6), fmt.Sprint(r.TotalV6),
		})
	}
	rows = append(rows, []string{
		"All Intercepted",
		fmt.Sprint(t.AllInterceptedV4), fmt.Sprint(t.AllTotalV4),
		fmt.Sprint(t.AllInterceptedV6), fmt.Sprint(t.AllTotalV6),
	})
	return fmt.Sprintf("Table 4: Number of intercepted probes per public resolver (distinct intercepted probes: %d)\n\n%s",
		t.DistinctIntercepted, render.Table(rows))
}

// FormatTable5 renders Table 5.
func FormatTable5(t Table5) string {
	rows := [][]string{{"version.bind Response", "# Probes"}}
	for _, r := range t.Rows {
		rows = append(rows, []string{r.Group, fmt.Sprint(r.Probes)})
	}
	return fmt.Sprintf("Table 5: Strings sent in response to version.bind (%d CPE-intercepted probes)\n\n%s",
		t.CPETotal, render.Table(rows))
}

// FormatFigure3 renders Figure 3 as a stacked bar chart.
func FormatFigure3(f Figure3) string {
	var entries []render.BarEntry
	for _, r := range f.Rows {
		entries = append(entries, render.BarEntry{
			Label: fmt.Sprintf("%s (AS%d)", r.Org, r.ASN),
			Segments: []render.BarSegment{
				{Label: "Transparent", Value: r.Transparent, Rune: '#'},
				{Label: "Status Modified", Value: r.Modified, Rune: 'x'},
				{Label: "Both", Value: r.Both, Rune: '+'},
			},
		})
	}
	return render.Bars("Figure 3: Intercepted probes per top 15 organizations", entries, 40)
}

// FormatFigure4 renders Figure 4 as two stacked bar charts.
func FormatFigure4(f Figure4) string {
	toEntries := func(rows []Figure4Row) []render.BarEntry {
		var entries []render.BarEntry
		for _, r := range rows {
			entries = append(entries, render.BarEntry{
				Label: r.Label,
				Segments: []render.BarSegment{
					{Label: "CPE", Value: r.CPE, Rune: 'C'},
					{Label: "Within ISP", Value: r.ISP, Rune: '#'},
					{Label: "Unknown/Beyond", Value: r.Unknown, Rune: '?'},
				},
			})
		}
		return entries
	}
	var sb strings.Builder
	sb.WriteString(render.Bars(
		fmt.Sprintf("Figure 4: Interception location (all probes: CPE=%d, ISP=%d, unknown=%d)\n\nTop 15 countries:",
			f.CPE, f.ISP, f.Unknown),
		toEntries(f.Countries), 40))
	sb.WriteString("\nTop 15 organizations:\n")
	sb.WriteString(render.Bars("", toEntries(f.Orgs), 40))
	return sb.String()
}

// FormatAccuracy renders the ground-truth scoring.
func FormatAccuracy(a Accuracy) string {
	rows := [][]string{
		{"Metric", "Count"},
		{"True positives (intercepted, detected)", fmt.Sprint(a.TruePositives)},
		{"False positives", fmt.Sprint(a.FalsePositives)},
		{"True negatives", fmt.Sprint(a.TrueNegatives)},
		{"False negatives", fmt.Sprint(a.FalseNegatives)},
		{"Localized correctly: CPE", fmt.Sprint(a.CorrectCPE)},
		{"Localized correctly: within ISP", fmt.Sprint(a.CorrectISP)},
		{"Beyond-AS, reported unknown (correct)", fmt.Sprint(a.CorrectUnknown)},
		{"In-AS bogon-droppers, reported unknown (by design)", fmt.Sprint(a.HiddenAsUnknown)},
		{"Mislocated", fmt.Sprint(a.Mislocated)},
	}
	return "Technique accuracy vs. simulator ground truth\n\n" + render.Table(rows)
}

// CSVTable4 renders Table 4 as CSV.
func CSVTable4(t Table4) string {
	rows := [][]string{{"resolver", "intercepted_v4", "total_v4", "intercepted_v6", "total_v6"}}
	for _, r := range t.Rows {
		rows = append(rows, []string{
			string(r.Resolver),
			fmt.Sprint(r.InterceptedV4), fmt.Sprint(r.TotalV4),
			fmt.Sprint(r.InterceptedV6), fmt.Sprint(r.TotalV6),
		})
	}
	rows = append(rows, []string{"all",
		fmt.Sprint(t.AllInterceptedV4), fmt.Sprint(t.AllTotalV4),
		fmt.Sprint(t.AllInterceptedV6), fmt.Sprint(t.AllTotalV6)})
	return render.CSV(rows)
}
