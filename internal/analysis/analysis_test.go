package analysis

import (
	"strings"
	"testing"

	"github.com/dnswatch/dnsloc/internal/study"
)

func TestGroupVersionString(t *testing.T) {
	cases := map[string]string{
		"dnsmasq-2.85":             "dnsmasq-*",
		"dnsmasq-2.78":             "dnsmasq-*",
		"dnsmasq-pi-hole-2.87":     "dnsmasq-pi-hole-*",
		"unbound 1.9.0":            "unbound*",
		"unbound 1.13.1":           "unbound*",
		"9.11.4-RedHat":            "*-RedHat",
		"9.16.1-Debian":            "*-Debian",
		"PowerDNS Recursor 4.1.11": "PowerDNS Recursor*",
		"Q9-P-7.5":                 "Q9-*",
		"9.16.15":                  "9.16.15",
		"Windows NS":               "Windows NS",
		"Microsoft":                "Microsoft",
		"huuh?":                    "huuh?",
		"new":                      "new",
	}
	for in, want := range cases {
		if got := GroupVersionString(in); got != want {
			t.Errorf("GroupVersionString(%q) = %q, want %q", in, got, want)
		}
	}
}

// sharedResults caches one small study for the format tests.
var sharedResults *study.Results

func results(t *testing.T) *study.Results {
	t.Helper()
	if sharedResults == nil {
		sharedResults = study.Run(study.BuildWorld(study.PaperSpec().Scale(0.05)))
	}
	return sharedResults
}

func TestFormatTable1ContainsPaperRows(t *testing.T) {
	out := FormatTable1()
	for _, want := range []string{
		"Cloudflare DNS", "CHAOS TXT", "id.server", "IAD",
		"Google DNS", "o-o.myaddr.l.google.com",
		"Quad9", "res100.iad.rrdns.pch.net",
		"OpenDNS", "debug.opendns.com", "server m84.iad",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFormatTables2And3(t *testing.T) {
	rows := study.ExampleScenario()
	t2 := FormatTable2(rows)
	for _, want := range []string{"1053", "11992", "21823", "Cloudflare DNS", "Google DNS"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
	t3 := FormatTable3(rows)
	for _, want := range []string{"CPE Public IP", "NXDOMAIN", "unbound 1.9.0", "-"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
}

func TestFormatTable4Shape(t *testing.T) {
	t4 := BuildTable4(results(t))
	out := FormatTable4(t4)
	for _, want := range []string{"Cloudflare DNS", "All Intercepted", "Intercepted v4", "Total v6"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 missing %q:\n%s", want, out)
		}
	}
	if len(t4.Rows) != 4 {
		t.Errorf("rows = %d", len(t4.Rows))
	}
}

func TestFormatTable5Shape(t *testing.T) {
	t5 := BuildTable5(results(t))
	out := FormatTable5(t5)
	if !strings.Contains(out, "version.bind Response") || !strings.Contains(out, "dnsmasq-*") {
		t.Errorf("Table 5:\n%s", out)
	}
	// Rows are sorted by count descending.
	for i := 1; i < len(t5.Rows); i++ {
		if t5.Rows[i].Probes > t5.Rows[i-1].Probes {
			t.Errorf("Table 5 not sorted at %d", i)
		}
	}
}

func TestFormatFiguresShape(t *testing.T) {
	f3 := FormatFigure3(BuildFigure3(results(t), 15))
	if !strings.Contains(f3, "legend:") || !strings.Contains(f3, "Transparent") {
		t.Errorf("Figure 3:\n%s", f3)
	}
	f4 := FormatFigure4(BuildFigure4(results(t), 15))
	for _, want := range []string{"Top 15 countries", "Top 15 organizations", "CPE"} {
		if !strings.Contains(f4, want) {
			t.Errorf("Figure 4 missing %q", want)
		}
	}
}

func TestCSVTable4(t *testing.T) {
	out := CSVTable4(BuildTable4(results(t)))
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + 4 resolvers + all
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "resolver,intercepted_v4,total_v4,intercepted_v6,total_v6" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[5], "all,") {
		t.Errorf("last line = %q", lines[5])
	}
}

func TestFormatAccuracy(t *testing.T) {
	out := FormatAccuracy(BuildAccuracy(results(t)))
	for _, want := range []string{"True positives", "Mislocated", "bogon-droppers"} {
		if !strings.Contains(out, want) {
			t.Errorf("accuracy missing %q:\n%s", want, out)
		}
	}
}
