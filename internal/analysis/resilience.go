package analysis

import (
	"fmt"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/render"
	"github.com/dnswatch/dnsloc/internal/study"
)

// ResilienceRow is one fault level of the resilience sweep: the same
// study world measured through an increasingly hostile path, scored
// against ground truth. The sweep's claim is the paper's conservative
// rule under stress — fault-shaped outcomes (timeouts, garbage) must
// degrade detection toward "not intercepted" or "inconclusive", never
// toward false interception verdicts.
type ResilienceRow struct {
	// Level is the PresetFault severity (0 = clean baseline).
	Level float64
	// Responded counts probes that produced a report.
	Responded int
	// Detection confusion at this level.
	TP, FP, FN, TN int
	// Localized counts true positives whose verdict matched ground
	// truth (including hidden-as-unknown, which is the right answer).
	Localized int
	// Timeouts and Garbage total the fault-shaped final outcomes
	// recorded across all reports' StepFault entries.
	Timeouts, Garbage int
	// Inconclusive counts probes with at least one step degraded to
	// inconclusive.
	Inconclusive int
	// Quarantined counts probes whose measurement panicked and was
	// contained.
	Quarantined int
}

// Accuracy is the detection accuracy (TP+TN over responded).
func (r ResilienceRow) Accuracy() float64 {
	if r.Responded == 0 {
		return 0
	}
	return float64(r.TP+r.TN) / float64(r.Responded)
}

// RunResilienceSweep runs the sharded study once per fault level and
// scores each run. Level 0 runs with no fault plane at all (the exact
// baseline world); higher levels install netsim.PresetFault(level) as
// the default profile on every shard network, with the retry policy on
// every detector.
func RunResilienceSweep(spec study.Spec, opts study.EngineOptions, levels []float64, retry *core.RetryPolicy) []ResilienceRow {
	rows := make([]ResilienceRow, 0, len(levels))
	for _, lvl := range levels {
		s := spec
		if lvl > 0 {
			fp := netsim.PresetFault(lvl, spec.Seed+9000)
			s.Fault = &fp
		}
		s.Retry = retry
		res := study.RunSharded(s, opts)
		rows = append(rows, scoreResilience(lvl, res))
	}
	return rows
}

// scoreResilience reduces one run to its sweep row.
func scoreResilience(level float64, res *study.Results) ResilienceRow {
	a := BuildAccuracy(res)
	row := ResilienceRow{
		Level:       level,
		TP:          a.TruePositives,
		FP:          a.FalsePositives,
		FN:          a.FalseNegatives,
		TN:          a.TrueNegatives,
		Localized:   a.CorrectCPE + a.CorrectISP + a.CorrectUnknown + a.HiddenAsUnknown,
		Quarantined: len(res.Quarantined()),
	}
	for _, rec := range res.Records {
		if rec.Report == nil {
			continue
		}
		row.Responded++
		inconclusive := false
		for _, f := range rec.Report.Faults {
			row.Timeouts += f.Timeouts
			row.Garbage += f.Garbage
			if f.Inconclusive {
				inconclusive = true
			}
		}
		if inconclusive {
			row.Inconclusive++
		}
	}
	return row
}

// FormatResilience renders the sweep as a table.
func FormatResilience(rows []ResilienceRow) string {
	out := [][]string{{
		"Fault Level", "Responded", "TP", "FP", "FN", "TN",
		"Localized", "Timeouts", "Garbage", "Inconcl.", "Quarantined", "Accuracy",
	}}
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%.2f", r.Level),
			fmt.Sprint(r.Responded),
			fmt.Sprint(r.TP), fmt.Sprint(r.FP), fmt.Sprint(r.FN), fmt.Sprint(r.TN),
			fmt.Sprint(r.Localized),
			fmt.Sprint(r.Timeouts), fmt.Sprint(r.Garbage),
			fmt.Sprint(r.Inconclusive), fmt.Sprint(r.Quarantined),
			fmt.Sprintf("%.3f", r.Accuracy()),
		})
	}
	return "Resilience sweep: verdict accuracy vs injected fault level\n\n" +
		render.Table(out)
}
