package analysis

import (
	"fmt"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/render"
	"github.com/dnswatch/dnsloc/internal/study"
)

// FormatTTLExtension renders the TTL-ladder extension results: one row
// per verdict class with the hop-distance distribution of whoever
// answered. Interceptors sort by proximity — the finer localization §6
// hoped TTLs would provide.
func FormatTTLExtension(s study.TTLStats) string {
	rows := [][]string{{"Verdict class", "Probes", "First answering TTL (min/median/max)"}}
	order := []core.Verdict{
		core.VerdictCPE, core.VerdictISP, core.VerdictUnknown, core.VerdictNotIntercepted,
	}
	for _, v := range order {
		ttls := s.FirstTTLs[v]
		if len(ttls) == 0 {
			continue
		}
		min, max := s.Range(v)
		rows = append(rows, []string{
			string(v), fmt.Sprint(len(ttls)),
			fmt.Sprintf("%d / %d / %d", min, s.Median(v), max),
		})
	}
	return "Extension (§6): TTL-ladder hop distance of the answering party\n\n" +
		render.Table(rows)
}
