package analysis

import (
	"fmt"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/render"
	"github.com/dnswatch/dnsloc/internal/study"
)

// AdversaryRow is one rung of the interceptor evasion ladder: the same
// study world measured against increasingly evasive interceptors
// (dnsserver.Adversary), scored twice — once on the CHAOS-only verdict
// and once on the three-signal fusion. The sweep's claim: evasion
// erodes the CHAOS signal from L1 up, the cert and drift signals win
// the detection back, and no scorer ever buys accuracy with false
// positives.
type AdversaryRow struct {
	// Level is the adversary ladder rung (0 = honest interceptors).
	Level int
	// Responded counts probes that produced a report.
	Responded int
	// Chaos* is the CHAOS-only detection confusion at this level.
	ChaosTP, ChaosFP, ChaosFN, ChaosTN int
	// Fused* is the three-signal fusion's confusion.
	FusedTP, FusedFP, FusedFN, FusedTN int
	// Localized counts chaos true positives whose verdict matched
	// ground truth (hidden-as-unknown included).
	Localized int
	// CertFlagged counts probes with at least one certificate-
	// consistency mismatch; Drifted counts probes whose answer set
	// drifted across re-probe rounds.
	CertFlagged, Drifted int
	// Quarantined counts probes whose measurement panicked and was
	// contained.
	Quarantined int
}

// ChaosAccuracy is the CHAOS-only detection accuracy at this level.
func (r AdversaryRow) ChaosAccuracy() float64 {
	if r.Responded == 0 {
		return 0
	}
	return float64(r.ChaosTP+r.ChaosTN) / float64(r.Responded)
}

// FusedAccuracy is the fusion's detection accuracy at this level.
func (r AdversaryRow) FusedAccuracy() float64 {
	if r.Responded == 0 {
		return 0
	}
	return float64(r.FusedTP+r.FusedTN) / float64(r.Responded)
}

// adversaryLevelNames label the ladder rungs in output.
var adversaryLevelNames = map[int]string{
	0: "honest",
	1: "replay",
	2: "forge",
	3: "bogon-gate",
	4: "rate-limit",
}

// RunAdversarySweep runs the sharded study once per adversary level and
// scores each run. Every level (including the honest baseline) enables
// the certificate oracle and one drift re-probe round, so the fused
// column is measured under identical instrumentation throughout and the
// matrix isolates the adversary as the only variable.
func RunAdversarySweep(spec study.Spec, opts study.EngineOptions, levels []int, retry *core.RetryPolicy) []AdversaryRow {
	rows := make([]AdversaryRow, 0, len(levels))
	for _, lvl := range levels {
		s := spec
		s.Adversary = lvl
		s.CertCheck = true
		s.DriftRounds = 1
		s.Retry = retry
		res := study.RunSharded(s, opts)
		rows = append(rows, ScoreAdversary(lvl, res))
	}
	return rows
}

// ScoreAdversary reduces one run to its matrix row. Exported so the
// golden corpus can score the same per-level Results it pins tables
// and metrics from, without running each level twice.
func ScoreAdversary(level int, res *study.Results) AdversaryRow {
	acc := NewAccumulator()
	for _, rec := range res.Records {
		acc.Fold(rec)
	}
	chaos, fused := acc.Accuracy(), acc.FusedAccuracy()
	row := AdversaryRow{
		Level:       level,
		ChaosTP:     chaos.TruePositives,
		ChaosFP:     chaos.FalsePositives,
		ChaosFN:     chaos.FalseNegatives,
		ChaosTN:     chaos.TrueNegatives,
		FusedTP:     fused.TruePositives,
		FusedFP:     fused.FalsePositives,
		FusedFN:     fused.FalseNegatives,
		FusedTN:     fused.TrueNegatives,
		Localized:   chaos.CorrectCPE + chaos.CorrectISP + chaos.CorrectUnknown + chaos.HiddenAsUnknown,
		Quarantined: len(res.Quarantined()),
	}
	for _, rec := range res.Records {
		if rec.Report == nil {
			continue
		}
		row.Responded++
		for _, c := range rec.Report.CertChecks {
			if c.State == core.SignalFlagged {
				row.CertFlagged++
				break
			}
		}
		for _, s := range rec.Report.Signals {
			if s.Drift == core.SignalFlagged {
				row.Drifted++
				break
			}
		}
	}
	return row
}

// FormatAdversary renders the accuracy-vs-adversary-level matrix.
func FormatAdversary(rows []AdversaryRow) string {
	out := [][]string{{
		"Level", "Evasion", "Responded",
		"cTP", "cFP", "cFN", "cTN", "Chaos Acc.",
		"fTP", "fFP", "fFN", "fTN", "Fused Acc.",
		"Localized", "Cert", "Drift", "Quarantined",
	}}
	for _, r := range rows {
		name := adversaryLevelNames[r.Level]
		if name == "" {
			name = fmt.Sprintf("L%d", r.Level)
		}
		out = append(out, []string{
			fmt.Sprintf("L%d", r.Level), name,
			fmt.Sprint(r.Responded),
			fmt.Sprint(r.ChaosTP), fmt.Sprint(r.ChaosFP), fmt.Sprint(r.ChaosFN), fmt.Sprint(r.ChaosTN),
			fmt.Sprintf("%.3f", r.ChaosAccuracy()),
			fmt.Sprint(r.FusedTP), fmt.Sprint(r.FusedFP), fmt.Sprint(r.FusedFN), fmt.Sprint(r.FusedTN),
			fmt.Sprintf("%.3f", r.FusedAccuracy()),
			fmt.Sprint(r.Localized),
			fmt.Sprint(r.CertFlagged), fmt.Sprint(r.Drifted),
			fmt.Sprint(r.Quarantined),
		})
	}
	return "Adversary sweep: detection accuracy vs interceptor evasion level\n" +
		"(c* = CHAOS-only verdict, f* = chaos+cert+drift fusion)\n\n" +
		render.Table(out)
}
