package analysis

import (
	"fmt"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/render"
	"github.com/dnswatch/dnsloc/internal/study"
)

// EncryptionRow is one cell of the encrypted-transport sweep: the same
// study world measured with an Adoption fraction of the fleet speaking
// Transport while every interceptor applies Policy to the encrypted
// channel. The sweep's claim, mirroring the paper's §6 countermeasure
// discussion: encryption removes on-path interception exactly where the
// client profile refuses to downgrade, while opportunistic profiles
// keep the detection signal (a terminating middlebox exposes its
// persona, a blocking one forces the client back onto interceptable
// Do53) — and no profile buys privacy with false positives.
type EncryptionRow struct {
	// Adoption is the upgraded fraction of the fleet (0 = Do53 baseline).
	Adoption float64
	// Transport is the upgraded probes' client profile.
	Transport core.TransportMode
	// Policy is the interceptors' treatment of encrypted DNS.
	Policy dnsserver.EncryptedPolicy

	// Responded counts probes that produced a report; Adopted counts the
	// responding probes that ran the encrypted transport.
	Responded, Adopted int

	// Flagged counts reports that flag interception; AdoptedFlagged is
	// the same count restricted to the adopting cohort — its rate over
	// Adopted is the sweep's "interception rate under encryption".
	Flagged, AdoptedFlagged int

	// TP/FP/FN/TN score detection against the effective ground truth:
	// what interception the probe's resolution path actually suffers
	// once transport and policy are accounted for (see effectiveTruth).
	TP, FP, FN, TN int
}

// Accuracy is the detection accuracy against effective truth.
func (r EncryptionRow) Accuracy() float64 {
	if r.Responded == 0 {
		return 0
	}
	return float64(r.TP+r.TN) / float64(r.Responded)
}

// AdoptedFlaggedRate is the interception rate of the adopting cohort.
func (r EncryptionRow) AdoptedFlaggedRate() float64 {
	if r.Adopted == 0 {
		return 0
	}
	return float64(r.AdoptedFlagged) / float64(r.Adopted)
}

// RunEncryptionSweep runs the sharded study once per grid cell —
// every (policy, transport, adoption) combination — and scores each
// run. An adoption of zero is the Do53 baseline; it is measured per
// policy so each policy block carries its own reference row, under
// identical instrumentation.
func RunEncryptionSweep(spec study.Spec, opts study.EngineOptions, adoptions []float64, transports []core.TransportMode, policies []dnsserver.EncryptedPolicy, retry *core.RetryPolicy) []EncryptionRow {
	var rows []EncryptionRow
	for _, pol := range policies {
		for _, tr := range transports {
			for _, ad := range adoptions {
				e := &study.Encryption{Adoption: ad, Transport: tr, Policy: pol}
				s := spec
				s.Encryption = e
				s.Retry = retry
				res := study.RunSharded(s, opts)
				rows = append(rows, ScoreEncryption(e, res))
			}
		}
	}
	return rows
}

// effectiveTruth is the interception status of a probe's resolution
// path once transport and middlebox policy are applied. Non-adopting
// probes keep their Do53 ground truth. For an adopting probe sitting
// on a true interceptor:
//
//   - pass-through lets the encrypted flow reach the real operator —
//     the path is clean, so effective truth is false;
//   - block plus an opportunistic client forces a downgrade to Do53,
//     which the interceptor owns — truth stays true;
//   - block or terminate against a strict client yields no resolution
//     at all: nothing is intercepted, effective truth is false;
//   - terminate plus an opportunistic client hands the session to the
//     interceptor's own resolver — truth stays true.
func effectiveTruth(rec *study.ProbeRecord, e *study.Encryption) bool {
	truly := rec.Probe.Truth.Intercepted()
	if !truly || !rec.Probe.EncTransport.Encrypted() {
		return truly
	}
	switch e.Policy {
	case dnsserver.EncBlock, dnsserver.EncTerminate:
		return !e.Transport.Strict()
	default: // EncPass
		return false
	}
}

// ScoreEncryption reduces one run to its sweep row. Exported so tests
// can score the same Results they assert determinism on.
func ScoreEncryption(e *study.Encryption, res *study.Results) EncryptionRow {
	row := EncryptionRow{Adoption: e.Adoption, Transport: e.Transport, Policy: e.Policy}
	for _, rec := range res.Records {
		if rec.Report == nil {
			continue
		}
		row.Responded++
		adopted := rec.Probe.EncTransport.Encrypted()
		if adopted {
			row.Adopted++
		}
		flagged := rec.Report.Intercepted()
		if flagged {
			row.Flagged++
			if adopted {
				row.AdoptedFlagged++
			}
		}
		switch truth := effectiveTruth(rec, e); {
		case truth && flagged:
			row.TP++
		case truth && !flagged:
			row.FN++
		case !truth && flagged:
			row.FP++
		default:
			row.TN++
		}
	}
	return row
}

// FormatEncryption renders the interception-vs-adoption matrix.
func FormatEncryption(rows []EncryptionRow) string {
	out := [][]string{{
		"Policy", "Transport", "Adoption", "Responded", "Adopted",
		"Flagged", "Enc. Intercepted", "TP", "FP", "FN", "TN", "Accuracy",
	}}
	for _, r := range rows {
		out = append(out, []string{
			r.Policy.String(), r.Transport.String(),
			fmt.Sprintf("%.2f", r.Adoption),
			fmt.Sprint(r.Responded), fmt.Sprint(r.Adopted),
			fmt.Sprint(r.Flagged),
			fmt.Sprintf("%.3f", r.AdoptedFlaggedRate()),
			fmt.Sprint(r.TP), fmt.Sprint(r.FP), fmt.Sprint(r.FN), fmt.Sprint(r.TN),
			fmt.Sprintf("%.3f", r.Accuracy()),
		})
	}
	return "Encryption sweep: interception and detection vs DoT/DoH adoption\n" +
		"(Enc. Intercepted = flagged share of the adopting cohort;\n" +
		" accuracy scored against effective truth under the policy)\n\n" +
		render.Table(out)
}
