package analysis

import (
	"encoding/json"
	"fmt"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/study"
)

// Accumulator is the streaming form of every aggregate this package
// builds: it folds one ProbeRecord at a time into bounded state —
// per-resolver counters (Table 4), version.bind group counts (Table 5),
// per-organization transparency tallies (Figure 3), per-country and
// per-organization location tallies (Figure 4), and the ground-truth
// confusion matrix — so a million-probe run never has to retain its
// records. Every aggregate is a pure count keyed by record-intrinsic
// fields, so folding is commutative: any fold order, and any shard
// merge order, produces the same tables as the slice-based builders
// (which are now thin wrappers over a throwaway Accumulator).
//
// The state is plain exported data serialized by encoding/json — that
// is what the study engine checkpoints to disk between probes and what
// a resumed shard loads back before folding its remaining records.
type Accumulator struct {
	// Table 4 state, indexed in publicdns.All order.
	Resolvers []ResolverTally `json:"resolvers"`
	All4      All4Tally       `json:"all4"`
	Distinct  int             `json:"distinct_intercepted"`

	// Table 5 state.
	CPEGroups map[string]int `json:"cpe_groups"`
	CPETotal  int            `json:"cpe_total"`

	// Figure 3 state: ASN → transparency tallies.
	Orgs map[int]*Figure3Row `json:"orgs"`

	// Figure 4 state.
	Countries map[string]*Figure4Row `json:"countries"`
	OrgLocs   map[string]*Figure4Row `json:"org_locs"`
	LocCPE    int                    `json:"loc_cpe"`
	LocISP    int                    `json:"loc_isp"`
	LocOther  int                    `json:"loc_other"`

	// Confusion matrix state.
	Score Accuracy `json:"score"`

	// FusedScore is the confusion matrix of the three-signal fusion
	// (Report.FusedIntercepted) against the same ground truth. On runs
	// without the cert/drift signals it equals Score's detection counts.
	// Absent from old checkpoints, which unmarshal it as zero — Merge
	// still adds correctly because zero is the empty tally.
	FusedScore Accuracy `json:"fused_score"`

	// Folded counts the records folded in (quarantined and unresponsive
	// ones included) — the streaming engine's progress cursor.
	Folded int `json:"folded"`
}

// ResolverTally is one resolver's Table 4 counters.
type ResolverTally struct {
	InterceptedV4 int `json:"int_v4"`
	TotalV4       int `json:"tot_v4"`
	InterceptedV6 int `json:"int_v6"`
	TotalV6       int `json:"tot_v6"`
}

// All4Tally is the "All Intercepted" line's counters.
type All4Tally struct {
	InterceptedV4 int `json:"int_v4"`
	TotalV4       int `json:"tot_v4"`
	InterceptedV6 int `json:"int_v6"`
	TotalV6       int `json:"tot_v6"`
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{
		Resolvers: make([]ResolverTally, len(publicdns.All)),
		CPEGroups: make(map[string]int),
		Orgs:      make(map[int]*Figure3Row),
		Countries: make(map[string]*Figure4Row),
		OrgLocs:   make(map[string]*Figure4Row),
	}
}

// Fold adds one record's contribution to every aggregate. The record is
// not retained; callers may release or reuse it afterwards.
func (a *Accumulator) Fold(rec *study.ProbeRecord) {
	a.Folded++
	a.foldTable4(rec)
	a.foldScore(rec)
	a.foldFusedScore(rec)
	if rec.Report == nil || !rec.Report.Intercepted() {
		return
	}
	a.Distinct++
	a.foldTable5(rec)
	a.foldFigure3(rec)
	a.foldFigure4(rec)
}

func (a *Accumulator) foldTable4(rec *study.ProbeRecord) {
	for i, id := range publicdns.All {
		if rec.Responded[study.ExpKey{Resolver: id, Family: core.V4}] {
			a.Resolvers[i].TotalV4++
			if rec.InterceptedFor(id, core.V4) {
				a.Resolvers[i].InterceptedV4++
			}
		}
		if rec.Responded[study.ExpKey{Resolver: id, Family: core.V6}] {
			a.Resolvers[i].TotalV6++
			if rec.InterceptedFor(id, core.V6) {
				a.Resolvers[i].InterceptedV6++
			}
		}
	}
	for _, f := range []core.Family{core.V4, core.V6} {
		if !rec.RespondedAll4(f) {
			continue
		}
		all := true
		for _, id := range publicdns.All {
			if !rec.InterceptedFor(id, f) {
				all = false
				break
			}
		}
		if f == core.V4 {
			a.All4.TotalV4++
			if all {
				a.All4.InterceptedV4++
			}
		} else {
			a.All4.TotalV6++
			if all {
				a.All4.InterceptedV6++
			}
		}
	}
}

func (a *Accumulator) foldTable5(rec *study.ProbeRecord) {
	if rec.Report.Verdict != core.VerdictCPE {
		return
	}
	a.CPETotal++
	a.CPEGroups[GroupVersionString(rec.Report.CPEString)]++
}

func (a *Accumulator) foldFigure3(rec *study.ProbeRecord) {
	row := a.Orgs[rec.Probe.ASN]
	if row == nil {
		row = &Figure3Row{Org: rec.Probe.Org, ASN: rec.Probe.ASN}
		a.Orgs[rec.Probe.ASN] = row
	}
	row.Total++
	switch rec.Report.Transparency {
	case core.Transparent:
		row.Transparent++
	case core.StatusModified:
		row.Modified++
	case core.TransparencyBoth:
		row.Both++
	}
}

func (a *Accumulator) foldFigure4(rec *study.ProbeRecord) {
	v := rec.Report.Verdict
	add := func(m map[string]*Figure4Row, label string) {
		row := m[label]
		if row == nil {
			row = &Figure4Row{Label: label}
			m[label] = row
		}
		row.Total++
		switch v {
		case core.VerdictCPE:
			row.CPE++
		case core.VerdictISP:
			row.ISP++
		default:
			row.Unknown++
		}
	}
	add(a.Countries, rec.Probe.Country)
	add(a.OrgLocs, rec.Probe.Org)
	switch v {
	case core.VerdictCPE:
		a.LocCPE++
	case core.VerdictISP:
		a.LocISP++
	default:
		a.LocOther++
	}
}

func (a *Accumulator) foldScore(rec *study.ProbeRecord) {
	if rec.Report == nil {
		return
	}
	s := &a.Score
	truly := rec.Probe.Truth.Intercepted()
	flagged := rec.Report.Intercepted()
	switch {
	case truly && flagged:
		s.TruePositives++
	case truly && !flagged:
		s.FalseNegatives++
	case !truly && flagged:
		s.FalsePositives++
	default:
		s.TrueNegatives++
	}
	if !(truly && flagged) {
		return
	}
	switch loc, v := rec.Probe.Truth.Location, rec.Report.Verdict; {
	case loc == "cpe" && v == core.VerdictCPE:
		s.CorrectCPE++
	case loc == "isp" && v == core.VerdictISP:
		s.CorrectISP++
	case loc == "transit" && v == core.VerdictUnknown:
		s.CorrectUnknown++
	case loc == "isp-hidden" && v == core.VerdictUnknown:
		s.HiddenAsUnknown++
	default:
		s.Mislocated++
	}
}

// foldFusedScore scores the signal fusion's detection verdict. Only the
// confusion counts are filled: the cert and drift signals detect, they
// do not localize, so the localization split stays Score's business.
func (a *Accumulator) foldFusedScore(rec *study.ProbeRecord) {
	if rec.Report == nil {
		return
	}
	s := &a.FusedScore
	truly := rec.Probe.Truth.Intercepted()
	flagged := rec.Report.FusedIntercepted()
	switch {
	case truly && flagged:
		s.TruePositives++
	case truly && !flagged:
		s.FalseNegatives++
	case !truly && flagged:
		s.FalsePositives++
	default:
		s.TrueNegatives++
	}
}

// Merge folds another accumulator's state into this one. Every field is
// an additive count, so merging is commutative and associative — shard
// accumulators merged in any order equal one accumulator fed every
// record. Implements study.Accumulator.
func (a *Accumulator) Merge(other study.Accumulator) error {
	o, ok := other.(*Accumulator)
	if !ok {
		return fmt.Errorf("analysis: cannot merge %T into *Accumulator", other)
	}
	a.mergeFrom(o)
	return nil
}

func (a *Accumulator) mergeFrom(o *Accumulator) {
	for i := range a.Resolvers {
		if i >= len(o.Resolvers) {
			break
		}
		a.Resolvers[i].InterceptedV4 += o.Resolvers[i].InterceptedV4
		a.Resolvers[i].TotalV4 += o.Resolvers[i].TotalV4
		a.Resolvers[i].InterceptedV6 += o.Resolvers[i].InterceptedV6
		a.Resolvers[i].TotalV6 += o.Resolvers[i].TotalV6
	}
	a.All4.InterceptedV4 += o.All4.InterceptedV4
	a.All4.TotalV4 += o.All4.TotalV4
	a.All4.InterceptedV6 += o.All4.InterceptedV6
	a.All4.TotalV6 += o.All4.TotalV6
	a.Distinct += o.Distinct
	a.CPETotal += o.CPETotal
	for g, n := range o.CPEGroups {
		a.CPEGroups[g] += n
	}
	for asn, row := range o.Orgs {
		dst := a.Orgs[asn]
		if dst == nil {
			dst = &Figure3Row{Org: row.Org, ASN: row.ASN}
			a.Orgs[asn] = dst
		}
		dst.Transparent += row.Transparent
		dst.Modified += row.Modified
		dst.Both += row.Both
		dst.Total += row.Total
	}
	mergeF4 := func(dst, src map[string]*Figure4Row) {
		for label, row := range src {
			d := dst[label]
			if d == nil {
				d = &Figure4Row{Label: label}
				dst[label] = d
			}
			d.CPE += row.CPE
			d.ISP += row.ISP
			d.Unknown += row.Unknown
			d.Total += row.Total
		}
	}
	mergeF4(a.Countries, o.Countries)
	mergeF4(a.OrgLocs, o.OrgLocs)
	a.LocCPE += o.LocCPE
	a.LocISP += o.LocISP
	a.LocOther += o.LocOther

	a.Score.TruePositives += o.Score.TruePositives
	a.Score.FalsePositives += o.Score.FalsePositives
	a.Score.TrueNegatives += o.Score.TrueNegatives
	a.Score.FalseNegatives += o.Score.FalseNegatives
	a.Score.CorrectCPE += o.Score.CorrectCPE
	a.Score.CorrectISP += o.Score.CorrectISP
	a.Score.CorrectUnknown += o.Score.CorrectUnknown
	a.Score.Mislocated += o.Score.Mislocated
	a.Score.HiddenAsUnknown += o.Score.HiddenAsUnknown
	a.FusedScore.TruePositives += o.FusedScore.TruePositives
	a.FusedScore.FalsePositives += o.FusedScore.FalsePositives
	a.FusedScore.TrueNegatives += o.FusedScore.TrueNegatives
	a.FusedScore.FalseNegatives += o.FusedScore.FalseNegatives

	a.Folded += o.Folded
}

// MarshalState serializes the accumulator for a shard checkpoint.
// Implements study.Accumulator.
func (a *Accumulator) MarshalState() ([]byte, error) {
	return json.Marshal(a)
}

// LoadState replaces the accumulator's state with a checkpointed one.
// Implements study.Accumulator.
func (a *Accumulator) LoadState(data []byte) error {
	fresh := NewAccumulator()
	if err := json.Unmarshal(data, fresh); err != nil {
		return fmt.Errorf("analysis: loading accumulator state: %w", err)
	}
	// A checkpoint written before any fold may have nil maps; keep the
	// invariant that every map is non-nil.
	if fresh.CPEGroups == nil {
		fresh.CPEGroups = make(map[string]int)
	}
	if fresh.Orgs == nil {
		fresh.Orgs = make(map[int]*Figure3Row)
	}
	if fresh.Countries == nil {
		fresh.Countries = make(map[string]*Figure4Row)
	}
	if fresh.OrgLocs == nil {
		fresh.OrgLocs = make(map[string]*Figure4Row)
	}
	if len(fresh.Resolvers) != len(publicdns.All) {
		return fmt.Errorf("analysis: checkpoint has %d resolver tallies, want %d",
			len(fresh.Resolvers), len(publicdns.All))
	}
	*a = *fresh
	return nil
}

// Table4 renders the accumulated Table 4.
func (a *Accumulator) Table4() Table4 {
	var t Table4
	for i, id := range publicdns.All {
		t.Rows = append(t.Rows, Table4Row{
			Resolver:      id,
			Display:       publicdns.Lookup(id).DisplayName,
			InterceptedV4: a.Resolvers[i].InterceptedV4,
			TotalV4:       a.Resolvers[i].TotalV4,
			InterceptedV6: a.Resolvers[i].InterceptedV6,
			TotalV6:       a.Resolvers[i].TotalV6,
		})
	}
	t.AllInterceptedV4 = a.All4.InterceptedV4
	t.AllTotalV4 = a.All4.TotalV4
	t.AllInterceptedV6 = a.All4.InterceptedV6
	t.AllTotalV6 = a.All4.TotalV6
	t.DistinctIntercepted = a.Distinct
	return t
}

// Table5 renders the accumulated Table 5.
func (a *Accumulator) Table5() Table5 {
	var t Table5
	t.CPETotal = a.CPETotal
	for g, n := range a.CPEGroups {
		t.Rows = append(t.Rows, Table5Row{Group: g, Probes: n})
	}
	sortTable5(t.Rows)
	return t
}

// Figure3 renders the accumulated Figure 3 (top n organizations).
func (a *Accumulator) Figure3(n int) Figure3 {
	var rows []Figure3Row
	for _, row := range a.Orgs {
		rows = append(rows, *row)
	}
	sortFigure3(rows)
	if len(rows) > n {
		rows = rows[:n]
	}
	return Figure3{Rows: rows}
}

// Figure4 renders the accumulated Figure 4 (top n of each breakdown).
func (a *Accumulator) Figure4(n int) Figure4 {
	return Figure4{
		Countries: topRows(a.Countries, n),
		Orgs:      topRows(a.OrgLocs, n),
		CPE:       a.LocCPE,
		ISP:       a.LocISP,
		Unknown:   a.LocOther,
	}
}

// Accuracy returns the accumulated confusion matrix.
func (a *Accumulator) Accuracy() Accuracy {
	return a.Score
}

// FusedAccuracy returns the three-signal fusion's confusion matrix
// (detection counts only; see foldFusedScore).
func (a *Accumulator) FusedAccuracy() Accuracy {
	return a.FusedScore
}
