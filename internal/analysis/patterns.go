package analysis

import (
	"fmt"
	"sort"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/render"
	"github.com/dnswatch/dnsloc/internal/study"
)

// PatternBreakdown quantifies §4.1.1's observation about interception
// patterns: most intercepted probes are intercepted for all four
// resolvers; among the rest, the common families are "only one resolver
// intercepted" (Google and Cloudflare more often than the others,
// presumably for their market share) and "only one resolver allowed"
// (deliberate single-resolver policies).
type PatternBreakdown struct {
	Family core.Family

	AllFour int
	// OnlyOne counts probes where exactly this resolver is intercepted.
	OnlyOne map[publicdns.ID]int
	// OnlyOneAllowed counts probes where every resolver except this one
	// is intercepted.
	OnlyOneAllowed map[publicdns.ID]int
	// Pairs counts two-resolver patterns.
	Pairs int
	// Total is the number of probes intercepted in this family.
	Total int
}

// BuildPatternBreakdown computes the family's pattern histogram.
func BuildPatternBreakdown(r *study.Results, family core.Family) PatternBreakdown {
	b := PatternBreakdown{
		Family:         family,
		OnlyOne:        make(map[publicdns.ID]int),
		OnlyOneAllowed: make(map[publicdns.ID]int),
	}
	for _, rec := range r.Records {
		if rec.Report == nil {
			continue
		}
		set := rec.Report.InterceptedV4
		if family == core.V6 {
			set = rec.Report.InterceptedV6
		}
		if len(set) == 0 {
			continue
		}
		b.Total++
		switch len(set) {
		case len(publicdns.All):
			b.AllFour++
		case 1:
			b.OnlyOne[set[0]]++
		case len(publicdns.All) - 1:
			b.OnlyOneAllowed[missingOf(set)]++
		case 2:
			b.Pairs++
		}
	}
	return b
}

// missingOf finds the operator absent from a three-element set.
func missingOf(set []publicdns.ID) publicdns.ID {
	present := map[publicdns.ID]bool{}
	for _, id := range set {
		present[id] = true
	}
	for _, id := range publicdns.All {
		if !present[id] {
			return id
		}
	}
	return ""
}

// FormatPatternBreakdown renders the histogram.
func FormatPatternBreakdown(b PatternBreakdown) string {
	rows := [][]string{{"Pattern (" + string(b.Family) + ")", "Probes"}}
	rows = append(rows, []string{"all four intercepted", fmt.Sprint(b.AllFour)})
	ids := append([]publicdns.ID(nil), publicdns.All...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if n := b.OnlyOne[id]; n > 0 {
			rows = append(rows, []string{"only " + string(id) + " intercepted", fmt.Sprint(n)})
		}
	}
	for _, id := range ids {
		if n := b.OnlyOneAllowed[id]; n > 0 {
			rows = append(rows, []string{"only " + string(id) + " allowed", fmt.Sprint(n)})
		}
	}
	rows = append(rows, []string{"two-resolver patterns", fmt.Sprint(b.Pairs)})
	rows = append(rows, []string{"total intercepted", fmt.Sprint(b.Total)})
	return "Interception patterns (§4.1.1)\n\n" + render.Table(rows)
}
