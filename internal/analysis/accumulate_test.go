package analysis

import (
	"testing"

	"github.com/dnswatch/dnsloc/internal/study"
)

// renderAll renders every aggregate an accumulator feeds, as one string
// — the byte surface the fold-order and merge tests compare.
func renderAll(a *Accumulator) string {
	t4 := a.Table4()
	return FormatTable4(t4) + CSVTable4(t4) +
		FormatTable5(a.Table5()) +
		FormatFigure3(a.Figure3(10)) +
		FormatFigure4(a.Figure4(10)) +
		FormatAccuracy(a.Accuracy())
}

// TestAccumulatorFoldOrderInvariance: folding the same records in
// reverse order renders byte-identical tables — the property that lets
// the streaming engine fold records as they complete.
func TestAccumulatorFoldOrderInvariance(t *testing.T) {
	recs := results(t).Records
	fwd, rev := NewAccumulator(), NewAccumulator()
	for _, rec := range recs {
		fwd.Fold(rec)
	}
	for i := len(recs) - 1; i >= 0; i-- {
		rev.Fold(recs[i])
	}
	if renderAll(fwd) != renderAll(rev) {
		t.Errorf("fold order changed rendered output:\n--- forward ---\n%s--- reverse ---\n%s",
			renderAll(fwd), renderAll(rev))
	}
}

// TestAccumulatorMergeEqualsFullFold: records dealt round-robin across
// three accumulators and merged equal one accumulator fed everything —
// the property the shard merge relies on.
func TestAccumulatorMergeEqualsFullFold(t *testing.T) {
	recs := results(t).Records
	full := NewAccumulator()
	parts := []*Accumulator{NewAccumulator(), NewAccumulator(), NewAccumulator()}
	for i, rec := range recs {
		full.Fold(rec)
		parts[i%len(parts)].Fold(rec)
	}
	merged := NewAccumulator()
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Folded != len(recs) {
		t.Errorf("merged.Folded = %d, want %d", merged.Folded, len(recs))
	}
	if renderAll(merged) != renderAll(full) {
		t.Errorf("merged shards diverge from full fold:\n--- full ---\n%s--- merged ---\n%s",
			renderAll(full), renderAll(merged))
	}
}

// TestAccumulatorStateRoundtrip: checkpointing mid-fold and resuming in
// a fresh accumulator lands on the same rendered output as an
// uninterrupted fold.
func TestAccumulatorStateRoundtrip(t *testing.T) {
	recs := results(t).Records
	if len(recs) < 4 {
		t.Fatalf("need a few records, got %d", len(recs))
	}
	full := NewAccumulator()
	for _, rec := range recs {
		full.Fold(rec)
	}
	half := NewAccumulator()
	cut := len(recs) / 2
	for _, rec := range recs[:cut] {
		half.Fold(rec)
	}
	state, err := half.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	resumed := NewAccumulator()
	if err := resumed.LoadState(state); err != nil {
		t.Fatal(err)
	}
	if resumed.Folded != cut {
		t.Errorf("restored Folded = %d, want %d", resumed.Folded, cut)
	}
	for _, rec := range recs[cut:] {
		resumed.Fold(rec)
	}
	if renderAll(resumed) != renderAll(full) {
		t.Errorf("checkpoint roundtrip diverges from uninterrupted fold:\n--- full ---\n%s--- resumed ---\n%s",
			renderAll(full), renderAll(resumed))
	}
}

// TestAccumulatorLoadStateRejectsGarbage: corrupt or mismatched state
// must error rather than fold into silently wrong tables.
func TestAccumulatorLoadStateRejectsGarbage(t *testing.T) {
	a := NewAccumulator()
	if err := a.LoadState([]byte("{not json")); err == nil {
		t.Error("LoadState accepted malformed JSON")
	}
	if err := a.LoadState([]byte(`{"resolvers":[{"int_v4":1}]}`)); err == nil {
		t.Error("LoadState accepted a state with the wrong resolver count")
	}
}

// TestBuildersMatchAccumulator: the slice-based Build* entry points are
// wrappers over the accumulator; pin that they agree with an explicit
// fold so a future divergence in either path is caught.
func TestBuildersMatchAccumulator(t *testing.T) {
	r := results(t)
	a := NewAccumulator()
	for _, rec := range r.Records {
		a.Fold(rec)
	}
	if got, want := FormatTable4(BuildTable4(r)), FormatTable4(a.Table4()); got != want {
		t.Errorf("BuildTable4 != accumulator Table4:\n%s\nvs\n%s", got, want)
	}
	if got, want := FormatTable5(BuildTable5(r)), FormatTable5(a.Table5()); got != want {
		t.Errorf("BuildTable5 != accumulator Table5:\n%s\nvs\n%s", got, want)
	}
	if got, want := FormatFigure3(BuildFigure3(r, 10)), FormatFigure3(a.Figure3(10)); got != want {
		t.Errorf("BuildFigure3 != accumulator Figure3:\n%s\nvs\n%s", got, want)
	}
	if got, want := FormatFigure4(BuildFigure4(r, 10)), FormatFigure4(a.Figure4(10)); got != want {
		t.Errorf("BuildFigure4 != accumulator Figure4:\n%s\nvs\n%s", got, want)
	}
	if got, want := BuildAccuracy(r), a.Accuracy(); got != want {
		t.Errorf("BuildAccuracy = %+v, accumulator = %+v", got, want)
	}
}

// TestAccumulatorMergeRejectsForeignType guards the type assertion in
// Merge.
func TestAccumulatorMergeRejectsForeignType(t *testing.T) {
	if err := NewAccumulator().Merge(foreignAcc{}); err == nil {
		t.Error("Merge accepted a foreign accumulator type")
	}
}

type foreignAcc struct{}

func (foreignAcc) Fold(*study.ProbeRecord)       {}
func (foreignAcc) Merge(study.Accumulator) error { return nil }
func (foreignAcc) MarshalState() ([]byte, error) { return nil, nil }
func (foreignAcc) LoadState([]byte) error        { return nil }
