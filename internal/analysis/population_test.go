package analysis

import (
	"strings"
	"testing"
)

func TestPopulationBiasShape(t *testing.T) {
	rows := BuildPopulation(results(t))
	if len(rows) < 10 {
		t.Fatalf("countries = %d", len(rows))
	}
	// Atlas bias: the US leads the fleet.
	if rows[0].Country != "US" {
		t.Errorf("largest population = %s, want US", rows[0].Country)
	}
	totalProbes, totalResp := 0, 0
	for _, r := range rows {
		if r.Responding > r.Probes || r.Intercepted > r.Responding {
			t.Errorf("%s: inconsistent counts %+v", r.Country, r)
		}
		totalProbes += r.Probes
		totalResp += r.Responding
	}
	if totalProbes != results(t).World.Spec.TotalProbes {
		t.Errorf("population %d != spec %d", totalProbes, results(t).World.Spec.TotalProbes)
	}
	// Availability model: a few percent never respond.
	if totalResp >= totalProbes {
		t.Error("every probe responded; availability model inactive")
	}
	if float64(totalResp) < 0.9*float64(totalProbes) {
		t.Errorf("only %d/%d responding; availability model too harsh", totalResp, totalProbes)
	}
}

func TestFormatPopulation(t *testing.T) {
	out := FormatPopulation(BuildPopulation(results(t)))
	for _, want := range []string{"Country", "total", "US"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}
