package analysis

import (
	"strings"
	"testing"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/study"
)

// TestRunResilienceSweep drives the fault sweep at pilot scale over a
// clean baseline and one impaired level, pinning the conservative rule:
// faults erode detection toward misses and inconclusive steps, never
// toward false interception verdicts.
func TestRunResilienceSweep(t *testing.T) {
	spec := study.PaperSpec().Scale(0.0064)
	rows := RunResilienceSweep(spec, study.EngineOptions{Workers: 2},
		[]float64{0, 0.6}, &core.RetryPolicy{MaxAttempts: 3})
	if len(rows) != 2 {
		t.Fatalf("%d rows for 2 levels", len(rows))
	}
	clean, faulted := rows[0], rows[1]

	if clean.Accuracy() != 1.0 {
		t.Errorf("clean baseline accuracy = %.3f, want 1.000", clean.Accuracy())
	}
	// Even the clean world records a few timeouts (bogon canaries dying
	// at AS borders), so compare levels rather than expecting zero.
	if faulted.Timeouts+faulted.Garbage <= clean.Timeouts+clean.Garbage {
		t.Errorf("faulted row (%d timeouts, %d garbage) shows no more fault evidence than clean (%d, %d)",
			faulted.Timeouts, faulted.Garbage, clean.Timeouts, clean.Garbage)
	}
	for _, r := range rows {
		if r.FP != 0 {
			t.Errorf("level %.2f: %d false positives, want 0", r.Level, r.FP)
		}
		if r.Quarantined != 0 {
			t.Errorf("level %.2f: %d quarantined probes", r.Level, r.Quarantined)
		}
		if r.Responded == 0 {
			t.Errorf("level %.2f: nothing responded", r.Level)
		}
	}

	out := FormatResilience(rows)
	for _, want := range []string{"Fault Level", "Accuracy", "0.60"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatResilience output missing %q:\n%s", want, out)
		}
	}
}

// TestResilienceRowAccuracyGuard: an empty row divides by nothing.
func TestResilienceRowAccuracyGuard(t *testing.T) {
	var r ResilienceRow
	if r.Accuracy() != 0 {
		t.Errorf("empty row accuracy = %.3f, want 0", r.Accuracy())
	}
}
