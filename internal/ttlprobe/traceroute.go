package ttlprobe

import (
	"fmt"
	"net/netip"
	"strings"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// Hop is one rung of a DNS traceroute.
type Hop struct {
	TTL int
	// Router is who sent ICMP Time Exceeded at this TTL (invalid Addr =
	// an anonymous hop, rendered "*").
	Router netip.Addr
	// Answered reports that the DNS query itself was answered at this
	// TTL — the ladder's terminal rung. Whoever answered is at most
	// this many hops away.
	Answered bool
	// AnswerSource is the (possibly spoofed) source of the DNS answer.
	AnswerSource netip.Addr
}

// String renders the hop traceroute-style.
func (h Hop) String() string {
	switch {
	case h.Answered:
		return fmt.Sprintf("%2d  %s  [DNS answer]", h.TTL, h.AnswerSource)
	case h.Router.IsValid():
		return fmt.Sprintf("%2d  %s", h.TTL, h.Router)
	default:
		return fmt.Sprintf("%2d  *", h.TTL)
	}
}

// Trace is a full DNS traceroute run.
type Trace struct {
	Server netip.AddrPort
	Hops   []Hop
}

// String renders the whole trace.
func (t Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "dns traceroute to %s\n", t.Server)
	for _, h := range t.Hops {
		sb.WriteString(h.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// AnsweredAt returns the TTL of the answering rung (0 = never answered).
func (t Trace) AnsweredAt() int {
	for _, h := range t.Hops {
		if h.Answered {
			return h.TTL
		}
	}
	return 0
}

// Traceroute walks TTL 1..maxTTL sending the same DNS query, recording
// the ICMP Time Exceeded source at each rung until the query is
// answered. It requires a simulated vantage (real traceroute needs raw
// sockets — exactly the restriction §6 notes; the simulator is where
// this extension can actually run).
func Traceroute(c *SimTTLClient, server netip.AddrPort, name dnswire.Name, maxTTL int) (Trace, error) {
	if maxTTL <= 0 {
		maxTTL = 16
	}
	tr := Trace{Server: server}
	for ttl := 1; ttl <= maxTTL; ttl++ {
		q := dnswire.NewQuery(uint16(0x7100+ttl), name, dnswire.TypeA, dnswire.ClassINET)
		payload, err := q.PackTo(c.Net.PayloadBuf())
		if err != nil {
			return tr, err
		}
		pkts, err := c.Host.Exchange(c.Net, server, payload, netsim.ExchangeOptions{TTL: ttl})
		c.Net.RecyclePayload(payload)
		hop := Hop{TTL: ttl}
		if err == nil {
			for _, p := range pkts {
				switch p.Proto {
				case netsim.UDP:
					hop.Answered = true
					hop.AnswerSource = p.Src.Addr()
				case netsim.ICMP:
					hop.Router = p.Src.Addr()
				}
			}
			c.Host.Recycle(pkts)
		}
		tr.Hops = append(tr.Hops, hop)
		if hop.Answered {
			return tr, nil
		}
	}
	return tr, ErrNoAnswer
}
