// Package ttlprobe implements the TTL-based localization the paper
// sketches as future work (§6): send the same query with increasing IP
// TTLs; the smallest TTL that still produces an answer is the hop
// distance of whoever answers. An interceptor close to the client
// (hop 1: the CPE; hop 2-3: the ISP) answers queries whose TTL could
// never have reached the real resolver.
//
// The paper could not run this on RIPE Atlas (the platform cannot set
// TTLs) or VPNGate (the VPN rewrites TTLs), and on a real host it needs
// root or SUID. The simulator has no such constraint, so the extension
// is exercised end-to-end here; for live networks the TTLClient
// interface is the seam where a raw-socket implementation would go.
package ttlprobe

import (
	"errors"
	"net/netip"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// TTLClient exchanges a query with a caller-chosen initial TTL.
type TTLClient interface {
	ExchangeTTL(server netip.AddrPort, query *dnswire.Message, ttl int) ([]*dnswire.Message, error)
}

// SimTTLClient adapts a simulated host.
type SimTTLClient struct {
	Net  *netsim.Network
	Host *netsim.Host
}

// ExchangeTTL implements TTLClient.
func (c *SimTTLClient) ExchangeTTL(server netip.AddrPort, query *dnswire.Message, ttl int) ([]*dnswire.Message, error) {
	payload, err := query.PackTo(c.Net.PayloadBuf())
	if err != nil {
		return nil, err
	}
	pkts, err := c.Host.Exchange(c.Net, server, payload, netsim.ExchangeOptions{TTL: ttl})
	c.Net.RecyclePayload(payload)
	if err != nil {
		return nil, err
	}
	var out []*dnswire.Message
	for _, p := range pkts {
		if m, err := dnswire.Unpack(p.Payload); err == nil && m.Header.ID == query.Header.ID {
			out = append(out, m)
		}
	}
	c.Host.Recycle(pkts)
	if len(out) == 0 {
		return nil, netsim.ErrTimeout
	}
	return out, nil
}

// Result is one ladder run.
type Result struct {
	Server netip.AddrPort
	// AnsweredAt[t] reports whether the TTL-t probe got an answer.
	AnsweredAt map[int]bool
	// FirstTTL is the smallest answering TTL (0 = nothing answered).
	FirstTTL int
	// MaxTTL is the ladder's ceiling.
	MaxTTL int
}

// Interceptor hop-distance interpretation. The CPE is the first hop;
// anything inside the ISP answers within a few hops; a TTL that only
// succeeds at the full path length is consistent with no interception.
const (
	// HopCPE is the CPE's distance from a LAN host.
	HopCPE = 1
)

// ErrNoAnswer means no rung of the ladder produced an answer.
var ErrNoAnswer = errors.New("ttlprobe: no TTL produced an answer")

// Ladder probes server with TTL 1..maxTTL using fresh copies of query.
// It stops early once a rung answers (higher TTLs also reach whatever
// answered).
func Ladder(c TTLClient, server netip.AddrPort, name dnswire.Name, maxTTL int) (Result, error) {
	if maxTTL <= 0 {
		maxTTL = 16
	}
	res := Result{Server: server, AnsweredAt: make(map[int]bool), MaxTTL: maxTTL}
	for ttl := 1; ttl <= maxTTL; ttl++ {
		q := dnswire.NewQuery(uint16(0x7000+ttl), name, dnswire.TypeA, dnswire.ClassINET)
		resps, err := c.ExchangeTTL(server, q, ttl)
		answered := err == nil && len(resps) > 0
		res.AnsweredAt[ttl] = answered
		if answered {
			res.FirstTTL = ttl
			return res, nil
		}
	}
	return res, ErrNoAnswer
}

// Classify interprets a ladder against a baseline path length: the
// number of hops a clean path to the resolver needs. It returns a
// human-readable location class.
func Classify(r Result, cleanPathHops int) string {
	switch {
	case r.FirstTTL == 0:
		return "no answer at any TTL"
	case r.FirstTTL == HopCPE:
		return "answered at hop 1: the CPE itself"
	case r.FirstTTL < cleanPathHops:
		return "answered before the path's end: an on-path interceptor"
	default:
		return "answered only at full path length: consistent with no interception"
	}
}
