package ttlprobe_test

import (
	"strings"
	"testing"

	"github.com/dnswatch/dnsloc/internal/homelab"
	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/ttlprobe"
)

func traceTo(t *testing.T, s homelab.Scenario) (ttlprobe.Trace, *homelab.Lab) {
	t.Helper()
	lab := homelab.New(s)
	c := &ttlprobe.SimTTLClient{Net: lab.Net, Host: lab.Probe}
	tr, err := ttlprobe.Traceroute(c, googleV4(), publicdns.CanaryDomain, 10)
	if err != nil {
		t.Fatalf("traceroute: %v", err)
	}
	return tr, lab
}

func TestTracerouteCleanPathNamesEveryHop(t *testing.T) {
	tr, lab := traceTo(t, homelab.Clean)
	if got := tr.AnsweredAt(); got != 5 {
		t.Fatalf("answered at %d, want 5\n%s", got, tr)
	}
	// Hop 1: the CPE's LAN address, as in real home traceroutes.
	if tr.Hops[0].Router != lab.CPE.Config.LANAddr {
		t.Errorf("hop 1 = %s, want CPE %s", tr.Hops[0].Router, lab.CPE.Config.LANAddr)
	}
	// Hops 2 and 3: the ISP's segment and border router IDs.
	for i, hop := range tr.Hops[1:3] {
		if !hop.Router.IsValid() {
			t.Errorf("hop %d anonymous, want an ISP router ID", i+2)
			continue
		}
		if !lab.ISP.Config.PrefixV4.Contains(hop.Router) {
			t.Errorf("hop %d = %s, outside the ISP", i+2, hop.Router)
		}
	}
	// Hop 4: the regional transit's CGN-space ID.
	if r := tr.Hops[3].Router; !r.IsValid() || r.As4()[0] != 100 {
		t.Errorf("hop 4 = %s, want a 100.65/16 transit ID", r)
	}
	// The terminal rung's answer claims to come from the query target.
	last := tr.Hops[len(tr.Hops)-1]
	if last.AnswerSource != googleV4().Addr() {
		t.Errorf("answer source = %s", last.AnswerSource)
	}
}

func TestTracerouteXB6TerminatesAtHop1(t *testing.T) {
	tr, _ := traceTo(t, homelab.XB6)
	if got := tr.AnsweredAt(); got != 1 {
		t.Fatalf("answered at %d, want 1\n%s", got, tr)
	}
	// The answer still claims to be Google — the spoof is visible right
	// next to the 1-hop distance, which is the tell.
	if tr.Hops[0].AnswerSource != googleV4().Addr() {
		t.Errorf("answer source = %s", tr.Hops[0].AnswerSource)
	}
}

func TestTracerouteMiddleboxShowsISPInterior(t *testing.T) {
	tr, lab := traceTo(t, homelab.ISPMiddlebox)
	at := tr.AnsweredAt()
	if at <= 1 || at >= 5 {
		t.Fatalf("answered at %d, want inside the ISP\n%s", at, tr)
	}
	// Every hop before the answer is named (ICMP conntrack fixes up the
	// DNATed flow) and inside the client's home or ISP — the "Google"
	// answering four hops in is the giveaway.
	for i, hop := range tr.Hops[:at-1] {
		if !hop.Router.IsValid() {
			t.Errorf("hop %d anonymous", i+1)
			continue
		}
		if !lab.ISP.Config.PrefixV4.Contains(hop.Router) && hop.Router != lab.CPE.Config.LANAddr {
			t.Errorf("pre-answer hop %s outside the ISP", hop.Router)
		}
	}
}

func TestTracerouteRendering(t *testing.T) {
	tr, _ := traceTo(t, homelab.Clean)
	s := tr.String()
	for _, want := range []string{"dns traceroute to", "[DNS answer]", "192.168.1.1"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}
