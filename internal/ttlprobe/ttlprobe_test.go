package ttlprobe_test

import (
	"errors"
	"net/netip"
	"strings"
	"testing"

	"github.com/dnswatch/dnsloc/internal/homelab"
	"github.com/dnswatch/dnsloc/internal/publicdns"
	"github.com/dnswatch/dnsloc/internal/ttlprobe"
)

func googleV4() netip.AddrPort {
	return netip.AddrPortFrom(publicdns.Lookup(publicdns.Google).V4[0], 53)
}

// cleanPathHops is the hop count from a lab probe to a public resolver
// site: cpe, segment, border, regional transit, site router.
const cleanPathHops = 5

func ladder(t *testing.T, s homelab.Scenario) ttlprobe.Result {
	t.Helper()
	lab := homelab.New(s)
	c := &ttlprobe.SimTTLClient{Net: lab.Net, Host: lab.Probe}
	res, err := ttlprobe.Ladder(c, googleV4(), publicdns.CanaryDomain, 10)
	if err != nil {
		t.Fatalf("ladder: %v", err)
	}
	return res
}

func TestLadderCleanPath(t *testing.T) {
	res := ladder(t, homelab.Clean)
	if res.FirstTTL != cleanPathHops {
		t.Errorf("clean path FirstTTL = %d, want %d", res.FirstTTL, cleanPathHops)
	}
	if got := ttlprobe.Classify(res, cleanPathHops); !strings.Contains(got, "no interception") {
		t.Errorf("classify = %q", got)
	}
}

func TestLadderCPEInterceptorAnswersAtHop1(t *testing.T) {
	res := ladder(t, homelab.XB6)
	if res.FirstTTL != ttlprobe.HopCPE {
		t.Errorf("XB6 FirstTTL = %d, want 1", res.FirstTTL)
	}
	if got := ttlprobe.Classify(res, cleanPathHops); !strings.Contains(got, "CPE") {
		t.Errorf("classify = %q", got)
	}
}

func TestLadderISPMiddleboxAnswersMidPath(t *testing.T) {
	res := ladder(t, homelab.ISPMiddlebox)
	if res.FirstTTL <= ttlprobe.HopCPE || res.FirstTTL >= cleanPathHops {
		t.Errorf("middlebox FirstTTL = %d, want between 2 and 4", res.FirstTTL)
	}
	if got := ttlprobe.Classify(res, cleanPathHops); !strings.Contains(got, "on-path interceptor") {
		t.Errorf("classify = %q", got)
	}
}

func TestLadderTransitInterceptor(t *testing.T) {
	res := ladder(t, homelab.BeyondISP)
	// The transit interceptor sits past the border: farther than the
	// ISP, nearer than (or at) the resolver site.
	if res.FirstTTL <= 2 || res.FirstTTL > cleanPathHops {
		t.Errorf("transit FirstTTL = %d", res.FirstTTL)
	}
}

func TestLadderOrdering(t *testing.T) {
	// The three interceptor locations are strictly ordered by hop count:
	// CPE < ISP < transit <= clean path. This is the extension's whole
	// point: TTLs give finer placement than the three-step technique.
	xb6 := ladder(t, homelab.XB6)
	mb := ladder(t, homelab.ISPMiddlebox)
	transit := ladder(t, homelab.BeyondISP)
	clean := ladder(t, homelab.Clean)
	if !(xb6.FirstTTL < mb.FirstTTL && mb.FirstTTL < transit.FirstTTL && transit.FirstTTL <= clean.FirstTTL) {
		t.Errorf("ordering: cpe=%d isp=%d transit=%d clean=%d",
			xb6.FirstTTL, mb.FirstTTL, transit.FirstTTL, clean.FirstTTL)
	}
}

func TestLadderNoAnswer(t *testing.T) {
	lab := homelab.New(homelab.Clean)
	c := &ttlprobe.SimTTLClient{Net: lab.Net, Host: lab.Probe}
	// An unrouted destination never answers at any TTL.
	dead := netip.MustParseAddrPort("203.0.113.77:53")
	res, err := ttlprobe.Ladder(c, dead, publicdns.CanaryDomain, 6)
	if !errors.Is(err, ttlprobe.ErrNoAnswer) {
		t.Fatalf("err = %v, want ErrNoAnswer", err)
	}
	if res.FirstTTL != 0 {
		t.Errorf("FirstTTL = %d, want 0", res.FirstTTL)
	}
	if got := ttlprobe.Classify(res, cleanPathHops); !strings.Contains(got, "no answer") {
		t.Errorf("classify = %q", got)
	}
}
