package publicdns

import (
	"net/netip"
	"strings"
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnswire"
)

func TestOperatorTableComplete(t *testing.T) {
	if len(All) != 4 {
		t.Fatalf("len(All) = %d", len(All))
	}
	for _, id := range All {
		c := Lookup(id)
		if len(c.V4) != 2 || len(c.V6) != 2 {
			t.Errorf("%s: want primary+secondary for both families", id)
		}
		if c.Location.Name == "" || c.ExampleResponse == "" {
			t.Errorf("%s: missing location query spec", id)
		}
		if !c.ValidateLocationAnswer(c.ExampleResponse) {
			t.Errorf("%s: own example response %q fails validation", id, c.ExampleResponse)
		}
	}
}

func TestTable1Shapes(t *testing.T) {
	// Table 1 of the paper, verbatim.
	want := map[ID]struct {
		kind QueryKind
		name dnswire.Name
	}{
		Cloudflare: {KindChaosTXT, "id.server"},
		Google:     {KindTXT, "o-o.myaddr.l.google.com"},
		Quad9:      {KindChaosTXT, "id.server"},
		OpenDNS:    {KindTXT, "debug.opendns.com"},
	}
	for id, w := range want {
		c := Lookup(id)
		if c.Location.Kind != w.kind || !c.Location.Name.Equal(w.name) {
			t.Errorf("%s location query = %s %s, want %s %s",
				id, c.Location.Kind, c.Location.Name, w.kind, w.name)
		}
	}
}

func TestLocationQueryMessages(t *testing.T) {
	m := Lookup(Cloudflare).Location.Message(7)
	if m.Question().Class != dnswire.ClassCHAOS {
		t.Error("Cloudflare location query not CHAOS")
	}
	m = Lookup(Google).Location.Message(8)
	if m.Question().Class != dnswire.ClassINET || !m.Header.RecursionDesired {
		t.Error("Google location query should be a plain recursive TXT query")
	}
}

func TestValidators(t *testing.T) {
	cases := []struct {
		id     ID
		answer string
		want   bool
	}{
		{Cloudflare, "IAD", true},
		{Cloudflare, "FRA", true},
		{Cloudflare, "NOTIMP", false}, // 6 letters, not an IATA code
		{Cloudflare, "routing.v2.pw", false},
		{Cloudflare, "iad", false},
		{Google, "172.253.226.35", true},
		{Google, "172.253.1.53", true},
		{Google, "62.183.62.69", false},
		{Google, "185.194.112.32", false},
		{Google, "not-an-ip", false},
		{Quad9, "res100.iad.rrdns.pch.net", true},
		{Quad9, "res205.fra.rrdns.pch.net", true},
		{Quad9, "unbound 1.9.0", false},
		{OpenDNS, "server m84.iad", true},
		{OpenDNS, "server m2.sin", true},
		{OpenDNS, "dnsmasq-2.85", false},
	}
	for _, c := range cases {
		if got := Lookup(c.id).ValidateLocationAnswer(c.answer); got != c.want {
			t.Errorf("%s validate(%q) = %t, want %t", c.id, c.answer, got, c.want)
		}
	}
}

func TestByAddr(t *testing.T) {
	c, ok := ByAddr(netip.MustParseAddr("9.9.9.9"))
	if !ok || c.ID != Quad9 {
		t.Errorf("ByAddr(9.9.9.9) = %v,%t", c, ok)
	}
	c, ok = ByAddr(netip.MustParseAddr("2606:4700:4700::1001"))
	if !ok || c.ID != Cloudflare {
		t.Errorf("ByAddr(cf v6 secondary) = %v,%t", c, ok)
	}
	if _, ok := ByAddr(netip.MustParseAddr("192.0.2.1")); ok {
		t.Error("ByAddr matched a non-operator address")
	}
}

func TestSitesCoverRegionsWithDistinctEgress(t *testing.T) {
	for _, id := range All {
		sites := Sites(id)
		if len(sites) != len(Regions) {
			t.Fatalf("%s has %d sites", id, len(sites))
		}
		c := Lookup(id)
		seen := map[netip.Addr]bool{}
		for _, s := range sites {
			if seen[s.EgressV4] || seen[s.EgressV6] {
				t.Errorf("%s: duplicate egress at %s", id, s.City)
			}
			seen[s.EgressV4], seen[s.EgressV6] = true, true
			if !c.InEgress(s.EgressV4) || !c.InEgress(s.EgressV6) {
				t.Errorf("%s %s: egress outside operator prefix", id, s.City)
			}
			if !s.EgressPrefixV4().Contains(s.EgressV4) || !s.EgressPrefixV6().Contains(s.EgressV6) {
				t.Errorf("%s %s: egress prefix doesn't contain egress", id, s.City)
			}
		}
	}
}

func TestSitePersonasMatchExpectedFormats(t *testing.T) {
	for _, id := range All {
		c := Lookup(id)
		for _, s := range Sites(id) {
			_, res := s.Build(netip.MustParseAddr("198.41.0.4"))
			// The site's own identity answer must validate as standard for
			// CHAOS-based operators.
			switch id {
			case Cloudflare, Quad9:
				if !c.ValidateLocationAnswer(res.Persona.Identity) {
					t.Errorf("%s %s identity %q not standard", id, s.City, res.Persona.Identity)
				}
			}
			if id == Quad9 && res.Persona.Version == "" {
				t.Errorf("Quad9 %s must answer version.bind", s.City)
			}
			if id != Quad9 && res.Persona.Version != "" {
				t.Errorf("%s %s must not answer version.bind", id, s.City)
			}
		}
	}
}

func TestSiteHooksSynthesizeAnswers(t *testing.T) {
	gSite := Sites(Google)[0]
	_, res := gSite.Build(netip.MustParseAddr("198.41.0.4"))
	q := Lookup(Google).Location.Message(9)
	resp := res.Hook(q, netip.MustParseAddrPort("96.120.0.10:40000"))
	if resp == nil {
		t.Fatal("google hook did not answer")
	}
	s, _ := resp.FirstTXT()
	if !Lookup(Google).ValidateLocationAnswer(s) {
		t.Errorf("google myaddr answer %q not standard", s)
	}
	// v6 client gets a v6 egress.
	resp = res.Hook(q, netip.MustParseAddrPort("[2001:db8::1]:40000"))
	s, _ = resp.FirstTXT()
	if !strings.Contains(s, ":") {
		t.Errorf("v6 client got %q, want v6 egress", s)
	}

	oSite := Sites(OpenDNS)[1]
	_, ores := oSite.Build(netip.MustParseAddr("198.41.0.4"))
	oq := Lookup(OpenDNS).Location.Message(10)
	resp = ores.Hook(oq, netip.MustParseAddrPort("96.120.0.10:40000"))
	if resp == nil {
		t.Fatal("opendns hook did not answer")
	}
	s, _ = resp.FirstTXT()
	if !Lookup(OpenDNS).ValidateLocationAnswer(s) {
		t.Errorf("opendns debug answer %q not standard", s)
	}
	if !strings.Contains(s, ".fra") {
		t.Errorf("site 1 answer %q, want .fra (EU site)", s)
	}
	// Hooks ignore unrelated names.
	other := dnswire.NewQuery(11, "example.com", dnswire.TypeTXT, dnswire.ClassINET)
	if ores.Hook(other, netip.MustParseAddrPort("96.120.0.10:1")) != nil {
		t.Error("opendns hook answered unrelated query")
	}
}

func TestRegionMapping(t *testing.T) {
	cases := map[string]Region{
		"US": RegionNA, "CA": RegionNA, "DE": RegionEU, "FR": RegionEU,
		"JP": RegionAS, "AU": RegionOC, "BR": RegionSA, "ZA": RegionAF,
		"??": RegionEU,
	}
	for cc, want := range cases {
		if got := RegionForCountry(cc); got != want {
			t.Errorf("RegionForCountry(%s) = %s, want %s", cc, got, want)
		}
	}
	for _, r := range Regions {
		if CityOf(r) == "" {
			t.Errorf("region %s has no city", r)
		}
	}
}

func TestSupportZones(t *testing.T) {
	// whoami echoes v4 sources into A records only.
	z := AkamaiZone()
	res, rrs, _ := z.Lookup(
		dnswire.Question{Name: WhoamiDomain, Type: dnswire.TypeA, Class: dnswire.ClassINET},
		netip.MustParseAddrPort("172.253.1.53:999"))
	if res != 0 /* LookupAnswer */ || len(rrs) != 1 {
		t.Fatalf("whoami lookup: res=%v rrs=%v", res, rrs)
	}
	if rrs[0].Data.(dnswire.ARData).Addr != netip.MustParseAddr("172.253.1.53") {
		t.Errorf("whoami echoed %v", rrs[0].Data)
	}

	// Google auth echoes any source into TXT.
	gz := GoogleAuthZone()
	_, rrs, _ = gz.Lookup(
		dnswire.Question{Name: "o-o.myaddr.l.google.com", Type: dnswire.TypeTXT, Class: dnswire.ClassINET},
		netip.MustParseAddrPort("96.121.0.53:999"))
	if len(rrs) != 1 || rrs[0].Data.(dnswire.TXTRData).Joined() != "96.121.0.53" {
		t.Errorf("google auth echo = %v", rrs)
	}

	// debug.opendns.com does not exist authoritatively.
	oz := OpenDNSAuthZone()
	res, _, _ = oz.Lookup(
		dnswire.Question{Name: "debug.opendns.com", Type: dnswire.TypeTXT, Class: dnswire.ClassINET},
		netip.MustParseAddrPort("96.121.0.53:999"))
	if res != 2 /* LookupNXDomain */ {
		t.Errorf("debug.opendns.com at auth: res=%v, want NXDomain", res)
	}

	// Canary zone resolves.
	cz := CanaryZone()
	_, rrs, _ = cz.Lookup(
		dnswire.Question{Name: CanaryDomain, Type: dnswire.TypeA, Class: dnswire.ClassINET},
		netip.MustParseAddrPort("96.121.0.53:999"))
	if len(rrs) != 1 || rrs[0].Data.(dnswire.ARData).Addr != CanaryAnswer {
		t.Errorf("canary = %v", rrs)
	}
}

func TestServicePrefixesCoverServiceAddrs(t *testing.T) {
	for _, id := range All {
		c := Lookup(id)
		for _, a := range append(append([]netip.Addr{}, c.V4...), c.V6...) {
			covered := false
			for _, p := range c.ServicePrefixes {
				if p.Contains(a) {
					covered = true
				}
			}
			if !covered {
				t.Errorf("%s: service address %s not covered by any service prefix", id, a)
			}
		}
		// Service and egress space must not overlap: replies from egress
		// addresses have to route distinctly from anycast queries.
		for _, p := range c.ServicePrefixes {
			if p.Overlaps(c.EgressPrefixV4) || p.Overlaps(c.EgressPrefixV6) {
				t.Errorf("%s: service prefix %s overlaps egress space", id, p)
			}
		}
	}
}
