package publicdns

import (
	"net/netip"

	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// WhoamiDomain is the name the transparency check resolves (§4.1.2): its
// authoritative server answers with the address of whoever asked — so
// the client learns which resolver's egress really resolved the query.
const WhoamiDomain = dnswire.Name("whoami.akamai.com")

// CanaryDomain is the "generic domain we control" (§3.3) that bogon
// queries ask for.
const CanaryDomain = dnswire.Name("canary.dnsloc.com")

// CanaryAnswer is the fixed A record the canary domain resolves to.
var CanaryAnswer = netip.MustParseAddr("45.33.7.7")

// AkamaiZone builds the akamai.com zone with the dynamic whoami name.
func AkamaiZone() *dnsserver.Zone {
	z := dnsserver.NewZone("akamai.com")
	z.AddAddr("akamai.com", 300, netip.MustParseAddr("45.33.1.10"))
	z.SetDynamic(WhoamiDomain, func(q dnswire.Question, src netip.AddrPort) []dnswire.Record {
		a := src.Addr()
		switch {
		case q.Type == dnswire.TypeA && a.Is4():
			return []dnswire.Record{{
				Name: q.Name, Class: dnswire.ClassINET, TTL: 0,
				Data: dnswire.ARData{Addr: a},
			}}
		case q.Type == dnswire.TypeAAAA && a.Is6() && !a.Is4In6():
			return []dnswire.Record{{
				Name: q.Name, Class: dnswire.ClassINET, TTL: 0,
				Data: dnswire.AAAARData{Addr: a},
			}}
		default:
			return nil
		}
	})
	return z
}

// GoogleAuthZone builds the google.com zone including the dynamic
// o-o.myaddr.l.google.com TXT echo. Alternate resolvers that really
// recurse will reach this zone and have their own egress echoed back —
// which is exactly how intercepted Google location queries end up with
// non-Google addresses in them (Table 2, probes 11992 and 21823).
func GoogleAuthZone() *dnsserver.Zone {
	z := dnsserver.NewZone("google.com")
	z.AddAddr("google.com", 300, netip.MustParseAddr("142.250.72.14"))
	z.AddAddr("www.google.com", 300, netip.MustParseAddr("142.250.72.4"))
	z.SetDynamic("o-o.myaddr.l.google.com", func(q dnswire.Question, src netip.AddrPort) []dnswire.Record {
		if q.Type != dnswire.TypeTXT {
			return nil
		}
		return []dnswire.Record{{
			Name: q.Name, Class: dnswire.ClassINET, TTL: 0,
			Data: dnswire.TXTRData{Strings: []string{src.Addr().String()}},
		}}
	})
	return z
}

// OpenDNSAuthZone builds the opendns.com zone. The debug.opendns.com
// name deliberately does not exist in the authoritative zone — only
// OpenDNS's own resolvers synthesize it — so an alternate resolver
// recursing for it gets NXDOMAIN, a non-standard answer.
func OpenDNSAuthZone() *dnsserver.Zone {
	z := dnsserver.NewZone("opendns.com")
	z.AddAddr("opendns.com", 300, netip.MustParseAddr("146.112.62.105"))
	return z
}

// CanaryZone builds the measurement domain's zone.
func CanaryZone() *dnsserver.Zone {
	z := dnsserver.NewZone("dnsloc.com")
	z.AddAddr(CanaryDomain, 300, CanaryAnswer)
	return z
}
