package publicdns

import (
	"fmt"
	"net/netip"

	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// This file is the adversary's knowledge of the operators it
// impersonates (dnsserver.Adversary's Genuine/Forge callbacks are built
// from it), plus the out-of-band identity the CERTainty-style oracle
// compares against. dnsserver cannot import this package (sites.go
// already imports dnsserver), so the knowledge flows in as callbacks.

// SiteFor returns the operator's anycast site serving a region — the
// site whose answers a client in that region genuinely sees.
func SiteFor(id ID, r Region) Site {
	for i, rr := range Regions {
		if rr == r {
			c := Lookup(id)
			return Site{
				Operator: id,
				Region:   r,
				City:     regionCity[r],
				Index:    i,
				EgressV4: egressV4(c, i),
				EgressV6: egressV6(c, i),
			}
		}
	}
	// Unknown region: the EU site, the platform's center of mass.
	return SiteFor(id, RegionEU)
}

// GenuineChaos returns the CHAOS debugging answer the operator owning
// target would give a client in region r: a TXT string, or (when the
// string is empty) the error rcode the real site answers with. ok is
// false when target is not a public resolver service address — the
// adversary has nothing to replay and must fall back to honesty.
func GenuineChaos(target netip.Addr, name dnswire.Name, r Region) (txt string, rc dnswire.RCode, ok bool) {
	c, known := ByAddr(target)
	if !known {
		return "", 0, false
	}
	p := SiteFor(c.ID, r).persona()
	switch {
	case dnsserver.IsVersionQuery(name):
		return p.Version, dnswire.RCodeNotImplemented, true
	case dnsserver.IsIdentityQuery(name):
		return p.Identity, dnswire.RCodeNotImplemented, true
	default:
		// Unknown CHAOS debugging name: every operator answers NOTIMP.
		return "", dnswire.RCodeNotImplemented, true
	}
}

// ForgeChaos fabricates a format-valid persona string for the operator
// owning target, using the adversary's deterministic draw. ok is false
// when forging would be self-defeating — the real target answers the
// query with an error, so the genuine replay is the better lie.
func ForgeChaos(target netip.Addr, name dnswire.Name, draw uint64) (string, bool) {
	c, known := ByAddr(target)
	if !known {
		return "", false
	}
	switch {
	case dnsserver.IsIdentityQuery(name):
		switch c.ID {
		case Cloudflare:
			// A plausible three-letter airport code (passes iataRe).
			return forgeIATA(draw), true
		case Quad9:
			// A plausible PCH backend name (passes quad9Re).
			city := regionCity[Regions[int(draw%uint64(len(Regions)))]]
			return fmt.Sprintf("res%d.%s.rrdns.pch.net", 100+int((draw>>8)%900), city), true
		}
	case dnsserver.IsVersionQuery(name):
		if c.ID == Quad9 {
			// Quad9 is the one operator that answers version.bind; vary
			// the patch level so the string still groups as Q9-*.
			return fmt.Sprintf("Q9-P-7.%d", int(draw%10)), true
		}
	}
	return "", false
}

// forgeIATA builds a three-uppercase-letter code from a draw.
func forgeIATA(draw uint64) string {
	const letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	return string([]byte{
		letters[draw%26],
		letters[(draw/26)%26],
		letters[(draw/676)%26],
	})
}

// IdentityOverTLS returns the identity the operator's regional site
// presents over an authenticated out-of-band channel — what a DoT
// id.server query against a verified certificate returns. ok is false
// for operators that expose no identity that way (Google and OpenDNS
// answer CHAOS debugging queries with NOTIMP even over TLS), in which
// case the certificate-consistency oracle has nothing to compare.
func IdentityOverTLS(id ID, r Region) (string, bool) {
	p := SiteFor(id, r).persona()
	return p.Identity, p.Identity != ""
}
