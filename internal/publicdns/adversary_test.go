package publicdns

import (
	"net/netip"
	"regexp"
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnswire"
)

func TestSiteFor(t *testing.T) {
	for _, id := range []ID{Cloudflare, Google, Quad9, OpenDNS} {
		for i, r := range Regions {
			s := SiteFor(id, r)
			if s.Operator != id || s.Region != r || s.Index != i {
				t.Errorf("SiteFor(%v, %v) = %+v", id, r, s)
			}
			if s.City == "" {
				t.Errorf("SiteFor(%v, %v) has no city", id, r)
			}
		}
	}
	// An unknown region resolves to the EU site rather than panicking.
	if s := SiteFor(Cloudflare, Region("atlantis")); s.Region != RegionEU {
		t.Errorf("unknown region resolved to %v, want %v", s.Region, RegionEU)
	}
}

func TestGenuineChaos(t *testing.T) {
	if _, _, ok := GenuineChaos(netip.MustParseAddr("198.51.100.1"), "id.server", RegionNA); ok {
		t.Error("unknown target claimed a genuine answer")
	}

	cf := Lookup(Cloudflare).V4[0]
	txt, _, ok := GenuineChaos(cf, "id.server", RegionNA)
	if !ok || txt != SiteFor(Cloudflare, RegionNA).persona().Identity {
		t.Errorf("cloudflare id.server = (%q, %v), want the NA site's identity", txt, ok)
	}

	// Google answers every CHAOS debugging query NOTIMP: empty TXT, the
	// error rcode, still known.
	gg := Lookup(Google).V4[0]
	txt, rc, ok := GenuineChaos(gg, "version.bind", RegionNA)
	if !ok || txt != "" || rc != dnswire.RCodeNotImplemented {
		t.Errorf("google version.bind = (%q, %v, %v), want NOTIMP error", txt, rc, ok)
	}

	// A debugging name nobody implements is NOTIMP for everyone.
	txt, rc, ok = GenuineChaos(cf, "hostname.bind", RegionEU)
	if !ok {
		t.Error("known target, unknown debug name: not ok")
	}
	if txt != "" && rc != dnswire.RCodeNotImplemented {
		t.Errorf("hostname.bind = (%q, %v)", txt, rc)
	}
}

// iataRe and quad9Re are the package's own answer-shape validators —
// forgeries exist to defeat exactly those, so they are the right bar.
var q9verRe = regexp.MustCompile(`^Q9-P-7\.\d$`)

// TestForgeChaos: forgeries must be format-valid for the operator they
// imitate (they exist to defeat shape validation), and must be declined
// exactly where the genuine answer is an error — forging a string the
// real target would never say is self-defeating.
func TestForgeChaos(t *testing.T) {
	cf := Lookup(Cloudflare).V4[0]
	q9 := Lookup(Quad9).V4[0]
	gg := Lookup(Google).V4[0]

	for draw := uint64(0); draw < 64; draw += 7 {
		if s, ok := ForgeChaos(cf, "id.server", draw); !ok || !iataRe.MatchString(s) {
			t.Errorf("cloudflare forgery (%q, %v) is not an IATA code", s, ok)
		}
		if s, ok := ForgeChaos(q9, "id.server", draw); !ok || !quad9Re.MatchString(s) {
			t.Errorf("quad9 identity forgery (%q, %v) is not a PCH backend name", s, ok)
		}
		if s, ok := ForgeChaos(q9, "version.bind", draw); !ok || !q9verRe.MatchString(s) {
			t.Errorf("quad9 version forgery (%q, %v) does not group as Q9-*", s, ok)
		}
	}

	declined := []struct {
		name   string
		target netip.Addr
		query  dnswire.Name
	}{
		{"google identity (genuinely NOTIMP)", gg, "id.server"},
		{"cloudflare version (genuinely NOTIMP)", cf, "version.bind"},
		{"unknown target", netip.MustParseAddr("198.51.100.1"), "id.server"},
		{"non-debug name", q9, "example.com"},
	}
	for _, tc := range declined {
		if s, ok := ForgeChaos(tc.target, tc.query, 1); ok {
			t.Errorf("%s: forged %q, want declined", tc.name, s)
		}
	}

	// Distinct draws reach distinct forgeries — what the drift signal
	// feeds on.
	a, _ := ForgeChaos(cf, "id.server", 1)
	b, _ := ForgeChaos(cf, "id.server", 1<<40)
	if a == b {
		t.Errorf("draws 1 and 1<<40 forged the same identity %q", a)
	}
}

func TestForgeIATA(t *testing.T) {
	seen := map[string]bool{}
	for draw := uint64(0); draw < 26*26*26; draw += 131 {
		s := forgeIATA(draw)
		if !iataRe.MatchString(s) {
			t.Fatalf("forgeIATA(%d) = %q", draw, s)
		}
		seen[s] = true
	}
	if len(seen) < 50 {
		t.Errorf("forgeIATA covered only %d codes over the sweep", len(seen))
	}
	if forgeIATA(7) != forgeIATA(7) {
		t.Error("forgeIATA is not deterministic")
	}
}

// TestIdentityOverTLS: the authenticated channel exposes an identity
// exactly for the operators whose persona answers id.server — and that
// identity always matches what the honest UDP path serves, which is the
// invariant the certificate-consistency oracle rests on.
func TestIdentityOverTLS(t *testing.T) {
	for _, r := range Regions {
		for _, id := range []ID{Cloudflare, Quad9} {
			got, ok := IdentityOverTLS(id, r)
			if !ok || got == "" {
				t.Errorf("IdentityOverTLS(%v, %v) = (%q, %v), want an identity", id, r, got, ok)
			}
			if want := SiteFor(id, r).persona().Identity; got != want {
				t.Errorf("IdentityOverTLS(%v, %v) = %q, UDP persona says %q", id, r, got, want)
			}
		}
		for _, id := range []ID{Google, OpenDNS} {
			if got, ok := IdentityOverTLS(id, r); ok {
				t.Errorf("IdentityOverTLS(%v, %v) = %q, want none", id, r, got)
			}
		}
	}
}
