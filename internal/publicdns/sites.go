package publicdns

import (
	"fmt"
	"net/netip"
	"strings"

	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/dotsim"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// Region is a coarse geographic region used to pick the anycast site a
// client reaches.
type Region string

// Regions.
const (
	RegionNA Region = "NA"
	RegionEU Region = "EU"
	RegionAS Region = "AS"
	RegionOC Region = "OC"
	RegionSA Region = "SA"
	RegionAF Region = "AF"
)

// Regions lists all regions in deterministic order.
var Regions = []Region{RegionNA, RegionEU, RegionAS, RegionOC, RegionSA, RegionAF}

// regionCity maps each region to the airport code of its anycast site.
var regionCity = map[Region]string{
	RegionNA: "iad",
	RegionEU: "fra",
	RegionAS: "sin",
	RegionOC: "syd",
	RegionSA: "gru",
	RegionAF: "jnb",
}

// CityOf returns the airport code of a region's site.
func CityOf(r Region) string { return regionCity[r] }

// RegionForCountry maps a country code to its region. Unknown countries
// land in Europe, the platform's center of mass.
func RegionForCountry(cc string) Region {
	switch cc {
	case "US", "CA", "MX":
		return RegionNA
	case "JP", "IN", "ID", "TR", "RU", "CN", "KR", "SG":
		return RegionAS
	case "AU", "NZ":
		return RegionOC
	case "BR", "AR", "CL":
		return RegionSA
	case "ZA", "NG", "KE", "EG":
		return RegionAF
	default:
		return RegionEU
	}
}

// Site is one anycast point of presence of one operator.
type Site struct {
	Operator ID
	Region   Region
	City     string // lowercase airport code
	Index    int

	EgressV4 netip.Addr
	EgressV6 netip.Addr
}

// Sites enumerates an operator's deployment: one site per region.
func Sites(id ID) []Site {
	c := Lookup(id)
	out := make([]Site, 0, len(Regions))
	for i, r := range Regions {
		out = append(out, Site{
			Operator: id,
			Region:   r,
			City:     regionCity[r],
			Index:    i,
			EgressV4: egressV4(c, i),
			EgressV6: egressV6(c, i),
		})
	}
	return out
}

// egressV4 derives the site's v4 egress address: host .53 of the i-th
// /24 inside the operator's egress prefix.
func egressV4(c *Config, i int) netip.Addr {
	base := c.EgressPrefixV4.Addr().As4()
	base[2] += byte(i + 1) // stays inside any prefix of /21 or wider
	base[3] = 53
	return netip.AddrFrom4(base)
}

// egressV6 derives the site's v6 egress address.
func egressV6(c *Config, i int) netip.Addr {
	base := c.EgressPrefixV6.Addr().As16()
	base[7] += byte(i + 1)
	base[15] = 53
	return netip.AddrFrom16(base)
}

// EgressPrefixV4 returns the /24 the site's v4 egress lives in, for
// routing back to the site.
func (s Site) EgressPrefixV4() netip.Prefix {
	return netip.PrefixFrom(s.EgressV4, 24).Masked()
}

// EgressPrefixV6 returns the /64 the site's v6 egress lives in.
func (s Site) EgressPrefixV6() netip.Prefix {
	return netip.PrefixFrom(s.EgressV6, 64).Masked()
}

// persona builds the site's CHAOS persona: the answers Table 1 and §3.2
// document. Only Quad9 implements version.bind.
func (s Site) persona() dnsserver.ChaosPersona {
	switch s.Operator {
	case Cloudflare:
		return dnsserver.ChaosPersona{Identity: strings.ToUpper(s.City)}
	case Quad9:
		return dnsserver.ChaosPersona{
			Identity: fmt.Sprintf("res%d.%s.rrdns.pch.net", 100+s.Index, s.City),
			Version:  "Q9-P-7.5",
		}
	default:
		return dnsserver.ChaosPersona{}
	}
}

// hook builds the front-door special cases: Google's myaddr answer and
// OpenDNS's debug answer are synthesized by the resolver itself.
func (s Site) hook() func(*dnswire.Message, netip.AddrPort) *dnswire.Message {
	switch s.Operator {
	case Google:
		return func(q *dnswire.Message, src netip.AddrPort) *dnswire.Message {
			question := q.Question()
			if !question.Name.Equal("o-o.myaddr.l.google.com") || question.Type != dnswire.TypeTXT {
				return nil
			}
			egress := s.EgressV4
			if src.Addr().Is6() && !src.Addr().Is4In6() {
				egress = s.EgressV6
			}
			resp := dnswire.NewTXTResponse(q, egress.String())
			// The real o-o.myaddr echoes a client-subnet option back as a
			// second TXT string (RFC 7871 diagnostics).
			if ecs, ok := q.ClientSubnet(); ok {
				resp.Answers = append(resp.Answers, dnswire.Record{
					Name: question.Name, Class: question.Class, TTL: 0,
					Data: dnswire.TXTRData{Strings: []string{"edns0-client-subnet " + ecs.String()}},
				})
			}
			return resp
		}
	case OpenDNS:
		return func(q *dnswire.Message, src netip.AddrPort) *dnswire.Message {
			question := q.Question()
			if !question.Name.Equal("debug.opendns.com") || question.Type != dnswire.TypeTXT {
				return nil
			}
			resp := dnswire.NewTXTResponse(q, fmt.Sprintf("server m%d.%s", 80+s.Index, s.City))
			resp.Answers = append(resp.Answers, dnswire.Record{
				Name: question.Name, Class: question.Class, TTL: 0,
				Data: dnswire.TXTRData{Strings: []string{"flags 20 0 2F"}},
			})
			return resp
		}
	default:
		return nil
	}
}

// Build creates the site's router and resolver service, wired but not
// yet attached to a topology: the caller routes the operator's service
// prefixes (anycast) and the site's egress prefixes to the returned
// router, and gives it a default route.
func (s Site) Build(rootHints ...netip.Addr) (*netsim.Router, *dnsserver.RecursiveResolver) {
	c := Lookup(s.Operator)
	name := fmt.Sprintf("%s-%s", c.ID, s.City)
	router := netsim.NewRouter(name)
	for _, a := range c.V4 {
		router.AddAddr(a)
	}
	for _, a := range c.V6 {
		router.AddAddr(a)
	}
	router.AddAddr(s.EgressV4)
	router.AddAddr(s.EgressV6)

	res := dnsserver.NewRecursiveResolver(s.EgressV4, rootHints...)
	res.Egress6 = s.EgressV6
	res.Persona = s.persona()
	res.Hook = s.hook()
	router.Bind(53, res)

	// The operator terminates DoT (853) and DoH (443) itself, with a
	// certificate that authenticates whichever anycast address the
	// client dialed — the real deployments all serve both.
	ep := &dnsserver.StreamEndpoint{
		Cert:        dotsim.Certificate{Trusted: true},
		SelfSubject: true,
		Inner:       res,
	}
	router.Bind(netsim.PortDoT, ep)
	router.Bind(netsim.PortDoH, ep)
	return router, res
}
