// Package publicdns models the four public resolver operators the paper
// probes — Cloudflare DNS, Google DNS, Quad9, and OpenDNS — including
// their anycast deployments, their location-query behaviours (Table 1),
// their service and egress addressing, and the supporting authoritative
// zones (whoami.akamai.com and o-o.myaddr.l.google.com style echo
// zones). It also provides the expected-response validators the detector
// uses to decide whether a location-query answer is "standard".
package publicdns

import (
	"fmt"
	"net/netip"
	"regexp"
	"strings"

	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// ID identifies a public resolver operator.
type ID string

// The four operators of the study.
const (
	Cloudflare ID = "cloudflare"
	Google     ID = "google"
	Quad9      ID = "quad9"
	OpenDNS    ID = "opendns"
)

// All lists the operators in the paper's presentation order.
var All = []ID{Cloudflare, Google, Quad9, OpenDNS}

// QueryKind distinguishes the two wire shapes of location queries.
type QueryKind string

// Location query kinds, as printed in Table 1's "Type" column.
const (
	KindChaosTXT QueryKind = "CHAOS TXT"
	KindTXT      QueryKind = "TXT"
)

// LocationQuery is the debugging query an operator implements for
// revealing which server answered (Table 1).
type LocationQuery struct {
	Kind QueryKind
	Name dnswire.Name
}

// Message builds the wire query with the given ID.
func (lq LocationQuery) Message(id uint16) *dnswire.Message {
	if lq.Kind == KindChaosTXT {
		return dnswire.NewChaosTXTQuery(id, lq.Name)
	}
	return dnswire.NewQuery(id, lq.Name, dnswire.TypeTXT, dnswire.ClassINET)
}

// Config is the static description of one operator.
type Config struct {
	ID          ID
	DisplayName string

	// V4 and V6 are the anycast service addresses, primary first.
	V4 []netip.Addr
	V6 []netip.Addr

	// ServicePrefixes cover the anycast service addresses, for routing.
	ServicePrefixes []netip.Prefix

	// EgressPrefixV4/V6 contain every egress address the operator's
	// recursive backends use; the transparency check (§4.1.2) tests
	// whether a whoami answer falls inside them.
	EgressPrefixV4 netip.Prefix
	EgressPrefixV6 netip.Prefix

	// Location is the operator's location query.
	Location LocationQuery

	// ExampleResponse is the sample shown in Table 1.
	ExampleResponse string

	// AnswersVersionBind: only Quad9 implements version.bind (§3.2).
	AnswersVersionBind bool
}

// configs holds the operator table. Service addresses are the real,
// well-known ones; egress prefixes are representative of each operator's
// published egress ranges.
var configs = map[ID]*Config{
	Cloudflare: {
		ID:          Cloudflare,
		DisplayName: "Cloudflare DNS",
		V4:          addrs("1.1.1.1", "1.0.0.1"),
		V6:          addrs("2606:4700:4700::1111", "2606:4700:4700::1001"),
		ServicePrefixes: prefixes(
			"1.1.1.0/24", "1.0.0.0/24", "2606:4700:4700::/48",
		),
		EgressPrefixV4:  netip.MustParsePrefix("172.68.0.0/16"),
		EgressPrefixV6:  netip.MustParsePrefix("2400:cb00::/32"),
		Location:        LocationQuery{Kind: KindChaosTXT, Name: "id.server"},
		ExampleResponse: "IAD",
	},
	Google: {
		ID:          Google,
		DisplayName: "Google DNS",
		V4:          addrs("8.8.8.8", "8.8.4.4"),
		V6:          addrs("2001:4860:4860::8888", "2001:4860:4860::8844"),
		ServicePrefixes: prefixes(
			"8.8.8.0/24", "8.8.4.0/24", "2001:4860:4860::/48",
		),
		EgressPrefixV4:  netip.MustParsePrefix("172.253.0.0/16"),
		EgressPrefixV6:  netip.MustParsePrefix("2001:4860::/36"),
		Location:        LocationQuery{Kind: KindTXT, Name: "o-o.myaddr.l.google.com"},
		ExampleResponse: "172.253.226.35",
	},
	Quad9: {
		ID:          Quad9,
		DisplayName: "Quad9",
		V4:          addrs("9.9.9.9", "149.112.112.112"),
		V6:          addrs("2620:fe::fe", "2620:fe::9"),
		ServicePrefixes: prefixes(
			"9.9.9.0/24", "149.112.112.0/24", "2620:fe::/48",
		),
		EgressPrefixV4:     netip.MustParsePrefix("204.61.216.0/21"),
		EgressPrefixV6:     netip.MustParsePrefix("2620:171::/44"),
		Location:           LocationQuery{Kind: KindChaosTXT, Name: "id.server"},
		ExampleResponse:    "res100.iad.rrdns.pch.net",
		AnswersVersionBind: true,
	},
	OpenDNS: {
		ID:          OpenDNS,
		DisplayName: "OpenDNS",
		V4:          addrs("208.67.222.222", "208.67.220.220"),
		V6:          addrs("2620:119:35::35", "2620:119:53::53"),
		ServicePrefixes: prefixes(
			// The v6 prefix must cover both :35::35 and :53::53.
			"208.67.222.0/24", "208.67.220.0/24", "2620:119::/40",
		),
		EgressPrefixV4:  netip.MustParsePrefix("146.112.0.0/16"),
		EgressPrefixV6:  netip.MustParsePrefix("2620:119:fc00::/40"),
		Location:        LocationQuery{Kind: KindTXT, Name: "debug.opendns.com"},
		ExampleResponse: "server m84.iad",
	},
}

// Lookup returns the operator config.
func Lookup(id ID) *Config {
	c, ok := configs[id]
	if !ok {
		panic(fmt.Sprintf("publicdns: unknown operator %q", id))
	}
	return c
}

// ByAddr finds the operator that owns a service address, if any.
func ByAddr(a netip.Addr) (*Config, bool) {
	for _, id := range All {
		c := configs[id]
		for _, s := range append(append([]netip.Addr{}, c.V4...), c.V6...) {
			if s == a {
				return c, true
			}
		}
	}
	return nil, false
}

// InEgress reports whether addr belongs to the operator's egress space.
func (c *Config) InEgress(addr netip.Addr) bool {
	return c.EgressPrefixV4.Contains(addr.Unmap()) || c.EgressPrefixV6.Contains(addr)
}

var (
	iataRe    = regexp.MustCompile(`^[A-Z]{3}$`)
	quad9Re   = regexp.MustCompile(`^res\d+\.[a-z]{3}\.rrdns\.pch\.net$`)
	openDNSRe = regexp.MustCompile(`^server m\d+\.[a-z]{3}$`)
)

// ValidateLocationAnswer decides whether a location-query answer is the
// operator's standard response (§3.1): each operator has a distinctive,
// globally consistent format, verified with the operators themselves.
// A response that fails validation means the query was answered by
// someone else — interception.
func (c *Config) ValidateLocationAnswer(answer string) bool {
	answer = strings.TrimSpace(answer)
	switch c.ID {
	case Cloudflare:
		return iataRe.MatchString(answer)
	case Google:
		a, err := netip.ParseAddr(answer)
		return err == nil && c.InEgress(a)
	case Quad9:
		return quad9Re.MatchString(answer)
	case OpenDNS:
		return openDNSRe.MatchString(answer)
	default:
		return false
	}
}

// addrs parses a list of addresses.
func addrs(ss ...string) []netip.Addr {
	out := make([]netip.Addr, len(ss))
	for i, s := range ss {
		out[i] = netip.MustParseAddr(s)
	}
	return out
}

// prefixes parses a list of prefixes.
func prefixes(ss ...string) []netip.Prefix {
	out := make([]netip.Prefix, len(ss))
	for i, s := range ss {
		out[i] = netip.MustParsePrefix(s)
	}
	return out
}
