// Package cpe models Customer Premises Equipment — the home routers the
// paper implicates in transparent DNS interception.
//
// A CPE device is a netsim.Router with NAT between its LAN and WAN, plus
// a DNS forwarder (dnsmasq-style) optionally bound to port 53. The
// interception mechanism is the one the paper's §5 case study documents
// on the Arris/Technicolor XB6: an RDK-B firewall DNAT rule that rewrites
// every LAN-originated port-53 packet to the CPE's own forwarder, which
// relays it to the ISP resolver. Because the rule lives in PREROUTING,
// it catches queries addressed to public resolvers *and* queries
// addressed to the CPE's own public IP — the asymmetry the localization
// technique exploits.
package cpe

import (
	"fmt"
	"net/netip"
	"time"

	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/dotsim"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// InterceptSpec describes which port-53 destinations a CPE diverts to
// its own forwarder. The zero value intercepts nothing.
type InterceptSpec struct {
	// AllV4 intercepts every IPv4 destination (minus ExceptV4).
	AllV4 bool
	// TargetsV4 intercepts only these IPv4 destinations (ignored when
	// AllV4 is set).
	TargetsV4 []netip.Addr
	// ExceptV4 exempts destinations from AllV4 — the "only one resolver
	// allowed" pattern of §4.1.1.
	ExceptV4 []netip.Addr
	// AllV6 and TargetsV6 are the IPv6 equivalents. The paper found v6
	// interception far rarer than v4 (Table 4), so most specs leave
	// these empty.
	AllV6     bool
	TargetsV6 []netip.Addr
	// Replicate forwards the original query too (query replication).
	Replicate bool
}

// Active reports whether the spec intercepts anything.
func (s InterceptSpec) Active() bool {
	return s.AllV4 || s.AllV6 || len(s.TargetsV4) > 0 || len(s.TargetsV6) > 0
}

// matchesV4 reports whether an IPv4 destination is intercepted.
func (s InterceptSpec) matchesV4(dst netip.Addr) bool {
	if s.AllV4 {
		for _, e := range s.ExceptV4 {
			if e == dst {
				return false
			}
		}
		return true
	}
	for _, t := range s.TargetsV4 {
		if t == dst {
			return true
		}
	}
	return false
}

// matchesV6 reports whether an IPv6 destination is intercepted.
func (s InterceptSpec) matchesV6(dst netip.Addr) bool {
	if s.AllV6 {
		return true
	}
	for _, t := range s.TargetsV6 {
		if t == dst {
			return true
		}
	}
	return false
}

// Config describes one CPE device.
type Config struct {
	// Name labels the device in traces.
	Name string

	// LANAddr/LANPrefix are the private side; WANAddr is the public side.
	LANAddr   netip.Addr
	LANPrefix netip.Prefix
	WANAddr   netip.Addr

	// LANAddr6/LANPrefix6/WANAddr6 enable IPv6. Homes route v6 globally
	// (no NAT), as deployed dual-stack residential networks do.
	LANAddr6   netip.Addr
	LANPrefix6 netip.Prefix
	WANAddr6   netip.Addr

	// Upstream is the forwarder's resolver — for a rented XB6, the ISP
	// resolver.
	Upstream netip.AddrPort

	// Persona is the forwarder's CHAOS fingerprint (Table 5 strings).
	Persona dnsserver.ChaosPersona

	// ForwardUnhandledChaos relays debugging queries the persona does
	// not answer upstream — the §6 misclassification configuration.
	ForwardUnhandledChaos bool

	// WANPort53Open leaves the forwarder reachable on the WAN address
	// even without interception (an "open forwarder" CPE).
	WANPort53Open bool

	// LANPort53Open serves DNS to the home (the DHCP-advertised
	// resolver). On by default in Build unless the CPE has no forwarder.
	DisableForwarder bool

	// Intercept is the DNAT interception behaviour.
	Intercept InterceptSpec

	// Encrypted is what the CPE does with LAN-originated encrypted DNS
	// (DoT/DoH): pass it, block it to force a downgrade, or terminate
	// the sessions at its own forwarder behind an untrusted certificate
	// — the three router behaviors the XDRI study observed.
	Encrypted dnsserver.EncryptedPolicy

	// Metrics, when non-nil, is installed on the built forwarder; the
	// study engine shares one set across every CPE in a world.
	Metrics *dnsserver.ForwarderMetrics

	// ChaosCache, when non-nil, is installed on the built forwarder so
	// persona answers are served from pre-packed bytes; the study engine
	// shares one cache across every CPE in a world.
	ChaosCache *dnsserver.PackedAnswerCache

	// Adversary, when non-nil, makes the forwarder evade CHAOS
	// fingerprinting on diverted flows (see dnsserver.Adversary). Direct
	// queries to the CPE itself keep the honest persona.
	Adversary *dnsserver.Adversary
}

// Device is a built CPE.
type Device struct {
	Config    Config
	Router    *netsim.Router
	Forwarder *dnsserver.Forwarder
}

// Build wires a CPE from its config.
func Build(cfg Config) *Device {
	r := netsim.NewRouter(cfg.Name, cfg.LANAddr, cfg.WANAddr)
	r.Delay = 500 * time.Microsecond // home uplink
	r.RouterID = cfg.LANAddr         // what home traceroutes show as hop 1
	if cfg.LANAddr6.IsValid() {
		r.AddAddr(cfg.LANAddr6)
	}
	if cfg.WANAddr6.IsValid() {
		r.AddAddr(cfg.WANAddr6)
	}

	nat := netsim.NewNAT()
	nat.MasqueradeV4 = cfg.WANAddr
	nat.LANPrefixes = []netip.Prefix{cfg.LANPrefix}
	if cfg.LANPrefix6.IsValid() {
		nat.LANPrefixes = append(nat.LANPrefixes, cfg.LANPrefix6)
	}
	r.NAT = nat

	d := &Device{Config: cfg, Router: r}

	if !cfg.DisableForwarder {
		fwd := dnsserver.NewForwarder(cfg.Persona, cfg.WANAddr, cfg.Upstream)
		fwd.ForwardUnhandledChaos = cfg.ForwardUnhandledChaos
		fwd.Metrics = cfg.Metrics
		fwd.ChaosCache = cfg.ChaosCache
		fwd.Adversary = cfg.Adversary
		d.Forwarder = fwd
		r.Bind(53, fwd)
		if !cfg.WANPort53Open {
			// The forwarder serves the LAN but the WAN-side port is
			// firewalled: queries to the public IP go unanswered...
			r.CloseOn(cfg.WANAddr, 53)
			if cfg.WANAddr6.IsValid() {
				r.CloseOn(cfg.WANAddr6, 53)
			}
			// ...unless the interception DNAT rule redirects them first,
			// which is exactly how an intercepting CPE betrays itself.
		}
	}

	d.installInterception()
	d.installEncrypted()
	return d
}

// encryptedDNS matches LAN-originated encrypted-DNS stream traffic.
func (d *Device) encryptedDNS(pkt netsim.Packet) bool {
	cfg := d.Config
	if pkt.Proto != netsim.TCP {
		return false
	}
	if p := pkt.Dst.Port(); p != netsim.PortDoT && p != netsim.PortDoH {
		return false
	}
	src := pkt.Src.Addr()
	return cfg.LANPrefix.Contains(src.Unmap()) ||
		(cfg.LANPrefix6.IsValid() && cfg.LANPrefix6.Contains(src))
}

// installEncrypted applies the CPE's encrypted-DNS policy. Block is an
// input-filter DROP (clients observe a timeout and, if opportunistic,
// downgrade to port 53 — where installInterception's rules apply).
// Terminate DNATs the stream to the CPE's own endpoint, which fronts
// the forwarder behind a certificate no client trusts.
func (d *Device) installEncrypted() {
	cfg := d.Config
	switch cfg.Encrypted {
	case dnsserver.EncBlock:
		d.Router.AddInputFilter(func(pkt netsim.Packet) (bool, string) {
			if d.encryptedDNS(pkt) {
				return true, "cpe blocks encrypted DNS"
			}
			return false, ""
		})
	case dnsserver.EncTerminate:
		if d.Forwarder == nil {
			return
		}
		ep := &dnsserver.StreamEndpoint{
			// Self-signed: names the CPE itself, trusted by no one.
			Cert:  dotsim.Certificate{Subject: cfg.WANAddr},
			Inner: d.Forwarder,
		}
		d.Router.BindOn(cfg.LANAddr, netsim.PortDoT, ep)
		d.Router.NAT.AddDNAT(netsim.DNATRule{
			Name: "enc-terminate-v4",
			Match: func(pkt netsim.Packet) bool {
				return d.encryptedDNS(pkt) && !pkt.IsIPv6()
			},
			To: netip.AddrPortFrom(cfg.LANAddr, netsim.PortDoT),
		})
		if cfg.LANAddr6.IsValid() {
			d.Router.BindOn(cfg.LANAddr6, netsim.PortDoT, ep)
			d.Router.NAT.AddDNAT(netsim.DNATRule{
				Name: "enc-terminate-v6",
				Match: func(pkt netsim.Packet) bool {
					return d.encryptedDNS(pkt) && pkt.IsIPv6()
				},
				To: netip.AddrPortFrom(cfg.LANAddr6, netsim.PortDoT),
			})
		}
	}
}

// installInterception adds the XDNS-style DNAT rules.
func (d *Device) installInterception() {
	spec := d.Config.Intercept
	if !spec.Active() || d.Config.DisableForwarder {
		return
	}
	cfg := d.Config
	lanSrc := func(src netip.Addr) bool {
		return cfg.LANPrefix.Contains(src.Unmap()) ||
			(cfg.LANPrefix6.IsValid() && cfg.LANPrefix6.Contains(src)) ||
			// Queries addressed to the CPE's own public IP arrive with a
			// LAN source too; DNAT must also catch queries a LAN host
			// sends directly to the WAN address.
			src == cfg.WANAddr || src == cfg.WANAddr6
	}
	if spec.AllV4 || len(spec.TargetsV4) > 0 {
		d.Router.NAT.AddDNAT(netsim.DNATRule{
			Name: "xdns-v4",
			Match: func(pkt netsim.Packet) bool {
				return pkt.Proto == netsim.UDP && pkt.Dst.Port() == 53 &&
					!pkt.IsIPv6() && lanSrc(pkt.Src.Addr()) &&
					spec.matchesV4(pkt.Dst.Addr())
			},
			To:        netip.AddrPortFrom(cfg.LANAddr, 53),
			Replicate: spec.Replicate,
		})
	}
	if (spec.AllV6 || len(spec.TargetsV6) > 0) && cfg.LANAddr6.IsValid() {
		d.Router.NAT.AddDNAT(netsim.DNATRule{
			Name: "xdns-v6",
			Match: func(pkt netsim.Packet) bool {
				return pkt.Proto == netsim.UDP && pkt.Dst.Port() == 53 &&
					pkt.IsIPv6() && lanSrc(pkt.Src.Addr()) &&
					spec.matchesV6(pkt.Dst.Addr())
			},
			To:        netip.AddrPortFrom(cfg.LANAddr6, 53),
			Replicate: spec.Replicate,
		})
	}
}

// SetUplink points the CPE's default route at the ISP access device.
func (d *Device) SetUplink(next netsim.Device) {
	d.Router.AddDefaultRoute(next)
}

// AttachHost creates a LAN host behind the CPE and wires routes both
// ways. hostIdx picks distinct LAN addresses for multiple hosts.
func (d *Device) AttachHost(name string, hostIdx int) *netsim.Host {
	a4 := d.Config.LANAddr.As4()
	a4[3] += byte(1 + hostIdx)
	hostV4 := netip.AddrFrom4(a4)

	var hostV6 netip.Addr
	if d.Config.LANAddr6.IsValid() {
		a6 := d.Config.LANAddr6.As16()
		a6[15] += byte(1 + hostIdx)
		hostV6 = netip.AddrFrom16(a6)
	}

	h := netsim.NewHost(name, hostV4, hostV6, d.Router)
	h.Delay = 200 * time.Microsecond // LAN hop
	d.Router.AddRoute(netip.PrefixFrom(hostV4, 32), h)
	if hostV6.IsValid() {
		d.Router.AddRoute(netip.PrefixFrom(hostV6, 128), h)
	}
	return h
}

// Presets for the models seen in the study.

// NewXB6 builds an Arris/Technicolor XB6 with the XDNS interception bug:
// all LAN port-53 traffic (v4) is DNATed to the CPE forwarder and on to
// the ISP resolver, with no user-visible indication (§5).
func NewXB6(name string, lan netip.Prefix, wan netip.Addr, upstream netip.AddrPort) Config {
	return Config{
		Name:      name,
		LANAddr:   firstHost(lan),
		LANPrefix: lan,
		WANAddr:   wan,
		Upstream:  upstream,
		// XDNS implements a version.bind response (§5).
		Persona:   dnsserver.ChaosPersona{Version: "dnsmasq-2.78"},
		Intercept: InterceptSpec{AllV4: true},
	}
}

// NewPlain builds a CPE that forwards faithfully and firewalls port 53
// on its WAN side — the common, well-behaved case.
func NewPlain(name string, lan netip.Prefix, wan netip.Addr, upstream netip.AddrPort) Config {
	return Config{
		Name:      name,
		LANAddr:   firstHost(lan),
		LANPrefix: lan,
		WANAddr:   wan,
		Upstream:  upstream,
		Persona:   dnsserver.PersonaDnsmasq,
	}
}

// NewOpenForwarder builds a non-intercepting CPE whose port 53 answers
// on the WAN address — the case Appendix A shows would confound an
// A-record-based test, and §6's misclassification risk when combined
// with ForwardUnhandledChaos.
func NewOpenForwarder(name string, lan netip.Prefix, wan netip.Addr, upstream netip.AddrPort) Config {
	cfg := NewPlain(name, lan, wan, upstream)
	cfg.WANPort53Open = true
	return cfg
}

// NewPiHole builds a deliberately-intercepting CPE running Pi-hole:
// the owner routes all DNS to their own filter (§4.2).
func NewPiHole(name string, lan netip.Prefix, wan netip.Addr, upstream netip.AddrPort) Config {
	cfg := NewPlain(name, lan, wan, upstream)
	cfg.Persona = dnsserver.PersonaPiHole
	cfg.Intercept = InterceptSpec{AllV4: true}
	return cfg
}

// firstHost returns the .1 (or ::1) address of a prefix.
func firstHost(p netip.Prefix) netip.Addr {
	if p.Addr().Is4() {
		a := p.Addr().As4()
		a[3] |= 1
		return netip.AddrFrom4(a)
	}
	a := p.Addr().As16()
	a[15] |= 1
	return netip.AddrFrom16(a)
}

// String describes the device briefly.
func (d *Device) String() string {
	mode := "plain"
	switch {
	case d.Config.Intercept.Active():
		mode = "intercepting"
	case d.Config.WANPort53Open:
		mode = "open-forwarder"
	}
	return fmt.Sprintf("cpe %s (%s, wan %s)", d.Config.Name, mode, d.Config.WANAddr)
}
