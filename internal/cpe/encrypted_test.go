package cpe

import (
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/dotsim"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// Encrypted-DNS policy tests: the CPE applying each EncryptedPolicy to
// LAN-originated DoT/DoH streams, exercised end-to-end from an attached
// host. No upstream is wired anywhere — the forwarder answers
// version.bind locally, which is all these paths need.

func versionBindWire(t *testing.T, id uint16) []byte {
	t.Helper()
	return dnswire.MustPack(dnswire.NewChaosTXTQuery(id, "version.bind"))
}

// TestEncryptedBlockDropsStreamsKeepsDo53: a blocking CPE times out
// encrypted streams from the LAN while the Do53 interception path keeps
// answering — the combination that forces opportunistic clients back
// into interceptable cleartext.
func TestEncryptedBlockDropsStreamsKeepsDo53(t *testing.T) {
	net := netsim.NewNetwork()
	cfg := baseConfig()
	cfg.Persona = dnsserver.PersonaDnsmasq
	cfg.Intercept = InterceptSpec{AllV4: true}
	cfg.Encrypted = dnsserver.EncBlock
	d := Build(cfg)
	host := d.AttachHost("h", 0)

	_, err := host.Exchange(net, ap("9.9.9.9:853"), netsim.PackStreamHello(netsim.ALPNDoT),
		netsim.ExchangeOptions{Proto: netsim.TCP})
	if err != netsim.ErrTimeout {
		t.Fatalf("DoT hello through blocking CPE = %v, want ErrTimeout", err)
	}
	resps, err := host.Exchange(net, ap("9.9.9.9:53"), versionBindWire(t, 1), netsim.ExchangeOptions{})
	if err != nil {
		t.Fatalf("Do53 through blocking CPE: %v", err)
	}
	if resps[0].Src != ap("9.9.9.9:53") {
		t.Errorf("Do53 response source = %s, want spoofed 9.9.9.9:53", resps[0].Src)
	}
}

// TestEncryptedTerminateServesSessionWithUntrustedCert: a terminating
// CPE DNATs the stream to its own endpoint, which completes the
// handshake behind a certificate no client trusts, answers in-session
// from the CPE's forwarder, and spoofs everything back from the address
// the client dialed.
func TestEncryptedTerminateServesSessionWithUntrustedCert(t *testing.T) {
	net := netsim.NewNetwork()
	cfg := baseConfig()
	cfg.Persona = dnsserver.PersonaDnsmasq
	cfg.Intercept = InterceptSpec{AllV4: true}
	cfg.Encrypted = dnsserver.EncTerminate
	d := Build(cfg)
	host := d.AttachHost("h", 0)

	pkts, err := host.Exchange(net, ap("9.9.9.9:853"), netsim.PackStreamHello(netsim.ALPNDoT),
		netsim.ExchangeOptions{Proto: netsim.TCP})
	if err != nil {
		t.Fatalf("hello through terminating CPE: %v", err)
	}
	if pkts[0].Src != ap("9.9.9.9:853") {
		t.Errorf("helloAck source = %s, want spoofed 9.9.9.9:853", pkts[0].Src)
	}
	alpn, cert, ticket, ok := netsim.ParseStreamHelloAck(pkts[0].Payload)
	if !ok || alpn != netsim.ALPNDoT {
		t.Fatalf("helloAck = (%d, ok=%v)", alpn, ok)
	}
	if cert.Trusted {
		t.Error("terminating CPE presented a trusted certificate")
	}
	if cert.Subject != cfg.WANAddr {
		t.Errorf("cert subject = %s, want the CPE's own %s", cert.Subject, cfg.WANAddr)
	}

	// The issued ticket verifies on the data path too: hello and data
	// are rewritten to the same delivery address, so the endpoint's
	// recomputation matches.
	framed, err := dnswire.AppendTCPFrame(nil, versionBindWire(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	pkts, err = host.Exchange(net, ap("9.9.9.9:853"), netsim.PackStreamData(netsim.ALPNDoT, ticket, framed),
		netsim.ExchangeOptions{Proto: netsim.TCP})
	if err != nil {
		t.Fatalf("data frame through terminating CPE: %v", err)
	}
	if pkts[0].Enc != netsim.ALPNDoT {
		t.Errorf("in-session response Enc = %d, want %d", pkts[0].Enc, netsim.ALPNDoT)
	}
	m, err := dnswire.Unpack(pkts[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if txt, ok := m.FirstTXT(); !ok || txt == "" {
		t.Error("terminated session did not answer version.bind with the CPE persona")
	}
}

// TestEncryptedTerminateV6: the v6 DNAT leg terminates v6-addressed
// streams the same way.
func TestEncryptedTerminateV6(t *testing.T) {
	net := netsim.NewNetwork()
	cfg := baseConfig()
	cfg.Persona = dnsserver.PersonaDnsmasq
	cfg.LANAddr6 = addr("2601:db00:0:101::1")
	cfg.LANPrefix6 = pfx("2601:db00:0:101::/64")
	cfg.WANAddr6 = addr("2601:db00:0:101::")
	cfg.Encrypted = dnsserver.EncTerminate
	d := Build(cfg)
	host := d.AttachHost("h", 0)

	pkts, err := host.Exchange(net, ap("[2001:4860:4860::8888]:853"), netsim.PackStreamHello(netsim.ALPNDoT),
		netsim.ExchangeOptions{Proto: netsim.TCP})
	if err != nil {
		t.Fatalf("v6 hello through terminating CPE: %v", err)
	}
	if _, cert, _, ok := netsim.ParseStreamHelloAck(pkts[0].Payload); !ok || cert.Trusted {
		t.Errorf("v6 termination cert = (%+v, ok=%v), want an untrusted one", cert, ok)
	}
}

// TestEncryptedPassReachesUpstreamEndpoint: under the pass policy a
// stream crosses the CPE's NAT to a genuine upstream endpoint, whose
// trusted certificate comes back intact.
func TestEncryptedPassReachesUpstreamEndpoint(t *testing.T) {
	net := netsim.NewNetwork()
	cfg := baseConfig()
	cfg.Persona = dnsserver.PersonaDnsmasq
	d := Build(cfg)
	host := d.AttachHost("h", 0)

	up := netsim.NewRouter("upstream", addr("9.9.9.9"))
	up.Bind(netsim.PortDoT, &dnsserver.StreamEndpoint{
		Cert:  dotsim.Certificate{Subject: addr("9.9.9.9"), Trusted: true},
		Inner: d.Forwarder,
	})
	up.AddRoute(netip.PrefixFrom(cfg.WANAddr, 32), d.Router)
	d.SetUplink(up)

	pkts, err := host.Exchange(net, ap("9.9.9.9:853"), netsim.PackStreamHello(netsim.ALPNDoT),
		netsim.ExchangeOptions{Proto: netsim.TCP})
	if err != nil {
		t.Fatalf("hello through passing CPE: %v", err)
	}
	_, cert, _, ok := netsim.ParseStreamHelloAck(pkts[0].Payload)
	if !ok || !cert.Trusted || cert.Subject != addr("9.9.9.9") {
		t.Errorf("cert = (%+v, ok=%v), want the genuine trusted endpoint's", cert, ok)
	}
}

// TestEncryptedPassLeavesStreamsAlone: the default policy neither drops
// nor terminates — the stream leaves the LAN unanswered here (nothing
// upstream in this world), which a real client experiences as reaching
// the genuine resolver.
func TestEncryptedPassLeavesStreamsAlone(t *testing.T) {
	net := netsim.NewNetwork()
	cfg := baseConfig()
	cfg.Persona = dnsserver.PersonaDnsmasq
	cfg.Intercept = InterceptSpec{AllV4: true}
	d := Build(cfg)
	host := d.AttachHost("h", 0)

	// Do53 to the same address is intercepted...
	if _, err := host.Exchange(net, ap("9.9.9.9:53"), versionBindWire(t, 3), netsim.ExchangeOptions{}); err != nil {
		t.Fatalf("Do53: %v", err)
	}
	// ...but the stream passes the CPE untouched (and dies on the
	// unwired uplink, not on a CPE verdict).
	_, err := host.Exchange(net, ap("9.9.9.9:853"), netsim.PackStreamHello(netsim.ALPNDoT),
		netsim.ExchangeOptions{Proto: netsim.TCP})
	if err != netsim.ErrTimeout {
		t.Fatalf("DoT hello under pass = %v, want ErrTimeout (nothing upstream)", err)
	}
}
