package cpe

import (
	"net/netip"
	"strings"
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

func addr(s string) netip.Addr   { return netip.MustParseAddr(s) }
func pfx(s string) netip.Prefix  { return netip.MustParsePrefix(s) }
func ap(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }

func baseConfig() Config {
	return NewPlain("test-cpe", pfx("192.168.1.0/24"), addr("96.120.1.1"), ap("96.120.0.53:53"))
}

func TestInterceptSpecMatching(t *testing.T) {
	g := addr("8.8.8.8")
	cf := addr("1.1.1.1")
	cases := []struct {
		name string
		spec InterceptSpec
		dst  netip.Addr
		want bool
	}{
		{"all-v4 matches anything", InterceptSpec{AllV4: true}, g, true},
		{"all-v4 with except", InterceptSpec{AllV4: true, ExceptV4: []netip.Addr{g}}, g, false},
		{"all-v4 except other", InterceptSpec{AllV4: true, ExceptV4: []netip.Addr{cf}}, g, true},
		{"targets hit", InterceptSpec{TargetsV4: []netip.Addr{g}}, g, true},
		{"targets miss", InterceptSpec{TargetsV4: []netip.Addr{cf}}, g, false},
		{"empty spec", InterceptSpec{}, g, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.spec.matchesV4(c.dst); got != c.want {
				t.Errorf("matchesV4(%s) = %t, want %t", c.dst, got, c.want)
			}
		})
	}
	v6 := addr("2001:4860:4860::8888")
	if !(InterceptSpec{AllV6: true}).matchesV6(v6) {
		t.Error("AllV6 missed")
	}
	if !(InterceptSpec{TargetsV6: []netip.Addr{v6}}).matchesV6(v6) {
		t.Error("TargetsV6 missed")
	}
	if (InterceptSpec{AllV4: true}).matchesV6(v6) {
		t.Error("AllV4 matched v6")
	}
}

func TestInterceptSpecActive(t *testing.T) {
	if (InterceptSpec{}).Active() {
		t.Error("zero spec active")
	}
	for _, s := range []InterceptSpec{
		{AllV4: true}, {AllV6: true},
		{TargetsV4: []netip.Addr{addr("8.8.8.8")}},
		{TargetsV6: []netip.Addr{addr("2001:db8::1")}},
	} {
		if !s.Active() {
			t.Errorf("spec %+v not active", s)
		}
	}
}

func TestBuildPlainClosesWANPort(t *testing.T) {
	d := Build(baseConfig())
	if _, open := d.Router.BoundService(addr("96.120.1.1"), 53); open {
		t.Error("plain CPE serves DNS on its WAN address")
	}
	if _, open := d.Router.BoundService(addr("192.168.1.1"), 53); !open {
		t.Error("plain CPE does not serve its LAN")
	}
}

func TestBuildOpenForwarderOpensWANPort(t *testing.T) {
	cfg := NewOpenForwarder("open", pfx("192.168.1.0/24"), addr("96.120.1.1"), ap("96.120.0.53:53"))
	d := Build(cfg)
	if _, open := d.Router.BoundService(addr("96.120.1.1"), 53); !open {
		t.Error("open-forwarder CPE has WAN port 53 closed")
	}
}

func TestBuildDisableForwarder(t *testing.T) {
	cfg := baseConfig()
	cfg.DisableForwarder = true
	d := Build(cfg)
	if d.Forwarder != nil {
		t.Error("forwarder built despite DisableForwarder")
	}
	if _, open := d.Router.BoundService(addr("192.168.1.1"), 53); open {
		t.Error("port 53 bound without a forwarder")
	}
}

func TestXB6PresetShape(t *testing.T) {
	cfg := NewXB6("xb6", pfx("10.0.0.0/24"), addr("96.120.9.9"), ap("96.120.0.53:53"))
	if !cfg.Intercept.AllV4 {
		t.Error("XB6 does not intercept all v4")
	}
	if cfg.Intercept.AllV6 {
		t.Error("XB6 intercepts v6; the bug is v4-only (Table 4)")
	}
	if cfg.Persona.Version == "" {
		t.Error("XDNS implements version.bind (§5)")
	}
	if cfg.LANAddr != addr("10.0.0.1") {
		t.Errorf("LANAddr = %s", cfg.LANAddr)
	}
}

func TestPiHolePresetShape(t *testing.T) {
	cfg := NewPiHole("ph", pfx("10.0.0.0/24"), addr("96.120.9.9"), ap("96.120.0.53:53"))
	if !strings.Contains(cfg.Persona.Version, "pi-hole") {
		t.Errorf("persona = %q", cfg.Persona.Version)
	}
	if !cfg.Intercept.AllV4 {
		t.Error("pi-hole should intercept all v4")
	}
}

func TestAttachHostAllocatesDistinctAddrs(t *testing.T) {
	cfg := baseConfig()
	cfg.LANAddr6 = addr("2601:db00:0:101::1")
	cfg.LANPrefix6 = pfx("2601:db00:0:101::/64")
	cfg.WANAddr6 = addr("2601:db00:0:101::")
	d := Build(cfg)
	h0 := d.AttachHost("h0", 0)
	h1 := d.AttachHost("h1", 1)
	if h0.Addr4 == h1.Addr4 {
		t.Errorf("hosts share v4 address %s", h0.Addr4)
	}
	if h0.Addr6 == h1.Addr6 {
		t.Errorf("hosts share v6 address %s", h0.Addr6)
	}
	if h0.Addr4 != addr("192.168.1.2") {
		t.Errorf("first host = %s", h0.Addr4)
	}
	if !cfg.LANPrefix6.Contains(h0.Addr6) {
		t.Errorf("host v6 %s outside LAN prefix", h0.Addr6)
	}
}

func TestInterceptionDNATDeliversToForwarder(t *testing.T) {
	net := netsim.NewNetwork()
	cfg := baseConfig()
	cfg.Persona = dnsserver.PersonaDnsmasq
	cfg.Intercept = InterceptSpec{AllV4: true}
	d := Build(cfg)
	host := d.AttachHost("h", 0)
	// No upstream wired: the forwarder answers version.bind locally.
	vb := []byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		7, 'v', 'e', 'r', 's', 'i', 'o', 'n', 4, 'b', 'i', 'n', 'd', 0, 0, 16, 0, 3}
	resps, err := host.Exchange(net, ap("9.9.9.9:53"), vb, netsim.ExchangeOptions{})
	if err != nil {
		t.Fatalf("intercepted version.bind: %v", err)
	}
	if resps[0].Src != ap("9.9.9.9:53") {
		t.Errorf("source = %s, want spoofed 9.9.9.9:53", resps[0].Src)
	}
}

func TestFirstHost(t *testing.T) {
	if firstHost(pfx("10.1.2.0/24")) != addr("10.1.2.1") {
		t.Error("v4 firstHost wrong")
	}
	if firstHost(pfx("2001:db8::/64")) != addr("2001:db8::1") {
		t.Error("v6 firstHost wrong")
	}
}

func TestDeviceString(t *testing.T) {
	d := Build(baseConfig())
	if !strings.Contains(d.String(), "plain") {
		t.Errorf("String = %q", d)
	}
	cfg := baseConfig()
	cfg.Intercept = InterceptSpec{AllV4: true}
	if s := Build(cfg).String(); !strings.Contains(s, "intercepting") {
		t.Errorf("String = %q", s)
	}
	cfg = baseConfig()
	cfg.WANPort53Open = true
	if s := Build(cfg).String(); !strings.Contains(s, "open-forwarder") {
		t.Errorf("String = %q", s)
	}
}
