package dnssec

import (
	"errors"
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnswire"
)

func rrset() []dnswire.Record {
	return []dnswire.Record{
		{Name: "canary.dnsloc.com", Class: dnswire.ClassINET, TTL: 300,
			Data: dnswire.ARData{Addr: netip.MustParseAddr("45.33.7.7")}},
		{Name: "canary.dnsloc.com", Class: dnswire.ClassINET, TTL: 300,
			Data: dnswire.ARData{Addr: netip.MustParseAddr("45.33.7.8")}},
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	key := GenerateKey("dnsloc.com", "test")
	rrs := rrset()
	sigRec, err := SignRRset(rrs, key)
	if err != nil {
		t.Fatal(err)
	}
	sig := sigRec.Data.(dnswire.RRSIGRData)
	if sig.TypeCovered != dnswire.TypeA || !sig.SignerName.Equal("dnsloc.com") {
		t.Errorf("sig = %+v", sig)
	}
	if err := VerifyRRset(rrs, sig, []dnswire.DNSKEYRData{key.Public}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// RRset order must not matter (canonical ordering).
	swapped := []dnswire.Record{rrs[1], rrs[0]}
	if err := VerifyRRset(swapped, sig, []dnswire.DNSKEYRData{key.Public}); err != nil {
		t.Fatalf("verify swapped: %v", err)
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	key := GenerateKey("dnsloc.com", "test")
	rrs := rrset()
	sigRec, _ := SignRRset(rrs, key)
	sig := sigRec.Data.(dnswire.RRSIGRData)

	// A spoofed address — what a meddling resolver would substitute.
	tampered := rrset()
	tampered[0].Data = dnswire.ARData{Addr: netip.MustParseAddr("10.9.9.9")}
	if err := VerifyRRset(tampered, sig, []dnswire.DNSKEYRData{key.Public}); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered rrset: err = %v, want ErrBadSignature", err)
	}

	// A flipped signature bit.
	bad := sig
	bad.Signature = append([]byte(nil), sig.Signature...)
	bad.Signature[0] ^= 1
	if err := VerifyRRset(rrs, bad, []dnswire.DNSKEYRData{key.Public}); !errors.Is(err, ErrBadSignature) {
		t.Errorf("bad signature: err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyWrongKey(t *testing.T) {
	key := GenerateKey("dnsloc.com", "test")
	other := GenerateKey("dnsloc.com", "other")
	rrs := rrset()
	sigRec, _ := SignRRset(rrs, key)
	sig := sigRec.Data.(dnswire.RRSIGRData)
	err := VerifyRRset(rrs, sig, []dnswire.DNSKEYRData{other.Public})
	if !errors.Is(err, ErrKeyMismatch) && !errors.Is(err, ErrBadSignature) {
		t.Errorf("wrong key: err = %v", err)
	}
}

func TestKeysAreDeterministicPerSeed(t *testing.T) {
	a := GenerateKey("com", "x")
	b := GenerateKey("com", "x")
	c := GenerateKey("com", "y")
	if string(a.Public.PublicKey) != string(b.Public.PublicKey) {
		t.Error("same seed produced different keys")
	}
	if string(a.Public.PublicKey) == string(c.Public.PublicKey) {
		t.Error("different seeds produced the same key")
	}
	if a.Public.KeyTag() == 0 {
		t.Error("zero key tag")
	}
}

func TestDSDigestBindsOwnerAndKey(t *testing.T) {
	key := GenerateKey("dnsloc.com", "test")
	ds := DSFor("dnsloc.com", key.Public)
	if ds.KeyTag != key.Public.KeyTag() || ds.DigestType != 2 || len(ds.Digest) != 32 {
		t.Errorf("ds = %+v", ds)
	}
	other := DSFor("evil.com", key.Public)
	if string(other.Digest) == string(ds.Digest) {
		t.Error("DS digest ignores the owner name")
	}
	rec := key.DSRecord(300)
	if rec.Type() != dnswire.TypeDS || !rec.Name.Equal("dnsloc.com") {
		t.Errorf("DSRecord = %v", rec)
	}
}

func TestDNSSECWireRoundTrip(t *testing.T) {
	key := GenerateKey("dnsloc.com", "test")
	rrs := rrset()
	sigRec, _ := SignRRset(rrs, key)
	m := &dnswire.Message{
		Header:  dnswire.Header{ID: 5, Response: true},
		Answers: append(rrs, sigRec, key.DNSKEYRecord(300), key.DSRecord(300)),
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := dnswire.Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	var sig dnswire.RRSIGRData
	var dnskey dnswire.DNSKEYRData
	for _, rr := range got.Answers {
		switch d := rr.Data.(type) {
		case dnswire.RRSIGRData:
			sig = d
		case dnswire.DNSKEYRData:
			dnskey = d
		}
	}
	if sig.Signature == nil || dnskey.PublicKey == nil {
		t.Fatal("DNSSEC records lost in round trip")
	}
	// The decoded records still verify.
	if err := VerifyRRset(got.Answers[:2], sig, []dnswire.DNSKEYRData{dnskey}); err != nil {
		t.Fatalf("verify decoded: %v", err)
	}
}

func TestEDNSDOFlag(t *testing.T) {
	q := dnswire.NewQuery(1, "canary.dnsloc.com", dnswire.TypeA, dnswire.ClassINET)
	if q.DO() {
		t.Error("fresh query has DO set")
	}
	q.SetEDNS(4096, true)
	if !q.DO() {
		t.Error("DO not set")
	}
	wire := dnswire.MustPack(q)
	got, err := dnswire.Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.DO() {
		t.Error("DO lost in round trip")
	}
	got.SetEDNS(1232, false)
	if got.DO() {
		t.Error("SetEDNS(false) left DO set")
	}
	got.RemoveEDNS()
	if len(got.Additional) != 0 {
		t.Error("RemoveEDNS left records")
	}
}
