package dnssec

import (
	"fmt"
	"net/netip"

	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// Exchanger is the stub's transport. It is structurally identical to
// core.Client, so any detector transport (simulated or real UDP)
// satisfies it; declaring it here keeps this package free of the
// detector's dependencies.
type Exchanger interface {
	Exchange(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, error)
}

// Stub is a validating stub resolver: it sends DO-flagged queries to
// one recursive resolver and builds the chain of trust itself, from a
// configured root trust anchor down to the answer. It is the client
// that observes DNSSEC breaking behind a DNSSEC-oblivious interceptor.
type Stub struct {
	// Client is the transport (simulated or real).
	Client Exchanger
	// Resolver is the recursive resolver to query.
	Resolver netip.AddrPort
	// TrustAnchor is the root zone's DNSKEY.
	TrustAnchor dnswire.DNSKEYRData

	nextID   uint16
	keyCache map[dnswire.Name][]dnswire.DNSKEYRData
}

// Result is one validated resolution.
type Result struct {
	// Records are the answer RRset (without signatures).
	Records []dnswire.Record
	// Secure reports whether the chain of trust validated end to end.
	Secure bool
	// Err explains why validation failed when Secure is false.
	Err error
}

// Resolve looks up (name, typ) and validates the answer.
func (s *Stub) Resolve(name dnswire.Name, typ dnswire.Type) Result {
	s.keyCache = make(map[dnswire.Name][]dnswire.DNSKEYRData)
	answers, sigs, err := s.query(name, typ)
	if err != nil {
		return Result{Err: err}
	}
	res := Result{Records: answers}
	if len(sigs) == 0 {
		res.Err = ErrNoSignature
		return res
	}
	sig := sigs[0]
	keys, err := s.trustedKeys(sig.SignerName, 0)
	if err != nil {
		res.Err = err
		return res
	}
	if err := VerifyRRset(answers, sig, keys); err != nil {
		res.Err = err
		return res
	}
	res.Secure = true
	return res
}

// query sends one DO-flagged query and splits the answer section into
// matching records and covering signatures.
func (s *Stub) query(name dnswire.Name, typ dnswire.Type) ([]dnswire.Record, []dnswire.RRSIGRData, error) {
	s.nextID++
	q := dnswire.NewQuery(0x6000+s.nextID, name, typ, dnswire.ClassINET)
	q.SetEDNS(4096, true)
	resps, err := s.Client.Exchange(s.Resolver, q)
	if err != nil {
		return nil, nil, err
	}
	m := resps[0]
	if m.Header.RCode != dnswire.RCodeSuccess {
		return nil, nil, fmt.Errorf("dnssec: %s query for %q answered %s", typ, name, m.Header.RCode)
	}
	var matched []dnswire.Record
	var sigs []dnswire.RRSIGRData
	for _, rr := range m.Answers {
		if rr.Type() == typ && rr.Name.Equal(name) {
			matched = append(matched, rr)
		}
		if sig, ok := rr.Data.(dnswire.RRSIGRData); ok && sig.TypeCovered == typ && rr.Name.Equal(name) {
			sigs = append(sigs, sig)
		}
	}
	if len(matched) == 0 {
		return nil, nil, fmt.Errorf("dnssec: empty answer for %q %s", name, typ)
	}
	return matched, sigs, nil
}

// trustedKeys authenticates and returns the DNSKEY set of a zone:
// the root set must contain (and be signed by) the trust anchor; any
// other zone's set must be vouched for by a DS RRset signed by its
// parent, recursively up to the root.
func (s *Stub) trustedKeys(zone dnswire.Name, depth int) ([]dnswire.DNSKEYRData, error) {
	if depth > 8 {
		return nil, fmt.Errorf("%w: delegation chain too deep", ErrBrokenChain)
	}
	if keys, ok := s.keyCache[zone.Canonical()]; ok {
		return keys, nil
	}
	keyRecs, keySigs, err := s.query(zone, dnswire.TypeDNSKEY)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBrokenChain, err)
	}
	if len(keySigs) == 0 {
		return nil, fmt.Errorf("%w: DNSKEY set of %q unsigned", ErrBrokenChain, zone)
	}
	keySig := keySigs[0]
	keys := make([]dnswire.DNSKEYRData, 0, len(keyRecs))
	for _, rr := range keyRecs {
		if k, ok := rr.Data.(dnswire.DNSKEYRData); ok {
			keys = append(keys, k)
		}
	}
	// The key set must be self-consistent: signed by a key it contains.
	if err := VerifyRRset(keyRecs, keySig, keys); err != nil {
		return nil, fmt.Errorf("%w: DNSKEY self-signature of %q: %v", ErrBrokenChain, zone, err)
	}
	// And anchored: either it is the root set containing the trust
	// anchor, or the parent's signed DS vouches for the signing key.
	signingKey, ok := keyByTag(keys, keySig.KeyTag)
	if !ok {
		return nil, fmt.Errorf("%w: signing key of %q not in its own set", ErrBrokenChain, zone)
	}
	if zone.Canonical() == "" {
		if !keyEqual(signingKey, s.TrustAnchor) {
			return nil, fmt.Errorf("%w: root key does not match the trust anchor", ErrBrokenChain)
		}
	} else {
		if err := s.checkDS(zone, signingKey, depth); err != nil {
			return nil, err
		}
	}
	s.keyCache[zone.Canonical()] = keys
	return keys, nil
}

// checkDS validates that the parent zone's DS RRset vouches for key.
func (s *Stub) checkDS(zone dnswire.Name, key dnswire.DNSKEYRData, depth int) error {
	dsRecs, dsSigs, err := s.query(zone, dnswire.TypeDS)
	if err != nil {
		return fmt.Errorf("%w: DS for %q: %v", ErrBrokenChain, zone, err)
	}
	if len(dsSigs) == 0 {
		return fmt.Errorf("%w: DS set of %q unsigned", ErrBrokenChain, zone)
	}
	dsSig := dsSigs[0]
	parentKeys, err := s.trustedKeys(dsSig.SignerName, depth+1)
	if err != nil {
		return err
	}
	if err := VerifyRRset(dsRecs, dsSig, parentKeys); err != nil {
		return fmt.Errorf("%w: DS signature of %q: %v", ErrBrokenChain, zone, err)
	}
	want := DSFor(zone, key)
	for _, rr := range dsRecs {
		ds, ok := rr.Data.(dnswire.DSRData)
		if !ok {
			continue
		}
		if ds.KeyTag == want.KeyTag && ds.DigestType == want.DigestType &&
			string(ds.Digest) == string(want.Digest) {
			return nil
		}
	}
	return fmt.Errorf("%w: no DS of %q matches its signing key", ErrBrokenChain, zone)
}

// keyByTag finds the key with a tag.
func keyByTag(keys []dnswire.DNSKEYRData, tag uint16) (dnswire.DNSKEYRData, bool) {
	for _, k := range keys {
		if k.KeyTag() == tag {
			return k, true
		}
	}
	return dnswire.DNSKEYRData{}, false
}

// keyEqual compares keys by material.
func keyEqual(a, b dnswire.DNSKEYRData) bool {
	return a.Flags == b.Flags && a.Algorithm == b.Algorithm &&
		string(a.PublicKey) == string(b.PublicKey)
}
