// Package dnssec implements DNSSEC signing and validation with Ed25519
// (RFC 4034 / RFC 8080): canonical RRset encoding, RRSIG generation and
// verification, DS digests, and a chain-of-trust validating stub.
//
// The paper notes (§1) that transparent interception "can interfere
// with the correct operation of protocols such as DNSSEC". This package
// makes that observable in the simulator: signed zones validate through
// an honest path, while an interceptor whose alternate resolver is
// DNSSEC-oblivious strips the records a validating stub needs — the
// stub sees bogus (unvalidatable) answers even though the A records
// themselves look plausible.
//
// Simplifications, documented: signature inception/expiration are fixed
// sentinel values (the simulator has no wall clock) and are not
// checked; wildcard proofs and NSEC denial-of-existence are out of
// scope — the validating stub treats unsigned answers for names under a
// signed zone as bogus, which is the behaviour the interception
// experiment needs.
package dnssec

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// Fixed signature validity sentinels (no wall clock in the simulator).
const (
	SigInception  = 20211101_00
	SigExpiration = 20311101_00
)

// Key is a zone's signing key pair.
type Key struct {
	// Owner is the zone origin the key signs for.
	Owner dnswire.Name
	// Public is the DNSKEY record body.
	Public dnswire.DNSKEYRData
	// private is the Ed25519 signing key.
	private ed25519.PrivateKey
}

// GenerateKey derives a deterministic zone key from a seed string —
// reproducible worlds need reproducible keys.
func GenerateKey(owner dnswire.Name, seed string) *Key {
	h := sha256.Sum256([]byte("dnsloc-zone-key:" + string(owner.Canonical()) + ":" + seed))
	pub, priv, err := ed25519.GenerateKey(bytes.NewReader(append(h[:], h[:]...)))
	if err != nil {
		panic(err) // cannot fail with a sized reader
	}
	return &Key{
		Owner: owner,
		Public: dnswire.DNSKEYRData{
			Flags:     dnswire.DNSKEYFlagZone | dnswire.DNSKEYFlagSEP,
			Protocol:  3,
			Algorithm: dnswire.AlgoEd25519,
			PublicKey: append([]byte(nil), pub...),
		},
		private: priv,
	}
}

// DNSKEYRecord returns the key's DNSKEY RR.
func (k *Key) DNSKEYRecord(ttl uint32) dnswire.Record {
	return dnswire.Record{
		Name: k.Owner, Class: dnswire.ClassINET, TTL: ttl, Data: k.Public,
	}
}

// DSRecord returns the delegation-signer record the parent zone
// publishes for this key (SHA-256 digest, RFC 4509).
func (k *Key) DSRecord(ttl uint32) dnswire.Record {
	return dnswire.Record{
		Name: k.Owner, Class: dnswire.ClassINET, TTL: ttl,
		Data: DSFor(k.Owner, k.Public),
	}
}

// DSFor computes the DS body for a DNSKEY.
func DSFor(owner dnswire.Name, key dnswire.DNSKEYRData) dnswire.DSRData {
	h := sha256.New()
	writeCanonicalName(h, owner)
	rdata, _ := packRData(key)
	h.Write(rdata)
	return dnswire.DSRData{
		KeyTag:     key.KeyTag(),
		Algorithm:  key.Algorithm,
		DigestType: 2,
		Digest:     h.Sum(nil),
	}
}

// Errors.
var (
	// ErrNoSignature means the RRset arrived without a covering RRSIG.
	ErrNoSignature = errors.New("dnssec: no covering RRSIG")
	// ErrBadSignature means signature verification failed.
	ErrBadSignature = errors.New("dnssec: signature verification failed")
	// ErrKeyMismatch means the RRSIG references a key that was not
	// offered.
	ErrKeyMismatch = errors.New("dnssec: rrsig key tag matches no offered key")
	// ErrBrokenChain means the chain of trust could not be followed from
	// the trust anchor to the answer.
	ErrBrokenChain = errors.New("dnssec: broken chain of trust")
)

// SignRRset produces the RRSIG covering one RRset (same owner, type).
func SignRRset(rrs []dnswire.Record, key *Key) (dnswire.Record, error) {
	if len(rrs) == 0 {
		return dnswire.Record{}, errors.New("dnssec: empty rrset")
	}
	owner := rrs[0].Name
	sig := dnswire.RRSIGRData{
		TypeCovered: rrs[0].Type(),
		Algorithm:   key.Public.Algorithm,
		Labels:      uint8(len(owner.Labels())),
		OrigTTL:     rrs[0].TTL,
		Expiration:  SigExpiration,
		Inception:   SigInception,
		KeyTag:      key.Public.KeyTag(),
		SignerName:  key.Owner,
	}
	data, err := signedData(sig, rrs)
	if err != nil {
		return dnswire.Record{}, err
	}
	sig.Signature = ed25519.Sign(key.private, data)
	return dnswire.Record{
		Name: owner, Class: dnswire.ClassINET, TTL: rrs[0].TTL, Data: sig,
	}, nil
}

// VerifyRRset checks an RRSIG over an RRset against candidate DNSKEYs.
func VerifyRRset(rrs []dnswire.Record, sig dnswire.RRSIGRData, keys []dnswire.DNSKEYRData) error {
	if len(rrs) == 0 {
		return ErrNoSignature
	}
	data, err := signedData(sig, rrs)
	if err != nil {
		return err
	}
	for _, key := range keys {
		if key.KeyTag() != sig.KeyTag || key.Algorithm != sig.Algorithm {
			continue
		}
		if key.Algorithm != dnswire.AlgoEd25519 || len(key.PublicKey) != ed25519.PublicKeySize {
			continue
		}
		if ed25519.Verify(ed25519.PublicKey(key.PublicKey), data, sig.Signature) {
			return nil
		}
		return ErrBadSignature
	}
	return ErrKeyMismatch
}

// signedData builds the byte string a signature covers: the RRSIG RDATA
// without the signature, followed by the canonical RRset
// (RFC 4034 §3.1.8.1).
func signedData(sig dnswire.RRSIGRData, rrs []dnswire.Record) ([]byte, error) {
	out, err := sig.PackPresig()
	if err != nil {
		return nil, err
	}
	// Canonical RRs: owner lowercase, original TTL, rdata sorted.
	type canon struct{ rdata []byte }
	canons := make([]canon, 0, len(rrs))
	for _, rr := range rrs {
		rdata, err := packRData(rr.Data)
		if err != nil {
			return nil, err
		}
		canons = append(canons, canon{rdata: rdata})
	}
	sort.Slice(canons, func(i, j int) bool {
		return bytes.Compare(canons[i].rdata, canons[j].rdata) < 0
	})
	owner := rrs[0].Name
	for _, c := range canons {
		var buf bytes.Buffer
		writeCanonicalName(&buf, owner)
		buf.Write(beUint16(uint16(rrs[0].Type())))
		buf.Write(beUint16(uint16(dnswire.ClassINET)))
		buf.Write(beUint32(sig.OrigTTL))
		buf.Write(beUint16(uint16(len(c.rdata))))
		buf.Write(c.rdata)
		out = append(out, buf.Bytes()...)
	}
	return out, nil
}

// packRData encodes an RData body alone, via a throwaway record.
func packRData(data dnswire.RData) ([]byte, error) {
	m := &dnswire.Message{
		Header:  dnswire.Header{},
		Answers: []dnswire.Record{{Name: "", Class: dnswire.ClassINET, TTL: 0, Data: data}},
	}
	wire, err := m.Pack()
	if err != nil {
		return nil, err
	}
	// Header (12) + root owner (1) + type/class/ttl (8) + rdlength (2).
	const prefix = 12 + 1 + 8 + 2
	if len(wire) < prefix {
		return nil, fmt.Errorf("dnssec: short packed record")
	}
	return wire[prefix:], nil
}

// writeCanonicalName writes the uncompressed, lower-cased wire name.
func writeCanonicalName(w io.Writer, n dnswire.Name) {
	for _, label := range n.Canonical().Labels() {
		w.Write([]byte{byte(len(label))}) //nolint:errcheck
		io.WriteString(w, label)          //nolint:errcheck
	}
	w.Write([]byte{0}) //nolint:errcheck
}

// beUint16/beUint32 are tiny big-endian helpers.
func beUint16(v uint16) []byte { return []byte{byte(v >> 8), byte(v)} }
func beUint32(v uint32) []byte {
	return []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}
