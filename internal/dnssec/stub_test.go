package dnssec_test

import (
	"errors"
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnssec"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/homelab"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// stubFor builds a validating stub for a lab probe pointed at a resolver.
func stubFor(lab *homelab.Lab, resolver netip.Addr) *dnssec.Stub {
	return &dnssec.Stub{
		Client:      lab.Client(),
		Resolver:    netip.AddrPortFrom(resolver, 53),
		TrustAnchor: lab.Backbone.TrustAnchor,
	}
}

func TestChainOfTrustValidatesOnCleanPath(t *testing.T) {
	lab := homelab.New(homelab.Clean)
	stub := stubFor(lab, publicdns.Lookup(publicdns.Cloudflare).V4[0])
	res := stub.Resolve(publicdns.CanaryDomain, dnswire.TypeA)
	if res.Err != nil {
		t.Fatalf("err = %v", res.Err)
	}
	if !res.Secure {
		t.Fatal("clean path did not validate")
	}
	if len(res.Records) != 1 || res.Records[0].Data.(dnswire.ARData).Addr != publicdns.CanaryAnswer {
		t.Errorf("records = %v", res.Records)
	}
}

func TestInterceptionBreaksDNSSEC(t *testing.T) {
	// The paper (§1): interception "can interfere with the correct
	// operation of protocols such as DNSSEC". Behind the XB6 the query
	// never reaches the validating public resolver: the DNSSEC-oblivious
	// ISP resolver answers, stripping every signature. The A record
	// looks fine — the stub just cannot prove it.
	lab := homelab.New(homelab.XB6)
	stub := stubFor(lab, publicdns.Lookup(publicdns.Cloudflare).V4[0])
	res := stub.Resolve(publicdns.CanaryDomain, dnswire.TypeA)
	if res.Secure {
		t.Fatal("validation succeeded through a DNSSEC-oblivious interceptor")
	}
	if !errors.Is(res.Err, dnssec.ErrNoSignature) {
		t.Errorf("err = %v, want ErrNoSignature", res.Err)
	}
	// The data itself was resolved correctly — transparency holds.
	if len(res.Records) != 1 || res.Records[0].Data.(dnswire.ARData).Addr != publicdns.CanaryAnswer {
		t.Errorf("records = %v", res.Records)
	}
}

func TestDNSSECAwareInterceptorStillValidates(t *testing.T) {
	// The counterpoint: DNSSEC protects data, not paths. If the
	// interceptor's resolver is itself DNSSEC-aware, the stub validates
	// happily and learns nothing about the interception — which is why
	// the paper's localization technique is needed at all.
	lab := homelab.New(homelab.XB6)
	lab.ISP.Resolver.DNSSECAware = true
	stub := stubFor(lab, publicdns.Lookup(publicdns.Cloudflare).V4[0])
	res := stub.Resolve(publicdns.CanaryDomain, dnswire.TypeA)
	if res.Err != nil {
		t.Fatalf("err = %v", res.Err)
	}
	if !res.Secure {
		t.Fatal("aware alternate resolver should deliver a validatable chain")
	}
}

func TestForgedAnswerFailsValidation(t *testing.T) {
	// An alternate resolver that *rewrites* answers (redirection, §2)
	// cannot forge signatures: swap the canary's address at the ISP
	// resolver via a blocklist-style rewrite is not modeled, so instead
	// verify at the wire level: a tampered RRset under a genuine chain
	// fails. (Unit-level variant lives in dnssec_test.go; this checks
	// the stub's verify step end to end by corrupting the trust anchor.)
	lab := homelab.New(homelab.Clean)
	stub := stubFor(lab, publicdns.Lookup(publicdns.Cloudflare).V4[0])
	stub.TrustAnchor.PublicKey = append([]byte(nil), stub.TrustAnchor.PublicKey...)
	stub.TrustAnchor.PublicKey[0] ^= 1
	res := stub.Resolve(publicdns.CanaryDomain, dnswire.TypeA)
	if res.Secure {
		t.Fatal("validation succeeded with a corrupted trust anchor")
	}
	if !errors.Is(res.Err, dnssec.ErrBrokenChain) {
		t.Errorf("err = %v, want ErrBrokenChain", res.Err)
	}
}

func TestUnsignedZoneReportsInsecure(t *testing.T) {
	// whoami.akamai.com is dynamic and unsigned (like its real
	// counterpart): resolution works, validation reports no signature.
	lab := homelab.New(homelab.Clean)
	stub := stubFor(lab, publicdns.Lookup(publicdns.Google).V4[0])
	res := stub.Resolve(publicdns.WhoamiDomain, dnswire.TypeA)
	if res.Secure {
		t.Fatal("unsigned zone validated")
	}
	if !errors.Is(res.Err, dnssec.ErrNoSignature) {
		t.Errorf("err = %v, want ErrNoSignature", res.Err)
	}
	if len(res.Records) == 0 {
		t.Error("no records resolved")
	}
}
